package uexc

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its exhibit on the
// simulated machine, prints it once, and reports the headline values as
// custom metrics so `go test -bench` output carries the reproduction.
//
//	go test -bench=. -benchmem
//
// Individual exhibits: -bench=BenchmarkTable2 etc. The cmd/uexc-bench
// binary prints the same tables without the benchmarking framework.

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"uexc/internal/apps/gcsim"
	"uexc/internal/apps/swizzle"
	"uexc/internal/core"
	"uexc/internal/cpu"
	"uexc/internal/harness"
	"uexc/internal/report"
	"uexc/internal/simos"
)

var printOnce sync.Map

// printExhibit prints a rendered exhibit exactly once per process.
func printExhibit(key, body string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Fprintf(os.Stdout, "\n%s\n", body)
	}
}

func renderOrFatal(b *testing.B, f func() (*report.Table, error)) *report.Table {
	b.Helper()
	t, err := f()
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// BenchmarkTable1 regenerates the cross-system delivery survey.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := renderOrFatal(b, harness.Table1)
		printExhibit("table1", t.Render())
	}
	ult, err := core.MeasureSimpleException(core.ModeUltrix, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(ult.RoundTripMicros(), "ultrix_rt_µs")
}

// BenchmarkTable2 regenerates the fast-mechanism microbenchmarks
// (deliver 5 µs, write-prot 15 µs, subpage 19 µs, return 3 µs, rt 8 µs).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := renderOrFatal(b, harness.Table2)
		printExhibit("table2", t.Render())
	}
	fast, err := core.MeasureSimpleException(core.ModeFast, 30)
	if err != nil {
		b.Fatal(err)
	}
	wp, err := core.MeasureWriteProt(core.ModeFast, true, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(fast.DeliverMicros(), "deliver_µs")
	b.ReportMetric(fast.ReturnMicros(), "return_µs")
	b.ReportMetric(fast.RoundTripMicros(), "rt_µs")
	b.ReportMetric(wp.DeliverMicros(), "wprot_deliver_µs")
}

// BenchmarkTable3 regenerates the kernel instruction-count breakdown
// (6/11/31/6/8/3 = 65).
func BenchmarkTable3(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		t := renderOrFatal(b, harness.Table3)
		printExhibit("table3", t.Render())
		pc, err := core.MeasureKernelPhases()
		if err != nil {
			b.Fatal(err)
		}
		total = pc.Total()
	}
	b.ReportMetric(float64(total), "kernel_insts")
}

// BenchmarkTable4 regenerates the generational-GC comparison
// (Lisp 24→23 s, array 2→1.8 s).
func BenchmarkTable4(b *testing.B) {
	ult, err := simos.Measure(core.ModeUltrix)
	if err != nil {
		b.Fatal(err)
	}
	fast, err := simos.Measure(core.ModeFast)
	if err != nil {
		b.Fatal(err)
	}
	var impLisp, impArray float64
	for i := 0; i < b.N; i++ {
		t := renderOrFatal(b, harness.Table4)
		printExhibit("table4", t.Render())
		lu := gcsim.LispOps(gcsim.BarrierSigsegv, ult)
		lf := gcsim.LispOps(gcsim.BarrierFastEager, fast)
		au := gcsim.ArrayTest(gcsim.BarrierSigsegv, ult)
		af := gcsim.ArrayTest(gcsim.BarrierFastEager, fast)
		impLisp = 100 * (lu.Seconds - lf.Seconds) / lu.Seconds
		impArray = 100 * (au.Seconds - af.Seconds) / au.Seconds
	}
	b.ReportMetric(impLisp, "lisp_improvement_%")
	b.ReportMetric(impArray, "array_improvement_%")
}

// BenchmarkTable5 regenerates the write-barrier break-even analysis.
func BenchmarkTable5(b *testing.B) {
	fast, err := simos.Measure(core.ModeFast)
	if err != nil {
		b.Fatal(err)
	}
	var yTree float64
	for i := 0; i < b.N; i++ {
		t := renderOrFatal(b, harness.Table5)
		printExhibit("table5", t.Render())
		sw := gcsim.TreeWorkload(gcsim.BarrierSoftware, fast)
		pp := gcsim.TreeWorkload(gcsim.BarrierFastEager, fast)
		yTree = float64(sw.Stats.Checks) * 5 / (25 * float64(pp.Stats.Faults))
	}
	b.ReportMetric(yTree, "tree_breakeven_µs")
}

// BenchmarkFigure3 regenerates the swizzling checks-vs-exceptions
// curves and validates one crossover against the object store.
func BenchmarkFigure3(b *testing.B) {
	var crossover int
	for i := 0; i < b.N; i++ {
		s, err := harness.Figure3(false, 1)
		if err != nil {
			b.Fatal(err)
		}
		printExhibit("figure3", s.Render())
		fast, err := core.MeasureUnalignedMin(30)
		if err != nil {
			b.Fatal(err)
		}
		crossover, err = swizzle.Fig3Crossover(5, fast.RoundTripMicros(), 600)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(crossover), "breakeven_uses_fast_c5")
}

// BenchmarkFigure4 regenerates the eager-vs-lazy swizzling curves and
// validates one crossover.
func BenchmarkFigure4(b *testing.B) {
	var crossover int
	for i := 0; i < b.N; i++ {
		s, err := harness.Figure4(false, 1)
		if err != nil {
			b.Fatal(err)
		}
		printExhibit("figure4", s.Render())
		fast, err := core.MeasureUnalignedMin(30)
		if err != nil {
			b.Fatal(err)
		}
		crossover, err = swizzle.Fig4Crossover(fast.RoundTripMicros(), 2, 50)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(crossover), "eager_wins_from_ptrs")
}

// BenchmarkFigures12Trace renders the two delivery-path event traces.
func BenchmarkFigures12Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.TraceDelivery()
		if err != nil {
			b.Fatal(err)
		}
		printExhibit("trace", out)
	}
}

// BenchmarkAblationHardware measures the delivery-mechanism ablation
// (paper estimate: hardware buys 2-3x over the software fast path).
func BenchmarkAblationHardware(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t := renderOrFatal(b, harness.AblationHardware)
		printExhibit("ablA", t.Render())
		hw, err := core.MeasureSimpleException(core.ModeHardware, 30)
		if err != nil {
			b.Fatal(err)
		}
		sw, err := core.MeasureSimpleException(core.ModeFast, 30)
		if err != nil {
			b.Fatal(err)
		}
		ratio = sw.RoundTrip / hw.RoundTrip
	}
	b.ReportMetric(ratio, "hw_over_sw_x")
}

// BenchmarkAblationEager measures eager amplification on/off.
func BenchmarkAblationEager(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		t := renderOrFatal(b, harness.AblationEager)
		printExhibit("ablB", t.Render())
		eager, err := core.MeasureWriteProt(core.ModeFast, true, 30)
		if err != nil {
			b.Fatal(err)
		}
		noEager, err := core.MeasureWriteProt(core.ModeFast, false, 30)
		if err != nil {
			b.Fatal(err)
		}
		saved = noEager.RoundTripMicros() - eager.RoundTripMicros()
	}
	b.ReportMetric(saved, "eager_saves_µs")
}

// BenchmarkAblationSubpage measures the subpage emulation trade-off.
func BenchmarkAblationSubpage(b *testing.B) {
	var emul float64
	for i := 0; i < b.N; i++ {
		t := renderOrFatal(b, harness.AblationSubpage)
		printExhibit("ablC", t.Render())
		sp, err := core.MeasureSubpage(30)
		if err != nil {
			b.Fatal(err)
		}
		emul = core.Micros(uint64(sp.EmulRT))
	}
	b.ReportMetric(emul, "emulation_µs")
}

// benchCampaignSeeds sizes the campaign benchmarks to the tier-1
// smoke campaign.
const benchCampaignSeeds = 30

// benchEngine maps UEXC_ENGINE to the execution tier under
// measurement: "jit" (default), "fast" (the pre-JIT fast-path
// interpreter), or "interp" (uncached reference). `make bench-jit`
// runs the paired fast/jit comparison recorded in BENCH_cpu.json.
func benchEngine(b *testing.B) cpu.Engine {
	b.Helper()
	switch env := os.Getenv("UEXC_ENGINE"); env {
	case "", "jit":
		return cpu.EngineJIT
	case "fast":
		return cpu.EngineFast
	case "interp":
		return cpu.EngineInterp
	default:
		b.Fatalf("UEXC_ENGINE=%q: want jit, fast, or interp", env)
		return 0
	}
}

func benchCampaign(b *testing.B, workers int) {
	b.Helper()
	// The campaign boots its machines through the pool, so the engine
	// under measurement is selected via the process-wide default (each
	// `make bench-jit` leg is its own process).
	prev := cpu.DefaultEngine
	cpu.DefaultEngine = benchEngine(b)
	defer func() { cpu.DefaultEngine = prev }()
	var fp string
	for i := 0; i < b.N; i++ {
		res, err := harness.FaultCampaignParallel(benchCampaignSeeds, workers, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Ok() {
			b.Fatalf("campaign failed:\n%s", res.Summary())
		}
		if fp == "" {
			fp = res.Fingerprints[0]
		} else if fp != res.Fingerprints[0] {
			b.Fatal("campaign fingerprints drifted across iterations")
		}
		b.ReportMetric(float64(res.Runs), "runs")
	}
}

// BenchmarkCampaignSerial is the serial baseline for the sharded
// campaign engine: the tier-1 smoke campaign on one worker.
func BenchmarkCampaignSerial(b *testing.B) { benchCampaign(b, 1) }

// BenchmarkCampaignParallel4 runs the same campaign sharded over four
// workers with deterministic merging; compare ns/op against
// BenchmarkCampaignSerial for the engine's wall-clock speedup (it
// tracks available cores — on a single-CPU host it can only match the
// serial time).
func BenchmarkCampaignParallel4(b *testing.B) { benchCampaign(b, 4) }

// BenchmarkCampaignParallel uses every core (the uexc-bench default).
func BenchmarkCampaignParallel(b *testing.B) { benchCampaign(b, 0) }

// benchInterp retires b.N instructions of the given user program
// through CPU.Run and reports simulated MIPS (millions of simulated
// instructions per host second) as a custom metric. The program must
// run far longer than any plausible b.N.
//
// UEXC_ENGINE selects the execution tier under measurement: "jit"
// (default), "fast" (the pre-JIT fast-path interpreter), or "interp"
// (uncached reference) — `make bench-jit` runs the paired fast/jit
// comparison recorded in BENCH_cpu.json. The livelock watchdog is a
// Run-loop service rather than part of any engine, so it is detached
// here: raw engine throughput is what the benchmark measures (the
// pre-JIT numbers in BENCH_cpu.json were Step()-based and likewise
// excluded it).
func benchInterp(b *testing.B, src string) {
	b.Helper()
	m, err := core.NewMachine()
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadProgram(src); err != nil {
		b.Fatal(err)
	}
	c := m.CPU()
	c.Engine = benchEngine(b)
	c.Watchdog = nil
	start := c.Insts
	b.ResetTimer()
	n, err := c.Run(uint64(b.N))
	b.StopTimer()
	if !errors.Is(err, cpu.ErrBudget) {
		b.Fatalf("Run: got %v (retired %d), want budget exhaustion", err, n)
	}
	if c.Halted {
		b.Fatal("benchmark program exited early")
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(c.Insts-start)/1e6/s, "sim_MIPS")
	}
}

// BenchmarkStepLoop measures raw interpreter throughput on a tight
// register-only loop: the fetch/decode/execute path with no memory
// traffic beyond the instruction stream.
func BenchmarkStepLoop(b *testing.B) {
	benchInterp(b, `
main:
	li    s0, 0x7fffffff
	li    s1, 0
loop:
	addiu s0, s0, -1
	xor   s1, s1, s0
	sltu  t0, s1, s0
	addu  s2, s2, t0
	bnez  s0, loop
	nop
	li    v0, 0
	jr    ra
	nop
`)
}

// BenchmarkMemcpyProgram measures interpreter throughput on a
// load/store-dominated workload: a 4 KB word-by-word copy loop, so
// every iteration exercises instruction fetch plus a data-TLB
// translation and physical access for both a load and a store.
func BenchmarkMemcpyProgram(b *testing.B) {
	benchInterp(b, `
main:
	la    s0, bench_src
	la    s1, bench_dst
outer:
	move  t0, s0
	move  t1, s1
	li    t2, 1024            # words per 4 KB page
copy:
	lw    t3, 0(t0)
	sw    t3, 0(t1)
	addiu t0, t0, 4
	addiu t1, t1, 4
	addiu t2, t2, -1
	bnez  t2, copy
	nop
	b     outer
	nop
bench_src:
	.space 4096
bench_dst:
	.space 4096
`)
}

// BenchmarkSimulatorThroughput measures the host-side simulator itself:
// simulated instructions per host second (not a paper exhibit; a
// usefulness check for the substrate).
func BenchmarkSimulatorThroughput(b *testing.B) {
	m, err := core.NewMachine()
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadProgram(`
main:
	li    s0, 1000000
loop:
	addiu s0, s0, -1
	bnez  s0, loop
	nop
	li    v0, 0
	jr    ra
	nop
`); err != nil {
		b.Fatal(err)
	}
	c := m.CPU()
	b.ResetTimer()
	done := uint64(0)
	for i := 0; i < b.N; i++ {
		if c.Halted {
			break
		}
		if err := c.Step(); err != nil {
			b.Fatal(err)
		}
		done++
	}
	b.ReportMetric(float64(done), "sim_insts")
}

// BenchmarkAblationProtChange measures the three user-level protection
// change mechanisms (§2.2 hardware U bit, §3.2.3 emulated opcode,
// mprotect).
func BenchmarkAblationProtChange(b *testing.B) {
	var hw, emul, sys float64
	for i := 0; i < b.N; i++ {
		t := renderOrFatal(b, harness.AblationProtChange)
		printExhibit("ablD", t.Render())
		var err error
		if hw, err = core.MeasureProtChange(core.ProtMechHardware, 30); err != nil {
			b.Fatal(err)
		}
		if emul, err = core.MeasureProtChange(core.ProtMechEmulated, 30); err != nil {
			b.Fatal(err)
		}
		if sys, err = core.MeasureProtChange(core.ProtMechSyscall, 30); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(hw/25, "hw_µs")
	b.ReportMetric(emul/25, "emul_µs")
	b.ReportMetric(sys/25, "mprotect_µs")
}

// BenchmarkAblationVector measures the per-exception vector-table
// dispatch against the single-handler path (§2.2 design point).
func BenchmarkAblationVector(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		t := renderOrFatal(b, harness.AblationVector)
		printExhibit("ablE", t.Render())
		vec, err := core.MeasureVectoredDispatch(30)
		if err != nil {
			b.Fatal(err)
		}
		single, err := core.MeasureSimpleException(core.ModeFast, 30)
		if err != nil {
			b.Fatal(err)
		}
		delta = vec.RoundTrip - single.RoundTrip
	}
	b.ReportMetric(delta, "dispatch_cycles")
}

// BenchmarkSensitivity probes the calibration robustness of the
// headline claim (±30% scaling of the modeled C-phase charges).
func BenchmarkSensitivity(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		t := renderOrFatal(b, harness.Sensitivity)
		printExhibit("sens", t.Render())
		pts, err := core.MeasureSensitivity([]float64{0.7, 1.0, 1.3}, 25)
		if err != nil {
			b.Fatal(err)
		}
		worst = pts[0].Speedup
		for _, p := range pts {
			if p.Speedup < worst {
				worst = p.Speedup
			}
		}
	}
	b.ReportMetric(worst, "worst_case_speedup_x")
}
