// Command uexc-bench regenerates the paper's evaluation: every table
// and figure of "Hardware and Software Support for Efficient Exception
// Handling" (Thekkath & Levy, ASPLOS 1994), measured on the simulated
// machine.
//
// Usage:
//
//	uexc-bench -all            # every exhibit (default)
//	uexc-bench -table 2        # one table (1..5)
//	uexc-bench -figure 3       # one figure (3 or 4)
//	uexc-bench -trace          # Figures 1 and 2 as event traces
//	uexc-bench -ablations      # the three ablation studies
//	uexc-bench -validate       # also run object-store crossover validation
//	uexc-bench -faultcampaign -seeds 100
//	                           # deterministic fault-injection campaign:
//	                           # each seed replayed twice under all three
//	                           # delivery modes, invariants checked after
//	                           # every injected event
//	uexc-bench -difftest -seeds 200
//	                           # differential campaign: each seed expands
//	                           # to a random exception-rich program run
//	                           # under all three delivery modes, asserting
//	                           # architectural equivalence
//	uexc-bench -soak -seeds 10000 -soakdir /tmp/soak
//	                           # seed-space triage sweep: both campaigns
//	                           # with typed verdicts, checkpointed to the
//	                           # durable job store so a killed sweep
//	                           # resumes byte-identically
//	uexc-bench -parallel 4     # shard independent runs over 4 workers
//	                           # (0 = all CPUs; output is byte-identical
//	                           # to -parallel 1 at any width)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"syscall"

	"uexc/internal/core"
	"uexc/internal/cpu"
	dt "uexc/internal/difftest"
	"uexc/internal/harness"
	"uexc/internal/report"
	soakpkg "uexc/internal/soak"
)

func main() {
	// Ctrl-C (or SIGTERM) cancels the context, which the sharded
	// campaign loops observe between runs: the process exits cleanly
	// with an "aborted" error instead of running the sweep to
	// completion. A second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "uexc-bench: %v\n", err)
		os.Exit(1)
	}
}

// writeSeriesCSV writes one figure series as CSV into dir, creating
// the directory (and parents) if needed.
func writeSeriesCSV(dir, name string, s *report.Series) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("creating -csv directory: %w", err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(s.CSV()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// jitDiag accumulates translation-tier counters from every machine a
// campaign returns to its pool, the same way the serving layer's
// /metrics harvest does. -v prints them as a trailing stderr
// diagnostics line; stdout summaries never include them, so campaign
// output stays byte-identical across engines and parallel widths.
// The counters themselves are diagnostics, not fingerprint material:
// invalidation counts depend on how runs interleave onto pooled
// machines, so they vary with -parallel width.
type jitDiag struct {
	blocks, execs, guardMisses, invalidations atomic.Uint64
}

// pool returns a machine pool whose Harvest hook folds each run's
// counters into d. Harvest runs on the campaign worker goroutines,
// hence the atomics.
func (d *jitDiag) pool() *core.MachinePool {
	return &core.MachinePool{Harvest: func(m *core.Machine) {
		c := m.CPU()
		d.blocks.Add(c.JITBlocks)
		d.execs.Add(c.JITExecs)
		d.guardMisses.Add(c.JITGuardMisses)
		d.invalidations.Add(c.JITInvalidations)
	}}
}

// report writes the one-line translation-tier summary.
func (d *jitDiag) report(w io.Writer) {
	fmt.Fprintf(w, "jit: %d blocks compiled, %d block execs, %d guard misses, %d invalidations\n",
		d.blocks.Load(), d.execs.Load(), d.guardMisses.Load(), d.invalidations.Load())
}

// run is the testable body of main: parses args, regenerates the
// requested exhibits to stdout, and reports progress/diagnostics on
// stderr. Cancelling ctx aborts the campaign paths between runs.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uexc-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		all       = fs.Bool("all", false, "regenerate every table and figure")
		table     = fs.Int("table", 0, "regenerate one table (1..5)")
		figure    = fs.Int("figure", 0, "regenerate one figure (3 or 4)")
		trace     = fs.Bool("trace", false, "render Figures 1 and 2 as event traces")
		ablations = fs.Bool("ablations", false, "run the ablation studies")
		validate  = fs.Bool("validate", false, "validate figure curves against the object store")
		csvDir    = fs.String("csv", "", "also write figure series as CSV files into this directory")
		campaign  = fs.Bool("faultcampaign", false, "run the deterministic fault-injection campaign")
		difftest  = fs.Bool("difftest", false, "run the cross-mode differential-testing campaign")
		soak      = fs.Bool("soak", false, "run the seed-space triage sweep: both campaigns with typed verdicts, failing on any unclassified run")
		soakDir   = fs.String("soakdir", "", "durable checkpoint directory for -soak (empty: run without resume)")
		seeds     = fs.Int("seeds", 30, "number of campaign seeds")
		workers   = fs.Int("parallel", runtime.NumCPU(), "worker goroutines for sharded runs (0 = all CPUs)")
		verbose   = fs.Bool("v", false, "per-run fault-campaign progress")
		engine    = fs.String("engine", "jit", "execution tier: jit, fast, or interp")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("creating -cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return fmt.Errorf("creating -memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // flush unreachable allocations before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "uexc-bench: writing -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	if !*all && *table == 0 && *figure == 0 && !*trace && !*ablations && !*campaign && !*difftest && !*soak {
		*all = true
	}
	if *workers < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 selects all CPUs), got %d", *workers)
	}
	// Both campaign kinds sweep seeds [0, n): a non-positive count can
	// only mean a typo, so reject it up front instead of silently
	// running an empty (or default-sized) campaign.
	if (*campaign || *difftest || *soak) && *seeds <= 0 {
		return fmt.Errorf("-seeds must be positive, got %d", *seeds)
	}
	if *soakDir != "" && !*soak {
		return fmt.Errorf("-soakdir only applies to -soak")
	}
	// -csv writes figure series; tables, traces, and campaigns have no
	// series, so a -csv that could never produce a file is an error,
	// not a silent no-op.
	if *csvDir != "" && !*all && *figure == 0 {
		return fmt.Errorf("-csv writes figure series and needs -all or -figure; " +
			"-table, -trace, and -faultcampaign produce no CSV")
	}
	if (*campaign && *difftest) || (*soak && (*campaign || *difftest)) {
		return fmt.Errorf("-faultcampaign, -difftest, and -soak are separate sweeps; pick one")
	}
	// -engine selects the execution tier every machine in this process
	// boots with. All three tiers are observationally identical (the
	// difftest cross-check in `make check` holds them to that), so this
	// only changes wall-clock — and is exactly the knob the cross-check
	// and the paired BENCH_cpu.json runs turn.
	switch *engine {
	case "jit":
		cpu.DefaultEngine = cpu.EngineJIT
	case "fast":
		cpu.DefaultEngine = cpu.EngineFast
	case "interp":
		cpu.DefaultEngine = cpu.EngineInterp
	default:
		return fmt.Errorf("-engine must be jit, fast, or interp, got %q", *engine)
	}

	printT := func(t *report.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t.Render())
		return nil
	}
	writeCSV := func(name string, s *report.Series) error {
		if *csvDir == "" {
			return nil
		}
		path, err := writeSeriesCSV(*csvDir, name, s)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", path)
		return nil
	}
	printS := func(name string, s *report.Series, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, s.Render())
		return writeCSV(name, s)
	}

	if *campaign {
		var progress io.Writer
		if *verbose {
			progress = stderr
		}
		var diag jitDiag
		res, err := harness.FaultCampaignCtx(ctx, diag.pool(), *seeds, *workers, progress)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Summary())
		if *verbose {
			diag.report(stderr)
		}
		if !res.Ok() {
			return fmt.Errorf("fault campaign failed (%d failures, missing coverage: %v)",
				len(res.Failures), res.MissingCoverage())
		}
		return nil
	}

	if *soak {
		var progress io.Writer
		if *verbose {
			progress = stderr
		}
		res, err := soakpkg.Run(ctx, soakpkg.Options{
			Seeds: *seeds, Workers: *workers, Dir: *soakDir,
		}, progress, stdout)
		if err != nil {
			return err
		}
		return res.Gate()
	}

	if *difftest {
		var progress io.Writer
		if *verbose {
			progress = stderr
		}
		var diag jitDiag
		res, err := dt.CampaignCtx(ctx, diag.pool(), *seeds, *workers, progress)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Summary())
		if *verbose {
			diag.report(stderr)
		}
		if !res.Ok() {
			return fmt.Errorf("differential campaign failed (%d divergences, self-test ok: %v)",
				len(res.Divergences), res.SelfTestOK)
		}
		return nil
	}

	if *all {
		out, err := harness.All(*validate, *workers)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, out)
		tr, err := harness.TraceDelivery()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, tr)
		if *csvDir != "" {
			s3, err := harness.Figure3(false, *workers)
			if err != nil {
				return err
			}
			if err := writeCSV("figure3.csv", s3); err != nil {
				return err
			}
			s4, err := harness.Figure4(false, *workers)
			if err != nil {
				return err
			}
			if err := writeCSV("figure4.csv", s4); err != nil {
				return err
			}
		}
		return nil
	}
	switch *table {
	case 0:
	case 1:
		if err := printT(harness.Table1()); err != nil {
			return err
		}
	case 2:
		if err := printT(harness.Table2()); err != nil {
			return err
		}
	case 3:
		if err := printT(harness.Table3()); err != nil {
			return err
		}
	case 4:
		if err := printT(harness.Table4()); err != nil {
			return err
		}
	case 5:
		if err := printT(harness.Table5()); err != nil {
			return err
		}
	default:
		return fmt.Errorf("no table %d (have 1..5)", *table)
	}
	switch *figure {
	case 0:
	case 3:
		s, err := harness.Figure3(*validate, *workers)
		if err := printS("figure3.csv", s, err); err != nil {
			return err
		}
	case 4:
		s, err := harness.Figure4(*validate, *workers)
		if err := printS("figure4.csv", s, err); err != nil {
			return err
		}
	default:
		return fmt.Errorf("no figure %d (have 3, 4; 1 and 2 via -trace)", *figure)
	}
	if *trace {
		out, err := harness.TraceDelivery()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, out)
	}
	if *ablations {
		if err := printT(harness.AblationHardware()); err != nil {
			return err
		}
		if err := printT(harness.AblationEager()); err != nil {
			return err
		}
		if err := printT(harness.AblationSubpage()); err != nil {
			return err
		}
	}
	return nil
}
