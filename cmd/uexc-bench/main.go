// Command uexc-bench regenerates the paper's evaluation: every table
// and figure of "Hardware and Software Support for Efficient Exception
// Handling" (Thekkath & Levy, ASPLOS 1994), measured on the simulated
// machine.
//
// Usage:
//
//	uexc-bench -all            # every exhibit (default)
//	uexc-bench -table 2        # one table (1..5)
//	uexc-bench -figure 3       # one figure (3 or 4)
//	uexc-bench -trace          # Figures 1 and 2 as event traces
//	uexc-bench -ablations      # the three ablation studies
//	uexc-bench -validate       # also run object-store crossover validation
//	uexc-bench -faultcampaign -seeds 100
//	                           # deterministic fault-injection campaign:
//	                           # each seed replayed twice under all three
//	                           # delivery modes, invariants checked after
//	                           # every injected event
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"uexc/internal/harness"
	"uexc/internal/report"
)

func main() {
	var (
		all       = flag.Bool("all", false, "regenerate every table and figure")
		table     = flag.Int("table", 0, "regenerate one table (1..5)")
		figure    = flag.Int("figure", 0, "regenerate one figure (3 or 4)")
		trace     = flag.Bool("trace", false, "render Figures 1 and 2 as event traces")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		validate  = flag.Bool("validate", false, "validate figure curves against the object store")
		csvDir    = flag.String("csv", "", "also write figure series as CSV files into this directory")
		campaign  = flag.Bool("faultcampaign", false, "run the deterministic fault-injection campaign")
		seeds     = flag.Int("seeds", 30, "number of fault-campaign seeds")
		verbose   = flag.Bool("v", false, "per-run fault-campaign progress")
	)
	flag.Parse()

	if !*all && *table == 0 && *figure == 0 && !*trace && !*ablations && !*campaign {
		*all = true
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "uexc-bench: %v\n", err)
		os.Exit(1)
	}
	printT := func(t *report.Table, err error) {
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Render())
	}
	writeCSV := func(name string, s *report.Series) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(s.CSV()), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	printS := func(name string, s *report.Series, err error) {
		if err != nil {
			fail(err)
		}
		fmt.Println(s.Render())
		writeCSV(name, s)
	}

	if *campaign {
		if *seeds <= 0 {
			fail(fmt.Errorf("-seeds must be positive, got %d", *seeds))
		}
		var progress io.Writer
		if *verbose {
			progress = os.Stderr
		}
		res, err := harness.FaultCampaign(*seeds, progress)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Summary())
		if !res.Ok() {
			fail(fmt.Errorf("fault campaign failed (%d failures, missing coverage: %v)",
				len(res.Failures), res.MissingCoverage()))
		}
		return
	}

	if *all {
		out, err := harness.All(*validate)
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
		tr, err := harness.TraceDelivery()
		if err != nil {
			fail(err)
		}
		fmt.Println(tr)
		if *csvDir != "" {
			s3, err := harness.Figure3(false)
			if err != nil {
				fail(err)
			}
			writeCSV("figure3.csv", s3)
			s4, err := harness.Figure4(false)
			if err != nil {
				fail(err)
			}
			writeCSV("figure4.csv", s4)
		}
		return
	}
	switch *table {
	case 0:
	case 1:
		printT(harness.Table1())
	case 2:
		printT(harness.Table2())
	case 3:
		printT(harness.Table3())
	case 4:
		printT(harness.Table4())
	case 5:
		printT(harness.Table5())
	default:
		fail(fmt.Errorf("no table %d (have 1..5)", *table))
	}
	switch *figure {
	case 0:
	case 3:
		s, err := harness.Figure3(*validate)
		printS("figure3.csv", s, err)
	case 4:
		s, err := harness.Figure4(*validate)
		printS("figure4.csv", s, err)
	default:
		fail(fmt.Errorf("no figure %d (have 3, 4; 1 and 2 via -trace)", *figure))
	}
	if *trace {
		out, err := harness.TraceDelivery()
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
	}
	if *ablations {
		printT(harness.AblationHardware())
		printT(harness.AblationEager())
		printT(harness.AblationSubpage())
	}
}
