package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"uexc/internal/report"
)

// splitJITDiag separates a campaign's -v stderr into the per-seed
// progress stream and the trailing "jit:" diagnostics line (empty if
// absent). Progress is deterministic at every -parallel width; the
// diagnostics counters are not, so comparisons must split them apart.
func splitJITDiag(stderr string) (progress, jit string) {
	if i := strings.Index(stderr, "jit: "); i >= 0 {
		return stderr[:i], stderr[i:]
	}
	return stderr, ""
}

func testSeries() *report.Series {
	return &report.Series{
		Title:   "test series",
		XLabel:  "x",
		YLabels: []string{"a", "b"},
		X:       []float64{1, 2},
		Y:       [][]float64{{10, 20}, {30, 40}},
	}
}

// TestWriteSeriesCSVCreatesDirectory: -csv into a directory that does
// not exist yet must create it (including parents) instead of failing
// with a bare os.WriteFile error.
func TestWriteSeriesCSVCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "does", "not", "exist")
	path, err := writeSeriesCSV(dir, "figure3.csv", testSeries())
	if err != nil {
		t.Fatalf("writeSeriesCSV into missing directory: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "x,a,b\n1,10,30\n2,20,40\n"
	if string(data) != want {
		t.Errorf("CSV content = %q, want %q", data, want)
	}
}

// TestCSVRejectedWithoutSeries: -csv silently did nothing when
// combined with -table/-trace/-faultcampaign (none of which produce a
// series); it must now be rejected up front with a clear error.
func TestCSVRejectedWithoutSeries(t *testing.T) {
	dir := t.TempDir()
	for _, args := range [][]string{
		{"-faultcampaign", "-seeds", "1", "-csv", dir},
		{"-table", "1", "-csv", dir},
		{"-trace", "-csv", dir},
		{"-ablations", "-csv", dir},
	} {
		var stdout, stderr bytes.Buffer
		err := run(context.Background(), args, &stdout, &stderr)
		if err == nil {
			t.Errorf("run(%v): no error for -csv without a figure series", args)
			continue
		}
		if !strings.Contains(err.Error(), "-csv") {
			t.Errorf("run(%v): error %q does not explain the -csv conflict", args, err)
		}
		if stdout.Len() != 0 {
			t.Errorf("run(%v): produced output despite flag error", args)
		}
	}
}

// TestCSVAllowedWithFigure: the combinations that do have series keep
// working, including alongside -table, and write into a fresh
// directory end to end.
func TestCSVAllowedWithFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("boots measurement machines")
	}
	dir := filepath.Join(t.TempDir(), "fresh")
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-figure", "3", "-csv", dir, "-parallel", "2"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -figure 3 -csv: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure3.csv")); err != nil {
		t.Errorf("figure3.csv not written: %v", err)
	}
	if !strings.Contains(stdout.String(), "Figure 3") {
		t.Error("figure output missing from stdout")
	}
	if !strings.Contains(stderr.String(), "wrote ") {
		t.Error("csv progress note missing from stderr")
	}
}

// TestParallelFlagValidation: explicit negative widths are nonsense
// and rejected; -seeds stays validated on the campaign path.
func TestParallelFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-faultcampaign", "-parallel", "-1"}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "-parallel") {
		t.Errorf("negative -parallel not rejected: %v", err)
	}
	if err := run(context.Background(), []string{"-faultcampaign", "-seeds", "-3"}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "-seeds") {
		t.Errorf("negative -seeds not rejected: %v", err)
	}
}

// TestUnknownExhibitRejected: bad table/figure numbers stay errors
// through the run() refactor.
func TestUnknownExhibitRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-table", "7"}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "no table 7") {
		t.Errorf("table 7 not rejected: %v", err)
	}
	if err := run(context.Background(), []string{"-figure", "5"}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "no figure 5") {
		t.Errorf("figure 5 not rejected: %v", err)
	}
}

// TestDifftestSmokeViaCLI: the differential campaign through the CLI,
// sharded, must pass, print the deterministic summary, and stream
// byte-identical -v progress at every -parallel width. The trailing
// "jit:" diagnostics line is exempt from the byte-identity check:
// its counters aggregate per-machine translation-tier activity across
// pool recycling, and how runs interleave onto pooled machines (hence
// how many block guards see a bumped page generation) legitimately
// varies with worker count. It must still be present and well-formed
// at every width.
func TestDifftestSmokeViaCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a differential campaign")
	}
	run1 := func(workers string) (string, string, string) {
		var stdout, stderr bytes.Buffer
		if err := run(context.Background(), []string{"-difftest", "-seeds", "6", "-parallel", workers, "-v"}, &stdout, &stderr); err != nil {
			t.Fatalf("difftest via CLI (-parallel %s): %v\n%s", workers, err, stdout.String())
		}
		prog, jit := splitJITDiag(stderr.String())
		if !regexp.MustCompile(`^jit: \d+ blocks compiled, \d+ block execs, \d+ guard misses, \d+ invalidations\n$`).MatchString(jit) {
			t.Errorf("-v (-parallel %s) missing or malformed jit diagnostics line:\n%s", workers, stderr.String())
		}
		return stdout.String(), prog, jit
	}
	out1, prog1, _ := run1("1")
	out4, prog4, _ := run1("4")
	if out1 != out4 {
		t.Errorf("difftest summary differs across -parallel widths:\n--- 1 ---\n%s--- 4 ---\n%s", out1, out4)
	}
	if prog1 != prog4 {
		t.Errorf("difftest -v progress differs across -parallel widths:\n--- 1 ---\n%s--- 4 ---\n%s", prog1, prog4)
	}
	if !strings.Contains(out1, "difftest: 6 seeds x 3 modes") {
		t.Errorf("summary banner missing:\n%s", out1)
	}
	if !strings.Contains(out1, "zero cross-mode divergences") {
		t.Errorf("divergence verdict missing:\n%s", out1)
	}
}

// TestDifftestFlagValidation: the two campaigns are mutually exclusive
// and -seeds stays validated on the difftest path.
func TestDifftestFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-difftest", "-faultcampaign"}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "pick one") {
		t.Errorf("-difftest -faultcampaign not rejected: %v", err)
	}
	if err := run(context.Background(), []string{"-difftest", "-seeds", "0"}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "-seeds") {
		t.Errorf("zero -seeds not rejected on difftest path: %v", err)
	}
}

// TestCampaignSmokeViaCLI: the full campaign path through the CLI,
// sharded, must pass and print the deterministic summary banner.
func TestCampaignSmokeViaCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a fault campaign")
	}
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-faultcampaign", "-seeds", "4", "-parallel", "0"}, &stdout, &stderr); err != nil {
		t.Fatalf("campaign via CLI: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "fault campaign: 4 seeds x 3 modes x 2 replays") {
		t.Errorf("summary banner missing:\n%s", stdout.String())
	}
}

// TestSeedsZeroRejectedOnCampaignPath: -seeds 0 (and negatives) must
// be a clear flag error on the fault-campaign path, not a silently
// empty or default-sized campaign; same for the difftest path.
func TestSeedsZeroRejectedOnCampaignPath(t *testing.T) {
	for _, args := range [][]string{
		{"-faultcampaign", "-seeds", "0"},
		{"-faultcampaign", "-seeds", "-7"},
		{"-difftest", "-seeds", "-1"},
	} {
		var stdout, stderr bytes.Buffer
		err := run(context.Background(), args, &stdout, &stderr)
		if err == nil || !strings.Contains(err.Error(), "-seeds") {
			t.Errorf("run(%v): err = %v, want a -seeds validation error", args, err)
		}
		if stdout.Len() != 0 {
			t.Errorf("run(%v): produced output despite the flag error", args)
		}
	}
}

// TestCampaignCancelled: a cancelled context aborts both campaign
// paths with the context error instead of running to completion —
// the Ctrl-C path main wires up via signal.NotifyContext.
func TestCampaignCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, args := range [][]string{
		{"-faultcampaign", "-seeds", "5"},
		{"-difftest", "-seeds", "5"},
	} {
		var stdout, stderr bytes.Buffer
		err := run(ctx, args, &stdout, &stderr)
		if err == nil || !strings.Contains(err.Error(), "aborted") {
			t.Errorf("run(%v) under cancelled ctx: err = %v, want an aborted error", args, err)
		}
		if strings.Contains(stdout.String(), "fault campaign:") ||
			strings.Contains(stdout.String(), "difftest:") {
			t.Errorf("run(%v): summary printed despite cancellation", args)
		}
	}
}
