// The multi-process fleet benchmark behind `make bench-fleet`
// (DESIGN.md §13, EXPERIMENTS.md): real worker processes are spawned
// from this same binary, a coordinator fans campaigns out to them over
// localhost HTTP, and three numbers land in BENCH_serve.json under the
// "fleet" key — coordinator overhead versus a single node on the same
// sweep, sustained throughput for a burst of 100k+ seed-equivalents,
// and the tenant-quota admission demo.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"uexc/internal/server"
)

// seedEquivCampaign is one campaign seed's cost in engine executions:
// three delivery modes, each run twice (run + determinism replay).
const seedEquivCampaign = 6

type benchFleetConfig struct {
	equivalents int    // burst target in seed-equivalents (<=0: 100000)
	benchOut    string // merge results into this JSON file ("" to skip)
}

// fleetBench is the machine-readable result recorded under "fleet".
type fleetBench struct {
	Workers             int     `json:"workers"`
	ProbeSeeds          int     `json:"probe_seeds"`
	SingleNodeSecs      float64 `json:"single_node_secs"`
	DistributedSecs     float64 `json:"distributed_secs"`
	CoordinatorOverhead float64 `json:"coordinator_overhead"`

	BurstJobs         int     `json:"burst_jobs"`
	BurstSeeds        int     `json:"burst_seeds"`
	SeedEquivalents   int     `json:"seed_equivalents"`
	BurstSecs         float64 `json:"burst_secs"`
	EquivalentsPerSec float64 `json:"equivalents_per_sec"`

	Dispatches   uint64 `json:"fleet_dispatches"`
	Acks         uint64 `json:"fleet_acks"`
	Redispatches uint64 `json:"fleet_redispatches"`

	TenantDemo tenantDemo `json:"tenant_demo"`
}

type tenantDemo struct {
	Admitted int                              `json:"admitted"`
	Rejected int                              `json:"rejected"`
	Snapshot map[string]server.TenantSnapshot `json:"tenants"`
}

func runBenchFleet(ctx context.Context, cfg benchFleetConfig, stdout, stderr io.Writer) error {
	if cfg.equivalents <= 0 {
		cfg.equivalents = 100_000
	}
	res := fleetBench{Workers: 2, ProbeSeeds: 600}

	// Two real worker processes, re-execed from this binary.
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	var workerURLs []string
	for i := 0; i < res.Workers; i++ {
		url, stop, err := spawnWorker(ctx, exe, stderr)
		if err != nil {
			return fmt.Errorf("bench-fleet: worker %d: %w", i, err)
		}
		defer stop()
		workerURLs = append(workerURLs, url)
	}
	fmt.Fprintf(stderr, "bench-fleet: %d worker processes up: %s\n", res.Workers, strings.Join(workerURLs, " "))

	// Overhead probe: the same sweep on a plain single node and through
	// the coordinator. The workers are separate processes, so on a
	// loaded box the distributed run also buys real parallelism; the
	// ratio is the honest end-to-end cost of dispatch + merge.
	single, stopSingle, err := startInProcess(server.Config{Workers: 4, QueueDepth: 8, MaxJobTimeout: 20 * time.Minute})
	if err != nil {
		return err
	}
	t0 := time.Now()
	if err := runCampaignJob(single, res.ProbeSeeds); err != nil {
		stopSingle()
		return fmt.Errorf("bench-fleet: single-node probe: %w", err)
	}
	res.SingleNodeSecs = time.Since(t0).Seconds()
	stopSingle()

	coord, stopCoord, err := startInProcess(server.Config{
		Workers: 2, QueueDepth: 8, MaxJobTimeout: 20 * time.Minute,
		WorkerNodes: workerURLs,
	})
	if err != nil {
		return err
	}
	defer stopCoord()
	t0 = time.Now()
	if err := runCampaignJob(coord, res.ProbeSeeds); err != nil {
		return fmt.Errorf("bench-fleet: distributed probe: %w", err)
	}
	res.DistributedSecs = time.Since(t0).Seconds()
	res.CoordinatorOverhead = res.DistributedSecs / res.SingleNodeSecs
	fmt.Fprintf(stderr, "bench-fleet: probe %d seeds: single %.2fs, distributed %.2fs (overhead x%.2f)\n",
		res.ProbeSeeds, res.SingleNodeSecs, res.DistributedSecs, res.CoordinatorOverhead)

	// Burst: enough campaign jobs through the coordinator to clear the
	// seed-equivalent target, two in flight at a time. Jobs used to stay
	// inside the historically clean 0..799 range; now that verdicts are
	// typed (expected failure shapes land in Classified, not Failures,
	// and the soak gates seeds 0-10k as clean-or-classified) a job's ok
	// bit tolerates classified seeds, so each burst job can sweep the
	// triaged range and every one must still come back ok.
	const seedsPerJob = 2500
	res.BurstJobs = (cfg.equivalents + seedsPerJob*seedEquivCampaign - 1) / (seedsPerJob * seedEquivCampaign)
	res.BurstSeeds = res.BurstJobs * seedsPerJob
	res.SeedEquivalents = res.BurstSeeds * seedEquivCampaign
	fmt.Fprintf(stderr, "bench-fleet: burst: %d jobs x %d seeds = %d seed-equivalents\n",
		res.BurstJobs, seedsPerJob, res.SeedEquivalents)
	t0 = time.Now()
	jobs := make(chan int)
	errs := make(chan error, res.Workers)
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				if err := runCampaignJob(coord, seedsPerJob); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	for i := 0; i < res.BurstJobs; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return fmt.Errorf("bench-fleet: burst: %w", err)
	default:
	}
	res.BurstSecs = time.Since(t0).Seconds()
	res.EquivalentsPerSec = float64(res.SeedEquivalents) / res.BurstSecs
	if err := server.VerifyMetrics(coord, func(s server.Snapshot) error {
		res.Dispatches, res.Acks, res.Redispatches = s.FleetDispatches, s.FleetAcks, s.FleetRedispatches
		return nil
	}); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "bench-fleet: burst done in %.1fs — %.0f seed-equivalents/s (%d dispatches, %d acks)\n",
		res.BurstSecs, res.EquivalentsPerSec, res.Dispatches, res.Acks)

	// Tenant-quota demo: a stingy bucket admits one sweep, rejects the
	// next two with Retry-After, and /metrics carries the per-tenant
	// accounting that lands in the bench record.
	demo, stopDemo, err := startInProcess(server.Config{
		Workers: 2, QueueDepth: 8,
		Tenants: server.TenantLimits{SeedsPerSec: 1, SeedBurst: 40},
	})
	if err != nil {
		return err
	}
	defer stopDemo()
	for i := 0; i < 3; i++ {
		status, err := postCampaign(demo, "bench", 30)
		if err != nil {
			return fmt.Errorf("bench-fleet: tenant demo: %w", err)
		}
		switch status {
		case http.StatusOK:
			res.TenantDemo.Admitted++
		case http.StatusTooManyRequests:
			res.TenantDemo.Rejected++
		default:
			return fmt.Errorf("bench-fleet: tenant demo: unexpected status %d", status)
		}
	}
	if err := server.VerifyMetrics(demo, func(s server.Snapshot) error {
		res.TenantDemo.Snapshot = s.Tenants
		if s.RejectedTenant == 0 {
			return fmt.Errorf("tenant demo produced no quota rejections")
		}
		return nil
	}); err != nil {
		return fmt.Errorf("bench-fleet: %w", err)
	}
	fmt.Fprintf(stderr, "bench-fleet: tenant demo: %d admitted, %d rejected by quota\n",
		res.TenantDemo.Admitted, res.TenantDemo.Rejected)

	blob, _ := json.MarshalIndent(res, "", "  ")
	fmt.Fprintf(stdout, "%s\n", blob)
	return mergeBench(cfg.benchOut, "fleet", res, stderr)
}

// spawnWorker launches one worker process on an ephemeral port and
// parses the listen address from its stderr banner.
func spawnWorker(ctx context.Context, exe string, stderr io.Writer) (url string, stop func(), err error) {
	cmd := exec.CommandContext(ctx, exe, "-addr", "127.0.0.1:0", "-workers", "4", "-job-timeout", "20m")
	pipe, err := cmd.StderrPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	stop = func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}

	// First banner line: "uexc-serve: listening on ADDR (workers N, queue M)".
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			if f := strings.Fields(line); len(f) >= 4 && strings.HasPrefix(line, "uexc-serve: listening on ") {
				select {
				case addrCh <- f[3]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, stop, nil
	case <-time.After(30 * time.Second):
		stop()
		return "", nil, fmt.Errorf("worker never reported its listen address")
	case <-ctx.Done():
		stop()
		return "", nil, ctx.Err()
	}
}

// startInProcess serves a Server in this process on an ephemeral port.
func startInProcess(cfg server.Config) (base string, stop func(), err error) {
	s, err := server.New(cfg)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	done := make(chan struct{})
	go func() { defer close(done); _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() {
		s.Close()
		_ = hs.Close()
		<-done
	}, nil
}

// runCampaignJob posts one campaign and consumes it to the verified
// trailer, failing on anything short of a clean ok.
func runCampaignJob(base string, seeds int) error {
	status, err := postCampaign(base, "", seeds)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("campaign status %d", status)
	}
	return nil
}

// postCampaign posts one campaign job under an optional tenant and, on
// 200, streams it to completion.
func postCampaign(base, tenant string, seeds int) (int, error) {
	body, _ := json.Marshal(server.Request{Type: server.TypeCampaign, Seeds: seeds, Parallel: 4})
	req, err := http.NewRequest(http.MethodPost, base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	_, ok, complete, errText := server.StreamResult(resp.Body)
	if !complete || !ok {
		return resp.StatusCode, fmt.Errorf("stream incomplete or failed: %s", errText)
	}
	return resp.StatusCode, nil
}

// mergeBench sets one key in the bench JSON file, preserving whatever
// other keys (the serving self-test's flat report) are already there.
func mergeBench(path, key string, value any, stderr io.Writer) error {
	if path == "" {
		return nil
	}
	m := map[string]any{}
	if old, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(old, &m)
	}
	m[key] = value
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench-out: %w", err)
	}
	fmt.Fprintf(stderr, "wrote %s (key %q)\n", path, key)
	return nil
}
