package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"uexc/internal/server"
)

func TestFlagErrors(t *testing.T) {
	var stderr bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, io.Discard, &stderr); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-selftest", "-loadgen"}, io.Discard, &stderr); err == nil {
		t.Error("-selftest -loadgen accepted together")
	}
	if err := run(context.Background(), []string{"-selftest", "-chaos"}, io.Discard, &stderr); err == nil {
		t.Error("-selftest -chaos accepted together")
	}
	if err := run(context.Background(), []string{"-resume"}, io.Discard, &stderr); err == nil {
		t.Error("-resume accepted without -store-dir")
	}
}

// TestForceExitOnSecondSignal: the first signal (ctx cancel) must
// restore default signal handling, arming the immediate-exit path for
// a second SIGTERM.
func TestForceExitOnSecondSignal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	restored := make(chan struct{})
	forceExitOnSecondSignal(ctx, func() { close(restored) })
	select {
	case <-restored:
		t.Fatal("signal handling restored before the first signal")
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case <-restored:
	case <-time.After(10 * time.Second):
		t.Fatal("signal handling never restored after the first signal")
	}
}

// TestChaosMode runs the crash-tolerance gauntlet through the CLI at
// small scale.
func TestChaosMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns across kills")
	}
	var stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-chaos", "-chaos-seeds", "4", "-chaos-kills", "2", "-chaos-seed", "3",
	}, io.Discard, &stderr)
	if err != nil {
		t.Fatalf("-chaos: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "chaos: ok") {
		t.Errorf("chaos transcript:\n%s", stderr.String())
	}
}

// TestServeModeDurableFlags: -store-dir/-resume reach the server — the
// startup log reports the journal, and the journal file exists after a
// clean shutdown.
func TestServeModeDurableFlags(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	var stderr bytes.Buffer
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-store-dir", dir, "-resume"}, io.Discard, &stderr)
	}()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("durable serve mode: %v\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("durable serve mode did not drain on cancel")
	}
	if !strings.Contains(stderr.String(), "journal "+dir) {
		t.Errorf("startup log does not mention the journal:\n%s", stderr.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "journal.ndjson")); err != nil {
		t.Errorf("journal file missing after shutdown: %v", err)
	}
}

func TestServeModeDrainsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	var stderr bytes.Buffer
	go func() { errc <- run(ctx, []string{"-addr", "127.0.0.1:0"}, io.Discard, &stderr) }()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve mode: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve mode did not drain on cancel")
	}
	if !strings.Contains(stderr.String(), "drained, bye") {
		t.Errorf("serve log:\n%s", stderr.String())
	}
}

// TestLoadgenMode drives -loadgen against a live server and checks the
// -bench-out report.
func TestLoadgenMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- server.Run(ctx, server.Config{Workers: 2, QueueDepth: 8}, nil, ready)
	}()
	addr := <-ready

	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-loadgen", "-url", "http://" + addr,
		"-jobs", "6", "-concurrency", "3", "-bench-out", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("loadgen: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "outcomes: ok 6, failed 0, dropped 0") {
		t.Errorf("loadgen report:\n%s", stdout.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep server.LoadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench-out not JSON: %v", err)
	}
	if rep.OK != 6 || rep.Jobs != 6 || rep.Concurrency != 3 {
		t.Errorf("bench-out report: %+v", rep)
	}

	cancel()
	if err := <-srvErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}
