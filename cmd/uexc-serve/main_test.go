package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"uexc/internal/server"
)

func TestFlagErrors(t *testing.T) {
	var stderr bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, io.Discard, &stderr); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-selftest", "-loadgen"}, io.Discard, &stderr); err == nil {
		t.Error("-selftest -loadgen accepted together")
	}
}

func TestServeModeDrainsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	var stderr bytes.Buffer
	go func() { errc <- run(ctx, []string{"-addr", "127.0.0.1:0"}, io.Discard, &stderr) }()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve mode: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve mode did not drain on cancel")
	}
	if !strings.Contains(stderr.String(), "drained, bye") {
		t.Errorf("serve log:\n%s", stderr.String())
	}
}

// TestLoadgenMode drives -loadgen against a live server and checks the
// -bench-out report.
func TestLoadgenMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- server.Run(ctx, server.Config{Workers: 2, QueueDepth: 8}, nil, ready)
	}()
	addr := <-ready

	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-loadgen", "-url", "http://" + addr,
		"-jobs", "6", "-concurrency", "3", "-bench-out", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("loadgen: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "outcomes: ok 6, failed 0, dropped 0") {
		t.Errorf("loadgen report:\n%s", stdout.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep server.LoadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench-out not JSON: %v", err)
	}
	if rep.OK != 6 || rep.Jobs != 6 || rep.Concurrency != 3 {
		t.Errorf("bench-out report: %+v", rep)
	}

	cancel()
	if err := <-srvErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}
