// Command uexc-serve exposes the uexc engines — fault-injection
// campaigns, the cross-mode differential oracle, figure sweeps, and
// single program runs — as a long-lived HTTP job service.
//
// Modes:
//
//	uexc-serve                       serve until SIGTERM/Ctrl-C, then drain
//	uexc-serve -store-dir d -resume  serve with a durable job journal, resuming
//	                                 jobs that survived the last crash
//	uexc-serve -coordinator u1,u2    serve as a fleet coordinator: campaign and
//	                                 difftest jobs fan out to these worker nodes
//	uexc-serve -selftest             end-to-end serving smoke (spins its own server)
//	uexc-serve -loadgen -url ...     generate load against a running server
//	uexc-serve -chaos                crash-tolerance gauntlet: repeated mid-campaign
//	                                 kills must leave the final stream byte-identical
//	uexc-serve -fleet-smoke          distributed gauntlet: coordinator + 2 workers,
//	                                 worker kill, coordinator kill, torn journal tmp
//	uexc-serve -bench-fleet          multi-process localhost fleet benchmark
//
// See README.md "Serving" and DESIGN.md §11–13.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"uexc/internal/server"
	"uexc/internal/server/chaos"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	forceExitOnSecondSignal(ctx, stop)
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "uexc-serve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uexc-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8612", "listen address (serve mode)")
		workers    = fs.Int("workers", 0, "jobs executing concurrently (0: 4)")
		queue      = fs.Int("queue", 0, "admission queue depth beyond the workers (0: 16)")
		jobTimeout = fs.Duration("job-timeout", 0, "per-job deadline cap (0: 120s)")
		maxSeeds   = fs.Int("max-seeds", 0, "per-job campaign/difftest seed cap (0: 5000)")
		storeDir   = fs.String("store-dir", "", "durable job journal directory (empty: in-memory only)")
		resume     = fs.Bool("resume", false, "re-admit journaled jobs that never finished (needs -store-dir)")
		warmBoot   = fs.Bool("warm-boot", true, "serve machine checkouts from a warm post-boot snapshot (fork/restore instead of boot/reset)")

		coordinator    = fs.String("coordinator", "", "comma-separated worker base URLs; serve as a fleet coordinator (DESIGN.md §13)")
		dispatchShards = fs.Int("dispatch-shards", 0, "shards per dispatched range in coordinator mode (0: 12)")

		tenantInflight = fs.Int("tenant-inflight", 0, "per-tenant (X-Tenant) max in-flight jobs (0: unlimited)")
		tenantQueued   = fs.Int("tenant-queued", 0, "per-tenant max queued jobs (0: unlimited)")
		tenantRate     = fs.Float64("tenant-seeds-per-sec", 0, "per-tenant admission rate in seed units/s (0: unlimited)")
		tenantBurst    = fs.Float64("tenant-burst", 0, "per-tenant token-bucket burst in seed units (0: 4s of refill)")

		selftest    = fs.Bool("selftest", false, "run the end-to-end serving smoke against an ephemeral server, then exit")
		loadgen     = fs.Bool("loadgen", false, "generate load against -url, then exit")
		chaosMode   = fs.Bool("chaos", false, "run the crash-tolerance gauntlet on an ephemeral server, then exit")
		chaosSeeds  = fs.Int("chaos-seeds", 0, "campaign size for -chaos (0: 30)")
		chaosKills  = fs.Int("chaos-kills", 0, "kill/restart cycles for -chaos (0: 3)")
		chaosSeed   = fs.Int64("chaos-seed", 0, "fault-plan seed for -chaos (reproduces a failing run)")
		fleetSmoke  = fs.Bool("fleet-smoke", false, "run the distributed-coordinator gauntlet on an ephemeral fleet, then exit")
		fleetSeeds  = fs.Int("fleet-seeds", 0, "campaign size for -fleet-smoke (0: 30)")
		benchFleet  = fs.Bool("bench-fleet", false, "run the multi-process localhost fleet benchmark, then exit")
		fleetEquiv  = fs.Int("fleet-equivalents", 0, "seed-equivalent target for the -bench-fleet burst (0: 100000)")
		url         = fs.String("url", "http://127.0.0.1:8612", "server base URL (loadgen mode)")
		jobs        = fs.Int("jobs", 200, "total jobs (loadgen/selftest)")
		concurrency = fs.Int("concurrency", 32, "client goroutines (loadgen/selftest)")
		benchOut    = fs.String("bench-out", "", "write the load report as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if modes := btoi(*selftest) + btoi(*loadgen) + btoi(*chaosMode) + btoi(*fleetSmoke) + btoi(*benchFleet); modes > 1 {
		return fmt.Errorf("-selftest, -loadgen, -chaos, -fleet-smoke and -bench-fleet are mutually exclusive")
	}
	if *resume && *storeDir == "" {
		return fmt.Errorf("-resume requires -store-dir")
	}

	tenants := server.TenantLimits{
		MaxInFlight: *tenantInflight, MaxQueued: *tenantQueued,
		SeedsPerSec: *tenantRate, SeedBurst: *tenantBurst,
	}
	var nodes []string
	for _, u := range strings.Split(*coordinator, ",") {
		if u = strings.TrimSpace(u); u != "" {
			nodes = append(nodes, u)
		}
	}

	switch {
	case *chaosMode:
		return chaos.Run(ctx, chaos.Config{
			Seeds: *chaosSeeds, Kills: *chaosKills, Seed: *chaosSeed,
			Workers: *workers, Out: stderr,
		})

	case *fleetSmoke:
		return chaos.FleetRun(ctx, chaos.FleetConfig{
			Seeds: *fleetSeeds, Seed: *chaosSeed, Out: stderr,
		})

	case *benchFleet:
		return runBenchFleet(ctx, benchFleetConfig{
			equivalents: *fleetEquiv, benchOut: *benchOut,
		}, stdout, stderr)

	case *selftest:
		rep, err := server.Smoke(ctx, stderr, server.SmokeConfig{
			Jobs: *jobs, Concurrency: *concurrency,
			Workers: *workers, QueueDepth: *queue,
		})
		if rep != nil {
			rep.Render(stdout)
		}
		if err != nil {
			return err
		}
		return writeBench(*benchOut, rep, stderr)

	case *loadgen:
		start := time.Now()
		rep, err := server.RunLoad(ctx, server.LoadConfig{
			BaseURL: *url, Jobs: *jobs, Concurrency: *concurrency, Verbose: true,
		})
		if rep != nil {
			rep.Render(stdout)
			fmt.Fprintf(stderr, "loadgen: wall time %.2fs\n", time.Since(start).Seconds())
		}
		if err != nil {
			return err
		}
		return writeBench(*benchOut, rep, stderr)

	default:
		return server.Run(ctx, server.Config{
			Addr: *addr, Workers: *workers, QueueDepth: *queue,
			MaxJobTimeout: *jobTimeout, MaxSeeds: *maxSeeds,
			StoreDir: *storeDir, Resume: *resume, WarmBoot: *warmBoot,
			Tenants: tenants, WorkerNodes: nodes, DispatchShards: *dispatchShards,
		}, stderr, nil)
	}
}

// forceExitOnSecondSignal is the double-SIGTERM escape hatch: the
// first signal cancels ctx and begins the graceful drain; restore then
// returns signal handling to the default disposition, so a second
// SIGTERM or Ctrl-C terminates the process immediately instead of
// waiting out a drain that may be pinned by a long campaign.
func forceExitOnSecondSignal(ctx context.Context, restore func()) {
	go func() {
		<-ctx.Done()
		restore()
	}()
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// writeBench persists the machine-readable load report (BENCH_serve.json).
func writeBench(path string, rep *server.LoadReport, stderr io.Writer) error {
	if path == "" || rep == nil {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench-out: %w", err)
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return nil
}
