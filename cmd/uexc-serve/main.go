// Command uexc-serve exposes the uexc engines — fault-injection
// campaigns, the cross-mode differential oracle, figure sweeps, and
// single program runs — as a long-lived HTTP job service.
//
// Modes:
//
//	uexc-serve                       serve until SIGTERM/Ctrl-C, then drain
//	uexc-serve -selftest             end-to-end serving smoke (spins its own server)
//	uexc-serve -loadgen -url ...     generate load against a running server
//
// See README.md "Serving" and DESIGN.md §11.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uexc/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "uexc-serve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uexc-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8612", "listen address (serve mode)")
		workers    = fs.Int("workers", 0, "jobs executing concurrently (0: 4)")
		queue      = fs.Int("queue", 0, "admission queue depth beyond the workers (0: 16)")
		jobTimeout = fs.Duration("job-timeout", 0, "per-job deadline cap (0: 120s)")
		maxSeeds   = fs.Int("max-seeds", 0, "per-job campaign/difftest seed cap (0: 5000)")

		selftest    = fs.Bool("selftest", false, "run the end-to-end serving smoke against an ephemeral server, then exit")
		loadgen     = fs.Bool("loadgen", false, "generate load against -url, then exit")
		url         = fs.String("url", "http://127.0.0.1:8612", "server base URL (loadgen mode)")
		jobs        = fs.Int("jobs", 200, "total jobs (loadgen/selftest)")
		concurrency = fs.Int("concurrency", 32, "client goroutines (loadgen/selftest)")
		benchOut    = fs.String("bench-out", "", "write the load report as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *selftest && *loadgen {
		return fmt.Errorf("-selftest and -loadgen are mutually exclusive")
	}

	switch {
	case *selftest:
		rep, err := server.Smoke(ctx, stderr, server.SmokeConfig{
			Jobs: *jobs, Concurrency: *concurrency,
			Workers: *workers, QueueDepth: *queue,
		})
		if rep != nil {
			rep.Render(stdout)
		}
		if err != nil {
			return err
		}
		return writeBench(*benchOut, rep, stderr)

	case *loadgen:
		start := time.Now()
		rep, err := server.RunLoad(ctx, server.LoadConfig{
			BaseURL: *url, Jobs: *jobs, Concurrency: *concurrency, Verbose: true,
		})
		if rep != nil {
			rep.Render(stdout)
			fmt.Fprintf(stderr, "loadgen: wall time %.2fs\n", time.Since(start).Seconds())
		}
		if err != nil {
			return err
		}
		return writeBench(*benchOut, rep, stderr)

	default:
		return server.Run(ctx, server.Config{
			Addr: *addr, Workers: *workers, QueueDepth: *queue,
			MaxJobTimeout: *jobTimeout, MaxSeeds: *maxSeeds,
		}, stderr, nil)
	}
}

// writeBench persists the machine-readable load report (BENCH_serve.json).
func writeBench(path string, rep *server.LoadReport, stderr io.Writer) error {
	if path == "" || rep == nil {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench-out: %w", err)
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return nil
}
