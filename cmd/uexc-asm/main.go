// Command uexc-asm assembles a source file for the simulated machine
// and prints a listing, the symbol table, or a flat disassembly.
//
// Usage:
//
//	uexc-asm [-org 0x80000000] [-syms] [-dis] file.s
//
// The default origin is kseg0 (kernel images); user programs typically
// pass -org 0x400000.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"uexc/internal/arch"
	"uexc/internal/asm"
	"uexc/internal/kernel"
	"uexc/internal/userrt"
)

func main() {
	var (
		orgFlag = flag.String("org", "0x80000000", "initial location counter")
		syms    = flag.Bool("syms", false, "print the symbol table")
		dis     = flag.Bool("dis", true, "print a disassembly listing")
		listing = flag.Bool("listing", false, "print the per-statement source listing")
		withRT  = flag.Bool("userrt", false, "prepend the user runtime (for uexc-run programs) and assemble at the user text base")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: uexc-asm [-org addr] [-syms] [-dis] file.s")
		os.Exit(2)
	}

	org, err := strconv.ParseUint(*orgFlag, 0, 32)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uexc-asm: bad -org: %v\n", err)
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "uexc-asm: %v\n", err)
		os.Exit(1)
	}
	text := string(src)
	if *withRT {
		text = userrt.Prelude() + text
		org = kernel.UserTextBase
	}
	p, list, err := asm.AssembleWithListing(text, uint32(org))
	if err != nil {
		fmt.Fprintf(os.Stderr, "uexc-asm: %v\n", err)
		os.Exit(1)
	}

	lo, end := p.Extent()
	fmt.Printf("image: %#x..%#x (%d bytes, %d chunks)\n", lo, end, end-lo, len(p.Chunks))

	if *listing {
		for _, e := range list {
			fmt.Printf("%5d  %08x  %4d  %s\n", e.Line, e.Addr, e.Size, e.Text)
		}
	}

	if *syms {
		names := make([]string, 0, len(p.Symbols))
		for n := range p.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return p.Symbols[names[i]] < p.Symbols[names[j]] })
		for _, n := range names {
			fmt.Printf("%08x  %s\n", p.Symbols[n], n)
		}
	}
	if *dis {
		for _, ch := range p.Chunks {
			for off := 0; off+4 <= len(ch.Data); off += 4 {
				addr := ch.Addr + uint32(off)
				w := uint32(ch.Data[off]) | uint32(ch.Data[off+1])<<8 |
					uint32(ch.Data[off+2])<<16 | uint32(ch.Data[off+3])<<24
				fmt.Printf("%08x:  %08x  %s\n", addr, w, arch.DisassembleWord(w, addr))
			}
		}
	}
}
