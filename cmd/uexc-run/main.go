// Command uexc-run boots the simulated kernel, loads a user program
// (assembled against the user runtime; the program must define "main"),
// runs it to completion, and reports console output and statistics.
//
// Usage:
//
//	uexc-run [-hw mask] [-max n] [-stats] prog.s
//
// -hw enables the proposed Tera-style hardware delivery for the given
// exception-code bitmask (e.g. -hw 0x200 claims breakpoints).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"uexc/internal/arch"
	"uexc/internal/core"
)

func main() {
	var (
		hw    = flag.String("hw", "", "hardware-delivery exception mask (e.g. 0x200)")
		max   = flag.Uint64("max", 200_000_000, "instruction budget")
		stats = flag.Bool("stats", true, "print machine statistics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: uexc-run [-hw mask] [-max n] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "uexc-run: %v\n", err)
		os.Exit(1)
	}

	m, err := core.NewMachine()
	if err != nil {
		fmt.Fprintf(os.Stderr, "uexc-run: %v\n", err)
		os.Exit(1)
	}
	if err := m.LoadProgram(string(src)); err != nil {
		fmt.Fprintf(os.Stderr, "uexc-run: %v\n", err)
		os.Exit(1)
	}
	if *hw != "" {
		mask, err := strconv.ParseUint(*hw, 0, 32)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uexc-run: bad -hw: %v\n", err)
			os.Exit(2)
		}
		m.EnableHardwareDelivery(uint32(mask))
	}

	runErr := m.Run(*max)
	fmt.Print(m.K.Console())
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "uexc-run: %v\n", runErr)
	}

	if *stats {
		c := m.CPU()
		fmt.Fprintf(os.Stderr, "\n--- machine statistics ---\n")
		fmt.Fprintf(os.Stderr, "instructions: %d\n", c.Insts)
		fmt.Fprintf(os.Stderr, "cycles:       %d (%.2f ms simulated at 25 MHz)\n",
			c.Cycles, core.Micros(c.Cycles)/1000)
		fmt.Fprintf(os.Stderr, "tlb:          %d hits, %d misses\n", m.K.TLB.Hits, m.K.TLB.Misses)
		for code, n := range c.ExcCounts {
			if n > 0 {
				fmt.Fprintf(os.Stderr, "exceptions:   %-5s %d\n", arch.ExcName(uint32(code)), n)
			}
		}
		s := m.K.Stats
		fmt.Fprintf(os.Stderr, "kernel:       %d syscalls, %d page faults, %d unix signals, %d fast prot deliveries, %d subpage emulations\n",
			s.Syscalls, s.PageFaults, s.UnixDeliveries, s.ProtFaultsToUser, s.SubpageEmuls)
	}
	if runErr != nil {
		os.Exit(1)
	}
}
