// Package uexc reproduces "Hardware and Software Support for Efficient
// Exception Handling" (Chandramohan A. Thekkath and Henry M. Levy,
// ASPLOS VI, 1994) as a complete simulated system in Go.
//
// The paper's artifact was a modified Ultrix 4.2A kernel on a 25 MHz
// MIPS R3000 DECstation 5000/200, delivering synchronous exceptions to
// user-level handlers an order of magnitude faster than the standard
// Unix signal machinery. This repository rebuilds that world:
//
//   - an R3000-like CPU interpreter with branch delay slots, precise
//     exceptions, CP0, and a software-managed TLB (internal/cpu,
//     internal/tlb, internal/mem, internal/arch);
//   - a two-pass assembler for the ISA (internal/asm);
//   - a simulated kernel whose first-level exception handlers run as
//     real simulated instructions: the paper's 65-instruction fast path
//     and an Ultrix-style signal path (internal/kernel);
//   - the user-mode runtime: trampoline, low-level fast handlers
//     (internal/userrt);
//   - the proposed hardware support as CPU features: Tera-style direct
//     user vectoring via an exception-target register, and a per-TLB-
//     entry U bit for user-level protection updates;
//   - the paper's applications: a generational GC with three write-
//     barrier implementations, a swizzling persistent store, lazy
//     unbounded streams, and full/empty-bit synchronization
//     (internal/apps/...);
//   - a benchmark harness regenerating every table and figure of the
//     evaluation (internal/harness, cmd/uexc-bench).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for measured-vs-paper
// results.
package uexc
