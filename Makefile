# uexc build/verify entry points.
#
# `make check` is the tier-1 verification gate: static checks, the full
# test suite under the race detector, and a 30-seed fault-injection
# smoke campaign across all three delivery modes.

GO ?= go

# Statement-coverage ratchet over internal/: `make cover` fails if the
# suite's total coverage drops below this floor. Raise it when coverage
# durably improves; never lower it to make a change pass.
COVER_MIN ?= 86.0

.PHONY: all build test vet check cover campaign soak soak-smoke bench-campaign bench-cpu bench-jit bench-serve bench-fleet bench-snapshot serve-smoke chaos-smoke snapshot-smoke difftest-crosscheck fleet-smoke fuzz clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Tier-1 gate. The smoke campaign runs through the parallel engine
# (four workers); its output is byte-identical to -parallel 1 by the
# deterministic-merge contract (internal/parallel, DESIGN.md §8).
check: vet build
	$(GO) test -race ./...
	$(GO) run ./cmd/uexc-bench -faultcampaign -seeds 30 -parallel 4
	$(GO) run ./cmd/uexc-bench -difftest -seeds 30 -parallel 4
	$(MAKE) difftest-crosscheck
	$(MAKE) soak-smoke
	$(MAKE) snapshot-smoke
	$(MAKE) serve-smoke
	$(MAKE) chaos-smoke
	$(MAKE) fleet-smoke
	$(MAKE) cover

# Serving smoke: spins a race-enabled uexc-serve on an ephemeral port
# and runs the end-to-end self-test — CLI byte-identity of streamed
# jobs, deterministic 429 backpressure, a mixed loadgen burst with
# exact /metrics accounting, and a graceful SIGTERM-style drain.
serve-smoke:
	$(GO) run -race ./cmd/uexc-serve -selftest -jobs 24 -concurrency 8

# Snapshot/fork/debug-session gauntlet (DESIGN.md §16), race-enabled
# and cache-busted: CoW snapshot round-trips at every layer (mem, TLB,
# CPU, kernel, machine), the engine-toggle torture with restore points
# and post-restore SMC, warm-vs-cold pool byte-identity under all three
# engines, record-replay exactness, and the virtual-breakpoint debug
# sessions end to end (including the kernel trapframe-page watch).
snapshot-smoke:
	$(GO) test -race -count=1 ./internal/snapshot ./internal/debug
	$(GO) test -race -count=1 -run 'Snapshot|Fork|Restore|PoolWarm|WarmPool|SMCAfterFork|TimeTravel|Debug|Session' \
		./internal/mem ./internal/tlb ./internal/cpu ./internal/core ./internal/difftest ./internal/server

# Crash-tolerance gauntlet: a 30-seed campaign through a journal-backed
# race-enabled server that is killed and restarted 3 times mid-run
# (plus injected worker panics, shard stalls, slow fsyncs, and client
# disconnects); the survivor's stream must be byte-identical to an
# undisturbed run, /metrics accounting exact, and a poison shard must
# quarantine with a typed failure instead of wedging the service
# (DESIGN.md §12, EXPERIMENTS.md).
chaos-smoke:
	$(GO) run -race ./cmd/uexc-serve -chaos -chaos-seeds 30 -chaos-kills 3

# Distributed gauntlet: a race-enabled coordinator with a durable
# journal fans a 30-seed campaign out to two in-process worker nodes;
# the harness kills one worker mid-shard-range (the stranded range must
# re-dispatch to the survivor), then kills the coordinator itself and
# plants a torn compaction tmp in its store directory before a
# replacement coordinator resumes from the merge frontier with a
# replacement worker. The resumed stream must be byte-identical to an
# undisturbed serial run and the survivor's metrics exact
# (DESIGN.md §13).
fleet-smoke:
	$(GO) run -race ./cmd/uexc-serve -fleet-smoke

# Translation-tier cross-check: the 30-seed difftest with the JIT
# forced on and forced off must produce byte-identical summaries —
# the executable observational-identity contract of cpu/translate.go.
difftest-crosscheck:
	$(GO) run ./cmd/uexc-bench -difftest -seeds 30 -parallel 4 -engine jit > .crosscheck-jit.out
	$(GO) run ./cmd/uexc-bench -difftest -seeds 30 -parallel 4 -engine interp > .crosscheck-interp.out
	cmp .crosscheck-jit.out .crosscheck-interp.out
	rm -f .crosscheck-jit.out .crosscheck-interp.out

# Coverage ratchet: reruns the suite with statement coverage over the
# internal packages and enforces the COVER_MIN floor.
cover:
	$(GO) test -count=1 -coverprofile=cover.out -coverpkg=./internal/... ./... > /dev/null
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total statement coverage: $${total}% (floor: $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit !(t+0 >= m+0) }' || \
		{ echo "coverage $${total}% is below the $(COVER_MIN)% ratchet"; exit 1; }

# Full acceptance campaign (the 100-seed run documented in DESIGN.md),
# sharded over all CPUs.
campaign:
	$(GO) run ./cmd/uexc-bench -faultcampaign -seeds 100 -parallel 0

# Seed-space triage sweep (DESIGN.md §14): both campaign engines over
# seeds 0..10,000 with typed verdicts, checkpointed through the §12
# durable job store under .soak/ — kill it at any point and rerun; it
# resumes from the journal byte-identically. Fails on any unclassified
# (engine-bug) verdict.
soak:
	$(GO) run ./cmd/uexc-bench -soak -seeds 10000 -parallel 0 -soakdir .soak

# Race-enabled soak smoke over seeds 0..2,500 — covers the three
# historically bad seeds (820, 2223, 2227) — part of the tier-1 gate.
soak-smoke:
	$(GO) run -race ./cmd/uexc-bench -soak -seeds 2500 -parallel 0

# Serial-vs-parallel campaign wall time, recorded in the bench
# trajectory (see EXPERIMENTS.md).
bench-campaign:
	$(GO) test -run '^$$' -bench 'BenchmarkCampaign(Serial|Parallel)' -benchtime 5x .

# Interpreter fast-path benchmarks: raw step loop and memcpy-style
# workload throughput (sim_MIPS) plus the serial campaign the DESIGN
# §10 speedup claim is measured on. Before/after numbers for the
# fast-path change are recorded in BENCH_cpu.json.
bench-cpu:
	$(GO) test -run '^$$' -bench 'Benchmark(StepLoop|MemcpyProgram|CampaignSerial)' -benchtime 2s .

# Paired translation-tier benchmark: the same three benchmarks with
# the engine pinned to the fast path and then to the JIT, back to back
# on the same host — the before/after methodology the "jit" entry in
# BENCH_cpu.json records. UEXC_ENGINE is read by the bench helpers in
# bench_test.go.
bench-jit:
	@echo "== engine=fast (before) =="
	UEXC_ENGINE=fast $(GO) test -run '^$$' -bench 'Benchmark(StepLoop|MemcpyProgram|CampaignSerial)' -benchtime 2s .
	@echo "== engine=jit (after) =="
	UEXC_ENGINE=jit $(GO) test -run '^$$' -bench 'Benchmark(StepLoop|MemcpyProgram|CampaignSerial)' -benchtime 2s .

# Serving benchmark: the full self-test at acceptance scale — 200
# mixed jobs at client concurrency 32 against a race-enabled server —
# recording throughput and latency percentiles in BENCH_serve.json
# (see EXPERIMENTS.md).
bench-serve:
	$(GO) run -race ./cmd/uexc-serve -selftest -jobs 200 -concurrency 32 -bench-out BENCH_serve.json

# Fleet benchmark: spawns two real uexc-serve worker processes, runs a
# coordinator against them, and records coordinator overhead vs a
# single node, a 100k+ seed-equivalent burst, and the tenant-quota
# demo under the "fleet" key of BENCH_serve.json (DESIGN.md §13,
# EXPERIMENTS.md). Built without -race: this measures throughput.
bench-fleet:
	$(GO) run ./cmd/uexc-serve -bench-fleet -bench-out BENCH_serve.json

# Machine checkout latency (cold boot vs fork-from-snapshot vs warm
# in-place restore) and warm-pool campaign throughput; paired numbers
# recorded under the "snapshot" keys of BENCH_cpu.json and
# BENCH_serve.json (the fork-vs-boot >=5x acceptance bar lives there).
bench-snapshot:
	$(GO) test -run '^$$' -bench 'Benchmark(ColdBoot|ForkFromSnapshot|PoolCycle|DifftestCampaign)' -benchtime 2s .

# Short coverage-guided fuzzing burst on the decoder and assembler.
fuzz:
	$(GO) test ./internal/arch/ -fuzz FuzzDecodeEncode -fuzztime 30s
	$(GO) test ./internal/asm/ -fuzz FuzzAssemble -fuzztime 30s

clean:
	$(GO) clean ./...
