package uexc

// Snapshot/fork benchmarks (DESIGN.md §16): machine checkout latency —
// cold boot vs fork-from-snapshot vs warm in-place restore — and the
// warm pool's effect on oracle campaign throughput. `make
// bench-snapshot` runs these; the paired numbers are recorded under
// the "snapshot" keys of BENCH_cpu.json and BENCH_serve.json.

import (
	"context"
	"io"
	"testing"

	"uexc/internal/core"
	"uexc/internal/difftest"
	"uexc/internal/progen"
)

// BenchmarkColdBoot is the baseline checkout path a warm pool
// replaces: boot a whole machine (kernel image load, page tables,
// launch stub) from nothing.
func BenchmarkColdBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.NewMachine(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForkFromSnapshot builds machines from a shared post-boot
// snapshot instead of booting — the empty-pool checkout path with warm
// boot on. The acceptance bar is >=5x over BenchmarkColdBoot.
func BenchmarkForkFromSnapshot(b *testing.B) {
	src, err := core.NewMachine()
	if err != nil {
		b.Fatal(err)
	}
	snap := src.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Fork(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPoolCycle measures the full serving cycle — checkout, load a
// generated program, run it, return — on a steady-state pool of one
// machine. warm selects restore-in-place checkouts vs Reset scrubs;
// the run between checkouts is identical, so the delta is the
// scrub-vs-CoW-restore cost the serving layer pays per job.
func benchPoolCycle(b *testing.B, warm bool) {
	b.Helper()
	var pool core.MachinePool
	if warm {
		if err := pool.EnableWarmBoot(); err != nil {
			b.Fatal(err)
		}
	}
	src := progen.Generate(1).Source(core.ModeFast, false)
	m, err := pool.Get()
	if err != nil {
		b.Fatal(err)
	}
	pool.Put(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := pool.Get()
		if err != nil {
			b.Fatal(err)
		}
		if err := m.LoadProgram(src); err != nil {
			b.Fatal(err)
		}
		if err := m.Run(3_000_000); err != nil {
			b.Fatal(err)
		}
		pool.Put(m)
	}
}

func BenchmarkPoolCycleReset(b *testing.B)       { benchPoolCycle(b, false) }
func BenchmarkPoolCycleWarmRestore(b *testing.B) { benchPoolCycle(b, true) }

// benchDifftestCampaign runs the three-mode oracle over 10 seeds on
// one worker, with and without the warm pool — the campaign-throughput
// number BENCH_serve.json's snapshot entry records.
func benchDifftestCampaign(b *testing.B, warm bool) {
	b.Helper()
	var pool core.MachinePool
	if warm {
		if err := pool.EnableWarmBoot(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := difftest.CampaignCtx(context.Background(), &pool, 10, 1, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDifftestCampaignColdPool(b *testing.B) { benchDifftestCampaign(b, false) }
func BenchmarkDifftestCampaignWarmPool(b *testing.B) { benchDifftestCampaign(b, true) }
