// dsm: page-based distributed shared virtual memory (Li & Hudak's IVY,
// which the paper's introduction cites as a motivating use of
// exceptions). Four nodes share a paged address space under a
// single-writer/multiple-reader protocol; every coherence action —
// fetching a copy on a read miss, acquiring ownership and invalidating
// on a write miss — is triggered by a memory-protection fault, so the
// operating system's exception path is on the critical path of every
// miss.
//
//	go run ./examples/dsm
package main

import (
	"fmt"
	"log"

	"uexc/internal/apps/dsm"
	"uexc/internal/core"
	"uexc/internal/simos"
)

func main() {
	ultCosts, err := simos.Measure(core.ModeUltrix)
	if err != nil {
		log.Fatal(err)
	}
	fastCosts, err := simos.Measure(core.ModeFast)
	if err != nil {
		log.Fatal(err)
	}

	const nodes, pages, ops = 4, 16, 20_000
	run := func(costs simos.CostTable, label string) dsm.Result {
		s := dsm.New(nodes, pages, dsm.DefaultNetwork(costs))
		r := dsm.Workload(s, ops, 99)
		if err := s.CheckCoherence(); err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-28s %7.3f s  (%5.1f%% of time in exception delivery, %d faults)\n",
			label, r.Stats.TotalSeconds, 100*r.FaultShare,
			r.Stats.ReadFaults+r.Stats.WriteFaults)
		return r
	}

	fmt.Printf("DSM: %d nodes, %d shared pages, %d operations, 10 Mb/s network\n\n", nodes, pages, ops)
	u := run(ultCosts, "Unix signal delivery")
	f := run(fastCosts, "Fast user-level delivery")

	if u.Checksum != f.Checksum {
		log.Fatal("results diverged between mechanisms")
	}
	fmt.Printf("\nidentical results (checksum %#x); the protocol is exception-driven either\n", u.Checksum)
	fmt.Println("way, but fast delivery removes most of the OS share of each miss. On a")
	fmt.Println("faster network the OS share dominates — which is exactly why the DSM and")
	fmt.Println("micro-kernel communities pushed for user-level fault handling.")
}
