// streams: the paper's §4.2.1 unbounded-data-structure example, live on
// the simulated machine. A conceptually infinite Fibonacci list is
// materialized on demand: its unevaluated tail is an unaligned (odd)
// pointer, and walking onto it takes an unaligned-access fault whose
// user-level handler builds the next cell and resumes the traversal.
// The consumer contains no "force the next element" calls at all.
//
//	go run ./examples/streams
package main

import (
	"fmt"
	"log"

	"uexc/internal/apps/stream"
	"uexc/internal/core"
)

func main() {
	const n = 40
	r, err := stream.Run(n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("summed the first %d Fibonacci numbers from a lazy stream\n", n)
	fmt.Printf("  sum                = %d (expected %d)\n", r.Sum, stream.FibSum(n))
	fmt.Printf("  unaligned faults   = %d (one per cell materialized beyond the head)\n", r.Faults)
	fmt.Printf("  second traversal   = %d, with zero additional faults\n", r.SecondSum)
	fmt.Printf("  total machine time = %.1f µs simulated\n\n", core.Micros(r.Cycles))

	fmt.Println("each fault is delivered to a user-level handler in ~5 µs; under Unix")
	fmt.Println("signals the same trick would cost ~80 µs per element, an order of")
	fmt.Println("magnitude — which is why such structures were considered impractical.")
}
