// multiproc: the §2.2 requirement made concrete. Two processes run on
// one machine, each claiming breakpoints with its OWN user-level
// handler at the SAME virtual addresses. The tagged TLB keeps their
// address spaces apart, and the per-process u-area switch routes each
// fault to its owner — the state the paper says user-level exception
// delivery needs on a conventional (single-context) processor.
//
//	go run ./examples/multiproc
package main

import (
	"fmt"
	"log"

	"uexc/internal/core"
)

func prog(name, marker string, rounds int) string {
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, my_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, 1 << 9
	jal   __uexc_enable
	nop
	li    s0, %d
loop:
	break                      # delivered to THIS process's handler
	li    v0, SYS_yield
	syscall
	nop
	addiu s0, s0, -1
	bnez  s0, loop
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

my_handler:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	sw    a0, 4(sp)
	li    a0, 1
	la    a1, marker
	li    a2, %d
	li    v0, SYS_write
	syscall
	nop
	lw    a0, 4(sp)
	nop
	lw    t6, 0(a0)
	nop
	addiu t6, t6, 4
	sw    t6, 0(a0)
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop
marker:	.asciiz "%s"
`, rounds, len(marker), marker)
}

func main() {
	m, err := core.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadProgram(prog("alpha", "[alpha handled its trap] ", 3)); err != nil {
		log.Fatal(err)
	}
	if _, err := m.SpawnProgram(prog("beta", "[beta handled its trap] ", 3)); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(20_000_000); err != nil {
		log.Fatal(err)
	}

	fmt.Println(m.K.Console())
	fmt.Printf("\ncontext switches: %d; both processes claimed breakpoints at the same\n",
		m.K.Stats.Switches)
	fmt.Println("virtual addresses — the ASID-tagged TLB and the per-process u-area keep")
	fmt.Println("their mappings and their handlers apart (§2.2's tagged-TLB requirement).")
}
