// gcbarrier: the paper's §4.1 study as a runnable example. A
// generational garbage collector tracks old→young pointer stores with a
// page-protection write barrier; we run the same two applications the
// paper measured (simulated Lisp operators, and random replacement in a
// 1 MB array) under three barrier implementations and compare.
//
//	go run ./examples/gcbarrier
package main

import (
	"fmt"
	"log"

	"uexc/internal/apps/gcsim"
	"uexc/internal/core"
	"uexc/internal/simos"
)

func main() {
	fmt.Println("measuring per-event costs on the simulated machine...")
	ultCosts, err := simos.Measure(core.ModeUltrix)
	if err != nil {
		log.Fatal(err)
	}
	fastCosts, err := simos.Measure(core.ModeFast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  protection fault round trip: Unix signals %.1f µs, fast+eager %.1f µs\n\n",
		simos.Micros(ultCosts.ProtFaultRT), simos.Micros(fastCosts.ProtFaultRT))

	for _, wl := range []struct {
		name string
		run  func(gcsim.Barrier, simos.CostTable) gcsim.Result
	}{
		{"Lisp operations", gcsim.LispOps},
		{"Array test (1 MB, random replacement)", gcsim.ArrayTest},
	} {
		sig := wl.run(gcsim.BarrierSigsegv, ultCosts)
		fast := wl.run(gcsim.BarrierFastEager, fastCosts)
		soft := wl.run(gcsim.BarrierSoftware, fastCosts)
		if sig.Checksum != fast.Checksum || fast.Checksum != soft.Checksum {
			log.Fatalf("%s: collector results diverged across barriers", wl.name)
		}

		fmt.Printf("%s  (%d collections, %d barrier faults, heap checksum %#x)\n",
			wl.name, sig.Stats.Collections, sig.Stats.Faults, sig.Checksum)
		fmt.Printf("  %-42s %8.2f s CPU\n", gcsim.BarrierSigsegv, sig.Seconds)
		fmt.Printf("  %-42s %8.2f s CPU  (%.1f%% better)\n", gcsim.BarrierFastEager, fast.Seconds,
			100*(sig.Seconds-fast.Seconds)/sig.Seconds)
		fmt.Printf("  %-42s %8.2f s CPU  (%d inline checks)\n\n", gcsim.BarrierSoftware, soft.Seconds,
			soft.Stats.Checks)
	}

	fmt.Println("paper's Table 4: Lisp 24 s -> 23 s (4%), array 2 s -> 1.8 s (10%).")
	fmt.Println("the collector's answers are identical in every configuration; only the")
	fmt.Println("barrier mechanism — and therefore the exception cost — changes.")
}
