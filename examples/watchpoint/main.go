// watchpoint: conditional data watchpoints — one of the paper's
// motivating uses of exceptions — live on the simulated machine. The
// watched variable sits in its own protected 1 KB subpage; the kernel
// emulates each store to it (keeping the watchpoint armed), records the
// old and new values in the exception frame, and notifies a user-level
// handler, which applies the condition in a few microseconds. All other
// stores — including ones to the same hardware page — run transparently.
//
//	go run ./examples/watchpoint
package main

import (
	"fmt"
	"log"

	"uexc/internal/apps/watchpoint"
	"uexc/internal/core"
)

func main() {
	const n, threshold = 50, 100
	r, err := watchpoint.Run(n, threshold)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("watched variable written %d times (values 3, 6, ..., %d)\n", n, 3*n)
	fmt.Printf("  notifications delivered : %d\n", r.Hits)
	fmt.Printf("  condition (new > %d)   : %d matches\n", threshold, r.CondMatches)
	fmt.Printf("  last observed transition: %d -> %d\n", r.LastOld, r.LastNew)
	fmt.Printf("  final value             : %d (every store landed)\n", r.Final)
	fmt.Printf("  total simulated time    : %.1f µs\n\n", core.Micros(r.Cycles))

	fmt.Println("no re-arming syscalls, no single-stepping: the kernel's subpage")
	fmt.Println("emulation machinery (§3.2.4) does the store with protection intact and")
	fmt.Println("the fast path (§3.2) delivers the notification at user level.")
}
