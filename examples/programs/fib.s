# fib.s — print the first 12 Fibonacci numbers, one per line, using a
# recursive function (exercises the stack, jal/jr, and the console).
#
#   go run ./cmd/uexc-run examples/programs/fib.s

main:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	sw    s0, 4(sp)
	li    s0, 1
loop:
	move  a0, s0
	jal   fib
	nop
	move  a0, v0
	jal   print_u32
	nop
	addiu s0, s0, 1
	li    t0, 13
	bne   s0, t0, loop
	nop
	lw    s0, 4(sp)
	lw    ra, 0(sp)
	addiu sp, sp, 16
	li    v0, 0
	jr    ra
	nop

# fib(n): classic recursion.
fib:
	slti  t0, a0, 2
	beqz  t0, fib_rec
	nop
	move  v0, a0             # fib(0)=0, fib(1)=1
	jr    ra
	nop
fib_rec:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	sw    a0, 4(sp)
	addiu a0, a0, -1
	jal   fib
	nop
	sw    v0, 8(sp)
	lw    a0, 4(sp)
	nop
	addiu a0, a0, -2
	jal   fib
	nop
	lw    t0, 8(sp)
	nop
	addu  v0, v0, t0
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop

# print_u32(a0): decimal + newline to the console.
print_u32:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, numbuf + 11    # build digits backwards
	li    t1, '\n'
	sb    t1, 0(t0)
	li    t3, 10
pdigit:
	addiu t0, t0, -1
	divu  a0, t3
	mfhi  t1
	mflo  a0
	addiu t1, t1, '0'
	sb    t1, 0(t0)
	bnez  a0, pdigit
	nop
	move  a1, t0
	la    t2, numbuf + 12
	subu  a2, t2, t0         # length
	li    a0, 1
	li    v0, SYS_write
	syscall
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	jr    ra
	nop

	.align 4
numbuf:	.space 16
