# trapdemo.s — enable the paper's fast user-level exception delivery and
# count breakpoints at user level, printing the count.
#
#   go run ./cmd/uexc-run examples/programs/trapdemo.s

main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, counter_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, 1 << 9           # breakpoints
	jal   __uexc_enable
	nop
	li    s0, 9
again:
	break
	addiu s0, s0, -1
	bnez  s0, again
	nop
	la    t0, hits
	lw    t1, 0(t0)
	nop
	addiu t1, t1, '0'
	la    t0, msg_digit
	sb    t1, 0(t0)
	li    a0, 1
	la    a1, msg
	li    a2, 30
	li    v0, SYS_write
	syscall
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

counter_handler:
	la    t6, hits
	lw    t7, 0(t6)
	nop
	addiu t7, t7, 1
	sw    t7, 0(t6)
	lw    t6, 0(a0)
	nop
	addiu t6, t6, 4
	sw    t6, 0(a0)
	jr    ra
	nop

	.align 4
hits:	.word 0
msg:	.ascii "handled "
msg_digit:
	.asciiz "? traps at user level\n"
