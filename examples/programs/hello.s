# hello.s — smallest possible user program for the simulated machine.
#
#   go run ./cmd/uexc-run examples/programs/hello.s

main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    a0, 1              # fd
	la    a1, msg
	li    a2, 14
	li    v0, SYS_write
	syscall
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

msg:	.asciiz "hello, world!\n"
