// subpage: the paper's §3.2.4 mechanism live on the simulated machine.
// The kernel provides 1 KB logical-page protection on 4 KB hardware
// pages: a store into a protected subpage is delivered to the user
// handler, while a store into an unprotected subpage of the same
// (hardware-protected) page is transparently emulated by the kernel —
// including the branch when the store sits in a delay slot.
//
//	go run ./examples/subpage
package main

import (
	"fmt"
	"log"

	"uexc/internal/core"
)

const program = `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __null_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)
	jal   __uexc_enable
	nop

	li    a0, 8192            # a heap page
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	sw    zero, 0(s1)

	move  a0, s1              # protect the first 1 KB logical page
	li    a1, 1024
	li    a2, 0
	li    v0, SYS_subpage
	syscall
	nop

	li    t8, 0x22
	sw    t8, 2000(s1)        # unprotected subpage: kernel emulates
	li    t8, 0x33
	li    t9, 1
	bnez  t9, over
	sw    t8, 3000(s1)        # emulated from a branch delay slot
over:
	li    t8, 0x11
	sw    t8, 256(s1)         # protected subpage: delivered to handler
	                          # (the kernel then amplifies the page)
	lw    t5, 256(s1)
	lw    t6, 2000(s1)
	lw    t7, 3000(s1)
	la    t9, out
	sw    t5, 0(t9)
	sw    t6, 4(t9)
	sw    t7, 8(t9)
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop
	.align 4
out:	.space 12
`

func main() {
	m, err := core.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadProgram(program); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		log.Fatal(err)
	}

	base := m.Sym("out")
	vals := make([]uint32, 3)
	for i := range vals {
		vals[i], _ = m.K.ReadUserWord(base + uint32(4*i))
	}
	fmt.Printf("store to protected subpage   : value %#x, delivered to user handler\n", vals[0])
	fmt.Printf("store to unprotected subpage : value %#x, emulated by the kernel\n", vals[1])
	fmt.Printf("store in branch delay slot   : value %#x, store AND branch emulated\n", vals[2])
	fmt.Printf("\nkernel stats: %d deliveries, %d emulations\n",
		m.K.Stats.ProtFaultsToUser, m.K.Stats.SubpageEmuls)

	sp, err := core.MeasureSubpage(30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("costs: delivery %.1f µs (paper: 19), transparent emulation %.1f µs per store\n",
		sp.Delivered.DeliverMicros(), core.Micros(uint64(sp.EmulRT)))
	fmt.Println("\nspace cost: one bit per 1 KB subpage — two pages of overhead for a")
	fmt.Println("64 MB data segment, exactly as §3.2.4 computes.")
}
