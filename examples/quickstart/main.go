// Quickstart: boot the simulated machine, enable the paper's fast
// user-level exception delivery for breakpoints, take a few exceptions
// in a user program, and print what happened and what it cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"uexc/internal/core"
)

// The user program (simulated MIPS-like assembly, linked against the
// user runtime): registers a C-level handler that counts exceptions and
// advances the resume PC, enables fast delivery of breakpoints via the
// paper's new system call, then executes five `break` instructions.
const program = `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)

	# Register the C-level handler the low-level wrapper will call.
	la    t0, count_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)

	# uexc_enable(handler = __fexc_low, mask = breakpoints).
	la    a0, __fexc_low
	li    a1, 1 << 9
	jal   __uexc_enable
	nop

	break
	break
	break
	break
	break

	# Report the count via the console.
	la    t0, counter
	lw    a0, 0(t0)
	nop
	addiu a0, a0, '0'
	la    t1, msg_count
	sb    a0, 0(t1)
	li    a0, 1
	la    a1, msg
	li    a2, 36
	li    v0, SYS_write
	syscall
	nop

	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

# The handler: count, then advance the saved PC past the break. It runs
# entirely in user mode; returning re-enters the application directly.
count_handler:
	la    t6, counter
	lw    t7, 0(t6)
	nop
	addiu t7, t7, 1
	sw    t7, 0(t6)
	lw    t6, 0(a0)           # frame word 0: the faulting PC
	nop
	addiu t6, t6, 4
	sw    t6, 0(a0)
	jr    ra
	nop

	.align 4
counter:
	.word 0
msg:
	.ascii "handled "
msg_count:
	.asciiz "? breakpoints at user level\n"
`

func main() {
	m, err := core.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadProgram(program); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		log.Fatal(err)
	}

	fmt.Print(m.K.Console())
	c := m.CPU()
	fmt.Printf("breakpoint exceptions taken: %d\n", c.ExcCounts[9])
	fmt.Printf("unix signal machinery involved: %d times (the point!)\n", m.K.Stats.UnixDeliveries)
	fmt.Printf("total: %d instructions, %d cycles (%.1f µs at 25 MHz)\n",
		c.Insts, c.Cycles, core.Micros(c.Cycles))

	// For contrast, measure both mechanisms on this machine.
	fast, err := core.MeasureSimpleException(core.ModeFast, 30)
	if err != nil {
		log.Fatal(err)
	}
	ult, err := core.MeasureSimpleException(core.ModeUltrix, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexception round trip: fast %.1f µs vs Unix signals %.1f µs (%.1fx)\n",
		fast.RoundTripMicros(), ult.RoundTripMicros(), ult.RoundTrip/fast.RoundTrip)
}
