// swizzling: the paper's §4.2.2 persistent-store study as a runnable
// example. A small object database is traversed with pointers that must
// be swizzled from on-disk to in-memory form; we compare software
// residency checks against unaligned-pointer faults (Figure 3) and
// eager against lazy swizzling (Figure 4), locating the empirical
// crossovers and checking them against the analytic break-even model.
//
//	go run ./examples/swizzling
package main

import (
	"fmt"
	"log"

	"uexc/internal/analytic"
	"uexc/internal/apps/swizzle"
	"uexc/internal/core"
)

func main() {
	fast, err := core.MeasureUnalignedMin(30)
	if err != nil {
		log.Fatal(err)
	}
	ult, err := core.MeasureSimpleException(core.ModeUltrix, 30)
	if err != nil {
		log.Fatal(err)
	}
	fastUS, ultUS := fast.RoundTripMicros(), ult.RoundTripMicros()
	fmt.Printf("measured per-fault cost: specialized fast handler %.1f µs, Unix signals %.1f µs\n\n",
		fastUS, ultUS)

	fmt.Println("Figure 3 — residency checks vs exceptions (break-even uses per pointer):")
	for _, c := range []float64{3, 5, 10} {
		empF, err := swizzle.Fig3Crossover(c, fastUS, 900)
		if err != nil {
			log.Fatal(err)
		}
		empU, err := swizzle.Fig3Crossover(c, ultUS, 3000)
		if err != nil {
			log.Fatal(err)
		}
		anaF := analytic.SwizzleBreakEvenUses(c, fastUS, 25)
		anaU := analytic.SwizzleBreakEvenUses(c, ultUS, 25)
		fmt.Printf("  checks of %2.0f cycles: exceptions win from %4d uses (fast; model %.0f)"+
			" vs %4d uses (Unix; model %.0f)\n", c, empF, anaF, empU, anaU)
	}

	fmt.Println("\nFigure 4 — eager vs lazy swizzling (pages of 50 pointers):")
	const pn = 50
	for _, s := range []float64{1, 2, 4} {
		empF, err := swizzle.Fig4Crossover(fastUS, s, pn)
		if err != nil {
			log.Fatal(err)
		}
		empU, err := swizzle.Fig4Crossover(ultUS, s, pn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  swizzle cost %.0f µs: eager wins once %2d of %d pointers are used (fast)"+
			" vs %2d of %d (Unix)\n", s, empF, pn, empU, pn)
	}

	fmt.Println("\nfast faults shift both balances: exception-based detection becomes viable")
	fmt.Println("after tens (not hundreds) of uses, and lazy swizzling stays preferable")
	fmt.Println("across a much broader range of workloads — the paper's Figures 3 and 4.")
}
