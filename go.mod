module uexc

go 1.22
