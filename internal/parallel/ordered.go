package parallel

import (
	"io"
	"sync"
)

// OrderedWriter streams per-task lines to w in task-index order no
// matter in which order workers complete them: a line is held until
// every lower-indexed line has been written. It is the progress-stream
// counterpart of Map's deterministic merge — with it, a sharded run's
// -v output is byte-identical to the serial run's at any worker count.
// With a nil w it is a no-op.
type OrderedWriter struct {
	mu      sync.Mutex
	w       io.Writer
	next    int
	pending map[int]string
}

// NewOrderedWriter returns an OrderedWriter streaming to w (nil for a
// no-op writer).
func NewOrderedWriter(w io.Writer) *OrderedWriter {
	return NewOrderedWriterAt(w, 0)
}

// NewOrderedWriterAt returns an OrderedWriter whose first expected
// index is next — the resume form: a caller that has already written
// lines [0, next) (replayed from a checkpoint) continues the stream
// seamlessly, and any Emit below next is ignored as already written.
func NewOrderedWriterAt(w io.Writer, next int) *OrderedWriter {
	return &OrderedWriter{w: w, next: next, pending: map[int]string{}}
}

// Emit submits task i's line. Lines may arrive in any order; each is
// written exactly once, in index order. Every index from 0 upward must
// eventually be emitted or later lines stay queued.
func (o *OrderedWriter) Emit(i int, line string) {
	if o.w == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if i < o.next {
		return // already written (resume replays never re-emit)
	}
	o.pending[i] = line
	for {
		l, ok := o.pending[o.next]
		if !ok {
			return
		}
		delete(o.pending, o.next)
		io.WriteString(o.w, l)
		o.next++
	}
}
