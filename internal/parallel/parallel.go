// Package parallel is the work-stealing execution engine that shards
// independent simulator runs — fault-campaign seeds, per-mode cost
// measurements, figure sweep points — across worker goroutines.
//
// The design constraint is determinism: results must be identical to a
// serial run regardless of scheduling. The engine therefore separates
// execution order (arbitrary, stolen across workers) from result order
// (always the task index): Map writes each result into out[i], and
// callers merge strictly by index, never by completion time. Every
// simulated machine is self-contained (see DESIGN.md §8 for the
// shared-state audit), so the only cross-task coupling is read-only
// caches, and a run's bytes cannot depend on which worker executed it.
//
// Work distribution is index-range stealing in the Cilk tradition: the
// index space [0, n) is split into contiguous spans, one per worker.
// A worker pops single indices from the front of its own span; when
// the span is empty it steals the upper half of the largest remaining
// victim span and continues. Both operations are a single CAS on the
// span's packed (lo, hi) word, so the queue needs no locks and the
// common (no-contention) path is one atomic per task. Contiguous
// spans also keep neighbouring seeds on the same worker, which is as
// cache-friendly as this workload gets.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count request: zero or negative selects
// GOMAXPROCS (the engine's "use the whole machine" default).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// span is a half-open index interval [lo, hi) packed into one atomic
// uint64 (lo in the high half, hi in the low half) so that taking one
// index and stealing a block are both single CAS operations.
type span struct {
	_ [7]uint64 // pad to a cache line: spans sit in one slice
	v atomic.Uint64
}

func pack(lo, hi uint32) uint64 { return uint64(lo)<<32 | uint64(hi) }

func unpack(v uint64) (lo, hi uint32) { return uint32(v >> 32), uint32(v) }

// take pops the front index of the span.
func (s *span) take() (int, bool) {
	for {
		v := s.v.Load()
		lo, hi := unpack(v)
		if lo >= hi {
			return 0, false
		}
		if s.v.CompareAndSwap(v, pack(lo+1, hi)) {
			return int(lo), true
		}
	}
}

// steal removes and returns the upper half of the span (at least one
// index) for a thief to adopt as its own.
func (s *span) steal() (lo, hi uint32, ok bool) {
	for {
		v := s.v.Load()
		vlo, vhi := unpack(v)
		if vlo >= vhi {
			return 0, 0, false
		}
		mid := vlo + (vhi-vlo)/2 // steal [mid, vhi): the larger half
		if s.v.CompareAndSwap(v, pack(vlo, mid)) {
			return mid, vhi, true
		}
	}
}

// ForEach runs fn(i) exactly once for every i in [0, n), sharded
// across the given number of workers (normalized via Workers). It
// returns when every call has completed. A panic in fn is re-raised
// in the caller after the remaining workers drain.
func ForEach(workers, n int, fn func(i int)) {
	_ = ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach under a context: every worker checks ctx
// before taking another index, so a cancellation or deadline stops the
// sweep after at most the tasks already in flight (one per worker)
// finish. Which task indices ran before the abort is scheduling-
// dependent, but the abort itself is deterministic for callers: a
// non-nil return means the sweep is incomplete and its results must be
// discarded, a nil return means fn ran exactly once for every index.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	fn = wrapShard(ctx, fn)
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// The serial fast path: identical semantics, no goroutines, so
		// -parallel 1 really is the serial engine.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}

	spans := make([]span, workers)
	for w := 0; w < workers; w++ {
		// Contiguous partition; the first n%workers spans get one extra.
		lo := w*(n/workers) + min(w, n%workers)
		hi := lo + n/workers
		if w < n%workers {
			hi++
		}
		spans[w].v.Store(pack(uint32(lo), uint32(hi)))
	}

	var (
		wg       sync.WaitGroup
		panicked atomic.Pointer[any]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &r)
				}
			}()
			for ctx.Err() == nil {
				i, ok := spans[self].take()
				if !ok {
					if !stealInto(spans, self) {
						return
					}
					continue
				}
				fn(i)
			}
		}(w)
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(*p)
	}
	return ctx.Err()
}

// stealInto moves work from the largest victim span into spans[self].
// It returns false only after observing every other span empty in one
// full scan — at that point all remaining tasks are in flight on their
// owning workers and no new work can appear, so the worker may retire.
func stealInto(spans []span, self int) bool {
	victim, best := -1, uint32(0)
	for w := range spans {
		if w == self {
			continue
		}
		lo, hi := unpack(spans[w].v.Load())
		if hi > lo && hi-lo > best {
			victim, best = w, hi-lo
		}
	}
	if victim < 0 {
		return false
	}
	lo, hi, ok := spans[victim].steal()
	if !ok {
		return true // lost the race; rescan
	}
	spans[self].v.Store(pack(lo, hi))
	return true
}

// Map runs fn(i) for every i in [0, n) across workers and returns the
// results ordered by index — the deterministic-merge primitive: out[i]
// is fn(i)'s value no matter which worker computed it or when.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapCtx is Map under a context. On cancellation the partial result
// slice is returned alongside the context's error; entries whose tasks
// never ran hold T's zero value, and callers must treat the whole
// slice as invalid when err is non-nil.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, workers, n, func(i int) { out[i] = fn(i) })
	return out, err
}
