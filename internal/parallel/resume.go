package parallel

import (
	"context"
	"sync"
)

// ShardRunner wraps the execution of one shard. The engine calls it
// with the shard index and a run closure that performs the shard's
// work; the runner calls run once on success (it may call it again,
// e.g. to retry a shard whose previous attempt panicked), panics with
// a typed error to quarantine a shard that keeps failing, or — only
// when the sweep's context is already dead — returns without ever
// calling run. Sweeps must therefore observe whether run executed and
// never treat a skipped shard as completed: MapResumeCtx tracks this
// so a give-up cannot advance the checkpoint frontier over a
// zero-value result. Runners are how the serving layer attaches
// per-shard deadlines, bounded retries, and chaos-injected faults
// without the engines knowing: the engine sees only "the shard ran".
type ShardRunner func(i int, run func())

type shardRunnerKey struct{}

// WithShardRunner returns a context carrying r. Every ForEachCtx /
// MapCtx / MapResumeCtx sweep under that context routes each shard
// through r instead of calling the shard function directly.
func WithShardRunner(ctx context.Context, r ShardRunner) context.Context {
	return context.WithValue(ctx, shardRunnerKey{}, r)
}

// shardRunnerFrom extracts the runner installed by WithShardRunner,
// or nil.
func shardRunnerFrom(ctx context.Context) ShardRunner {
	r, _ := ctx.Value(shardRunnerKey{}).(ShardRunner)
	return r
}

// wrapShard applies the context's shard runner (if any) around fn.
func wrapShard(ctx context.Context, fn func(i int)) func(i int) {
	r := shardRunnerFrom(ctx)
	if r == nil {
		return fn
	}
	return func(i int) { r(i, func() { fn(i) }) }
}

// checkpointer tracks the contiguous completed prefix of a sharded
// sweep — the same merge frontier OrderedWriter streams by — and
// invokes save whenever the prefix has advanced `every` or more shards
// past the last durable point. save runs under the lock, so saves are
// strictly ordered and each prefix is saved at most once.
type checkpointer[T any] struct {
	mu        sync.Mutex
	out       []T
	pending   map[int]bool
	next      int // first index not yet completed
	lastSaved int
	every     int
	save      func(prefix []T) error
	err       error
}

// complete marks shard i done and checkpoints if the prefix crossed a
// cadence boundary. It returns the sticky first save error.
func (c *checkpointer[T]) complete(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.pending[i] = true
	for c.pending[c.next] {
		delete(c.pending, c.next)
		c.next++
	}
	if c.next-c.lastSaved >= c.every {
		if err := c.save(c.out[:c.next]); err != nil {
			c.err = err
			return err
		}
		c.lastSaved = c.next
	}
	return nil
}

// finish saves the final full prefix (if not already durable) once the
// sweep has completed all n shards.
func (c *checkpointer[T]) finish(n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if c.next == n && c.lastSaved < n {
		if err := c.save(c.out[:n]); err != nil {
			c.err = err
			return err
		}
		c.lastSaved = n
	}
	return nil
}

// MapResumeCtx is MapCtx with durable-prefix resume and periodic
// checkpointing — the primitive behind crash-tolerant campaigns.
//
// done holds the results of the contiguous shard prefix [0, len(done))
// recovered from a previous (interrupted) run; those shards are not
// re-executed, their results are copied into the output verbatim.
// Remaining shards run across `workers` exactly as in MapCtx.
//
// If save is non-nil it is called with out[:prefix] every time the
// contiguous completed prefix grows by at least `every` shards (and
// once more at full completion), strictly in prefix order, never
// concurrently. Because the prefix is the same frontier the ordered
// merge consumes, a prefix saved durably and later resumed reproduces
// the interrupted run byte-for-byte: shards are deterministic, so
// re-running the unsaved suffix yields identical results.
//
// A save error aborts the sweep and is returned; as with MapCtx, a
// non-nil error means the result slice must be discarded.
func MapResumeCtx[T any](ctx context.Context, workers, n int, done []T, every int, save func(prefix []T) error, fn func(i int) T) ([]T, error) {
	if len(done) > n {
		done = done[:n]
	}
	out := make([]T, n)
	copy(out, done)
	start := len(done)

	// The inner sweep runs over the shifted suffix [0, n-start), so the
	// context's shard runner is applied here — with true shard indices,
	// which fault plans and retry accounting key on — and stripped from
	// the inner context. exec reports whether fn actually executed: a
	// runner may give up without running when the job context is dead,
	// and a skipped shard must not reach the checkpointer — saving its
	// zero-value result would durably corrupt the resumable prefix.
	exec := func(idx int) bool { out[idx] = fn(idx); return true }
	if r := shardRunnerFrom(ctx); r != nil {
		inner := exec
		exec = func(idx int) (ran bool) {
			r(idx, func() { ran = inner(idx) })
			return ran
		}
		ctx = WithShardRunner(ctx, nil)
	}

	if save == nil {
		err := ForEachCtx(ctx, workers, n-start, func(i int) { exec(start + i) })
		return out, err
	}
	if every <= 0 {
		every = 1
	}
	ck := &checkpointer[T]{
		out: out, pending: make(map[int]bool),
		next: start, lastSaved: start, every: every, save: save,
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	err := ForEachCtx(cctx, workers, n-start, func(i int) {
		idx := start + i
		if !exec(idx) {
			return // runner gave up (dead context); the shard did not run
		}
		if ck.complete(idx) != nil {
			cancel() // the save error is sticky in ck; stop the sweep
		}
	})
	if ck.err != nil {
		return out, ck.err
	}
	if err != nil {
		return out, err
	}
	return out, ck.finish(n)
}
