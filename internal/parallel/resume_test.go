package parallel

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapResumeCtxSkipsDonePrefix: shards below the done prefix never
// re-execute; the output is done ++ freshly computed suffix.
func TestMapResumeCtxSkipsDonePrefix(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran sync.Map
		done := []int{0, 10, 20} // squares-of-10 stand-ins for shards 0..2
		out, err := MapResumeCtx(context.Background(), workers, 8, done, 0, nil, func(i int) int {
			ran.Store(i, true)
			return i * 10
		})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*10 {
				t.Errorf("workers %d: out[%d] = %d, want %d", workers, i, v, i*10)
			}
		}
		for i := 0; i < len(done); i++ {
			if _, ok := ran.Load(i); ok {
				t.Errorf("workers %d: done shard %d re-executed", workers, i)
			}
		}
	}
}

// TestMapResumeCtxCheckpointCadence: save fires on contiguous-prefix
// boundaries every K shards plus once at completion, strictly in
// prefix order, and each saved prefix reproduces the final output's
// prefix exactly.
func TestMapResumeCtxCheckpointCadence(t *testing.T) {
	const n, every = 17, 4
	var mu sync.Mutex
	var prefixes []int
	save := func(prefix []int) error {
		mu.Lock()
		defer mu.Unlock()
		for i, v := range prefix {
			if v != i+1 {
				return fmt.Errorf("saved prefix[%d] = %d, want %d", i, v, i+1)
			}
		}
		prefixes = append(prefixes, len(prefix))
		return nil
	}
	out, err := MapResumeCtx(context.Background(), 4, n, nil, every, save, func(i int) int { return i + 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n || out[n-1] != n {
		t.Fatalf("output wrong: %v", out)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(prefixes) == 0 || prefixes[len(prefixes)-1] != n {
		t.Fatalf("final prefix %v never saved (saves: %v)", n, prefixes)
	}
	for i := 1; i < len(prefixes); i++ {
		if prefixes[i] <= prefixes[i-1] {
			t.Fatalf("saves not strictly increasing: %v", prefixes)
		}
		if gap := prefixes[i] - prefixes[i-1]; gap < every && prefixes[i] != n {
			t.Errorf("non-final save advanced only %d (< every=%d): %v", gap, every, prefixes)
		}
	}
}

// TestMapResumeCtxResumeEquivalence: running to completion in one shot
// and resuming from any checkpointed prefix produce identical outputs.
func TestMapResumeCtxResumeEquivalence(t *testing.T) {
	const n = 12
	full, err := MapResumeCtx(context.Background(), 3, n, nil, 0, nil, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < n; cut += 3 {
		resumed, err := MapResumeCtx(context.Background(), 3, n, full[:cut], 2,
			func([]int) error { return nil }, func(i int) int {
				if i < cut {
					t.Errorf("cut %d: shard %d re-executed", cut, i)
				}
				return i * i
			})
		if err != nil {
			t.Fatal(err)
		}
		for i := range full {
			if resumed[i] != full[i] {
				t.Fatalf("cut %d: resumed[%d] = %d != %d", cut, i, resumed[i], full[i])
			}
		}
	}
}

// TestMapResumeCtxSaveErrorAborts: a failing save stops the sweep and
// surfaces its error, not a bare context cancellation.
func TestMapResumeCtxSaveErrorAborts(t *testing.T) {
	boom := errors.New("disk full")
	var saves atomic.Int32
	_, err := MapResumeCtx(context.Background(), 4, 100, nil, 1, func(prefix []int) error {
		if saves.Add(1) >= 3 {
			return boom
		}
		return nil
	}, func(i int) int { return i })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestShardRunnerWrapsEveryShard: a runner installed in the context
// sees every shard index exactly once (with true indices, including
// under resume) and its retries re-run the shard body.
func TestShardRunnerWrapsEveryShard(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var wrapped sync.Map
		var retried atomic.Int32
		ctx := WithShardRunner(context.Background(), func(i int, run func()) {
			if _, dup := wrapped.LoadOrStore(i, true); dup {
				t.Errorf("workers %d: shard %d wrapped twice", workers, i)
			}
			run()
			if i == 5 { // retry one shard: the body must tolerate re-execution
				retried.Add(1)
				run()
			}
		})
		var calls atomic.Int32
		out, err := MapResumeCtx(ctx, workers, 8, []int{0, 100}, 0, nil, func(i int) int {
			calls.Add(1)
			return i * 100
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*100 {
				t.Fatalf("workers %d: out = %v", workers, out)
			}
		}
		for i := 2; i < 8; i++ {
			if _, ok := wrapped.Load(i); !ok {
				t.Errorf("workers %d: live shard %d never wrapped", workers, i)
			}
		}
		for i := 0; i < 2; i++ {
			if _, ok := wrapped.Load(i); ok {
				t.Errorf("workers %d: done shard %d wrapped", workers, i)
			}
		}
		if got := calls.Load(); got != 6+1 { // 6 live shards + 1 retry
			t.Errorf("workers %d: %d body calls, want 7", workers, got)
		}
		if retried.Load() != 1 {
			t.Errorf("workers %d: retry did not happen", workers)
		}
	}
}

// TestShardRunnerGiveUpDoesNotCheckpoint: a runner that gives up
// without calling run (its only legal reason: the sweep's context is
// dead) must not advance the checkpoint frontier — no saved prefix may
// ever contain the zero-value result of a shard that never executed,
// or a resumed run would be corrupt.
func TestShardRunnerGiveUpDoesNotCheckpoint(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		rctx := WithShardRunner(ctx, func(i int, run func()) {
			if i >= 5 {
				cancel()
			}
			if ctx.Err() != nil {
				return // give up without running, as a dead-job runner does
			}
			run()
		})
		_, err := MapResumeCtx(rctx, workers, 12, nil, 1, func(prefix []int) error {
			for j, v := range prefix {
				if v != j+1 {
					t.Errorf("workers %d: saved prefix[%d] = %d — a shard that never ran was checkpointed", workers, j, v)
				}
			}
			return nil
		}, func(i int) int { return i + 1 })
		if err == nil {
			t.Errorf("workers %d: sweep with given-up shards reported success", workers)
		}
		cancel()
	}
}

// TestShardRunnerAppliesToForEachCtx: the hook also wraps plain
// (non-resume) sweeps, which the serving layer relies on for jobs
// started fresh.
func TestShardRunnerAppliesToForEachCtx(t *testing.T) {
	var wrapped atomic.Int32
	ctx := WithShardRunner(context.Background(), func(i int, run func()) {
		wrapped.Add(1)
		run()
	})
	var ran atomic.Int32
	if err := ForEachCtx(ctx, 2, 5, func(i int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if wrapped.Load() != 5 || ran.Load() != 5 {
		t.Fatalf("wrapped %d ran %d, want 5/5", wrapped.Load(), ran.Load())
	}
}

// TestOrderedWriterCancelBufferedAheadOfStall is the §8 cancellation
// torture case: later shards complete and buffer in the OrderedWriter
// while an earlier shard stalls; the sweep is then cancelled and the
// stalled shard's runner gives up without emitting. The merge must not
// deadlock (Emit never blocks, the sweep returns), must write only the
// contiguous prefix below the stall — never a buffered later line —
// and no checkpoint may cover the shard that never ran.
func TestOrderedWriterCancelBufferedAheadOfStall(t *testing.T) {
	const n = 8
	var buf bytes.Buffer
	o := NewOrderedWriter(&buf)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stall := make(chan struct{})
	var laterBuffered, zeroEmitted atomic.Int32
	rctx := WithShardRunner(ctx, func(i int, run func()) {
		if i == 1 {
			<-stall // held until after cancellation, like a hung worker
			if ctx.Err() != nil {
				return // give up without emitting, as a dead-job runner does
			}
		}
		run()
	})
	var mu sync.Mutex
	var savedPast int
	done := make(chan error, 1)
	go func() {
		_, err := MapResumeCtx(rctx, 2, n, nil, 1, func(prefix []int) error {
			mu.Lock()
			defer mu.Unlock()
			for j, v := range prefix {
				if v != j+1 {
					savedPast++ // a never-ran shard's zero value got checkpointed
				}
			}
			return nil
		}, func(i int) int {
			o.Emit(i, fmt.Sprintf("shard %d\n", i))
			if i > 1 {
				laterBuffered.Add(1)
			} else if i == 0 {
				zeroEmitted.Add(1)
			}
			return i + 1
		})
		done <- err
	}()

	// Wait until shard 0 has streamed and >= 2 later shards sit buffered
	// behind stalled shard 1, then cancel and release the stall.
	deadline := time.After(10 * time.Second)
	for laterBuffered.Load() < 2 || zeroEmitted.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("sweep never reached the buffered-ahead-of-stall state")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	close(stall)

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled sweep with a given-up shard reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ordered merge deadlocked on cancellation with buffered later shards")
	}
	if got := buf.String(); got != "shard 0\n" {
		t.Fatalf("stream after cancel = %q, want exactly the prefix below the stall", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if savedPast != 0 {
		t.Fatalf("%d checkpoint entries covered the shard that never ran", savedPast)
	}
}

// TestOrderedWriterAt: a writer started at index k drops emits below k
// and streams from k upward in order.
func TestOrderedWriterAt(t *testing.T) {
	var buf bytes.Buffer
	o := NewOrderedWriterAt(&buf, 2)
	o.Emit(3, "three\n")
	o.Emit(0, "zero\n") // already written by the resume replay; ignored
	o.Emit(2, "two\n")
	o.Emit(1, "one\n") // ignored too
	o.Emit(4, "four\n")
	if got, want := buf.String(), "two\nthree\nfour\n"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}
