package parallel

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrderAndCoverage: every index runs exactly once and results
// land at their own index, for worker counts spanning the serial path,
// contention, and more workers than tasks.
func TestMapOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			var calls atomic.Int64
			out := Map(workers, n, func(i int) int {
				calls.Add(1)
				return i * i
			})
			if len(out) != n {
				t.Fatalf("workers=%d n=%d: len(out) = %d", workers, n, len(out))
			}
			if got := calls.Load(); got != int64(n) {
				t.Errorf("workers=%d n=%d: fn ran %d times", workers, n, got)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("workers=%d n=%d: out[%d] = %d, want %d", workers, n, i, v, i*i)
				}
			}
		}
	}
}

// TestForEachExactlyOnce uses a per-index counter to catch both missed
// and doubled indices under heavy stealing.
func TestForEachExactlyOnce(t *testing.T) {
	const n = 5000
	counts := make([]atomic.Int32, n)
	ForEach(16, n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestStealingSkewed gives the first indices almost all the work; the
// run only finishes promptly if idle workers steal from the loaded
// span. The assertion is completion plus exactly-once coverage (the
// timing is bounded by the test timeout, not a flaky wall-clock check).
func TestStealingSkewed(t *testing.T) {
	const n = 64
	var slow atomic.Int64
	counts := make([]atomic.Int32, n)
	ForEach(8, n, func(i int) {
		counts[i].Add(1)
		if i < 8 { // all heavy work in the first span
			slow.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	})
	if slow.Load() != 8 {
		t.Fatalf("heavy tasks ran %d times, want 8", slow.Load())
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestDeterministicMerge: result bytes are identical across worker
// counts even though execution interleaving differs.
func TestDeterministicMerge(t *testing.T) {
	fn := func(i int) string { return fmt.Sprintf("task-%03d", i*7%13) }
	want := Map(1, 200, fn)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if got := Map(workers, 200, fn); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: merged results differ from serial", workers)
		}
	}
}

// TestPanicPropagates: a panicking task surfaces in the caller rather
// than killing a worker goroutine (and with it the process).
func TestPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
	t.Fatal("ForEach returned after panic")
}

// TestWorkers: the normalization rule.
func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS", got)
	}
}

// TestSpanStealHalves pins the steal split rule: the thief takes the
// upper half, the victim keeps the lower.
func TestSpanStealHalves(t *testing.T) {
	var s span
	s.v.Store(pack(10, 20))
	lo, hi, ok := s.steal()
	if !ok || lo != 15 || hi != 20 {
		t.Fatalf("steal = [%d,%d) ok=%v, want [15,20) true", lo, hi, ok)
	}
	if vlo, vhi := unpack(s.v.Load()); vlo != 10 || vhi != 15 {
		t.Fatalf("victim span = [%d,%d), want [10,15)", vlo, vhi)
	}
	s.v.Store(pack(5, 6))
	if lo, hi, ok = s.steal(); !ok || lo != 5 || hi != 6 {
		t.Fatalf("steal of singleton = [%d,%d) ok=%v, want [5,6) true", lo, hi, ok)
	}
	if _, _, ok = s.steal(); ok {
		t.Fatal("steal of empty span succeeded")
	}
}

// TestForEachCtxCancelStopsPromptly: cancelling the context mid-sweep
// stops workers from taking further indices; the call reports the
// context error and strictly fewer than n tasks ran.
func TestForEachCtxCancelStopsPromptly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		const n = 100000
		err := ForEachCtx(ctx, workers, n, func(i int) {
			if calls.Add(1) == 10 {
				cancel()
			}
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Promptness bound: after cancel, each worker may finish at most
		// the task it already holds.
		if got := calls.Load(); got >= n || got > 10+int64(workers) {
			t.Errorf("workers=%d: %d tasks ran after cancel at task 10", workers, got)
		}
		cancel()
	}
}

// TestForEachCtxDeadline: an already-expired deadline runs nothing.
func TestForEachCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var calls atomic.Int64
	err := ForEachCtx(ctx, 4, 50, func(i int) { calls.Add(1) })
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if calls.Load() != 0 {
		t.Errorf("%d tasks ran under an expired deadline", calls.Load())
	}
}

// TestMapCtxComplete: an uncancelled MapCtx is exactly Map.
func TestMapCtxComplete(t *testing.T) {
	out, err := MapCtx(context.Background(), 3, 40, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapCtxCancelled: a cancelled MapCtx surfaces the context error so
// callers discard the partial results.
func TestMapCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapCtx(ctx, 2, 10, func(i int) int { return i })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
