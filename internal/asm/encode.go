package asm

import (
	"strconv"
	"strings"

	"uexc/internal/arch"
)

// regByName resolves a register operand: "$4", "4", "t0", "$t0", "r4".
func regByName(op string) (arch.Reg, bool) {
	op = strings.ToLower(strings.TrimSpace(op))
	op = strings.TrimPrefix(op, "$")
	for i, n := range arch.RegNames {
		if op == n {
			return arch.Reg(i), true
		}
	}
	if op == "s8" {
		return arch.RegFP, true
	}
	numeric := strings.TrimPrefix(op, "r")
	if n, err := strconv.Atoi(numeric); err == nil && n >= 0 && n < 32 {
		return arch.Reg(n), true
	}
	return 0, false
}

// c0ByName resolves a CP0 register operand: "c0_status", "$12", "12".
func c0ByName(op string) (uint8, bool) {
	op = strings.ToLower(strings.TrimSpace(op))
	for num, name := range arch.C0Names {
		if op == name {
			return num, true
		}
	}
	t := strings.TrimPrefix(op, "$")
	if n, err := strconv.Atoi(t); err == nil && n >= 0 && n < 32 {
		return uint8(n), true
	}
	return 0, false
}

func (a *assembler) reg(s *stmt, op string) (arch.Reg, error) {
	r, ok := regByName(op)
	if !ok {
		return 0, errf(s.line, "bad register %q", op)
	}
	return r, nil
}

func (a *assembler) expr(s *stmt, op string) (uint32, error) {
	v, err := evalExpr(op, a.lookup)
	if err != nil {
		return 0, errf(s.line, "%v", err)
	}
	return v, nil
}

// imm16 accepts values representable as either signed or unsigned
// 16-bit, as assemblers conventionally do for addiu/andi/….
func (a *assembler) imm16(s *stmt, op string) (uint16, error) {
	v, err := a.expr(s, op)
	if err != nil {
		return 0, err
	}
	if v > 0xffff && int32(v) < -0x8000 {
		return 0, errf(s.line, "immediate %#x does not fit in 16 bits", v)
	}
	return uint16(v), nil
}

// memOperand parses "off(base)", "(base)", or "off" (base = zero).
func (a *assembler) memOperand(s *stmt, op string) (uint16, arch.Reg, error) {
	op = strings.TrimSpace(op)
	open := strings.LastIndexByte(op, '(')
	if open < 0 {
		off, err := a.imm16(s, op)
		return off, arch.RegZero, err
	}
	if !strings.HasSuffix(op, ")") {
		return 0, 0, errf(s.line, "bad memory operand %q", op)
	}
	base, err := a.reg(s, op[open+1:len(op)-1])
	if err != nil {
		return 0, 0, err
	}
	offText := strings.TrimSpace(op[:open])
	if offText == "" {
		return 0, base, nil
	}
	off, err := a.imm16(s, offText)
	return off, base, err
}

func (a *assembler) branchOff(s *stmt, op string) (uint16, error) {
	target, err := a.expr(s, op)
	if err != nil {
		return 0, err
	}
	off, ok := arch.BranchOffset(s.addr, target)
	if !ok {
		return 0, errf(s.line, "branch target %#x out of range from %#x", target, s.addr)
	}
	return off, nil
}

func (a *assembler) need(s *stmt, n int) error {
	if len(s.ops) != n {
		return errf(s.line, "%s takes %d operands, got %d", s.mnemonic, n, len(s.ops))
	}
	return nil
}

// encodeInst encodes one instruction or pseudo-instruction at s.addr.
func (a *assembler) encodeInst(s *stmt) error {
	// Pseudo-instructions first.
	switch s.mnemonic {
	case "nop":
		a.emitWord(s.addr, 0)
		return nil
	case "move":
		if err := a.need(s, 2); err != nil {
			return err
		}
		rd, err := a.reg(s, s.ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(s, s.ops[1])
		if err != nil {
			return err
		}
		a.emitWord(s.addr, arch.Encode(arch.Inst{Mn: arch.MnADDU, Rd: rd, Rs: rs}))
		return nil
	case "not":
		if err := a.need(s, 2); err != nil {
			return err
		}
		rd, err := a.reg(s, s.ops[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(s, s.ops[1])
		if err != nil {
			return err
		}
		a.emitWord(s.addr, arch.Encode(arch.Inst{Mn: arch.MnNOR, Rd: rd, Rs: rs}))
		return nil
	case "neg":
		if err := a.need(s, 2); err != nil {
			return err
		}
		rd, err := a.reg(s, s.ops[0])
		if err != nil {
			return err
		}
		rt, err := a.reg(s, s.ops[1])
		if err != nil {
			return err
		}
		a.emitWord(s.addr, arch.Encode(arch.Inst{Mn: arch.MnSUBU, Rd: rd, Rt: rt}))
		return nil
	case "li", "la":
		if err := a.need(s, 2); err != nil {
			return err
		}
		rt, err := a.reg(s, s.ops[0])
		if err != nil {
			return err
		}
		v, err := a.expr(s, s.ops[1])
		if err != nil {
			return err
		}
		a.emitWord(s.addr, arch.Encode(arch.Inst{Mn: arch.MnLUI, Rt: rt, Imm: uint16(v >> 16)}))
		a.emitWord(s.addr+4, arch.Encode(arch.Inst{Mn: arch.MnORI, Rt: rt, Rs: rt, Imm: uint16(v)}))
		return nil
	case "b":
		if err := a.need(s, 1); err != nil {
			return err
		}
		off, err := a.branchOff(s, s.ops[0])
		if err != nil {
			return err
		}
		a.emitWord(s.addr, arch.Encode(arch.Inst{Mn: arch.MnBEQ, Imm: off}))
		return nil
	case "beqz", "bnez":
		if err := a.need(s, 2); err != nil {
			return err
		}
		rs, err := a.reg(s, s.ops[0])
		if err != nil {
			return err
		}
		off, err := a.branchOff(s, s.ops[1])
		if err != nil {
			return err
		}
		mn := arch.MnBEQ
		if s.mnemonic == "bnez" {
			mn = arch.MnBNE
		}
		a.emitWord(s.addr, arch.Encode(arch.Inst{Mn: mn, Rs: rs, Imm: off}))
		return nil
	}

	mn, ok := arch.ByName[s.mnemonic]
	if !ok {
		return errf(s.line, "unknown mnemonic %q", s.mnemonic)
	}
	inst := arch.Inst{Mn: mn}
	var err error

	switch arch.FormatOf(mn) {
	case arch.FmtNone:
		if len(s.ops) != 0 {
			return errf(s.line, "%s takes no operands", s.mnemonic)
		}
	case arch.FmtRdRsRt:
		if err = a.need(s, 3); err != nil {
			return err
		}
		if inst.Rd, err = a.reg(s, s.ops[0]); err != nil {
			return err
		}
		if inst.Rs, err = a.reg(s, s.ops[1]); err != nil {
			return err
		}
		if inst.Rt, err = a.reg(s, s.ops[2]); err != nil {
			return err
		}
	case arch.FmtRdRtSa:
		if err = a.need(s, 3); err != nil {
			return err
		}
		if inst.Rd, err = a.reg(s, s.ops[0]); err != nil {
			return err
		}
		if inst.Rt, err = a.reg(s, s.ops[1]); err != nil {
			return err
		}
		sa, err := a.expr(s, s.ops[2])
		if err != nil {
			return err
		}
		if sa > 31 {
			return errf(s.line, "shift amount %d out of range", sa)
		}
		inst.Shamt = uint8(sa)
	case arch.FmtRdRtRs:
		if err = a.need(s, 3); err != nil {
			return err
		}
		if inst.Rd, err = a.reg(s, s.ops[0]); err != nil {
			return err
		}
		if inst.Rt, err = a.reg(s, s.ops[1]); err != nil {
			return err
		}
		if inst.Rs, err = a.reg(s, s.ops[2]); err != nil {
			return err
		}
	case arch.FmtRs:
		if err = a.need(s, 1); err != nil {
			return err
		}
		if inst.Rs, err = a.reg(s, s.ops[0]); err != nil {
			return err
		}
	case arch.FmtRdRs:
		// jalr: one-operand form defaults rd = ra.
		switch len(s.ops) {
		case 1:
			inst.Rd = arch.RegRA
			if inst.Rs, err = a.reg(s, s.ops[0]); err != nil {
				return err
			}
		case 2:
			if inst.Rd, err = a.reg(s, s.ops[0]); err != nil {
				return err
			}
			if inst.Rs, err = a.reg(s, s.ops[1]); err != nil {
				return err
			}
		default:
			return errf(s.line, "%s takes 1 or 2 operands", s.mnemonic)
		}
	case arch.FmtRd:
		if err = a.need(s, 1); err != nil {
			return err
		}
		if inst.Rd, err = a.reg(s, s.ops[0]); err != nil {
			return err
		}
	case arch.FmtRsRt:
		if err = a.need(s, 2); err != nil {
			return err
		}
		if inst.Rs, err = a.reg(s, s.ops[0]); err != nil {
			return err
		}
		if inst.Rt, err = a.reg(s, s.ops[1]); err != nil {
			return err
		}
	case arch.FmtRtRsImm:
		if err = a.need(s, 3); err != nil {
			return err
		}
		if inst.Rt, err = a.reg(s, s.ops[0]); err != nil {
			return err
		}
		if inst.Rs, err = a.reg(s, s.ops[1]); err != nil {
			return err
		}
		if inst.Imm, err = a.imm16(s, s.ops[2]); err != nil {
			return err
		}
	case arch.FmtRtImm:
		if err = a.need(s, 2); err != nil {
			return err
		}
		if inst.Rt, err = a.reg(s, s.ops[0]); err != nil {
			return err
		}
		if inst.Imm, err = a.imm16(s, s.ops[1]); err != nil {
			return err
		}
	case arch.FmtRsRtOff:
		if err = a.need(s, 3); err != nil {
			return err
		}
		if inst.Rs, err = a.reg(s, s.ops[0]); err != nil {
			return err
		}
		if inst.Rt, err = a.reg(s, s.ops[1]); err != nil {
			return err
		}
		if inst.Imm, err = a.branchOff(s, s.ops[2]); err != nil {
			return err
		}
	case arch.FmtRsOff:
		if err = a.need(s, 2); err != nil {
			return err
		}
		if inst.Rs, err = a.reg(s, s.ops[0]); err != nil {
			return err
		}
		if inst.Imm, err = a.branchOff(s, s.ops[1]); err != nil {
			return err
		}
	case arch.FmtRtOffBase:
		if err = a.need(s, 2); err != nil {
			return err
		}
		if inst.Rt, err = a.reg(s, s.ops[0]); err != nil {
			return err
		}
		var base arch.Reg
		var off uint16
		if off, base, err = a.memOperand(s, s.ops[1]); err != nil {
			return err
		}
		inst.Rs, inst.Imm = base, off
	case arch.FmtTarget:
		if err = a.need(s, 1); err != nil {
			return err
		}
		target, err := a.expr(s, s.ops[0])
		if err != nil {
			return err
		}
		fld, ok := arch.JumpField(s.addr, target)
		if !ok {
			return errf(s.line, "jump target %#x unreachable from %#x", target, s.addr)
		}
		inst.Target = fld
	case arch.FmtCode:
		switch len(s.ops) {
		case 0:
		case 1:
			code, err := a.expr(s, s.ops[0])
			if err != nil {
				return err
			}
			if code > 0xfffff {
				return errf(s.line, "code %#x exceeds 20 bits", code)
			}
			inst.Code = code
		default:
			return errf(s.line, "%s takes 0 or 1 operands", s.mnemonic)
		}
	case arch.FmtRtC0:
		if err = a.need(s, 2); err != nil {
			return err
		}
		if inst.Rt, err = a.reg(s, s.ops[0]); err != nil {
			return err
		}
		c0, ok := c0ByName(s.ops[1])
		if !ok {
			return errf(s.line, "bad cp0 register %q", s.ops[1])
		}
		inst.C0Reg = c0
	}

	a.emitWord(s.addr, arch.Encode(inst))
	return nil
}
