package asm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"uexc/internal/arch"
)

// words extracts the assembled image as a flat word slice starting at
// the program's lowest address.
func words(t *testing.T, p *Program) []uint32 {
	t.Helper()
	lo, end := p.Extent()
	if (end-lo)%4 != 0 {
		t.Fatalf("image size %d not word multiple", end-lo)
	}
	flat := make([]byte, end-lo)
	for _, c := range p.Chunks {
		copy(flat[c.Addr-lo:], c.Data)
	}
	out := make([]uint32, len(flat)/4)
	for i := range out {
		out[i] = uint32(flat[4*i]) | uint32(flat[4*i+1])<<8 |
			uint32(flat[4*i+2])<<16 | uint32(flat[4*i+3])<<24
	}
	return out
}

func mustAssemble(t *testing.T, src string, origin uint32) *Program {
	t.Helper()
	p, err := Assemble(src, origin)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
		addu v0, a0, a1
		sll  t0, t1, 4
		jr   ra
		syscall
		lw   t0, 8(sp)
		sw   t0, -4(sp)
		lui  t0, 0x8000
		rfe
		tlbwi
		mfc0 k0, c0_cause
		mtc0 k0, $14
		break 3
		hcall 9
	`, 0x1000)
	got := words(t, p)
	want := []uint32{
		arch.Encode(arch.Inst{Mn: arch.MnADDU, Rd: arch.RegV0, Rs: arch.RegA0, Rt: arch.RegA1}),
		arch.Encode(arch.Inst{Mn: arch.MnSLL, Rd: arch.RegT0, Rt: arch.RegT1, Shamt: 4}),
		arch.Encode(arch.Inst{Mn: arch.MnJR, Rs: arch.RegRA}),
		arch.Encode(arch.Inst{Mn: arch.MnSYSCALL}),
		arch.Encode(arch.Inst{Mn: arch.MnLW, Rt: arch.RegT0, Rs: arch.RegSP, Imm: 8}),
		arch.Encode(arch.Inst{Mn: arch.MnSW, Rt: arch.RegT0, Rs: arch.RegSP, Imm: 0xfffc}),
		arch.Encode(arch.Inst{Mn: arch.MnLUI, Rt: arch.RegT0, Imm: 0x8000}),
		arch.Encode(arch.Inst{Mn: arch.MnRFE}),
		arch.Encode(arch.Inst{Mn: arch.MnTLBWI}),
		arch.Encode(arch.Inst{Mn: arch.MnMFC0, Rt: arch.RegK0, C0Reg: arch.C0Cause}),
		arch.Encode(arch.Inst{Mn: arch.MnMTC0, Rt: arch.RegK0, C0Reg: arch.C0EPC}),
		arch.Encode(arch.Inst{Mn: arch.MnBREAK, Code: 3}),
		arch.Encode(arch.Inst{Mn: arch.MnHCALL, Code: 9}),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d words, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d = %#08x (%s), want %#08x (%s)", i,
				got[i], arch.DisassembleWord(got[i], 0),
				want[i], arch.DisassembleWord(want[i], 0))
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x100
top:	addiu t0, t0, 1
		bne  t0, t1, top
		nop
		beq  zero, zero, done
		nop
done:	jr ra
	`, 0)
	got := words(t, p)
	// bne at 0x104 back to 0x100: off = (0x100 - 0x108)/4 = -2
	bne := arch.Decode(got[1])
	if bne.Mn != arch.MnBNE || int16(bne.Imm) != -2 {
		t.Errorf("bne encoded %+v", bne)
	}
	beq := arch.Decode(got[3])
	if beq.Mn != arch.MnBEQ || int16(beq.Imm) != 1 {
		t.Errorf("beq encoded %+v (imm=%d)", beq, int16(beq.Imm))
	}
	if v := p.MustSymbol("done"); v != 0x114 {
		t.Errorf("done = %#x", v)
	}
}

func TestJumpEncoding(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x80000080
		j handler
		nop
handler:
		jal handler
		nop
	`, 0)
	got := words(t, p)
	j := arch.Decode(got[0])
	if j.Mn != arch.MnJ || arch.JumpTarget(0x80000080, j.Target) != 0x80000088 {
		t.Errorf("j decoded %+v target %#x", j, arch.JumpTarget(0x80000080, j.Target))
	}
	jal := arch.Decode(got[2])
	if jal.Mn != arch.MnJAL || arch.JumpTarget(0x80000088, jal.Target) != 0x80000088 {
		t.Errorf("jal decoded %+v", jal)
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
		li   t0, 0xdeadbeef
		la   t1, target
		move v0, a0
		not  t2, t3
		neg  t4, t5
		beqz a0, target
		bnez a1, target
		b    target
target:
	`, 0x2000)
	got := words(t, p)
	checks := []struct {
		idx  int
		want arch.Inst
	}{
		{0, arch.Inst{Mn: arch.MnLUI, Rt: arch.RegT0, Imm: 0xdead}},
		{1, arch.Inst{Mn: arch.MnORI, Rt: arch.RegT0, Rs: arch.RegT0, Imm: 0xbeef}},
		{2, arch.Inst{Mn: arch.MnLUI, Rt: arch.RegT1, Imm: 0x0000}},
		{3, arch.Inst{Mn: arch.MnORI, Rt: arch.RegT1, Rs: arch.RegT1, Imm: 0x2028}},
		{4, arch.Inst{Mn: arch.MnADDU, Rd: arch.RegV0, Rs: arch.RegA0}},
		{5, arch.Inst{Mn: arch.MnNOR, Rd: arch.RegT2, Rs: arch.RegT3}},
		{6, arch.Inst{Mn: arch.MnSUBU, Rd: arch.RegT4, Rt: arch.RegT5}},
	}
	for _, c := range checks {
		if d := arch.Decode(got[c.idx]); d != c.want {
			t.Errorf("word %d = %+v, want %+v", c.idx, d, c.want)
		}
	}
	if d := arch.Decode(got[7]); d.Mn != arch.MnBEQ || d.Rs != arch.RegA0 {
		t.Errorf("beqz pseudo = %+v", d)
	}
	if d := arch.Decode(got[9]); d.Mn != arch.MnBEQ || d.Rs != arch.RegZero || d.Imm != 0 {
		t.Errorf("b pseudo = %+v", d)
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x3000
		.equ MAGIC, 0xcafe0000 | 0x42
vals:	.word 1, 2, MAGIC, vals
		.half 0x1234, 0x5678
		.byte 1, 2, 3
		.align 4
aligned:
		.asciiz "hi\n"
		.space 5
end:
	`, 0)
	flatWords := map[uint32]byte{}
	for _, c := range p.Chunks {
		for i, b := range c.Data {
			flatWords[c.Addr+uint32(i)] = b
		}
	}
	wordAt := func(addr uint32) uint32 {
		return uint32(flatWords[addr]) | uint32(flatWords[addr+1])<<8 |
			uint32(flatWords[addr+2])<<16 | uint32(flatWords[addr+3])<<24
	}
	if wordAt(0x3000) != 1 || wordAt(0x3004) != 2 || wordAt(0x3008) != 0xcafe0042 || wordAt(0x300c) != 0x3000 {
		t.Errorf("words = %#x %#x %#x %#x", wordAt(0x3000), wordAt(0x3004), wordAt(0x3008), wordAt(0x300c))
	}
	if p.MustSymbol("aligned") != 0x3000+16+4+3+1 {
		t.Errorf("aligned = %#x", p.MustSymbol("aligned"))
	}
	if p.MustSymbol("end") != p.MustSymbol("aligned")+4+5 {
		t.Errorf("end = %#x", p.MustSymbol("end"))
	}
	// String bytes.
	lo, _ := p.Extent()
	flat := map[uint32]byte{}
	for _, c := range p.Chunks {
		for i, b := range c.Data {
			flat[c.Addr+uint32(i)] = b
		}
	}
	sa := p.MustSymbol("aligned")
	if flat[sa] != 'h' || flat[sa+1] != 'i' || flat[sa+2] != '\n' || flat[sa+3] != 0 {
		t.Errorf("asciiz bytes wrong at %#x (lo=%#x)", sa, lo)
	}
}

func TestCommentsAndLabelsOnOneLine(t *testing.T) {
	p := mustAssemble(t, `
start:	nop # comment with , and (
		nop ; another
		nop // third
x: y:	nop
	`, 0x500)
	if p.MustSymbol("start") != 0x500 {
		t.Error("start mislabeled")
	}
	if p.MustSymbol("x") != 0x50c || p.MustSymbol("y") != 0x50c {
		t.Errorf("x=%#x y=%#x", p.MustSymbol("x"), p.MustSymbol("y"))
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"addu v0, a0",            // wrong arity
		"bogus t0, t1",           // unknown mnemonic
		"addu q9, a0, a1",        // bad register
		"lw t0, 8[sp]",           // bad mem operand
		".word undefinedsym",     // undefined symbol
		"x: nop\nx: nop",         // duplicate label
		".equ 9bad, 5",           // bad equ name
		"beq a0, a1, 0x01000000", // unencodable branch (far)
		"j 0x90000000",           // unreachable jump from 0
		".align 3",               // non power of two
		"sll t0, t1, 32",         // shift out of range
		`.asciiz "unterminated`,  // bad string
	}
	for _, src := range cases {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("Assemble(%q) error type %T", src, err)
		}
	}
}

func TestErrorCarriesLine(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus\n", 0)
	ae, ok := err.(*Error)
	if !ok || ae.Line != 3 {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(ae.Error(), "line 3") {
		t.Errorf("Error() = %q", ae.Error())
	}
}

// TestDisasmRoundTrip property: for every mnemonic, assemble the
// disassembly of a random valid instruction and get the same word back.
func TestDisasmRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pc := uint32(0x4000)
	for name, mn := range arch.ByName {
		for trial := 0; trial < 32; trial++ {
			inst := arch.Inst{
				Mn:    mn,
				Rs:    arch.Reg(rng.Intn(32)),
				Rt:    arch.Reg(rng.Intn(32)),
				Rd:    arch.Reg(rng.Intn(32)),
				Shamt: uint8(rng.Intn(32)),
				Imm:   uint16(rng.Intn(0x100)), // keep branches in range
				Code:  uint32(rng.Intn(1 << 20)),
				C0Reg: uint8(rng.Intn(32)),
			}
			if tf, ok := arch.JumpField(pc, pc+uint32(rng.Intn(64))*4); ok {
				inst.Target = tf
			}
			// Normalize via decode(encode()) to zero unused fields.
			norm := arch.Decode(arch.Encode(inst))
			if norm.Mn != mn {
				continue // fields aliased into another form; skip
			}
			text := arch.Disassemble(norm, pc)
			p, err := Assemble("\t.org 0x4000\n\t"+text+"\n", 0)
			if err != nil {
				t.Fatalf("%s: cannot assemble %q: %v", name, text, err)
			}
			got := words(t, p)[0]
			if got != arch.Encode(norm) {
				t.Fatalf("%s: %q assembled to %#08x, want %#08x", name, text, got, arch.Encode(norm))
			}
		}
	}
}

func TestQuickLiMaterializesConstant(t *testing.T) {
	f := func(v uint32) bool {
		p, err := Assemble("\tli t0, "+formatHex(v)+"\n", 0)
		if err != nil {
			return false
		}
		w := words(t, p)
		lui := arch.Decode(w[0])
		ori := arch.Decode(w[1])
		return uint32(lui.Imm)<<16|uint32(ori.Imm) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func formatHex(v uint32) string {
	const digits = "0123456789abcdef"
	out := []byte("0x00000000")
	for i := 0; i < 8; i++ {
		out[9-i] = digits[v>>(4*i)&0xf]
	}
	return string(out)
}

func TestOrgGapsProduceSeparateChunks(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x1000
		.word 1
		.org 0x2000
		.word 2
	`, 0)
	if len(p.Chunks) != 2 {
		t.Fatalf("chunks = %d, want 2", len(p.Chunks))
	}
	if p.Chunks[0].Addr != 0x1000 || p.Chunks[1].Addr != 0x2000 {
		t.Errorf("chunk addrs %#x %#x", p.Chunks[0].Addr, p.Chunks[1].Addr)
	}
}

func TestListing(t *testing.T) {
	_, listing, err := AssembleWithListing(`
	.org 0x1000
start:	addu v0, a0, a1
	li   t0, 0x12345678
	.word 1, 2
	.asciiz "hi"
`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(listing) != 4 {
		t.Fatalf("listing entries = %d, want 4", len(listing))
	}
	checks := []struct {
		addr uint32
		size uint32
		text string
	}{
		{0x1000, 4, "addu v0, a0, a1"},
		{0x1004, 8, "li t0, 0x12345678"},
		{0x100c, 8, ".word 1, 2"},
		{0x1014, 3, ".asciiz \"hi\""},
	}
	for i, c := range checks {
		e := listing[i]
		if e.Addr != c.addr || e.Size != c.size || e.Text != c.text {
			t.Errorf("entry %d = {%#x %d %q}, want {%#x %d %q}",
				i, e.Addr, e.Size, e.Text, c.addr, c.size, c.text)
		}
	}
	// Line numbers ascend and point into the source.
	for i := 1; i < len(listing); i++ {
		if listing[i].Line <= listing[i-1].Line {
			t.Errorf("listing lines not ascending: %v", listing)
		}
	}
}
