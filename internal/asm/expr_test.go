package asm

import (
	"strings"
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, src string, syms map[string]uint32) uint32 {
	t.Helper()
	v, err := evalExpr(src, func(n string) (uint32, bool) {
		x, ok := syms[n]
		return x, ok
	})
	if err != nil {
		t.Fatalf("evalExpr(%q): %v", src, err)
	}
	return v
}

func TestExprLiterals(t *testing.T) {
	cases := map[string]uint32{
		"0":          0,
		"42":         42,
		"0x2a":       42,
		"0b101":      5,
		"0o17":       15,
		"'A'":        65,
		"'\\n'":      10,
		"'\\0'":      0,
		"'\\\\'":     92,
		"0xffffffff": 0xffffffff,
	}
	for src, want := range cases {
		if got := evalOK(t, src, nil); got != want {
			t.Errorf("%q = %d, want %d", src, got, want)
		}
	}
}

func TestExprPrecedence(t *testing.T) {
	cases := map[string]uint32{
		"1 + 2 * 3":        7,
		"(1 + 2) * 3":      9,
		"1 << 4 | 1":       17,
		"6 / 2 + 1":        4,
		"7 %% 3":           0, // will be fixed below: literal % in go string
		"10 - 2 - 3":       5, // left associative
		"1 | 2 | 4":        7,
		"0xff & 0x0f":      0x0f,
		"1 << 2 << 1":      8,
		"~0 >> 28":         0xf,
		"-1 + 2":           1,
		"2 * -3 + 10":      4,
		"5 ^ 3":            6,
		"(1 << 10) - 1":    1023,
		"0x80000000 >> 31": 1,
	}
	delete(cases, "7 %% 3")
	cases["7 % 3"] = 1
	for src, want := range cases {
		if got := evalOK(t, src, nil); got != want {
			t.Errorf("%q = %d, want %d", src, got, want)
		}
	}
}

func TestExprSymbols(t *testing.T) {
	syms := map[string]uint32{"base": 0x1000, "off": 8, "UAREA": 0x80040000}
	if got := evalOK(t, "base + off*4", syms); got != 0x1020 {
		t.Errorf("got %#x", got)
	}
	if got := evalOK(t, "UAREA >> 16", syms); got != 0x8004 {
		t.Errorf("got %#x", got)
	}
}

func TestExprErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "1)", "nosuchsym", "1 / 0", "1 % 0",
		"'x", "'\\q'", "0x", "4294967296", "1 @ 2",
	}
	for _, src := range bad {
		if _, err := evalExpr(src, nil); err == nil {
			t.Errorf("evalExpr(%q) succeeded", src)
		}
	}
}

func TestExprSymbolInConstantOnlyContext(t *testing.T) {
	_, err := evalExpr("somesym", nil)
	if err == nil || !strings.Contains(err.Error(), "constant-only") {
		t.Errorf("err = %v", err)
	}
}

// TestExprMatchesGoSemantics: random small expressions agree with Go's
// evaluation of the same operators.
func TestExprMatchesGoSemantics(t *testing.T) {
	type op struct {
		sym string
		fn  func(a, b uint32) uint32
	}
	ops := []op{
		{"+", func(a, b uint32) uint32 { return a + b }},
		{"-", func(a, b uint32) uint32 { return a - b }},
		{"*", func(a, b uint32) uint32 { return a * b }},
		{"&", func(a, b uint32) uint32 { return a & b }},
		{"|", func(a, b uint32) uint32 { return a | b }},
		{"^", func(a, b uint32) uint32 { return a ^ b }},
		{"<<", func(a, b uint32) uint32 { return a << (b & 31) }},
		{">>", func(a, b uint32) uint32 { return a >> (b & 31) }},
	}
	f := func(a, b uint32, which uint8) bool {
		o := ops[int(which)%len(ops)]
		src := formatU(a) + " " + o.sym + " " + formatU(b)
		got, err := evalExpr(src, nil)
		return err == nil && got == o.fn(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func formatU(v uint32) string {
	const digits = "0123456789"
	if v == 0 {
		return "0"
	}
	var buf [10]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return string(buf[i:])
}
