package asm

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// FuzzAssemble feeds arbitrary source text to the assembler: it must
// never panic, and every rejection must be a typed *Error carrying a
// plausible source line — the diagnostic contract the kernel build and
// the test harness rely on. Seed corpus under testdata/fuzz/FuzzAssemble.
func FuzzAssemble(f *testing.F) {
	f.Add("")
	f.Add("nop\n")
	f.Add("main:\n\taddiu sp, sp, -8\n\tjal f\n\tnop\nf:\tjr ra\n\tnop\n")
	f.Add(".org 0x80000000\n\tmfc0 k0, C0_CAUSE\n\trfe\n")
	f.Add(".data\nw:\t.word 1, 2, 3\ns:\t.asciiz \"hi\\n\"\n")
	f.Add("\t.align 4\n\t.space 128\n")
	f.Add("bad instruction here\n")
	f.Add("\t.word 0x\n")
	f.Add("loop:\tb loop\n")
	f.Fuzz(func(t *testing.T, src string) {
		_, err := Assemble(src, 0x00400000)
		if err == nil {
			return
		}
		var ae *Error
		if !errors.As(err, &ae) {
			t.Fatalf("Assemble error is not *asm.Error: %T %v", err, err)
		}
		if ae.Line < 1 {
			t.Fatalf("diagnostic with bad line %d: %v", ae.Line, ae)
		}
	})
}

// TestAssemblerNeverPanics: arbitrary garbage must produce an error or
// a program, never a panic.
func TestAssemblerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pieces := []string{
		"addu", "lw", "sw", "beq", ".word", ".org", ".equ", ".asciiz",
		"t0", "zero", "sp", ",", "(", ")", ":", "0x", "123", "-", "+",
		"<<", "label", "\"str", "'", "\n", "\t", " ", "#c", "%", "$",
		".align", ".space", "li", "la", "nop", "jr", "mfc0", "c0_epc",
	}
	for trial := 0; trial < 3000; trial++ {
		var b strings.Builder
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			if rng.Intn(3) == 0 {
				b.WriteByte(' ')
			}
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Assemble(src, 0x1000)
		}()
	}
}

// TestAssemblerRandomBytes: raw random byte soup likewise.
func TestAssemblerRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 1000; trial++ {
		buf := make([]byte, rng.Intn(200))
		for i := range buf {
			buf[i] = byte(rng.Intn(128))
		}
		src := string(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Assemble(src, 0)
		}()
	}
}
