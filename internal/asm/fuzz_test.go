package asm

import (
	"math/rand"
	"strings"
	"testing"
)

// TestAssemblerNeverPanics: arbitrary garbage must produce an error or
// a program, never a panic.
func TestAssemblerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pieces := []string{
		"addu", "lw", "sw", "beq", ".word", ".org", ".equ", ".asciiz",
		"t0", "zero", "sp", ",", "(", ")", ":", "0x", "123", "-", "+",
		"<<", "label", "\"str", "'", "\n", "\t", " ", "#c", "%", "$",
		".align", ".space", "li", "la", "nop", "jr", "mfc0", "c0_epc",
	}
	for trial := 0; trial < 3000; trial++ {
		var b strings.Builder
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			if rng.Intn(3) == 0 {
				b.WriteByte(' ')
			}
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Assemble(src, 0x1000)
		}()
	}
}

// TestAssemblerRandomBytes: raw random byte soup likewise.
func TestAssemblerRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 1000; trial++ {
		buf := make([]byte, rng.Intn(200))
		for i := range buf {
			buf[i] = byte(rng.Intn(128))
		}
		src := string(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Assemble(src, 0)
		}()
	}
}
