// Package asm implements a two-pass assembler for the simulated
// machine's ISA (internal/arch). It supports labels, constant
// expressions, the usual data directives, and a small set of
// pseudo-instructions, producing a relocated memory image plus a symbol
// table.
//
// The simulated kernel, the user-mode runtime, and every microbenchmark
// program in this repository are written in this assembly language, so
// that the costs the benchmarks report are measured by executing real
// instruction sequences rather than asserted as constants.
//
// Syntax summary:
//
//	# comment, // comment, ; comment
//	label:                      ; labels may share a line with a statement
//	        .org  0x80000080    ; set location counter
//	        .word expr, expr    ; 32-bit data (also .half, .byte)
//	        .asciiz "text"      ; NUL-terminated string (also .ascii)
//	        .align 4            ; pad to 2^n... no: pad to n-byte boundary
//	        .space 64           ; reserve zeroed bytes
//	        .equ  name, expr    ; define a constant
//	        addu  v0, a0, a1    ; registers with or without '$'
//	        lw    t0, 8(sp)     ; loads/stores
//	        beq   a0, zero, lab ; branch targets are labels/expressions
//	        li    t0, 0x12345678; pseudo: lui+ori (always 8 bytes)
//	        la    t0, buffer    ; pseudo: lui+ori (always 8 bytes)
//	        mfc0  k0, c0_cause  ; CP0 registers by name or $number
package asm

import (
	"fmt"
	"sort"
	"strings"

	"uexc/internal/arch"
)

// Chunk is a contiguous span of assembled bytes.
type Chunk struct {
	Addr uint32
	Data []byte
}

// Program is the result of assembling one source unit.
type Program struct {
	Chunks  []Chunk
	Symbols map[string]uint32
}

// Symbol returns the value of a defined symbol.
func (p *Program) Symbol(name string) (uint32, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// MustSymbol returns the value of a symbol that must exist; it panics
// otherwise. It is reserved for labels under the simulator's own
// control (the kernel image and the user runtime prelude, whose
// runtime-critical labels are verified at boot) — a miss is a
// programming error, not an input error. Anything derived from user
// input must use Symbol and handle the miss.
func (p *Program) MustSymbol(name string) uint32 {
	v, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: undefined symbol %q", name))
	}
	return v
}

// Extent returns the lowest address and the total end address of the
// image (end of the highest chunk).
func (p *Program) Extent() (lo, end uint32) {
	if len(p.Chunks) == 0 {
		return 0, 0
	}
	lo = p.Chunks[0].Addr
	for _, c := range p.Chunks {
		if c.Addr < lo {
			lo = c.Addr
		}
		if e := c.Addr + uint32(len(c.Data)); e > end {
			end = e
		}
	}
	return lo, end
}

// Error is an assembly diagnostic carrying the source line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// stmt is one parsed statement awaiting encoding.
type stmt struct {
	line     int
	addr     uint32
	size     uint32
	mnemonic string   // instruction or directive (with '.')
	ops      []string // raw operand texts
}

// Assemble assembles source text with the location counter initially at
// origin (overridable by .org).
func Assemble(src string, origin uint32) (*Program, error) {
	p, _, err := AssembleWithListing(src, origin)
	return p, err
}

// ListEntry describes one assembled statement for listings.
type ListEntry struct {
	Line int    // 1-based source line
	Addr uint32 // location-counter value
	Size uint32 // bytes emitted
	Text string // canonical statement text
}

// AssembleWithListing assembles and additionally returns a per-statement
// listing (address, size, and canonical text, in source order).
func AssembleWithListing(src string, origin uint32) (*Program, []ListEntry, error) {
	a := &assembler{
		syms:   make(map[string]uint32),
		origin: origin,
	}
	if err := a.pass1(src); err != nil {
		return nil, nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, nil, err
	}
	listing := make([]ListEntry, 0, len(a.stmts))
	for _, st := range a.stmts {
		text := st.mnemonic
		if len(st.ops) > 0 {
			text += " " + strings.Join(st.ops, ", ")
		}
		listing = append(listing, ListEntry{Line: st.line, Addr: st.addr, Size: st.size, Text: text})
	}
	return &Program{Chunks: a.finishChunks(), Symbols: a.syms}, listing, nil
}

type assembler struct {
	syms   map[string]uint32
	origin uint32
	stmts  []stmt

	// pass-2 output: per-address bytes, merged into chunks at the end.
	bytes map[uint32]byte
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// pass1 splits lines, defines labels and .equ constants, and assigns
// addresses using fixed statement sizes.
func (a *assembler) pass1(src string) error {
	pc := a.origin
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		// Peel labels (there may be several on one line).
		for {
			trimmed := strings.TrimSpace(line)
			idx := labelSplit(trimmed)
			if idx < 0 {
				line = trimmed
				break
			}
			name := strings.TrimSpace(trimmed[:idx])
			if !validSymbol(name) {
				return errf(lineNo+1, "bad label %q", name)
			}
			if _, dup := a.syms[name]; dup {
				return errf(lineNo+1, "duplicate symbol %q", name)
			}
			a.syms[name] = pc
			line = trimmed[idx+1:]
		}
		if line == "" {
			continue
		}
		mn, ops := splitStmt(line)
		s := stmt{line: lineNo + 1, addr: pc, mnemonic: mn, ops: ops}

		size, err := a.stmtSize(&s, &pc)
		if err != nil {
			return err
		}
		s.size = size
		if size > 0 || mn == ".space" || mn == ".align" {
			a.stmts = append(a.stmts, s)
		}
		pc += size
	}
	return nil
}

// Reservation bounds: images are a few hundred KB at most, so an
// enormous .space/.align (e.g. a negative expression wrapped to a huge
// uint32) is diagnosed instead of materialized.
const (
	maxSpace = 1 << 20 // 1 MB
	maxAlign = 1 << 16 // 64 KB
)

// stmtSize returns the byte size of a statement; .org mutates pc
// directly and .equ defines a symbol.
func (a *assembler) stmtSize(s *stmt, pc *uint32) (uint32, error) {
	switch s.mnemonic {
	case ".org":
		if len(s.ops) != 1 {
			return 0, errf(s.line, ".org takes one operand")
		}
		v, err := evalExpr(s.ops[0], a.lookup)
		if err != nil {
			return 0, errf(s.line, "%v", err)
		}
		*pc = v
		return 0, nil
	case ".equ":
		if len(s.ops) != 2 {
			return 0, errf(s.line, ".equ takes name, value")
		}
		name := strings.TrimSpace(s.ops[0])
		if !validSymbol(name) {
			return 0, errf(s.line, "bad .equ name %q", name)
		}
		if _, dup := a.syms[name]; dup {
			return 0, errf(s.line, "duplicate symbol %q", name)
		}
		v, err := evalExpr(s.ops[1], a.lookup)
		if err != nil {
			return 0, errf(s.line, "%v", err)
		}
		a.syms[name] = v
		return 0, nil
	case ".word":
		return 4 * uint32(len(s.ops)), nil
	case ".half":
		return 2 * uint32(len(s.ops)), nil
	case ".byte":
		return uint32(len(s.ops)), nil
	case ".ascii", ".asciiz":
		if len(s.ops) != 1 {
			return 0, errf(s.line, "%s takes one string", s.mnemonic)
		}
		str, err := parseString(s.ops[0])
		if err != nil {
			return 0, errf(s.line, "%v", err)
		}
		n := uint32(len(str))
		if s.mnemonic == ".asciiz" {
			n++
		}
		return n, nil
	case ".align":
		if len(s.ops) != 1 {
			return 0, errf(s.line, ".align takes one operand")
		}
		n, err := evalExpr(s.ops[0], a.lookup)
		if err != nil {
			return 0, errf(s.line, "%v", err)
		}
		if n == 0 || n&(n-1) != 0 {
			return 0, errf(s.line, ".align operand must be a power of two")
		}
		if n > maxAlign {
			return 0, errf(s.line, ".align %d exceeds maximum %d", n, maxAlign)
		}
		pad := (n - *pc%n) % n
		return pad, nil
	case ".space":
		if len(s.ops) != 1 {
			return 0, errf(s.line, ".space takes one operand")
		}
		n, err := evalExpr(s.ops[0], a.lookup)
		if err != nil {
			return 0, errf(s.line, "%v", err)
		}
		// Expressions are uint32, so a negative operand arrives as a
		// huge positive one; either way a multi-megabyte reservation in
		// a simulator image is a source bug, not a layout choice.
		if n > maxSpace {
			return 0, errf(s.line, ".space %d exceeds maximum %d", n, maxSpace)
		}
		return n, nil
	case ".globl", ".global", ".text", ".data", ".set":
		return 0, nil // accepted and ignored
	}
	if strings.HasPrefix(s.mnemonic, ".") {
		return 0, errf(s.line, "unknown directive %s", s.mnemonic)
	}
	// Instructions: fixed sizes; li/la always expand to two words so
	// pass-1 addresses are stable.
	switch s.mnemonic {
	case "li", "la":
		return 8, nil
	}
	if _, ok := arch.ByName[s.mnemonic]; !ok {
		if _, pseudo := pseudoSizes[s.mnemonic]; !pseudo {
			return 0, errf(s.line, "unknown mnemonic %q", s.mnemonic)
		}
	}
	return 4, nil
}

var pseudoSizes = map[string]uint32{
	"nop": 4, "move": 4, "b": 4, "beqz": 4, "bnez": 4, "not": 4, "neg": 4,
}

func (a *assembler) lookup(name string) (uint32, bool) {
	v, ok := a.syms[name]
	return v, ok
}

func (a *assembler) emitWord(addr, w uint32) {
	a.bytes[addr] = byte(w)
	a.bytes[addr+1] = byte(w >> 8)
	a.bytes[addr+2] = byte(w >> 16)
	a.bytes[addr+3] = byte(w >> 24)
}

// pass2 encodes all statements now that every symbol is known.
func (a *assembler) pass2() error {
	a.bytes = make(map[uint32]byte)
	for i := range a.stmts {
		if err := a.encodeStmt(&a.stmts[i]); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) encodeStmt(s *stmt) error {
	switch s.mnemonic {
	case ".word":
		for i, op := range s.ops {
			v, err := evalExpr(op, a.lookup)
			if err != nil {
				return errf(s.line, "%v", err)
			}
			a.emitWord(s.addr+4*uint32(i), v)
		}
		return nil
	case ".half":
		for i, op := range s.ops {
			v, err := evalExpr(op, a.lookup)
			if err != nil {
				return errf(s.line, "%v", err)
			}
			if v > 0xffff {
				return errf(s.line, ".half value %#x too large", v)
			}
			addr := s.addr + 2*uint32(i)
			a.bytes[addr] = byte(v)
			a.bytes[addr+1] = byte(v >> 8)
		}
		return nil
	case ".byte":
		for i, op := range s.ops {
			v, err := evalExpr(op, a.lookup)
			if err != nil {
				return errf(s.line, "%v", err)
			}
			if v > 0xff {
				return errf(s.line, ".byte value %#x too large", v)
			}
			a.bytes[s.addr+uint32(i)] = byte(v)
		}
		return nil
	case ".ascii", ".asciiz":
		str, err := parseString(s.ops[0])
		if err != nil {
			return errf(s.line, "%v", err)
		}
		for i := 0; i < len(str); i++ {
			a.bytes[s.addr+uint32(i)] = str[i]
		}
		if s.mnemonic == ".asciiz" {
			a.bytes[s.addr+uint32(len(str))] = 0
		}
		return nil
	case ".align", ".space":
		// Zero fill was implicit (unwritten bytes read as zero), but
		// materialize the span so chunk extents cover it.
		size, err := evalExpr(s.ops[0], a.lookup)
		if err != nil {
			return errf(s.line, "%v", err)
		}
		if s.mnemonic == ".align" {
			size = (size - s.addr%size) % size
		}
		for i := uint32(0); i < size; i++ {
			a.bytes[s.addr+i] = 0
		}
		return nil
	}
	return a.encodeInst(s)
}

// finishChunks merges the byte map into sorted contiguous chunks.
func (a *assembler) finishChunks() []Chunk {
	addrs := make([]uint32, 0, len(a.bytes))
	for addr := range a.bytes {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var chunks []Chunk
	for _, addr := range addrs {
		n := len(chunks)
		if n > 0 && chunks[n-1].Addr+uint32(len(chunks[n-1].Data)) == addr {
			chunks[n-1].Data = append(chunks[n-1].Data, a.bytes[addr])
		} else {
			chunks = append(chunks, Chunk{Addr: addr, Data: []byte{a.bytes[addr]}})
		}
	}
	return chunks
}

// --- line scanning helpers ---

func stripComment(line string) string {
	// Strings can contain comment characters; scan outside quotes.
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch {
		case c == '"':
			inStr = true
		case c == '#' || c == ';':
			return line[:i]
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			return line[:i]
		}
	}
	return line
}

// labelSplit finds the colon ending a leading label, or -1.
func labelSplit(line string) int {
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == ':' {
			return i
		}
		if !isSymChar(c) {
			return -1
		}
	}
	return -1
}

// splitStmt separates mnemonic from comma-separated operands.
func splitStmt(line string) (string, []string) {
	line = strings.TrimSpace(line)
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return strings.ToLower(line), nil
	}
	mn := strings.ToLower(line[:sp])
	rest := strings.TrimSpace(line[sp+1:])
	if rest == "" {
		return mn, nil
	}
	if mn == ".ascii" || mn == ".asciiz" {
		return mn, []string{rest}
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return mn, parts
}

func parseString(op string) ([]byte, error) {
	op = strings.TrimSpace(op)
	if len(op) < 2 || op[0] != '"' || op[len(op)-1] != '"' {
		return nil, fmt.Errorf("bad string literal %s", op)
	}
	body := op[1 : len(op)-1]
	out := make([]byte, 0, len(body))
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, fmt.Errorf("dangling escape in %s", op)
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case '0':
			out = append(out, 0)
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		default:
			return nil, fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out, nil
}

func validSymbol(name string) bool {
	if name == "" || !isSymStart(name[0]) {
		return false
	}
	for i := 1; i < len(name); i++ {
		if !isSymChar(name[i]) {
			return false
		}
	}
	return true
}
