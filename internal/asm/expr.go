package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// exprParser evaluates constant expressions over the symbol table:
// numbers (decimal, 0x hex, 0b binary, 'c' chars), symbols, unary - and
// ~, binary + - * / % << >> & | ^, and parentheses, with conventional
// precedence.
type exprParser struct {
	src  string
	pos  int
	syms func(string) (uint32, bool)
}

// evalExpr evaluates the expression in src. syms resolves symbols; it
// may be nil if the expression must be symbol-free.
func evalExpr(src string, syms func(string) (uint32, bool)) (uint32, error) {
	p := &exprParser{src: src, syms: syms}
	v, err := p.parseBinary(0)
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("trailing %q in expression %q", p.src[p.pos:], src)
	}
	return v, nil
}

var binaryLevels = [][]string{
	{"|"},
	{"^"},
	{"&"},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *exprParser) parseBinary(level int) (uint32, error) {
	if level == len(binaryLevels) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return 0, err
	}
	for {
		op := p.peekOp(binaryLevels[level])
		if op == "" {
			return left, nil
		}
		p.pos += len(op)
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return 0, err
		}
		switch op {
		case "|":
			left |= right
		case "^":
			left ^= right
		case "&":
			left &= right
		case "<<":
			left <<= right & 31
		case ">>":
			left >>= right & 31
		case "+":
			left += right
		case "-":
			left -= right
		case "*":
			left *= right
		case "/":
			if right == 0 {
				return 0, fmt.Errorf("division by zero in %q", p.src)
			}
			left /= right
		case "%":
			if right == 0 {
				return 0, fmt.Errorf("modulo by zero in %q", p.src)
			}
			left %= right
		}
	}
}

// peekOp returns which of ops appears next, preferring longer matches so
// "<<" is not read as "<".
func (p *exprParser) peekOp(ops []string) string {
	p.skipSpace()
	rest := p.src[p.pos:]
	best := ""
	for _, op := range ops {
		if strings.HasPrefix(rest, op) && len(op) > len(best) {
			best = op
		}
	}
	// Don't mistake "<<"/">>" prefixes when scanning single-char levels.
	if best == "" {
		return ""
	}
	if (best == "<" || best == ">") && len(rest) >= 2 && rest[1] == rest[0] {
		return ""
	}
	return best
}

func (p *exprParser) parseUnary() (uint32, error) {
	p.skipSpace()
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '-':
			p.pos++
			v, err := p.parseUnary()
			return -v, err
		case '~':
			p.pos++
			v, err := p.parseUnary()
			return ^v, err
		case '+':
			p.pos++
			return p.parseUnary()
		}
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (uint32, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("unexpected end of expression %q", p.src)
	}
	ch := p.src[p.pos]
	switch {
	case ch == '(':
		p.pos++
		v, err := p.parseBinary(0)
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return 0, fmt.Errorf("missing ')' in %q", p.src)
		}
		p.pos++
		return v, nil
	case ch == '\'':
		return p.parseChar()
	case ch >= '0' && ch <= '9':
		return p.parseNumber()
	case isSymStart(ch):
		start := p.pos
		for p.pos < len(p.src) && isSymChar(p.src[p.pos]) {
			p.pos++
		}
		name := p.src[start:p.pos]
		if p.syms == nil {
			return 0, fmt.Errorf("symbol %q in constant-only expression", name)
		}
		v, ok := p.syms(name)
		if !ok {
			return 0, fmt.Errorf("undefined symbol %q", name)
		}
		return v, nil
	}
	return 0, fmt.Errorf("unexpected %q in expression %q", string(ch), p.src)
}

func (p *exprParser) parseNumber() (uint32, error) {
	start := p.pos
	for p.pos < len(p.src) && (isSymChar(p.src[p.pos])) {
		p.pos++
	}
	text := p.src[start:p.pos]
	v, err := strconv.ParseUint(text, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", text)
	}
	if v > 0xffffffff {
		return 0, fmt.Errorf("number %q exceeds 32 bits", text)
	}
	return uint32(v), nil
}

func (p *exprParser) parseChar() (uint32, error) {
	// 'c' or '\n' style.
	rest := p.src[p.pos:]
	if len(rest) >= 3 && rest[1] != '\\' && rest[2] == '\'' {
		p.pos += 3
		return uint32(rest[1]), nil
	}
	if len(rest) >= 4 && rest[1] == '\\' && rest[3] == '\'' {
		p.pos += 4
		switch rest[2] {
		case 'n':
			return '\n', nil
		case 't':
			return '\t', nil
		case '0':
			return 0, nil
		case '\\':
			return '\\', nil
		case '\'':
			return '\'', nil
		}
	}
	return 0, fmt.Errorf("bad character literal in %q", p.src)
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func isSymStart(c byte) bool {
	return c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isSymChar(c byte) bool {
	return isSymStart(c) || c >= '0' && c <= '9' || c == 'x' || c == 'X'
}
