package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) (*Store, *State) {
	t.Helper()
	s, st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, st
}

// TestRoundTrip: accepted jobs with shard prefixes survive a close and
// replay exactly; finished jobs are compacted away.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, st := openT(t, dir, Options{})
	if len(st.Pending) != 0 || st.Restarts != 0 || st.MaxID != 0 {
		t.Fatalf("fresh state: %+v", st)
	}

	req1 := json.RawMessage(`{"type":"campaign","seeds":30}`)
	req2 := json.RawMessage(`{"type":"difftest","seeds":10}`)
	if err := s.AcceptJob(1, req1, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AcceptJob(2, req2, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.AppendShard(1, i, json.RawMessage(`{"shard":`+string(rune('0'+i))+`}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FinishJob(2, true, "done\n", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, st2 := openT(t, dir, Options{})
	defer s2.Close()
	if st2.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", st2.Restarts)
	}
	if st2.MaxID != 2 {
		t.Errorf("MaxID = %d, want 2", st2.MaxID)
	}
	if st2.FinishedJobs != 1 {
		t.Errorf("FinishedJobs = %d, want 1", st2.FinishedJobs)
	}
	if len(st2.Pending) != 1 {
		t.Fatalf("Pending = %+v, want just job 1", st2.Pending)
	}
	p := st2.Pending[0]
	if p.ID != 1 || string(p.Req) != string(req1) || len(p.Shards) != 5 {
		t.Fatalf("pending job: id=%d req=%s shards=%d", p.ID, p.Req, len(p.Shards))
	}
	if string(p.Shards[3]) != `{"shard":3}` {
		t.Errorf("shard 3 = %s", p.Shards[3])
	}
	if st2.ResumedShards != 5 {
		t.Errorf("ResumedShards = %d, want 5", st2.ResumedShards)
	}
}

// TestRestartCounting: each reopen of an existing journal adds one
// restart record, accumulated across compactions.
func TestRestartCounting(t *testing.T) {
	dir := t.TempDir()
	for want := uint64(0); want < 4; want++ {
		s, st := openT(t, dir, Options{})
		if st.Restarts != want {
			t.Fatalf("open %d: Restarts = %d, want %d", want, st.Restarts, want)
		}
		s.Close()
	}
}

// TestTornTailDropped: a partial last line (the SIGKILL signature) is
// dropped; everything durably synced before it survives.
func TestTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	if err := s.AcceptJob(7, json.RawMessage(`{"type":"campaign","seeds":3}`), ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendShard(7, 0, json.RawMessage(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Abandon()

	// Simulate the torn write a kill leaves behind.
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"shard","job":7,"i":1,"da`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, st := openT(t, dir, Options{})
	defer s2.Close()
	if !st.TornTail {
		t.Error("torn tail not reported")
	}
	if len(st.Pending) != 1 || len(st.Pending[0].Shards) != 1 {
		t.Fatalf("state after torn tail: %+v", st)
	}
}

// TestAbandonLosesUnsyncedBatch: shard records buffered past the last
// fsync batch vanish on Abandon, exactly like a real SIGKILL — and the
// survivors are still a contiguous prefix.
func TestAbandonLosesUnsyncedBatch(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{SyncEvery: 4})
	if err := s.AcceptJob(1, json.RawMessage(`{}`), ""); err != nil { // synced
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ { // batch of 4 syncs at i=3 (4 records); 2 left buffered
		if err := s.AppendShard(1, i, json.RawMessage(`{"i":true}`)); err != nil {
			t.Fatal(err)
		}
	}
	s.Abandon()
	if err := s.AppendShard(1, 6, json.RawMessage(`{}`)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after abandon: %v, want ErrClosed", err)
	}

	_, st := openT(t, dir, Options{})
	got := len(st.Pending[0].Shards)
	if got >= 6 {
		t.Fatalf("abandon lost nothing (%d shards survive); unsynced tail should vanish", got)
	}
	if got < 3 {
		t.Fatalf("synced batch lost: only %d shards survive", got)
	}
}

// TestSlowSyncHookRuns: the chaos fsync-delay hook is invoked on the
// sync path.
func TestSlowSyncHookRuns(t *testing.T) {
	dir := t.TempDir()
	calls := 0
	s, _ := openT(t, dir, Options{SyncDelay: func() { calls++ }})
	if err := s.AcceptJob(1, json.RawMessage(`{}`), ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("SyncDelay hook never ran")
	}
}

// TestCorruptRecordRejected: a malformed record that is NOT the torn
// tail fails the open loudly — resuming from a corrupt journal would
// silently drop work.
func TestCorruptRecordRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte("not json\n{\"t\":\"accept\",\"job\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Open on corrupt journal: %v, want corrupt-journal error", err)
	}
}

// TestMaxIDSurvivesCompaction: compaction drops finished jobs' records,
// but the ID allocation floor must not regress with them — otherwise a
// reopened server would reuse a finished job's ID.
func TestMaxIDSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	if err := s.AcceptJob(9, json.RawMessage(`{}`), ""); err != nil {
		t.Fatal(err)
	}
	if err := s.FinishJob(9, true, "", ""); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// First reopen compacts job 9 away; MaxID must still be 9.
	s2, st := openT(t, dir, Options{})
	if st.MaxID != 9 {
		t.Fatalf("MaxID after compacting finished job = %d, want 9", st.MaxID)
	}
	s2.Close()

	// And it must keep surviving further compaction cycles.
	for i := 0; i < 3; i++ {
		s3, st3 := openT(t, dir, Options{})
		if st3.MaxID != 9 {
			t.Fatalf("cycle %d: MaxID = %d, want 9", i, st3.MaxID)
		}
		s3.Close()
	}
}

// TestStaleTmpIgnored: a kill during compaction leaves journal.ndjson.tmp
// behind (possibly garbage, possibly partial). The original journal is
// untouched until the rename, so Open must replay it fully and clobber
// the stale tmp.
func TestStaleTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	if err := s.AcceptJob(3, json.RawMessage(`{"type":"campaign","seeds":5}`), "acme"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendShard(3, 0, json.RawMessage(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	for _, tmp := range []string{"garbage \x00 not json", `{"t":"acc`} {
		if err := os.WriteFile(filepath.Join(dir, journalName+".tmp"), []byte(tmp), 0o644); err != nil {
			t.Fatal(err)
		}
		s2, st := openT(t, dir, Options{})
		if len(st.Pending) != 1 || st.Pending[0].ID != 3 || len(st.Pending[0].Shards) != 1 {
			t.Fatalf("tmp %q: state %+v, want job 3 with 1 shard", tmp, st)
		}
		if st.Pending[0].Tenant != "acme" {
			t.Errorf("tmp %q: tenant = %q, want acme", tmp, st.Pending[0].Tenant)
		}
		s2.Close()
	}
}

// TestDispatchAckReplay: dispatch records without a matching ack are
// the ranges a resuming coordinator owes the fleet; acked ranges and
// dispatches on finished jobs drop out.
func TestDispatchAckReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	if err := s.AcceptJob(1, json.RawMessage(`{"type":"campaign","seeds":8}`), ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDispatch(1, 0, 4, "http://w1"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDispatch(1, 4, 8, "http://w2"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAck(1, 0, 4, "http://w1"); err != nil {
		t.Fatal(err)
	}
	// Re-dispatch of the failed range to a survivor, still unacked.
	if err := s.AppendDispatch(1, 4, 8, "http://w1"); err != nil {
		t.Fatal(err)
	}
	// A second, finished job: its dispatches must not resurface.
	if err := s.AcceptJob(2, json.RawMessage(`{}`), ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDispatch(2, 0, 2, "http://w2"); err != nil {
		t.Fatal(err)
	}
	if err := s.FinishJob(2, true, "", ""); err != nil {
		t.Fatal(err)
	}
	s.Close()

	_, st := openT(t, dir, Options{})
	if len(st.Pending) != 1 {
		t.Fatalf("Pending = %+v, want just job 1", st.Pending)
	}
	got := st.Pending[0].Unacked
	want := []ShardRange{{From: 4, To: 8}, {From: 4, To: 8}}
	if len(got) != len(want) {
		t.Fatalf("Unacked = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Unacked[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestStats: appends, syncs, and post-close losses are counted.
func TestStats(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{SyncEvery: 100})
	_ = s.AcceptJob(1, json.RawMessage(`{}`), "")
	_ = s.AppendShard(1, 0, json.RawMessage(`{}`))
	st := s.Stats()
	if st.Appends != 2 || st.Syncs == 0 {
		t.Errorf("stats = %+v", st)
	}
	s.Abandon()
	_ = s.FinishJob(1, true, "", "")
	if got := s.Stats().Lost; got != 1 {
		t.Errorf("Lost = %d, want 1", got)
	}
}
