// Package store is the serving layer's durable job store: an
// append-only write-ahead journal that makes admitted jobs survive a
// process kill (DESIGN.md §12).
//
// The journal is NDJSON — one Record per line — with six record
// kinds, written strictly append-only:
//
//	restart            a resumed process opened this journal
//	accept             a job was admitted (its request spec, verbatim)
//	shard              one merged shard's digest, in prefix order per job
//	finish             the job's terminal verdict and summary
//	dispatch           coordinator sent shard range [From,To) to a worker
//	ack                that range's results were fully merged
//
// Durability policy: accept, finish, and restart records are fsynced
// immediately (they are the records a crash must not lose silently —
// an acknowledged admission or completion). Shard records are batched:
// the file is fsynced after every SyncEvery appended records, so a
// kill loses at most the last batch of shard digests — which resume
// simply recomputes, since shards are deterministic.
//
// Replay tolerates a torn tail (a partial last line from a mid-write
// kill) by dropping it, and compacts on open: finished jobs' records
// are rewritten away, so the journal's size is bounded by the live
// jobs, not the store's history.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// journalName is the journal file within the store directory.
const journalName = "journal.ndjson"

// ErrClosed is returned by appends on a closed (or abandoned) store.
var ErrClosed = errors.New("job store closed")

// Record is one journal line.
type Record struct {
	T       string          `json:"t"` // "restart" | "accept" | "shard" | "finish" | "dispatch" | "ack"
	Job     uint64          `json:"job,omitempty"`
	Index   int             `json:"i,omitempty"`    // shard: its index in the merged prefix
	Req     json.RawMessage `json:"req,omitempty"`  // accept: the client's request spec
	Data    json.RawMessage `json:"data,omitempty"` // shard: the engine's shard digest
	OK      bool            `json:"ok,omitempty"`   // finish: verdict
	Summary string          `json:"summary,omitempty"`
	Error   string          `json:"error,omitempty"`
	From    int             `json:"from,omitempty"`   // dispatch/ack: range start (inclusive)
	To      int             `json:"to,omitempty"`     // dispatch/ack: range end (exclusive)
	Node    string          `json:"node,omitempty"`   // dispatch/ack: worker base URL
	Tenant  string          `json:"tenant,omitempty"` // accept: admission tenant
}

// ShardRange is a half-open dispatch range [From, To) of shard indices.
type ShardRange struct {
	From, To int
}

// PendingJob is one job the journal shows admitted but not finished:
// exactly what a resuming server must re-run, together with the
// durable contiguous shard prefix it can skip.
type PendingJob struct {
	ID      uint64
	Req     json.RawMessage
	Shards  []json.RawMessage // digests for shards [0, len(Shards)), in order
	Tenant  string            // admission tenant (empty: default)
	Unacked []ShardRange      // dispatched ranges never acked, in dispatch order
}

// State is what replay recovered from the journal.
type State struct {
	Pending       []PendingJob // jobs to resume, in admission order
	MaxID         uint64       // highest job ID ever journaled (ID allocation floor)
	Restarts      uint64       // restart records, including this open's
	FinishedJobs  int          // finish records dropped by compaction
	ResumedShards int          // total durable shards across Pending
	TornTail      bool         // a partial last line was dropped
}

// Options tunes durability.
type Options struct {
	// SyncEvery is the shard-record fsync batch size (<=0: 8).
	SyncEvery int
	// SyncDelay, when non-nil, runs before every fsync — the chaos
	// harness's slow-fsync injection point.
	SyncDelay func()
}

// Stats counts journal traffic for /metrics.
type Stats struct {
	Appends uint64 // records appended
	Syncs   uint64 // fsync batches issued
	Lost    uint64 // appends dropped because the store was closed
}

// Store is an open journal. All methods are safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	dir      string
	opts     Options
	unsynced int
	closed   bool
	stats    Stats
}

// Open opens (creating if needed) the journal under dir, replays it,
// compacts it down to the live jobs, and returns the store plus the
// recovered state. If the journal already existed, a restart record is
// appended — the store's own count of process incarnations.
func Open(dir string, opts Options) (*Store, *State, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("job store: %w", err)
	}
	path := filepath.Join(dir, journalName)

	st, existed, err := replay(path)
	if err != nil {
		return nil, nil, err
	}
	if existed {
		st.Restarts++
	}

	// Compact: rewrite only the live records (plus the accumulated
	// restart count) into a fresh journal, atomically.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("job store: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := uint64(0); i < st.Restarts; i++ {
		// The first restart record carries the highest job ID the old
		// journal ever allocated: compaction drops finished jobs, and
		// without this the ID floor would regress on reopen and a fresh
		// job could reuse a finished job's ID.
		r := Record{T: "restart"}
		if i == 0 {
			r.Job = st.MaxID
		}
		if err := enc.Encode(r); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("job store: compact: %w", err)
		}
	}
	for _, p := range st.Pending {
		if err := enc.Encode(Record{T: "accept", Job: p.ID, Req: p.Req, Tenant: p.Tenant}); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("job store: compact: %w", err)
		}
		for i, d := range p.Shards {
			if err := enc.Encode(Record{T: "shard", Job: p.ID, Index: i, Data: d}); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("job store: compact: %w", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("job store: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("job store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, nil, fmt.Errorf("job store: compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, fmt.Errorf("job store: compact: %w", err)
	}
	syncDir(dir)

	jf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("job store: %w", err)
	}
	s := &Store{f: jf, w: bufio.NewWriter(jf), dir: dir, opts: opts}
	return s, st, nil
}

// replay reads the journal at path and reconstructs the live state.
func replay(path string) (*State, bool, error) {
	st := &State{}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return st, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("job store: replay: %w", err)
	}

	type jobState struct {
		req      json.RawMessage
		shards   []json.RawMessage
		tenant   string
		unacked  []ShardRange
		finished bool
	}
	jobs := map[uint64]*jobState{}
	var order []uint64

	lines := bytes.Split(data, []byte("\n"))
	// A journal killed mid-write ends in a partial line (no trailing
	// newline); Split then yields it as a non-empty last element.
	if n := len(lines); n > 0 && len(lines[n-1]) != 0 {
		st.TornTail = true
		lines = lines[:n-1]
	}
	for _, line := range lines {
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			// Only the torn tail may be malformed; anything else means
			// the journal is corrupt and resuming from it would be a lie.
			return nil, false, fmt.Errorf("job store: corrupt journal record %q: %w", line, err)
		}
		if r.Job > st.MaxID {
			st.MaxID = r.Job
		}
		switch r.T {
		case "restart":
			st.Restarts++
		case "accept":
			if _, dup := jobs[r.Job]; !dup {
				jobs[r.Job] = &jobState{req: append(json.RawMessage(nil), r.Req...), tenant: r.Tenant}
				order = append(order, r.Job)
			}
		case "shard":
			j := jobs[r.Job]
			if j == nil || j.finished {
				continue
			}
			// Shards are journaled in prefix order; anything else is
			// ignored defensively rather than trusted.
			if r.Index == len(j.shards) {
				j.shards = append(j.shards, append(json.RawMessage(nil), r.Data...))
			}
		case "finish":
			if j := jobs[r.Job]; j != nil {
				j.finished = true
			}
		case "dispatch":
			if j := jobs[r.Job]; j != nil && !j.finished {
				j.unacked = append(j.unacked, ShardRange{From: r.From, To: r.To})
			}
		case "ack":
			j := jobs[r.Job]
			if j == nil {
				continue
			}
			for i, rg := range j.unacked {
				if rg.From == r.From && rg.To == r.To {
					j.unacked = append(j.unacked[:i], j.unacked[i+1:]...)
					break
				}
			}
		}
	}
	for _, id := range order {
		j := jobs[id]
		if j.finished {
			st.FinishedJobs++
			continue
		}
		st.Pending = append(st.Pending, PendingJob{
			ID: id, Req: j.req, Shards: j.shards,
			Tenant: j.tenant, Unacked: j.unacked,
		})
		st.ResumedShards += len(j.shards)
	}
	return st, true, nil
}

// append writes one record; sync forces an immediate fsync, otherwise
// the batched policy applies.
func (s *Store) append(r Record, sync bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.stats.Lost++
		return ErrClosed
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("job store: %w", err)
	}
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("job store: append: %w", err)
	}
	s.stats.Appends++
	s.unsynced++
	if sync || s.unsynced >= s.opts.SyncEvery {
		return s.syncLocked()
	}
	return nil
}

// syncLocked flushes and fsyncs; callers hold s.mu.
func (s *Store) syncLocked() error {
	if s.unsynced == 0 {
		return nil
	}
	if s.opts.SyncDelay != nil {
		s.opts.SyncDelay()
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("job store: flush: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("job store: fsync: %w", err)
	}
	s.unsynced = 0
	s.stats.Syncs++
	return nil
}

// AcceptJob journals an admission durably (synced before returning):
// an acknowledged job must survive a kill. The tenant rides along so a
// resumed job stays attributed to its quota owner (without re-charging
// the admission token — that was spent in the first life).
func (s *Store) AcceptJob(id uint64, req json.RawMessage, tenant string) error {
	return s.append(Record{T: "accept", Job: id, Req: req, Tenant: tenant}, true)
}

// AppendDispatch journals that the coordinator handed shard range
// [from,to) of a job to a worker node. Batched like shard records: a
// lost dispatch record only costs a redundant re-dispatch on resume,
// which the duplicate-tolerant merge absorbs. Dispatch records are not
// rewritten by compaction — a resuming coordinator re-dispatches
// everything past its merge frontier regardless.
func (s *Store) AppendDispatch(id uint64, from, to int, node string) error {
	return s.append(Record{T: "dispatch", Job: id, From: from, To: to, Node: node}, false)
}

// AppendAck journals that a dispatched range's results were fully
// merged; batched, same recovery argument as AppendDispatch.
func (s *Store) AppendAck(id uint64, from, to int, node string) error {
	return s.append(Record{T: "ack", Job: id, From: from, To: to, Node: node}, false)
}

// AppendShard journals one merged shard digest under the batched
// fsync policy; losing the tail of a batch only costs recomputation.
func (s *Store) AppendShard(id uint64, index int, data json.RawMessage) error {
	return s.append(Record{T: "shard", Job: id, Index: index, Data: data}, false)
}

// FinishJob journals the terminal verdict durably.
func (s *Store) FinishJob(id uint64, ok bool, summary, errText string) error {
	return s.append(Record{T: "finish", Job: id, OK: ok, Summary: summary, Error: errText}, true)
}

// Sync forces any batched shard records to disk — the checkpoint
// boundary the engines call at every K merged shards.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.syncLocked()
}

// Stats snapshots journal traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close flushes, fsyncs, and closes the journal (the graceful path).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.syncLocked()
	s.closed = true
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abandon closes the journal WITHOUT flushing the buffered tail —
// exactly what SIGKILL does to the real process. The chaos harness
// uses it to make in-process kills lose the same writes a real kill
// would; subsequent appends fail with ErrClosed and count as Lost.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	_ = s.f.Close()
}

// syncDir fsyncs a directory so a rename is durable; best-effort on
// platforms where directories cannot be synced.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
