package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"uexc/internal/debug"
	"uexc/internal/kernel"
)

// sessionScript is the canonical debug-session gauntlet: watch the
// kernel trapframe page, hit it, inspect, step, and resume to exit.
func sessionScript() []debug.Command {
	tf := uint32(kernel.KStackTop - kernel.TrapframeSize)
	return []debug.Command{
		{Op: "watch-page", Addr: tf},
		{Op: "continue"},
		{Op: "inspect", Addr: tf, N: 8},
		{Op: "regs"},
		{Op: "step", N: 4},
		{Op: "clear", Addr: tf},
		{Op: "continue"},
	}
}

func TestDebugSessionValidate(t *testing.T) {
	base := Request{Type: TypeDebugSession, Mode: "ultrix", Commands: sessionScript()}
	if err := base.Validate(100); err != nil {
		t.Fatalf("valid session rejected: %v", err)
	}

	bad := base
	bad.Commands = nil
	if err := bad.Validate(100); err == nil {
		t.Error("empty command script accepted")
	}
	bad = base
	bad.Commands = []debug.Command{{Op: "poke", Addr: 4}}
	if err := bad.Validate(100); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("bad op accepted: %v", err)
	}
	bad = base
	bad.Commands = make([]debug.Command, maxSessionCommands+1)
	for i := range bad.Commands {
		bad.Commands[i] = debug.Command{Op: "regs"}
	}
	if err := bad.Validate(100); err == nil {
		t.Error("oversized command script accepted")
	}
	bad = base
	bad.Mode = "warp"
	if err := bad.Validate(100); err == nil {
		t.Error("bad mode accepted")
	}
}

// TestDebugSessionJob: a debug-session job runs the script, streams a
// deterministic transcript, retains it under GET /sessions/{id}, and
// counts in the session metrics.
func TestDebugSessionJob(t *testing.T) {
	s, base := startTest(t, Config{Workers: 1, QueueDepth: 4, WarmBoot: true})

	req := Request{Type: TypeDebugSession, Seed: 1, Mode: "ultrix", Commands: sessionScript()}
	out, ok, errText, status, _ := postStream(t, base, req)
	if !ok || status != http.StatusOK {
		t.Fatalf("session job failed: status=%d err=%q out=%q", status, errText, out)
	}
	for _, want := range []string{"debug-session: seed 1 mode Ultrix", "hit watch", "inspect", "exit: status="} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	// Byte-identical on a re-run (a fresh machine, possibly recycled).
	again, ok, _, _, _ := postStream(t, base, req)
	if !ok || again != out {
		t.Errorf("session not deterministic\nfirst:\n%s\nsecond:\n%s", out, again)
	}

	// The transcript is retained and served by id (ids are sequential
	// from 1 on a fresh server).
	resp, err := http.Get(base + "/sessions/1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /sessions/1: %d %s", resp.StatusCode, body)
	}
	if !strings.HasPrefix(string(body), "session 1 done=true\n") || !strings.Contains(string(body), "[01] ") {
		t.Errorf("session transcript = %q", body)
	}

	if got := s.metrics.SessionsStarted.Load(); got != 2 {
		t.Errorf("sessions_started_total = %d, want 2", got)
	}
	if got := s.sessionCount(); got != 2 {
		t.Errorf("retained sessions = %d, want 2", got)
	}
	if resp, err := http.Get(base + "/sessions/99"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET unknown session: %d, want 404", resp.StatusCode)
		}
	}
}

// TestSessionEviction: finished sessions are evicted after the
// JobRetention window — the registry stays bounded and the eviction is
// observable in the counter, mirroring the job-eviction fix.
func TestSessionEviction(t *testing.T) {
	s, base := startTest(t, Config{Workers: 1, QueueDepth: 4, JobRetention: 50 * time.Millisecond})

	req := Request{Type: TypeDebugSession, Seed: 2, Mode: "fast",
		Commands: []debug.Command{{Op: "regs"}, {Op: "continue"}}}
	if out, ok, errText, _, _ := postStream(t, base, req); !ok {
		t.Fatalf("session job failed: %s %q", errText, out)
	}
	if got := s.sessionCount(); got != 1 {
		t.Fatalf("retained sessions = %d, want 1 before eviction", got)
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.sessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.metrics.SessionsEvicted.Load(); got != 1 {
		t.Errorf("sessions_evicted_total = %d, want 1", got)
	}
	resp, err := http.Get(base + "/sessions/1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET evicted session: %d, want 404", resp.StatusCode)
	}
}

// TestSessionMetricsSurfaced: the session counters and warm-boot gauge
// appear in both /metrics renderings.
func TestSessionMetricsSurfaced(t *testing.T) {
	_, base := startTest(t, Config{Workers: 1, QueueDepth: 4, WarmBoot: true})
	req := Request{Type: TypeDebugSession, Seed: 1, Mode: "ultrix",
		Commands: []debug.Command{{Op: "continue"}}}
	if out, ok, errText, _, _ := postStream(t, base, req); !ok {
		t.Fatalf("session job failed: %s %q", errText, out)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"uexc_sessions_started_total 1",
		"uexc_sessions_evicted_total 0",
		"uexc_pool_warm_boot 1",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(base + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	js, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{`"sessions_started_total": 1`, `"machine_pool_warm_boot": true`} {
		if !strings.Contains(string(js), want) {
			t.Errorf("JSON metrics missing %q in %s", want, js)
		}
	}
}
