package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LoadConfig drives the built-in load generator.
type LoadConfig struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8612".
	BaseURL string
	// Jobs is the total number of jobs to complete; Concurrency is the
	// number of client goroutines issuing them.
	Jobs, Concurrency int
	// CampaignSeeds / DifftestSeeds size the heavyweight jobs in the
	// mix (<=0: 3 / 2).
	CampaignSeeds, DifftestSeeds int
	// IncludeSweeps mixes in figure-sweep jobs (heavier: each boots
	// measurement machines).
	IncludeSweeps bool
	// Verbose requests per-run progress streaming on every job,
	// exercising the NDJSON path under load.
	Verbose bool
	// RetryCap optionally caps the backpressure sleep (tests use a few
	// milliseconds so forced-429 scenarios stay fast; 0: honor the
	// server's Retry-After in full).
	RetryCap time.Duration
}

// LoadReport is the client-side account of one load run. Dropped
// counts jobs that never completed a stream with a result event;
// Failed counts jobs whose result was ok=false. A healthy run has
// both at zero, with Retried429 typically nonzero — backpressure is
// the admission control working, not an error.
type LoadReport struct {
	Jobs        int            `json:"jobs"`
	Concurrency int            `json:"concurrency"`
	OK          int            `json:"ok"`
	Failed      int            `json:"failed"`
	Dropped     int            `json:"dropped"`
	Retried429  int            `json:"retried_429"`
	Retried503  int            `json:"retried_503"`
	ByType      map[string]int `json:"by_type"`
	// RetryHistogram maps retries-per-job to the number of jobs that
	// needed exactly that many backpressure retries before admission —
	// the shape of the herd, not just its size.
	RetryHistogram map[int]int `json:"retry_histogram"`

	DurationMS   int64   `json:"duration_ms"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	P50LatencyMS float64 `json:"p50_latency_ms"`
	P90LatencyMS float64 `json:"p90_latency_ms"`
	P99LatencyMS float64 `json:"p99_latency_ms"`
	MaxLatencyMS float64 `json:"max_latency_ms"`
}

// mixRequest deterministically maps a job index to a request, so a
// load run's composition depends only on (Jobs, config), never on
// scheduling.
func (cfg *LoadConfig) mixRequest(i int) Request {
	campaignSeeds, difftestSeeds := cfg.CampaignSeeds, cfg.DifftestSeeds
	if campaignSeeds <= 0 {
		campaignSeeds = 3
	}
	if difftestSeeds <= 0 {
		difftestSeeds = 2
	}
	switch {
	case i%10 == 0:
		return Request{Type: TypeCampaign, Seeds: campaignSeeds, Parallel: 1 + i%3, Verbose: cfg.Verbose}
	case i%10 == 5:
		return Request{Type: TypeDifftest, Seeds: difftestSeeds, Parallel: 1 + i%2, Verbose: cfg.Verbose}
	case cfg.IncludeSweeps && i%20 == 7:
		return Request{Type: TypeFigureSweep, Parallel: 1}
	default:
		modes := []string{"ultrix", "fast", "hardware"}
		return Request{Type: TypeProgramRun, Seed: int64(i), Mode: modes[i%3], Verbose: cfg.Verbose}
	}
}

// jobOutcome is one completed stream, as the client saw it.
type jobOutcome struct {
	req      Request
	ok       bool
	complete bool // stream ended with a result event
	output   string
	errText  string
	latency  time.Duration
	retries  [2]int // [429, 503]
}

// StreamResult reads one NDJSON job stream and reconstructs the
// CLI-equivalent output: concatenated progress lines followed by the
// result summary. It returns the reconstructed output, the result
// verdict, and whether the stream completed — which now requires the
// integrity trailer: the final event's record count and FNV-1a-64
// fingerprint must match what the client itself counted and hashed,
// so a truncated or corrupted stream can never pass as complete.
func StreamResult(r io.Reader) (output string, ok, complete bool, errText string) {
	var b strings.Builder
	h := fnv.New64a()
	records := 0
	sawResult := false
	var resultOK bool
	var resultErr string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return b.String(), false, false, "malformed event: " + err.Error()
		}
		if ev.Type == "trailer" {
			if !sawResult {
				return b.String(), false, false, "trailer arrived before a result event"
			}
			if ev.Records != records {
				return b.String(), false, false,
					fmt.Sprintf("trailer counts %d records, client saw %d", ev.Records, records)
			}
			if want := fmt.Sprintf("%016x", h.Sum64()); ev.FNV != want {
				return b.String(), false, false,
					fmt.Sprintf("stream fingerprint mismatch: trailer %s, client %s", ev.FNV, want)
			}
			return b.String(), resultOK, true, resultErr
		}
		// The trailer fingerprints every preceding line with its newline.
		h.Write(line)
		h.Write([]byte{'\n'})
		records++
		switch ev.Type {
		case "progress":
			b.WriteString(ev.Line)
		case "result":
			sawResult = true
			b.WriteString(ev.Summary)
			if ev.OK != nil {
				resultOK = *ev.OK
			}
			resultErr = ev.Error
		}
	}
	if sawResult {
		return b.String(), false, false, "stream ended without an integrity trailer"
	}
	return b.String(), false, false, "stream ended without a result event"
}

// Bounds on the backpressure pause: a zero or missing Retry-After hint
// must never produce a zero-sleep hot retry loop (the client would spin
// re-POSTing a full queue as fast as the network allows), and the
// doubled wait must not grow past a ceiling a human would call "retry
// soon" — Retry-After is a hint, not a lease.
const (
	minRetryWait = 25 * time.Millisecond
	maxRetryWait = 8 * time.Second
)

// retryWait turns the server's Retry-After hint into the actual pause
// before the rejection-th re-post (1-based): the hinted duration is
// honored, doubled on consecutive rejections (capped at 8x) so a
// persistently full server sheds load, clamped to
// [minRetryWait, maxRetryWait], plus a deterministic jitter of up to
// half the wait keyed on (job, rejection) — 32 clients bounced by the
// same burst spread out instead of thundering back in lockstep. The
// floor is applied after the doubling: a zero hint (a server rounding
// sub-second waits down, or omitting the header) still pauses.
func retryWait(hinted time.Duration, jobIdx, rejection int) time.Duration {
	d := hinted
	for i := 1; i < rejection && i < 4; i++ {
		d *= 2
	}
	if d < minRetryWait {
		d = minRetryWait
	}
	if d > maxRetryWait {
		d = maxRetryWait
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", jobIdx, rejection)
	return d + time.Duration(h.Sum64()%uint64(d/2+1))
}

// postJob posts one job and consumes its stream, retrying on
// backpressure (429/503) until admitted or the context dies.
func postJob(ctx context.Context, client *http.Client, base string, jobIdx int, req Request, retryCap time.Duration) jobOutcome {
	out := jobOutcome{req: req}
	body, _ := json.Marshal(req)
	start := time.Now()
	rejections := 0
	for {
		if ctx.Err() != nil {
			out.errText = ctx.Err().Error()
			return out
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/jobs", bytes.NewReader(body))
		if err != nil {
			out.errText = err.Error()
			return out
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(hreq)
		if err != nil {
			out.errText = err.Error()
			return out
		}
		switch resp.StatusCode {
		case http.StatusOK:
			out.output, out.ok, out.complete, out.errText = StreamResult(resp.Body)
			resp.Body.Close()
			out.latency = time.Since(start)
			return out
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			idx := 0
			if resp.StatusCode == http.StatusServiceUnavailable {
				idx = 1
			}
			out.retries[idx]++
			// A missing, malformed, or negative Retry-After is treated as
			// a zero hint: retryWait's floor turns it into the minimum
			// polite pause rather than a hot loop (or a dropped job —
			// backpressure without a usable hint is still backpressure).
			secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || secs < 0 {
				secs = 0
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rejections++
			wait := retryWait(time.Duration(secs)*time.Second, jobIdx, rejections)
			if retryCap > 0 && wait > retryCap {
				wait = retryCap
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				out.errText = ctx.Err().Error()
				return out
			}
		default:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			out.errText = fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
			return out
		}
	}
}

// RunLoad hammers the server with cfg.Jobs jobs from cfg.Concurrency
// client goroutines and reports throughput and latency percentiles.
// Latency is client-observed: from first POST attempt (including
// backpressure retries) to the terminal result event.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Jobs <= 0 || cfg.Concurrency <= 0 {
		return nil, fmt.Errorf("loadgen: jobs (%d) and concurrency (%d) must be positive", cfg.Jobs, cfg.Concurrency)
	}
	client := &http.Client{}

	rep := &LoadReport{
		Jobs: cfg.Jobs, Concurrency: cfg.Concurrency,
		ByType: map[string]int{}, RetryHistogram: map[int]int{},
	}
	outcomes := make([]jobOutcome, cfg.Jobs)
	indices := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				outcomes[i] = postJob(ctx, client, cfg.BaseURL, i, cfg.mixRequest(i), cfg.RetryCap)
			}
		}()
	}
	for i := 0; i < cfg.Jobs; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
	rep.DurationMS = time.Since(start).Milliseconds()

	var latencies []time.Duration
	var firstErr string
	for _, o := range outcomes {
		rep.ByType[string(o.req.Type)]++
		rep.Retried429 += o.retries[0]
		rep.Retried503 += o.retries[1]
		rep.RetryHistogram[o.retries[0]+o.retries[1]]++
		switch {
		case o.complete && o.ok:
			rep.OK++
			latencies = append(latencies, o.latency)
		case o.complete:
			rep.Failed++
		default:
			rep.Dropped++
		}
		if firstErr == "" && o.errText != "" {
			firstErr = fmt.Sprintf("%s job: %s", o.req.Type, o.errText)
		}
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(q float64) float64 {
			idx := int(q*float64(len(latencies))+0.5) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(latencies) {
				idx = len(latencies) - 1
			}
			return float64(latencies[idx].Microseconds()) / 1000
		}
		rep.P50LatencyMS = pct(0.50)
		rep.P90LatencyMS = pct(0.90)
		rep.P99LatencyMS = pct(0.99)
		rep.MaxLatencyMS = float64(latencies[len(latencies)-1].Microseconds()) / 1000
	}
	if sec := float64(rep.DurationMS) / 1000; sec > 0 {
		rep.JobsPerSec = float64(rep.OK) / sec
	}
	if rep.Failed+rep.Dropped > 0 {
		return rep, fmt.Errorf("loadgen: %d failed, %d dropped of %d jobs (first error: %s)",
			rep.Failed, rep.Dropped, rep.Jobs, firstErr)
	}
	return rep, nil
}

// Render writes the human-readable load report.
func (r *LoadReport) Render(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %d jobs x %d clients in %.2fs — %.1f jobs/s\n",
		r.Jobs, r.Concurrency, float64(r.DurationMS)/1000, r.JobsPerSec)
	types := make([]string, 0, len(r.ByType))
	for t := range r.ByType {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Fprintf(w, "  %-14s %d\n", t, r.ByType[t])
	}
	fmt.Fprintf(w, "outcomes: ok %d, failed %d, dropped %d (retries: %d x 429, %d x 503)\n",
		r.OK, r.Failed, r.Dropped, r.Retried429, r.Retried503)
	if r.Retried429+r.Retried503 > 0 {
		counts := make([]int, 0, len(r.RetryHistogram))
		for n := range r.RetryHistogram {
			counts = append(counts, n)
		}
		sort.Ints(counts)
		fmt.Fprint(w, "retry histogram:")
		for _, n := range counts {
			fmt.Fprintf(w, "  %dx:%d", n, r.RetryHistogram[n])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "latency ms: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n",
		r.P50LatencyMS, r.P90LatencyMS, r.P99LatencyMS, r.MaxLatencyMS)
}
