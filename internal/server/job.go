package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"uexc/internal/core"
	"uexc/internal/debug"
	dt "uexc/internal/difftest"
	"uexc/internal/harness"
	"uexc/internal/parallel"
	"uexc/internal/progen"
)

// Type names a job kind the service can execute.
type Type string

const (
	// TypeCampaign runs the deterministic fault-injection campaign
	// (uexc-bench -faultcampaign) over Seeds seeds.
	TypeCampaign Type = "campaign"
	// TypeDifftest runs the cross-mode differential-testing oracle
	// (uexc-bench -difftest) over Seeds seeds.
	TypeDifftest Type = "difftest"
	// TypeFigureSweep regenerates the Figure 3 and Figure 4 break-even
	// sweeps from freshly measured exception costs.
	TypeFigureSweep Type = "figure-sweep"
	// TypeProgramRun generates the progen program for Seed and executes
	// it once under Mode on a pooled machine.
	TypeProgramRun Type = "program-run"
	// TypeDebugSession runs the progen program for Seed under a
	// virtual-breakpoint debug session (internal/debug), executing the
	// request's command script and streaming one transcript line per
	// command.
	TypeDebugSession Type = "debug-session"
)

// Types lists every job kind, in documentation order.
var Types = []Type{TypeCampaign, TypeDifftest, TypeFigureSweep, TypeProgramRun, TypeDebugSession}

// Request is the client-posted job specification.
type Request struct {
	Type Type `json:"type"`

	// Seeds sizes campaign and difftest sweeps.
	Seeds int `json:"seeds,omitempty"`
	// Seed selects the generated program for program-run jobs.
	Seed int64 `json:"seed,omitempty"`
	// Mode selects the delivery mechanism for program-run jobs:
	// "ultrix", "fast"/"fastexc", or "hardware" (case-insensitive).
	Mode string `json:"mode,omitempty"`
	// Parallel is the intra-job shard width handed to the work-stealing
	// engine (0 = all CPUs), exactly uexc-bench's -parallel flag. The
	// streamed output is byte-identical at any width.
	Parallel int `json:"parallel,omitempty"`
	// Verbose streams per-run progress events (uexc-bench -v).
	Verbose bool `json:"verbose,omitempty"`
	// TimeoutMS optionally tightens the per-job deadline below the
	// server's maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Commands is a debug-session job's command script, executed in
	// order against the Seed/Mode program (see debug.Command).
	Commands []debug.Command `json:"commands,omitempty"`

	// ShardFrom/ShardTo select the half-open sub-range [ShardFrom,
	// ShardTo) of a campaign/difftest job's shard space — the worker
	// side of the coordinator protocol (DESIGN.md §13). Such a job
	// streams one "shard" event per index, in ascending order, instead
	// of progress lines. Both zero means the whole job, locally merged.
	ShardFrom int `json:"shard_from,omitempty"`
	ShardTo   int `json:"shard_to,omitempty"`
}

// ShardSpace returns the size of the engine shard space a range may
// address: campaignable types only, zero for everything else.
func (r *Request) ShardSpace() int {
	switch r.Type {
	case TypeCampaign:
		return harness.CampaignShards(r.Seeds)
	case TypeDifftest:
		return r.Seeds
	}
	return 0
}

// Validate rejects malformed job specifications with a client-facing
// error. maxSeeds caps sweep sizes so one request cannot monopolize
// the service.
func (r *Request) Validate(maxSeeds int) error {
	switch r.Type {
	case TypeCampaign, TypeDifftest:
		if r.Seeds <= 0 {
			return fmt.Errorf("%s: seeds must be positive, got %d", r.Type, r.Seeds)
		}
		if r.Seeds > maxSeeds {
			return fmt.Errorf("%s: seeds %d exceeds the per-job cap %d", r.Type, r.Seeds, maxSeeds)
		}
	case TypeProgramRun:
		if _, err := ParseMode(r.Mode); err != nil {
			return err
		}
	case TypeDebugSession:
		if _, err := ParseMode(r.Mode); err != nil {
			return err
		}
		if len(r.Commands) == 0 {
			return fmt.Errorf("debug-session: at least one command required")
		}
		if len(r.Commands) > maxSessionCommands {
			return fmt.Errorf("debug-session: %d commands exceeds the cap %d", len(r.Commands), maxSessionCommands)
		}
		for i, c := range r.Commands {
			if !debug.ValidOp(c.Op) {
				return fmt.Errorf("debug-session: command %d: unknown op %q (have %v)", i, c.Op, debug.Ops)
			}
		}
	case TypeFigureSweep:
		// Only Parallel applies.
	case "":
		return fmt.Errorf("missing job type (have %v)", Types)
	default:
		return fmt.Errorf("unknown job type %q (have %v)", r.Type, Types)
	}
	if r.Parallel < 0 {
		return fmt.Errorf("parallel must be >= 0 (0 selects all CPUs), got %d", r.Parallel)
	}
	if r.ShardFrom != 0 || r.ShardTo != 0 {
		space := r.ShardSpace()
		if space == 0 {
			return fmt.Errorf("%s: shard ranges apply only to campaign and difftest jobs", r.Type)
		}
		if r.ShardFrom < 0 || r.ShardTo <= r.ShardFrom || r.ShardTo > space {
			return fmt.Errorf("%s: shard range [%d,%d) outside the %d-shard space",
				r.Type, r.ShardFrom, r.ShardTo, space)
		}
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0, got %d", r.TimeoutMS)
	}
	return nil
}

// ParseMode maps the wire spelling of a delivery mode to core.Mode.
// The empty string defaults to Ultrix, the semantic baseline.
func ParseMode(s string) (core.Mode, error) {
	switch strings.ToLower(s) {
	case "", "ultrix":
		return core.ModeUltrix, nil
	case "fast", "fastexc":
		return core.ModeFast, nil
	case "hardware":
		return core.ModeHardware, nil
	}
	return 0, fmt.Errorf("unknown mode %q (have ultrix, fast, hardware)", s)
}

// Event is one NDJSON line of a job's response stream: exactly one
// "accepted", zero or more "progress" lines, exactly one terminal
// "result", and a final "trailer" carrying the stream's own record
// count and FNV-1a fingerprint so a client can detect truncation or
// corruption. Concatenating the progress Lines followed by the result
// Summary reproduces, byte for byte, what the equivalent uexc-bench
// invocation writes (progress to stderr under -v, summary to stdout).
type Event struct {
	Type string `json:"type"` // "accepted" | "progress" | "result" | "trailer"
	ID   uint64 `json:"id,omitempty"`
	Job  string `json:"job,omitempty"`  // accepted: the job type
	Line string `json:"line,omitempty"` // progress: one engine output line

	// Result fields.
	OK        *bool  `json:"ok,omitempty"`
	Summary   string `json:"summary,omitempty"`
	Error     string `json:"error,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`

	// Trailer fields: the count and FNV-1a-64 fingerprint of every
	// preceding line of this stream (each including its newline). The
	// trailer line itself is not part of its own fingerprint.
	Records int    `json:"records,omitempty"`
	FNV     string `json:"fnv64,omitempty"`

	// Shard-range fields: one "shard" event per merged index of a
	// ShardFrom/ShardTo job, carrying the true shard index (a pointer so
	// index 0 survives omitempty) and the engine digest — the same bytes
	// a local run would checkpoint, which is what makes the
	// coordinator's merge byte-identical to local execution.
	Shard *int            `json:"shard,omitempty"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// eventLog is a job's replayable event history: every event ever
// emitted, retained so any number of streams — the original POST
// response, or a later GET /jobs/{id} re-attach after a client
// disconnect or a server restart — can replay it from the start and
// then follow the live tail. close marks the terminal event delivered.
type eventLog struct {
	mu     sync.Mutex
	cond   sync.Cond
	events []Event
	closed bool
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond.L = &l.mu
	return l
}

// append adds one event and wakes every waiting stream.
func (l *eventLog) append(ev Event) {
	l.mu.Lock()
	if !l.closed {
		l.events = append(l.events, ev)
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// close marks the log complete (no further events) and wakes waiters.
func (l *eventLog) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

// broadcast wakes every waiter without changing the log — installed as
// a context.AfterFunc so a disconnecting client's stream unblocks.
func (l *eventLog) broadcast() { l.cond.Broadcast() }

// next blocks until the log has grown past from, closed, or ctx died,
// then returns the events after from and whether the log is closed.
func (l *eventLog) next(ctx context.Context, from int) ([]Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for ctx.Err() == nil && !l.closed && len(l.events) <= from {
		l.cond.Wait()
	}
	var evs []Event
	if from < len(l.events) {
		evs = l.events[from:len(l.events):len(l.events)]
	}
	return evs, l.closed
}

// job is one admitted request in flight. ctx bounds execution: for an
// ephemeral job (no store) it also dies with the client connection;
// for a durable job it derives from the server's base context alone,
// because a journaled job must keep running — and checkpointing —
// after its client disconnects. The event log replaces a channel so
// streams can re-attach.
type job struct {
	id      uint64
	req     Request
	rawReq  json.RawMessage // the spec as journaled (canonical re-marshal)
	tenant  string          // normalized X-Tenant ("default" if absent)
	ctx     context.Context
	cancel  context.CancelFunc
	log     *eventLog
	resumed int               // durable shards recovered from the journal
	done    []json.RawMessage // their digests, in prefix order
}

// emit appends one event to the job's replayable log. It never blocks:
// a slow or absent consumer costs memory (bounded by the job's own
// output), never a wedged worker.
func (j *job) emit(ev Event) { j.log.append(ev) }

// progressWriter adapts a job to the io.Writer the engines' ordered
// progress streams expect: every write is one complete output line,
// forwarded as one NDJSON progress event.
type progressWriter struct{ j *job }

func (w progressWriter) Write(p []byte) (int, error) {
	w.j.emit(Event{Type: "progress", Line: string(p)})
	return len(p), nil
}

// decodeShards unmarshals the journal's shard digests back into the
// engine's typed checkpoint prefix.
func decodeShards[T any](raw []json.RawMessage) ([]T, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make([]T, len(raw))
	for i, blob := range raw {
		if err := json.Unmarshal(blob, &out[i]); err != nil {
			return nil, fmt.Errorf("resume: corrupt shard digest %d: %w", i, err)
		}
	}
	return out, nil
}

// saveShards builds the engine checkpoint callback for a durable job:
// journal every newly merged shard digest past the already-durable
// prefix, then fsync — the §12 checkpoint boundary. The engine calls
// it serially in prefix order, so the durable cursor needs no lock.
// Without a store there is nothing to persist and the engines skip
// checkpointing entirely.
func saveShards[T any](s *Server, j *job) func(prefix []T) error {
	if s.store == nil {
		return nil
	}
	durable := j.resumed
	return func(prefix []T) error {
		for ; durable < len(prefix); durable++ {
			blob, err := json.Marshal(prefix[durable])
			if err != nil {
				return fmt.Errorf("checkpoint shard %d: %w", durable, err)
			}
			if err := s.store.AppendShard(j.id, durable, blob); err != nil {
				return err
			}
		}
		if err := s.store.Sync(); err != nil {
			return err
		}
		s.metrics.Checkpoints.Add(1)
		return nil
	}
}

// runJob executes one admitted job on the shared machine pool and
// returns its verdict: ok mirrors the engine's own pass/fail notion,
// summary is the exact text the CLI would print to stdout, and err
// carries abort/engine failures. Panics are contained by the caller.
//
// Campaign and difftest jobs run under the server's shard runner
// (per-shard retry, deadline, chaos injection) and, when a store is
// configured, checkpoint every CheckpointEvery merged shards and skip
// the durable prefix recovered from the journal on resume.
func (s *Server) runJob(j *job) (ok bool, summary string, err error) {
	if j.req.ShardTo > 0 {
		return s.runShardRange(j)
	}
	if s.fleet != nil && j.req.ShardSpace() > 0 {
		// Coordinator mode: shardable sweeps fan out to the worker
		// fleet; point jobs still run locally.
		return s.runDistributed(j)
	}
	// A nil io.Writer keeps the engines' "no progress stream" contract;
	// a typed-nil wrapper would defeat their w == nil check.
	var w io.Writer
	if j.req.Verbose {
		w = progressWriter{j}
	}

	switch j.req.Type {
	case TypeCampaign:
		done, derr := decodeShards[harness.CampaignShard](j.done)
		if derr != nil {
			return false, "", derr
		}
		ctx := parallel.WithShardRunner(j.ctx, s.shardRunner(j))
		res, rerr := harness.FaultCampaignResumeCtx(ctx, s.pool, j.req.Seeds, j.req.Parallel, w,
			done, s.cfg.CheckpointEvery, saveShards[harness.CampaignShard](s, j))
		if rerr != nil {
			return false, "", rerr
		}
		s.metrics.addVerdicts(res.Verdicts)
		if !res.Ok() {
			return false, res.Summary(), fmt.Errorf("fault campaign failed (%d failures, missing coverage: %v)",
				len(res.Failures), res.MissingCoverage())
		}
		return true, res.Summary(), nil

	case TypeDifftest:
		done, derr := decodeShards[dt.Shard](j.done)
		if derr != nil {
			return false, "", derr
		}
		ctx := parallel.WithShardRunner(j.ctx, s.shardRunner(j))
		res, rerr := dt.CampaignResumeCtx(ctx, s.pool, j.req.Seeds, j.req.Parallel, w,
			done, s.cfg.CheckpointEvery, saveShards[dt.Shard](s, j))
		if rerr != nil {
			return false, "", rerr
		}
		s.metrics.addVerdicts(res.Verdicts)
		if !res.Ok() {
			return false, res.Summary(), fmt.Errorf("differential campaign failed (%d divergences, self-test ok: %v)",
				len(res.Divergences), res.SelfTestOK)
		}
		return true, res.Summary(), nil

	case TypeFigureSweep:
		s3, err := harness.Figure3(false, j.req.Parallel)
		if err != nil {
			return false, "", err
		}
		if err := j.ctx.Err(); err != nil {
			return false, "", fmt.Errorf("figure sweep aborted: %w", err)
		}
		s4, err := harness.Figure4(false, j.req.Parallel)
		if err != nil {
			return false, "", err
		}
		return true, s3.Render() + "\n" + s4.Render() + "\n", nil

	case TypeProgramRun:
		return s.runProgram(j)

	case TypeDebugSession:
		return s.runDebugSession(j)
	}
	return false, "", fmt.Errorf("unknown job type %q", j.req.Type)
}

// shardEmitter streams merged shard digests as "shard" events in
// ascending index order — the Event-stream counterpart of the §8
// OrderedWriter: emits may arrive in any order, each index is emitted
// exactly once, and nothing is held back once the frontier reaches it.
// Like OrderedWriter.Emit it never blocks.
type shardEmitter struct {
	mu      sync.Mutex
	j       *job
	next    int
	pending map[int]json.RawMessage
}

func (e *shardEmitter) emit(i int, blob json.RawMessage) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pending[i] = blob
	for {
		b, ok := e.pending[e.next]
		if !ok {
			return
		}
		delete(e.pending, e.next)
		idx := e.next
		e.j.emit(Event{Type: "shard", ID: e.j.id, Shard: &idx, Data: b})
		e.next++
	}
}

// runShardRange executes the sub-range [ShardFrom, ShardTo) of a
// campaign/difftest shard space — the worker half of the coordinator
// protocol. Each shard runs through the server's shard runner at its
// TRUE index (retry accounting, poison quarantine, and chaos plans all
// key on the global shard index, so a re-dispatched range misbehaves
// identically on any worker), and its digest streams back as one
// "shard" event, strictly in ascending order. The digests are the
// exact bytes a local run would checkpoint; the fold stays with the
// coordinator.
func (s *Server) runShardRange(j *job) (bool, string, error) {
	from, to, space := j.req.ShardFrom, j.req.ShardTo, j.req.ShardSpace()

	var runShard func(i int) (json.RawMessage, error)
	switch j.req.Type {
	case TypeCampaign:
		runShard = func(i int) (json.RawMessage, error) {
			return json.Marshal(harness.RunShard(s.pool, j.req.Seeds, i))
		}
	case TypeDifftest:
		runShard = func(i int) (json.RawMessage, error) {
			return json.Marshal(dt.RunShard(s.pool, i))
		}
	default:
		return false, "", fmt.Errorf("%s: not a shard-range job type", j.req.Type)
	}

	runner := s.shardRunner(j)
	em := &shardEmitter{j: j, next: from, pending: map[int]json.RawMessage{}}
	var firstErr error
	var errMu sync.Mutex
	err := parallel.ForEachCtx(j.ctx, j.req.Parallel, to-from, func(rel int) {
		idx := from + rel
		runner(idx, func() {
			blob, merr := runShard(idx)
			if merr != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = merr
				}
				errMu.Unlock()
				return
			}
			em.emit(idx, blob)
		})
	})
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return false, "", firstErr
	}
	if err != nil {
		return false, "", fmt.Errorf("shard range [%d,%d) aborted: %w", from, to, err)
	}
	return true, fmt.Sprintf("shards [%d,%d) of %d complete\n", from, to, space), nil
}

// runProgram executes one generated program under one mode on a pooled
// machine. The summary digests the observables the difftest oracle
// compares, so the same (seed, mode) always produces the same bytes.
func (s *Server) runProgram(j *job) (bool, string, error) {
	mode, err := ParseMode(j.req.Mode)
	if err != nil {
		return false, "", err
	}
	if err := j.ctx.Err(); err != nil {
		return false, "", fmt.Errorf("program-run aborted: %w", err)
	}
	p := progen.Generate(j.req.Seed)

	m, err := s.pool.Get()
	if err != nil {
		return false, "", fmt.Errorf("boot: %w", err)
	}
	healthy := false
	defer func() {
		if healthy {
			s.pool.Put(m)
		}
	}()
	if err := m.LoadProgram(p.Source(mode, false)); err != nil {
		return false, "", fmt.Errorf("load: %w", err)
	}
	if mode == core.ModeHardware {
		m.EnableHardwareDelivery(progen.HWVector)
	}
	runErr := m.Run(dt.Budget)
	healthy = true

	var b strings.Builder
	fmt.Fprintf(&b, "program-run: seed %d mode %s\n", j.req.Seed, mode)
	episodes := make([]string, 0, len(p.Episodes))
	for _, k := range p.Episodes {
		episodes = append(episodes, k.String())
	}
	fmt.Fprintf(&b, "episodes: %s\n", strings.Join(episodes, " "))
	fmt.Fprintf(&b, "console: %q\n", m.K.Console())
	c := m.CPU()
	var exc uint64
	for _, n := range c.ExcCounts {
		exc += n
	}
	fmt.Fprintf(&b, "insts=%d cycles=%d exceptions=%d fast=%d unix=%d\n",
		c.Insts, c.Cycles, exc, m.K.Stats.FastDeliveries, m.K.Stats.UnixDeliveries)
	if runErr != nil {
		fmt.Fprintf(&b, "run error: %s\n", runErr)
		return false, b.String(), fmt.Errorf("program-run: %w", runErr)
	}
	b.WriteString("exit: clean\n")
	return true, b.String(), nil
}
