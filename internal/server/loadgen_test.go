package server

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryWaitHonorsHint pins the client backoff contract: the
// server's Retry-After hint is honored in full (never undercut),
// jitter adds at most half the wait on top, consecutive rejections
// double the base up to 8x, and the whole schedule is deterministic —
// a failing burst replays identically.
func TestRetryWaitHonorsHint(t *testing.T) {
	const hint = time.Second
	for rejection := 1; rejection <= 6; rejection++ {
		base := hint
		for i := 1; i < rejection && i < 4; i++ {
			base *= 2
		}
		for job := 0; job < 50; job++ {
			w := retryWait(hint, job, rejection)
			if w < base {
				t.Fatalf("job %d rejection %d: wait %v undercuts the %v hint", job, rejection, w, base)
			}
			if w > base+base/2 {
				t.Fatalf("job %d rejection %d: wait %v exceeds hint+50%% jitter (%v)", job, rejection, w, base+base/2)
			}
			if again := retryWait(hint, job, rejection); again != w {
				t.Fatalf("job %d rejection %d: nondeterministic wait %v vs %v", job, rejection, w, again)
			}
		}
	}
	// The jitter must actually spread the herd: 50 jobs bounced by the
	// same burst may not all sleep the same duration.
	distinct := map[time.Duration]bool{}
	for job := 0; job < 50; job++ {
		distinct[retryWait(hint, job, 1)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all 50 jobs picked the same wait; jitter is not keyed on the job")
	}
}

// TestRetryWaitClamped pins the hot-loop fix: a zero or missing hint
// (retryWait sees 0) must still pause at least minRetryWait — a client
// bounced off a full queue may never spin re-POSTing at network speed —
// and an absurd hint is capped at maxRetryWait before jitter.
func TestRetryWaitClamped(t *testing.T) {
	for rejection := 1; rejection <= 6; rejection++ {
		for job := 0; job < 50; job++ {
			w := retryWait(0, job, rejection)
			if w < minRetryWait {
				t.Fatalf("job %d rejection %d: zero hint slept only %v (< %v): hot retry loop",
					job, rejection, w, minRetryWait)
			}
			if w > minRetryWait+minRetryWait/2 {
				t.Fatalf("job %d rejection %d: zero hint slept %v (> floor + 50%% jitter)",
					job, rejection, w)
			}
		}
	}
	for rejection := 1; rejection <= 6; rejection++ {
		w := retryWait(time.Hour, 0, rejection)
		if w > maxRetryWait+maxRetryWait/2 {
			t.Fatalf("rejection %d: 1h hint slept %v, want <= cap + 50%% jitter", rejection, w)
		}
		if w < maxRetryWait {
			t.Fatalf("rejection %d: 1h hint slept %v, want >= %v cap", rejection, w, maxRetryWait)
		}
	}
	// The doubling itself must not escape the cap: a large-but-sane hint
	// doubled 3x lands on the ceiling, not 8x the hint.
	if w := retryWait(5*time.Second, 0, 4); w > maxRetryWait+maxRetryWait/2 {
		t.Fatalf("doubled wait %v escaped the %v cap", w, maxRetryWait)
	}
}

// TestPostJobMissingRetryAfterRetries is the regression test for the
// zero-sleep bug's sibling: a 429 with NO Retry-After header used to
// hard-fail the job. Backpressure without a hint is still backpressure;
// the client must pause politely and retry to completion.
func TestPostJobMissingRetryAfterRetries(t *testing.T) {
	var rejects atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		if rejects.Add(1) <= 2 {
			// Deliberately no Retry-After header.
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		h := fnv.New64a()
		records := 0
		emit := func(ev Event) {
			line, _ := json.Marshal(ev)
			w.Write(append(line, '\n'))
			h.Write(append(line, '\n'))
			records++
		}
		ok := true
		emit(Event{Type: "accepted", ID: 1, Job: "program-run"})
		emit(Event{Type: "result", ID: 1, OK: &ok, Summary: "done\n"})
		line, _ := json.Marshal(Event{Type: "trailer", ID: 1, Records: records, FNV: fmt.Sprintf("%016x", h.Sum64())})
		w.Write(append(line, '\n'))
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	start := time.Now()
	out := postJob(context.Background(), hs.Client(), hs.URL, 0,
		Request{Type: TypeProgramRun, Seed: 1}, 0)
	if !out.complete || !out.ok {
		t.Fatalf("job against a hint-less 429 server: complete=%v ok=%v err=%q",
			out.complete, out.ok, out.errText)
	}
	if out.retries[0] != 2 {
		t.Errorf("retries = %d, want 2", out.retries[0])
	}
	// Two headerless rejections must still have slept >= 2 floors.
	if el := time.Since(start); el < 2*minRetryWait {
		t.Errorf("completed in %v: headerless 429s were retried without the minimum pause", el)
	}
}

// TestLoadgenBackpressureRetryHistogram forces a saturated server —
// one worker and one queue slot, both pinned by held jobs — so every
// loadgen client bounces off admission at least once, then releases
// the logjam and checks the burst completes with an internally
// consistent retry histogram.
func TestLoadgenBackpressureRetryHistogram(t *testing.T) {
	s := newT(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	var once sync.Once
	rel := func() { once.Do(func() { close(release) }) }
	defer rel()
	s.execHook = func(j *job) (bool, string, error) {
		select {
		case <-release:
			return true, "done\n", nil
		case <-j.ctx.Done():
			return false, "", j.ctx.Err()
		}
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Close()

	// Pin the worker, then the queue slot, strictly in turn.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, _, err := tryPost(hs.URL, Request{Type: TypeProgramRun, Seed: 1})
			results <- err
		}()
		inFlight, queued := int64(1), 0
		if i == 1 {
			queued = 1
		}
		waitMetric(t, "saturation", func() bool {
			return s.metrics.InFlight.Load() == inFlight && len(s.queue) == queued
		})
	}

	go func() { time.Sleep(50 * time.Millisecond); rel() }()
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL: hs.URL, Jobs: 4, Concurrency: 2, RetryCap: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("loadgen against a saturated server: %v\nreport: %+v", err, rep)
	}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("pinned job %d: %v", i, err)
		}
	}
	if rep.OK != 4 {
		t.Fatalf("report: %+v", rep)
	}
	// The server was saturated when the burst began, so both leading
	// clients must have been bounced at least once.
	if rep.Retried429 < 2 {
		t.Errorf("Retried429 = %d, want >= 2 (burst began against a full queue)", rep.Retried429)
	}
	jobs, retries := 0, 0
	for n, v := range rep.RetryHistogram {
		jobs += v
		retries += n * v
	}
	if jobs != rep.Jobs {
		t.Errorf("histogram covers %d jobs, want %d", jobs, rep.Jobs)
	}
	if retries != rep.Retried429+rep.Retried503 {
		t.Errorf("histogram sums to %d retries, counters say %d", retries, rep.Retried429+rep.Retried503)
	}
	var buf strings.Builder
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "retry histogram:") {
		t.Errorf("render omits the retry histogram:\n%s", buf.String())
	}
}
