package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRetryWaitHonorsHint pins the client backoff contract: the
// server's Retry-After hint is honored in full (never undercut),
// jitter adds at most half the wait on top, consecutive rejections
// double the base up to 8x, and the whole schedule is deterministic —
// a failing burst replays identically.
func TestRetryWaitHonorsHint(t *testing.T) {
	const hint = time.Second
	for rejection := 1; rejection <= 6; rejection++ {
		base := hint
		for i := 1; i < rejection && i < 4; i++ {
			base *= 2
		}
		for job := 0; job < 50; job++ {
			w := retryWait(hint, job, rejection)
			if w < base {
				t.Fatalf("job %d rejection %d: wait %v undercuts the %v hint", job, rejection, w, base)
			}
			if w > base+base/2 {
				t.Fatalf("job %d rejection %d: wait %v exceeds hint+50%% jitter (%v)", job, rejection, w, base+base/2)
			}
			if again := retryWait(hint, job, rejection); again != w {
				t.Fatalf("job %d rejection %d: nondeterministic wait %v vs %v", job, rejection, w, again)
			}
		}
	}
	// The jitter must actually spread the herd: 50 jobs bounced by the
	// same burst may not all sleep the same duration.
	distinct := map[time.Duration]bool{}
	for job := 0; job < 50; job++ {
		distinct[retryWait(hint, job, 1)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all 50 jobs picked the same wait; jitter is not keyed on the job")
	}
	if w := retryWait(0, 3, 1); w != 0 {
		t.Fatalf("zero hint slept %v", w)
	}
}

// TestLoadgenBackpressureRetryHistogram forces a saturated server —
// one worker and one queue slot, both pinned by held jobs — so every
// loadgen client bounces off admission at least once, then releases
// the logjam and checks the burst completes with an internally
// consistent retry histogram.
func TestLoadgenBackpressureRetryHistogram(t *testing.T) {
	s := newT(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	var once sync.Once
	rel := func() { once.Do(func() { close(release) }) }
	defer rel()
	s.execHook = func(j *job) (bool, string, error) {
		select {
		case <-release:
			return true, "done\n", nil
		case <-j.ctx.Done():
			return false, "", j.ctx.Err()
		}
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Close()

	// Pin the worker, then the queue slot, strictly in turn.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, _, err := tryPost(hs.URL, Request{Type: TypeProgramRun, Seed: 1})
			results <- err
		}()
		inFlight, queued := int64(1), 0
		if i == 1 {
			queued = 1
		}
		waitMetric(t, "saturation", func() bool {
			return s.metrics.InFlight.Load() == inFlight && len(s.queue) == queued
		})
	}

	go func() { time.Sleep(50 * time.Millisecond); rel() }()
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL: hs.URL, Jobs: 4, Concurrency: 2, RetryCap: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("loadgen against a saturated server: %v\nreport: %+v", err, rep)
	}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("pinned job %d: %v", i, err)
		}
	}
	if rep.OK != 4 {
		t.Fatalf("report: %+v", rep)
	}
	// The server was saturated when the burst began, so both leading
	// clients must have been bounced at least once.
	if rep.Retried429 < 2 {
		t.Errorf("Retried429 = %d, want >= 2 (burst began against a full queue)", rep.Retried429)
	}
	jobs, retries := 0, 0
	for n, v := range rep.RetryHistogram {
		jobs += v
		retries += n * v
	}
	if jobs != rep.Jobs {
		t.Errorf("histogram covers %d jobs, want %d", jobs, rep.Jobs)
	}
	if retries != rep.Retried429+rep.Retried503 {
		t.Errorf("histogram sums to %d retries, counters say %d", retries, rep.Retried429+rep.Retried503)
	}
	var buf strings.Builder
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "retry histogram:") {
		t.Errorf("render omits the retry histogram:\n%s", buf.String())
	}
}
