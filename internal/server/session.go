package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"uexc/internal/core"
	"uexc/internal/debug"
	dt "uexc/internal/difftest"
	"uexc/internal/progen"
)

// maxSessionCommands bounds a debug-session command script so one
// request cannot stream an unbounded transcript.
const maxSessionCommands = 256

// session is the server-side record of one debug-session job: its
// transcript, retained after the job finishes so GET /sessions/{id}
// can serve it until the JobRetention window evicts it — the same
// bounded-memory rule finished jobs follow (and the same eviction bug
// class the PR 6 fix closed for s.jobs).
type session struct {
	id    uint64
	seed  int64
	mode  string
	lines []string
	done  bool
}

// registerSession adds a live session record (guarded by s.mu, like
// s.jobs).
func (s *Server) registerSession(j *job) *session {
	rec := &session{id: j.id, seed: j.req.Seed, mode: j.req.Mode}
	s.mu.Lock()
	s.sessions[j.id] = rec
	s.mu.Unlock()
	s.metrics.SessionsStarted.Add(1)
	return rec
}

// finishSession marks the record terminal and schedules its eviction
// after the retention window. Eviction is what keeps a long-lived
// server's session registry bounded; the counter makes it observable.
func (s *Server) finishSession(rec *session) {
	s.mu.Lock()
	rec.done = true
	s.mu.Unlock()
	time.AfterFunc(s.cfg.JobRetention, func() {
		s.mu.Lock()
		if _, live := s.sessions[rec.id]; live {
			delete(s.sessions, rec.id)
			s.metrics.SessionsEvicted.Add(1)
		}
		s.mu.Unlock()
	})
}

// sessionCount returns the number of retained session records (live
// and finished-but-unevicted), for the /metrics gauge.
func (s *Server) sessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// runDebugSession executes one debug-session job: generate the seed's
// program, run it under a virtual-breakpoint session (internal/debug),
// and execute the request's command script. Each command yields one
// deterministic transcript line, emitted as a progress event and
// folded into the summary — so a session journaled by the §12 store
// re-runs after a restart into the byte-identical stream, exactly like
// every other job type.
func (s *Server) runDebugSession(j *job) (bool, string, error) {
	mode, err := ParseMode(j.req.Mode)
	if err != nil {
		return false, "", err
	}
	rec := s.registerSession(j)
	defer s.finishSession(rec)

	p := progen.Generate(j.req.Seed)
	m, err := s.pool.Get()
	if err != nil {
		return false, "", fmt.Errorf("boot: %w", err)
	}
	healthy := false
	defer func() {
		if healthy {
			s.pool.Put(m)
		}
	}()
	if err := m.LoadProgram(p.Source(mode, false)); err != nil {
		return false, "", fmt.Errorf("load: %w", err)
	}
	if mode == core.ModeHardware {
		m.EnableHardwareDelivery(progen.HWVector)
	}

	sess := debug.New(m, dt.Budget)
	defer sess.Detach()

	var b strings.Builder
	fmt.Fprintf(&b, "debug-session: seed %d mode %s\n", j.req.Seed, mode)
	for i, cmd := range j.req.Commands {
		line, err := sess.Exec(cmd)
		if err != nil {
			return false, b.String(), fmt.Errorf("command %d (%s): %w", i, cmd.Op, err)
		}
		out := fmt.Sprintf("[%02d] %s\n", i, line)
		b.WriteString(out)
		if j.req.Verbose {
			j.emit(Event{Type: "progress", Line: out})
		}
		s.mu.Lock()
		rec.lines = append(rec.lines, out)
		s.mu.Unlock()
		if err := j.ctx.Err(); err != nil {
			return false, b.String(), fmt.Errorf("debug-session aborted: %w", err)
		}
	}
	healthy = true
	return true, b.String(), nil
}

// handleSessionGet is GET /sessions/{id}: the retained transcript of a
// debug-session job. 404 after eviction, like /jobs/{id}.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id, err := strconv.ParseUint(strings.TrimPrefix(r.URL.Path, "/sessions/"), 10, 64)
	if err != nil {
		http.Error(w, "bad session id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	rec := s.sessions[id]
	var body string
	var done bool
	if rec != nil {
		body = strings.Join(rec.lines, "")
		done = rec.done
	}
	s.mu.Unlock()
	if rec == nil {
		http.Error(w, "unknown session", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "session %d done=%v\n%s", id, done, body)
}
