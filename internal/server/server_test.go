package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	dt "uexc/internal/difftest"
	"uexc/internal/harness"
)

// newT builds a Server, failing the test on a store error.
func newT(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// startTest serves a fresh Server over real HTTP and tears both down
// with the test.
func startTest(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := newT(t, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs.URL
}

// postStream posts a job and fully consumes its stream. Main test
// goroutine only (it may Fatal).
func postStream(t *testing.T, base string, req Request) (output string, ok bool, errText string, status int, hdr http.Header) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return string(msg), false, "", resp.StatusCode, resp.Header
	}
	out, okv, complete, errText := StreamResult(resp.Body)
	if !complete {
		t.Fatalf("stream for %+v ended without a result event (so far: %q, err %s)", req, out, errText)
	}
	return out, okv, errText, resp.StatusCode, resp.Header
}

// tryPost is the goroutine-safe variant: it never touches testing.T,
// reporting transport problems as an error instead.
func tryPost(base string, req Request) (output string, ok bool, status int, err error) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", false, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "", false, resp.StatusCode, nil
	}
	out, okv, complete, errText := StreamResult(resp.Body)
	if !complete {
		return out, false, resp.StatusCode, fmt.Errorf("incomplete stream: %s", errText)
	}
	return out, okv, resp.StatusCode, nil
}

func TestRequestValidate(t *testing.T) {
	const maxSeeds = 100
	bad := []Request{
		{},                                  // missing type
		{Type: "bogus"},                     // unknown type
		{Type: TypeCampaign},                // seeds missing
		{Type: TypeCampaign, Seeds: -1},     // seeds negative
		{Type: TypeDifftest, Seeds: 101},    // over the cap
		{Type: TypeProgramRun, Mode: "vax"}, // unknown mode
		{Type: TypeCampaign, Seeds: 1, Parallel: -2},
		{Type: TypeProgramRun, TimeoutMS: -5},
	}
	for _, r := range bad {
		if err := r.Validate(maxSeeds); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid request", r)
		}
	}
	good := []Request{
		{Type: TypeCampaign, Seeds: 100},
		{Type: TypeDifftest, Seeds: 1, Parallel: 8},
		{Type: TypeFigureSweep},
		{Type: TypeProgramRun, Seed: 42, Mode: "Hardware", Verbose: true, TimeoutMS: 5000},
		{Type: TypeProgramRun}, // mode defaults to ultrix
	}
	for _, r := range good {
		if err := r.Validate(maxSeeds); err != nil {
			t.Errorf("Validate(%+v): unexpected error %v", r, err)
		}
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]string{
		"": "Ultrix", "ultrix": "Ultrix", "Fast": "FastExc",
		"fastexc": "FastExc", "HARDWARE": "Hardware",
	} {
		m, err := ParseMode(in)
		if err != nil || m.String() != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %s", in, m, err, want)
		}
	}
	if _, err := ParseMode("mips"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

// TestQueueFull429: with every worker busy and the queue full, the
// next POST is rejected with 429 and a Retry-After header, and the
// rejection never disturbs the admitted jobs. The blocking exec hook
// makes saturation deterministic.
func TestQueueFull429(t *testing.T) {
	s := newT(t, Config{Workers: 2, QueueDepth: 2})
	release := make(chan struct{})
	s.execHook = func(j *job) (bool, string, error) {
		select {
		case <-release:
			return true, "held job done\n", nil
		case <-j.ctx.Done():
			return false, "", j.ctx.Err()
		}
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Close()
	var once sync.Once
	rel := func() { once.Do(func() { close(release) }) }
	defer rel() // must run before s.Close so held jobs can finish

	type res struct {
		ok     bool
		output string
	}
	results := make(chan res, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			out, ok, status, err := tryPost(hs.URL, Request{Type: TypeProgramRun, Seed: int64(i)})
			if err != nil || status != http.StatusOK {
				results <- res{false, fmt.Sprintf("status %d err %v", status, err)}
				return
			}
			results <- res{ok, out}
		}(i)
	}
	// Deterministic saturation: 2 in flight, 2 queued.
	deadline := time.Now().Add(10 * time.Second)
	for s.metrics.InFlight.Load() != 2 || len(s.queue) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("saturation not reached: inflight %d, queued %d",
				s.metrics.InFlight.Load(), len(s.queue))
		}
		time.Sleep(time.Millisecond)
	}

	_, _, _, status, hdr := postStream(t, hs.URL, Request{Type: TypeProgramRun, Seed: 99})
	if status != http.StatusTooManyRequests {
		t.Fatalf("queue-full POST: status %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	rel()
	for i := 0; i < 4; i++ {
		r := <-results
		if !r.ok {
			t.Errorf("admitted job failed: %s", r.output)
		}
	}
	if got := s.metrics.RejectedFull.Load(); got != 1 {
		t.Errorf("RejectedFull = %d, want 1", got)
	}
	if got := s.metrics.Admitted.Load(); got != 4 {
		t.Errorf("Admitted = %d, want 4", got)
	}
}

// TestDrainFinishesAdmittedRejectsNew: Drain lets every admitted job
// run to completion and stream its full result while new jobs bounce
// with 503 + Retry-After; /healthz flips to draining.
func TestDrainFinishesAdmittedRejectsNew(t *testing.T) {
	s := newT(t, Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	s.execHook = func(j *job) (bool, string, error) {
		select {
		case <-release:
			return true, "drained job done\n", nil
		case <-j.ctx.Done():
			return false, "", j.ctx.Err()
		}
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Close()
	var once sync.Once
	rel := func() { once.Do(func() { close(release) }) }
	defer rel()

	results := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			out, ok, status, err := tryPost(hs.URL, Request{Type: TypeProgramRun, Seed: int64(i)})
			results <- err == nil && ok && status == http.StatusOK && out == "drained job done\n"
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.metrics.Admitted.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("jobs never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	for !s.isDraining() {
		time.Sleep(time.Millisecond)
	}

	// New work is rejected while the admitted jobs are still running.
	_, _, _, status, hdr := postStream(t, hs.URL, Request{Type: TypeProgramRun, Seed: 9})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("POST during drain: status %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
	hres, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d, want 503", hres.StatusCode)
	}

	select {
	case <-drained:
		t.Fatal("Drain returned while jobs were still held")
	default:
	}
	rel()
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after jobs finished")
	}
	for i := 0; i < 2; i++ {
		if !<-results {
			t.Error("admitted job did not complete cleanly across the drain")
		}
	}
	if got := s.metrics.RejectedDraining.Load(); got != 1 {
		t.Errorf("RejectedDraining = %d, want 1", got)
	}
}

// TestStreamByteIdenticalToCLI: the reconstructed job stream equals
// the engines' own output for identical seeds, at shard widths 1 and
// 4 — the serving layer inherits the deterministic-merge guarantee.
func TestStreamByteIdenticalToCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns")
	}
	s, base := startTest(t, Config{Workers: 2, QueueDepth: 8})
	const seeds = 3

	var wantCampaign bytes.Buffer
	cres, err := harness.FaultCampaignCtx(context.Background(), nil, seeds, 1, &wantCampaign)
	if err != nil {
		t.Fatal(err)
	}
	wantCampaign.WriteString(cres.Summary())

	var wantDiff bytes.Buffer
	dres, err := dt.CampaignCtx(context.Background(), nil, seeds, 1, &wantDiff)
	if err != nil {
		t.Fatal(err)
	}
	wantDiff.WriteString(dres.Summary())

	for _, tc := range []struct {
		req  Request
		want string
	}{
		{Request{Type: TypeCampaign, Seeds: seeds, Parallel: 1, Verbose: true}, wantCampaign.String()},
		{Request{Type: TypeCampaign, Seeds: seeds, Parallel: 4, Verbose: true}, wantCampaign.String()},
		{Request{Type: TypeDifftest, Seeds: seeds, Parallel: 1, Verbose: true}, wantDiff.String()},
		{Request{Type: TypeDifftest, Seeds: seeds, Parallel: 4, Verbose: true}, wantDiff.String()},
	} {
		out, ok, errText, status, _ := postStream(t, base, tc.req)
		if status != http.StatusOK || !ok {
			t.Fatalf("%s parallel %d: status %d ok %v err %s", tc.req.Type, tc.req.Parallel, status, ok, errText)
		}
		if out != tc.want {
			t.Errorf("%s parallel %d: stream differs from CLI\n--- server ---\n%s--- cli ---\n%s",
				tc.req.Type, tc.req.Parallel, out, tc.want)
		}
	}

	// Verdict accounting: every run classified clean — the campaign
	// jobs tally one verdict per seed×mode, the difftest jobs one per
	// seed — and nothing unclassified.
	snap := s.snapshot()
	want := uint64(2*seeds*3 + 2*seeds)
	if snap.Verdicts["clean"] != want {
		t.Errorf("clean verdicts = %d, want %d", snap.Verdicts["clean"], want)
	}
	if snap.Verdicts["engine-bug"] != 0 {
		t.Errorf("engine-bug verdicts = %d, want 0", snap.Verdicts["engine-bug"])
	}
}

// TestProgramRunJob: all three modes execute, the summary is
// deterministic per (seed, mode), and the pooled machines feed the
// simulator counters.
func TestProgramRunJob(t *testing.T) {
	if testing.Short() {
		t.Skip("boots machines")
	}
	s, base := startTest(t, Config{Workers: 2, QueueDepth: 8})
	for _, mode := range []string{"ultrix", "fast", "hardware"} {
		req := Request{Type: TypeProgramRun, Seed: 11, Mode: mode}
		out1, ok, errText, _, _ := postStream(t, base, req)
		if !ok {
			t.Fatalf("mode %s: job failed: %s", mode, errText)
		}
		if !strings.Contains(out1, "program-run: seed 11") || !strings.Contains(out1, "exit: clean") {
			t.Errorf("mode %s: unexpected summary:\n%s", mode, out1)
		}
		out2, _, _, _, _ := postStream(t, base, req)
		if out1 != out2 {
			t.Errorf("mode %s: summary not deterministic:\n%s\nvs\n%s", mode, out1, out2)
		}
	}
	if s.metrics.SimInsts.Load() == 0 || s.metrics.SimExceptions.Load() == 0 {
		t.Error("simulator counters were not harvested from pooled machines")
	}
	if s.metrics.SimUnixDeliveries.Load() == 0 || s.metrics.SimFastDeliveries.Load() == 0 {
		t.Error("delivery counters not harvested across modes")
	}
}

// TestFigureSweepJob: the sweep renders both figures from live
// measurements.
func TestFigureSweepJob(t *testing.T) {
	if testing.Short() {
		t.Skip("boots measurement machines")
	}
	_, base := startTest(t, Config{Workers: 1, QueueDepth: 2})
	out, ok, errText, _, _ := postStream(t, base, Request{Type: TypeFigureSweep, Parallel: 1})
	if !ok {
		t.Fatalf("figure sweep failed: %s", errText)
	}
	for _, want := range []string{"Figure 3:", "Figure 4:"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
}

// TestJobDeadline: a deadline far below the job's runtime aborts it
// promptly; the result reports the abort and the job counts as
// cancelled, not failed. postStream verifies the integrity trailer, so
// this also pins that a deadline abort — later shards buffered in the
// OrderedWriter behind cancelled earlier ones — still delivers the
// result event and a valid trailer rather than dropping the stream.
func TestJobDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	s, base := startTest(t, Config{Workers: 1, QueueDepth: 2})
	out, ok, errText, status, _ := postStream(t, base,
		Request{Type: TypeCampaign, Seeds: 2000, Parallel: 1, TimeoutMS: 25})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if ok {
		t.Fatalf("a 2000-seed campaign finished in 25ms? output: %s", out)
	}
	if !strings.Contains(errText, "aborted") {
		t.Errorf("result error %q does not mention the abort", errText)
	}
	if got := s.metrics.JobsCancelled.Load(); got != 1 {
		t.Errorf("JobsCancelled = %d, want 1", got)
	}
	if got := s.metrics.JobsFailed.Load(); got != 0 {
		t.Errorf("JobsFailed = %d, want 0 (deadline is a cancellation)", got)
	}
}

// postEvents posts a job and returns every raw event in the stream —
// for tests that inspect event kinds postStream's reconstruction hides
// (shard-range digests).
func postEvents(t *testing.T, base string, req Request) []Event {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs: status %d: %s", resp.StatusCode, msg)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("malformed event %q: %v", sc.Bytes(), err)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestShardRangeJob pins the worker half of the coordinator protocol:
// a campaign range job streams exactly one shard event per index of
// [from, to), in ascending order (index 0 included — the pointer field
// survives omitempty), each digest byte-identical to the local engine's
// shard, at any parallel width.
func TestShardRangeJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaign shards")
	}
	const seeds = 4
	space := harness.CampaignShards(seeds) // 15
	s, base := startTest(t, Config{Workers: 2, QueueDepth: 4})

	for _, rg := range []struct{ from, to, par int }{
		{0, space/2 + 1, 3},
		{space/2 + 1, space, 1},
	} {
		evs := postEvents(t, base, Request{
			Type: TypeCampaign, Seeds: seeds,
			ShardFrom: rg.from, ShardTo: rg.to, Parallel: rg.par,
		})
		want := rg.from
		var sawResult, sawTrailer bool
		for _, ev := range evs {
			switch ev.Type {
			case "shard":
				if ev.Shard == nil {
					t.Fatalf("shard event without an index: %+v", ev)
				}
				if *ev.Shard != want {
					t.Fatalf("shard events out of order: got %d, want %d", *ev.Shard, want)
				}
				local, _ := json.Marshal(harness.RunShard(s.pool, seeds, *ev.Shard))
				if string(ev.Data) != string(local) {
					t.Errorf("shard %d digest %s != local %s", *ev.Shard, ev.Data, local)
				}
				want++
			case "result":
				sawResult = true
				if ev.OK == nil || !*ev.OK {
					t.Fatalf("range job failed: %+v", ev)
				}
			case "trailer":
				sawTrailer = true
			}
		}
		if want != rg.to {
			t.Fatalf("range [%d,%d): shard events stop at %d", rg.from, rg.to, want)
		}
		if !sawResult || !sawTrailer {
			t.Fatalf("range [%d,%d): result=%v trailer=%v", rg.from, rg.to, sawResult, sawTrailer)
		}
	}

	// Malformed ranges are client errors, not jobs.
	for _, req := range []Request{
		{Type: TypeProgramRun, Seed: 1, ShardFrom: 0, ShardTo: 1},       // not rangeable
		{Type: TypeCampaign, Seeds: seeds, ShardFrom: 3, ShardTo: 3},    // empty
		{Type: TypeCampaign, Seeds: seeds, ShardFrom: -1, ShardTo: 2},   // negative
		{Type: TypeCampaign, Seeds: seeds, ShardFrom: 0, ShardTo: 9999}, // past the space
		{Type: TypeDifftest, Seeds: seeds, ShardFrom: 2, ShardTo: 1},    // inverted
	} {
		if _, _, status, err := tryPost(base, req); err != nil || status != http.StatusBadRequest {
			t.Errorf("range %+v: status %d (err %v), want 400", req, status, err)
		}
	}
}

// TestBadRequests: malformed specs are 400s (counted), /jobs is
// POST-only.
func TestBadRequests(t *testing.T) {
	s, base := startTest(t, Config{Workers: 1, QueueDepth: 1})
	for _, body := range []string{
		`{"type":"bogus"}`,
		`{"type":"campaign","seeds":0}`,
		`{"type":"campaign","seeds":1000000}`,
		`not json at all`,
	} {
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if got := s.metrics.BadRequests.Load(); got != 4 {
		t.Errorf("BadRequests = %d, want 4", got)
	}
	resp, err := http.Get(base + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /jobs: status %d, want 405", resp.StatusCode)
	}
}

// TestMetricsSurfaces: both exposition formats and pprof respond.
func TestMetricsSurfaces(t *testing.T) {
	_, base := startTest(t, Config{Workers: 1, QueueDepth: 1})
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"uexc_jobs_admitted_total", "uexc_queue_capacity 1", "uexc_pool_hit_rate",
		"uexc_sim_tlb_hits_total", "uexc_sim_fastpath_hits_total",
		`uexc_run_verdicts_total{verdict="clean"}`,
		`uexc_run_verdicts_total{verdict="engine-bug"}`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics text missing %q:\n%s", want, text)
		}
	}

	var snap Snapshot
	jresp, err := http.Get(base + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	jresp.Body.Close()
	if snap.QueueCapacity != 1 || snap.Draining {
		t.Errorf("snapshot = %+v", snap)
	}

	presp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d", presp.StatusCode)
	}
}

// TestLoadgen: a small mixed burst completes with zero failures and
// the /metrics totals agree exactly with the client-side counts.
func TestLoadgen(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns under load")
	}
	s, base := startTest(t, Config{Workers: 4, QueueDepth: 16})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL: base, Jobs: 20, Concurrency: 6, Verbose: true,
	})
	if err != nil {
		t.Fatalf("loadgen: %v\nreport: %+v", err, rep)
	}
	if rep.OK != 20 || rep.Failed != 0 || rep.Dropped != 0 {
		t.Fatalf("report: %+v", rep)
	}
	var total int
	for _, n := range rep.ByType {
		total += n
	}
	if total != 20 || rep.ByType[string(TypeCampaign)] == 0 || rep.ByType[string(TypeDifftest)] == 0 ||
		rep.ByType[string(TypeProgramRun)] == 0 {
		t.Errorf("job mix: %+v", rep.ByType)
	}
	if s.metrics.Admitted.Load() != 20 || s.metrics.JobsOK.Load() != 20 {
		t.Errorf("server counts admitted=%d ok=%d, want 20/20 (client-side)",
			s.metrics.Admitted.Load(), s.metrics.JobsOK.Load())
	}
	if st := s.pool.Stats(); st.Reuses == 0 {
		t.Errorf("machine pool never recycled under load: %+v", st)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "jobs/s") {
		t.Errorf("report render: %s", buf.String())
	}
}

// TestClientDisconnectCancelsJob: dropping the connection mid-stream
// cancels the job's context so the worker is freed promptly.
func TestClientDisconnectCancelsJob(t *testing.T) {
	s := newT(t, Config{Workers: 1, QueueDepth: 1})
	started := make(chan struct{}, 1)
	s.execHook = func(j *job) (bool, string, error) {
		started <- struct{}{}
		<-j.ctx.Done() // only a disconnect or deadline can end this job
		return false, "", j.ctx.Err()
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Close()

	body, _ := json.Marshal(Request{Type: TypeProgramRun, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/jobs", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel() // client walks away
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for s.metrics.InFlight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker still held after client disconnect")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.metrics.JobsCancelled.Load(); got != 1 {
		t.Errorf("JobsCancelled = %d, want 1", got)
	}
}

// TestSmoke runs the full end-to-end self-test (the make serve-smoke
// payload) at reduced scale.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full serving smoke")
	}
	var out bytes.Buffer
	rep, err := Smoke(context.Background(), &out, SmokeConfig{Jobs: 10, Concurrency: 4, Workers: 2, QueueDepth: 16})
	if err != nil {
		t.Fatalf("smoke: %v\n%s", err, out.String())
	}
	if rep.OK != 10 {
		t.Errorf("smoke burst: %+v", rep)
	}
	if !strings.Contains(out.String(), "smoke: ok") {
		t.Errorf("smoke transcript:\n%s", out.String())
	}
}

// TestRunServesAndDrains: Run binds an ephemeral port, serves, and a
// context cancellation (the SIGTERM path) drains and returns nil.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	var log bytes.Buffer
	var mu sync.Mutex
	lw := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return log.Write(p)
	})
	go func() { done <- Run(ctx, Config{Workers: 1, QueueDepth: 1}, lw, ready) }()
	addr := <-ready

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not shut down")
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(log.String(), "drained, bye") {
		t.Errorf("shutdown log: %s", log.String())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
