// Coordinator mode (DESIGN.md §13): with Config.WorkerNodes set, this
// server splits every campaign/difftest job's shard space into ranges,
// dispatches them to worker nodes over the ordinary HTTP/NDJSON job
// API (each worker runs the unchanged engine via a shard-range job),
// and merges the streamed digests strictly by shard index — the same
// §8 frontier a local sweep advances — so the distributed stream,
// summary, and fingerprints are byte-identical to a serial single-node
// run. Failure handling rides the §12 machinery: a failed range is
// requeued immediately for any surviving worker (the failing node
// backs off, then quarantines), merged digests checkpoint through the
// durable store under the usual cadence, dispatch/ack records journal
// the fleet's promises, and a killed coordinator resumes from its
// merge frontier.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	dt "uexc/internal/difftest"
	"uexc/internal/harness"
)

// fleet is the coordinator's worker set, shared by every distributed
// job on this server.
type fleet struct {
	s     *Server
	nodes []*fleetNode
}

func newFleet(s *Server, urls []string) *fleet {
	f := &fleet{s: s}
	for _, u := range urls {
		f.nodes = append(f.nodes, &fleetNode{
			url:    strings.TrimRight(u, "/"),
			client: &http.Client{},
		})
	}
	return f
}

// fleetNode is one worker: its base URL, a reusable client, and the
// failure state that drives backoff and quarantine.
type fleetNode struct {
	url    string
	client *http.Client

	mu         sync.Mutex
	failures   int       // consecutive dispatch failures
	quietUntil time.Time // back off / quarantine expiry
}

// ok resets the failure streak after a successful dispatch.
func (n *fleetNode) ok() {
	n.mu.Lock()
	n.failures = 0
	n.mu.Unlock()
}

// fail records one dispatch failure: the first earns the §12 retry
// backoff (deterministically jittered), repeat offenders are
// quarantined for the full cooldown so a dead worker cannot burn range
// attempts at connection-refused speed.
func (n *fleetNode) fail(base, quarantine time.Duration, m *Metrics, jobID uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failures++
	d := retryBackoff(base, n.failures, jobID, 0)
	if n.failures >= 2 {
		d = quarantine
		m.WorkersQuarantined.Add(1)
	}
	n.quietUntil = time.Now().Add(d)
}

// quietFor returns how much longer the node must stay benched.
func (n *fleetNode) quietFor() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d := time.Until(n.quietUntil); d > 0 {
		return d
	}
	return 0
}

// fleetRange is one dispatch unit: shard indices [from, to), how many
// times the fleet has tried to place it, and which nodes have failed
// it. Exactly one goroutine holds a given range at a time, so the
// failed set needs no lock.
type fleetRange struct {
	from, to int
	attempt  int
	failed   map[string]bool // node URL → has failed this range
}

// fleetMerge is the coordinator's §8 frontier over remote digests:
// shards arrive from any worker in any order, merge strictly by index,
// re-render the exact progress lines a local run would stream, and
// checkpoint through the durable store at the usual cadence. Duplicate
// deliveries (a re-dispatched range overlapping its first, partial
// life) fall below the frontier and are ignored — digests are
// deterministic, so the first copy was already the right bytes.
type fleetMerge struct {
	mu        sync.Mutex
	fj        *fleetJob
	next      int
	lastSaved int
	every     int
	digests   []json.RawMessage
	pending   map[int]json.RawMessage
	render    func(i int, data json.RawMessage) (string, error) // nil unless Verbose
	save      func(prefix []json.RawMessage) error              // nil without store
	err       error                                             // sticky render/save failure
}

// merge accepts shard i's digest. A render or checkpoint failure is
// the job's failure, not the delivering worker's: it sticks and
// cancels the whole dispatch.
func (m *fleetMerge) merge(i int, data json.RawMessage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil || i < m.next {
		return
	}
	m.pending[i] = data
	for {
		d, ok := m.pending[m.next]
		if !ok {
			break
		}
		delete(m.pending, m.next)
		m.digests[m.next] = d
		if m.render != nil {
			line, err := m.render(m.next, d)
			if err != nil {
				m.failLocked(err)
				return
			}
			m.fj.j.emit(Event{Type: "progress", Line: line})
		}
		m.next++
	}
	if m.save != nil && m.next-m.lastSaved >= m.every {
		if err := m.save(m.digests[:m.next]); err != nil {
			m.failLocked(err)
			return
		}
		m.lastSaved = m.next
	}
}

// finish forces the final checkpoint once the frontier is complete.
func (m *fleetMerge) finish() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err == nil && m.save != nil && m.lastSaved < m.next {
		m.err = m.save(m.digests[:m.next])
		if m.err == nil {
			m.lastSaved = m.next
		}
	}
	return m.err
}

func (m *fleetMerge) failLocked(err error) {
	m.err = err
	m.fj.cancel()
}

func (m *fleetMerge) stickyErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// fleetJob is one distributed job's dispatch state.
type fleetJob struct {
	j           *job
	merge       *fleetMerge
	work        chan fleetRange
	done        chan struct{} // closed when every range is acked
	ctx         context.Context
	cancel      context.CancelFunc
	remaining   atomic.Int64
	maxAttempts int

	failMu  sync.Mutex
	failErr error
}

// fatal records the first unrecoverable error and stops the dispatch.
func (fj *fleetJob) fatal(err error) {
	fj.failMu.Lock()
	if fj.failErr == nil {
		fj.failErr = err
	}
	fj.failMu.Unlock()
	fj.cancel()
}

func (fj *fleetJob) fatalErr() error {
	fj.failMu.Lock()
	defer fj.failMu.Unlock()
	return fj.failErr
}

// rangeDone retires one acked range.
func (fj *fleetJob) rangeDone() {
	if fj.remaining.Add(-1) == 0 {
		close(fj.done)
	}
}

// runDistributed executes a campaign/difftest job across the fleet:
// dispatch phase (ranges stream back and merge into the frontier),
// then the fold — the unchanged engine's ResumeCtx entry point called
// with the complete digest prefix, which re-derives the summary and
// result exactly as a local run would, executing nothing.
func (s *Server) runDistributed(j *job) (bool, string, error) {
	space := j.req.ShardSpace()

	var render func(i int, data json.RawMessage) (string, error)
	if j.req.Verbose {
		switch j.req.Type {
		case TypeCampaign:
			render = func(i int, data json.RawMessage) (string, error) {
				var t harness.CampaignShard
				if err := json.Unmarshal(data, &t); err != nil {
					return "", fmt.Errorf("merge shard %d: corrupt digest: %w", i, err)
				}
				return harness.ShardLine(i, j.req.Seeds, t), nil
			}
		case TypeDifftest:
			render = func(i int, data json.RawMessage) (string, error) {
				var t dt.Shard
				if err := json.Unmarshal(data, &t); err != nil {
					return "", fmt.Errorf("merge shard %d: corrupt digest: %w", i, err)
				}
				return dt.ShardLine(i, t), nil
			}
		}
	}

	dctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	fj := &fleetJob{
		j: j, done: make(chan struct{}),
		ctx: dctx, cancel: cancel,
		maxAttempts: max(s.cfg.ShardAttempts, len(s.fleet.nodes)+1),
	}
	m := &fleetMerge{
		fj:      fj,
		next:    j.resumed,
		every:   s.cfg.CheckpointEvery,
		digests: make([]json.RawMessage, space),
		pending: map[int]json.RawMessage{},
		render:  render,
		save:    saveShards[json.RawMessage](s, j),
	}
	m.lastSaved = m.next
	copy(m.digests, j.done)
	fj.merge = m

	// Replay the durable prefix's progress lines, exactly as a local
	// resume does, so the resumed stream stays byte-identical.
	if render != nil {
		for i := 0; i < m.next; i++ {
			line, err := render(i, m.digests[i])
			if err != nil {
				return false, "", err
			}
			j.emit(Event{Type: "progress", Line: line})
		}
	}

	// Dispatch everything past the merge frontier in DispatchShards
	// chunks. The work channel holds every range at once (requeues
	// reuse the slot their failed dispatch freed), so sends never block.
	var ranges []fleetRange
	for from := m.next; from < space; from += s.cfg.DispatchShards {
		to := from + s.cfg.DispatchShards
		if to > space {
			to = space
		}
		ranges = append(ranges, fleetRange{from: from, to: to})
	}
	if len(ranges) > 0 {
		fj.work = make(chan fleetRange, len(ranges))
		fj.remaining.Store(int64(len(ranges)))
		for _, rg := range ranges {
			fj.work <- rg
		}
		for _, n := range s.fleet.nodes {
			go s.fleet.dispatcher(fj, n)
		}
		select {
		case <-fj.done:
		case <-dctx.Done():
		}
		if err := m.stickyErr(); err != nil {
			return false, "", err
		}
		if err := fj.fatalErr(); err != nil {
			return false, "", err
		}
		if err := j.ctx.Err(); err != nil {
			return false, "", fmt.Errorf("distributed %s aborted: %w", j.req.Type, err)
		}
	}
	if err := m.finish(); err != nil {
		return false, "", err
	}

	// Fold: hand the complete digest prefix back to the engine. With
	// done covering the whole shard space nothing executes; the fold
	// accumulates the identical CampaignResult a local run produces.
	switch j.req.Type {
	case TypeCampaign:
		done, err := decodeShards[harness.CampaignShard](m.digests)
		if err != nil {
			return false, "", err
		}
		res, err := harness.FaultCampaignResumeCtx(j.ctx, s.pool, j.req.Seeds, 1, nil, done, 0, nil)
		if err != nil {
			return false, "", err
		}
		s.metrics.addVerdicts(res.Verdicts)
		if !res.Ok() {
			return false, res.Summary(), fmt.Errorf("fault campaign failed (%d failures, missing coverage: %v)",
				len(res.Failures), res.MissingCoverage())
		}
		return true, res.Summary(), nil
	case TypeDifftest:
		done, err := decodeShards[dt.Shard](m.digests)
		if err != nil {
			return false, "", err
		}
		res, err := dt.CampaignResumeCtx(j.ctx, s.pool, j.req.Seeds, 1, nil, done, 0, nil)
		if err != nil {
			return false, "", err
		}
		s.metrics.addVerdicts(res.Verdicts)
		if !res.Ok() {
			return false, res.Summary(), fmt.Errorf("differential campaign failed (%d divergences, self-test ok: %v)",
				len(res.Divergences), res.SelfTestOK)
		}
		return true, res.Summary(), nil
	}
	return false, "", fmt.Errorf("%s: not a distributable job type", j.req.Type)
}

// dispatcher is one worker node's pull loop: take a range, stream it,
// and on failure requeue the range immediately — any free node,
// usually a survivor, picks it up next — while this node backs off (or
// sits out its quarantine). The fleet's poison verdict requires both
// an exhausted attempt budget and a failure from every node: a dead
// node whose dispatcher is the only free one (the survivors are deep
// in long ranges) can burn attempts at quarantine cadence, and those
// must never fail a range a busy healthy node has not even seen.
func (f *fleet) dispatcher(fj *fleetJob, n *fleetNode) {
	for {
		if q := n.quietFor(); q > 0 {
			sleepOrCancel(fj.ctx, q)
		}
		select {
		case <-fj.ctx.Done():
			return
		case <-fj.done:
			return
		case rg := <-fj.work:
			err := f.dispatch(fj, n, rg)
			if err == nil {
				n.ok()
				fj.rangeDone()
				continue
			}
			if fj.ctx.Err() != nil {
				return // job died mid-dispatch; not the node's fault
			}
			n.fail(f.s.cfg.ShardBackoff, f.s.cfg.WorkerQuarantine, f.s.metrics, fj.j.id)
			rg.attempt++
			if rg.failed == nil {
				rg.failed = make(map[string]bool, len(f.nodes))
			}
			rg.failed[n.url] = true
			if rg.attempt >= fj.maxAttempts && len(rg.failed) >= len(f.nodes) {
				fj.fatal(&ShardError{Job: fj.j.id, Shard: rg.from, Attempts: rg.attempt, Err: err})
				return
			}
			f.s.metrics.FleetRedispatches.Add(1)
			fj.work <- rg
		}
	}
}

// dispatch sends one shard range to one worker as an ordinary job and
// consumes its NDJSON stream, merging shard digests as they arrive.
// The range is acked — durably, via the journal — only if every index
// of [from, to) arrived in order, the result verdict was ok, and the
// integrity trailer verified; anything less is a failed dispatch whose
// already-merged shards the duplicate-tolerant frontier keeps for
// free.
func (f *fleet) dispatch(fj *fleetJob, n *fleetNode, rg fleetRange) error {
	s := f.s
	if s.store != nil {
		_ = s.store.AppendDispatch(fj.j.id, rg.from, rg.to, n.url)
	}
	s.metrics.FleetDispatches.Add(1)

	req := fj.j.req
	req.Verbose = false
	req.ShardFrom, req.ShardTo = rg.from, rg.to
	req.TimeoutMS = int64(s.cfg.DispatchTimeout / time.Millisecond)
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(fj.ctx, s.cfg.DispatchTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, n.url+"/jobs", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Tenant", fj.j.tenant)
	resp, err := n.client.Do(hreq)
	if err != nil {
		return fmt.Errorf("worker %s: %w", n.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("worker %s: status %d: %s", n.url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}

	want := rg.from
	h := fnv.New64a()
	records := 0
	var sawResult, resultOK, sawTrailer bool
	var resultErr string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("worker %s: malformed event: %w", n.url, err)
		}
		if ev.Type == "trailer" {
			if ev.Records != records {
				return fmt.Errorf("worker %s: trailer counts %d records, saw %d", n.url, ev.Records, records)
			}
			if fp := fmt.Sprintf("%016x", h.Sum64()); ev.FNV != fp {
				return fmt.Errorf("worker %s: stream fingerprint mismatch (trailer %s, computed %s)", n.url, ev.FNV, fp)
			}
			sawTrailer = true
			break
		}
		h.Write(line)
		h.Write([]byte{'\n'})
		records++
		switch ev.Type {
		case "shard":
			if ev.Shard == nil || len(ev.Data) == 0 {
				return fmt.Errorf("worker %s: shard event without index or digest", n.url)
			}
			if *ev.Shard != want {
				return fmt.Errorf("worker %s: shard events out of order (got %d, want %d)", n.url, *ev.Shard, want)
			}
			fj.merge.merge(*ev.Shard, ev.Data)
			want++
		case "result":
			sawResult = true
			if ev.OK != nil {
				resultOK = *ev.OK
			}
			resultErr = ev.Error
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("worker %s: stream: %w", n.url, err)
	}
	if !sawTrailer {
		return fmt.Errorf("worker %s: stream ended without an integrity trailer", n.url)
	}
	if !sawResult || !resultOK {
		return fmt.Errorf("worker %s: range [%d,%d) failed: %s", n.url, rg.from, rg.to, resultErr)
	}
	if want != rg.to {
		return fmt.Errorf("worker %s: range [%d,%d) delivered only [%d,%d)", n.url, rg.from, rg.to, rg.from, want)
	}
	if s.store != nil {
		_ = s.store.AppendAck(fj.j.id, rg.from, rg.to, n.url)
	}
	s.metrics.FleetAcks.Add(1)
	return nil
}
