package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postAs posts a job under an X-Tenant header without consuming the
// stream further than the backpressure verdict needs.
func postAs(t *testing.T, base, tenant string, req Request) (status int, retryAfter string, body io.ReadCloser) {
	t.Helper()
	blob, _ := json.Marshal(req)
	hreq, _ := http.NewRequest(http.MethodPost, base+"/jobs", bytes.NewReader(blob))
	hreq.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hreq.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST /jobs as %q: %v", tenant, err)
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), resp.Body
}

// TestTenantInFlightQuota: one tenant saturating its in-flight cap gets
// 429 with a Retry-After hint while another tenant sails through —
// isolation is per X-Tenant key, not global.
func TestTenantInFlightQuota(t *testing.T) {
	s := newT(t, Config{
		Workers: 4, QueueDepth: 8,
		Tenants: TenantLimits{MaxInFlight: 1},
	})
	release := make(chan struct{})
	s.execHook = func(j *job) (bool, string, error) {
		select {
		case <-release:
			return true, "done\n", nil
		case <-j.ctx.Done():
			return false, "", j.ctx.Err()
		}
	}
	base := newTestHTTP(t, s)

	st, _, body := postAs(t, base, "acme", Request{Type: TypeProgramRun, Seed: 1})
	if st != http.StatusOK {
		t.Fatalf("first acme job: status %d", st)
	}
	defer body.Close()
	waitMetric(t, "acme job running", func() bool { return s.metrics.InFlight.Load() == 1 })

	st2, ra, body2 := postAs(t, base, "acme", Request{Type: TypeProgramRun, Seed: 2})
	msg, _ := io.ReadAll(body2)
	body2.Close()
	if st2 != http.StatusTooManyRequests {
		t.Fatalf("second acme job: status %d, want 429 (%s)", st2, msg)
	}
	if ra == "" {
		t.Error("tenant rejection carried no Retry-After header")
	}
	if !strings.Contains(string(msg), `tenant "acme"`) {
		t.Errorf("rejection body %q does not name the tenant", msg)
	}

	st3, _, body3 := postAs(t, base, "globex", Request{Type: TypeProgramRun, Seed: 3})
	if st3 != http.StatusOK {
		t.Fatalf("globex job: status %d, want 200 — quotas must not leak across tenants", st3)
	}
	defer body3.Close()

	if got := s.metrics.RejectedTenant.Load(); got != 1 {
		t.Errorf("RejectedTenant = %d, want 1", got)
	}
	close(release)
	waitMetric(t, "jobs drained", func() bool { return s.metrics.JobsOK.Load() == 2 })

	// Gauges moved exactly once per transition: everything back to zero,
	// counters remember the history.
	snap := s.tenants.snapshot()
	for _, name := range []string{"acme", "globex"} {
		ts := snap[name]
		if ts.Queued != 0 || ts.Running != 0 {
			t.Errorf("tenant %q gauges queued=%d running=%d after drain, want 0/0", name, ts.Queued, ts.Running)
		}
		if ts.Admitted != 1 {
			t.Errorf("tenant %q admitted = %d, want 1", name, ts.Admitted)
		}
	}
	if snap["acme"].Rejected != 1 {
		t.Errorf("acme rejected = %d, want 1", snap["acme"].Rejected)
	}

	// The rendered /metrics page exposes the per-tenant series.
	resp, err := http.Get(base + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`uexc_tenant_admitted_total{tenant="acme"} 1`,
		`uexc_tenant_rejected_total{tenant="acme"} 1`,
		`uexc_tenant_admitted_total{tenant="globex"} 1`,
		"uexc_jobs_rejected_tenant_total 1",
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("/metrics text missing %q", want)
		}
	}
}

// TestTenantTokenBucket drives the registry's clock directly: a sweep
// spends its seed cost, an immediate repeat is refused with an honest
// retry-after, and the bucket refills at SeedsPerSec.
func TestTenantTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	r := newTenantRegistry(TenantLimits{SeedsPerSec: 5, SeedBurst: 10})
	r.now = func() time.Time { return now }

	if wait, err := r.admit("acme", 10); err != nil {
		t.Fatalf("burst-sized admission refused: %v (wait %d)", err, wait)
	}
	wait, err := r.admit("acme", 10)
	if err == nil {
		t.Fatal("empty bucket admitted a second sweep")
	}
	if wait != 2 { // 10 seeds / 5 per sec
		t.Errorf("retry-after = %ds, want 2", wait)
	}
	now = now.Add(2 * time.Second)
	if _, err := r.admit("acme", 10); err != nil {
		t.Fatalf("refilled bucket still refusing: %v", err)
	}
	// Refill caps at the burst.
	now = now.Add(time.Hour)
	if wait, err := r.admit("acme", 11); err == nil || wait != 1 {
		t.Errorf("over-burst admission: err=%v wait=%d, want refusal with wait 1", err, wait)
	}

	// Two admissions succeeded above. Walk both out — plus stray extra
	// done/drop calls, which the guarded transitions must absorb
	// without pushing a gauge negative.
	r.start("acme")
	r.done("acme")
	r.drop("acme")
	r.done("acme")
	r.drop("acme")
	snap := r.snapshot()["acme"]
	if snap.Queued != 0 || snap.Running != 0 {
		t.Errorf("gauges queued=%d running=%d after drain, want 0/0", snap.Queued, snap.Running)
	}
	if snap.Queued < 0 || snap.Running < 0 {
		t.Errorf("gauges went negative: %+v", snap)
	}
	if snap.Admitted != 2 || snap.Rejected != 2 {
		t.Errorf("admitted=%d rejected=%d, want 2/2", snap.Admitted, snap.Rejected)
	}
}

// TestTenantResumeDoesNotRecharge: a journal-resumed job is adopted
// into its tenant's gauges without a second token charge — the seeds
// were billed in its first life, and a crash that forced re-admission
// through the bucket would wedge every big resumed sweep.
func TestTenantResumeDoesNotRecharge(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign across a kill")
	}
	dir := t.TempDir()
	limits := TenantLimits{SeedsPerSec: 0.001, SeedBurst: 3}

	s1 := newT(t, Config{Workers: 1, QueueDepth: 2, StoreDir: dir, Tenants: limits})
	stall := make(chan struct{})
	s1.execHook = func(j *job) (bool, string, error) {
		select {
		case <-stall:
		case <-j.ctx.Done():
		}
		return false, "", j.ctx.Err()
	}
	base1 := newTestHTTP(t, s1)
	st, _, body := postAs(t, base1, "acme", Request{Type: TypeCampaign, Seeds: 3, Verbose: true})
	if st != http.StatusOK {
		t.Fatalf("initial admission: status %d", st)
	}
	waitMetric(t, "job running", func() bool { return s1.metrics.InFlight.Load() == 1 })
	s1.Kill()
	close(stall)
	io.Copy(io.Discard, body)
	body.Close()

	// Incarnation B has the same stingy bucket; a fresh 3-seed campaign
	// could never pass (0.001 seeds/s, empty after any spend), but the
	// resumed job must run regardless.
	s2 := newT(t, Config{Workers: 1, QueueDepth: 2, StoreDir: dir, Resume: true, Tenants: limits})
	base2 := newTestHTTP(t, s2)
	waitMetric(t, "resumed job finished", func() bool { return s2.metrics.JobsOK.Load() == 1 })

	snap := s2.tenants.snapshot()["acme"]
	if snap.Admitted != 1 || snap.Rejected != 0 {
		t.Errorf("resumed tenant admitted=%d rejected=%d, want 1/0", snap.Admitted, snap.Rejected)
	}
	if snap.Queued != 0 || snap.Running != 0 {
		t.Errorf("resumed tenant gauges queued=%d running=%d after finish, want 0/0", snap.Queued, snap.Running)
	}
	// Adoption left the bucket untouched: the new incarnation's full
	// burst is still there (a charged resume would have drained it to
	// zero, with an 0.001/s refill to claw back).
	if snap.Tokens < 2.99 {
		t.Errorf("resumed tenant tokens = %g, want the full burst of 3 — resume was re-charged", snap.Tokens)
	}
	// A fresh sweep spends that burst normally; the next is refused.
	st2, _, body2 := postAs(t, base2, "acme", Request{Type: TypeCampaign, Seeds: 3})
	if st2 != http.StatusOK {
		t.Fatalf("fresh admission after resume: status %d, want 200 (burst available)", st2)
	}
	defer body2.Close()
	st3, ra, body3 := postAs(t, base2, "acme", Request{Type: TypeCampaign, Seeds: 3})
	io.Copy(io.Discard, body3)
	body3.Close()
	if st3 != http.StatusTooManyRequests || ra == "" {
		t.Errorf("over-budget admission after resume: status %d retry-after %q, want 429 with a hint", st3, ra)
	}
}

// newTestHTTP serves an already-built Server (e.g. one whose execHook
// is set) over real HTTP and tears both down with the test.
func newTestHTTP(t *testing.T, s *Server) string {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return hs.URL
}
