package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"uexc/internal/harness"
	"uexc/internal/server"
)

// FleetConfig sizes the distributed-coordinator chaos scenario.
type FleetConfig struct {
	// Seeds is the campaign size under test (<=0: 30).
	Seeds int
	// Seed selects the deterministic worker fault plan.
	Seed int64
	// Dir is the coordinator's journal directory shared across its
	// incarnations ("": a temp directory, removed afterwards).
	Dir string
	// Out receives the harness transcript (nil: discard).
	Out io.Writer
}

// FleetRun is the §13 gauntlet (`make fleet-smoke`): a coordinator
// with a durable journal fans one campaign out to two in-process
// worker nodes, and the harness then breaks everything breakable in
// sequence —
//
//  1. one worker is killed mid-shard-range, so its unacked range must
//     re-dispatch to the survivor (duplicate shard deliveries land
//     below the merge frontier and are discarded);
//  2. the coordinator itself is killed mid-fan-out, after dispatch
//     acks and merge checkpoints are durable, and a garbage
//     journal.ndjson.tmp is planted in its store directory — the torn
//     leftover of a compaction interrupted at the worst moment;
//  3. a replacement coordinator reopens the journal (clobbering the
//     torn tmp), resumes the job from its merge frontier, dispatches
//     only the remainder to the surviving and a replacement worker,
//     and finishes.
//
// The final re-attached stream must be byte-identical to an
// undisturbed serial run, and the survivor's metrics must account for
// the whole ordeal exactly.
func FleetRun(ctx context.Context, cfg FleetConfig) error {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 30
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "uexc-fleet-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	p := plan{seed: cfg.Seed}
	space := harness.CampaignShards(cfg.Seeds)

	// The undisturbed golden output the distributed run must reproduce.
	var golden bytes.Buffer
	gres, err := harness.FaultCampaignCtx(ctx, nil, cfg.Seeds, 1, &golden)
	if err != nil {
		return fmt.Errorf("fleet: golden campaign: %w", err)
	}
	golden.WriteString(gres.Summary())
	fmt.Fprintf(out, "fleet: %d seeds (%d shards), 2 workers, journal %s\n", cfg.Seeds, space, dir)

	// The gate brakes every worker at one global shard index: shards
	// below it run (with the plan's transient panics and stalls),
	// shards at or past it stall until the gate opens. Range jobs carry
	// true shard indices, so the brake pins the coordinator's merge
	// frontier below the gate — the kills below cannot race the
	// campaign finishing early.
	var gate atomic.Int64
	gate.Store(int64(space / 2))
	workerFault := func(job uint64, shard, attempt int) server.ShardFault {
		if int64(shard) >= gate.Load() {
			return server.ShardFault{Stall: 30 * time.Second}
		}
		return p.fault(job, shard, attempt)
	}
	workerCfg := server.Config{
		Workers: 2, QueueDepth: 8,
		ShardAttempts: 3, ShardBackoff: time.Millisecond,
		ShardFault: workerFault,
	}
	w0, err := start(workerCfg)
	if err != nil {
		return fmt.Errorf("fleet: worker 0: %w", err)
	}
	defer w0.stop()
	w1, err := start(workerCfg)
	if err != nil {
		return fmt.Errorf("fleet: worker 1: %w", err)
	}
	defer w1.stop()

	coordCfg := func(resume bool, nodes []string) server.Config {
		return server.Config{
			Workers: 1, QueueDepth: 4,
			StoreDir: dir, Resume: resume,
			CheckpointEvery: 2, StoreSyncEvery: 2,
			WorkerNodes: nodes, DispatchShards: 6,
			WorkerQuarantine: 100 * time.Millisecond,
			ShardBackoff:     time.Millisecond,
		}
	}
	coordA, err := start(coordCfg(false, []string{w0.base, w1.base}))
	if err != nil {
		return fmt.Errorf("fleet: coordinator A: %w", err)
	}

	// Admit the campaign and hang up mid-stream: the durable
	// coordinator job must keep dispatching without its client.
	jobID, err := postAndAbandon(coordA.base, server.Request{
		Type: server.TypeCampaign, Seeds: cfg.Seeds, Parallel: 2, Verbose: true,
	})
	if err != nil {
		coordA.kill()
		return fmt.Errorf("fleet: admit: %w", err)
	}

	// Fault 1: kill worker 0 once it holds a dispatched range, and
	// demand the coordinator move the stranded range to the survivor.
	if err := waitFleet(coordA.base, w0.base, 30*time.Second, out); err != nil {
		coordA.kill()
		return fmt.Errorf("fleet: pre-kill progress: %w", err)
	}
	w0.kill()
	fmt.Fprintf(out, "fleet: worker 0 killed mid-range\n")
	if err := waitSnapshotOn(coordA.base, 30*time.Second, func(s server.Snapshot) bool {
		return s.FleetRedispatches >= 1
	}); err != nil {
		coordA.kill()
		return fmt.Errorf("fleet: stranded range never re-dispatched: %w", err)
	}
	fmt.Fprintf(out, "fleet: stranded range re-dispatched to the survivor\n")

	// Fault 2: kill the coordinator once this life's merge progress is
	// checkpointed, then plant a torn compaction tmp next to the
	// journal — reopening must clobber it, not replay it.
	if err := waitSnapshotOn(coordA.base, 30*time.Second, func(s server.Snapshot) bool {
		return s.Checkpoints >= 1 && s.FleetAcks >= 1
	}); err != nil {
		coordA.kill()
		return fmt.Errorf("fleet: durable progress before coordinator kill: %w", err)
	}
	if _, err := waitJournalQuiesce(coordA.base, 30*time.Second); err != nil {
		coordA.kill()
		return fmt.Errorf("fleet: quiesce before coordinator kill: %w", err)
	}
	coordA.kill()
	tornTmp := filepath.Join(dir, "journal.ndjson.tmp")
	if err := os.WriteFile(tornTmp, []byte("{\"t\":\"restart\",\"job\":9\ngarbage"), 0o644); err != nil {
		return fmt.Errorf("fleet: plant torn tmp: %w", err)
	}
	fmt.Fprintf(out, "fleet: coordinator killed mid-fan-out; torn compaction tmp planted\n")

	// Recovery: open the gate, bring up a replacement worker, and let
	// coordinator B resume from the journal with the surviving fleet.
	gate.Store(int64(space))
	w2, err := start(workerCfg)
	if err != nil {
		return fmt.Errorf("fleet: replacement worker: %w", err)
	}
	defer w2.stop()
	coordB, err := start(coordCfg(true, []string{w1.base, w2.base}))
	if err != nil {
		return fmt.Errorf("fleet: coordinator B: %w", err)
	}
	defer coordB.stop()
	if _, err := os.Stat(tornTmp); !os.IsNotExist(err) {
		return fmt.Errorf("fleet: torn compaction tmp survived reopen (stat err: %v)", err)
	}

	streamed, ok, complete, errText := attachFully(coordB.base, jobID)
	if !complete || !ok {
		return fmt.Errorf("fleet: resumed stream incomplete (ok=%v complete=%v): %s", ok, complete, errText)
	}
	if streamed != golden.String() {
		return fmt.Errorf("fleet: distributed stream differs from the undisturbed run\n--- distributed ---\n%s--- golden ---\n%s",
			streamed, golden.String())
	}
	fmt.Fprintf(out, "fleet: resumed distributed stream byte-identical to the serial run (%d bytes)\n", len(streamed))

	// Exact accounting on the surviving coordinator.
	if err := server.VerifyMetrics(coordB.base, func(s server.Snapshot) error {
		switch {
		case s.Restarts != 1 || s.ReplayedJobs != 1:
			return fmt.Errorf("restarts/replayed = %d/%d, want 1/1", s.Restarts, s.ReplayedJobs)
		case s.ResumedShards == 0 || s.ResumedShards >= uint64(space):
			return fmt.Errorf("resumed shards = %d, want mid-campaign (of %d)", s.ResumedShards, space)
		case s.JobsOK != 1 || s.JobsFailed != 0 || s.JobsCancelled != 0:
			return fmt.Errorf("ok/failed/cancelled = %d/%d/%d, want 1/0/0", s.JobsOK, s.JobsFailed, s.JobsCancelled)
		case !s.FleetEnabled || s.FleetWorkers != 2:
			return fmt.Errorf("fleet enabled/workers = %v/%d, want true/2", s.FleetEnabled, s.FleetWorkers)
		case s.FleetDispatches == 0 || s.FleetDispatches != s.FleetAcks:
			return fmt.Errorf("dispatches/acks = %d/%d, want equal and nonzero on the survivor",
				s.FleetDispatches, s.FleetAcks)
		case s.QueueDepth != 0 || s.InFlight != 0:
			return fmt.Errorf("queue/in-flight = %d/%d after completion", s.QueueDepth, s.InFlight)
		}
		for name, ts := range s.Tenants {
			if ts.Queued != 0 || ts.Running != 0 {
				return fmt.Errorf("tenant %q gauges queued=%d running=%d after completion", name, ts.Queued, ts.Running)
			}
		}
		return nil
	}); err != nil {
		return fmt.Errorf("fleet: survivor accounting: %w", err)
	}
	fmt.Fprintf(out, "fleet: ok — worker kill, coordinator kill, torn tmp all survived; stream byte-identical, metrics exact\n")
	return nil
}

// waitFleet waits until worker 0 is actually executing a dispatched
// range while the coordinator has acked at least one — the moment a
// worker kill strands real work. Demanding a durable ack before the
// kill matters: the survivor may be braked for the full stall on its
// own range, so the post-kill "durable progress" wait must already be
// satisfied by pre-kill work, not depend on the brake expiring.
func waitFleet(coord, worker string, timeout time.Duration, out io.Writer) error {
	deadline := time.Now().Add(timeout)
	for {
		var coordReady, workerBusy bool
		if err := server.VerifyMetrics(coord, func(s server.Snapshot) error {
			coordReady = s.FleetDispatches >= 2 && s.FleetAcks >= 1
			return nil
		}); err != nil {
			return err
		}
		if err := server.VerifyMetrics(worker, func(s server.Snapshot) error {
			workerBusy = s.InFlight >= 1
			return nil
		}); err != nil {
			return err
		}
		if coordReady && workerBusy {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("worker never held a live range (coord ready %v, worker busy %v)", coordReady, workerBusy)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitSnapshotOn polls one server's /metrics until cond holds.
func waitSnapshotOn(base string, timeout time.Duration, cond func(server.Snapshot) bool) error {
	deadline := time.Now().Add(timeout)
	for {
		var got server.Snapshot
		if err := server.VerifyMetrics(base, func(s server.Snapshot) error { got = s; return nil }); err != nil {
			return err
		}
		if cond(got) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("condition never held; last snapshot: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
