package chaos

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestChaosSmallScale runs the full gauntlet — kills, restarts,
// disconnects, faults, byte-identity, exact accounting, and the poison
// phase — at a size small enough for the test suite.
func TestChaosSmallScale(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var out bytes.Buffer
	if err := Run(ctx, Config{Seeds: 4, Kills: 2, Seed: 1}); err != nil {
		t.Fatalf("chaos run: %v\n%s", err, out.String())
	}
}

// TestChaosTranscript checks the harness narrates its progress: the
// plan line, one line per kill, and the final verdict.
func TestChaosTranscript(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var out bytes.Buffer
	if err := Run(ctx, Config{Seeds: 4, Kills: 2, Seed: 7, Out: &out}); err != nil {
		t.Fatalf("chaos run: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"chaos: plan seed 7",
		"chaos: kill #1",
		"chaos: kill #2",
		"byte-identical",
		"metrics exact",
		"poison shard quarantined",
		"chaos: ok",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("transcript missing %q:\n%s", want, out.String())
		}
	}
}

// TestPlanDeterminism pins the property every debugging session relies
// on: the same plan seed yields the same fault decisions.
func TestPlanDeterminism(t *testing.T) {
	a, b := plan{seed: 42}, plan{seed: 42}
	other := plan{seed: 43}
	same, diff := 0, 0
	for shard := 0; shard < 200; shard++ {
		fa, fb := a.fault(1, shard, 0), b.fault(1, shard, 0)
		if fa != fb {
			t.Fatalf("plan 42 disagrees with itself on shard %d: %+v vs %+v", shard, fa, fb)
		}
		if fa == other.fault(1, shard, 0) {
			same++
		} else {
			diff++
		}
		if ra := a.fault(1, shard, 1); ra.Panic || ra.Stall != 0 {
			t.Fatalf("retry attempt for shard %d is not clean: %+v", shard, ra)
		}
	}
	if diff == 0 {
		t.Fatalf("plans 42 and 43 agree on all %d shards; seed is not mixed in", same+diff)
	}
}

// TestFleetSmallScale runs the §13 distributed gauntlet — worker kill,
// coordinator kill with a torn compaction tmp, resume, byte-identity,
// exact accounting — at test-suite size.
func TestFleetSmallScale(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var out bytes.Buffer
	if err := FleetRun(ctx, FleetConfig{Seeds: 5, Seed: 3, Out: &out}); err != nil {
		t.Fatalf("fleet run: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"fleet: worker 0 killed mid-range",
		"re-dispatched to the survivor",
		"torn compaction tmp planted",
		"byte-identical to the serial run",
		"fleet: ok",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("transcript missing %q:\n%s", want, out.String())
		}
	}
}
