// Package chaos is the service-level crash harness for uexc-serve
// (DESIGN.md §12, `make chaos-smoke`): it runs a real campaign job
// through a gauntlet of seeded, deterministic faults — injected worker
// panics, shard stalls, slow fsyncs, mid-stream client disconnects,
// and repeated in-process kills that abandon the journal mid-batch
// exactly as SIGKILL would — and asserts the two properties that make
// the fabric crash-tolerant:
//
//  1. byte-identity: after every kill/restart cycle, the finally
//     completed job's stream reconstructs output byte-identical to a
//     run that was never disturbed;
//  2. exact accounting: /metrics on the final incarnation reports
//     precisely the restarts, replayed jobs, resumed shards, and job
//     verdicts the harness itself observed.
//
// A separate phase proves the poison-shard quarantine: a shard that
// fails every retry fails its job with the typed error chain instead
// of wedging the service.
//
// Every fault decision is a pure function of (plan seed, job, shard,
// attempt), so a failing run reproduces with the same -chaos-seed.
package chaos

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"uexc/internal/harness"
	"uexc/internal/server"
)

// Config sizes the chaos run.
type Config struct {
	// Seeds is the campaign size under test (<=0: 30).
	Seeds int
	// Kills is the number of in-process kill/restart cycles injected
	// mid-campaign (<=0: 3).
	Kills int
	// Seed selects the deterministic fault plan (panics, stalls, slow
	// fsyncs). The same seed reproduces the same faults.
	Seed int64
	// Workers is the server's worker-pool size (<=0: 2).
	Workers int
	// Dir is the journal directory shared across incarnations ("": a
	// temp directory, removed afterwards).
	Dir string
	// Out receives the harness transcript (nil: discard).
	Out io.Writer
}

// plan derives every fault decision from the seed, deterministically.
type plan struct{ seed int64 }

// hash mixes the plan seed with a shard attempt's identity.
func (p plan) hash(job uint64, shard, attempt int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d/%d/%d", p.seed, job, shard, attempt)
	return h.Sum64()
}

// fault injects transient faults: roughly one shard in eight panics on
// its first attempt (the retry must recover it), and every first
// attempt stalls a few hash-chosen milliseconds — the stall keeps each
// incarnation slow enough that the kill schedule always lands
// mid-campaign instead of racing the engines. Later attempts are
// clean, so no shard is poison here.
func (p plan) fault(job uint64, shard, attempt int) server.ShardFault {
	if attempt != 0 {
		return server.ShardFault{}
	}
	h := p.hash(job, shard, attempt)
	if h%8 == 0 {
		return server.ShardFault{Panic: true}
	}
	return server.ShardFault{Stall: time.Duration(2+h%7) * time.Millisecond}
}

// slowSync delays roughly every fifth journal fsync — the slow-disk
// fault — without any mutable state, keyed on wall-clock microseconds
// being irrelevant: the delay is tiny and the decision deterministic
// enough (it fires on a fixed fraction of syncs via a counter).
type slowSync struct {
	plan  plan
	calls int
}

func (s *slowSync) delay() {
	s.calls++
	if s.plan.hash(0, s.calls, -1)%5 == 0 {
		time.Sleep(200 * time.Microsecond)
	}
}

// Run executes the full chaos scenario and returns the first broken
// invariant as an error (nil: every assertion held).
func Run(ctx context.Context, cfg Config) error {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 30
	}
	if cfg.Kills <= 0 {
		cfg.Kills = 3
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "uexc-chaos-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	p := plan{seed: cfg.Seed}

	// The undisturbed golden output the survivor must reproduce.
	var golden bytes.Buffer
	gres, err := harness.FaultCampaignCtx(ctx, nil, cfg.Seeds, 1, &golden)
	if err != nil {
		return fmt.Errorf("chaos: golden campaign: %w", err)
	}
	golden.WriteString(gres.Summary())
	totalShards := harness.CampaignShards(cfg.Seeds)
	fmt.Fprintf(out, "chaos: plan seed %d, %d seeds (%d shards), %d kills, journal %s\n",
		cfg.Seed, cfg.Seeds, totalShards, cfg.Kills, dir)

	// Doomed incarnation N is braked at shard index budget*(N+1), so
	// each life advances the frontier by about one budget; the last
	// braked limit must leave shards for the survivor, or the campaign
	// would finish before its final kill.
	budget := totalShards/(cfg.Kills+1) + 1
	if cfg.Kills*budget >= totalShards {
		return fmt.Errorf("chaos: %d seeds is too small for %d kills", cfg.Seeds, cfg.Kills)
	}

	if err := crashCycles(ctx, cfg, p, dir, budget, golden.String(), out); err != nil {
		return err
	}
	if err := poisonPhase(ctx, cfg, out); err != nil {
		return err
	}
	fmt.Fprintf(out, "chaos: ok — %d kills survived, stream byte-identical, metrics exact, poison quarantined\n",
		cfg.Kills)
	return nil
}

// incarnation is one server life: a listener plus the server behind it.
type incarnation struct {
	srv  *server.Server
	hs   *http.Server
	base string
	done chan struct{}
}

func start(cfg server.Config) (*incarnation, error) {
	srv, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	inc := &incarnation{
		srv:  srv,
		hs:   &http.Server{Handler: srv.Handler()},
		base: "http://" + ln.Addr().String(),
		done: make(chan struct{}),
	}
	go func() { defer close(inc.done); _ = inc.hs.Serve(ln) }()
	return inc, nil
}

// kill crashes this incarnation. A real SIGKILL severs the process's
// sockets and its execution at the same instant; in-process, the
// listener goes first so remotely-driven ephemeral jobs (a worker's
// dispatched shard ranges) lose their client and die — otherwise
// Kill's worker shutdown could be pinned behind a stalled range whose
// context only the connection cancels. The journal is abandoned inside
// Kill before job contexts die, preserving the no-zero-digest window.
func (inc *incarnation) kill() {
	_ = inc.hs.Close()
	inc.srv.Kill()
	<-inc.done
}

// stop shuts this incarnation down gracefully.
func (inc *incarnation) stop() {
	inc.srv.Close()
	_ = inc.hs.Close()
	<-inc.done
}

// brake caps an incarnation's progress at a fixed shard-index limit:
// shards below the limit run normally, shards at or above it stall
// until the kill lands. Because the limit is on the *index* — not on
// how many shards happened to start — every allowed shard sits ahead
// of the braked tail in its worker's contiguous span and is guaranteed
// to complete no matter how the work-stealing schedule interleaves, so
// the merge frontier deterministically reaches the limit and the
// campaign can never finish before its scheduled crash. The long stall
// stays under the shard deadline and aborts on job-context
// cancellation, so braked shards die with the incarnation instead of
// timing out.
type brake struct {
	plan    plan
	limit   int
	once    sync.Once
	engaged chan struct{}
}

func newBrake(p plan, limit int) *brake {
	return &brake{plan: p, limit: limit, engaged: make(chan struct{})}
}

func (b *brake) fault(job uint64, shard, attempt int) server.ShardFault {
	if shard >= b.limit {
		b.once.Do(func() { close(b.engaged) })
		return server.ShardFault{Stall: 30 * time.Second}
	}
	return b.plan.fault(job, shard, attempt)
}

// crashCycles runs the kill/restart gauntlet against one campaign job.
func crashCycles(ctx context.Context, cfg Config, p plan, dir string, budget int, golden string, out io.Writer) error {
	serverCfg := func(resume bool, fault func(uint64, int, int) server.ShardFault) server.Config {
		return server.Config{
			Workers: cfg.Workers, QueueDepth: 4,
			StoreDir: dir, Resume: resume,
			CheckpointEvery: 2, StoreSyncEvery: 4,
			StoreSyncDelay: (&slowSync{plan: p}).delay,
			ShardAttempts:  3, ShardBackoff: time.Millisecond,
			ShardFault: fault,
		}
	}

	var jobID uint64
	for cycle := 0; cycle <= cfg.Kills; cycle++ {
		// Doomed incarnation N may only advance to shard budget*(N+1);
		// the survivor runs the plan faults only and is allowed to finish.
		var br *brake
		fault := p.fault
		if cycle < cfg.Kills {
			br = newBrake(p, budget*(cycle+1))
			fault = br.fault
		}
		inc, err := start(serverCfg(cycle > 0, fault))
		if err != nil {
			return fmt.Errorf("chaos: incarnation %d: %w", cycle, err)
		}

		if cycle == 0 {
			// Post the campaign, read just past the accepted event, and
			// hang up — the mid-stream disconnect fault. The durable job
			// must keep running without its client.
			id, err := postAndAbandon(inc.base, server.Request{
				Type: server.TypeCampaign, Seeds: cfg.Seeds, Parallel: 3, Verbose: true,
			})
			if err != nil {
				inc.kill()
				return fmt.Errorf("chaos: admit: %w", err)
			}
			jobID = id
		} else {
			// The restarted incarnation must have replayed exactly our job.
			if err := server.VerifyMetrics(inc.base, func(s server.Snapshot) error {
				if s.Restarts != uint64(cycle) {
					return fmt.Errorf("restarts = %d, want %d", s.Restarts, cycle)
				}
				if s.ReplayedJobs != 1 {
					return fmt.Errorf("replayed jobs = %d, want 1", s.ReplayedJobs)
				}
				if s.ResumedShards == 0 {
					return fmt.Errorf("no resumed shards after kill %d; durable prefix lost", cycle)
				}
				return nil
			}); err != nil {
				inc.kill()
				return fmt.Errorf("chaos: incarnation %d replay: %w", cycle, err)
			}
			// Re-attach mid-run and hang up again — replay + disconnect.
			if cycle < cfg.Kills {
				if err := attachAndAbandon(inc.base, jobID, 3); err != nil {
					inc.kill()
					return fmt.Errorf("chaos: incarnation %d re-attach: %w", cycle, err)
				}
			}
		}

		if cycle < cfg.Kills {
			// Wait for the brake to engage — a shard beyond this life's
			// limit has been reached and stalled — then for a checkpoint
			// to land and the journal to quiesce, so the kill lands at a
			// point whose durable prefix is the checkpoints this life
			// earned.
			select {
			case <-br.engaged:
			case <-ctx.Done():
				inc.kill()
				return ctx.Err()
			case <-time.After(60 * time.Second):
				inc.kill()
				return fmt.Errorf("chaos: incarnation %d: brake never engaged", cycle)
			}
			at, err := waitJournalQuiesce(inc.base, 30*time.Second)
			if err != nil {
				inc.kill()
				return fmt.Errorf("chaos: incarnation %d quiesce: %w", cycle, err)
			}
			inc.kill()
			fmt.Fprintf(out, "chaos: kill #%d after %d journaled records this life\n", cycle+1, at)
			continue
		}

		// Final incarnation: attach for real and read to the trailer.
		streamed, ok, complete, errText := attachFully(inc.base, jobID)
		if !complete || !ok {
			inc.stop()
			return fmt.Errorf("chaos: survivor stream incomplete (ok=%v complete=%v): %s", ok, complete, errText)
		}
		if streamed != golden {
			inc.stop()
			return fmt.Errorf("chaos: survivor stream differs from the undisturbed run\n--- survivor ---\n%s--- golden ---\n%s",
				streamed, golden)
		}
		fmt.Fprintf(out, "chaos: survivor stream byte-identical to the undisturbed run (%d bytes)\n", len(streamed))

		// Exact accounting on the survivor.
		if err := server.VerifyMetrics(inc.base, func(s server.Snapshot) error {
			switch {
			case s.Restarts != uint64(cfg.Kills):
				return fmt.Errorf("restarts = %d, want %d", s.Restarts, cfg.Kills)
			case s.ReplayedJobs != 1:
				return fmt.Errorf("replayed jobs = %d, want 1", s.ReplayedJobs)
			case s.JobsOK != 1 || s.JobsFailed != 0 || s.JobsCancelled != 0:
				return fmt.Errorf("ok/failed/cancelled = %d/%d/%d, want 1/0/0", s.JobsOK, s.JobsFailed, s.JobsCancelled)
			case s.ResumedShards == 0 || s.ResumedShards >= uint64(harness.CampaignShards(cfg.Seeds)):
				return fmt.Errorf("resumed shards = %d, want mid-campaign", s.ResumedShards)
			case s.Checkpoints == 0:
				return fmt.Errorf("no checkpoints journaled by the survivor")
			case !s.StoreEnabled:
				return fmt.Errorf("store not enabled on the survivor")
			case s.QueueDepth != 0 || s.InFlight != 0:
				return fmt.Errorf("queue/in-flight = %d/%d after completion", s.QueueDepth, s.InFlight)
			}
			return nil
		}); err != nil {
			inc.stop()
			return fmt.Errorf("chaos: survivor accounting: %w", err)
		}
		fmt.Fprintf(out, "chaos: survivor metrics exact (restarts %d, 1 job replayed)\n", cfg.Kills)
		inc.stop()
	}
	return nil
}

// poisonPhase proves the quarantine on a fresh journal: one shard
// panics on every attempt, so after the retry budget the job must fail
// with the typed poison error — and the service must stay healthy.
func poisonPhase(ctx context.Context, cfg Config, out io.Writer) error {
	dir, err := os.MkdirTemp("", "uexc-chaos-poison-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	const poisonShard = 2
	inc, err := start(server.Config{
		Workers: 1, QueueDepth: 2,
		StoreDir: dir, CheckpointEvery: 1,
		ShardAttempts: 2, ShardBackoff: time.Millisecond,
		ShardFault: func(job uint64, shard, attempt int) server.ShardFault {
			return server.ShardFault{Panic: shard == poisonShard}
		},
	})
	if err != nil {
		return fmt.Errorf("chaos: poison server: %w", err)
	}
	defer inc.stop()

	body, _ := json.Marshal(server.Request{Type: server.TypeCampaign, Seeds: 2, Parallel: 1})
	resp, err := http.Post(inc.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("chaos: poison post: %w", err)
	}
	defer resp.Body.Close()
	_, ok, complete, errText := server.StreamResult(resp.Body)
	if !complete {
		return fmt.Errorf("chaos: poison stream incomplete: %s", errText)
	}
	if ok {
		return fmt.Errorf("chaos: job succeeded despite a poison shard")
	}
	for _, want := range []string{"poison shard quarantined", fmt.Sprintf("shard %d", poisonShard)} {
		if !strings.Contains(errText, want) {
			return fmt.Errorf("chaos: poison error %q missing %q", errText, want)
		}
	}
	if err := server.VerifyMetrics(inc.base, func(s server.Snapshot) error {
		if s.ShardsPoisoned != 1 || s.JobsFailed != 1 || s.ShardRetries == 0 {
			return fmt.Errorf("poisoned/failed/retries = %d/%d/%d, want 1/1/>0",
				s.ShardsPoisoned, s.JobsFailed, s.ShardRetries)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("chaos: poison accounting: %w", err)
	}
	fmt.Fprintf(out, "chaos: poison shard quarantined with typed error after bounded retries\n")
	return nil
}

// postAndAbandon admits a job, reads just the accepted event for the
// ID, and drops the connection — the first mid-stream disconnect.
func postAndAbandon(base string, req server.Request) (uint64, error) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		return 0, fmt.Errorf("no accepted event")
	}
	var ev server.Event
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil || ev.Type != "accepted" {
		return 0, fmt.Errorf("first event %q is not accepted (%v)", sc.Text(), err)
	}
	return ev.ID, nil
}

// attachAndAbandon re-attaches to a job's stream, reads a few events
// (the replayed prefix), and hangs up mid-stream.
func attachAndAbandon(base string, id uint64, events int) error {
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, id))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < events && sc.Scan(); i++ {
	}
	return nil
}

// attachFully re-attaches and consumes the stream to its trailer.
func attachFully(base string, id uint64) (output string, ok, complete bool, errText string) {
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, id))
	if err != nil {
		return "", false, false, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", false, false, fmt.Sprintf("status %d", resp.StatusCode)
	}
	return server.StreamResult(resp.Body)
}

// waitJournalQuiesce polls /metrics until this incarnation has landed
// at least one checkpoint and the journal append counter then holds
// still for a stretch of consecutive polls, returning the settled
// count — the shards that finished ahead of the brake have all been
// journaled, so the kill cannot erase the life's durable progress.
func waitJournalQuiesce(base string, timeout time.Duration) (uint64, error) {
	deadline := time.Now().Add(timeout)
	var last uint64
	stable := 0
	for {
		var now uint64
		var checkpointed bool
		if err := server.VerifyMetrics(base, func(s server.Snapshot) error {
			now, checkpointed = s.JournalAppends, s.Checkpoints >= 1
			return nil
		}); err != nil {
			return 0, err
		}
		if checkpointed && now == last {
			stable++
			if stable >= 20 {
				return now, nil
			}
		} else {
			last, stable = now, 0
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("journal never quiesced within %v", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
