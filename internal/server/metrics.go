package server

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"uexc/internal/core"
	"uexc/internal/verdict"
)

// Metrics is the server's observability surface: admission and
// completion counters, the in-flight gauge, and the simulator's own
// counters accumulated from every pooled machine as it is returned
// after a run (core.MachinePool.Harvest). All fields are atomics; the
// struct is safe for concurrent update from workers and handlers.
type Metrics struct {
	Admitted         atomic.Uint64 // jobs accepted into the queue
	RejectedFull     atomic.Uint64 // 429: queue at capacity
	RejectedDraining atomic.Uint64 // 503: drain in progress
	RejectedTenant   atomic.Uint64 // 429: a tenant quota said no
	BadRequests      atomic.Uint64 // 4xx: malformed or invalid job specs

	JobsOK        atomic.Uint64 // completed with ok=true
	JobsFailed    atomic.Uint64 // completed with ok=false (engine failure)
	JobsCancelled atomic.Uint64 // aborted by deadline or client disconnect
	JobsEvicted   atomic.Uint64 // finished jobs dropped after the retention window

	// Debug-session lifecycle (DESIGN.md §16): started sessions, and
	// finished session records dropped after the retention window — the
	// same eviction rule finished jobs follow.
	SessionsStarted atomic.Uint64
	SessionsEvicted atomic.Uint64

	InFlight atomic.Int64 // jobs currently executing on a worker

	// Durability counters (DESIGN.md §12).
	Restarts       atomic.Uint64 // journal restart records (process incarnations)
	ReplayedJobs   atomic.Uint64 // pending jobs re-admitted from the journal
	ResumedShards  atomic.Uint64 // durable shards skipped on resume
	Checkpoints    atomic.Uint64 // shard-prefix checkpoints fsynced
	ShardRetries   atomic.Uint64 // shard attempts after a failure
	ShardsPoisoned atomic.Uint64 // shards quarantined after the last retry
	ShardStalls    atomic.Uint64 // injected shard stalls observed
	ShardTimeouts  atomic.Uint64 // shard attempts at or past the deadline

	// Fleet counters (coordinator mode, DESIGN.md §13).
	FleetDispatches    atomic.Uint64 // shard ranges sent to workers
	FleetRedispatches  atomic.Uint64 // ranges re-sent after a worker failure
	FleetAcks          atomic.Uint64 // ranges fully merged into the frontier
	WorkersQuarantined atomic.Uint64 // worker quarantine episodes

	// Verdicts counts campaign runs by typed classification
	// (DESIGN.md §14), folded from every completed campaign/difftest
	// job's result.
	Verdicts [verdict.NumKinds]atomic.Uint64

	byType map[Type]*atomic.Uint64 // admitted jobs by type

	// Simulator counters, harvested at machine Put time.
	SimFastDeliveries atomic.Uint64 // exceptions vectored to user handlers by the fast path
	SimUnixDeliveries atomic.Uint64 // signals delivered via the Ultrix path
	SimExceptions     atomic.Uint64 // every exception the CPU raised (all causes)
	SimTLBHits        atomic.Uint64
	SimTLBMisses      atomic.Uint64
	SimFastPathHits   atomic.Uint64 // interpreter micro-TLB fast-path hits
	SimInsts          atomic.Uint64
	SimCycles         atomic.Uint64

	// Translation-tier counters (cpu/translate.go). Like the fast-path
	// hits they are purely diagnostic — never part of a run fingerprint.
	SimJITBlocks        atomic.Uint64 // basic blocks compiled
	SimJITExecs         atomic.Uint64 // block entries that retired at least one instruction
	SimJITGuardMisses   atomic.Uint64 // block entries rejected by a non-generation guard
	SimJITInvalidations atomic.Uint64 // block entries rejected by a moved page generation
}

// newMetrics builds a Metrics with one per-type admission counter for
// every known job type.
func newMetrics() *Metrics {
	m := &Metrics{byType: make(map[Type]*atomic.Uint64, len(Types))}
	for _, t := range Types {
		m.byType[t] = &atomic.Uint64{}
	}
	return m
}

// addVerdicts folds one completed sweep's verdict tally into the
// counters.
func (m *Metrics) addVerdicts(c verdict.Counts) {
	for k := verdict.Kind(0); k < verdict.NumKinds; k++ {
		if c[k] > 0 {
			m.Verdicts[k].Add(uint64(c[k]))
		}
	}
}

// harvest accumulates one finished run's simulator counters. Installed
// as the machine pool's Harvest hook, so it observes the machine after
// the run and before the recycling Reset wipes it.
func (m *Metrics) harvest(mach *core.Machine) {
	st := mach.K.Stats
	m.SimFastDeliveries.Add(st.FastDeliveries)
	m.SimUnixDeliveries.Add(st.UnixDeliveries)
	c := mach.CPU()
	var exc uint64
	for _, n := range c.ExcCounts {
		exc += n
	}
	m.SimExceptions.Add(exc)
	m.SimTLBHits.Add(mach.K.TLB.Hits)
	m.SimTLBMisses.Add(mach.K.TLB.Misses)
	m.SimFastPathHits.Add(c.FastHits)
	m.SimInsts.Add(c.Insts)
	m.SimCycles.Add(c.Cycles)
	m.SimJITBlocks.Add(c.JITBlocks)
	m.SimJITExecs.Add(c.JITExecs)
	m.SimJITGuardMisses.Add(c.JITGuardMisses)
	m.SimJITInvalidations.Add(c.JITInvalidations)
}

// Snapshot is a consistent-enough (each field individually atomic)
// copy of the metrics for rendering and for client-side verification.
type Snapshot struct {
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	InFlight      int64 `json:"inflight_jobs"`
	Draining      bool  `json:"draining"`

	Admitted         uint64 `json:"jobs_admitted_total"`
	RejectedFull     uint64 `json:"jobs_rejected_full_total"`
	RejectedDraining uint64 `json:"jobs_rejected_draining_total"`
	RejectedTenant   uint64 `json:"jobs_rejected_tenant_total"`
	BadRequests      uint64 `json:"bad_requests_total"`

	JobsOK        uint64 `json:"jobs_ok_total"`
	JobsFailed    uint64 `json:"jobs_failed_total"`
	JobsCancelled uint64 `json:"jobs_cancelled_total"`
	JobsEvicted   uint64 `json:"jobs_evicted_total"`

	SessionsStarted uint64 `json:"sessions_started_total"`
	SessionsActive  int    `json:"sessions_active"`
	SessionsEvicted uint64 `json:"sessions_evicted_total"`

	JobsByType map[string]uint64 `json:"jobs_by_type"`

	// Verdicts is the cumulative run-classification tally across every
	// completed campaign and difftest job (DESIGN.md §14).
	Verdicts map[string]uint64 `json:"run_verdicts"`

	// Tenants is per-tenant admission state; present once a tenant has
	// been seen.
	Tenants map[string]TenantSnapshot `json:"tenants,omitempty"`

	FleetEnabled       bool   `json:"fleet_enabled"`
	FleetWorkers       int    `json:"fleet_workers"`
	FleetDispatches    uint64 `json:"fleet_dispatches_total"`
	FleetRedispatches  uint64 `json:"fleet_redispatches_total"`
	FleetAcks          uint64 `json:"fleet_acks_total"`
	WorkersQuarantined uint64 `json:"fleet_workers_quarantined_total"`

	StoreEnabled   bool   `json:"store_enabled"`
	Restarts       uint64 `json:"restarts_total"`
	ReplayedJobs   uint64 `json:"jobs_replayed_total"`
	ResumedShards  uint64 `json:"shards_resumed_total"`
	Checkpoints    uint64 `json:"checkpoints_total"`
	ShardRetries   uint64 `json:"shard_retries_total"`
	ShardsPoisoned uint64 `json:"shards_poisoned_total"`
	ShardStalls    uint64 `json:"shard_stalls_total"`
	ShardTimeouts  uint64 `json:"shard_timeouts_total"`
	JournalAppends uint64 `json:"journal_appends_total"`
	JournalSyncs   uint64 `json:"journal_syncs_total"`
	JournalLost    uint64 `json:"journal_lost_total"`

	Pool        core.PoolStats `json:"machine_pool"`
	PoolHitRate float64        `json:"machine_pool_hit_rate"`
	WarmBoot    bool           `json:"machine_pool_warm_boot"`

	SimFastDeliveries uint64 `json:"sim_fast_deliveries_total"`
	SimUnixDeliveries uint64 `json:"sim_unix_deliveries_total"`
	SimExceptions     uint64 `json:"sim_exceptions_total"`
	SimTLBHits        uint64 `json:"sim_tlb_hits_total"`
	SimTLBMisses      uint64 `json:"sim_tlb_misses_total"`
	SimFastPathHits   uint64 `json:"sim_fastpath_hits_total"`
	SimInsts          uint64 `json:"sim_insts_total"`
	SimCycles         uint64 `json:"sim_cycles_total"`

	SimJITBlocks        uint64 `json:"sim_jit_blocks_compiled_total"`
	SimJITExecs         uint64 `json:"sim_jit_block_execs_total"`
	SimJITGuardMisses   uint64 `json:"sim_jit_guard_misses_total"`
	SimJITInvalidations uint64 `json:"sim_jit_invalidations_total"`
}

// snapshot gathers the current counter values plus queue/pool state
// owned by the server.
func (s *Server) snapshot() Snapshot {
	m := s.metrics
	snap := Snapshot{
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		InFlight:      m.InFlight.Load(),
		Draining:      s.isDraining(),

		Admitted:         m.Admitted.Load(),
		RejectedFull:     m.RejectedFull.Load(),
		RejectedDraining: m.RejectedDraining.Load(),
		RejectedTenant:   m.RejectedTenant.Load(),
		BadRequests:      m.BadRequests.Load(),

		Tenants: s.tenants.snapshot(),

		FleetEnabled:       s.fleet != nil,
		FleetWorkers:       len(s.cfg.WorkerNodes),
		FleetDispatches:    m.FleetDispatches.Load(),
		FleetRedispatches:  m.FleetRedispatches.Load(),
		FleetAcks:          m.FleetAcks.Load(),
		WorkersQuarantined: m.WorkersQuarantined.Load(),

		JobsOK:        m.JobsOK.Load(),
		JobsFailed:    m.JobsFailed.Load(),
		JobsCancelled: m.JobsCancelled.Load(),
		JobsEvicted:   m.JobsEvicted.Load(),

		SessionsStarted: m.SessionsStarted.Load(),
		SessionsActive:  s.sessionCount(),
		SessionsEvicted: m.SessionsEvicted.Load(),

		JobsByType: make(map[string]uint64, len(m.byType)),
		Verdicts:   make(map[string]uint64, verdict.NumKinds),

		StoreEnabled:   s.store != nil,
		Restarts:       m.Restarts.Load(),
		ReplayedJobs:   m.ReplayedJobs.Load(),
		ResumedShards:  m.ResumedShards.Load(),
		Checkpoints:    m.Checkpoints.Load(),
		ShardRetries:   m.ShardRetries.Load(),
		ShardsPoisoned: m.ShardsPoisoned.Load(),
		ShardStalls:    m.ShardStalls.Load(),
		ShardTimeouts:  m.ShardTimeouts.Load(),

		Pool:     s.pool.Stats(),
		WarmBoot: s.pool.WarmBoot(),

		SimFastDeliveries: m.SimFastDeliveries.Load(),
		SimUnixDeliveries: m.SimUnixDeliveries.Load(),
		SimExceptions:     m.SimExceptions.Load(),
		SimTLBHits:        m.SimTLBHits.Load(),
		SimTLBMisses:      m.SimTLBMisses.Load(),
		SimFastPathHits:   m.SimFastPathHits.Load(),
		SimInsts:          m.SimInsts.Load(),
		SimCycles:         m.SimCycles.Load(),

		SimJITBlocks:        m.SimJITBlocks.Load(),
		SimJITExecs:         m.SimJITExecs.Load(),
		SimJITGuardMisses:   m.SimJITGuardMisses.Load(),
		SimJITInvalidations: m.SimJITInvalidations.Load(),
	}
	if s.store != nil {
		jst := s.store.Stats()
		snap.JournalAppends = jst.Appends
		snap.JournalSyncs = jst.Syncs
		snap.JournalLost = jst.Lost
	}
	for t, c := range m.byType {
		snap.JobsByType[string(t)] = c.Load()
	}
	for k := verdict.Kind(0); k < verdict.NumKinds; k++ {
		snap.Verdicts[k.String()] = m.Verdicts[k].Load()
	}
	if snap.Pool.Gets > 0 {
		// A recycled machine is a pool hit whichever path scrubbed it:
		// the in-place Reset (Reuses) or the warm-snapshot restore.
		snap.PoolHitRate = float64(snap.Pool.Reuses+snap.Pool.Restores) / float64(snap.Pool.Gets)
	}
	return snap
}

// renderText writes the snapshot in the flat `name value` exposition
// format (Prometheus-style, one counter per line, keys sorted).
func (snap Snapshot) renderText(w io.Writer) {
	lines := map[string]string{
		"uexc_queue_depth":                     fmt.Sprint(snap.QueueDepth),
		"uexc_queue_capacity":                  fmt.Sprint(snap.QueueCapacity),
		"uexc_inflight_jobs":                   fmt.Sprint(snap.InFlight),
		"uexc_draining":                        fmt.Sprint(boolToInt(snap.Draining)),
		"uexc_jobs_admitted_total":             fmt.Sprint(snap.Admitted),
		"uexc_jobs_rejected_full_total":        fmt.Sprint(snap.RejectedFull),
		"uexc_jobs_rejected_draining_total":    fmt.Sprint(snap.RejectedDraining),
		"uexc_jobs_rejected_tenant_total":      fmt.Sprint(snap.RejectedTenant),
		"uexc_fleet_enabled":                   fmt.Sprint(boolToInt(snap.FleetEnabled)),
		"uexc_fleet_workers":                   fmt.Sprint(snap.FleetWorkers),
		"uexc_fleet_dispatches_total":          fmt.Sprint(snap.FleetDispatches),
		"uexc_fleet_redispatches_total":        fmt.Sprint(snap.FleetRedispatches),
		"uexc_fleet_acks_total":                fmt.Sprint(snap.FleetAcks),
		"uexc_fleet_workers_quarantined_total": fmt.Sprint(snap.WorkersQuarantined),
		"uexc_bad_requests_total":              fmt.Sprint(snap.BadRequests),
		"uexc_jobs_ok_total":                   fmt.Sprint(snap.JobsOK),
		"uexc_jobs_failed_total":               fmt.Sprint(snap.JobsFailed),
		"uexc_jobs_cancelled_total":            fmt.Sprint(snap.JobsCancelled),
		"uexc_jobs_evicted_total":              fmt.Sprint(snap.JobsEvicted),
		"uexc_sessions_started_total":          fmt.Sprint(snap.SessionsStarted),
		"uexc_sessions_active":                 fmt.Sprint(snap.SessionsActive),
		"uexc_sessions_evicted_total":          fmt.Sprint(snap.SessionsEvicted),
		"uexc_store_enabled":                   fmt.Sprint(boolToInt(snap.StoreEnabled)),
		"uexc_restarts_total":                  fmt.Sprint(snap.Restarts),
		"uexc_jobs_replayed_total":             fmt.Sprint(snap.ReplayedJobs),
		"uexc_shards_resumed_total":            fmt.Sprint(snap.ResumedShards),
		"uexc_checkpoints_total":               fmt.Sprint(snap.Checkpoints),
		"uexc_shard_retries_total":             fmt.Sprint(snap.ShardRetries),
		"uexc_shards_poisoned_total":           fmt.Sprint(snap.ShardsPoisoned),
		"uexc_shard_stalls_total":              fmt.Sprint(snap.ShardStalls),
		"uexc_shard_timeouts_total":            fmt.Sprint(snap.ShardTimeouts),
		"uexc_journal_appends_total":           fmt.Sprint(snap.JournalAppends),
		"uexc_journal_syncs_total":             fmt.Sprint(snap.JournalSyncs),
		"uexc_journal_lost_total":              fmt.Sprint(snap.JournalLost),
		"uexc_pool_gets_total":                 fmt.Sprint(snap.Pool.Gets),
		"uexc_pool_reuses_total":               fmt.Sprint(snap.Pool.Reuses),
		"uexc_pool_boots_total":                fmt.Sprint(snap.Pool.Boots),
		"uexc_pool_puts_total":                 fmt.Sprint(snap.Pool.Puts),
		"uexc_pool_forks_total":                fmt.Sprint(snap.Pool.Forks),
		"uexc_pool_restores_total":             fmt.Sprint(snap.Pool.Restores),
		"uexc_pool_warm_boot":                  fmt.Sprint(boolToInt(snap.WarmBoot)),
		"uexc_pool_hit_rate":                   fmt.Sprintf("%.4f", snap.PoolHitRate),
		"uexc_sim_fast_deliveries_total":       fmt.Sprint(snap.SimFastDeliveries),
		"uexc_sim_unix_deliveries_total":       fmt.Sprint(snap.SimUnixDeliveries),
		"uexc_sim_exceptions_total":            fmt.Sprint(snap.SimExceptions),
		"uexc_sim_tlb_hits_total":              fmt.Sprint(snap.SimTLBHits),
		"uexc_sim_tlb_misses_total":            fmt.Sprint(snap.SimTLBMisses),
		"uexc_sim_fastpath_hits_total":         fmt.Sprint(snap.SimFastPathHits),
		"uexc_sim_insts_total":                 fmt.Sprint(snap.SimInsts),
		"uexc_sim_cycles_total":                fmt.Sprint(snap.SimCycles),
		"uexc_sim_jit_blocks_compiled_total":   fmt.Sprint(snap.SimJITBlocks),
		"uexc_sim_jit_block_execs_total":       fmt.Sprint(snap.SimJITExecs),
		"uexc_sim_jit_guard_misses_total":      fmt.Sprint(snap.SimJITGuardMisses),
		"uexc_sim_jit_invalidations_total":     fmt.Sprint(snap.SimJITInvalidations),
	}
	for t, n := range snap.JobsByType {
		lines[fmt.Sprintf("uexc_jobs_admitted_by_type_total{type=%q}", t)] = fmt.Sprint(n)
	}
	for v, n := range snap.Verdicts {
		lines[fmt.Sprintf("uexc_run_verdicts_total{verdict=%q}", v)] = fmt.Sprint(n)
	}
	for name, t := range snap.Tenants {
		lines[fmt.Sprintf("uexc_tenant_queued{tenant=%q}", name)] = fmt.Sprint(t.Queued)
		lines[fmt.Sprintf("uexc_tenant_running{tenant=%q}", name)] = fmt.Sprint(t.Running)
		lines[fmt.Sprintf("uexc_tenant_admitted_total{tenant=%q}", name)] = fmt.Sprint(t.Admitted)
		lines[fmt.Sprintf("uexc_tenant_rejected_total{tenant=%q}", name)] = fmt.Sprint(t.Rejected)
	}
	keys := make([]string, 0, len(lines))
	for k := range lines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %s\n", k, lines[k])
	}
}

// renderJSON writes the snapshot as indented JSON.
func (snap Snapshot) renderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
