package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"uexc/internal/parallel"
)

// ShardFault is one injected fault decision for a (job, shard,
// attempt) triple — the chaos harness's hook into the shard runner.
// The zero value injects nothing.
type ShardFault struct {
	// Panic makes the attempt panic instead of running the shard body,
	// simulating a worker crash mid-shard.
	Panic bool
	// Stall delays the attempt by this much before it runs. A stall at
	// or past the shard deadline fails the attempt without sleeping it
	// out, simulating a hung shard hitting its timeout.
	Stall time.Duration
}

// ErrShardPoisoned marks a shard that kept failing after every retry
// and was quarantined, failing its job with a typed error chain:
// errors.Is(err, ErrShardPoisoned) holds for the job's terminal error,
// and errors.As recovers the *ShardError with the shard's identity.
var ErrShardPoisoned = errors.New("poison shard quarantined")

// ShardError is the terminal error of a quarantined shard.
type ShardError struct {
	Job      uint64
	Shard    int
	Attempts int
	Err      error // the last attempt's failure
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("job %d shard %d: %v after %d attempts: %v",
		e.Job, e.Shard, ErrShardPoisoned, e.Attempts, e.Err)
}

func (e *ShardError) Unwrap() []error { return []error{ErrShardPoisoned, e.Err} }

// shardRunner builds the parallel.ShardRunner for one job: every shard
// of the job's sweep gets ShardAttempts executions with exponential
// backoff and deterministic jitter between them; an attempt fails by
// panicking (the engines' shard bodies do not return errors — a panic
// is the only failure a shard can produce) or by an injected fault.
// A shard still failing after the last attempt is quarantined: the
// runner panics with a typed *ShardError, which parallel.ForEachCtx
// re-raises on the job's goroutine and execute converts into the job's
// terminal error. When the job's context dies the runner instead
// returns without having run the shard — the give-up the ShardRunner
// contract allows; MapResumeCtx observes that run never executed and
// keeps the skipped shard out of the checkpoint frontier.
func (s *Server) shardRunner(j *job) parallel.ShardRunner {
	return func(i int, run func()) {
		attempts := s.cfg.ShardAttempts
		var lastErr error
		for a := 0; a < attempts; a++ {
			if a > 0 {
				s.metrics.ShardRetries.Add(1)
				sleepOrCancel(j.ctx, retryBackoff(s.cfg.ShardBackoff, a, j.id, i))
			}
			if j.ctx.Err() != nil {
				// The job is dead (deadline, kill); don't burn a full
				// shard execution the sweep will discard anyway.
				return
			}
			if lastErr = s.attemptShard(j, i, a, run); lastErr == nil {
				return
			}
			if j.ctx.Err() != nil {
				// The job died during the attempt; that's cancellation,
				// not poison — give up without quarantining the shard.
				return
			}
		}
		s.metrics.ShardsPoisoned.Add(1)
		panic(&ShardError{Job: j.id, Shard: i, Attempts: attempts, Err: lastErr})
	}
}

// attemptShard runs one attempt of one shard, applying any injected
// fault and the per-shard deadline, and converts a panic into an
// error the retry loop can count.
func (s *Server) attemptShard(j *job, shard, attempt int, run func()) (err error) {
	var fault ShardFault
	if s.cfg.ShardFault != nil {
		fault = s.cfg.ShardFault(j.id, shard, attempt)
	}
	deadline := s.cfg.ShardDeadline
	if fault.Stall > 0 {
		s.metrics.ShardStalls.Add(1)
		if fault.Stall >= deadline {
			// The stall would outlive the shard deadline: fail the
			// attempt now instead of sleeping the full hang out.
			s.metrics.ShardTimeouts.Add(1)
			return fmt.Errorf("shard %d attempt %d: stalled past the %v deadline", shard, attempt, deadline)
		}
		sleepOrCancel(j.ctx, fault.Stall)
		if jerr := j.ctx.Err(); jerr != nil {
			// The job died while the stall slept; running the shard body
			// now would burn engine time on a result the sweep discards
			// and delay Kill's worker shutdown.
			return fmt.Errorf("shard %d attempt %d: job cancelled during injected stall: %w", shard, attempt, jerr)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard %d attempt %d panicked: %v", shard, attempt, r)
		}
	}()
	if fault.Panic {
		panic(fmt.Sprintf("injected worker panic (job %d shard %d attempt %d)", j.id, shard, attempt))
	}
	start := time.Now()
	run()
	if time.Since(start) > deadline {
		// Cooperative deadline: the interpreter cannot be killed
		// mid-run, so an overlong shard is counted, not aborted.
		s.metrics.ShardTimeouts.Add(1)
	}
	return nil
}

// retryBackoff is the pause before retry `attempt` (1-based): the base
// doubled per attempt, capped at 1s, plus deterministic jitter derived
// from (job, shard, attempt) — seeded, so chaos runs reproduce, yet
// spread, so co-failing shards don't retry in lockstep.
func retryBackoff(base time.Duration, attempt int, job uint64, shard int) time.Duration {
	d := base << (attempt - 1)
	if d > time.Second {
		d = time.Second
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d/%d", job, shard, attempt)
	jitter := time.Duration(h.Sum64() % uint64(d/2+1))
	return d + jitter
}

// sleepOrCancel sleeps d, returning early if ctx dies first.
func sleepOrCancel(ctx interface{ Done() <-chan struct{} }, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
