package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"uexc/internal/harness"
)

// TestDrainWaitsForMidCheckpointJob: SIGTERM arriving while a job is
// mid-checkpoint — blocked inside the journal fsync — must not tear
// the checkpoint or the job: Drain waits, the checkpoint lands, the
// job finishes, and the client still gets the complete stream.
func TestDrainWaitsForMidCheckpointJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	const seeds = 2
	var golden bytes.Buffer
	gres, err := harness.FaultCampaignCtx(context.Background(), nil, seeds, 1, &golden)
	if err != nil {
		t.Fatal(err)
	}
	golden.WriteString(gres.Summary())

	var armed atomic.Bool
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s, err := New(Config{
		Workers: 1, QueueDepth: 2,
		StoreDir: t.TempDir(), CheckpointEvery: 1, StoreSyncEvery: 1,
		// Once armed, the next checkpoint fsync parks until released —
		// the drain signal lands exactly mid-checkpoint.
		StoreSyncDelay: func() {
			if !armed.Load() {
				return
			}
			select {
			case entered <- struct{}{}:
			default:
			}
			<-release
		},
		// Slow every shard slightly so checkpoints keep coming while the
		// test arms the trap.
		ShardFault: func(job uint64, shard, attempt int) ShardFault {
			return ShardFault{Stall: 5 * time.Millisecond}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})

	body, _ := json.Marshal(Request{Type: TypeCampaign, Seeds: seeds, Parallel: 1, Verbose: true})
	type streamed struct {
		output       string
		ok, complete bool
		errText      string
	}
	clientDone := make(chan streamed, 1)
	go func() {
		resp, err := http.Post(hs.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			clientDone <- streamed{errText: err.Error()}
			return
		}
		defer resp.Body.Close()
		var st streamed
		st.output, st.ok, st.complete, st.errText = StreamResult(resp.Body)
		clientDone <- st
	}()

	waitMetric(t, "first checkpoint", func() bool { return s.metrics.Checkpoints.Load() >= 1 })
	armed.Store(true)
	<-entered // a checkpoint fsync is now parked

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	select {
	case <-drained:
		t.Fatal("Drain returned while a checkpoint fsync was still parked")
	case <-time.After(20 * time.Millisecond):
	}

	armed.Store(false)
	close(release)
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("Drain never returned after the checkpoint was released")
	}
	st := <-clientDone
	if !st.complete || !st.ok {
		t.Fatalf("job across a mid-checkpoint drain: ok=%v complete=%v err=%s", st.ok, st.complete, st.errText)
	}
	if st.output != golden.String() {
		t.Errorf("stream differs from the undisturbed run\n--- got ---\n%s--- golden ---\n%s",
			st.output, golden.String())
	}
	if got := s.metrics.JobsOK.Load(); got != 1 {
		t.Errorf("JobsOK = %d, want 1", got)
	}
}

// TestClientDisconnectDuringReplayStream: a client re-attaching to a
// resumed job and hanging up while the journal-replayed prefix is
// still streaming must not disturb the job — it completes, and a later
// attach gets the full byte-identical stream.
func TestClientDisconnectDuringReplayStream(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns across a kill")
	}
	const seeds = 4
	dir := t.TempDir()
	var golden bytes.Buffer
	gres, err := harness.FaultCampaignCtx(context.Background(), nil, seeds, 1, &golden)
	if err != nil {
		t.Fatal(err)
	}
	golden.WriteString(gres.Summary())

	// Incarnation A: checkpoint every shard, stall a late shard to pin
	// the campaign mid-flight, then kill.
	stallShard := harness.CampaignShards(seeds) - 2
	s1, err := New(Config{
		Workers: 1, QueueDepth: 2,
		StoreDir: dir, CheckpointEvery: 1, StoreSyncEvery: 1,
		ShardFault: func(job uint64, shard, attempt int) ShardFault {
			if shard == stallShard {
				return ShardFault{Stall: 30 * time.Second}
			}
			return ShardFault{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1.Handler())
	body, _ := json.Marshal(Request{Type: TypeCampaign, Seeds: seeds, Parallel: 2, Verbose: true})
	posted := make(chan struct{})
	go func() {
		defer close(posted)
		resp, err := http.Post(hs1.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err == nil {
			StreamResult(resp.Body)
			resp.Body.Close()
		}
	}()
	waitMetric(t, "checkpoints before kill", func() bool { return s1.metrics.Checkpoints.Load() >= 3 })
	s1.Kill()
	<-posted
	hs1.Close()

	// Incarnation B: resume, with every live shard slowed so the
	// replayed prefix streams while the job is still running.
	s2, err := New(Config{
		Workers: 1, QueueDepth: 2,
		StoreDir: dir, Resume: true, CheckpointEvery: 1,
		ShardFault: func(job uint64, shard, attempt int) ShardFault {
			return ShardFault{Stall: 5 * time.Millisecond}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		hs2.Close()
		s2.Close()
	})
	if got := s2.metrics.ReplayedJobs.Load(); got != 1 {
		t.Fatalf("ReplayedJobs = %d, want 1", got)
	}

	// Attach, sip two replayed events, and hang up mid-replay.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, hs2.URL+"/jobs/1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 2 && sc.Scan(); i++ {
	}
	cancel()
	resp.Body.Close()

	// The job must still run to completion, undisturbed.
	waitMetric(t, "job completes after disconnect", func() bool { return s2.metrics.JobsOK.Load() == 1 })
	if got := s2.metrics.JobsCancelled.Load(); got != 0 {
		t.Errorf("JobsCancelled = %d, want 0", got)
	}

	full, err := http.Get(hs2.URL + "/jobs/1")
	if err != nil {
		t.Fatal(err)
	}
	defer full.Body.Close()
	out, ok, complete, errText := StreamResult(full.Body)
	if !complete || !ok {
		t.Fatalf("final attach incomplete: ok=%v complete=%v err=%s", ok, complete, errText)
	}
	if out != golden.String() {
		t.Errorf("resumed stream differs from the undisturbed run\n--- got ---\n%s--- golden ---\n%s",
			out, golden.String())
	}
}
