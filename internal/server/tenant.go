package server

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// TenantLimits caps what one tenant (the X-Tenant request header; empty
// means "default") may hold and spend. The zero value is fully
// unlimited — multi-tenancy is opt-in per deployment, and a server
// without limits behaves exactly as before.
type TenantLimits struct {
	// MaxInFlight caps a tenant's admitted-but-unfinished jobs, queued
	// or running (<=0: unlimited).
	MaxInFlight int
	// MaxQueued caps the tenant's jobs waiting for a worker (<=0:
	// unlimited).
	MaxQueued int
	// SeedsPerSec is the token-bucket refill rate in seed units per
	// second: a campaign/difftest admission charges its seed count (a
	// shard-range job charges proportionally), point jobs charge one
	// (<=0: unlimited).
	SeedsPerSec float64
	// SeedBurst is the bucket capacity — how many seed units a tenant
	// may spend at once after idling (<=0: 4 seconds of refill).
	SeedBurst float64
}

// admissionCost is a job's token price in seed units.
func admissionCost(r *Request) float64 {
	space := r.ShardSpace()
	if space == 0 {
		return 1 // program-run / figure-sweep: one engine boot
	}
	cost := float64(r.Seeds)
	if r.ShardTo > 0 {
		cost *= float64(r.ShardTo-r.ShardFrom) / float64(space)
	}
	return math.Max(cost, 1)
}

// tenantState is one tenant's live accounting: two gauges moved
// exactly once per transition (admit -> queued, dequeue -> running,
// finish -> gone), the token bucket, and the admission counters.
type tenantState struct {
	queued, running    int
	tokens             float64
	lastRefill         time.Time
	admitted, rejected uint64
}

// tenantRegistry holds per-tenant state under one lock. Admission
// checks, token charges, and gauge transitions are all atomic with
// respect to each other; Server.admit calls it under s.mu so the
// charge is also atomic with the queue-capacity check.
type tenantRegistry struct {
	mu     sync.Mutex
	limits TenantLimits
	m      map[string]*tenantState
	now    func() time.Time // test seam
}

func newTenantRegistry(limits TenantLimits) *tenantRegistry {
	return &tenantRegistry{limits: limits, m: map[string]*tenantState{}, now: time.Now}
}

func (r *tenantRegistry) state(name string) *tenantState {
	t := r.m[name]
	if t == nil {
		t = &tenantState{tokens: r.burst(), lastRefill: r.now()}
		r.m[name] = t
	}
	return t
}

func (r *tenantRegistry) burst() float64 {
	if r.limits.SeedBurst > 0 {
		return r.limits.SeedBurst
	}
	return r.limits.SeedsPerSec * 4
}

// admit charges one admission against the tenant's quotas. On success
// the job is accounted as queued. On rejection it returns the seconds
// a client should wait before retrying and a client-facing reason.
func (r *tenantRegistry) admit(name string, cost float64) (retryAfter int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.state(name)
	if lim := r.limits.MaxInFlight; lim > 0 && t.queued+t.running >= lim {
		t.rejected++
		return retryAfterSeconds, fmt.Errorf("tenant %q at max in-flight jobs (%d)", name, lim)
	}
	if lim := r.limits.MaxQueued; lim > 0 && t.queued >= lim {
		t.rejected++
		return retryAfterSeconds, fmt.Errorf("tenant %q at max queued jobs (%d)", name, lim)
	}
	if rate := r.limits.SeedsPerSec; rate > 0 {
		now := r.now()
		t.tokens = math.Min(t.tokens+now.Sub(t.lastRefill).Seconds()*rate, r.burst())
		t.lastRefill = now
		if t.tokens < cost {
			t.rejected++
			wait := int(math.Ceil((cost - t.tokens) / rate))
			if wait < 1 {
				wait = 1
			}
			return wait, fmt.Errorf("tenant %q over %g seeds/s (job costs %g seeds, %.1f banked)",
				name, rate, cost, t.tokens)
		}
		t.tokens -= cost
	}
	t.queued++
	t.admitted++
	return 0, nil
}

// release rolls back an admission that failed after the quota charge
// (journal error): the queued slot returns; spent tokens stay spent —
// the journal attempt consumed real work.
func (r *tenantRegistry) release(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.m[name]; t != nil && t.queued > 0 {
		t.queued--
	}
}

// adopt accounts a journal-resumed job as queued WITHOUT charging
// tokens: the admission token was spent in the job's first life, and a
// crash must not double-bill the tenant.
func (r *tenantRegistry) adopt(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.state(name)
	t.queued++
	t.admitted++
}

// start moves one job from queued to running (a worker dequeued it).
func (r *tenantRegistry) start(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.state(name)
	if t.queued > 0 {
		t.queued--
	}
	t.running++
}

// done retires one running job.
func (r *tenantRegistry) done(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.m[name]; t != nil && t.running > 0 {
		t.running--
	}
}

// drop retires one queued job that will never run (Kill's sweep).
func (r *tenantRegistry) drop(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.m[name]; t != nil && t.queued > 0 {
		t.queued--
	}
}

// TenantSnapshot is one tenant's /metrics view.
type TenantSnapshot struct {
	Queued   int     `json:"queued"`
	Running  int     `json:"running"`
	Admitted uint64  `json:"admitted_total"`
	Rejected uint64  `json:"rejected_total"`
	Tokens   float64 `json:"tokens"`
}

// snapshot copies every tenant's state.
func (r *tenantRegistry) snapshot() map[string]TenantSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]TenantSnapshot, len(r.m))
	for name, t := range r.m {
		out[name] = TenantSnapshot{
			Queued: t.queued, Running: t.running,
			Admitted: t.admitted, Rejected: t.rejected,
			Tokens: t.tokens,
		}
	}
	return out
}
