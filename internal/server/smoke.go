package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"uexc/internal/debug"
	dt "uexc/internal/difftest"
	"uexc/internal/harness"
	"uexc/internal/kernel"
)

// SmokeConfig sizes the end-to-end smoke run.
type SmokeConfig struct {
	Jobs        int // loadgen burst size (<=0: 24)
	Concurrency int // loadgen clients (<=0: 8)
	// Server shape for the burst phase.
	Workers, QueueDepth int
}

// Smoke is the serving subsystem's end-to-end self-test, run by
// `make serve-smoke` (and, scaled up, by `make bench-serve`): it
// starts a real uexc-serve instance on an ephemeral port and proves
// the serving contract over actual HTTP:
//
//  1. byte-identity — campaign and difftest job streams reconstruct
//     exactly the CLI's output for the same seeds, at shard width 1
//     and 4;
//  2. backpressure — with a single worker and a tiny queue, saturating
//     admission yields 429 with Retry-After;
//  3. load — a mixed-job loadgen burst completes with zero failed or
//     dropped jobs;
//  4. drain — after Drain begins, new jobs get 503 while the in-flight
//     job runs to completion and still streams its full result;
//  5. tenancy — per-tenant admission quotas reject an over-cap tenant
//     with 429 + Retry-After without touching its neighbours, and every
//     gauge (in-flight, queue depth, per-tenant queued/running) returns
//     to exactly zero once the work drains — the exactly-once
//     transition check;
//  6. accounting — /metrics totals agree exactly with the client-side
//     counts, and no gauge is ever observed negative.
//
// It returns the burst's LoadReport for benchmark recording.
func Smoke(ctx context.Context, out io.Writer, cfg SmokeConfig) (*LoadReport, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 24
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- Run(runCtx, Config{Workers: cfg.Workers, QueueDepth: cfg.QueueDepth, WarmBoot: true}, out, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-runErr:
		return nil, fmt.Errorf("smoke: server failed to start: %v", err)
	case <-time.After(30 * time.Second):
		return nil, fmt.Errorf("smoke: server did not start")
	}
	client := &http.Client{}

	// Phase 1: byte-identity against the in-process engines.
	fmt.Fprintln(out, "smoke: phase 1: stream byte-identity vs CLI engines")
	if err := checkByteIdentity(ctx, client, base); err != nil {
		return nil, fmt.Errorf("smoke: byte-identity: %w", err)
	}

	// Phase 1b: the debug-session gauntlet on the same warm-pool
	// instance: a watchpoint on the kernel trapframe page must hit,
	// state must be inspectable at the pause, and the resumed session
	// must re-run byte-identically.
	fmt.Fprintln(out, "smoke: phase 1b: debug-session watchpoint gauntlet")
	if err := checkDebugSession(client, base); err != nil {
		return nil, fmt.Errorf("smoke: debug-session: %w", err)
	}

	// Phase 2: deterministic backpressure on a deliberately tiny
	// instance (one worker, one queue slot).
	fmt.Fprintln(out, "smoke: phase 2: queue-full backpressure (429)")
	if err := checkBackpressure(ctx, client); err != nil {
		return nil, fmt.Errorf("smoke: backpressure: %w", err)
	}

	// Phase 3: the mixed load burst, then exact accounting against the
	// client-side counts.
	fmt.Fprintf(out, "smoke: phase 3: loadgen burst (%d jobs x %d clients)\n", cfg.Jobs, cfg.Concurrency)
	rep, err := RunLoad(ctx, LoadConfig{
		BaseURL: base, Jobs: cfg.Jobs, Concurrency: cfg.Concurrency, Verbose: true,
	})
	if err != nil {
		return rep, fmt.Errorf("smoke: loadgen: %w", err)
	}
	rep.Render(out)
	// 4 byte-identity jobs + 2 debug sessions + the burst, all ok,
	// nothing queued or running once the burst returns.
	wantAdmitted := uint64(4 + 2 + cfg.Jobs)
	if err := VerifyMetrics(base, func(s Snapshot) error {
		if s.Admitted != wantAdmitted || s.JobsOK != wantAdmitted {
			return fmt.Errorf("admitted/ok = %d/%d, want %d (client-side count)", s.Admitted, s.JobsOK, wantAdmitted)
		}
		if s.JobsFailed != 0 || s.JobsCancelled != 0 {
			return fmt.Errorf("failed=%d cancelled=%d, want 0", s.JobsFailed, s.JobsCancelled)
		}
		if err := checkGauges(s, true); err != nil {
			return err
		}
		// With the warm pool on, recycled checkouts take the snapshot
		// restore path instead of the scrub Reset; either way a machine
		// must have been recycled, and the warm image must have served
		// at least one fork or restore.
		if s.Pool.Gets == 0 || s.Pool.Reuses+s.Pool.Restores == 0 {
			return fmt.Errorf("pool never recycled a machine: %+v", s.Pool)
		}
		if !s.WarmBoot || s.Pool.Forks+s.Pool.Restores == 0 {
			return fmt.Errorf("warm-boot pool never forked or restored: warm=%v %+v", s.WarmBoot, s.Pool)
		}
		if s.SessionsStarted != 2 {
			return fmt.Errorf("sessions_started_total = %d, want 2", s.SessionsStarted)
		}
		if s.SimInsts == 0 || s.SimExceptions == 0 || s.SimTLBMisses == 0 || s.SimFastPathHits == 0 {
			return fmt.Errorf("simulator counters not harvested: %+v", s)
		}
		// Translation-tier gauge integrity: campaign kernels run through
		// the JIT (the default engine), so harvested runs must show
		// blocks both compiled and executed — a zero here means the
		// harvest hook and the tier's counters have come unglued.
		if s.SimJITBlocks == 0 || s.SimJITExecs == 0 {
			return fmt.Errorf("translation-tier counters not harvested: blocks=%d execs=%d",
				s.SimJITBlocks, s.SimJITExecs)
		}
		return nil
	}); err != nil {
		return rep, fmt.Errorf("smoke: metrics accounting: %w", err)
	}
	fmt.Fprintf(out, "smoke: metrics agree with client-side counts (%d admitted, %d ok)\n",
		wantAdmitted, wantAdmitted)

	// Phase 4: drain. A dedicated instance proves both halves of the
	// contract deterministically (rejection of new work, completion of
	// admitted work); then the main instance takes the real SIGTERM
	// path and must shut down cleanly.
	fmt.Fprintln(out, "smoke: phase 4: graceful drain")
	if err := checkDrain(client); err != nil {
		return rep, fmt.Errorf("smoke: drain: %w", err)
	}

	// Phase 5: tenant quotas and gauge integrity on a dedicated
	// limited instance.
	fmt.Fprintln(out, "smoke: phase 5: tenant quotas + gauge integrity")
	if err := checkTenantQuotas(client); err != nil {
		return rep, fmt.Errorf("smoke: tenancy: %w", err)
	}

	cancel() // the SIGTERM path: Run drains, then shuts down
	if err := <-runErr; err != nil {
		return rep, fmt.Errorf("smoke: server shutdown: %v", err)
	}
	fmt.Fprintln(out, "smoke: ok — byte-identity, debug sessions, backpressure, load, drain, tenancy all verified")
	return rep, nil
}

// checkGauges asserts the gauge invariants every phase relies on: no
// gauge — global or per-tenant — may ever read negative, and once the
// instance is quiet they must all have returned to exactly zero. A
// nonzero residue here means a transition was double-counted or
// skipped somewhere in the admit/dequeue/finish path.
func checkGauges(s Snapshot, drained bool) error {
	if s.InFlight < 0 || s.QueueDepth < 0 {
		return fmt.Errorf("negative gauge: inflight=%d queue=%d", s.InFlight, s.QueueDepth)
	}
	for name, ts := range s.Tenants {
		if ts.Queued < 0 || ts.Running < 0 {
			return fmt.Errorf("tenant %q gauge negative: queued=%d running=%d", name, ts.Queued, ts.Running)
		}
		if drained && (ts.Queued != 0 || ts.Running != 0) {
			return fmt.Errorf("tenant %q gauges queued=%d running=%d after drain, want 0/0",
				name, ts.Queued, ts.Running)
		}
	}
	if drained && (s.InFlight != 0 || s.QueueDepth != 0) {
		return fmt.Errorf("gauges inflight=%d queue=%d after drain, want 0/0", s.InFlight, s.QueueDepth)
	}
	return nil
}

// checkTenantQuotas proves multi-tenant admission end to end: a tenant
// at its in-flight cap is refused with 429 + Retry-After, a different
// tenant is admitted untouched, and after the held jobs drain every
// gauge — global and per-tenant — reads exactly zero.
func checkTenantQuotas(client *http.Client) error {
	s, err := New(Config{
		Workers: 2, QueueDepth: 4,
		Tenants: TenantLimits{MaxInFlight: 1},
	})
	if err != nil {
		return err
	}
	defer s.Close()
	release := make(chan struct{})
	var once sync.Once
	rel := func() { once.Do(func() { close(release) }) }
	defer rel()
	s.execHook = func(j *job) (bool, string, error) {
		select {
		case <-release:
			return true, "held job done\n", nil
		case <-j.ctx.Done():
			return false, "", j.ctx.Err()
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = hs.Serve(ln) }()
	defer func() { _ = hs.Close(); <-serveDone }()
	base := "http://" + ln.Addr().String()

	post := func(tenant string) (*http.Response, error) {
		body, _ := json.Marshal(Request{Type: TypeProgramRun, Seed: 1})
		req, _ := http.NewRequest(http.MethodPost, base+"/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		return client.Do(req)
	}
	type streamed struct {
		ok, complete bool
		err          error
	}
	results := make(chan streamed, 2)
	holdJob := func(tenant string) error {
		resp, err := post(tenant)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("tenant %q: status %d, want 200", tenant, resp.StatusCode)
		}
		go func() {
			defer resp.Body.Close()
			var st streamed
			_, st.ok, st.complete, _ = StreamResult(resp.Body)
			results <- st
		}()
		return nil
	}

	if err := holdJob("alpha"); err != nil {
		return err
	}
	if err := waitSnapshot(base, 10*time.Second, func(s Snapshot) bool {
		return s.Tenants["alpha"].Running == 1
	}); err != nil {
		return fmt.Errorf("alpha job never started: %w", err)
	}

	// alpha is at its cap: the second job must bounce with a hint.
	rej, err := post("alpha")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, rej.Body)
	rej.Body.Close()
	if rej.StatusCode != http.StatusTooManyRequests || rej.Header.Get("Retry-After") == "" {
		return fmt.Errorf("over-quota tenant: status %d (Retry-After %q), want 429 with Retry-After",
			rej.StatusCode, rej.Header.Get("Retry-After"))
	}

	// beta's quota is its own: admitted despite alpha's rejection.
	if err := holdJob("beta"); err != nil {
		return fmt.Errorf("quota leaked across tenants: %w", err)
	}

	if err := VerifyMetrics(base, func(s Snapshot) error {
		if s.RejectedTenant != 1 {
			return fmt.Errorf("jobs_rejected_tenant_total = %d, want 1", s.RejectedTenant)
		}
		if s.Tenants["alpha"].Rejected != 1 || s.Tenants["beta"].Admitted != 1 {
			return fmt.Errorf("tenant counters off: %+v", s.Tenants)
		}
		return checkGauges(s, false)
	}); err != nil {
		return err
	}

	rel()
	for i := 0; i < 2; i++ {
		st := <-results
		if st.err != nil || !st.complete || !st.ok {
			return fmt.Errorf("held tenant job %d did not finish cleanly: %+v", i, st)
		}
	}
	if err := waitSnapshot(base, 10*time.Second, func(s Snapshot) bool {
		return s.JobsOK == 2 && s.InFlight == 0
	}); err != nil {
		return fmt.Errorf("held jobs never drained: %w", err)
	}
	return VerifyMetrics(base, func(s Snapshot) error { return checkGauges(s, true) })
}

// checkDrain proves the drain contract on a dedicated instance: once
// Drain begins, new jobs bounce with 503 + Retry-After and /healthz
// reports draining, while the already-admitted job — held in place by
// the exec hook so the check cannot depend on engine speed — still
// runs to completion and streams its full result.
func checkDrain(client *http.Client) error {
	s, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		return err
	}
	defer s.Close()
	release := make(chan struct{})
	var once sync.Once
	rel := func() { once.Do(func() { close(release) }) }
	defer rel() // before s.Close, so the held job can finish
	s.execHook = func(j *job) (bool, string, error) {
		select {
		case <-release:
			return true, "held job done\n", nil
		case <-j.ctx.Done():
			return false, "", j.ctx.Err()
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = hs.Serve(ln) }()
	defer func() { _ = hs.Close(); <-serveDone }()
	base := "http://" + ln.Addr().String()

	held, _ := json.Marshal(Request{Type: TypeProgramRun, Seed: 1})
	type streamed struct {
		ok, complete bool
		output       string
		err          error
	}
	result := make(chan streamed, 1)
	go func() {
		resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(held))
		if err != nil {
			result <- streamed{err: err}
			return
		}
		defer resp.Body.Close()
		var st streamed
		st.output, st.ok, st.complete, _ = StreamResult(resp.Body)
		result <- st
	}()
	if err := waitSnapshot(base, 10*time.Second, func(s Snapshot) bool { return s.InFlight == 1 }); err != nil {
		return fmt.Errorf("held job never admitted: %w", err)
	}

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	deadline := time.Now().Add(30 * time.Second)
	for {
		hres, err := client.Get(base + "/healthz")
		if err != nil {
			return fmt.Errorf("healthz during drain: %v", err)
		}
		io.Copy(io.Discard, hres.Body)
		hres.Body.Close()
		if hres.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("healthz never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	rejBody, _ := json.Marshal(Request{Type: TypeProgramRun, Seed: 9, Mode: "fast"})
	rej, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(rejBody))
	if err != nil {
		return fmt.Errorf("post during drain: %v", err)
	}
	io.Copy(io.Discard, rej.Body)
	rej.Body.Close()
	if rej.StatusCode != http.StatusServiceUnavailable || rej.Header.Get("Retry-After") == "" {
		return fmt.Errorf("job during drain: status %d (Retry-After %q), want 503 with Retry-After",
			rej.StatusCode, rej.Header.Get("Retry-After"))
	}
	select {
	case <-drained:
		return fmt.Errorf("Drain returned while the admitted job was still running")
	default:
	}

	rel()
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("Drain did not return after the held job finished")
	}
	st := <-result
	if st.err != nil || !st.complete || !st.ok || st.output != "held job done\n" {
		return fmt.Errorf("admitted job did not finish cleanly across the drain: %+v", st)
	}
	return VerifyMetrics(base, func(s Snapshot) error {
		if s.Admitted != 1 || s.JobsOK != 1 || s.RejectedDraining != 1 {
			return fmt.Errorf("admitted/ok/rejectedDraining = %d/%d/%d, want 1/1/1",
				s.Admitted, s.JobsOK, s.RejectedDraining)
		}
		return nil
	})
}

// checkBackpressure saturates a deliberately tiny instance (one
// worker, one queue slot) and demands a 429 with Retry-After. The two
// occupying jobs are gated on a release channel through the exec hook,
// so the worker and the queue slot stay full — independent of how fast
// the engines happen to run — until the 429 has been observed.
func checkBackpressure(ctx context.Context, client *http.Client) error {
	s, err := New(Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		return err
	}
	defer s.Close()
	release := make(chan struct{})
	var once sync.Once
	rel := func() { once.Do(func() { close(release) }) }
	defer rel() // before s.Close, so held jobs can finish
	s.execHook = func(j *job) (bool, string, error) {
		select {
		case <-release:
			return true, "held job done\n", nil
		case <-j.ctx.Done():
			return false, "", j.ctx.Err()
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = hs.Serve(ln) }()
	defer func() { _ = hs.Close(); <-serveDone }()
	base := "http://" + ln.Addr().String()

	held, _ := json.Marshal(Request{Type: TypeProgramRun, Seed: 1})
	type streamed struct {
		ok, complete bool
		status       int
		err          error
	}
	results := make(chan streamed, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(held))
			if err != nil {
				results <- streamed{err: err}
				return
			}
			defer resp.Body.Close()
			st := streamed{status: resp.StatusCode}
			if resp.StatusCode == http.StatusOK {
				_, st.ok, st.complete, _ = StreamResult(resp.Body)
			}
			results <- st
		}()
		// Admit strictly in turn: the first job must be on the worker
		// (in flight, dequeued) before the second takes the queue slot,
		// or the second would itself bounce off the full queue.
		want := func(s Snapshot) bool { return s.InFlight == 1 && s.QueueDepth == 0 }
		if i == 1 {
			want = func(s Snapshot) bool { return s.InFlight == 1 && s.QueueDepth == 1 }
		}
		if err := waitSnapshot(base, 10*time.Second, want); err != nil {
			return fmt.Errorf("saturation step %d never observed: %w", i, err)
		}
	}

	probe, _ := json.Marshal(Request{Type: TypeProgramRun, Seed: 3, Mode: "fast"})
	resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(probe))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		return fmt.Errorf("queue-full POST: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		return fmt.Errorf("429 without a Retry-After header")
	}

	rel()
	for i := 0; i < 2; i++ {
		st := <-results
		if st.err != nil || !st.complete || !st.ok {
			return fmt.Errorf("slow job %d did not finish cleanly: %+v", i, st)
		}
	}
	return VerifyMetrics(base, func(s Snapshot) error {
		if s.Admitted != 2 || s.JobsOK != 2 || s.RejectedFull != 1 {
			return fmt.Errorf("admitted/ok/rejected = %d/%d/%d, want 2/2/1", s.Admitted, s.JobsOK, s.RejectedFull)
		}
		return nil
	})
}

// waitSnapshot polls /metrics until cond holds or the deadline lapses.
func waitSnapshot(base string, timeout time.Duration, cond func(Snapshot) bool) error {
	deadline := time.Now().Add(timeout)
	for {
		var got Snapshot
		if err := VerifyMetrics(base, func(s Snapshot) error { got = s; return nil }); err != nil {
			return err
		}
		if cond(got) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("condition never held; last snapshot: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkByteIdentity proves the serving layer's central guarantee: a
// job stream, reconstructed as progress-lines + summary, is byte-
// identical to the CLI's (stderr -v stream + stdout summary) for the
// same seeds — at more than one shard width.
func checkByteIdentity(ctx context.Context, client *http.Client, base string) error {
	const seeds = 5
	var cliCampaign bytes.Buffer
	cres, err := harness.FaultCampaignCtx(ctx, nil, seeds, 1, &cliCampaign)
	if err != nil {
		return err
	}
	cliCampaign.WriteString(cres.Summary())

	var cliDiff bytes.Buffer
	dres, err := dt.CampaignCtx(ctx, nil, seeds, 1, &cliDiff)
	if err != nil {
		return err
	}
	cliDiff.WriteString(dres.Summary())

	for _, tc := range []struct {
		req  Request
		want string
	}{
		{Request{Type: TypeCampaign, Seeds: seeds, Parallel: 1, Verbose: true}, cliCampaign.String()},
		{Request{Type: TypeCampaign, Seeds: seeds, Parallel: 4, Verbose: true}, cliCampaign.String()},
		{Request{Type: TypeDifftest, Seeds: seeds, Parallel: 1, Verbose: true}, cliDiff.String()},
		{Request{Type: TypeDifftest, Seeds: seeds, Parallel: 4, Verbose: true}, cliDiff.String()},
	} {
		body, _ := json.Marshal(tc.req)
		resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("%s parallel %d: status %d", tc.req.Type, tc.req.Parallel, resp.StatusCode)
		}
		got, ok, complete, errText := StreamResult(resp.Body)
		resp.Body.Close()
		if !complete || !ok {
			return fmt.Errorf("%s parallel %d: stream incomplete (ok=%v, err=%s)", tc.req.Type, tc.req.Parallel, ok, errText)
		}
		if got != tc.want {
			return fmt.Errorf("%s parallel %d: stream output differs from CLI\n--- server ---\n%s\n--- cli ---\n%s",
				tc.req.Type, tc.req.Parallel, got, tc.want)
		}
	}
	return nil
}

// checkDebugSession proves the debug-session contract end to end: a
// virtual watchpoint on the kernel trapframe page (a kernel DATA page
// — the Ultrix slow path stores every trapped register there) must
// pause the run at the first delivery, the paused state must be
// inspectable, and resuming must finish the job — twice, with the two
// transcripts byte-identical, since a journaled session is re-run
// deterministically after a restart.
func checkDebugSession(client *http.Client, base string) error {
	tf := uint32(kernel.KStackTop - kernel.TrapframeSize)
	req := Request{Type: TypeDebugSession, Seed: 1, Mode: "ultrix", Verbose: true,
		Commands: []debug.Command{
			{Op: "watch-page", Addr: tf},
			{Op: "continue"},
			{Op: "inspect", Addr: tf, N: 8},
			{Op: "regs"},
			{Op: "step", N: 4},
			{Op: "inspect", Addr: tf, N: 8},
			{Op: "clear", Addr: tf},
			{Op: "continue"},
		}}
	run := func() (string, error) {
		body, _ := json.Marshal(req)
		resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %d, want 200", resp.StatusCode)
		}
		out, ok, complete, errText := StreamResult(resp.Body)
		if !complete || !ok {
			return "", fmt.Errorf("stream incomplete (ok=%v, err=%s)", ok, errText)
		}
		return out, nil
	}
	first, err := run()
	if err != nil {
		return err
	}
	if !strings.Contains(first, "hit watch") {
		return fmt.Errorf("watchpoint on the trapframe page never hit:\n%s", first)
	}
	if !strings.Contains(first, "inspect") || !strings.Contains(first, "exit: status=") {
		return fmt.Errorf("session did not inspect and resume to completion:\n%s", first)
	}
	second, err := run()
	if err != nil {
		return err
	}
	if first != second {
		return fmt.Errorf("re-run session transcript differs\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	return nil
}

// VerifyMetrics cross-checks a /metrics snapshot against client-side
// expectations; used by the smoke binary after its phases complete.
func VerifyMetrics(base string, check func(Snapshot) error) error {
	resp, err := http.Get(base + "/metrics?format=json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return err
	}
	return check(snap)
}
