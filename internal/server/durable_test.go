package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uexc/internal/harness"
)

// waitMetric polls a server-side condition until it holds or the
// deadline lapses. Test goroutine only.
func waitMetric(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: condition never held", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDurableJobSurvivesKillAndResumes is the acceptance scenario: a
// campaign job is admitted on a durable server, the server is killed
// mid-campaign (journal abandoned mid-batch, no finish record), and a
// fresh incarnation opened on the same store with Resume re-admits the
// job, resumes it from the durable shard prefix, and streams — via
// GET /jobs/{id} re-attach — output byte-identical to a run that was
// never interrupted.
func TestDurableJobSurvivesKillAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns across a kill")
	}
	const seeds = 6
	dir := t.TempDir()

	// The undisturbed golden: CLI stream + summary at shard width 1.
	var golden bytes.Buffer
	gres, err := harness.FaultCampaignCtx(context.Background(), nil, seeds, 1, &golden)
	if err != nil {
		t.Fatal(err)
	}
	golden.WriteString(gres.Summary())

	// Incarnation A: checkpoint every merged shard, and stall one late
	// shard so the campaign reliably outlives the kill trigger.
	stallShard := harness.CampaignShards(seeds) - 3
	s1, err := New(Config{
		Workers: 1, QueueDepth: 4,
		StoreDir: dir, CheckpointEvery: 1, StoreSyncEvery: 1,
		ShardFault: func(job uint64, shard, attempt int) ShardFault {
			if shard == stallShard {
				return ShardFault{Stall: 30 * time.Second}
			}
			return ShardFault{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1.Handler())

	body, _ := json.Marshal(Request{Type: TypeCampaign, Seeds: seeds, Parallel: 2, Verbose: true})
	type streamed struct {
		ok, complete bool
		errText      string
	}
	clientDone := make(chan streamed, 1)
	go func() {
		resp, err := http.Post(hs1.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			clientDone <- streamed{errText: err.Error()}
			return
		}
		defer resp.Body.Close()
		var st streamed
		_, st.ok, st.complete, st.errText = StreamResult(resp.Body)
		clientDone <- st
	}()

	// Kill only after real progress is durable: several checkpoints
	// fsynced, while the stalled shard pins the job mid-flight.
	waitMetric(t, "checkpoints before kill", func() bool {
		return s1.metrics.Checkpoints.Load() >= 5 && s1.metrics.ShardStalls.Load() >= 1
	})
	s1.Kill()
	// An in-process kill cannot cut the TCP stream the way a real
	// SIGKILL does, but the job must have died unfinished — and the
	// journal must carry no finish record (proven below by the replay).
	if st := <-clientDone; st.ok {
		t.Fatalf("job finished ok across a kill: %+v", st)
	}
	hs1.Close()
	if got := s1.metrics.JobsCancelled.Load(); got != 1 {
		t.Errorf("incarnation A JobsCancelled = %d, want 1", got)
	}

	// Incarnation B: same store, resume on. No faults this time.
	s2, err := New(Config{Workers: 1, QueueDepth: 4, StoreDir: dir, Resume: true, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		hs2.Close()
		s2.Close()
	})

	if got := s2.metrics.Restarts.Load(); got != 1 {
		t.Errorf("Restarts = %d, want 1", got)
	}
	if got := s2.metrics.ReplayedJobs.Load(); got != 1 {
		t.Fatalf("ReplayedJobs = %d, want 1", got)
	}
	if got := s2.metrics.ResumedShards.Load(); got == 0 {
		t.Error("ResumedShards = 0; the durable prefix was lost")
	}
	if got := s2.metrics.ResumedShards.Load(); got > uint64(stallShard) {
		t.Errorf("ResumedShards = %d, beyond the stalled shard %d", got, stallShard)
	}

	// Re-attach to the replayed job and demand the undisturbed bytes.
	resp, err := http.Get(hs2.URL + "/jobs/1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/1: status %d", resp.StatusCode)
	}
	out, ok, complete, errText := StreamResult(resp.Body)
	if !complete || !ok {
		t.Fatalf("resumed job did not complete cleanly: ok=%v complete=%v err=%s", ok, complete, errText)
	}
	if out != golden.String() {
		t.Errorf("resumed stream differs from the undisturbed run\n--- resumed ---\n%s--- golden ---\n%s",
			out, golden.String())
	}
	if got := s2.metrics.JobsOK.Load(); got != 1 {
		t.Errorf("incarnation B JobsOK = %d, want 1", got)
	}
}

// TestDurableClientDisconnectDoesNotCancel: with a store, a client
// walking away mid-stream leaves the journaled job running; its result
// is recovered later via GET /jobs/{id}.
func TestDurableClientDisconnectDoesNotCancel(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 2, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.execHook = func(j *job) (bool, string, error) {
		select {
		case <-release:
			return true, "durable job done\n", nil
		case <-j.ctx.Done():
			return false, "", j.ctx.Err()
		}
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})

	body, _ := json.Marshal(Request{Type: TypeProgramRun, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/jobs", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	waitMetric(t, "job in flight", func() bool { return s.metrics.InFlight.Load() == 1 })
	cancel() // client walks away
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The job must still be running: only release ends it.
	time.Sleep(20 * time.Millisecond)
	if got := s.metrics.InFlight.Load(); got != 1 {
		t.Fatalf("InFlight = %d after disconnect; a durable job must not be cancelled by its client", got)
	}
	close(release)
	waitMetric(t, "job finished", func() bool { return s.metrics.JobsOK.Load() == 1 })

	// Recover the full stream by re-attaching.
	rresp, err := http.Get(hs.URL + "/jobs/1")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	out, ok, complete, errText := StreamResult(rresp.Body)
	if !complete || !ok || out != "durable job done\n" {
		t.Errorf("re-attached stream: ok=%v complete=%v out=%q err=%s", ok, complete, out, errText)
	}
	if got := s.metrics.JobsCancelled.Load(); got != 0 {
		t.Errorf("JobsCancelled = %d, want 0", got)
	}
}

// TestPoisonShardQuarantine: a shard that fails every attempt is
// quarantined after ShardAttempts tries, failing the job with the
// typed *ShardError chain, while a transiently failing shard is
// retried into success with byte-identical output.
func TestPoisonShardQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns")
	}
	const seeds = 2
	s, base := startTest(t, Config{
		Workers: 1, QueueDepth: 2,
		ShardAttempts: 2, ShardBackoff: time.Millisecond,
		ShardFault: func(job uint64, shard, attempt int) ShardFault {
			return ShardFault{Panic: shard == 3}
		},
	})
	out, ok, errText, status, _ := postStream(t, base,
		Request{Type: TypeCampaign, Seeds: seeds, Parallel: 1})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if ok {
		t.Fatalf("job succeeded with a poison shard: %s", out)
	}
	for _, want := range []string{"poison shard quarantined", "shard 3", "2 attempts"} {
		if !strings.Contains(errText, want) {
			t.Errorf("terminal error %q missing %q", errText, want)
		}
	}
	if got := s.metrics.ShardsPoisoned.Load(); got != 1 {
		t.Errorf("ShardsPoisoned = %d, want 1", got)
	}
	if got := s.metrics.ShardRetries.Load(); got != 1 {
		t.Errorf("ShardRetries = %d, want 1 (one retry before quarantine)", got)
	}
	if got := s.metrics.JobsFailed.Load(); got != 1 {
		t.Errorf("JobsFailed = %d, want 1 (quarantine is a failure, not a cancellation)", got)
	}
}

// TestTransientShardPanicRetriedByteIdentical: a shard panicking on
// its first attempt only is retried and the job's stream still equals
// the undisturbed CLI output — retries cannot perturb the
// deterministic merge.
func TestTransientShardPanicRetriedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns")
	}
	const seeds = 3
	var golden bytes.Buffer
	gres, err := harness.FaultCampaignCtx(context.Background(), nil, seeds, 1, &golden)
	if err != nil {
		t.Fatal(err)
	}
	golden.WriteString(gres.Summary())

	s, base := startTest(t, Config{
		Workers: 1, QueueDepth: 2,
		ShardAttempts: 3, ShardBackoff: time.Millisecond,
		ShardFault: func(job uint64, shard, attempt int) ShardFault {
			return ShardFault{Panic: shard == 2 && attempt == 0}
		},
	})
	out, ok, errText, _, _ := postStream(t, base,
		Request{Type: TypeCampaign, Seeds: seeds, Parallel: 2, Verbose: true})
	if !ok {
		t.Fatalf("job failed despite retry budget: %s", errText)
	}
	if out != golden.String() {
		t.Errorf("retried stream differs from the undisturbed run\n--- retried ---\n%s--- golden ---\n%s",
			out, golden.String())
	}
	if got := s.metrics.ShardRetries.Load(); got != 1 {
		t.Errorf("ShardRetries = %d, want 1", got)
	}
	if got := s.metrics.ShardsPoisoned.Load(); got != 0 {
		t.Errorf("ShardsPoisoned = %d, want 0", got)
	}
}

// TestShardErrorChain: the quarantine error is typed end to end —
// errors.Is sees ErrShardPoisoned, errors.As recovers the shard's
// identity, and the last attempt's failure is preserved as the cause.
func TestShardErrorChain(t *testing.T) {
	s := newT(t, Config{Workers: 1, QueueDepth: 1, ShardAttempts: 2, ShardBackoff: time.Microsecond})
	defer s.Close()
	j := &job{id: 7, log: newEventLog()}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	defer j.cancel()

	run := s.shardRunner(j)
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		run(3, func() { panic("flaky hardware") })
	}()
	err, isErr := recovered.(error)
	if !isErr {
		t.Fatalf("quarantine panicked with %T, want *ShardError", recovered)
	}
	if !errors.Is(err, ErrShardPoisoned) {
		t.Errorf("errors.Is(err, ErrShardPoisoned) = false for %v", err)
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("errors.As failed for %v", err)
	}
	if se.Job != 7 || se.Shard != 3 || se.Attempts != 2 {
		t.Errorf("ShardError = %+v, want job 7 shard 3 attempts 2", se)
	}
	if se.Err == nil || !strings.Contains(se.Err.Error(), "flaky hardware") {
		t.Errorf("cause %v does not preserve the attempt failure", se.Err)
	}
}

// TestRetryBackoffDeterministicAndBounded: the backoff schedule is a
// pure function of (base, attempt, job, shard), grows exponentially,
// and never exceeds base*2^k + 50% jitter capped at 1.5s.
func TestRetryBackoffDeterministicAndBounded(t *testing.T) {
	base := 5 * time.Millisecond
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := retryBackoff(base, attempt, 42, 7)
		d2 := retryBackoff(base, attempt, 42, 7)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d1, d2)
		}
		exp := base << (attempt - 1)
		if exp > time.Second {
			exp = time.Second
		}
		if d1 < exp || d1 > exp+exp/2 {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d1, exp, exp+exp/2)
		}
	}
	if retryBackoff(base, 1, 42, 7) == retryBackoff(base, 1, 42, 8) &&
		retryBackoff(base, 1, 42, 7) == retryBackoff(base, 1, 42, 9) {
		t.Error("jitter identical across shards; retries would thunder in lockstep")
	}
}

// TestJobReattachRouting: /jobs/{id} rejects bad methods, bad IDs, and
// unknown jobs.
func TestJobReattachRouting(t *testing.T) {
	_, base := startTest(t, Config{Workers: 1, QueueDepth: 1})
	for path, want := range map[string]int{
		"/jobs/999": http.StatusNotFound,
		"/jobs/abc": http.StatusBadRequest,
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	resp, err := http.Post(base+"/jobs/1", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /jobs/1: status %d, want 405", resp.StatusCode)
	}
}

// TestStreamResultTrailerIntegrity: the client-side verifier rejects
// truncated streams, record-count lies, and fingerprint mismatches,
// and accepts a well-formed stream.
func TestStreamResultTrailerIntegrity(t *testing.T) {
	okv := true
	lines := func(evs ...Event) (string, string) {
		var b strings.Builder
		h := fnv.New64a()
		for _, ev := range evs {
			blob, _ := json.Marshal(ev)
			b.Write(blob)
			b.WriteByte('\n')
			h.Write(blob)
			h.Write([]byte{'\n'})
		}
		return b.String(), fmt.Sprintf("%016x", h.Sum64())
	}
	body, fp := lines(
		Event{Type: "accepted", ID: 1, Job: "program-run"},
		Event{Type: "progress", Line: "line one\n"},
		Event{Type: "result", ID: 1, OK: &okv, Summary: "done\n"},
	)
	trailer, _ := json.Marshal(Event{Type: "trailer", ID: 1, Records: 3, FNV: fp})

	out, ok, complete, errText := StreamResult(strings.NewReader(body + string(trailer) + "\n"))
	if !complete || !ok || out != "line one\ndone\n" {
		t.Fatalf("valid stream rejected: ok=%v complete=%v out=%q err=%s", ok, complete, out, errText)
	}

	// Truncated: result but no trailer.
	if _, _, complete, errText = StreamResult(strings.NewReader(body)); complete ||
		!strings.Contains(errText, "integrity trailer") {
		t.Errorf("truncated stream: complete=%v err=%q", complete, errText)
	}

	// Record-count lie.
	badCount, _ := json.Marshal(Event{Type: "trailer", ID: 1, Records: 2, FNV: fp})
	if _, _, complete, errText = StreamResult(strings.NewReader(body + string(badCount) + "\n")); complete ||
		!strings.Contains(errText, "records") {
		t.Errorf("bad record count: complete=%v err=%q", complete, errText)
	}

	// Fingerprint mismatch.
	badFP, _ := json.Marshal(Event{Type: "trailer", ID: 1, Records: 3, FNV: "0000000000000000"})
	if _, _, complete, errText = StreamResult(strings.NewReader(body + string(badFP) + "\n")); complete ||
		!strings.Contains(errText, "fingerprint") {
		t.Errorf("bad fingerprint: complete=%v err=%q", complete, errText)
	}
}
