// Package server is uexc's long-lived serving layer: it exposes the
// repository's engines — fault-injection campaigns, the cross-mode
// differential oracle, figure sweeps, single program runs — as an HTTP
// job service built for sustained concurrent load.
//
// Architecture (DESIGN.md §11):
//
//   - Admission control. POST /jobs validates the request and admits
//     it into a bounded queue. A full queue answers 429 with
//     Retry-After — explicit backpressure instead of unbounded memory
//     — and a draining server answers 503.
//   - Execution. A fixed worker pool drains the queue. All jobs share
//     one core.MachinePool, so booted machines are recycled across
//     requests, not just within one campaign; the pool's Harvest hook
//     accumulates every run's simulator counters for /metrics.
//   - Streaming. The response is NDJSON: an accepted event, optional
//     per-run progress events (the engines' ordered progress stream,
//     byte-identical to the CLI at any shard width), and a terminal
//     result event carrying the exact summary text the CLI prints.
//   - Deadlines. Every job runs under a context bounded by the
//     server's maximum timeout (tightened per request), cancelled too
//     when the client disconnects; cancellation propagates through
//     internal/parallel into the campaign loops.
//   - Drain. Drain stops admission, lets every admitted job finish and
//     flush its stream, and only then lets shutdown proceed — wired to
//     SIGTERM by cmd/uexc-serve.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"uexc/internal/core"
)

// Config sizes the service.
type Config struct {
	// Addr is the listen address for Run ("" picks 127.0.0.1:0, the
	// ephemeral-port form the smoke harness uses).
	Addr string
	// Workers is the number of jobs executing concurrently (<=0: 4).
	Workers int
	// QueueDepth is the waiting-room capacity beyond the running
	// workers; the Workers+QueueDepth'th concurrent job gets 429
	// (<=0: 16).
	QueueDepth int
	// MaxJobTimeout bounds every job's execution time and is the
	// default when a request does not set timeout_ms (<=0: 120s).
	MaxJobTimeout time.Duration
	// MaxSeeds caps campaign/difftest sweep sizes per job (<=0: 5000).
	MaxSeeds int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxJobTimeout <= 0 {
		c.MaxJobTimeout = 120 * time.Second
	}
	if c.MaxSeeds <= 0 {
		c.MaxSeeds = 5000
	}
	return c
}

// Server is one serving instance. Create with New, expose via
// Handler, stop with Drain (keeps workers alive, rejects new work)
// and Close (drain + retire the workers).
type Server struct {
	cfg     Config
	pool    *core.MachinePool
	metrics *Metrics
	queue   chan *job
	stop    chan struct{}
	nextID  atomic.Uint64
	mux     *http.ServeMux

	mu       sync.Mutex // guards draining and the admit/Drain race
	draining bool
	jobWG    sync.WaitGroup // admitted jobs not yet finished

	workerWG sync.WaitGroup

	// execHook, when non-nil, replaces runJob — a seam the tests and
	// the smoke harness use to hold jobs in place, making queue-full
	// and drain conditions deterministic regardless of engine speed.
	execHook func(j *job) (bool, string, error)
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    &core.MachinePool{},
		metrics: newMetrics(),
		queue:   make(chan *job, cfg.QueueDepth),
		stop:    make(chan struct{}),
	}
	s.pool.Harvest = s.metrics.harvest

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	for w := 0; w < cfg.Workers; w++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP surface: /jobs, /metrics, /healthz, and
// /debug/pprof.
func (s *Server) Handler() http.Handler { return s.mux }

// isDraining reports whether admission is closed.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain closes admission and blocks until every already-admitted job
// has finished executing (its stream may still be flushing to a slow
// client; HTTP shutdown handles that wait). Idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.jobWG.Wait()
}

// Close drains and then retires the worker pool.
func (s *Server) Close() {
	s.Drain()
	s.mu.Lock()
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.mu.Unlock()
	s.workerWG.Wait()
}

// admit tries to place a job in the queue. The lock makes the
// draining check and the WaitGroup add atomic with respect to Drain:
// after Drain returns, no job can be admitted and every admitted job
// has been counted.
func (s *Server) admit(j *job) (status int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.metrics.RejectedDraining.Add(1)
		return http.StatusServiceUnavailable
	}
	select {
	case s.queue <- j:
		s.jobWG.Add(1)
		s.metrics.Admitted.Add(1)
		s.metrics.byType[j.req.Type].Add(1)
		return http.StatusOK
	default:
		s.metrics.RejectedFull.Add(1)
		return http.StatusTooManyRequests
	}
}

// worker executes queued jobs until the server closes.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case j := <-s.queue:
			s.execute(j)
		case <-s.stop:
			// Drain already emptied the queue (Close drains first), so
			// nothing is abandoned here.
			return
		}
	}
}

// execute runs one job to completion and emits its terminal event.
func (s *Server) execute(j *job) {
	defer s.jobWG.Done()
	defer j.cancel()
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)

	start := time.Now()
	var (
		ok      bool
		summary string
		err     error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				ok, summary, err = false, "", fmt.Errorf("job panicked: %v", r)
			}
		}()
		if s.execHook != nil {
			ok, summary, err = s.execHook(j)
		} else {
			ok, summary, err = s.runJob(j)
		}
	}()

	switch {
	case ok:
		s.metrics.JobsOK.Add(1)
	case j.ctx.Err() != nil:
		s.metrics.JobsCancelled.Add(1)
	default:
		s.metrics.JobsFailed.Add(1)
	}

	ev := Event{
		Type: "result", ID: j.id, OK: &ok, Summary: summary,
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	if err != nil {
		ev.Error = err.Error()
	}
	j.emit(ev)
	close(j.events)
}

// retryAfterSeconds is the backpressure hint on 429/503 responses.
const retryAfterSeconds = 1

// handleJobs is POST /jobs: validate, admit, stream.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, 1<<16)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.metrics.BadRequests.Add(1)
		http.Error(w, "malformed job: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.Validate(s.cfg.MaxSeeds); err != nil {
		s.metrics.BadRequests.Add(1)
		http.Error(w, "invalid job: "+err.Error(), http.StatusBadRequest)
		return
	}

	timeout := s.cfg.MaxJobTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	j := &job{
		id:        s.nextID.Add(1),
		req:       req,
		ctx:       ctx,
		streamCtx: r.Context(),
		cancel:    cancel,
		events:    make(chan Event, 64),
	}
	if status := s.admit(j); status != http.StatusOK {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		msg := "queue full, retry later"
		if status == http.StatusServiceUnavailable {
			msg = "server draining, not admitting jobs"
		}
		http.Error(w, msg, status)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	_ = enc.Encode(Event{Type: "accepted", ID: j.id, Job: string(req.Type)})
	flush()
	for ev := range j.events {
		if err := enc.Encode(ev); err != nil {
			// Client gone: stop writing but keep draining so the worker's
			// sends never block (its emits fall through on ctx.Done once
			// the request context is cancelled).
			break
		}
		flush()
	}
}

// handleMetrics is GET /metrics: flat text by default, JSON with
// ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = snap.renderJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	snap.renderText(w)
}

// handleHealthz reports readiness: 200 while admitting, 503 while
// draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// Run serves cfg.Addr until ctx is cancelled (SIGTERM in
// cmd/uexc-serve), then drains gracefully: admission closes, admitted
// jobs finish and flush, and only then does the listener shut down.
// The bound address is reported through ready (buffered; may be nil)
// as soon as the listener is up.
func Run(ctx context.Context, cfg Config, logw io.Writer, ready chan<- string) error {
	s := New(cfg)
	defer s.Close()

	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	if logw != nil {
		fmt.Fprintf(logw, "uexc-serve: listening on %s (workers %d, queue %d)\n",
			ln.Addr(), s.cfg.Workers, s.cfg.QueueDepth)
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	if logw != nil {
		fmt.Fprintln(logw, "uexc-serve: drain: admission closed, finishing in-flight jobs")
	}
	s.Drain()
	// Streams may still be flushing; Shutdown waits for the handlers.
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err = hs.Shutdown(shutCtx)
	if logw != nil {
		fmt.Fprintln(logw, "uexc-serve: drained, bye")
	}
	return err
}
