// Package server is uexc's long-lived serving layer: it exposes the
// repository's engines — fault-injection campaigns, the cross-mode
// differential oracle, figure sweeps, single program runs — as an HTTP
// job service built for sustained concurrent load.
//
// Architecture (DESIGN.md §11, durability §12):
//
//   - Admission control. POST /jobs validates the request and admits
//     it into a bounded queue. A full queue answers 429 with
//     Retry-After — explicit backpressure instead of unbounded memory
//     — and a draining server answers 503.
//   - Execution. A fixed worker pool drains the queue. All jobs share
//     one core.MachinePool, so booted machines are recycled across
//     requests, not just within one campaign; the pool's Harvest hook
//     accumulates every run's simulator counters for /metrics.
//   - Streaming. The response is NDJSON: an accepted event, optional
//     per-run progress events (the engines' ordered progress stream,
//     byte-identical to the CLI at any shard width), a terminal result
//     event carrying the exact summary text the CLI prints, and an
//     integrity trailer (record count + FNV-1a fingerprint). Every
//     job's events are retained in a replayable log, so a stream can
//     re-attach via GET /jobs/{id} after a disconnect or a restart;
//     finished jobs stay re-attachable for JobRetention and are then
//     evicted so the log store does not grow without bound.
//   - Durability. With StoreDir set, admissions, shard checkpoints,
//     and terminal verdicts go through a write-ahead journal
//     (internal/server/store). A killed server restarted with Resume
//     re-admits the journal's pending jobs and resumes each from its
//     durable shard prefix, reproducing the interrupted stream byte
//     for byte.
//   - Retry. Campaign/difftest shards run under a shard runner:
//     bounded retries with exponential backoff and deterministic
//     jitter, a per-shard deadline, and poison-shard quarantine via a
//     typed *ShardError chain.
//   - Deadlines. Every job runs under a context bounded by the
//     server's maximum timeout (tightened per request). Ephemeral jobs
//     (no store) are cancelled when their client disconnects; durable
//     jobs keep running — their stream is re-attachable.
//   - Drain. Drain stops admission, lets every admitted job finish and
//     flush its stream, and only then lets shutdown proceed — wired to
//     SIGTERM by cmd/uexc-serve. Kill is the opposite: a simulated
//     crash (no drain, journal tail dropped) for the chaos harness.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"uexc/internal/core"
	"uexc/internal/server/store"
)

// Config sizes the service.
type Config struct {
	// Addr is the listen address for Run ("" picks 127.0.0.1:0, the
	// ephemeral-port form the smoke harness uses).
	Addr string
	// Workers is the number of jobs executing concurrently (<=0: 4).
	Workers int
	// QueueDepth is the waiting-room capacity beyond the running
	// workers; the Workers+QueueDepth'th concurrent job gets 429
	// (<=0: 16).
	QueueDepth int
	// MaxJobTimeout bounds every job's execution time and is the
	// default when a request does not set timeout_ms (<=0: 120s).
	MaxJobTimeout time.Duration
	// MaxSeeds caps campaign/difftest sweep sizes per job (<=0: 5000).
	MaxSeeds int
	// JobRetention bounds how long a finished job (and its full event
	// log) stays re-attachable via GET /jobs/{id} after its terminal
	// event; past the window the job is evicted so a long-lived server
	// does not retain every stream it ever produced (<=0: 5m). Finished
	// debug-session records are evicted under the same window.
	JobRetention time.Duration

	// WarmBoot installs a warm post-boot snapshot in the machine pool at
	// startup (core.MachinePool.EnableWarmBoot): checkouts fork or
	// restore the snapshot in O(dirty pages) instead of booting or
	// scrub-resetting, with byte-identical job output either way
	// (DESIGN.md §16). cmd/uexc-serve enables it by default.
	WarmBoot bool

	// StoreDir, when set, enables the durable job store: a write-ahead
	// NDJSON journal under this directory records every admission,
	// shard checkpoint, and terminal verdict, so admitted jobs survive
	// a process kill. Durable jobs are decoupled from their client
	// connection (a disconnect no longer cancels them).
	StoreDir string
	// Resume re-admits the journal's pending jobs at startup, each
	// resuming from its durable contiguous shard prefix. Without it an
	// existing journal is kept (and keeps growing) but pending jobs
	// are left for a later -resume incarnation.
	Resume bool
	// CheckpointEvery is the checkpoint cadence: a durable campaign or
	// difftest job journals its merged shard digests every this many
	// prefix shards (<=0: 8).
	CheckpointEvery int
	// StoreSyncEvery is the journal's shard-record fsync batch size,
	// forwarded to store.Options (<=0: 8).
	StoreSyncEvery int
	// StoreSyncDelay, when non-nil, runs before every journal fsync —
	// the chaos harness's slow-fsync injection point.
	StoreSyncDelay func()

	// ShardAttempts bounds how many times one campaign/difftest shard
	// is executed before it is quarantined as poison (<=0: 3).
	ShardAttempts int
	// ShardBackoff is the base pause before a shard retry, doubled per
	// attempt with deterministic jitter (<=0: 5ms).
	ShardBackoff time.Duration
	// ShardDeadline is the per-attempt shard deadline: injected stalls
	// at or past it fail the attempt, and organically slower shards
	// are counted as timeouts (<=0: 60s).
	ShardDeadline time.Duration
	// ShardFault, when non-nil, is consulted before every shard
	// attempt — the chaos harness's fault-injection point.
	ShardFault func(job uint64, shard, attempt int) ShardFault

	// Tenants caps each X-Tenant key's admission (in-flight jobs,
	// queued jobs, seeds/s token bucket). Zero value: unlimited.
	Tenants TenantLimits

	// WorkerNodes, when non-empty, runs this server as a fleet
	// coordinator: campaign/difftest jobs are split into shard ranges
	// and dispatched to these worker base URLs (DESIGN.md §13).
	WorkerNodes []string
	// DispatchShards is the target shards per dispatched range (<=0:
	// 12) — small enough to rebalance around a dead worker, large
	// enough to amortize the HTTP round trip.
	DispatchShards int
	// WorkerQuarantine is the cooldown before a worker that kept
	// failing is retried (<=0: 2s).
	WorkerQuarantine time.Duration
	// DispatchTimeout bounds one range dispatch end to end, so a hung
	// worker cannot wedge the merge (<=0: MaxJobTimeout).
	DispatchTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxJobTimeout <= 0 {
		c.MaxJobTimeout = 120 * time.Second
	}
	if c.MaxSeeds <= 0 {
		c.MaxSeeds = 5000
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 5 * time.Minute
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 8
	}
	if c.ShardAttempts <= 0 {
		c.ShardAttempts = 3
	}
	if c.ShardBackoff <= 0 {
		c.ShardBackoff = 5 * time.Millisecond
	}
	if c.ShardDeadline <= 0 {
		c.ShardDeadline = 60 * time.Second
	}
	if c.DispatchShards <= 0 {
		c.DispatchShards = 12
	}
	if c.WorkerQuarantine <= 0 {
		c.WorkerQuarantine = 2 * time.Second
	}
	if c.DispatchTimeout <= 0 {
		c.DispatchTimeout = c.MaxJobTimeout
	}
	return c
}

// Server is one serving instance. Create with New, expose via
// Handler, stop with Drain (keeps workers alive, rejects new work)
// and Close (drain + retire the workers), or Kill (simulated crash).
type Server struct {
	cfg     Config
	pool    *core.MachinePool
	metrics *Metrics
	store   *store.Store // nil without StoreDir
	tenants *tenantRegistry
	fleet   *fleet // nil unless WorkerNodes is set
	queue   chan *job
	stop    chan struct{}
	nextID  atomic.Uint64
	mux     *http.ServeMux

	// baseCtx is the ancestor of every durable job's context: it dies
	// only on Kill, never on client disconnect.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex // guards draining, killed, jobs, sessions, and the admit/Drain race
	draining bool
	killed   bool
	jobs     map[uint64]*job     // every admitted job, by ID, for re-attach
	sessions map[uint64]*session // debug-session records, by job ID, until eviction
	jobWG    sync.WaitGroup      // admitted jobs not yet finished

	workerWG sync.WaitGroup

	// execHook, when non-nil, replaces runJob — a seam the tests and
	// the smoke harness use to hold jobs in place, making queue-full
	// and drain conditions deterministic regardless of engine speed.
	execHook func(j *job) (bool, string, error)
}

// New builds a Server, replays its journal if StoreDir is set (and
// re-admits pending jobs under Resume), and starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		pool:     &core.MachinePool{},
		metrics:  newMetrics(),
		tenants:  newTenantRegistry(cfg.Tenants),
		stop:     make(chan struct{}),
		jobs:     make(map[uint64]*job),
		sessions: make(map[uint64]*session),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.pool.Harvest = s.metrics.harvest
	if cfg.WarmBoot {
		// Install the warm snapshot before any job can check a machine
		// out; EnableWarmBoot itself verifies the image carries zero
		// simulator counters so forked machines cannot double-count
		// /metrics totals.
		if err := s.pool.EnableWarmBoot(); err != nil {
			return nil, fmt.Errorf("warm boot: %w", err)
		}
	}
	if len(cfg.WorkerNodes) > 0 {
		s.fleet = newFleet(s, cfg.WorkerNodes)
	}

	var pending []store.PendingJob
	if cfg.StoreDir != "" {
		st, state, err := store.Open(cfg.StoreDir, store.Options{
			SyncEvery: cfg.StoreSyncEvery, SyncDelay: cfg.StoreSyncDelay,
		})
		if err != nil {
			return nil, err
		}
		s.store = st
		s.nextID.Store(state.MaxID)
		s.metrics.Restarts.Store(state.Restarts)
		if cfg.Resume {
			pending = state.Pending
		}
	}

	// The queue grows by the replayed jobs so a resumed backlog cannot
	// deadlock admission against its own capacity.
	s.queue = make(chan *job, cfg.QueueDepth+len(pending))
	for _, p := range pending {
		j, err := s.resumeJob(p)
		if err != nil {
			// A spec this incarnation cannot run (corrupt digest, cap
			// lowered) is finished with the error rather than wedging
			// the journal forever.
			_ = s.store.FinishJob(p.ID, false, "", "resume: "+err.Error())
			continue
		}
		s.jobs[j.id] = j
		s.jobWG.Add(1)
		s.tenants.adopt(j.tenant)
		s.queue <- j
		s.metrics.ReplayedJobs.Add(1)
		s.metrics.ResumedShards.Add(uint64(len(p.Shards)))
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/jobs/", s.handleJobGet)
	s.mux.HandleFunc("/sessions/", s.handleSessionGet)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	for w := 0; w < cfg.Workers; w++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// resumeJob rebuilds a journaled pending job for re-execution: same
// ID, same spec, and the durable shard prefix to skip. Its deadline
// restarts at re-admission (wall time already burned died with the
// previous process).
func (s *Server) resumeJob(p store.PendingJob) (*job, error) {
	var req Request
	if err := json.Unmarshal(p.Req, &req); err != nil {
		return nil, fmt.Errorf("journaled spec: %w", err)
	}
	if err := req.Validate(s.cfg.MaxSeeds); err != nil {
		return nil, err
	}
	j := &job{
		id: p.ID, req: req, rawReq: p.Req,
		tenant:  tenantName(p.Tenant),
		log:     newEventLog(),
		resumed: len(p.Shards),
		done:    p.Shards,
	}
	j.ctx, j.cancel = s.jobContext(s.baseCtx, req)
	j.emit(Event{Type: "accepted", ID: j.id, Job: string(req.Type)})
	return j, nil
}

// jobContext derives a job's execution context from parent, bounded
// by the server cap tightened by the request's own timeout.
func (s *Server) jobContext(parent context.Context, req Request) (context.Context, context.CancelFunc) {
	timeout := s.cfg.MaxJobTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	return context.WithTimeout(parent, timeout)
}

// Handler returns the HTTP surface: /jobs, /jobs/{id}, /metrics,
// /healthz, and /debug/pprof.
func (s *Server) Handler() http.Handler { return s.mux }

// isDraining reports whether admission is closed.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain closes admission and blocks until every already-admitted job
// has finished executing (its stream may still be flushing to a slow
// client; HTTP shutdown handles that wait). Idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	killed := s.killed
	s.mu.Unlock()
	if !killed {
		s.jobWG.Wait()
	}
}

// Close drains, retires the worker pool, and closes the journal
// cleanly (every batched record flushed and fsynced).
func (s *Server) Close() {
	s.Drain()
	s.mu.Lock()
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.mu.Unlock()
	s.workerWG.Wait()
	if s.store != nil {
		_ = s.store.Close()
	}
}

// Kill simulates a crash for the chaos harness: admission stops, the
// base context dies (in-flight engines unwind at their next shard
// boundary), the journal is abandoned mid-batch exactly as SIGKILL
// would leave it — unflushed records lost, no finish markers written —
// and queued jobs are dropped with their streams cut. The journal
// still holds every admitted-but-unfinished job for the next
// incarnation to resume.
func (s *Server) Kill() {
	s.mu.Lock()
	s.draining = true
	s.killed = true
	s.mu.Unlock()
	// Abandon the journal BEFORE cancelling the jobs: once the base
	// context is dead, shard runners start giving up without running
	// their shards, and no window may exist in which such a skipped
	// shard's checkpoint could still reach the journal — a durable
	// zero-value digest would corrupt the resumable prefix.
	if s.store != nil {
		s.store.Abandon()
	}
	s.baseCancel()
	s.mu.Lock()
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.mu.Unlock()
	s.workerWG.Wait()
	// Workers are gone; drop what they never started. Streams end
	// without a result event — the crash signature clients see.
	for {
		select {
		case j := <-s.queue:
			j.cancel()
			j.log.close()
			s.tenants.drop(j.tenant)
			s.jobWG.Done()
		default:
			return
		}
	}
}

// admit places a job in the queue and journals the admission. The
// lock makes the draining check, the capacity check, the tenant quota
// charge, and the WaitGroup add atomic with respect to Drain and other
// admits: after Drain returns no job can be admitted, and a
// checked-free slot cannot be stolen (only admit sends, and only under
// this lock). retryAfter is the backpressure hint in seconds,
// meaningful only on 429/503.
func (s *Server) admit(j *job) (status, retryAfter int, msg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.metrics.RejectedDraining.Add(1)
		return http.StatusServiceUnavailable, retryAfterSeconds, "server draining, not admitting jobs"
	}
	if len(s.queue) == cap(s.queue) {
		s.metrics.RejectedFull.Add(1)
		return http.StatusTooManyRequests, retryAfterSeconds, "queue full, retry later"
	}
	// Tenant quotas come after the shared-capacity checks (a full queue
	// is everyone's problem first) and before the journal: a rejected
	// tenant must leave no durable trace.
	if wait, err := s.tenants.admit(j.tenant, admissionCost(&j.req)); err != nil {
		s.metrics.RejectedTenant.Add(1)
		return http.StatusTooManyRequests, wait, err.Error()
	}
	if s.store != nil {
		// Journal before acknowledging: an accepted event is a promise
		// that survives a kill.
		if err := s.store.AcceptJob(j.id, j.rawReq, j.tenant); err != nil {
			s.tenants.release(j.tenant)
			return http.StatusInternalServerError, 0, "journal admission: " + err.Error()
		}
	}
	// Register and emit the accepted event BEFORE handing the job to a
	// worker: once queued, a worker may emit progress — or even close
	// the event log — and the accepted event must be first in every
	// replayed stream. The send cannot block: capacity was checked
	// above and only admit sends, only under this lock.
	s.jobs[j.id] = j
	s.jobWG.Add(1)
	s.metrics.Admitted.Add(1)
	s.metrics.byType[j.req.Type].Add(1)
	j.emit(Event{Type: "accepted", ID: j.id, Job: string(j.req.Type)})
	s.queue <- j
	return http.StatusOK, 0, ""
}

// tenantName normalizes the X-Tenant header: every job belongs to a
// tenant, the anonymous ones to "default".
func tenantName(h string) string {
	if h == "" {
		return "default"
	}
	return h
}

// worker executes queued jobs until the server closes.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case j := <-s.queue:
			s.execute(j)
		case <-s.stop:
			// Close drains the queue first; Kill sweeps the leftovers.
			return
		}
	}
}

// execute runs one job to completion, journals the verdict (unless a
// kill is in progress — an unfinished job must stay pending), and
// closes the event log after the terminal event.
func (s *Server) execute(j *job) {
	defer s.jobWG.Done()
	defer j.cancel()
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	s.tenants.start(j.tenant)
	defer s.tenants.done(j.tenant)

	start := time.Now()
	var (
		ok      bool
		summary string
		err     error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if se, poisoned := r.(*ShardError); poisoned {
					ok, summary, err = false, "", se
				} else {
					ok, summary, err = false, "", fmt.Errorf("job panicked: %v", r)
				}
			}
		}()
		if s.execHook != nil {
			ok, summary, err = s.execHook(j)
		} else {
			ok, summary, err = s.runJob(j)
		}
	}()

	var se *ShardError
	switch {
	case ok:
		s.metrics.JobsOK.Add(1)
	case errors.As(err, &se):
		// Poison quarantine is a job failure even though the quarantine
		// cancelled the rest of the sweep.
		s.metrics.JobsFailed.Add(1)
	case j.ctx.Err() != nil:
		s.metrics.JobsCancelled.Add(1)
	default:
		s.metrics.JobsFailed.Add(1)
	}

	if s.store != nil && s.baseCtx.Err() == nil {
		errText := ""
		if err != nil {
			errText = err.Error()
		}
		_ = s.store.FinishJob(j.id, ok, summary, errText)
	}

	ev := Event{
		Type: "result", ID: j.id, OK: &ok, Summary: summary,
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	if err != nil {
		ev.Error = err.Error()
	}
	j.emit(ev)
	j.log.close()

	// The stream is terminal; keep the job re-attachable for the
	// retention window, then evict it so s.jobs and its event log (every
	// progress line the job ever produced) don't grow without bound on a
	// long-lived server. A late GET simply 404s, like an unknown ID.
	time.AfterFunc(s.cfg.JobRetention, func() {
		s.mu.Lock()
		if _, live := s.jobs[j.id]; live {
			delete(s.jobs, j.id)
			s.metrics.JobsEvicted.Add(1)
		}
		s.mu.Unlock()
	})
}

// retryAfterSeconds is the backpressure hint on 429/503 responses.
const retryAfterSeconds = 1

// handleJobs is POST /jobs: validate, admit, stream.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, 1<<16)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.metrics.BadRequests.Add(1)
		http.Error(w, "malformed job: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.Validate(s.cfg.MaxSeeds); err != nil {
		s.metrics.BadRequests.Add(1)
		http.Error(w, "invalid job: "+err.Error(), http.StatusBadRequest)
		return
	}
	raw, err := json.Marshal(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Ephemeral jobs die with their client; durable (journaled) jobs
	// run on the server's base context — the journal has promised
	// they finish, and their stream can re-attach.
	parent := r.Context()
	if s.store != nil {
		parent = s.baseCtx
	}
	j := &job{
		id: s.nextID.Add(1), req: req, rawReq: raw,
		tenant: tenantName(r.Header.Get("X-Tenant")),
		log:    newEventLog(),
	}
	j.ctx, j.cancel = s.jobContext(parent, req)

	if status, retryAfter, msg := s.admit(j); status != http.StatusOK {
		j.cancel()
		if status != http.StatusInternalServerError {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		}
		http.Error(w, msg, status)
		return
	}
	s.streamJob(w, r, j)
}

// handleJobGet is GET /jobs/{id}: re-attach to an admitted job's
// stream, replaying its full event log from the start and following
// the live tail — the recovery path for disconnected clients and for
// jobs resumed from the journal after a crash.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id, err := strconv.ParseUint(strings.TrimPrefix(r.URL.Path, "/jobs/"), 10, 64)
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	s.streamJob(w, r, j)
}

// streamJob writes a job's event log as NDJSON from the beginning,
// blocking on the live tail until the log closes, then appends the
// integrity trailer: the count and FNV-1a-64 fingerprint of every
// line written (trailer excluded). Returns early, without a trailer,
// only if the client goes away.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	// A disconnect must wake the log wait below.
	defer context.AfterFunc(r.Context(), j.log.broadcast)()

	h := fnv.New64a()
	records := 0
	for from := 0; ; {
		evs, closed := j.log.next(r.Context(), from)
		for _, ev := range evs {
			line, err := json.Marshal(ev)
			if err != nil {
				return
			}
			line = append(line, '\n')
			h.Write(line)
			records++
			if _, err := w.Write(line); err != nil {
				return // client gone; the job itself is unaffected if durable
			}
			flush()
		}
		from += len(evs)
		if closed && len(evs) == 0 {
			break
		}
		if r.Context().Err() != nil {
			return
		}
	}
	trailer, err := json.Marshal(Event{
		Type: "trailer", ID: j.id, Records: records,
		FNV: fmt.Sprintf("%016x", h.Sum64()),
	})
	if err != nil {
		return
	}
	_, _ = w.Write(append(trailer, '\n'))
	flush()
}

// handleMetrics is GET /metrics: flat text by default, JSON with
// ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = snap.renderJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	snap.renderText(w)
}

// handleHealthz reports readiness: 200 while admitting, 503 while
// draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// Run serves cfg.Addr until ctx is cancelled (SIGTERM in
// cmd/uexc-serve), then drains gracefully: admission closes, admitted
// jobs finish and flush, and only then does the listener shut down.
// The bound address is reported through ready (buffered; may be nil)
// as soon as the listener is up.
func Run(ctx context.Context, cfg Config, logw io.Writer, ready chan<- string) error {
	s, err := New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()

	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	if logw != nil {
		fmt.Fprintf(logw, "uexc-serve: listening on %s (workers %d, queue %d)\n",
			ln.Addr(), s.cfg.Workers, s.cfg.QueueDepth)
		if s.store != nil {
			fmt.Fprintf(logw, "uexc-serve: journal %s: restart #%d, %d jobs replayed (%d durable shards)\n",
				cfg.StoreDir, s.metrics.Restarts.Load(), s.metrics.ReplayedJobs.Load(), s.metrics.ResumedShards.Load())
		}
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	if logw != nil {
		fmt.Fprintln(logw, "uexc-serve: drain: admission closed, finishing in-flight jobs")
	}
	s.Drain()
	// Streams may still be flushing; Shutdown waits for the handlers.
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err = hs.Shutdown(shutCtx)
	if logw != nil {
		fmt.Fprintln(logw, "uexc-serve: drained, bye")
	}
	return err
}
