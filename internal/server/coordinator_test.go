package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	dt "uexc/internal/difftest"
	"uexc/internal/harness"
)

// startWorkers brings up n plain worker servers and returns their base
// URLs. Each worker is an ordinary Server — coordinator mode needs
// nothing special on the worker side.
func startWorkers(t *testing.T, n int, cfg Config) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		_, urls[i] = startTest(t, cfg)
	}
	return urls
}

// campaignGolden is the undisturbed serial CLI stream + summary.
func campaignGolden(t *testing.T, seeds int) string {
	t.Helper()
	var b bytes.Buffer
	res, err := harness.FaultCampaignCtx(context.Background(), nil, seeds, 1, &b)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(res.Summary())
	return b.String()
}

func difftestGolden(t *testing.T, seeds int) string {
	t.Helper()
	var b bytes.Buffer
	res, err := dt.CampaignCtx(context.Background(), nil, seeds, 1, &b)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(res.Summary())
	return b.String()
}

// TestDistributedByteIdentity: a coordinator fanning a sweep out to two
// workers streams output byte-identical to the serial single-node run,
// for both distributable job types — the §13 acceptance bar.
func TestDistributedByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns across a fleet")
	}
	const seeds = 6
	workers := startWorkers(t, 2, Config{Workers: 2, QueueDepth: 8})
	coord, base := startTest(t, Config{
		Workers: 2, QueueDepth: 4,
		WorkerNodes: workers, DispatchShards: 4,
	})

	t.Run("campaign", func(t *testing.T) {
		out, ok, errText, _, _ := postStream(t, base,
			Request{Type: TypeCampaign, Seeds: seeds, Parallel: 4, Verbose: true})
		if !ok {
			t.Fatalf("distributed campaign failed: %s", errText)
		}
		if golden := campaignGolden(t, seeds); out != golden {
			t.Errorf("distributed stream differs from the serial run\n--- distributed ---\n%s--- golden ---\n%s",
				out, golden)
		}
	})
	t.Run("difftest", func(t *testing.T) {
		out, ok, errText, _, _ := postStream(t, base,
			Request{Type: TypeDifftest, Seeds: seeds, Parallel: 4, Verbose: true})
		if !ok {
			t.Fatalf("distributed difftest failed: %s", errText)
		}
		if golden := difftestGolden(t, seeds); out != golden {
			t.Errorf("distributed stream differs from the serial run\n--- distributed ---\n%s--- golden ---\n%s",
				out, golden)
		}
	})

	if got := coord.metrics.FleetDispatches.Load(); got < 2 {
		t.Errorf("FleetDispatches = %d, want >= 2", got)
	}
	if d, a := coord.metrics.FleetDispatches.Load(), coord.metrics.FleetAcks.Load(); d != a {
		t.Errorf("FleetDispatches = %d but FleetAcks = %d; healthy dispatches must all ack", d, a)
	}
	// Point jobs stay local: no dispatch for a program-run.
	before := coord.metrics.FleetDispatches.Load()
	if _, ok, errText, _, _ := postStream(t, base, Request{Type: TypeProgramRun, Seed: 3}); !ok {
		t.Fatalf("program-run on coordinator failed: %s", errText)
	}
	if got := coord.metrics.FleetDispatches.Load(); got != before {
		t.Errorf("program-run was dispatched to the fleet (dispatches %d -> %d)", before, got)
	}
}

// dyingWorker wraps one worker's handler so its first range dispatch
// dies mid-stream — a few events escape, then the connection is cut —
// and every later request is refused outright. From the coordinator's
// side this is a worker killed mid-shard-range that never comes back.
type dyingWorker struct {
	inner http.Handler
	dead  atomic.Bool
}

func (d *dyingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/jobs" {
		if d.dead.Swap(true) {
			http.Error(w, "worker killed", http.StatusServiceUnavailable)
			return
		}
		d.inner.ServeHTTP(&abortAfter{ResponseWriter: w, budget: 600}, r)
		return
	}
	d.inner.ServeHTTP(w, r)
}

// abortAfter lets a bounded number of response bytes through, then
// aborts the handler — the in-process stand-in for SIGKILL cutting a
// worker's TCP stream mid-event.
type abortAfter struct {
	http.ResponseWriter
	budget int
}

func (a *abortAfter) Write(p []byte) (int, error) {
	a.budget -= len(p)
	if a.budget < 0 {
		panic(http.ErrAbortHandler)
	}
	return a.ResponseWriter.Write(p)
}

func (a *abortAfter) Flush() {
	if f, ok := a.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestDistributedWorkerKillMidRange: one of two workers dies partway
// through streaming its first range and stays dead. The coordinator
// requeues the unacked range to the survivor, the duplicate shards it
// already merged are ignored below the frontier, and the final stream
// is still byte-identical to the serial run.
func TestDistributedWorkerKillMidRange(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns across a worker kill")
	}
	const seeds = 6
	healthy := startWorkers(t, 1, Config{Workers: 2, QueueDepth: 8})

	victim := newT(t, Config{Workers: 2, QueueDepth: 8})
	dw := &dyingWorker{inner: victim.Handler()}
	vs := httptest.NewServer(dw)
	t.Cleanup(func() {
		vs.Close()
		victim.Close()
	})

	coord, base := startTest(t, Config{
		Workers: 1, QueueDepth: 4,
		WorkerNodes: []string{healthy[0], vs.URL},
		// Two ranges minimum, so both dispatchers pull one immediately
		// and the victim's death is guaranteed to strand a range.
		DispatchShards:   (harness.CampaignShards(seeds) + 1) / 2,
		WorkerQuarantine: 50 * time.Millisecond,
		ShardBackoff:     time.Millisecond,
	})

	out, ok, errText, _, _ := postStream(t, base,
		Request{Type: TypeCampaign, Seeds: seeds, Parallel: 2, Verbose: true})
	if !ok {
		t.Fatalf("campaign failed despite a surviving worker: %s", errText)
	}
	if golden := campaignGolden(t, seeds); out != golden {
		t.Errorf("stream across a worker kill differs from the serial run\n--- distributed ---\n%s--- golden ---\n%s",
			out, golden)
	}
	if got := coord.metrics.FleetRedispatches.Load(); got < 1 {
		t.Errorf("FleetRedispatches = %d, want >= 1 (the victim's range had to move)", got)
	}
	if !dw.dead.Load() {
		t.Error("the victim worker never received a dispatch; the kill was not exercised")
	}
}

// TestDistributedAllWorkersPoisoned: when every worker deterministically
// fails the same shard, re-dispatch cannot save the range; after the
// attempt budget the job fails with the §12 typed poison error, and the
// healthy ranges' work still merged cleanly first.
func TestDistributedAllWorkersPoisoned(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns across a poisoned fleet")
	}
	const seeds = 4
	poison := Config{
		Workers: 2, QueueDepth: 8,
		ShardAttempts: 1,
		ShardFault: func(job uint64, shard, attempt int) ShardFault {
			return ShardFault{Panic: shard == 5}
		},
	}
	workers := startWorkers(t, 2, poison)
	coord, base := startTest(t, Config{
		Workers: 1, QueueDepth: 4,
		WorkerNodes: workers, DispatchShards: 4,
		ShardAttempts:    2, // maxAttempts = max(2, nodes+1) = 3
		WorkerQuarantine: 20 * time.Millisecond,
		ShardBackoff:     time.Millisecond,
	})

	_, ok, errText, _, _ := postStream(t, base,
		Request{Type: TypeCampaign, Seeds: seeds, Parallel: 2})
	if ok {
		t.Fatal("campaign succeeded although every worker poisons shard 5")
	}
	for _, want := range []string{"poison shard quarantined", "shard 5"} {
		if !strings.Contains(errText, want) {
			t.Errorf("terminal error %q missing %q", errText, want)
		}
	}
	if got := coord.metrics.JobsFailed.Load(); got != 1 {
		t.Errorf("coordinator JobsFailed = %d, want 1", got)
	}
	if got := coord.metrics.FleetRedispatches.Load(); got < 2 {
		t.Errorf("FleetRedispatches = %d, want >= 2 (the poisoned range must burn its budget)", got)
	}
}

// TestDistributedCoordinatorKillResume: a durable coordinator is killed
// mid-fan-out after checkpointing merged digests; its next incarnation
// re-admits the job, replays the durable prefix, dispatches only the
// remainder, and the re-attached stream equals the undisturbed serial
// run byte for byte.
func TestDistributedCoordinatorKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns across a coordinator kill")
	}
	const seeds = 6
	golden := campaignGolden(t, seeds)
	space := harness.CampaignShards(seeds)

	// Workers stall every shard a little so the kill lands mid-sweep.
	var stall atomic.Bool
	stall.Store(true)
	workers := startWorkers(t, 2, Config{
		Workers: 2, QueueDepth: 8,
		ShardDeadline: time.Minute,
		ShardFault: func(job uint64, shard, attempt int) ShardFault {
			if stall.Load() {
				return ShardFault{Stall: 40 * time.Millisecond}
			}
			return ShardFault{}
		},
	})

	dir := t.TempDir()
	s1 := newT(t, Config{
		Workers: 1, QueueDepth: 4,
		StoreDir: dir, CheckpointEvery: 1, StoreSyncEvery: 1,
		WorkerNodes: workers, DispatchShards: 3,
	})
	hs1 := httptest.NewServer(s1.Handler())

	body, _ := json.Marshal(Request{Type: TypeCampaign, Seeds: seeds, Parallel: 2, Verbose: true})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(hs1.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return
		}
		defer resp.Body.Close()
		StreamResult(resp.Body)
	}()

	waitMetric(t, "durable fleet progress before kill", func() bool {
		return s1.metrics.Checkpoints.Load() >= 2 && s1.metrics.FleetAcks.Load() >= 1
	})
	s1.Kill()
	wg.Wait()
	hs1.Close()
	stall.Store(false)

	s2 := newT(t, Config{
		Workers: 1, QueueDepth: 4,
		StoreDir: dir, Resume: true, CheckpointEvery: 1,
		WorkerNodes: workers, DispatchShards: 3,
	})
	hs2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		hs2.Close()
		s2.Close()
	})

	if got := s2.metrics.ReplayedJobs.Load(); got != 1 {
		t.Fatalf("ReplayedJobs = %d, want 1", got)
	}
	resumed := s2.metrics.ResumedShards.Load()
	if resumed == 0 {
		t.Error("ResumedShards = 0; the coordinator lost its merge frontier")
	}
	if resumed >= uint64(space) {
		t.Errorf("ResumedShards = %d of %d; nothing was left to dispatch", resumed, space)
	}

	resp, err := http.Get(hs2.URL + "/jobs/1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, ok, complete, errText := StreamResult(resp.Body)
	if !complete || !ok {
		t.Fatalf("resumed distributed job did not complete cleanly: ok=%v complete=%v err=%s", ok, complete, errText)
	}
	if out != golden {
		t.Errorf("resumed distributed stream differs from the serial run\n--- resumed ---\n%s--- golden ---\n%s",
			out, golden)
	}
	// The second incarnation dispatched only past the frontier.
	maxRanges := (space-int(resumed))/3 + 1
	if got := s2.metrics.FleetDispatches.Load(); got > uint64(maxRanges) {
		t.Errorf("incarnation B FleetDispatches = %d, want <= %d (must not re-run the durable prefix)",
			got, maxRanges)
	}
}
