package kernel

import (
	"fmt"

	"uexc/internal/arch"
	"uexc/internal/tlb"
)

// SelfCheck validates the kernel-owned DESIGN.md §6 invariants that
// depend on unexported state; internal/faultinject layers CPU-level and
// cross-observation (monotonicity) checks on top of it. These
// properties must hold under the campaign's fault model because every
// structure they cover lives below FramePhysBase, outside the
// injector's memory-corruption range:
//
//   - page tables are well-formed: every nonzero PTE has its allocated
//     bit, and its frame lies inside the allocated pool;
//   - the exception-frame page stays pinned: the PTE for frameVA still
//     names the physical frame published to the first-level handler;
//   - the u-area mirrors the current process's fast-exception state.
//
// The scan visits only memory-backed page-table pages (untouched pages
// read as all-zero PTEs), so its cost tracks the process footprint, not
// the 128 KB table span.
func (k *Kernel) SelfCheck() error {
	if k.mcheck != nil {
		return k.mcheck
	}
	const ptesPerPage = arch.PageSize / 4
	for _, p := range k.procs {
		if p.ptScanGen == nil {
			p.ptScanGen = make([]uint64, UserPTEntries/ptesPerPage)
		}
		for base := uint32(0); base < UserPTEntries; base += ptesPerPage {
			// Scan each backed page-table page through its page handle:
			// same words in the same order as loadKernelWord, without the
			// per-word translation and error plumbing (a backed page below
			// FramePhysBase can never bus-error). This check runs after
			// every injected fault, so its constant factor matters: a page
			// that passed at its current generation is skipped (see
			// Proc.ptScanGen), so the steady-state cost tracks page-table
			// churn, not table size.
			pg := k.Mem.PageRef(arch.KSegPhys(p.pteAddr(base)))
			if pg == nil {
				continue
			}
			memo := &p.ptScanGen[base/ptesPerPage]
			if *memo == pg.Gen()+1 {
				continue
			}
			for vpn := base; vpn < base+ptesPerPage; vpn += 2 {
				// Zero PTEs dominate sparse tables; read pairs and skip
				// zero runs in one compare.
				pair := pg.Word64((vpn - base) * 4)
				if pair == 0 {
					continue
				}
				if err := k.checkPTE(p, vpn, uint32(pair)); err != nil {
					return err
				}
				if err := k.checkPTE(p, vpn+1, uint32(pair>>32)); err != nil {
					return err
				}
			}
			*memo = pg.Gen() + 1
		}
		if p.framePhys != 0 {
			pte, ok := p.pte(p.frameVA >> arch.PageShift)
			if !ok || pte&pteAlloc == 0 || pte&tlb.LoPFNMask != p.framePhys {
				return fmt.Errorf("%w: proc %d exception frame unpinned: pte %#x, want frame %#x",
					ErrInvariant, p.asid, pte, p.framePhys)
			}
		}
	}

	p := k.Proc
	if p != nil {
		// While a user handler is in progress the claim word is blanked
		// (the UEX recursion gate, see syncClaimMask), so zero is also
		// consistent then.
		if got := k.loadKernelWord(UAreaBase + UFexcMask); got != p.fexcMask && !(k.uexBusy() && got == 0) {
			return fmt.Errorf("%w: u-area fexc mask %#x != proc %d mask %#x",
				ErrInvariant, got, p.asid, p.fexcMask)
		}
		if got := k.loadKernelWord(UAreaBase + UFexcHandler); got != p.fexcHandler {
			return fmt.Errorf("%w: u-area handler %#x != proc %d handler %#x",
				ErrInvariant, got, p.asid, p.fexcHandler)
		}
		if p.framePhys != 0 {
			if got := k.loadKernelWord(UAreaBase + UFramePhys); got != arch.KSeg0Base+p.framePhys {
				return fmt.Errorf("%w: u-area frame phys %#x != proc %d frame %#x",
					ErrInvariant, got, p.asid, arch.KSeg0Base+p.framePhys)
			}
		}
	}
	return nil
}

// checkPTE validates one page-table entry (zero entries are vacuously
// fine).
func (k *Kernel) checkPTE(p *Proc, vpn, pte uint32) error {
	if pte == 0 {
		return nil
	}
	if pte&pteAlloc == 0 {
		return fmt.Errorf("%w: proc %d vpn %#x: nonzero PTE %#x without alloc bit",
			ErrInvariant, p.asid, vpn, pte)
	}
	pa := pte & tlb.LoPFNMask
	if pa < FramePhysBase || pa >= k.nextFrame {
		return fmt.Errorf("%w: proc %d vpn %#x: PTE frame %#x outside pool [%#x,%#x)",
			ErrInvariant, p.asid, vpn, pa, uint32(FramePhysBase), k.nextFrame)
	}
	return nil
}

// FrameWatermark returns the physical address one past the last
// allocated user frame (the invariant checker's scan bound; also the
// floor below which fault injection must not corrupt memory).
func (k *Kernel) FrameWatermark() uint32 { return k.nextFrame }
