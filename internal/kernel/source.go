package kernel

import "fmt"

// KernelSource returns the complete assembly source of the simulated
// kernel. All first-level exception handling runs as these simulated
// instructions; only the bodies that Ultrix wrote in C sit behind the
// HCALL escapes.
//
// The fast path is structured in the six phases of the paper's Table 3
// and is written so a simple (non-TLB) user exception executes exactly
//
//	decode 6 + compatibility 11 + save 31 + fp-check 6 + tlb-check 8 +
//	vector 3 = 65 instructions
//
// between entry at the general vector and the rfe into the user
// handler. The per-phase labels (ph_*) let the harness verify these
// counts by execution (see Table 3 in the benchmark suite).
func KernelSource() string {
	return fmt.Sprintf(equates,
		UAreaBase, KStackTop, PageTableBase,
		UFexcMask, UFexcHandler, UFramePhys, UFrameVA, UKStack,
		HCUltrixTrap, HCSyscall, HCTLBProt, HCPanic,
		TrapframeSize,
	) + kernelAsm
}

const equates = `
	.equ UAREA,      %#x
	.equ KSTACKTOP,  %#x
	.equ PTBASE,     %#x
	.equ U_MASK,     %#x
	.equ U_HANDLER,  %#x
	.equ U_FRPHYS,   %#x
	.equ U_FRVA,     %#x
	.equ U_KSTACK,   %#x
	.equ HC_TRAP,    %d
	.equ HC_SYSCALL, %d
	.equ HC_TLBPROT, %d
	.equ HC_PANIC,   %d
	.equ TFSIZE,     %d
`

const kernelAsm = `
# ---------------------------------------------------------------------
# UTLB refill vector: user-address TLB miss with no matching entry.
# Context holds PTEBASE | (BadVPN << 2); the PTE is in EntryLo format.
# An unallocated page has PTE 0 (invalid), which we still write: the
# retry then takes a TLBL/TLBS *hit-invalid* to the general vector,
# where the page-fault path runs. This is exactly the R3000 convention.
# ---------------------------------------------------------------------
	.org 0x80000000
utlb_vec:
	mfc0  k0, c0_context
	lw    k1, 0(k0)
	nop                        # load delay
	mtc0  k1, c0_entrylo
	nop
	tlbwr
	mfc0  k0, c0_epc
	jr    k0
	rfe

# ---------------------------------------------------------------------
# General exception vector.
# ---------------------------------------------------------------------
	.org 0x80000080
gen_vec:

# Phase 1: decode — verify this is a user-mode synchronous exception.
# (6 instructions on the fast path)
ph_decode:
	mfc0  k0, c0_status
	andi  k0, k0, 0x8          # KUp: did we come from user mode?
	beqz  k0, kern_fault       # kernel-mode fault: not ours
	mfc0  k0, c0_cause         # (delay slot)
	andi  k0, k0, 0x7c
	srl   k0, k0, 2            # k0 = exception code

# Phase 2: Ultrix compatibility check — has the process enabled fast
# delivery for this exception? (11 instructions)
ph_compat:
	lui   k1, UAREA >> 16
	lw    k1, U_MASK(k1)
	nop                        # load delay
	srlv  k1, k1, k0
	andi  k1, k1, 1
	beqz  k1, to_slow          # not enabled: standard Ultrix handling
	sll   k0, k0, 7            # (delay) frame offset = code * 128
	lui   k1, UAREA >> 16
	lw    k1, U_FRPHYS(k1)
	nop                        # load delay
	addu  k1, k1, k0           # k1 = kseg0 alias of this code's frame

# Phase 3: save partial state into the pinned user frame. Stores go to
# the frame's kseg0 alias so no TLB miss can clobber EPC/Cause while
# the original exception state is still live. (31 instructions)
ph_save:
	mfc0  k0, c0_epc
	sw    k0, 0x00(k1)         # FrEPC
	mfc0  k0, c0_cause
	sw    k0, 0x04(k1)         # FrCause
	mfc0  k0, c0_badvaddr
	sw    k0, 0x08(k1)         # FrBadVAddr
	sw    at, 0x0c(k1)
	sw    v0, 0x10(k1)
	sw    v1, 0x14(k1)
	sw    a0, 0x18(k1)
	sw    a1, 0x1c(k1)
	sw    a2, 0x20(k1)
	sw    a3, 0x24(k1)
	sw    t0, 0x28(k1)
	sw    t1, 0x2c(k1)
	sw    t2, 0x30(k1)
	sw    t3, 0x34(k1)
	mfc0  k0, c0_status
	sw    k0, 0x38(k1)         # FrStatus
	sw    t4, 0x3c(k1)
	sw    t5, 0x40(k1)
	sw    ra, 0x44(k1)
	lui   t3, UAREA >> 16      # t0-t5, ra now free for the handler path
	lw    t0, U_FRVA(t3)       # t0 = frame page user VA
	mfc0  t1, c0_cause
	andi  t1, t1, 0x7c
	srl   t1, t1, 2            # t1 = exception code (survives to user)
	sll   t2, t1, 7
	addu  t0, t0, t2           # t0 = this code's frame VA: handler arg
	lw    t2, U_HANDLER(t3)    # t2 = user handler address
	nop                        # load delay

# Phase 4: floating-point check — would the FP register file need
# saving? No process in this configuration uses CU1. (6 instructions)
ph_fpcheck:
	mfc0  k0, c0_status
	lui   k1, 0x2000           # CU1 usable bit
	and   k0, k0, k1
	sltu  k0, zero, k0
	beqz  k0, ph_tlbcheck
	nop                        # (delay)
	# FP save sequence would go here (unreached in this configuration)
	hcall HC_PANIC

# Phase 5: check for TLB fault — Mod/TLBL/TLBS need the page-table
# ("C") path; simple exceptions fall through. (8 instructions)
ph_tlbcheck:
	sltiu k0, t1, 4            # code < 4 ?
	sltu  k1, zero, t1         # code > 0 ?
	and   k0, k0, k1           # 1 <= code <= 3: TLB-type exception
	bnez  k0, tlb_prot
	nop                        # (delay)
	mfc0  k0, c0_cause         # defensive re-read: cause unchanged?
	andi  k0, k0, 0x7c
	srl   k0, k0, 2

# Phase 6: vector to user. (3 instructions)
ph_vector:
	mtc0  t2, c0_epc
	jr    t2
	rfe
ph_end:

# --- TLB/protection faults: page tables must be consulted; Ultrix-
# style C code runs behind the HCALL, then we either resume the user
# (page fixed or instruction emulated) or vector to the handler.
tlb_prot:
	hcall HC_TLBPROT
tlb_prot_resume:
	mfc0  k0, c0_epc
	jr    k0
	rfe

# --- Kernel-mode fault: the simulated kernel never faults; anything
# arriving here is a simulator bug.
kern_fault:
	hcall HC_PANIC
	b     kern_fault
	nop

# ---------------------------------------------------------------------
# Slow path: the standard Ultrix general-purpose exception mechanism.
# System calls take a lighter entry (voluntary kernel crossings save
# only what the C dispatcher reads and may rewrite); everything else
# saves every user register (some effectively twice, counting the later
# sigcontext copy-out, as the paper notes), switches to the kernel
# stack, and calls the C-level trap handler.
# ---------------------------------------------------------------------
to_slow:
	mfc0  k1, c0_cause
	andi  k1, k1, 0x7c
	addiu k1, k1, -32          # ExcSys << 2
	beqz  k1, sys_path
	nop
ultrix_save:
	lui   k0, UAREA >> 16
	lw    k0, U_KSTACK(k0)
	nop                        # load delay
	addiu k0, k0, -TFSIZE      # trapframe on kernel stack
	sw    at, 0(k0)
	sw    v0, 4(k0)
	sw    v1, 8(k0)
	sw    a0, 12(k0)
	sw    a1, 16(k0)
	sw    a2, 20(k0)
	sw    a3, 24(k0)
	sw    t0, 28(k0)
	sw    t1, 32(k0)
	sw    t2, 36(k0)
	sw    t3, 40(k0)
	sw    t4, 44(k0)
	sw    t5, 48(k0)
	sw    t6, 52(k0)
	sw    t7, 56(k0)
	sw    s0, 60(k0)
	sw    s1, 64(k0)
	sw    s2, 68(k0)
	sw    s3, 72(k0)
	sw    s4, 76(k0)
	sw    s5, 80(k0)
	sw    s6, 84(k0)
	sw    s7, 88(k0)
	sw    t8, 92(k0)
	sw    t9, 96(k0)
	sw    gp, 100(k0)
	sw    sp, 104(k0)
	sw    fp, 108(k0)
	sw    ra, 112(k0)
	mfhi  k1
	sw    k1, 116(k0)
	mflo  k1
	sw    k1, 120(k0)
	mfc0  k1, c0_epc
	sw    k1, 124(k0)
	mfc0  k1, c0_cause
	sw    k1, 128(k0)
	mfc0  k1, c0_badvaddr
	sw    k1, 132(k0)
	mfc0  k1, c0_status
	sw    k1, 136(k0)
	move  sp, k0               # kernel stack for the C code
ultrix_ccode:
	hcall HC_TRAP              # trap(): posting, recognition, delivery

# The C layer may have rewritten the trapframe (sendsig redirects EPC to
# the signal trampoline; sigreturn rewrites everything). Restore from it.
ultrix_restore:
	lui   k0, UAREA >> 16
	lw    k0, U_KSTACK(k0)
	nop                        # load delay
	addiu k0, k0, -TFSIZE
	lw    k1, 136(k0)
	mtc0  k1, c0_status
	lw    k1, 124(k0)
	mtc0  k1, c0_epc
	lw    k1, 116(k0)
	mthi  k1
	lw    k1, 120(k0)
	mtlo  k1
	lw    at, 0(k0)
	lw    v0, 4(k0)
	lw    v1, 8(k0)
	lw    a0, 12(k0)
	lw    a1, 16(k0)
	lw    a2, 20(k0)
	lw    a3, 24(k0)
	lw    t0, 28(k0)
	lw    t1, 32(k0)
	lw    t2, 36(k0)
	lw    t3, 40(k0)
	lw    t4, 44(k0)
	lw    t5, 48(k0)
	lw    t6, 52(k0)
	lw    t7, 56(k0)
	lw    s0, 60(k0)
	lw    s1, 64(k0)
	lw    s2, 68(k0)
	lw    s3, 72(k0)
	lw    s4, 76(k0)
	lw    s5, 80(k0)
	lw    s6, 84(k0)
	lw    s7, 88(k0)
	lw    t8, 92(k0)
	lw    t9, 96(k0)
	lw    gp, 100(k0)
	lw    sp, 104(k0)
	lw    fp, 108(k0)
	lw    ra, 112(k0)
	mfc0  k0, c0_epc
	jr    k0
	rfe

# ---------------------------------------------------------------------
# System-call path: save the registers the dispatcher reads (v0, a0-a3)
# and those it may rewrite (v0, EPC, status, sp — sigreturn rewrites
# the rest of the register file directly). Unix syscalls preserve all
# other registers by convention, so nothing else is touched.
# ---------------------------------------------------------------------
sys_path:
	lui   k0, UAREA >> 16
	lw    k0, U_KSTACK(k0)
	nop                        # load delay
	addiu k0, k0, -TFSIZE
	sw    v0, 4(k0)
	sw    a0, 12(k0)
	sw    a1, 16(k0)
	sw    a2, 20(k0)
	sw    a3, 24(k0)
	sw    sp, 104(k0)
	mfc0  k1, c0_epc
	sw    k1, 124(k0)
	mfc0  k1, c0_cause
	sw    k1, 128(k0)
	mfc0  k1, c0_status
	sw    k1, 136(k0)
sys_ccode:
	hcall HC_SYSCALL
sys_restore:
	lui   k0, UAREA >> 16
	lw    k0, U_KSTACK(k0)
	nop                        # load delay
	addiu k0, k0, -TFSIZE
	lw    v0, 4(k0)            # result
	lw    k1, 136(k0)
	mtc0  k1, c0_status
	lw    k1, 124(k0)
	mtc0  k1, c0_epc
	lw    sp, 104(k0)          # sigreturn may switch stacks
	mfc0  k0, c0_epc
	jr    k0
	rfe

# ---------------------------------------------------------------------
# Kernel entry for launching the user process: the host boot code sets
# a0 = user entry point, a1 = initial user sp, then starts here.
# ---------------------------------------------------------------------
kern_entry:
	mtc0  a0, c0_epc
	mfc0  t0, c0_status
	ori   t0, t0, 0x8          # KUp = user
	mtc0  t0, c0_status
	move  sp, a1
	move  a0, zero
	move  t0, zero
	mfc0  k0, c0_epc
	jr    k0
	rfe
kern_end:
`
