package kernel

import (
	"uexc/internal/arch"
	"uexc/internal/tlb"
)

// Costs are the cycle charges for the kernel phases that Ultrix
// implemented in compiled C and that this simulation runs host-side.
// The assembly first-level handlers are executed and therefore need no
// charges. Values are calibrated so that the *Ultrix baseline* matches
// the anchors the paper publishes for the DECstation 5000/200 at
// 25 MHz:
//
//   - null system call (getpid):            ~12 µs   (§3.3)
//   - simple exception round trip:          ~80 µs   (Table 2)
//   - write-protection fault delivery:      ~60 µs   (Table 2)
//
// The division among posting/recognition/delivery follows the three-
// phase structure of §3.1.  Cycle counts are "C-code path lengths" at
// roughly 1.3 cycles/instruction, the measured CPI of the era's
// compiled kernel code.
type Costs struct {
	TrapEntry    uint64 // trap(): decode exception, build environment
	Post         uint64 // psignal(): set signal bit, siglist bookkeeping
	Recognize    uint64 // issignal()/CURSIG on the way back to user
	Sendsig      uint64 // sendsig() body beyond the sigcontext copy
	CopyWord     uint64 // per-word copyin/copyout of the sigcontext
	Sigreturn    uint64 // sigreturn() body beyond the copyin
	SyscallBase  uint64 // syscall dispatch: validate, table, copyargs
	SyscallBody  uint64 // trivial syscall body (getpid)
	MprotectPage uint64 // per-page PTE rewrite + TLB shootdown
	DemandPage   uint64 // demand-zero fill: allocate, zero, enter PTE

	// Fast-path C portions (§3.2.2-3.2.4).
	ProtLookup   uint64 // read PTEs, vm_map + shared-memory checks
	ProtAmplify  uint64 // eager amplification: set D in PTE + TLB
	SubpageCheck uint64 // consult the subpage bitmap
	EmulLoad     uint64 // emulate a faulting load/store (per word)
	EmulBranch   uint64 // additionally emulate the branch (delay slot)
	ResumeRegs   uint64 // restore scratch registers on kernel resume
}

// DefaultCosts returns the calibrated model.
func DefaultCosts() Costs {
	return Costs{
		TrapEntry:    180,
		Post:         270,
		Recognize:    230,
		Sendsig:      330,
		CopyWord:     7,
		Sigreturn:    150,
		SyscallBase:  180,
		SyscallBody:  40,
		MprotectPage: 75,
		DemandPage:   500,

		ProtLookup:   130,
		ProtAmplify:  60,
		SubpageCheck: 90,
		EmulLoad:     45,
		EmulBranch:   25,
		ResumeRegs:   30,
	}
}

// Unix signal numbers used by the exception-to-signal mapping.
const (
	SIGILL  = 4
	SIGTRAP = 5
	SIGFPE  = 8
	SIGBUS  = 10
	SIGSEGV = 11
)

// signalFor maps an exception code to its Unix signal.
func signalFor(code uint32) uint32 {
	switch code {
	case arch.ExcMod, arch.ExcTLBL, arch.ExcTLBS:
		return SIGSEGV
	case arch.ExcAdEL, arch.ExcAdES, arch.ExcDBE, arch.ExcIBE:
		return SIGBUS
	case arch.ExcBp:
		return SIGTRAP
	case arch.ExcOv:
		return SIGFPE
	case arch.ExcRI, arch.ExcCpU:
		return SIGILL
	}
	return SIGILL
}

// trapframe gives host-side access to the register save area the slow
// path built on the kernel stack.
type trapframe struct{ k *Kernel }

func (t trapframe) base() uint32 { return KStackTop - TrapframeSize }

func (t trapframe) word(off uint32) uint32 {
	return t.k.loadKernelWord(t.base() + off)
}

func (t trapframe) setWord(off, v uint32) {
	t.k.storeKernelWord(t.base()+off, v)
}

// reg reads saved register r (1..31, excluding k0/k1 which are not
// saved; gp..ra live at their slots).
func (t trapframe) reg(r arch.Reg) uint32 {
	off, ok := tfSlot(r)
	if !ok {
		return 0
	}
	return t.word(off)
}

func (t trapframe) setReg(r arch.Reg, v uint32) {
	if off, ok := tfSlot(r); ok {
		t.setWord(off, v)
	}
}

// tfSlot maps a register to its trapframe offset.
func tfSlot(r arch.Reg) (uint32, bool) {
	switch {
	case r == arch.RegZero, r == arch.RegK0, r == arch.RegK1:
		return 0, false
	case r >= arch.RegAT && r <= arch.RegT7: // at..t7: slots 0..14
		return uint32(r-arch.RegAT) * 4, true
	case r >= arch.RegS0 && r <= arch.RegS7:
		return TfS0 + uint32(r-arch.RegS0)*4, true
	case r == arch.RegT8:
		return TfT8, true
	case r == arch.RegT9:
		return TfT9, true
	case r == arch.RegGP:
		return TfGP, true
	case r == arch.RegSP:
		return TfSP, true
	case r == arch.RegFP:
		return TfFP, true
	case r == arch.RegRA:
		return TfRA, true
	}
	return 0, false
}

// ultrixTrap is the C-level trap() handler: the slow path for every
// exception the fast mechanism does not claim. It mirrors the structure
// described in §3.1: decode, then either syscall dispatch, page-fault
// service, or the three-phase signal machinery.
func (k *Kernel) ultrixTrap() error {
	tf := trapframe{k}
	k.Charge(k.Costs.TrapEntry)

	cause := tf.word(TfCause)
	code := cause & arch.CauseExcMask >> arch.CauseExcShift
	k.eventf("kernel: trap() decode, exccode=%s", arch.ExcName(code))

	switch code {
	case arch.ExcSys:
		return k.syscallFromTrapframe()
	case arch.ExcRI:
		// §3.2.3: without the proposed hardware, user-level TLB
		// protection modification can be provided "through software
		// emulation of unused opcodes in the kernel". A UTLBMOD
		// executed on a machine without the hardware raises RI; the
		// kernel decodes and emulates it here (more slowly — page
		// tables and TLB state must be touched in C).
		if handled, err := k.emulateUTLBModOpcode(tf); err != nil || handled {
			return err
		}
		k.slowPathRecursion(code, tf.word(TfBadVA))
		return k.postSignal(signalFor(code), code, tf.word(TfBadVA))
	case arch.ExcMod, arch.ExcTLBL, arch.ExcTLBS:
		badva := tf.word(TfBadVA)
		handled, err := k.pageFaultService(badva, code)
		if err != nil {
			return err
		}
		if handled {
			// Transparent: retry the faulting instruction.
			k.event("kernel: page fault serviced, retry")
			return nil
		}
		// Genuine protection violation: a claimed class arriving here
		// with UEX set was deflected by the recursion gate — escalate
		// before signaling.
		k.slowPathRecursion(code, badva)
		return k.postSignal(signalFor(code), code, badva)
	default:
		k.slowPathRecursion(code, tf.word(TfBadVA))
		return k.postSignal(signalFor(code), code, tf.word(TfBadVA))
	}
}

// emulateUTLBModOpcode implements the software variant of §3.2.3: a
// reserved-instruction fault whose faulting word is UTLBMOD is emulated
// by the kernel, honoring the same U-bit permission model the hardware
// would enforce but paying for page-table access in "C". Returns
// handled=false if the instruction is not an emulatable UTLBMOD or the
// permission check fails (the caller then signals SIGILL, the same
// last-chance behaviour as any other reserved instruction).
func (k *Kernel) emulateUTLBModOpcode(tf trapframe) (bool, error) {
	if tf.word(TfCause)&arch.CauseBD != 0 {
		return false, nil // not emulated from a branch delay slot
	}
	epc := tf.word(TfEPC)
	word, ok := k.loadUserWord(epc)
	if !ok {
		return false, nil
	}
	inst := arch.Decode(word)
	if inst.Mn != arch.MnUTLBMOD {
		return false, nil
	}
	va := tf.reg(inst.Rs)
	prot := tf.reg(inst.Rt)

	p := k.Proc
	vpn := va >> arch.PageShift
	pte, okPTE := p.pte(vpn)
	// The emulation walks the page table and validates the U bit —
	// the work the paper warns "may not provide acceptable
	// performance" relative to the hardware path.
	k.Charge(k.Costs.ProtLookup + k.Costs.ProtAmplify)
	if !okPTE || pte&pteAlloc == 0 || pte&tlb.LoU == 0 {
		return false, nil // not permitted: fall through to SIGILL
	}
	pte &^= tlb.LoV | tlb.LoD
	if prot&2 != 0 {
		pte |= tlb.LoV
	}
	if prot&1 != 0 {
		pte |= tlb.LoD
	}
	p.setPTE(vpn, pte)
	if _, idx, hit := k.TLB.Lookup(va, p.asid); hit {
		k.TLB.UpdateProtection(idx, prot&1 != 0, prot&2 != 0)
	}
	tf.setWord(TfEPC, epc+4) // skip the emulated instruction
	k.Stats.UTLBEmuls++
	k.event("kernel: emulated utlbmod opcode (software §3.2.3)")
	return true, nil
}

// pageFaultService handles demand paging for legitimate addresses.
// It reports handled=false for genuine protection violations.
func (k *Kernel) pageFaultService(badva, code uint32) (bool, error) {
	p := k.Proc
	// A lying TLB entry (soft error) is scrubbed and the access retried;
	// see scrubTLB. Ordered first so an upset entry cannot masquerade as
	// a protection violation and loop through the signal path.
	if k.scrubTLB(badva) {
		return true, nil
	}
	vpn := badva >> arch.PageShift
	pte, ok := p.pte(vpn)
	if !ok {
		return false, nil
	}
	switch {
	case pte&pteAlloc == 0:
		// Unallocated: demand-zero if the region is legitimate.
		if !p.legitimateVA(badva) {
			return false, nil
		}
		if err := p.MapPage(badva, p.regionWritable(badva), p.regionWritable(badva)); err != nil {
			return false, err
		}
		k.Charge(k.Costs.DemandPage)
		k.Stats.PageFaults++
		return true, nil
	case code == arch.ExcMod, code == arch.ExcTLBS && pte&tlb.LoV != 0:
		// Write to a clean page: protection violation (mprotect'ed or
		// read-only region), not a paging event.
		return false, nil
	case pte&tlb.LoV == 0:
		// Allocated but invalid: user protected it with PROT_NONE.
		return false, nil
	}
	return false, nil
}

// postSignal runs the Unix three-phase machinery: posting, recognition,
// and delivery via sendsig (or termination if no handler is installed).
func (k *Kernel) postSignal(sig, code, badva uint32) error {
	p := k.Proc
	k.Charge(k.Costs.Post)
	k.eventf("kernel: psignal posts signal %d", sig)

	k.Charge(k.Costs.Recognize)
	k.event("kernel: signal recognized on return to user")

	handler := p.sigHandlers[sig&31]
	if handler != 0 && p.trampolineVA == 0 {
		// A handler without a registered trampoline cannot be invoked;
		// treat as unhandled rather than vectoring user code to 0.
		handler = 0
	}
	if p.forceKill {
		// Escalation condemned the process (see escalate.go): no user
		// handler may intercept its death.
		p.forceKill = false
		handler = 0
	}
	if handler == 0 {
		k.Stats.Terminations++
		k.eventf("kernel: no handler, terminating with signal %d", sig)
		k.terminateCurrent(128 + sig)
		return nil
	}
	return k.sendsig(handler, sig, code, badva)
}

// sendsig builds a sigcontext on the user stack, redirects the
// trapframe to the signal trampoline, and arranges the handler call
// arguments — the Ultrix delivery phase.
func (k *Kernel) sendsig(handler, sig, code, badva uint32) error {
	tf := trapframe{k}
	p := k.Proc

	sp := tf.word(TfSP)
	scp := (sp - uint32(TfWords*4) - 16) &^ 7 // sigcontext below current stack

	// Copy the entire trapframe out to user space as the sigcontext.
	// The destination translation is memoized per page: nothing executes
	// between iterations, so the PTE cannot change except through the
	// MapPage retry below, which refreshes the memo.
	memoVPN, memoBase := ^uint32(0), uint32(0)
	for i := uint32(0); i < TfWords; i++ {
		v := tf.word(i * 4)
		va := scp + i*4
		if va>>arch.PageShift == memoVPN {
			if k.Mem.StoreWord(memoBase|va&(arch.PageSize-1), v) == nil {
				continue
			}
			memoVPN = ^uint32(0) // fall through to the uncached path
		}
		if pa, ok := k.translateUser(va); ok && k.Mem.StoreWord(pa, v) == nil {
			memoVPN, memoBase = va>>arch.PageShift, pa&^(arch.PageSize-1)
			continue
		}
		// The stack page may itself be unmapped: map and retry once. If
		// even that fails the process's stack pointer is garbage (its
		// own doing or an injected corruption) — like Unix, a signal
		// frame that cannot be written kills the process with SIGSEGV;
		// it must never surface as a fatal machine error.
		if err := p.MapPage(va, true, true); err != nil {
			return k.sendsigKill(va)
		}
		k.Charge(k.Costs.DemandPage)
		if !k.storeUserWord(va, v) {
			return k.sendsigKill(va)
		}
		memoVPN = ^uint32(0)
	}
	k.Charge(k.Costs.Sendsig + uint64(TfWords)*k.Costs.CopyWord)

	// Redirect: on exception return, control enters the trampoline with
	// the handler address and signal arguments in place.
	tf.setWord(TfEPC, p.trampolineVA)
	tf.setReg(arch.RegA0, sig)
	tf.setReg(arch.RegA1, code)
	tf.setReg(arch.RegA2, scp)
	tf.setReg(arch.RegA3, handler)
	tf.setReg(arch.RegSP, scp)

	k.Stats.UnixDeliveries++
	k.event("kernel: sendsig copies sigcontext, redirects to trampoline")
	return nil
}

// sendsigKill terminates the current process after a sigcontext
// copyout failure — the Unix verdict for an unwritable signal stack.
func (k *Kernel) sendsigKill(va uint32) error {
	k.eventf("kernel: sendsig copyout failed at %#x, killing", va)
	k.Stats.Terminations++
	k.terminateCurrent(128 + SIGSEGV)
	return nil
}

// sigreturn restores the sigcontext the trampoline passes back.
// Syscalls arrive via the light save path, so sigreturn — the one
// syscall that rewrites the whole register file — restores registers
// directly and leaves the light path's slots (v0, sp, EPC, status) in
// the trapframe for the assembly restore. Status is sanitized so user
// code cannot re-enter the kernel privileged.
func (k *Kernel) sigreturn(scp uint32) error {
	c := k.CPU
	tf := trapframe{k}
	var sc [TfWords]uint32
	// Source translation memoized per page, as in sendsig's copyout.
	memoVPN, memoBase := ^uint32(0), uint32(0)
	for i := uint32(0); i < TfWords; i++ {
		va := scp + i*4
		var v uint32
		ok := false
		if va>>arch.PageShift == memoVPN {
			if w, err := k.Mem.LoadWord(memoBase | va&(arch.PageSize-1)); err == nil {
				v, ok = w, true
			}
		}
		if !ok {
			if pa, transOK := k.translateUser(va); transOK {
				if w, err := k.Mem.LoadWord(pa); err == nil {
					v, ok = w, true
					memoVPN, memoBase = va>>arch.PageShift, pa&^(arch.PageSize-1)
				}
			}
		}
		if !ok {
			// A sigreturn pointing at an unreadable sigcontext means the
			// process corrupted its own stack (or a fault injector did):
			// like Unix, kill the caller rather than the machine.
			k.eventf("kernel: sigreturn copyin failed at %#x, killing", scp+i*4)
			k.Stats.Terminations++
			k.terminateCurrent(128 + SIGSEGV)
			return nil
		}
		sc[i] = v
	}
	for r := arch.RegAT; r <= arch.RegRA; r++ {
		if off, ok := tfSlot(r); ok {
			c.GPR[r] = sc[off/4]
		}
	}
	c.HI, c.LO = sc[TfHI/4], sc[TfLO/4]
	tf.setWord(TfV0, sc[TfV0/4])
	tf.setWord(TfSP, sc[TfSP/4])
	tf.setWord(TfEPC, sc[TfEPC/4])
	// Restore only the user-legitimate Status bits from the sigcontext
	// — the KU/IE stack and the UEX flag. Everything else (coprocessor-
	// usable, BEV, interrupt masks) is kernel-owned and kept from the
	// live trapframe: a corrupted sigcontext must not be able to set
	// CU1 and steer the next exception into the first-level handler's
	// panic leg, or clear KUp and re-enter the kernel privileged.
	const sigUserStatus = 0x3f | arch.SrUEX
	tf.setWord(TfStatus,
		tf.word(TfStatus)&^uint32(sigUserStatus)|sc[TfStatus/4]&sigUserStatus|arch.SrKUp)
	k.Charge(k.Costs.Sigreturn + uint64(TfWords)*k.Costs.CopyWord)
	k.event("kernel: sigreturn restores sigcontext")
	return nil
}

// Charge adds host-phase cycles.
func (k *Kernel) Charge(cycles uint64) { k.CPU.Charge(cycles) }
