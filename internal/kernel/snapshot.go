package kernel

import (
	"uexc/internal/cpu"
	"uexc/internal/mem"
	"uexc/internal/tlb"
)

// State is a point-in-time copy of a whole kernel instance: CPU, TLB,
// memory contents, and every piece of host-side OS state (processes,
// stats, console, frame allocator). Built by CaptureState at a run
// boundary; immutable afterwards and safe to share across machines —
// one warm post-boot State backs every fork in a machine pool.
//
// The simulated-memory snapshot transitively covers everything the
// kernel keeps IN the machine: page tables, trapframes, and the u-area
// all live at kseg0 physical addresses, so restoring memory restores
// them. Only genuinely host-side state needs explicit fields here.
type State struct {
	cpu *cpu.State
	tlb *tlb.State
	mem *mem.MemState

	costs     Costs
	stats     Stats
	events    []Event
	traceEv   bool
	console   []byte
	exited    bool
	exitCode  uint32
	mcheck    error
	nextFrame uint32
	curr      int
	procs     []procState
}

// procState is the host-side half of one process, deep-copied so later
// mutation of the live Proc can never leak into the snapshot.
type procState struct {
	asid        uint8
	ptBase      uint32
	exited      bool
	exitCode    uint32
	ctx         pcb
	brk         uint32
	fexcMask    uint32
	fexcHandler uint32
	frameVA     uint32
	framePhys   uint32
	eager       bool
	watchMode   bool
	sigHandlers [32]uint32
	trampoline  uint32
	recursions  uint32
	forceKill   bool
	killReason  error
	subpages    map[uint32]uint8

	// ptScanGen is deliberately NOT captured: its entries memoize page
	// generations observed at validation time, which on a different
	// machine could alias a restored page's advanced generation while
	// holding different content. Restored processes start with a cold
	// memo and re-verify their page tables on the next SelfCheck.
}

// Insts returns the retired-instruction count at capture time.
func (st *State) Insts() uint64 { return st.cpu.Insts() }

// MemPages returns the number of memory pages recorded in the snapshot.
func (st *State) MemPages() int { return st.mem.Pages() }

// CaptureState snapshots the kernel and its hardware. Call it only at a
// run boundary (between Run/Step calls, never from inside an hcall).
func (k *Kernel) CaptureState() *State {
	st := &State{
		cpu:       k.CPU.CaptureState(),
		tlb:       k.TLB.CaptureState(),
		mem:       k.Mem.CaptureState(),
		costs:     k.Costs,
		stats:     k.Stats,
		traceEv:   k.TraceEvents,
		exited:    k.exited,
		exitCode:  k.exitCode,
		mcheck:    k.mcheck,
		nextFrame: k.nextFrame,
		curr:      k.curr,
	}
	if k.Events != nil {
		st.events = append([]Event(nil), k.Events...)
	}
	if k.console.Len() > 0 {
		st.console = append([]byte(nil), k.console.Bytes()...)
	}
	st.procs = make([]procState, len(k.procs))
	for i, p := range k.procs {
		ps := procState{
			asid: p.asid, ptBase: p.ptBase,
			exited: p.exited, exitCode: p.exitCode,
			ctx: p.ctx, brk: p.brk,
			fexcMask: p.fexcMask, fexcHandler: p.fexcHandler,
			frameVA: p.frameVA, framePhys: p.framePhys,
			eager: p.eager, watchMode: p.watchMode,
			sigHandlers: p.sigHandlers, trampoline: p.trampolineVA,
			recursions: p.recursions,
			forceKill:  p.forceKill, killReason: p.killReason,
		}
		if len(p.subpages) > 0 {
			ps.subpages = make(map[uint32]uint8, len(p.subpages))
			for vpn, bits := range p.subpages {
				ps.subpages[vpn] = bits
			}
		}
		st.procs[i] = ps
	}
	return st
}

// RestoreState rewrites the kernel (and its hardware) to match the
// snapshot, copying only memory pages that have diverged from it (see
// mem.Memory.RestoreState for the copy-on-write rule). Hook wiring
// follows Reset's contract exactly: the kernel's own CPU hooks are
// re-installed, injector hooks (CPU.Inject, TLB.InjectMiss) and the
// watchdog are dropped for the next run's owner to arm. It returns the
// number of memory pages that had to be copied.
func (k *Kernel) RestoreState(st *State) (int, error) {
	dirty, err := k.Mem.RestoreState(st.mem)
	if err != nil {
		return dirty, err
	}
	k.TLB.RestoreState(st.tlb)
	k.TLB.InjectMiss = nil // like Reset: a restore is a fresh run boundary
	c := k.CPU
	c.RestoreState(st.cpu)
	k.wireCPUHooks()

	k.Costs = st.costs
	k.Stats = st.stats
	k.Events = nil
	if st.events != nil {
		k.Events = append([]Event(nil), st.events...)
	}
	k.TraceEvents = st.traceEv
	k.console.Reset()
	k.console.Write(st.console)
	k.exited, k.exitCode = st.exited, st.exitCode
	k.mcheck = st.mcheck
	k.nextFrame = st.nextFrame
	k.curr = st.curr

	// Reuse the existing Proc allocations when the shapes line up (the
	// warm pool's restore-in-place path); the wholesale overwrite also
	// drops each proc's ptScanGen memo, per procState's capture rule.
	if len(k.procs) != len(st.procs) {
		k.procs = make([]*Proc, len(st.procs))
	}
	for i := range st.procs {
		ps := &st.procs[i]
		p := k.procs[i]
		if p == nil {
			p = new(Proc)
			k.procs[i] = p
		}
		*p = Proc{
			k:            k,
			asid:         ps.asid,
			ptBase:       ps.ptBase,
			exited:       ps.exited,
			exitCode:     ps.exitCode,
			ctx:          ps.ctx,
			brk:          ps.brk,
			fexcMask:     ps.fexcMask,
			fexcHandler:  ps.fexcHandler,
			frameVA:      ps.frameVA,
			framePhys:    ps.framePhys,
			eager:        ps.eager,
			watchMode:    ps.watchMode,
			sigHandlers:  ps.sigHandlers,
			trampolineVA: ps.trampoline,
			recursions:   ps.recursions,
			forceKill:    ps.forceKill,
			killReason:   ps.killReason,
		}
		if len(ps.subpages) > 0 {
			p.subpages = make(map[uint32]uint8, len(ps.subpages))
			for vpn, bits := range ps.subpages {
				p.subpages[vpn] = bits
			}
		}
		k.procs[i] = p
	}
	k.Proc = k.procs[k.curr]
	return dirty, nil
}

// restoreShell packs the fixed structures of a whole machine — kernel,
// CPU, memory, TLB — into one allocation. Fork churns through
// thousands of machines per second in a warm pool; building each from
// a single ~3 KB allocation instead of four separate ones (plus two
// eager 4 KB page copies, now lazy) is most of what puts fork well
// under cold boot. The inner pointers keep the shell alive as a unit,
// which matches the machine's lifetime exactly.
type restoreShell struct {
	k  Kernel
	c  cpu.CPU
	m  mem.Memory
	t  tlb.TLB
	p0 Proc     // boot process storage, rewritten by RestoreState
	pv [1]*Proc // single-process procs backing (the post-boot shape)
}

// NewForRestore builds a kernel shell on fresh hardware WITHOUT running
// the boot sequence; the caller must RestoreState into it before use.
// This is the fork-from-snapshot constructor: it skips the image load,
// process setup, and memory scrub that Reset performs, leaving all
// content to the snapshot's lazy O(dirty pages) restore.
func NewForRestore() (*Kernel, error) {
	img, err := bootImage()
	if err != nil {
		return nil, err
	}
	sh := &restoreShell{}
	mem.Init(&sh.m, PhysMemSize)
	// Not cpu.Init: everything it sets beyond the bus wiring (cost model,
	// register reset, micro-TLB flush) is overwritten by the RestoreState
	// this constructor's contract requires before first use.
	sh.c.Mem, sh.c.TLB = &sh.m, &sh.t
	sh.k.CPU, sh.k.Mem, sh.k.TLB, sh.k.Image = &sh.c, &sh.m, &sh.t, img
	// Pre-wire the post-boot process shape so RestoreState's reuse path
	// rewrites sh.p0 in place instead of allocating.
	sh.pv[0] = &sh.p0
	sh.k.procs = sh.pv[:]
	sh.k.Proc = &sh.p0
	return &sh.k, nil
}
