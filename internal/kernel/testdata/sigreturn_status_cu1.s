# Shrunk reproducer for the seed-2223 FastExc-mode campaign panic
# (fleet bench, ROADMAP item 3): an injected mem-corrupt rewrote a
# stack-pointer adjust into a different destination register, execution
# went wild, and a stray sigreturn restored a garbage sigcontext whose
# Status word had CU1 (coprocessor-1-usable) set. The very next
# exception then walked into the first-level handler's ph_fpcheck leg,
# which executes `hcall HC_PANIC` — an unhandled-condition kernel panic
# from purely user-reachable state.
#
# The minimal program fabricates the poisoned sigcontext directly: all
# zeros except a valid SP, a resume EPC, and Status = CU1|KUp. The
# fixed kernel sanitizes the restored Status (only the KU/IE stack and
# UEX are user-restorable), so the following breakpoint is delivered as
# an ordinary SIGTRAP; with no handler registered the process dies with
# exit status 128+5 = 133 — never a kernel panic.
main:
	la    t0, sc_frame
	sw    sp, 104(t0)          # TfSP: keep a valid stack
	la    t1, after
	sw    t1, 124(t0)          # TfEPC: resume below
	li    t1, 0x20000008       # Status = CU1 | KUp, the poison
	sw    t1, 136(t0)          # TfStatus
	move  a0, t0
	li    v0, SYS_sigreturn
	syscall
	nop
after:
	break                      # must be SIGTRAP, not HC_PANIC
	li    a0, 0
	li    v0, SYS_exit
	syscall
	nop
	.align 4
sc_frame:
	.space 140                 # TfWords (35) zeroed words
