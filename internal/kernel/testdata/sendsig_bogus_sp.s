# Shrunk reproducer for the seed-820 Hardware-mode campaign failure
# (fleet bench, ROADMAP item 3): an injected mem-corrupt flipped bit 30
# of a saved stack-pointer word, so the next signal delivery computed
# its sigcontext address from a garbage SP. sendsig's copyout then
# failed outside every legitimate mapping and surfaced as a fatal
# "kernel: sendsig copyout failed" machine error, taking the whole
# campaign run down.
#
# The minimal program needs only the two load-bearing ingredients: a
# registered handler (sendsig runs only when one exists) and a garbage
# SP at fault time. The fixed kernel must kill the process with SIGSEGV
# (exit status 128+11 = 139), exactly as Unix does for an unwritable
# signal stack — never return a machine error.
main:
	li    a0, 5                # SIGTRAP
	la    a1, handler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	li    sp, 0x47feff48       # corrupted SP: unmappable sigcontext
	break                      # delivery must kill, not panic
	li    a0, 0
	li    v0, SYS_exit
	syscall
	nop
handler:
	jr    ra
	nop
