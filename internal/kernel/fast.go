package kernel

import (
	"fmt"

	"uexc/internal/arch"
	"uexc/internal/tlb"
)

// tlbProt is the C-level portion of the fast path for TLB-type
// exceptions (Mod / TLBL / TLBS), reached after the first-level handler
// has saved the exception frame. Per §3.2.2, memory protection faults
// "require the kernel handler to read per-process page tables", which
// is why the paper's write-protect delivery (15 µs) costs more than a
// simple exception (5 µs).
//
// Outcomes:
//   - demand-zero page fault: service transparently and resume;
//   - store to an unprotected 1 KB subpage of a protected hardware
//     page: emulate the load/store (and branch, if in a delay slot)
//     and resume (§3.2.4);
//   - user-level protection fault: optionally amplify eagerly
//     (§3.2.3), then vector to the user handler;
//   - genuine access violation: fall back to the Unix signal path.
//
// On return the assembly stub does "mfc0 k0, c0_epc; jr k0; rfe", so
// this function communicates the continuation by writing EPC.
func (k *Kernel) tlbProt() error {
	c := k.CPU
	p := k.Proc
	code := c.CP0[arch.C0Cause] & arch.CauseExcMask >> arch.CauseExcShift
	badva := c.CP0[arch.C0BadVAddr]
	epc := c.CP0[arch.C0EPC]
	inDelay := c.CP0[arch.C0Cause]&arch.CauseBD != 0

	k.Charge(k.Costs.ProtLookup)
	k.eventf("kernel: fast TLB path, %s at va %#x", arch.ExcName(code), badva)

	vpn := badva >> arch.PageShift
	pte, ok := p.pte(vpn)

	// A TLB entry that contradicts the page table (a flipped bit — see
	// internal/faultinject — or any other soft error) is dropped and the
	// access retried: the PTE is the authority, and the refill reloads
	// truth. Without this, a stale read-only entry over a writable page
	// faults forever.
	if k.scrubTLB(badva) {
		k.resumeFast(epc)
		k.event("kernel: scrubbed TLB entry contradicting PTE, retry")
		return nil
	}

	// Page fault service: unallocated but legitimate.
	if ok && pte&pteAlloc == 0 && p.legitimateVA(badva) {
		if err := p.MapPage(badva, p.regionWritable(badva), p.regionWritable(badva)); err != nil {
			return err
		}
		k.Charge(k.Costs.DemandPage)
		k.Stats.PageFaults++
		k.resumeFast(epc)
		k.event("kernel: demand-zero fill, resume")
		return nil
	}

	if !ok || pte&pteAlloc == 0 {
		// Outside the address space: genuine violation.
		return k.fastFallbackSignal(code, badva)
	}

	// Subpage-protected hardware page?
	if code == arch.ExcMod && pte&pteSubpage != 0 {
		k.Charge(k.Costs.SubpageCheck)
		if !p.SubpageProtected(badva) {
			// Store to an unprotected logical subpage: emulate.
			return k.emulateAndResume(epc, inDelay)
		}
		if p.watchMode {
			// Watch mode (conditional watchpoints): emulate the store
			// with protection intact, report old/new values in the
			// frame, and deliver a notification. The handler resumes
			// past the store; the watchpoint stays armed.
			if k.uexBusy() {
				return k.escalateRecursion(code, badva)
			}
			return k.emulateAndNotify(code, epc, inDelay, badva)
		}
		// Protected subpage: enable access to the whole page and
		// deliver (§3.2.4). A later SysSubpageProt call re-protects.
		if k.uexBusy() {
			return k.escalateRecursion(code, badva)
		}
		k.amplify(vpn, pte)
		k.deliverFast(code)
		return nil
	}

	// Ordinary protection fault. Deliverable if the region underneath
	// permits the access (the fault is user page protection, not an
	// error).
	deliverable := false
	switch code {
	case arch.ExcMod:
		deliverable = pte&pteWrUnder != 0
	case arch.ExcTLBL, arch.ExcTLBS:
		// Valid-bit protection (PROT_NONE) on an allocated page.
		deliverable = pte&tlb.LoV == 0
	}
	if !deliverable {
		return k.fastFallbackSignal(code, badva)
	}

	// About to re-enter the user handler: if it is already in progress
	// (UEX set, §2's recursion hazard), escalate instead of stacking a
	// second frame on top of the first.
	if k.uexBusy() {
		return k.escalateRecursion(code, badva)
	}

	if p.eager {
		k.amplify(vpn, pte)
		k.Stats.EagerAmplifies++
	}
	k.deliverFast(code)
	return nil
}

// scrubTLB compares the live TLB entry for badva against the page
// table and drops it when the two disagree on translation or hardware
// protection. The PTE is the authority: disagreement means the entry
// was upset after refill (fault injection models this as an SEU in the
// CAM or permission bits). Entries carrying the U bit are exempt —
// §3.2.3's user-level protection modification legitimately diverges
// the TLB from the PTE, and scrubbing it would undo the user's
// restriction. Returns true if an entry was dropped (caller retries).
func (k *Kernel) scrubTLB(badva uint32) bool {
	p := k.Proc
	vpn := badva >> arch.PageShift
	idx, hit := k.TLB.Probe(tlb.MakeHi(vpn, p.asid))
	if !hit {
		return false
	}
	e := k.TLB.Read(idx)
	if e.UserModifiable() {
		return false
	}
	var want uint32
	if pte, ok := p.pte(vpn); ok && pte&pteAlloc != 0 {
		want = pte
	}
	const authority = tlb.LoPFNMask | tlb.LoV | tlb.LoD
	if e.Lo&authority == want&authority {
		return false
	}
	k.TLB.InvalidatePage(vpn, p.asid)
	k.Stats.TLBScrubs++
	k.Charge(k.Costs.ProtLookup)
	k.eventf("kernel: TLB entry for va %#x contradicts PTE, scrubbed", badva)
	return true
}

// amplify grants full access to vpn's page in both the PTE and any
// live TLB entry (eager amplification, §3.2.3).
func (k *Kernel) amplify(vpn, pte uint32) {
	p := k.Proc
	pte |= tlb.LoV | tlb.LoD
	p.setPTE(vpn, pte)
	if _, idx, hit := k.TLB.Lookup(vpn<<arch.PageShift, p.asid); hit {
		k.TLB.UpdateProtection(idx, true, true)
	}
	k.Charge(k.Costs.ProtAmplify)
}

// deliverFast vectors the saved exception to the user handler by
// loading EPC; the frame was already saved by the first-level handler.
// It also sets the UEX bit in the live Status word — the software
// analogue of §2's recursion guard. The bit survives the assembly
// stub's rfe (which pops only the mode/interrupt stacks) into the
// running handler, and the user runtime's xret return clears it.
func (k *Kernel) deliverFast(code uint32) {
	c := k.CPU
	c.CP0[arch.C0EPC] = k.Proc.fexcHandler
	c.CP0[arch.C0Status] |= arch.SrUEX
	k.syncClaimMask() // gate closed: recursions take the slow path
	k.Stats.FastDeliveries++
	k.Stats.ProtFaultsToUser++
	k.eventf("kernel: vector %s to user handler", arch.ExcName(code))
}

// resumeFast restores the scratch registers the first-level handler
// consumed (t0-t3) from the exception frame and resumes at epc; the
// user never observes the excursion.
func (k *Kernel) resumeFast(epc uint32) {
	c := k.CPU
	code := c.CP0[arch.C0Cause] & arch.CauseExcMask >> arch.CauseExcShift
	fr := arch.KSeg0Base + k.Proc.framePhys + code*FrameStride
	c.GPR[arch.RegT0] = k.loadKernelWord(fr + FrT0)
	c.GPR[arch.RegT1] = k.loadKernelWord(fr + FrT1)
	c.GPR[arch.RegT2] = k.loadKernelWord(fr + FrT2)
	c.GPR[arch.RegT3] = k.loadKernelWord(fr + FrT3)
	c.CP0[arch.C0EPC] = epc
	k.Charge(k.Costs.ResumeRegs)
}

// frameReg reads the authoritative value of register r at fault time:
// registers the first-level handler clobbered come from the frame,
// everything else is live.
func (k *Kernel) frameReg(code uint32, r arch.Reg) uint32 {
	fr := arch.KSeg0Base + k.Proc.framePhys + code*FrameStride
	switch r {
	case arch.RegAT:
		return k.loadKernelWord(fr + FrAT)
	case arch.RegV0:
		return k.loadKernelWord(fr + FrV0)
	case arch.RegV1:
		return k.loadKernelWord(fr + FrV1)
	case arch.RegA0:
		return k.loadKernelWord(fr + FrA0)
	case arch.RegA1:
		return k.loadKernelWord(fr + FrA1)
	case arch.RegA2:
		return k.loadKernelWord(fr + FrA2)
	case arch.RegA3:
		return k.loadKernelWord(fr + FrA3)
	case arch.RegT0:
		return k.loadKernelWord(fr + FrT0)
	case arch.RegT1:
		return k.loadKernelWord(fr + FrT1)
	case arch.RegT2:
		return k.loadKernelWord(fr + FrT2)
	case arch.RegT3:
		return k.loadKernelWord(fr + FrT3)
	case arch.RegT4:
		return k.loadKernelWord(fr + FrT4)
	case arch.RegT5:
		return k.loadKernelWord(fr + FrT5)
	case arch.RegRA:
		return k.loadKernelWord(fr + FrRA)
	}
	return k.CPU.GPR[r]
}

// setUserReg writes an emulated load's destination. Live registers are
// updated directly; t0-t3 are also rewritten in the frame because
// resumeFast restores them from there.
func (k *Kernel) setUserReg(code uint32, r arch.Reg, v uint32) {
	if r == arch.RegZero {
		return
	}
	k.CPU.GPR[r] = v
	if r >= arch.RegT0 && r <= arch.RegT3 {
		fr := arch.KSeg0Base + k.Proc.framePhys + code*FrameStride
		k.storeKernelWord(fr+FrT0+uint32(r-arch.RegT0)*4, v)
	}
}

// fetchFaultingMemOp locates and decodes the faulting load/store (the
// instruction at EPC, or in the delay slot after it).
func (k *Kernel) fetchFaultingMemOp(epc uint32, inDelay bool) (arch.Inst, uint32, error) {
	memPC := epc
	if inDelay {
		memPC = epc + 4
	}
	instWord, ok := k.loadUserWord(memPC)
	if !ok {
		return arch.Inst{}, 0, fmt.Errorf("kernel: cannot fetch faulting instruction at %#x", memPC)
	}
	inst := arch.Decode(instWord)
	if !inst.IsLoad() && !inst.IsStore() {
		return arch.Inst{}, 0, fmt.Errorf("kernel: subpage fault by non-memory instruction %s at %#x",
			arch.DisassembleWord(instWord, memPC), memPC)
	}
	return inst, memPC, nil
}

// resumeAfter computes where execution continues once the faulting
// instruction has been emulated: past it, or — when it sat in a branch
// delay slot — wherever the (already architecturally executed) branch
// decided (§3.2.4).
func (k *Kernel) resumeAfter(code, epc, memPC uint32, inDelay bool) (uint32, error) {
	if !inDelay {
		return memPC + 4, nil
	}
	branchWord, ok := k.loadUserWord(epc)
	if !ok {
		return 0, fmt.Errorf("kernel: cannot fetch branch at %#x", epc)
	}
	target, taken, err := k.evalBranch(code, arch.Decode(branchWord), epc)
	if err != nil {
		return 0, err
	}
	k.Charge(k.Costs.EmulBranch)
	if taken {
		return target, nil
	}
	return epc + 8, nil
}

// emulateAndResume performs the kernel emulation of §3.2.4: execute the
// faulting load/store against user memory (the kernel has access by
// default), plus the preceding branch when the fault was in a delay
// slot, and resume after the emulated instruction(s).
func (k *Kernel) emulateAndResume(epc uint32, inDelay bool) error {
	c := k.CPU
	code := c.CP0[arch.C0Cause] & arch.CauseExcMask >> arch.CauseExcShift

	// Restore clobbered scratch registers first so branch/address
	// computations see true user state.
	k.resumeFast(epc) // also sets EPC; overwritten below

	inst, memPC, err := k.fetchFaultingMemOp(epc, inDelay)
	if err != nil {
		return err
	}
	ea := k.frameReg(code, inst.Rs) + uint32(inst.SImm())
	if err := k.emulateMemOp(code, inst, ea); err != nil {
		return err
	}
	k.Charge(k.Costs.EmulLoad)
	k.Stats.SubpageEmuls++

	resume, err := k.resumeAfter(code, epc, memPC, inDelay)
	if err != nil {
		return err
	}
	c.CP0[arch.C0EPC] = resume
	k.event("kernel: emulated store on unprotected subpage, resume")
	return nil
}

// emulateAndNotify implements watch mode (conditional watchpoints, one
// of the paper's motivating applications): the store to a watched
// subpage is emulated with protection left intact, the overwritten and
// stored word values are recorded in the exception frame, the frame's
// saved PC is advanced past the store, and the exception is delivered.
// The handler observes the transition and simply returns; the
// watchpoint stays armed for the next store.
func (k *Kernel) emulateAndNotify(code, epc uint32, inDelay bool, badva uint32) error {
	inst, memPC, err := k.fetchFaultingMemOp(epc, inDelay)
	if err != nil {
		return err
	}
	frame := arch.KSeg0Base + k.Proc.framePhys + code*FrameStride

	oldVal, _ := k.loadUserWord(badva &^ 3)
	ea := k.frameReg(code, inst.Rs) + uint32(inst.SImm())
	if err := k.emulateMemOp(code, inst, ea); err != nil {
		return err
	}
	newVal, _ := k.loadUserWord(badva &^ 3)
	k.Charge(k.Costs.EmulLoad)
	k.Stats.SubpageEmuls++
	k.Stats.WatchHits++

	resume, err := k.resumeAfter(code, epc, memPC, inDelay)
	if err != nil {
		return err
	}
	k.storeKernelWord(frame+FrEPC, resume)
	k.storeKernelWord(frame+FrOldVal, oldVal)
	k.storeKernelWord(frame+FrNewVal, newVal)
	k.deliverFast(code)
	k.event("kernel: watched store emulated, notifying handler")
	return nil
}

// emulateMemOp applies one load/store at effective address ea.
func (k *Kernel) emulateMemOp(code uint32, inst arch.Inst, ea uint32) error {
	fail := func() error {
		return fmt.Errorf("kernel: emulation access failed at %#x", ea)
	}
	switch inst.Mn {
	case arch.MnSW:
		if !k.storeUserWord(ea, k.frameReg(code, inst.Rt)) {
			return fail()
		}
	case arch.MnSH:
		v := k.frameReg(code, inst.Rt)
		if !k.storeUserByte(ea, uint8(v)) || !k.storeUserByte(ea+1, uint8(v>>8)) {
			return fail()
		}
	case arch.MnSB:
		if !k.storeUserByte(ea, uint8(k.frameReg(code, inst.Rt))) {
			return fail()
		}
	case arch.MnLW:
		v, ok := k.loadUserWord(ea)
		if !ok {
			return fail()
		}
		k.setUserReg(code, inst.Rt, v)
	case arch.MnLH, arch.MnLHU:
		lo, ok1 := k.loadUserByte(ea)
		hi, ok2 := k.loadUserByte(ea + 1)
		if !ok1 || !ok2 {
			return fail()
		}
		v := uint32(lo) | uint32(hi)<<8
		if inst.Mn == arch.MnLH {
			v = uint32(int32(int16(v)))
		}
		k.setUserReg(code, inst.Rt, v)
	case arch.MnLB, arch.MnLBU:
		b, ok := k.loadUserByte(ea)
		if !ok {
			return fail()
		}
		v := uint32(b)
		if inst.Mn == arch.MnLB {
			v = uint32(int32(int8(b)))
		}
		k.setUserReg(code, inst.Rt, v)
	default:
		return fmt.Errorf("kernel: unsupported emulated op %s", inst.Mn.Name())
	}
	return nil
}

// evalBranch recomputes a branch/jump decision at pc using fault-time
// register values.
func (k *Kernel) evalBranch(code uint32, inst arch.Inst, pc uint32) (target uint32, taken bool, err error) {
	rs := func() int32 { return int32(k.frameReg(code, inst.Rs)) }
	rt := func() int32 { return int32(k.frameReg(code, inst.Rt)) }
	bt := arch.BranchTarget(pc, inst.Imm)
	switch inst.Mn {
	case arch.MnBEQ:
		return bt, rs() == rt(), nil
	case arch.MnBNE:
		return bt, rs() != rt(), nil
	case arch.MnBLEZ:
		return bt, rs() <= 0, nil
	case arch.MnBGTZ:
		return bt, rs() > 0, nil
	case arch.MnBLTZ, arch.MnBLTZAL:
		return bt, rs() < 0, nil
	case arch.MnBGEZ, arch.MnBGEZAL:
		return bt, rs() >= 0, nil
	case arch.MnJ, arch.MnJAL:
		return arch.JumpTarget(pc, inst.Target), true, nil
	case arch.MnJR, arch.MnJALR:
		return uint32(rs()), true, nil
	}
	return 0, false, fmt.Errorf("kernel: instruction before delay slot is not a branch at %#x", pc)
}

// fastFallbackSignal routes a genuine violation discovered on the fast
// path into the Unix machinery. The slow path's trapframe was never
// built, so construct it from live state (charging the equivalent of
// the save sequence), then run the normal posting flow.
func (k *Kernel) fastFallbackSignal(code, badva uint32) error {
	c := k.CPU
	tf := trapframe{k}
	for r := arch.RegAT; r <= arch.RegRA; r++ {
		v := c.GPR[r]
		if r >= arch.RegT0 && r <= arch.RegT3 {
			v = k.frameReg(code, r)
		}
		tf.setReg(r, v)
	}
	tf.setWord(TfHI, c.HI)
	tf.setWord(TfLO, c.LO)
	tf.setWord(TfEPC, c.CP0[arch.C0EPC])
	tf.setWord(TfCause, c.CP0[arch.C0Cause])
	tf.setWord(TfBadVA, badva)
	tf.setWord(TfStatus, c.CP0[arch.C0Status])
	k.Charge(60) // the save sequence the slow path would have executed

	if err := k.postSignal(signalFor(code), code, badva); err != nil {
		return err
	}
	if k.CPU.Halted {
		return nil
	}
	// Continue through the slow path's restore so the (possibly
	// sendsig-modified) trapframe is reloaded.
	c.SetPC(k.Symbol("ultrix_restore"))
	return nil
}
