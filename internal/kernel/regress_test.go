// Regression pins for the seed-space triage fixes (ROADMAP item 3):
// each committed testdata reproducer is the shrunk form of a fleet-
// bench campaign failure, and each test asserts the kernel's fixed
// behaviour plus a golden event trace. The tests live in the external
// package so they can drive a full core.Machine (core imports kernel).
package kernel_test

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uexc/internal/core"
	"uexc/internal/kernel"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runReproducer boots a machine, runs the named testdata program under
// ModeUltrix delivery, and returns the run error plus the kernel event
// log (cycle counts stripped — they are not what these tests pin).
func runReproducer(t *testing.T, name string) (error, []string) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	m.K.TraceEvents = true
	if err := m.LoadProgram(string(src)); err != nil {
		t.Fatal(err)
	}
	runErr := m.Run(1_000_000)
	var events []string
	for _, e := range m.K.Events {
		events = append(events, e.What)
	}
	return runErr, events
}

// checkGolden compares the joined event log against testdata/<name>,
// rewriting it under -update.
func checkGolden(t *testing.T, name string, events []string) {
	t.Helper()
	got := strings.Join(events, "\n") + "\n"
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("event log diverged from %s:\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestSendsigBogusSPKillsProcess pins the seed-820 fix: a signal
// delivery whose sigcontext cannot be written (garbage SP) must kill
// the process with SIGSEGV, never surface as a fatal machine error.
func TestSendsigBogusSPKillsProcess(t *testing.T) {
	runErr, events := runReproducer(t, "sendsig_bogus_sp.s")
	if runErr == nil {
		t.Fatal("reproducer exited clean; it must be killed with SIGSEGV")
	}
	if !strings.Contains(runErr.Error(), "process exited with status 139") {
		t.Errorf("run error = %v, want kill with 128+SIGSEGV (139)", runErr)
	}
	if strings.Contains(runErr.Error(), "sendsig copyout failed") {
		t.Errorf("copyout failure leaked as a machine error: %v", runErr)
	}
	found := false
	for _, e := range events {
		if strings.Contains(e, "sendsig copyout failed") && strings.Contains(e, "killing") {
			found = true
		}
	}
	if !found {
		t.Error("event log does not record the sendsig kill")
	}
	checkGolden(t, "sendsig_bogus_sp.golden", events)
}

// TestSigreturnSanitizesStatus pins the seed-2223 fix: a fabricated
// sigcontext with CU1 set in its Status word must not steer the next
// exception into the first-level handler's HC_PANIC leg. The break
// after sigreturn is an ordinary SIGTRAP death (133), and the run
// error must never carry ErrKernelPanic.
func TestSigreturnSanitizesStatus(t *testing.T) {
	runErr, events := runReproducer(t, "sigreturn_status_cu1.s")
	if runErr == nil {
		t.Fatal("reproducer exited clean; the unhandled SIGTRAP must kill it")
	}
	if errors.Is(runErr, kernel.ErrKernelPanic) {
		t.Errorf("poisoned sigcontext Status reached the kernel panic leg: %v", runErr)
	}
	if !strings.Contains(runErr.Error(), "process exited with status 133") {
		t.Errorf("run error = %v, want SIGTRAP death (128+5 = 133)", runErr)
	}
	checkGolden(t, "sigreturn_status_cu1.golden", events)
}

// TestKernelPanicErrorIsTyped pins the HC_PANIC escape's error shape:
// whatever still reaches it must unwrap to ErrKernelPanic through a
// *kernel.MachineError so campaigns can classify it as an EngineBug
// verdict instead of pattern-matching message text.
func TestKernelPanicErrorIsTyped(t *testing.T) {
	me := &kernel.MachineError{Op: "unhandled condition", Err: kernel.ErrKernelPanic}
	wrapped := fmt.Errorf("run: %w", me)
	if !errors.Is(wrapped, kernel.ErrKernelPanic) {
		t.Error("ErrKernelPanic not reachable through the MachineError chain")
	}
	var out *kernel.MachineError
	if !errors.As(wrapped, &out) || out.Op != "unhandled condition" {
		t.Error("MachineError context lost in the chain")
	}
}
