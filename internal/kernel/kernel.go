package kernel

import (
	"bytes"
	"fmt"
	"sync"

	"uexc/internal/arch"
	"uexc/internal/asm"
	"uexc/internal/cpu"
	"uexc/internal/mem"
	"uexc/internal/tlb"
)

// Event records one step of exception processing for the Figure 1 / 2
// style traces.
type Event struct {
	Cycle uint64
	What  string
}

// Stats tallies kernel activity.
type Stats struct {
	FastDeliveries   uint64 // exceptions vectored to the user handler by the fast path
	UnixDeliveries   uint64 // signals delivered via the Ultrix path
	PageFaults       uint64 // demand-zero fills
	SubpageEmuls     uint64 // loads/stores emulated on unprotected subpages
	EagerAmplifies   uint64
	Syscalls         uint64
	Terminations     uint64
	ProtFaultsToUser uint64
	UTLBEmuls        uint64 // UTLBMOD opcodes emulated in software (§3.2.3)
	WatchHits        uint64 // watched-subpage stores emulated and notified
	Switches         uint64 // process context switches

	// Recursion-escalation tallies (§2's UEX-bit hazard handling).
	UEXRecursions  uint64 // faults observed while a user handler was in progress
	FastFallbacks  uint64 // exception classes demoted Fast→Ultrix after recursion
	RecursionKills uint64 // processes killed for unrecoverable recursion
	TLBScrubs      uint64 // TLB entries dropped for contradicting the page table
}

// Kernel is the simulated operating system instance: one CPU, the
// host-side "C" layer, and up to MaxProcs cooperatively scheduled
// processes with ASID-tagged address spaces. The paper's measurements
// are single-process; additional processes exercise the tagged-TLB
// requirements of §2.2.
type Kernel struct {
	CPU *cpu.CPU
	Mem *mem.Memory
	TLB *tlb.TLB

	Image *asm.Program // assembled kernel, for symbol lookup

	// Proc is the CURRENT process (whose u-area is switched in).
	Proc  *Proc
	procs []*Proc
	curr  int

	nextFrame uint32 // kernel-wide physical frame allocator

	Costs Costs

	Stats  Stats
	Events []Event
	// TraceEvents enables Event recording (used for the Figure 1/2
	// renderings; off by default to keep long runs lean).
	TraceEvents bool

	console  bytes.Buffer
	exited   bool
	exitCode uint32

	// mcheck is the first recorded kernel-internal fault (see
	// machineCheck in errors.go); surfaced at the next hcall boundary.
	mcheck error
}

// The kernel attaches itself to the CPU as one cpu.OSHooks interface
// value (see wireCPUHooks): taking the three hook method values
// instead would allocate three closures on every reboot, restore, and
// fork. These exported wrappers are that interface's implementation.

// HCall implements cpu.OSHooks (the HCALL upcall).
func (k *Kernel) HCall(c *cpu.CPU, code uint32) error { return k.hcall(c, code) }

// OnUEXRecursion implements cpu.OSHooks (§2 double-fault indication).
func (k *Kernel) OnUEXRecursion(e cpu.Exception) { k.onUEXRecursion(e) }

// OnUEXClear implements cpu.OSHooks (user handler completion).
func (k *Kernel) OnUEXClear() { k.onUEXClear() }

// wireCPUHooks (re-)attaches the kernel to its CPU, allocation-free.
func (k *Kernel) wireCPUHooks() { k.CPU.OS = k }

// bootImage assembles and verifies the kernel image exactly once per
// process. The image is immutable after assembly (loaders copy its
// chunk bytes into simulated memory; everything else is symbol reads),
// so one *asm.Program is safely shared by every machine on every
// worker — re-assembling ~identical source per seed was pure waste in
// campaign runs.
var bootImage = sync.OnceValues(func() (*asm.Program, error) {
	img, err := asm.Assemble(KernelSource(), KernelTextBase)
	if err != nil {
		return nil, fmt.Errorf("kernel: assembling image: %w", err)
	}
	// The host-side layer jumps to these labels at runtime; verify them
	// at boot so later Symbol() lookups of them cannot fail.
	for _, sym := range []string{"kern_entry", "ultrix_restore", "gen_vec", "utlb_vec"} {
		if _, ok := img.Symbol(sym); !ok {
			return nil, fmt.Errorf("kernel: image missing required symbol %q", sym)
		}
	}
	for _, ch := range img.Chunks {
		if ch.Addr < arch.KSeg0Base {
			return nil, fmt.Errorf("kernel: image chunk at user address %#x", ch.Addr)
		}
	}
	return img, nil
})

// New boots a kernel on fresh hardware (the assembled image itself is
// cached process-wide; see bootImage).
func New() (*Kernel, error) {
	img, err := bootImage()
	if err != nil {
		return nil, err
	}
	m := mem.New(PhysMemSize)
	t := &tlb.TLB{}
	c := cpu.New(m, t)

	k := &Kernel{CPU: c, Mem: m, TLB: t, Image: img}
	if err := k.Reset(); err != nil {
		return nil, err
	}
	return k, nil
}

// Reset reboots the kernel in place on its existing hardware: memory
// pages, TLB array, and CPU are scrubbed (keeping their allocations),
// injector hooks are dropped, the kernel image is reloaded, and a
// fresh boot process is created. A reset kernel is observationally
// identical to one from New — the property the campaign's machine pool
// depends on and its replay fingerprints verify — while reusing the
// address-space allocations of the previous run.
func (k *Kernel) Reset() error {
	c := k.CPU
	c.ResetAll()
	k.Mem.Reset()
	k.TLB.Reset()
	k.TLB.InjectMiss = nil // TLB.Reset preserves the hook; the reboot must not

	k.wireCPUHooks()

	k.Costs = DefaultCosts()
	k.Stats = Stats{}
	k.Events = nil
	k.TraceEvents = false
	k.console.Reset()
	k.exited, k.exitCode = false, 0
	k.mcheck = nil

	for _, ch := range k.Image.Chunks {
		if err := k.Mem.Write(arch.KSegPhys(ch.Addr), ch.Data); err != nil {
			return fmt.Errorf("kernel: loading image: %w", err)
		}
	}

	// Context register: PTE base for the UTLB refill handler.
	c.CP0[arch.C0Context] = PageTableBase

	k.nextFrame = FramePhysBase
	k.Proc = newProc(k, 0)
	k.procs = []*Proc{k.Proc}
	k.curr = 0

	// Publish u-area fields the assembly reads.
	k.storeKernelWord(UAreaBase+UKStack, KStackTop)
	k.storeKernelWord(UAreaBase+UFexcMask, 0)
	k.storeKernelWord(UAreaBase+UFexcHandler, 0)
	k.storeKernelWord(UAreaBase+UFramePhys, 0)
	k.storeKernelWord(UAreaBase+UFrameVA, 0)
	return nil
}

// Procs returns all processes (index 0 is the boot process).
func (k *Kernel) Procs() []*Proc { return k.procs }

// Console returns everything the user program wrote via SysWrite.
func (k *Kernel) Console() string { return k.console.String() }

// Exited reports whether the user process has exited, and its status.
func (k *Kernel) Exited() (bool, uint32) { return k.exited, k.exitCode }

// Symbol resolves a kernel-image symbol. It panics on unknown names:
// the kernel image is baked-in source whose runtime-critical labels are
// verified at boot, so a miss here is a programming error in the
// simulator itself, not a machine condition.
func (k *Kernel) Symbol(name string) uint32 { return k.Image.MustSymbol(name) }

func (k *Kernel) event(what string) {
	if k.TraceEvents {
		k.Events = append(k.Events, Event{Cycle: k.CPU.Cycles, What: what})
	}
}

// eventf is event with lazy formatting: campaigns run with tracing off,
// and exception paths are hot enough that eager fmt.Sprintf at every
// call site shows up in profiles.
func (k *Kernel) eventf(format string, args ...any) {
	if k.TraceEvents {
		k.Events = append(k.Events, Event{Cycle: k.CPU.Cycles, What: fmt.Sprintf(format, args...)})
	}
}

// --- host-side physical/virtual memory helpers ---------------------

// storeKernelWord writes a word at a kseg0 virtual address. A physical
// fault here is a machine check (recorded, not panicked: corrupted
// per-process state can steer these accesses, and the machine must die
// with a cause chain rather than take the simulator down).
func (k *Kernel) storeKernelWord(kva, v uint32) {
	if err := k.Mem.StoreWord(arch.KSegPhys(kva), v); err != nil {
		k.machineCheck(fmt.Sprintf("store kernel word %#x", kva), err)
	}
}

// loadKernelWord reads a word at a kseg0 virtual address; faults are
// machine checks and read as zero.
func (k *Kernel) loadKernelWord(kva uint32) uint32 {
	v, err := k.Mem.LoadWord(arch.KSegPhys(kva))
	if err != nil {
		k.machineCheck(fmt.Sprintf("load kernel word %#x", kva), err)
		return 0
	}
	return v
}

// translateUser translates a user VA through the page table (host-side,
// no fault side effects). ok is false if unmapped or unallocated.
func (k *Kernel) translateUser(va uint32) (uint32, bool) {
	pte, ok := k.Proc.pte(va >> arch.PageShift)
	if !ok || pte&tlb.LoV == 0 || pte&pteAlloc == 0 {
		return 0, false
	}
	return pte&tlb.LoPFNMask | va&(arch.PageSize-1), true
}

// loadUserWord reads a word from user space via the page table.
func (k *Kernel) loadUserWord(va uint32) (uint32, bool) {
	pa, ok := k.translateUser(va)
	if !ok {
		return 0, false
	}
	v, err := k.Mem.LoadWord(pa)
	return v, err == nil
}

// storeUserWord writes a word to user space via the page table,
// ignoring page protection (the kernel has implicit access, as the
// paper notes for subpage emulation).
func (k *Kernel) storeUserWord(va, v uint32) bool {
	pa, ok := k.translateUser(va)
	if !ok {
		return false
	}
	return k.Mem.StoreWord(pa, v) == nil
}

// loadUserByte / storeUserByte are byte-granularity variants.
func (k *Kernel) loadUserByte(va uint32) (uint8, bool) {
	pa, ok := k.translateUser(va)
	if !ok {
		return 0, false
	}
	v, err := k.Mem.LoadByte(pa)
	return v, err == nil
}

func (k *Kernel) storeUserByte(va uint32, v uint8) bool {
	pa, ok := k.translateUser(va)
	if !ok {
		return false
	}
	return k.Mem.StoreByte(pa, v) == nil
}

// ReadUserWord reads a word from the user address space through the
// page table; exposed for program result verification and the
// application-level simulation layer.
func (k *Kernel) ReadUserWord(va uint32) (uint32, bool) { return k.loadUserWord(va) }

// WriteUserWord writes a word into the user address space through the
// page table, ignoring page protection (kernel privilege).
func (k *Kernel) WriteUserWord(va, v uint32) bool { return k.storeUserWord(va, v) }

// --- hcall dispatch -------------------------------------------------

func (k *Kernel) hcall(c *cpu.CPU, code uint32) error {
	err := k.dispatchHCall(c, code)
	// Surface any machine check recorded while the host layer ran; the
	// kernel-call boundary is where the "hardware" reports it.
	if err == nil && k.mcheck != nil {
		err = k.mcheck
	}
	return err
}

func (k *Kernel) dispatchHCall(c *cpu.CPU, code uint32) error {
	switch code {
	case HCUltrixTrap:
		return k.ultrixTrap()
	case HCSyscall:
		return k.syscallFromTrapframe()
	case HCTLBProt:
		return k.tlbProt()
	case HCPanic:
		var asid uint8
		if k.Proc != nil {
			asid = k.Proc.asid
		}
		return &MachineError{
			Op:       fmt.Sprintf("unhandled condition at epc %#x cause %#x", c.CP0[arch.C0EPC], c.CP0[arch.C0Cause]),
			PC:       c.CP0[arch.C0EPC],
			BadVAddr: c.CP0[arch.C0BadVAddr],
			ASID:     asid,
			Err:      ErrKernelPanic,
		}
	}
	return fmt.Errorf("kernel: unknown hcall %d", code)
}

// LoadUserProgram maps and copies an assembled user image into the
// process address space (impure: all pages writable), and pre-maps a
// few stack pages so startup takes no demand faults.
func (k *Kernel) LoadUserProgram(p *asm.Program) error {
	for _, ch := range p.Chunks {
		if ch.Addr >= arch.KSeg0Base || ch.Addr+uint32(len(ch.Data)) > UserVATop {
			return fmt.Errorf("kernel: user chunk at %#x outside user space", ch.Addr)
		}
		first := ch.Addr >> arch.PageShift
		last := (ch.Addr + uint32(len(ch.Data)) - 1) >> arch.PageShift
		for vpn := first; vpn <= last; vpn++ {
			pte, _ := k.Proc.pte(vpn)
			if pte&pteAlloc == 0 {
				if err := k.Proc.MapPage(vpn<<arch.PageShift, true, true); err != nil {
					return err
				}
			}
		}
		for i, b := range ch.Data {
			if !k.storeUserByte(ch.Addr+uint32(i), b) {
				return fmt.Errorf("kernel: loading user byte at %#x", ch.Addr+uint32(i))
			}
		}
	}
	for i := uint32(1); i <= 4; i++ {
		if err := k.Proc.MapPage(UserStackTop-i*arch.PageSize, true, true); err != nil {
			return err
		}
	}
	return nil
}

// LaunchUser starts the user process at entry with the given initial
// stack pointer, using the kernel's privileged launch stub.
func (k *Kernel) LaunchUser(entry, sp uint32) {
	c := k.CPU
	c.GPR[arch.RegA0] = entry
	c.GPR[arch.RegA1] = sp
	c.PC = k.Symbol("kern_entry")
	c.NPC = c.PC + 4
}

// Run executes until the process exits or the instruction budget runs
// out.
func (k *Kernel) Run(maxInsts uint64) error {
	_, err := k.CPU.Run(maxInsts)
	if err == nil && k.mcheck != nil {
		err = k.mcheck
	}
	return err
}
