package kernel

import (
	"errors"
	"fmt"

	"uexc/internal/arch"
)

// Sentinel error classes for errors.Is. Concrete failures are carried
// by *MachineError with one of these as the terminal cause.
var (
	// ErrMachineCheck marks kernel-internal memory faults: the host
	// "C" layer touched a kseg0 address that physical memory rejected.
	ErrMachineCheck = errors.New("kernel: machine check")
	// ErrBadProc marks corrupted or out-of-range per-process state
	// (page-table indices, frame bookkeeping).
	ErrBadProc = errors.New("kernel: bad process state")
	// ErrRecursion marks the §2 double-fault condition: an exception
	// that should have gone to a user handler arrived while the UEX
	// recursion bit was already set.
	ErrRecursion = errors.New("kernel: recursive exception in user handler")
	// ErrInvariant marks a violated DESIGN.md §6 invariant found by
	// SelfCheck or the fault-injection campaign's runtime checker.
	ErrInvariant = errors.New("kernel: invariant violated")
	// ErrKernelPanic marks the first-level handler's HC_PANIC escape —
	// an exception the assembly vectors could not classify (kernel-mode
	// fault, coprocessor-unusable leg). Campaigns map it to an EngineBug
	// verdict: after sigreturn sanitization it should be unreachable, so
	// hitting it means the engine itself is wrong.
	ErrKernelPanic = errors.New("kernel: first-level handler panic")
)

// MachineError records a fatal machine condition with enough context to
// reconstruct the cause chain: what the kernel was doing, where the
// machine was, and the underlying error. It wraps via Unwrap so
// errors.Is(err, ErrRecursion) etc. work through any nesting.
type MachineError struct {
	Op       string // what the kernel was doing ("deliver Mod", "store kernel word")
	PC       uint32 // user/kernel PC at the time
	BadVAddr uint32 // faulting address, if any
	ASID     uint8  // current process
	Err      error  // cause (possibly another *MachineError)
}

func (e *MachineError) Error() string {
	return fmt.Sprintf("kernel: %s (pc %#x, badva %#x, asid %d): %v",
		e.Op, e.PC, e.BadVAddr, e.ASID, e.Err)
}

func (e *MachineError) Unwrap() error { return e.Err }

// machineCheck records the first kernel-internal fault. The hcall
// dispatcher surfaces it as the run's error at the next kernel-call
// boundary; recording rather than returning keeps the dozens of
// trapframe/u-area accessors non-fallible (a machine check is
// unrecoverable either way — it only needs to stop the run with its
// cause intact, not unwind it).
func (k *Kernel) machineCheck(op string, cause error) {
	if k.mcheck != nil {
		return
	}
	if cause == nil {
		cause = ErrMachineCheck
	}
	var asid uint8
	if k.Proc != nil {
		asid = k.Proc.asid
	}
	k.mcheck = &MachineError{
		Op:       op,
		PC:       k.CPU.PC,
		BadVAddr: k.CPU.CP0[arch.C0BadVAddr],
		ASID:     asid,
		Err:      cause,
	}
}
