package kernel

import (
	"fmt"

	"uexc/internal/arch"
	"uexc/internal/asm"
	"uexc/internal/tlb"
)

// The cooperative multi-process scheduler. Processes switch at system
// calls only (SysYield, SysExit, or termination), so the light syscall
// save set plus the live register file forms a complete context. Each
// process has its own ASID-tagged address space and linear page table;
// switching installs the new page-table base in the Context register,
// the new ASID in EntryHi, and the new process's fast-exception fields
// in the u-area — exactly the per-process state §2.2 says the mechanism
// needs ("this mechanism requires a tagged TLB").

// SpawnUser creates a new process from an assembled user image, ready
// to run from entry with the given stack pointer on its first
// switch-in.
func (k *Kernel) SpawnUser(prog *asm.Program, entry, sp uint32) (*Proc, error) {
	if len(k.procs) >= MaxProcs {
		return nil, fmt.Errorf("kernel: process table full (%d)", MaxProcs)
	}
	p := newProc(k, uint8(len(k.procs)))
	k.procs = append(k.procs, p)
	if err := k.LoadUserProgramFor(p, prog); err != nil {
		return nil, err
	}
	p.ctx.pc = entry
	p.ctx.gpr[arch.RegSP] = sp
	p.ctx.status = arch.SrKUp // resume pops to user mode
	return p, nil
}

// LoadUserProgramFor maps and copies an image into the given process's
// address space (the host-side helpers operate on the current process,
// so it is switched in for the duration of the load).
func (k *Kernel) LoadUserProgramFor(p *Proc, prog *asm.Program) error {
	prev := k.Proc
	k.Proc = p
	defer func() { k.Proc = prev }()
	return k.LoadUserProgram(prog)
}

// nextRunnable returns the index of the next non-exited process after
// the current one (round robin), possibly the current process itself,
// or -1 if none remain.
func (k *Kernel) nextRunnable() int {
	n := len(k.procs)
	for d := 1; d <= n; d++ {
		i := (k.curr + d) % n
		if !k.procs[i].exited {
			return i
		}
	}
	return -1
}

// saveCurrent captures the running process's context at a syscall
// boundary. result is the value its v0 will hold when resumed.
func (k *Kernel) saveCurrent(result uint32) {
	p := k.procs[k.curr]
	c := k.CPU
	tf := trapframe{k}
	p.ctx.gpr = c.GPR // a0-a3/sp/s-regs still live; k0/k1 are trash by convention
	p.ctx.hi, p.ctx.lo = c.HI, c.LO
	p.ctx.xt, p.ctx.xc, p.ctx.xb = c.XT, c.XC, c.XB
	p.ctx.v0 = result
	p.ctx.pc = tf.word(TfEPC) // already advanced past the syscall
	p.ctx.status = tf.word(TfStatus)
}

// switchIn installs process i: register file, the full trapframe (so
// both the light and full assembly restore paths reload consistently),
// the u-area, and the MMU context.
func (k *Kernel) switchIn(i int) {
	k.curr = i
	p := k.procs[i]
	k.Proc = p
	c := k.CPU

	c.GPR = p.ctx.gpr
	c.GPR[arch.RegV0] = p.ctx.v0
	c.HI, c.LO = p.ctx.hi, p.ctx.lo
	c.XT, c.XC, c.XB = p.ctx.xt, p.ctx.xc, p.ctx.xb

	tf := trapframe{k}
	for r := arch.RegAT; r <= arch.RegRA; r++ {
		tf.setReg(r, c.GPR[r])
	}
	tf.setReg(arch.RegV0, p.ctx.v0)
	tf.setWord(TfHI, c.HI)
	tf.setWord(TfLO, c.LO)
	tf.setWord(TfEPC, p.ctx.pc)
	tf.setWord(TfCause, 0)
	tf.setWord(TfBadVA, 0)
	tf.setWord(TfStatus, p.ctx.status|arch.SrKUp)

	// Switch the u-area to the incoming process's fast-exception state.
	// A process descheduled mid-handler (UEX set in its saved status)
	// resumes with the claim word blanked — the recursion gate travels
	// with the context; its XRET republishes the mask.
	mask := p.fexcMask
	if p.ctx.status&arch.SrUEX != 0 {
		mask = 0
	}
	k.storeKernelWord(UAreaBase+UFexcMask, mask)
	k.storeKernelWord(UAreaBase+UFexcHandler, p.fexcHandler)
	k.storeKernelWord(UAreaBase+UFrameVA, p.frameVA)
	k.storeKernelWord(UAreaBase+UFramePhys, arch.KSeg0Base+p.framePhys)
	k.storeKernelWord(UAreaBase+UAsid, uint32(p.asid))

	// MMU context: page-table base for refills, ASID for matching.
	c.CP0[arch.C0Context] = p.ptBase
	c.CP0[arch.C0EntryHi] = uint32(p.asid) << tlb.HiASIDShft
	k.Stats.Switches++
	k.eventf("kernel: switch to process %d", p.asid)
}

// yield deschedules the current process in favor of the next runnable
// one (a no-op reload if it is alone). result is delivered in the
// yielder's v0 when it next runs.
func (k *Kernel) yield(result uint32) {
	k.saveCurrent(result)
	if next := k.nextRunnable(); next >= 0 {
		k.switchIn(next)
	}
}

// terminateCurrent ends the running process with the given status. The
// machine halts when no runnable process remains; otherwise the next
// one is switched in.
func (k *Kernel) terminateCurrent(status uint32) {
	p := k.procs[k.curr]
	p.exited, p.exitCode = true, status
	if next := k.nextRunnable(); next >= 0 {
		k.switchIn(next)
		return
	}
	k.exited = true
	k.exitCode = status
	k.CPU.Halted = true
}
