// Package kernel implements the simulated operating system: an
// Ultrix-like Unix signal path, and the paper's fast user-level
// exception delivery mechanism, both running on the simulated R3000-like
// CPU (internal/cpu).
//
// The first-level exception handlers are written in simulated assembly
// (see source.go) and executed instruction-by-instruction, so path
// lengths are measured, not asserted. The portions the original system
// wrote in C (Unix signal posting/recognition/delivery, page-table
// manipulation, syscall bodies) run host-side behind the HCALL
// instruction and charge calibrated cycle counts (see ultrix.go and
// fast.go for derivations).
package kernel

import "uexc/internal/arch"

// Physical memory layout. The kernel image and data live at the bottom
// of physical memory (mapped through kseg0); user frames are allocated
// above FrameBase by a bump allocator.
const (
	PhysMemSize = 32 << 20 // 32 MB, like a well-provisioned DS5000/200

	// Kernel virtual layout (all kseg0 = phys + 0x80000000).
	KernelTextBase = 0x80000000 // vectors + handlers + kernel code
	UAreaBase      = 0x80040000 // u-area of the RUNNING process (switched in)
	KStackTop      = 0x80060000 // kernel stack grows down
	PageTableBase  = 0x80200000 // process 0's linear page table
	// Each process's page table occupies its own 2 MB-aligned window
	// (the Context register's PTE-base field is bits 31:21), asid*2 MB
	// above PageTableBase. MaxProcs bounds the windows.
	PTStride = 0x200000
	MaxProcs = 3

	FramePhysBase = 0x00800000 // first allocatable user frame (above the PTs)
)

// User address-space layout. Everything lies below UserVATop so the
// linear page table stays small (UserVATop >> 12 entries * 4 bytes).
const (
	UserTextBase  = 0x00400000
	UserDataBase  = 0x01000000
	UserStackTop  = 0x07ff0000 // initial SP; stack grows down
	UserFrameVA   = 0x07000000 // pinned exception-frame page (paper §3.2)
	UserVATop     = 0x08000000
	UserPTEntries = UserVATop >> arch.PageShift // 0x8000 entries = 128 KB
)

// U-area layout: fields the assembly handlers read, at fixed offsets
// from UAreaBase. Keep in sync with source.go, which addresses them as
// UAreaBase + offset.
const (
	UFexcMask    = 0x00 // bitmask of arch.Exc* codes enabled for fast delivery
	UFexcHandler = 0x04 // user handler virtual address
	UFramePhys   = 0x08 // kseg0 alias of the pinned frame page
	UFrameVA     = 0x0c // user virtual address of the frame page
	UKStack      = 0x10 // kernel stack top for the slow path
	UAsid        = 0x14 // current ASID
)

// Exception frame layout: one frame per exception code inside the
// pinned 4 KB page, FrameStride bytes apart (frame for code c is at
// frame page + c*FrameStride). The kernel's save phase fills the first
// words; the user-level low-level handler may use the rest.
const (
	FrameStride = 128

	FrEPC      = 0x00
	FrCause    = 0x04
	FrBadVAddr = 0x08
	FrAT       = 0x0c
	FrV0       = 0x10
	FrV1       = 0x14
	FrA0       = 0x18
	FrA1       = 0x1c
	FrA2       = 0x20
	FrA3       = 0x24
	FrT0       = 0x28
	FrT1       = 0x2c
	FrT2       = 0x30
	FrT3       = 0x34
	FrStatus   = 0x38
	FrT4       = 0x3c
	FrT5       = 0x40
	FrRA       = 0x44
	// Watch-mode extension (§3.2.4 + the intro's conditional
	// watchpoints): the kernel emulates a store to a watched subpage
	// and reports the overwritten and stored values here before
	// delivering; FrEPC already holds the post-store resume address.
	FrOldVal = 0x48
	FrNewVal = 0x4c
	// 0x50.. free for the user handler's additional saves.
)

// Trapframe layout for the Ultrix-style slow path: a full register save
// on the kernel stack, at KStackTop-TrapframeSize. The host-side "C"
// layer reads and rewrites this area exactly as Ultrix's trap() and
// sendsig() manipulate their trapframe.
const (
	TrapframeSize = 144

	TfAT     = 0 * 4 // then v0,v1,a0-a3,t0-t7,s0-s7,t8,t9,gp,sp,fp,ra
	TfV0     = 1 * 4
	TfV1     = 2 * 4
	TfA0     = 3 * 4
	TfA1     = 4 * 4
	TfA2     = 5 * 4
	TfA3     = 6 * 4
	TfT0     = 7 * 4 // t0..t7 occupy slots 7..14
	TfS0     = 15 * 4
	TfT8     = 23 * 4
	TfT9     = 24 * 4
	TfGP     = 25 * 4
	TfSP     = 26 * 4
	TfFP     = 27 * 4
	TfRA     = 28 * 4
	TfHI     = 29 * 4
	TfLO     = 30 * 4
	TfEPC    = 31 * 4
	TfCause  = 32 * 4
	TfBadVA  = 33 * 4
	TfStatus = 34 * 4
	TfWords  = 35
)

// HCALL codes: entry points into the kernel's host-side ("C") layer.
const (
	HCUltrixTrap = 1 // slow path: page faults, Unix signals
	HCSyscall    = 2 // system-call dispatch
	HCTLBProt    = 3 // fast path for TLB/protection faults
	HCPanic      = 4 // unhandled condition
)

// Syscall numbers (v0 at the syscall instruction; Unix-ish).
const (
	SysExit        = 1
	SysWrite       = 4
	SysGetpid      = 20 // the paper's null-syscall comparison point
	SysSbrk        = 17
	SysSigaction   = 46
	SysSigreturn   = 103
	SysMprotect    = 125
	SysCycles      = 200 // read cycle counter (simulator aid, charged like getpid)
	SysUexcEnable  = 210 // the paper's new call: enable fast user exceptions
	SysUexcEager   = 211 // toggle eager amplification
	SysSubpageProt = 212 // 1 KB logical-page protection
	SysSetUBit     = 213 // grant/revoke user TLB-protection modification (U bit)
	SysUexcWatch   = 215 // watch mode: emulate-and-notify on protected subpages
	SysYield       = 216 // cooperative switch to the next runnable process
	SysGetAsid     = 217 // current address-space id (diagnostic)
)

// Protection values for SysMprotect / SysSubpageProt.
const (
	ProtNone      = 0
	ProtRead      = 1
	ProtReadWrite = 3
)

// PTE soft bits, kept in low bits of the EntryLo-format PTE where the
// hardware ignores them (the TLB only interprets bits 8-11 and the PFN).
const (
	pteAlloc   uint32 = 1 << 0 // a physical frame is assigned
	pteSubpage uint32 = 1 << 1 // 1 KB logical-page protection active
	pteWrUnder uint32 = 1 << 2 // underlying region writable (D cleared by mprotect)
)

// Errno-style syscall results (returned in v0; negative means error).
const (
	EOK     = 0
	EINVAL  = ^uint32(22) + 1 // -22
	ENOMEM  = ^uint32(12) + 1 // -12
	ENOSYS  = ^uint32(38) + 1 // -38
	EFAULT  = ^uint32(14) + 1 // -14
	ESRCH   = ^uint32(3) + 1  // -3
	EACCESS = ^uint32(13) + 1 // -13
)
