package kernel

import (
	"strings"
	"testing"
)

func TestEventTracingToggle(t *testing.T) {
	k := newKernel(t)
	k.event("invisible")
	if len(k.Events) != 0 {
		t.Fatal("events recorded while tracing disabled")
	}
	k.TraceEvents = true
	k.event("visible")
	if len(k.Events) != 1 || k.Events[0].What != "visible" {
		t.Fatalf("events = %+v", k.Events)
	}
	if k.Events[0].Cycle != k.CPU.Cycles {
		t.Error("event cycle stamp wrong")
	}
}

func TestKernelSourceListsAllPhases(t *testing.T) {
	src := KernelSource()
	for _, label := range []string{
		"ph_decode:", "ph_compat:", "ph_save:", "ph_fpcheck:",
		"ph_tlbcheck:", "ph_vector:", "ph_end:",
		"utlb_vec:", "gen_vec:", "to_slow:", "sys_path:",
		"ultrix_save:", "ultrix_restore:", "kern_entry:",
	} {
		if !strings.Contains(src, label) {
			t.Errorf("kernel source lacks %q", label)
		}
	}
}

func TestConsoleAccumulates(t *testing.T) {
	k := newKernel(t)
	k.console.WriteString("ab")
	k.console.WriteString("cd")
	if k.Console() != "abcd" {
		t.Errorf("console = %q", k.Console())
	}
}

func TestSymbolPanicsOnUnknown(t *testing.T) {
	k := newKernel(t)
	defer func() {
		if recover() == nil {
			t.Error("Symbol of unknown name did not panic")
		}
	}()
	k.Symbol("no_such_label")
}

func TestProcsListAndSpawnLimits(t *testing.T) {
	k := newKernel(t)
	if len(k.Procs()) != 1 {
		t.Fatalf("procs = %d", len(k.Procs()))
	}
	if k.Procs()[0].ASID() != 0 {
		t.Error("boot process asid != 0")
	}
	// Per-process page tables land in distinct windows.
	p0 := k.Procs()[0]
	if p0.ptBase != PageTableBase {
		t.Errorf("proc0 pt base = %#x", p0.ptBase)
	}
	p1 := newProc(k, 1)
	if p1.ptBase != PageTableBase+PTStride {
		t.Errorf("proc1 pt base = %#x", p1.ptBase)
	}
	// Same VPN maps through different PTEs.
	if p0.pteAddr(5) == p1.pteAddr(5) {
		t.Error("page tables alias")
	}
}
