package kernel

import (
	"strings"
	"testing"

	"uexc/internal/arch"
	"uexc/internal/tlb"
)

func newKernel(t *testing.T) *Kernel {
	t.Helper()
	k, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKernelImageAssembles(t *testing.T) {
	k := newKernel(t)
	// Vectors must sit at their architectural addresses.
	if got := k.Symbol("utlb_vec"); got != arch.VecUTLBMiss {
		t.Errorf("utlb_vec at %#x", got)
	}
	if got := k.Symbol("gen_vec"); got != arch.VecGeneral {
		t.Errorf("gen_vec at %#x", got)
	}
	if k.Symbol("ph_decode") != arch.VecGeneral {
		t.Errorf("fast path does not start at the vector")
	}
	// Phase labels must be ordered.
	order := []string{"ph_decode", "ph_compat", "ph_save", "ph_fpcheck", "ph_tlbcheck", "ph_vector", "ph_end"}
	for i := 1; i < len(order); i++ {
		if k.Symbol(order[i]) <= k.Symbol(order[i-1]) {
			t.Errorf("%s (%#x) not after %s (%#x)", order[i], k.Symbol(order[i]), order[i-1], k.Symbol(order[i-1]))
		}
	}
}

func TestStaticFastPathLength(t *testing.T) {
	// The straight-line distance of the fast path matches Table 3's
	// static layout: 65 instructions from vector to rfe.
	k := newKernel(t)
	bytes := k.Symbol("ph_end") - k.Symbol("ph_decode")
	// The fp-check phase contains one unreached panic instruction.
	if bytes != (65+1)*4 {
		t.Errorf("fast path spans %d bytes (%d words), want %d", bytes, bytes/4, (65+1)*4)
	}
}

func TestMapPageAndTranslate(t *testing.T) {
	k := newKernel(t)
	p := k.Proc
	if err := p.MapPage(UserDataBase, true, true); err != nil {
		t.Fatal(err)
	}
	if !k.WriteUserWord(UserDataBase+8, 0xfeedface) {
		t.Fatal("write failed")
	}
	v, ok := k.ReadUserWord(UserDataBase + 8)
	if !ok || v != 0xfeedface {
		t.Fatalf("read = %#x, %v", v, ok)
	}
	// Unmapped address fails.
	if _, ok := k.ReadUserWord(0x06000000); ok {
		t.Error("read of unmapped va succeeded")
	}
}

func TestProtectClearsTLBAndPTE(t *testing.T) {
	k := newKernel(t)
	p := k.Proc
	if err := p.MapPage(UserDataBase, true, true); err != nil {
		t.Fatal(err)
	}
	// Put a TLB entry in place as the refill handler would.
	pte, _ := p.pte(UserDataBase >> arch.PageShift)
	k.TLB.WriteIndexed(10, tlb.Entry{
		Hi: tlb.MakeHi(UserDataBase>>arch.PageShift, 0),
		Lo: pte,
	})
	n, err := p.Protect(UserDataBase, arch.PageSize, ProtRead)
	if err != nil || n != 1 {
		t.Fatalf("Protect = %d, %v", n, err)
	}
	pte, _ = p.pte(UserDataBase >> arch.PageShift)
	if pte&tlb.LoD != 0 || pte&tlb.LoV == 0 {
		t.Errorf("pte after protect = %#x", pte)
	}
	if _, _, hit := k.TLB.Lookup(UserDataBase, 0); hit {
		t.Error("stale TLB entry survived Protect")
	}
	// PROT_NONE clears V as well.
	if _, err := p.Protect(UserDataBase, arch.PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	pte, _ = p.pte(UserDataBase >> arch.PageShift)
	if pte&tlb.LoV != 0 {
		t.Errorf("pte after PROT_NONE = %#x", pte)
	}
	// Restore read-write.
	if _, err := p.Protect(UserDataBase, arch.PageSize, ProtReadWrite); err != nil {
		t.Fatal(err)
	}
	pte, _ = p.pte(UserDataBase >> arch.PageShift)
	if pte&(tlb.LoV|tlb.LoD) != tlb.LoV|tlb.LoD {
		t.Errorf("pte after RW = %#x", pte)
	}
}

func TestProtectUnmappedFails(t *testing.T) {
	k := newKernel(t)
	if _, err := k.Proc.Protect(0x05000000, arch.PageSize, ProtRead); err == nil {
		t.Error("Protect of unmapped page succeeded")
	}
}

func TestSubpageProtectBitmap(t *testing.T) {
	k := newKernel(t)
	p := k.Proc
	va := uint32(UserDataBase)
	if err := p.MapPage(va, true, true); err != nil {
		t.Fatal(err)
	}
	if err := p.SubpageProtect(va+1024, 2048, ProtNone); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		off  uint32
		want bool
	}{{0, false}, {1024, true}, {2048, true}, {3072, false}, {500, false}, {1500, true}}
	for _, c := range cases {
		if got := p.SubpageProtected(va + c.off); got != c.want {
			t.Errorf("SubpageProtected(+%d) = %v, want %v", c.off, got, c.want)
		}
	}
	pte, _ := p.pte(va >> arch.PageShift)
	if pte&pteSubpage == 0 || pte&tlb.LoD != 0 {
		t.Errorf("pte = %#x: want subpage set, D clear", pte)
	}
	// Releasing all subpages restores writability and drops the flag.
	if err := p.SubpageProtect(va+1024, 2048, ProtReadWrite); err != nil {
		t.Fatal(err)
	}
	pte, _ = p.pte(va >> arch.PageShift)
	if pte&pteSubpage != 0 || pte&tlb.LoD == 0 {
		t.Errorf("pte after release = %#x", pte)
	}
	// Misaligned requests fail.
	if err := p.SubpageProtect(va+100, 1024, ProtNone); err == nil {
		t.Error("misaligned subpage protect succeeded")
	}
	if err := p.SubpageProtect(va, 1000, ProtNone); err == nil {
		t.Error("misaligned length succeeded")
	}
}

func TestEnableFastExceptionsValidation(t *testing.T) {
	k := newKernel(t)
	p := k.Proc
	// Claiming syscalls must fail.
	if err := p.EnableFastExceptions(0x400100, 1<<arch.ExcSys, UserFrameVA); err == nil {
		t.Error("claiming ExcSys succeeded")
	}
	if err := p.EnableFastExceptions(0x400100, 1<<arch.ExcBp, UserFrameVA+12); err == nil {
		t.Error("unaligned frame page succeeded")
	}
	if err := p.EnableFastExceptions(0x400100, 1<<arch.ExcBp, UserFrameVA); err != nil {
		t.Fatal(err)
	}
	// The u-area words must be published for the assembly handler.
	if got := k.loadKernelWord(UAreaBase + UFexcMask); got != 1<<arch.ExcBp {
		t.Errorf("u-area mask = %#x", got)
	}
	if got := k.loadKernelWord(UAreaBase + UFexcHandler); got != 0x400100 {
		t.Errorf("u-area handler = %#x", got)
	}
	if got := k.loadKernelWord(UAreaBase + UFramePhys); got < arch.KSeg0Base {
		t.Errorf("u-area frame phys = %#x, want kseg0 alias", got)
	}
	p.DisableFastExceptions()
	if got := k.loadKernelWord(UAreaBase + UFexcMask); got != 0 {
		t.Errorf("mask after disable = %#x", got)
	}
}

func TestSetUBit(t *testing.T) {
	k := newKernel(t)
	p := k.Proc
	if err := p.SetUBit(UserDataBase, true); err == nil {
		t.Error("SetUBit on unmapped page succeeded")
	}
	if err := p.MapPage(UserDataBase, true, true); err != nil {
		t.Fatal(err)
	}
	if err := p.SetUBit(UserDataBase, true); err != nil {
		t.Fatal(err)
	}
	pte, _ := p.pte(UserDataBase >> arch.PageShift)
	if pte&tlb.LoU == 0 {
		t.Errorf("pte = %#x, want U bit", pte)
	}
	if err := p.SetUBit(UserDataBase, false); err != nil {
		t.Fatal(err)
	}
	pte, _ = p.pte(UserDataBase >> arch.PageShift)
	if pte&tlb.LoU != 0 {
		t.Errorf("pte = %#x, want U bit clear", pte)
	}
}

func TestSbrkBounds(t *testing.T) {
	k := newKernel(t)
	old, err := k.Proc.Sbrk(1 << 20)
	if err != nil || old != UserDataBase {
		t.Fatalf("Sbrk = %#x, %v", old, err)
	}
	if _, err := k.Proc.Sbrk(0x70000000); err == nil {
		t.Error("huge sbrk succeeded")
	}
}

func TestSignalForMapping(t *testing.T) {
	cases := map[uint32]uint32{
		arch.ExcMod:  SIGSEGV,
		arch.ExcTLBL: SIGSEGV,
		arch.ExcAdEL: SIGBUS,
		arch.ExcBp:   SIGTRAP,
		arch.ExcOv:   SIGFPE,
		arch.ExcRI:   SIGILL,
	}
	for code, want := range cases {
		if got := signalFor(code); got != want {
			t.Errorf("signalFor(%s) = %d, want %d", arch.ExcName(code), got, want)
		}
	}
}

func TestTrapframeSlots(t *testing.T) {
	if off, ok := tfSlot(arch.RegAT); !ok || off != TfAT {
		t.Error("at slot wrong")
	}
	if off, ok := tfSlot(arch.RegSP); !ok || off != TfSP {
		t.Error("sp slot wrong")
	}
	if off, ok := tfSlot(arch.RegS3); !ok || off != TfS0+12 {
		t.Error("s3 slot wrong")
	}
	if _, ok := tfSlot(arch.RegK0); ok {
		t.Error("k0 must not have a slot")
	}
	if _, ok := tfSlot(arch.RegZero); ok {
		t.Error("zero must not have a slot")
	}
}

func TestLegitimateVA(t *testing.T) {
	k := newKernel(t)
	p := k.Proc
	if !p.legitimateVA(UserTextBase + 100) {
		t.Error("text not legitimate")
	}
	if p.legitimateVA(UserDataBase + 100) {
		t.Error("heap beyond brk legitimate before sbrk")
	}
	if _, err := p.Sbrk(4096); err != nil {
		t.Fatal(err)
	}
	if !p.legitimateVA(UserDataBase + 100) {
		t.Error("heap below brk not legitimate")
	}
	if !p.legitimateVA(UserStackTop - 100) {
		t.Error("stack not legitimate")
	}
	if p.legitimateVA(0x06660000) {
		t.Error("hole legitimate")
	}
	if p.legitimateVA(UserFrameVA) {
		t.Error("frame page legitimate before enable")
	}
}

func TestOutOfPhysicalMemory(t *testing.T) {
	k := newKernel(t)
	p := k.Proc
	// Exhaust the frame allocator.
	k.nextFrame = PhysMemSize - arch.PageSize
	if err := p.MapPage(UserDataBase, true, true); err != nil {
		t.Fatal(err)
	}
	if err := p.MapPage(UserDataBase+arch.PageSize, true, true); err == nil {
		t.Error("MapPage beyond physical memory succeeded")
	} else if !strings.Contains(err.Error(), "physical") {
		t.Errorf("err = %v", err)
	}
}

func TestCostsDocumentedNonZero(t *testing.T) {
	c := DefaultCosts()
	for name, v := range map[string]uint64{
		"TrapEntry": c.TrapEntry, "Post": c.Post, "Recognize": c.Recognize,
		"Sendsig": c.Sendsig, "CopyWord": c.CopyWord, "Sigreturn": c.Sigreturn,
		"SyscallBase": c.SyscallBase, "SyscallBody": c.SyscallBody,
		"MprotectPage": c.MprotectPage, "DemandPage": c.DemandPage,
		"ProtLookup": c.ProtLookup, "ProtAmplify": c.ProtAmplify,
		"SubpageCheck": c.SubpageCheck, "EmulLoad": c.EmulLoad,
		"EmulBranch": c.EmulBranch, "ResumeRegs": c.ResumeRegs,
	} {
		if v == 0 {
			t.Errorf("cost %s is zero", name)
		}
	}
}
