package kernel

import (
	"fmt"

	"uexc/internal/arch"
	"uexc/internal/cpu"
)

// Recursive-exception escalation (§2). The UEX status bit marks "user
// handler in progress"; the hardware design uses it to force the kernel
// path when a claimed exception arrives recursively. This file is the
// OS half of that policy, shared by both delivery modes:
//
//   - Hardware mode: the CPU suppresses direct vectoring when UEX is
//     set and calls the OnUEXRecursion hook (onUEXRecursion below)
//     before the architectural kernel delivery.
//   - Software (fast path) mode: deliverFast sets UEX in the live
//     Status and the user runtime's xret return clears it; tlbProt
//     calls escalateRecursion when it is about to deliver while the
//     bit is still set.
//
// The ladder: the first recursion in an exception class demotes that
// class from fast to Ultrix delivery (the Unix machinery copes with
// in-progress handlers via sigcontexts on the stack); a fault on the
// exception-frame page itself, or a process that keeps recurring after
// demotions, is unrecoverable and is killed with a recorded
// *MachineError cause chain.

// recursionKillDepth is the number of recursions a process survives
// before escalation gives up on demotion and kills it.
const recursionKillDepth = 4

// uexBusy reports whether the interrupted user context had a fast
// handler in progress (the kernel-entry status push preserves bit 16,
// so the live Status word carries the interrupted context's UEX bit).
func (k *Kernel) uexBusy() bool {
	return k.CPU.CP0[arch.C0Status]&arch.SrUEX != 0
}

// syncClaimMask writes the u-area claim word the first-level handler
// consults. While a user handler is in progress (UEX set) it reads as
// zero: a recursive claimed exception must take the slow path, whose
// kernel-stack trapframe leaves the singleton per-code exception frame
// — and with it the in-progress handler's resume context — intact.
// This is the software analogue of the hardware design's UEX delivery
// gate; deliverFast blanks the word and the CPU's XRET notification
// (onUEXClear) restores it.
func (k *Kernel) syncClaimMask() {
	mask := k.Proc.fexcMask
	if k.uexBusy() {
		mask = 0
	}
	k.storeKernelWord(UAreaBase+UFexcMask, mask)
}

// onUEXClear is the CPU's XRET notification: the user handler finished
// and the recursion gate dropped, so the process's true claim mask is
// republished to the u-area.
func (k *Kernel) onUEXClear() {
	if k.Proc == nil || k.Proc.exited {
		return
	}
	k.syncClaimMask()
}

// slowPathRecursion applies §2's escalation when a fault about to
// enter the signal machinery interrupted an in-progress user handler
// of a claimed class. The first-level handler routed the fault here
// (the claim mask reads zero while UEX is set) precisely so the
// in-progress exception frame stayed intact; record the recursion and
// demote — or condemn — before the signal is posted. Transparently
// serviced faults (demand pages, TLB scrubs) never reach this point:
// fixing them under a running handler is routine, not recursion.
func (k *Kernel) slowPathRecursion(code, badva uint32) {
	if k.Proc == nil || !k.uexBusy() {
		return
	}
	if k.Proc.fexcMask&(1<<code) == 0 {
		return
	}
	k.noteRecursion(code, badva)
}

// onFramePage reports whether badva falls on the process's pinned
// exception-frame page — the one page the delivery mechanism itself
// depends on.
func (p *Proc) onFramePage(badva uint32) bool {
	return p.framePhys != 0 && badva >= p.frameVA && badva < p.frameVA+arch.PageSize
}

// demoteClass switches one exception class from fast to Ultrix
// delivery for the current process: the claim bit is cleared in the
// process, the u-area word the assembly checks, and the hardware user
// vector, so every later fault of this class takes the slow path.
func (k *Kernel) demoteClass(code uint32) {
	p := k.Proc
	bit := uint32(1) << code
	p.fexcMask &^= bit
	k.syncClaimMask()
	k.CPU.UserVector &^= bit
	k.Stats.FastFallbacks++
	k.eventf("kernel: recursion, demote %s to Ultrix delivery", arch.ExcName(code))
}

// noteRecursion applies the escalation ladder and reports whether the
// process must die. Shared by both delivery modes.
func (k *Kernel) noteRecursion(code, badva uint32) (kill bool) {
	p := k.Proc
	k.Stats.UEXRecursions++
	p.recursions++
	k.demoteClass(code)
	if p.onFramePage(badva) || p.recursions >= recursionKillDepth {
		p.killReason = &MachineError{
			Op:       fmt.Sprintf("unrecoverable recursive %s in user handler (depth %d)", arch.ExcName(code), p.recursions),
			PC:       k.CPU.CP0[arch.C0EPC],
			BadVAddr: badva,
			ASID:     p.asid,
			Err:      ErrRecursion,
		}
		p.forceKill = true
		k.Stats.RecursionKills++
		k.eventf("kernel: unrecoverable recursion (%s), killing process %d",
			arch.ExcName(code), p.asid)
		return true
	}
	return false
}

// escalateRecursion is the software-mode escalation point: tlbProt was
// about to re-deliver a claimed fault while the user handler is still
// in progress. Demote (or condemn) and route through the Unix
// machinery; the live UEX bit is cleared because the in-progress
// handler will never be resumed by the fast path.
func (k *Kernel) escalateRecursion(code, badva uint32) error {
	k.noteRecursion(code, badva)
	k.CPU.CP0[arch.C0Status] &^= arch.SrUEX
	return k.fastFallbackSignal(code, badva)
}

// onUEXRecursion is the hardware-mode hook: the CPU saw a claimed
// exception with UEX already set and is about to force the kernel
// path instead (it runs before the architectural kernel delivery).
// Demoting here clears the u-area claim bit before the assembly
// first-level handler checks it, so this very exception — and all
// later ones of its class — flows down the Ultrix slow path, where
// postSignal honors forceKill.
func (k *Kernel) onUEXRecursion(e cpu.Exception) {
	if k.Proc == nil || k.Proc.exited {
		return
	}
	k.noteRecursion(e.Code, e.BadVAddr)
}
