package kernel

import (
	"fmt"

	"uexc/internal/arch"
	"uexc/internal/tlb"
)

// pcb holds a descheduled process's register context (the process
// control block of a cooperative scheduler: switches happen only at
// system calls, so the light syscall save set plus the live register
// file is the complete context).
type pcb struct {
	gpr        [32]uint32
	hi, lo     uint32
	xt, xc, xb uint32 // exception-target/condition registers (proposed hw)
	pc         uint32
	status     uint32
	v0         uint32 // pending syscall result to deliver on resume
}

// Proc is one simulated user process: address space, fast exception
// state, and Unix signal state.
type Proc struct {
	k *Kernel

	asid   uint8
	ptBase uint32 // kseg0 base of this process's linear page table

	exited   bool
	exitCode uint32
	ctx      pcb

	brk uint32 // heap end (grown by SysSbrk)

	// Fast-exception state (mirrors the u-area words the asm reads).
	fexcMask    uint32
	fexcHandler uint32
	frameVA     uint32
	framePhys   uint32 // physical address of the pinned frame page
	eager       bool
	watchMode   bool // emulate-and-notify on protected subpages

	// Unix signal state.
	sigHandlers  [32]uint32
	trampolineVA uint32

	// Recursion-escalation state (see escalate.go).
	recursions uint32 // faults taken while a user handler was in progress

	// ptScanGen memoizes SelfCheck's page-table scan: entry i holds
	// 1 + the Page.Gen under which page-table page i last passed, or 0
	// for never-validated. A page whose generation is unchanged has
	// identical PTEs, and the frame-pool bound only grows, so a pass
	// verdict stays valid until the page is written again. Allocated
	// lazily by SelfCheck; nil after process setup.
	ptScanGen  []uint64
	forceKill  bool  // next postSignal must terminate regardless of handlers
	killReason error // *MachineError cause chain when escalation killed us

	// Subpage protection: per-vpn bitmap of protected 1 KB subpages.
	subpages map[uint32]uint8 // bit i set = subpage i protected
}

func newProc(k *Kernel, asid uint8) *Proc {
	return &Proc{
		k:        k,
		asid:     asid,
		ptBase:   PageTableBase + uint32(asid)*PTStride,
		brk:      UserDataBase,
		subpages: make(map[uint32]uint8),
	}
}

// ASID returns the process's address-space identifier.
func (p *Proc) ASID() uint8 { return p.asid }

// Exited reports termination status.
func (p *Proc) Exited() (bool, uint32) { return p.exited, p.exitCode }

// KillReason returns the recorded *MachineError cause chain when the
// kernel killed this process (recursion escalation), or nil for normal
// exits and signal terminations.
func (p *Proc) KillReason() error { return p.killReason }

// pteAddr returns the kseg0 address of this process's PTE for vpn.
func (p *Proc) pteAddr(vpn uint32) uint32 { return p.ptBase + vpn*4 }

// pte reads the PTE for vpn. ok is false for out-of-range VPNs.
func (p *Proc) pte(vpn uint32) (uint32, bool) {
	if vpn >= UserPTEntries {
		return 0, false
	}
	return p.k.loadKernelWord(p.pteAddr(vpn)), true
}

func (p *Proc) setPTE(vpn, pte uint32) {
	if vpn >= UserPTEntries {
		// Callers bound vpn via pte() first, but corrupted state (fault
		// injection, bad badva) can still steer here; record a machine
		// check rather than scribble outside the page table.
		p.k.machineCheck(fmt.Sprintf("setPTE vpn %#x out of page table", vpn), ErrBadProc)
		return
	}
	p.k.storeKernelWord(p.pteAddr(vpn), pte)
}

// allocFrame returns the PFN of a fresh zeroed physical frame from the
// kernel-wide pool.
func (p *Proc) allocFrame() (uint32, error) {
	k := p.k
	if k.nextFrame+arch.PageSize > PhysMemSize {
		return 0, fmt.Errorf("kernel: out of physical memory")
	}
	pfn := k.nextFrame >> arch.PageShift
	k.nextFrame += arch.PageSize
	return pfn, nil
}

// MapPage allocates (if needed) and maps the page containing va with
// the given writability; used by the loader and demand paging.
// writableRegion marks the page's region as writable underneath, which
// protection faults consult to distinguish user page protection from
// genuine access violations.
func (p *Proc) MapPage(va uint32, writable, writableRegion bool) error {
	vpn := va >> arch.PageShift
	pte, ok := p.pte(vpn)
	if !ok {
		return fmt.Errorf("kernel: va %#x outside user address space", va)
	}
	if pte&pteAlloc == 0 {
		pfn, err := p.allocFrame()
		if err != nil {
			return err
		}
		pte = pfn<<arch.PageShift | pteAlloc
	}
	pte |= tlb.LoV
	pte &^= tlb.LoD | pteWrUnder
	if writable {
		pte |= tlb.LoD
	}
	if writableRegion {
		pte |= pteWrUnder
	}
	p.setPTE(vpn, pte)
	p.k.TLB.InvalidatePage(vpn, p.asid)
	return nil
}

// Protect applies page-granular protection to [va, va+n), like
// mprotect. Pages must be mapped. Returns the number of pages changed.
func (p *Proc) Protect(va, n uint32, prot uint32) (int, error) {
	if n == 0 {
		return 0, nil
	}
	first := va >> arch.PageShift
	last := (va + n - 1) >> arch.PageShift
	changed := 0
	for vpn := first; vpn <= last; vpn++ {
		pte, ok := p.pte(vpn)
		if !ok || pte&pteAlloc == 0 {
			return changed, fmt.Errorf("kernel: protect of unmapped va %#x", vpn<<arch.PageShift)
		}
		pte &^= tlb.LoV | tlb.LoD
		if prot&ProtRead != 0 {
			pte |= tlb.LoV
		}
		if prot&ProtReadWrite == ProtReadWrite {
			pte |= tlb.LoD
		}
		p.setPTE(vpn, pte)
		p.k.TLB.InvalidatePage(vpn, p.asid)
		changed++
	}
	return changed, nil
}

// SubpageProtect write-protects (prot < ReadWrite) or releases 1 KB
// logical pages in [va, va+n). The hardware page is write-protected
// whenever any of its subpages is protected; stores to unprotected
// subpages are emulated by the kernel (§3.2.4).
func (p *Proc) SubpageProtect(va, n uint32, prot uint32) error {
	if va%arch.SubpageSize != 0 || n%arch.SubpageSize != 0 {
		return fmt.Errorf("kernel: subpage protect %#x+%#x not 1K aligned", va, n)
	}
	for off := uint32(0); off < n; off += arch.SubpageSize {
		sva := va + off
		vpn := sva >> arch.PageShift
		sub := sva >> arch.SubpageLog & (arch.SubPerPage - 1)
		pte, ok := p.pte(vpn)
		if !ok || pte&pteAlloc == 0 {
			return fmt.Errorf("kernel: subpage protect of unmapped va %#x", sva)
		}
		bits := p.subpages[vpn]
		if prot&ProtReadWrite == ProtReadWrite {
			bits &^= 1 << sub
		} else {
			bits |= 1 << sub
		}
		if bits == 0 {
			delete(p.subpages, vpn)
			pte |= tlb.LoD
			pte &^= pteSubpage
		} else {
			if p.subpages == nil { // forked procs start with no map
				p.subpages = make(map[uint32]uint8)
			}
			p.subpages[vpn] = bits
			pte &^= tlb.LoD
			pte |= pteSubpage
		}
		p.setPTE(vpn, pte)
		p.k.TLB.InvalidatePage(vpn, p.asid)
	}
	return nil
}

// SubpageProtected reports whether va's 1 KB logical page is protected.
func (p *Proc) SubpageProtected(va uint32) bool {
	bits := p.subpages[va>>arch.PageShift]
	return bits&(1<<(va>>arch.SubpageLog&(arch.SubPerPage-1))) != 0
}

// SetUBit grants or revokes user-level protection modification for
// va's page: the U bit is set in the PTE so refills carry it into the
// TLB, and in any current TLB entry.
func (p *Proc) SetUBit(va uint32, on bool) error {
	vpn := va >> arch.PageShift
	pte, ok := p.pte(vpn)
	if !ok || pte&pteAlloc == 0 {
		return fmt.Errorf("kernel: setubit on unmapped va %#x", va)
	}
	if on {
		pte |= tlb.LoU
	} else {
		pte &^= tlb.LoU
	}
	p.setPTE(vpn, pte)
	p.k.TLB.InvalidatePage(vpn, p.asid)
	return nil
}

// Sbrk grows the heap and returns the old break.
func (p *Proc) Sbrk(incr uint32) (uint32, error) {
	old := p.brk
	nb := p.brk + incr
	if nb > UserFrameVA {
		return 0, fmt.Errorf("kernel: sbrk beyond heap limit")
	}
	p.brk = nb
	return old, nil
}

// legitimateVA reports whether va belongs to a region the process may
// touch (used by the page-fault path to demand-zero or signal).
func (p *Proc) legitimateVA(va uint32) bool {
	switch {
	case va >= UserTextBase && va < UserDataBase:
		return true // text/static (mapped at load, but allow lazy)
	case va >= UserDataBase && va < p.brk:
		return true // heap
	case va >= UserStackTop-(1<<20) && va < UserStackTop:
		return true // 1 MB stack
	case va >= UserFrameVA && va < UserFrameVA+arch.PageSize:
		return p.framePhys != 0
	}
	return false
}

// regionWritable reports whether va's region permits writing at all
// (distinguishing user page protection, which is deliverable, from
// genuine violations). The user image is loaded impure — text pages
// writable — as on old Unix a.out formats, so every legitimate region
// is writable.
func (p *Proc) regionWritable(va uint32) bool {
	return va >= UserTextBase
}

// EnableFastExceptions implements the paper's enabling system call:
// handler is the user handler address, mask a bitmask of arch.Exc*
// codes, frameVA the user page for exception frames. The frame page is
// allocated, pinned (our frames never page out), and its physical
// address published to the first-level handler.
func (p *Proc) EnableFastExceptions(handler, mask, frameVA uint32) error {
	if frameVA%arch.PageSize != 0 {
		return fmt.Errorf("kernel: frame page %#x not page aligned", frameVA)
	}
	// Syscalls and coprocessor faults cannot be claimed (§3.2).
	if mask&(1<<arch.ExcSys|1<<arch.ExcCpU) != 0 {
		return fmt.Errorf("kernel: mask %#x claims unclaimable exceptions", mask)
	}
	if err := p.MapPage(frameVA, true, true); err != nil {
		return err
	}
	pte, _ := p.pte(frameVA >> arch.PageShift)
	p.fexcMask = mask
	p.fexcHandler = handler
	p.frameVA = frameVA
	p.framePhys = pte & tlb.LoPFNMask

	k := p.k
	// The u-area word stays blanked while a handler is in progress (a
	// signal handler may re-enable fast delivery mid-escalation); the
	// XRET notification republishes it.
	k.syncClaimMask()
	k.storeKernelWord(UAreaBase+UFexcHandler, handler)
	k.storeKernelWord(UAreaBase+UFrameVA, frameVA)
	k.storeKernelWord(UAreaBase+UFramePhys, arch.KSeg0Base+p.framePhys)
	return nil
}

// DisableFastExceptions clears the mask (frames remain mapped).
func (p *Proc) DisableFastExceptions() {
	p.fexcMask = 0
	p.k.storeKernelWord(UAreaBase+UFexcMask, 0)
}
