package kernel

import "uexc/internal/arch"

// syscallFromTrapframe dispatches a system call: the slow path has
// saved the full register state, v0 holds the syscall number and a0-a3
// the arguments. Results return in the saved v0; the saved EPC advances
// past the syscall instruction.
func (k *Kernel) syscallFromTrapframe() error {
	tf := trapframe{k}
	k.Charge(k.Costs.SyscallBase)
	k.Stats.Syscalls++

	num := tf.reg(arch.RegV0)
	a0 := tf.reg(arch.RegA0)
	a1 := tf.reg(arch.RegA1)
	a2 := tf.reg(arch.RegA2)

	tf.setWord(TfEPC, tf.word(TfEPC)+4)
	k.eventf("kernel: syscall %d", num)

	res := uint32(EOK)
	switch num {
	case SysExit:
		k.Charge(k.Costs.SyscallBody)
		k.terminateCurrent(a0)
		return nil

	case SysYield:
		k.Charge(k.Costs.SyscallBody + 120) // context-switch work
		k.yield(EOK)
		return nil

	case SysGetAsid:
		k.Charge(k.Costs.SyscallBody)
		res = uint32(k.Proc.asid)

	case SysGetpid:
		k.Charge(k.Costs.SyscallBody)
		res = 1

	case SysCycles:
		k.Charge(k.Costs.SyscallBody)
		// Truncated cycle counter; enough for user-level deltas.
		res = uint32(k.CPU.Cycles)

	case SysWrite:
		// write(fd=a0, buf=a1, len=a2) to the console.
		k.Charge(k.Costs.SyscallBody + uint64(a2))
		for i := uint32(0); i < a2; i++ {
			b, ok := k.loadUserByte(a1 + i)
			if !ok {
				res = EFAULT
				break
			}
			k.console.WriteByte(b)
		}
		if res == EOK {
			res = a2
		}

	case SysSbrk:
		old, err := k.Proc.Sbrk(a0)
		k.Charge(k.Costs.SyscallBody)
		if err != nil {
			res = ENOMEM
		} else {
			res = old
		}

	case SysSigaction:
		// sigaction(sig=a0, handler=a1); a2 carries the trampoline
		// address on first use (the user runtime registers it).
		k.Charge(k.Costs.SyscallBody + 30)
		if a0 >= 32 {
			res = EINVAL
			break
		}
		k.Proc.sigHandlers[a0] = a1
		if a2 != 0 {
			k.Proc.trampolineVA = a2
		}

	case SysSigreturn:
		if err := k.sigreturn(a0); err != nil {
			return err
		}
		// The restored trapframe already holds the continuation EPC;
		// do not let the +4 advance above survive (sigreturn rewrote
		// the whole frame, so nothing to undo).
		return nil

	case SysMprotect:
		pages, err := k.Proc.Protect(a0, a1, a2)
		k.Charge(uint64(pages) * k.Costs.MprotectPage)
		if err != nil {
			res = EINVAL
		}

	case SysUexcEnable:
		// uexc_enable(handler=a0, mask=a1, framepage=a2): §3.2.
		k.Charge(k.Costs.SyscallBody + 200) // validate + pin the frame page
		if err := k.Proc.EnableFastExceptions(a0, a1, a2); err != nil {
			res = EINVAL
		}

	case SysUexcEager:
		k.Charge(k.Costs.SyscallBody)
		k.Proc.eager = a0 != 0

	case SysSubpageProt:
		// subpage_protect(va=a0, len=a1, prot=a2): §3.2.4.
		k.Charge(k.Costs.SyscallBody + uint64(a1/arch.SubpageSize)*8 + uint64(k.Costs.MprotectPage))
		if err := k.Proc.SubpageProtect(a0, a1, a2); err != nil {
			res = EINVAL
		}

	case SysUexcWatch:
		k.Charge(k.Costs.SyscallBody)
		k.Proc.watchMode = a0 != 0

	case SysSetUBit:
		k.Charge(k.Costs.SyscallBody + 40)
		on := a1 != 0
		if err := k.Proc.SetUBit(a0, on); err != nil {
			res = EINVAL
		}

	default:
		res = ENOSYS
	}

	tf.setReg(arch.RegV0, res)
	return nil
}
