// Package osmodel reproduces Table 1: exception-delivery costs across
// the five 1994 hardware/OS combinations the paper surveys. We cannot
// run Ultrix, Mach, SunOS, Windows NT, or OSF/1 — each system is
// modeled as a pipeline of phases with compiled-code path lengths
// (instructions) executed at that system's clock and CPI.
//
// Calibration anchors quoted in the paper's text: SunOS delivers and
// returns in 69 µs (the best), Mach/UX takes about 2 ms (the exception
// visits the Unix server and back), raw Mach without the server is
// 256 µs, and Ultrix — the system the paper's prototype modifies —
// round-trips in 80 µs (Table 2) with a 60 µs write-protection
// delivery. The NT and OSF/1 rows have no quoted anchors and are
// flagged as pipeline estimates; treat their absolute values
// accordingly.
package osmodel

// Phase is one segment of a delivery pipeline.
type Phase struct {
	Name  string
	Insts float64 // dynamic instructions of compiled kernel/server code
}

// System models one hardware/OS combination.
type System struct {
	Name      string
	CPU       string
	MHz       float64
	CPI       float64
	Estimated bool // no anchor in the paper; values are modeled

	DeliverPhases []Phase // fault → first user handler instruction
	ReturnPhases  []Phase // handler return → resumed instruction
	VMExtraInsts  float64 // additional work for a write-protect fault
}

func (s System) micros(insts float64) float64 {
	return insts * s.CPI / s.MHz
}

// DeliverMicros is the null-handler delivery time.
func (s System) DeliverMicros() float64 {
	var n float64
	for _, p := range s.DeliverPhases {
		n += p.Insts
	}
	return s.micros(n)
}

// DeliverWriteProtMicros is the write-protection delivery time.
func (s System) DeliverWriteProtMicros() float64 {
	var n float64
	for _, p := range s.DeliverPhases {
		n += p.Insts
	}
	return s.micros(n + s.VMExtraInsts)
}

// ReturnMicros is the handler-return time.
func (s System) ReturnMicros() float64 {
	var n float64
	for _, p := range s.ReturnPhases {
		n += p.Insts
	}
	return s.micros(n)
}

// RoundTripMicros is delivery plus return.
func (s System) RoundTripMicros() float64 {
	return s.DeliverMicros() + s.ReturnMicros()
}

// Systems returns the Table 1 columns in the paper's order.
func Systems() []System {
	return []System{
		{
			Name: "Ultrix 4.2A", CPU: "DS5000 (R3000)", MHz: 25, CPI: 1.4,
			DeliverPhases: []Phase{
				{"hw vector + full save", 115},
				{"trap() decode + dispatch", 130},
				{"psignal posting", 190},
				{"issignal recognition", 160},
				{"sendsig + sigcontext copyout", 360},
				{"restore + rfe + trampoline", 27},
			},
			ReturnPhases: []Phase{
				{"trampoline tail + syscall entry", 60},
				{"sigreturn + sigcontext copyin", 330},
				{"restore + rfe", 56},
			},
			VMExtraInsts: 90,
		},
		{
			Name: "Mach/UX (MK83/UX41)", CPU: "DS5000 (R3000)", MHz: 25, CPI: 1.4,
			DeliverPhases: []Phase{
				{"hw vector + save", 115},
				{"exception_raise message build", 900},
				{"mach_msg to UX server (2 context switches)", 9200},
				{"UX server signal processing", 5800},
				{"reply + thread_set_state", 8500},
				{"resume into handler", 5900},
			},
			ReturnPhases: []Phase{
				{"sigreturn RPC through the server", 5300},
				{"final thread resume", 2000},
			},
			VMExtraInsts: 600,
		},
		{
			Name: "Mach (no UX server)", CPU: "DS5000 (R3000)", MHz: 25, CPI: 1.4,
			DeliverPhases: []Phase{
				{"hw vector + save", 115},
				{"exception_raise to self port", 1250},
				{"mach_msg receive + dispatch", 1300},
				{"thread_get/set_state", 750},
			},
			ReturnPhases: []Phase{
				{"reply message + resume", 1150},
			},
			VMExtraInsts: 350,
		},
		{
			Name: "SunOS 4.1.3", CPU: "SPARC-10", MHz: 36, CPI: 1.5,
			DeliverPhases: []Phase{
				{"trap + register window spill", 210},
				{"signal posting + recognition", 340},
				{"sendsig + frame copyout", 480},
			},
			ReturnPhases: []Phase{
				{"sigcleanup + window restore", 620},
			},
			VMExtraInsts: 170,
		},
		{
			Name: "Windows NT", CPU: "R4000 (40 MHz)", MHz: 40, CPI: 1.5,
			Estimated: true,
			DeliverPhases: []Phase{
				{"trap + KiDispatchException", 1400},
				{"structured-exception frame search + copyout", 3900},
			},
			ReturnPhases: []Phase{
				{"NtContinue + context restore", 2600},
			},
			VMExtraInsts: 500,
		},
		{
			Name: "DEC OSF/1 V1.3", CPU: "AXP 3000/500X (200 MHz)", MHz: 200, CPI: 1.6,
			Estimated: true,
			DeliverPhases: []Phase{
				{"PALcode + trap frame build", 1500},
				{"signal posting + recognition", 2400},
				{"sendsig + sigcontext copyout", 3800},
			},
			ReturnPhases: []Phase{
				{"sigreturn + context restore", 3400},
			},
			VMExtraInsts: 1100,
		},
	}
}

// Find returns the modeled system whose name contains the key.
func Find(key string) (System, bool) {
	for _, s := range Systems() {
		if contains(s.Name, key) {
			return s, true
		}
	}
	return System{}, false
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
