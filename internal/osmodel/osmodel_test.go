package osmodel

import (
	"math"
	"testing"
)

func sys(t *testing.T, key string) System {
	t.Helper()
	s, ok := Find(key)
	if !ok {
		t.Fatalf("system %q not found", key)
	}
	return s
}

// anchors quoted in the paper's text (µs).
func TestAnchorsFromPaperText(t *testing.T) {
	cases := []struct {
		key  string
		want float64
		tol  float64
	}{
		{"SunOS", 69, 0.12},    // "69 µseconds in the best case of SunOS"
		{"Mach/UX", 2000, 0.2}, // "to 2 milliseconds for Mach/UX"
		{"no UX", 256, 0.12},   // "raw performance ... (256 µs)"
		{"Ultrix", 80, 0.12},   // Table 2's Ultrix round trip
	}
	for _, c := range cases {
		s := sys(t, c.key)
		got := s.RoundTripMicros()
		if math.Abs(got-c.want) > c.want*c.tol {
			t.Errorf("%s round trip = %.0fµs, want %.0f ±%.0f%%", s.Name, got, c.want, c.tol*100)
		} else {
			t.Logf("%s round trip = %.0fµs (anchor %.0f)", s.Name, got, c.want)
		}
	}
}

func TestUltrixRowMatchesTable2(t *testing.T) {
	u := sys(t, "Ultrix")
	if d := u.DeliverMicros(); math.Abs(d-55) > 8 {
		t.Errorf("ultrix deliver = %.1f, want ~55", d)
	}
	if w := u.DeliverWriteProtMicros(); math.Abs(w-60) > 8 {
		t.Errorf("ultrix write-prot deliver = %.1f, want ~60", w)
	}
	if w, d := u.DeliverWriteProtMicros(), u.DeliverMicros(); w <= d {
		t.Error("write-prot delivery must exceed simple delivery")
	}
}

func TestOrderingAcrossSystems(t *testing.T) {
	// The paper's Table 1 shape: SunOS best, then Ultrix, then Mach,
	// then Mach/UX worst by an order of magnitude.
	sun := sys(t, "SunOS").RoundTripMicros()
	ult := sys(t, "Ultrix").RoundTripMicros()
	mach := sys(t, "no UX").RoundTripMicros()
	machUX := sys(t, "Mach/UX").RoundTripMicros()
	if !(sun < ult && ult < mach && mach < machUX) {
		t.Errorf("ordering broken: sun=%.0f ultrix=%.0f mach=%.0f mach/ux=%.0f",
			sun, ult, mach, machUX)
	}
	if machUX < 5*mach {
		t.Errorf("Mach/UX (%.0f) should dwarf raw Mach (%.0f)", machUX, mach)
	}
}

func TestEstimatedRowsAreFlagged(t *testing.T) {
	for _, s := range Systems() {
		wantEst := s.Name == "Windows NT" || s.Name == "DEC OSF/1 V1.3"
		if s.Estimated != wantEst {
			t.Errorf("%s: Estimated = %v, want %v", s.Name, s.Estimated, wantEst)
		}
	}
}

func TestSixSystems(t *testing.T) {
	if n := len(Systems()); n != 6 {
		t.Fatalf("systems = %d, want 6 (the paper's Table 1 columns)", n)
	}
	for _, s := range Systems() {
		if s.DeliverMicros() <= 0 || s.ReturnMicros() <= 0 {
			t.Errorf("%s has non-positive times", s.Name)
		}
		if s.RoundTripMicros() != s.DeliverMicros()+s.ReturnMicros() {
			t.Errorf("%s: rt != deliver+return", s.Name)
		}
	}
}

func TestFindMiss(t *testing.T) {
	if _, ok := Find("Plan 9"); ok {
		t.Error("found a system that is not in Table 1")
	}
}
