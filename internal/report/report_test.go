package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "Table X",
		Headers: []string{"Operation", "Fast", "Ultrix"},
		Note:    "a note",
	}
	tbl.AddRow("Deliver", "5", "55")
	tbl.AddRow("Return", "3", "25")
	out := tbl.Render()
	for _, want := range []string{"Table X", "Operation", "Deliver", "55", "note: a note", "==="} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	// Columns align: the header row and data rows share width.
	lines := strings.Split(out, "\n")
	var header, row string
	for i, l := range lines {
		if strings.Contains(l, "Operation") {
			header = l
			row = lines[i+2]
		}
	}
	if len(header) == 0 || len(row) == 0 {
		t.Fatal("header/data rows not found")
	}
	if idxH, idxR := strings.Index(header, "Fast"), strings.Index(row, "5"); idxR > idxH+4 {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestSeriesRender(t *testing.T) {
	s := Series{
		Title:   "Figure Y",
		XLabel:  "check cycles",
		YLabels: []string{"ultrix", "fast"},
		X:       []float64{1, 2},
		Y:       [][]float64{{2000, 1000}, {150, 75}},
	}
	out := s.Render()
	for _, want := range []string{"Figure Y", "check cycles", "ultrix", "2000.0", "75.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") < 5 {
		t.Errorf("too few lines:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if Micros(5.44) != "5.4" {
		t.Errorf("Micros(5.44) = %s", Micros(5.44))
	}
	if Micros(256.4) != "256" {
		t.Errorf("Micros(256.4) = %s", Micros(256.4))
	}
	if Seconds(23.9) != "23.90" {
		t.Errorf("Seconds = %s", Seconds(23.9))
	}
	if Pct(10.07) != "10.1%" {
		t.Errorf("Pct = %s", Pct(10.07))
	}
}

func TestSeriesCSV(t *testing.T) {
	s := Series{
		XLabel:  "check, cycles",
		YLabels: []string{"ultrix", "fast"},
		X:       []float64{1, 2.5},
		Y:       [][]float64{{2000, 800}, {150, 60}},
	}
	got := s.CSV()
	want := "\"check, cycles\",ultrix,fast\n1,2000,150\n2.5,800,60\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
