// Package report renders the benchmark harness's tables and figure
// series as fixed-width text, in the layout of the paper's exhibits.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid. The first column is the row label.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
		fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i]+2, c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Series is a titled set of (x, y...) samples for figure regeneration.
type Series struct {
	Title   string
	Note    string
	XLabel  string
	YLabels []string
	X       []float64
	Y       [][]float64 // Y[i][j]: series i, sample j
	XFmt    string      // defaults to %.1f
	YFmt    string      // defaults to %.1f
}

// Render formats the series as aligned columns.
func (s *Series) Render() string {
	xf := s.XFmt
	if xf == "" {
		xf = "%.1f"
	}
	yf := s.YFmt
	if yf == "" {
		yf = "%.1f"
	}
	xw := 14
	if len(s.XLabel)+2 > xw {
		xw = len(s.XLabel) + 2
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", s.Title, strings.Repeat("=", len(s.Title)))
	}
	fmt.Fprintf(&b, "%-*s", xw, s.XLabel)
	for _, yl := range s.YLabels {
		fmt.Fprintf(&b, "%16s", yl)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", xw+16*len(s.YLabels)))
	for j := range s.X {
		fmt.Fprintf(&b, "%-*s", xw, fmt.Sprintf(xf, s.X[j]))
		for i := range s.Y {
			fmt.Fprintf(&b, "%16s", fmt.Sprintf(yf, s.Y[i][j]))
		}
		b.WriteByte('\n')
	}
	if s.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", s.Note)
	}
	return b.String()
}

// CSV renders the series as comma-separated values with a header row,
// for external plotting of the figure.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString(csvField(s.XLabel))
	for _, yl := range s.YLabels {
		b.WriteByte(',')
		b.WriteString(csvField(yl))
	}
	b.WriteByte('\n')
	for j := range s.X {
		fmt.Fprintf(&b, "%g", s.X[j])
		for i := range s.Y {
			fmt.Fprintf(&b, ",%g", s.Y[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvField(f string) string {
	if strings.ContainsAny(f, ",\"\n") {
		return `"` + strings.ReplaceAll(f, `"`, `""`) + `"`
	}
	return f
}

// Micros formats a microsecond quantity the way the paper's tables do.
func Micros(v float64) string {
	if v >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// Seconds formats a CPU-seconds quantity.
func Seconds(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
