// Package arch defines the instruction-set architecture of the simulated
// machine: an R3000-like 32-bit RISC with branch delay slots, a
// coprocessor-0 system-control interface, and a small SPECIAL2 extension
// space carrying the paper's proposed hardware support (exception-target
// register access, user TLB-protection modification) plus a simulator
// kernel-call escape.
//
// The package is pure data and arithmetic: instruction word layouts,
// register names, encode/decode between 32-bit words and a structured
// Inst form, and a disassembler. Execution semantics live in
// package cpu.
package arch

import "fmt"

// Reg names a general-purpose register r0..r31.
type Reg uint8

// Conventional MIPS register assignments, used by the assembler and the
// simulated kernel/user runtime.
const (
	RegZero Reg = 0 // hardwired zero
	RegAT   Reg = 1 // assembler temporary
	RegV0   Reg = 2 // results
	RegV1   Reg = 3
	RegA0   Reg = 4 // arguments
	RegA1   Reg = 5
	RegA2   Reg = 6
	RegA3   Reg = 7
	RegT0   Reg = 8 // caller-saved temporaries
	RegT1   Reg = 9
	RegT2   Reg = 10
	RegT3   Reg = 11
	RegT4   Reg = 12
	RegT5   Reg = 13
	RegT6   Reg = 14
	RegT7   Reg = 15
	RegS0   Reg = 16 // callee-saved
	RegS1   Reg = 17
	RegS2   Reg = 18
	RegS3   Reg = 19
	RegS4   Reg = 20
	RegS5   Reg = 21
	RegS6   Reg = 22
	RegS7   Reg = 23
	RegT8   Reg = 24
	RegT9   Reg = 25
	RegK0   Reg = 26 // kernel scratch (trashed on exception entry)
	RegK1   Reg = 27
	RegGP   Reg = 28
	RegSP   Reg = 29
	RegFP   Reg = 30 // also s8
	RegRA   Reg = 31
)

// RegNames maps register number to canonical ABI name.
var RegNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the ABI name of the register ("v0", "sp", ...).
func (r Reg) String() string {
	if r < 32 {
		return RegNames[r]
	}
	return fmt.Sprintf("r%d?", uint8(r))
}

// Top-level opcode field values (bits 31:26).
const (
	OpSpecial  uint32 = 0
	OpRegimm   uint32 = 1
	OpJ        uint32 = 2
	OpJAL      uint32 = 3
	OpBEQ      uint32 = 4
	OpBNE      uint32 = 5
	OpBLEZ     uint32 = 6
	OpBGTZ     uint32 = 7
	OpADDI     uint32 = 8
	OpADDIU    uint32 = 9
	OpSLTI     uint32 = 10
	OpSLTIU    uint32 = 11
	OpANDI     uint32 = 12
	OpORI      uint32 = 13
	OpXORI     uint32 = 14
	OpLUI      uint32 = 15
	OpCOP0     uint32 = 16
	OpSpecial2 uint32 = 28
	OpLB       uint32 = 32
	OpLH       uint32 = 33
	OpLWL      uint32 = 34
	OpLW       uint32 = 35
	OpLBU      uint32 = 36
	OpLHU      uint32 = 37
	OpLWR      uint32 = 38
	OpSB       uint32 = 40
	OpSH       uint32 = 41
	OpSWL      uint32 = 42
	OpSW       uint32 = 43
	OpSWR      uint32 = 46
)

// SPECIAL function field values (bits 5:0 when op == OpSpecial).
const (
	FnSLL     uint32 = 0
	FnSRL     uint32 = 2
	FnSRA     uint32 = 3
	FnSLLV    uint32 = 4
	FnSRLV    uint32 = 6
	FnSRAV    uint32 = 7
	FnJR      uint32 = 8
	FnJALR    uint32 = 9
	FnSYSCALL uint32 = 12
	FnBREAK   uint32 = 13
	FnMFHI    uint32 = 16
	FnMTHI    uint32 = 17
	FnMFLO    uint32 = 18
	FnMTLO    uint32 = 19
	FnMULT    uint32 = 24
	FnMULTU   uint32 = 25
	FnDIV     uint32 = 26
	FnDIVU    uint32 = 27
	FnADD     uint32 = 32
	FnADDU    uint32 = 33
	FnSUB     uint32 = 34
	FnSUBU    uint32 = 35
	FnAND     uint32 = 36
	FnOR      uint32 = 37
	FnXOR     uint32 = 38
	FnNOR     uint32 = 39
	FnSLT     uint32 = 42
	FnSLTU    uint32 = 43
)

// REGIMM rt-field values (bits 20:16 when op == OpRegimm).
const (
	RtBLTZ   uint32 = 0
	RtBGEZ   uint32 = 1
	RtBLTZAL uint32 = 16
	RtBGEZAL uint32 = 17
)

// COP0 rs-field values and CO-space function values.
const (
	Cop0MF uint32 = 0  // mfc0
	Cop0MT uint32 = 4  // mtc0
	Cop0CO uint32 = 16 // bit 25 set: co-processor operation, funct selects

	CoTLBR  uint32 = 1
	CoTLBWI uint32 = 2
	CoTLBWR uint32 = 6
	CoTLBP  uint32 = 8
	CoRFE   uint32 = 16
)

// SPECIAL2 function field values: the extension space. HCALL is a
// simulator escape valid only in kernel mode; MFXT/MTXT/XRET and UTLBMOD
// implement the paper's proposed hardware support (Section 2).
const (
	FnHCALL   uint32 = 0 // hcall code      : kernel call into host model
	FnMFXT    uint32 = 1 // mfxt rd         : read exception-target register
	FnMTXT    uint32 = 2 // mtxt rs         : write exception-target register
	FnUTLBMOD uint32 = 3 // utlbmod rs, rt  : user protection update of TLB entry
	FnXRET    uint32 = 4 // xret            : exchange PC and exception-target
	FnMFXC    uint32 = 5 // mfxc rd         : read exception-condition register
	FnMFXB    uint32 = 6 // mfxb rd         : read second condition register (bad address)
)

// CP0 register numbers.
const (
	C0Index    = 0
	C0Random   = 1
	C0EntryLo  = 2
	C0Context  = 4
	C0BadVAddr = 8
	C0EntryHi  = 10
	C0Status   = 12
	C0Cause    = 13
	C0EPC      = 14
	C0PRId     = 15
)

// C0Names maps CP0 register numbers to names for the assembler and
// disassembler. Unlisted numbers render numerically.
var C0Names = map[uint8]string{
	C0Index:    "c0_index",
	C0Random:   "c0_random",
	C0EntryLo:  "c0_entrylo",
	C0Context:  "c0_context",
	C0BadVAddr: "c0_badvaddr",
	C0EntryHi:  "c0_entryhi",
	C0Status:   "c0_status",
	C0Cause:    "c0_cause",
	C0EPC:      "c0_epc",
	C0PRId:     "c0_prid",
}

// ExcCode values stored in Cause bits 6:2 (R3000 numbering).
const (
	ExcInt  uint32 = 0  // interrupt (unused by this simulator)
	ExcMod  uint32 = 1  // TLB modification (store to clean page)
	ExcTLBL uint32 = 2  // TLB miss / invalid on load or fetch
	ExcTLBS uint32 = 3  // TLB miss / invalid on store
	ExcAdEL uint32 = 4  // address error on load or fetch (unaligned, kseg from user)
	ExcAdES uint32 = 5  // address error on store
	ExcIBE  uint32 = 6  // bus error on fetch
	ExcDBE  uint32 = 7  // bus error on data access
	ExcSys  uint32 = 8  // syscall
	ExcBp   uint32 = 9  // breakpoint
	ExcRI   uint32 = 10 // reserved instruction
	ExcCpU  uint32 = 11 // coprocessor unusable
	ExcOv   uint32 = 12 // arithmetic overflow
)

// ExcName returns the conventional name of an exception code.
func ExcName(code uint32) string {
	names := [...]string{
		"Int", "Mod", "TLBL", "TLBS", "AdEL", "AdES", "IBE", "DBE",
		"Sys", "Bp", "RI", "CpU", "Ov",
	}
	if int(code) < len(names) {
		return names[code]
	}
	return fmt.Sprintf("Exc%d", code)
}

// Status register bit assignments (R3000 KU/IE stack plus the paper's
// proposed UEX bit marking "user-mode exception in progress").
const (
	SrIEc uint32 = 1 << 0 // current interrupt enable
	SrKUc uint32 = 1 << 1 // current mode: 1 = user
	SrIEp uint32 = 1 << 2 // previous
	SrKUp uint32 = 1 << 3
	SrIEo uint32 = 1 << 4 // old
	SrKUo uint32 = 1 << 5
	SrUEX uint32 = 1 << 16 // user-level exception in progress (proposed hw)
	SrBEV uint32 = 1 << 22 // boot exception vectors (unused, reset default off)
)

// Cause register fields.
const (
	CauseExcShift = 2
	CauseExcMask  = 0x1f << CauseExcShift
	CauseBD       = 1 << 31 // exception occurred in a branch delay slot
)

// Memory segmentation (R3000 virtual map).
const (
	KUSegBase uint32 = 0x00000000 // user, TLB-mapped
	KUSegTop  uint32 = 0x7fffffff
	KSeg0Base uint32 = 0x80000000 // kernel, unmapped, cached
	KSeg0Top  uint32 = 0x9fffffff
	KSeg1Base uint32 = 0xa0000000 // kernel, unmapped, uncached
	KSeg1Top  uint32 = 0xbfffffff
	KSeg2Base uint32 = 0xc0000000 // kernel, TLB-mapped
)

// Exception vector addresses (R3000, BEV=0).
const (
	VecUTLBMiss uint32 = 0x80000000 // user TLB refill fast vector
	VecGeneral  uint32 = 0x80000080 // everything else
	VecReset    uint32 = 0xbfc00000
)

// PageSize is the hardware page size (and protection granularity), 4 KB
// as on the MIPS R3000. SubpageSize is the paper's 1 KB logical page.
const (
	PageSize    = 4096
	PageShift   = 12
	SubpageSize = 1024
	SubpageLog  = 10
	SubPerPage  = PageSize / SubpageSize
)

// InKUSeg reports whether va lies in the user-mapped segment.
func InKUSeg(va uint32) bool { return va <= KUSegTop }

// InKSeg0 reports whether va lies in the unmapped cached kernel segment.
func InKSeg0(va uint32) bool { return va >= KSeg0Base && va <= KSeg0Top }

// InKSeg1 reports whether va lies in the unmapped uncached kernel segment.
func InKSeg1(va uint32) bool { return va >= KSeg1Base && va <= KSeg1Top }

// KSegPhys translates a kseg0/kseg1 virtual address to its fixed
// physical address.
func KSegPhys(va uint32) uint32 {
	if InKSeg0(va) {
		return va - KSeg0Base
	}
	return va - KSeg1Base
}
