package arch

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		RegZero: "zero", RegAT: "at", RegV0: "v0", RegA0: "a0",
		RegT0: "t0", RegS0: "s0", RegK0: "k0", RegGP: "gp",
		RegSP: "sp", RegFP: "fp", RegRA: "ra",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
	if got := Reg(40).String(); !strings.Contains(got, "?") {
		t.Errorf("out-of-range reg rendered as %q, want marker", got)
	}
}

func TestByNameCoversAllMnemonics(t *testing.T) {
	if len(ByName) != int(mnCount)-1 {
		t.Fatalf("ByName has %d entries, want %d", len(ByName), mnCount-1)
	}
	for name, m := range ByName {
		if m.Name() != name {
			t.Errorf("ByName[%q] = %v whose Name() = %q", name, m, m.Name())
		}
	}
}

// sanitize clamps Inst fields to what the mnemonic's format can encode so
// that encode/decode round trips are meaningful.
func sanitize(i Inst) Inst {
	i.Rs &= 31
	i.Rt &= 31
	i.Rd &= 31
	i.Shamt &= 31
	i.Code &= 0xfffff
	i.Target &= 0x3ffffff
	i.C0Reg &= 31
	s := specs[i.Mn]
	out := Inst{Mn: i.Mn}
	switch s.fmt {
	case FmtNone:
	case FmtRdRsRt:
		out.Rd, out.Rs, out.Rt = i.Rd, i.Rs, i.Rt
	case FmtRdRtSa:
		out.Rd, out.Rt, out.Shamt = i.Rd, i.Rt, i.Shamt
	case FmtRdRtRs:
		out.Rd, out.Rt, out.Rs = i.Rd, i.Rt, i.Rs
	case FmtRs:
		out.Rs = i.Rs
	case FmtRdRs:
		out.Rd, out.Rs = i.Rd, i.Rs
	case FmtRd:
		out.Rd = i.Rd
	case FmtRsRt:
		out.Rs, out.Rt = i.Rs, i.Rt
	case FmtRtRsImm, FmtRsRtOff:
		out.Rs, out.Rt, out.Imm = i.Rs, i.Rt, i.Imm
	case FmtRtImm:
		out.Rt, out.Imm = i.Rt, i.Imm
	case FmtRsOff:
		out.Rs, out.Imm = i.Rs, i.Imm
	case FmtRtOffBase:
		out.Rt, out.Rs, out.Imm = i.Rt, i.Rs, i.Imm
	case FmtTarget:
		out.Target = i.Target
	case FmtCode:
		out.Code = i.Code
	case FmtRtC0:
		out.Rt, out.C0Reg = i.Rt, i.C0Reg
	}
	return out
}

func TestEncodeDecodeRoundTripAllMnemonics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for m := Mn(1); m < mnCount; m++ {
		for trial := 0; trial < 64; trial++ {
			in := sanitize(Inst{
				Mn:     m,
				Rs:     Reg(rng.Intn(32)),
				Rt:     Reg(rng.Intn(32)),
				Rd:     Reg(rng.Intn(32)),
				Shamt:  uint8(rng.Intn(32)),
				Imm:    uint16(rng.Uint32()),
				Target: rng.Uint32(),
				Code:   rng.Uint32(),
				C0Reg:  uint8(rng.Intn(32)),
			})
			got := Decode(Encode(in))
			if got != in {
				t.Fatalf("%s: decode(encode(%+v)) = %+v", m.Name(), in, got)
			}
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(mraw uint8, rs, rt, rd, sh uint8, imm uint16, tgt, code uint32, c0 uint8) bool {
		m := Mn(mraw%uint8(mnCount-1)) + 1
		in := sanitize(Inst{
			Mn: m, Rs: Reg(rs), Rt: Reg(rt), Rd: Reg(rd), Shamt: sh,
			Imm: imm, Target: tgt, Code: code, C0Reg: c0,
		})
		return Decode(Encode(in)) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInvalidWords(t *testing.T) {
	bad := []uint32{
		0x00000001,      // SPECIAL funct 1 (unassigned)
		0x70000000 | 63, // SPECIAL2 funct 63
		0x04180000,      // REGIMM rt=24
		0x42000003,      // COP0 CO funct 3
		0xfc000000,      // opcode 63
		0x48000000,      // COP2
	}
	for _, w := range bad {
		if got := Decode(w); got.Mn != MnInvalid {
			t.Errorf("Decode(%#x) = %v, want invalid", w, got.Mn)
		}
	}
}

func TestDecodeKnownEncodings(t *testing.T) {
	// Hand-checked against the MIPS R3000 manual encodings.
	cases := []struct {
		w    uint32
		want Inst
	}{
		{0x00000000, Inst{Mn: MnSLL}},                                      // nop
		{0x03e00008, Inst{Mn: MnJR, Rs: RegRA}},                            // jr ra
		{0x0000000c, Inst{Mn: MnSYSCALL}},                                  // syscall
		{0x27bdffe0, Inst{Mn: MnADDIU, Rt: RegSP, Rs: RegSP, Imm: 0xffe0}}, // addiu sp, sp, -32
		{0x8fbf001c, Inst{Mn: MnLW, Rt: RegRA, Rs: RegSP, Imm: 0x001c}},    // lw ra, 28(sp)
		{0x3c08dead, Inst{Mn: MnLUI, Rt: RegT0, Imm: 0xdead}},              // lui t0, 0xdead
		{0x42000010, Inst{Mn: MnRFE}},
		{0x42000002, Inst{Mn: MnTLBWI}},
		{0x40086000, Inst{Mn: MnMFC0, Rt: RegT0, C0Reg: C0Status}},
		{0x40886800, Inst{Mn: MnMTC0, Rt: RegT0, C0Reg: C0Cause}},
	}
	for _, c := range cases {
		if got := Decode(c.w); got != c.want {
			t.Errorf("Decode(%#08x) = %+v, want %+v", c.w, got, c.want)
		}
	}
}

func TestBranchTargetRoundTrip(t *testing.T) {
	f := func(pcRaw uint32, d int16) bool {
		pc := pcRaw &^ 3
		target := BranchTarget(pc, uint16(d))
		off, ok := BranchOffset(pc, target)
		return ok && off == uint16(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBranchOffsetRejectsFar(t *testing.T) {
	if _, ok := BranchOffset(0x1000, 0x1000+4+(40000<<2)); ok {
		t.Error("BranchOffset accepted out-of-range displacement")
	}
	if _, ok := BranchOffset(0x1000, 0x1001); ok {
		t.Error("BranchOffset accepted unaligned target")
	}
}

func TestJumpFieldRoundTrip(t *testing.T) {
	f := func(pcRaw, tRaw uint32) bool {
		pc := pcRaw &^ 3
		// Force target into pc's region.
		target := (pc+4)&0xf0000000 | (tRaw &^ 3 & 0x0ffffffc)
		fld, ok := JumpField(pc, target)
		return ok && JumpTarget(pc, fld) == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := JumpField(0x00001000, 0x80001000); ok {
		t.Error("JumpField accepted cross-region target")
	}
}

func TestDisassembleForms(t *testing.T) {
	cases := []struct {
		i    Inst
		pc   uint32
		want string
	}{
		{Inst{Mn: MnADDU, Rd: RegV0, Rs: RegA0, Rt: RegA1}, 0, "addu v0, a0, a1"},
		{Inst{Mn: MnSLL, Rd: RegT0, Rt: RegT1, Shamt: 4}, 0, "sll t0, t1, 4"},
		{Inst{Mn: MnJR, Rs: RegRA}, 0, "jr ra"},
		{Inst{Mn: MnLW, Rt: RegT0, Rs: RegSP, Imm: 0xfffc}, 0, "lw t0, -4(sp)"},
		{Inst{Mn: MnBEQ, Rs: RegA0, Rt: RegZero, Imm: 3}, 0x100, "beq a0, zero, 0x110"},
		{Inst{Mn: MnJ, Target: 0x80000080 >> 2 & 0x3ffffff}, 0x80000000, "j 0x80000080"},
		{Inst{Mn: MnMTC0, Rt: RegK0, C0Reg: C0EPC}, 0, "mtc0 k0, c0_epc"},
		{Inst{Mn: MnRFE}, 0, "rfe"},
		{Inst{Mn: MnHCALL, Code: 7}, 0, "hcall 7"},
		{Inst{Mn: MnSYSCALL}, 0, "syscall"},
		{Inst{Mn: MnLUI, Rt: RegT0, Imm: 0x8000}, 0, "lui t0, 0x8000"},
	}
	for _, c := range cases {
		if got := Disassemble(c.i, c.pc); got != c.want {
			t.Errorf("Disassemble(%+v) = %q, want %q", c.i, got, c.want)
		}
	}
}

func TestDisassembleWordInvalid(t *testing.T) {
	if got := DisassembleWord(0xffffffff, 0); got != ".word 0xffffffff" {
		t.Errorf("invalid word rendered %q", got)
	}
}

func TestExcName(t *testing.T) {
	if ExcName(ExcMod) != "Mod" || ExcName(ExcBp) != "Bp" || ExcName(ExcAdEL) != "AdEL" {
		t.Error("ExcName mismatch for known codes")
	}
	if ExcName(31) != "Exc31" {
		t.Errorf("ExcName(31) = %q", ExcName(31))
	}
}

func TestSegmentPredicates(t *testing.T) {
	if !InKUSeg(0) || !InKUSeg(0x7fffffff) || InKUSeg(0x80000000) {
		t.Error("InKUSeg boundaries wrong")
	}
	if !InKSeg0(0x80000000) || !InKSeg0(0x9fffffff) || InKSeg0(0xa0000000) {
		t.Error("InKSeg0 boundaries wrong")
	}
	if !InKSeg1(0xa0000000) || !InKSeg1(0xbfffffff) || InKSeg1(0xc0000000) {
		t.Error("InKSeg1 boundaries wrong")
	}
	if KSegPhys(0x80001234) != 0x1234 || KSegPhys(0xa0005678) != 0x5678 {
		t.Error("KSegPhys mapping wrong")
	}
}

func TestIsBranchLoadStore(t *testing.T) {
	if !(Inst{Mn: MnBEQ}).IsBranch() || !(Inst{Mn: MnJAL}).IsBranch() || !(Inst{Mn: MnJR}).IsBranch() {
		t.Error("IsBranch false negatives")
	}
	if (Inst{Mn: MnADDU}).IsBranch() || (Inst{Mn: MnSYSCALL}).IsBranch() {
		t.Error("IsBranch false positives")
	}
	if !(Inst{Mn: MnLW}).IsLoad() || !(Inst{Mn: MnLBU}).IsLoad() || (Inst{Mn: MnSW}).IsLoad() {
		t.Error("IsLoad wrong")
	}
	if !(Inst{Mn: MnSW}).IsStore() || !(Inst{Mn: MnSWR}).IsStore() || (Inst{Mn: MnLW}).IsStore() {
		t.Error("IsStore wrong")
	}
}
