package arch

import (
	"errors"
	"fmt"
)

// Mn identifies an instruction mnemonic.
type Mn uint8

// All mnemonics understood by the machine. The zero value MnInvalid
// marks undecodable words (reserved-instruction exceptions).
const (
	MnInvalid Mn = iota

	// SPECIAL
	MnSLL
	MnSRL
	MnSRA
	MnSLLV
	MnSRLV
	MnSRAV
	MnJR
	MnJALR
	MnSYSCALL
	MnBREAK
	MnMFHI
	MnMTHI
	MnMFLO
	MnMTLO
	MnMULT
	MnMULTU
	MnDIV
	MnDIVU
	MnADD
	MnADDU
	MnSUB
	MnSUBU
	MnAND
	MnOR
	MnXOR
	MnNOR
	MnSLT
	MnSLTU

	// REGIMM
	MnBLTZ
	MnBGEZ
	MnBLTZAL
	MnBGEZAL

	// immediates / jumps / branches
	MnJ
	MnJAL
	MnBEQ
	MnBNE
	MnBLEZ
	MnBGTZ
	MnADDI
	MnADDIU
	MnSLTI
	MnSLTIU
	MnANDI
	MnORI
	MnXORI
	MnLUI

	// COP0
	MnMFC0
	MnMTC0
	MnTLBR
	MnTLBWI
	MnTLBWR
	MnTLBP
	MnRFE

	// loads/stores
	MnLB
	MnLH
	MnLWL
	MnLW
	MnLBU
	MnLHU
	MnLWR
	MnSB
	MnSH
	MnSWL
	MnSW
	MnSWR

	// SPECIAL2 extensions
	MnHCALL
	MnMFXT
	MnMTXT
	MnUTLBMOD
	MnXRET
	MnMFXC
	MnMFXB

	mnCount
)

// Format describes the operand shape of a mnemonic, shared by the
// assembler, encoder, decoder, and disassembler.
type Format uint8

const (
	FmtNone      Format = iota // syscall/break without code, rfe, tlb ops, xret
	FmtRdRsRt                  // add rd, rs, rt
	FmtRdRtSa                  // sll rd, rt, shamt
	FmtRdRtRs                  // sllv rd, rt, rs
	FmtRs                      // jr rs / mthi rs / mtxt rs
	FmtRdRs                    // jalr rd, rs
	FmtRd                      // mfhi rd / mfxt rd / mfxc rd
	FmtRsRt                    // mult rs, rt / utlbmod rs, rt
	FmtRtRsImm                 // addi rt, rs, imm
	FmtRtImm                   // lui rt, imm
	FmtRsRtOff                 // beq rs, rt, off
	FmtRsOff                   // bltz rs, off / blez rs, off
	FmtRtOffBase               // lw rt, off(rs)
	FmtTarget                  // j target
	FmtCode                    // syscall code / break code / hcall code
	FmtRtC0                    // mfc0 rt, c0reg / mtc0 rt, c0reg
)

// spec records how a mnemonic maps to bits.
type spec struct {
	name string
	fmt  Format
	// class discriminates the encoding family.
	class class
	op    uint32 // top-level opcode
	fn    uint32 // funct (SPECIAL/SPECIAL2/COP0-CO) or rt (REGIMM) or rs (COP0 MF/MT)
}

type class uint8

const (
	clSpecial class = iota
	clRegimm
	clImm    // op carries everything; rs/rt/imm fields
	clJump   // 26-bit target
	clCop0Mv // mfc0/mtc0: rs field selects, rd field is the c0 register
	clCop0Co // CO bit set, funct selects
	clSp2
)

var specs = [mnCount]spec{
	MnSLL:     {"sll", FmtRdRtSa, clSpecial, OpSpecial, FnSLL},
	MnSRL:     {"srl", FmtRdRtSa, clSpecial, OpSpecial, FnSRL},
	MnSRA:     {"sra", FmtRdRtSa, clSpecial, OpSpecial, FnSRA},
	MnSLLV:    {"sllv", FmtRdRtRs, clSpecial, OpSpecial, FnSLLV},
	MnSRLV:    {"srlv", FmtRdRtRs, clSpecial, OpSpecial, FnSRLV},
	MnSRAV:    {"srav", FmtRdRtRs, clSpecial, OpSpecial, FnSRAV},
	MnJR:      {"jr", FmtRs, clSpecial, OpSpecial, FnJR},
	MnJALR:    {"jalr", FmtRdRs, clSpecial, OpSpecial, FnJALR},
	MnSYSCALL: {"syscall", FmtCode, clSpecial, OpSpecial, FnSYSCALL},
	MnBREAK:   {"break", FmtCode, clSpecial, OpSpecial, FnBREAK},
	MnMFHI:    {"mfhi", FmtRd, clSpecial, OpSpecial, FnMFHI},
	MnMTHI:    {"mthi", FmtRs, clSpecial, OpSpecial, FnMTHI},
	MnMFLO:    {"mflo", FmtRd, clSpecial, OpSpecial, FnMFLO},
	MnMTLO:    {"mtlo", FmtRs, clSpecial, OpSpecial, FnMTLO},
	MnMULT:    {"mult", FmtRsRt, clSpecial, OpSpecial, FnMULT},
	MnMULTU:   {"multu", FmtRsRt, clSpecial, OpSpecial, FnMULTU},
	MnDIV:     {"div", FmtRsRt, clSpecial, OpSpecial, FnDIV},
	MnDIVU:    {"divu", FmtRsRt, clSpecial, OpSpecial, FnDIVU},
	MnADD:     {"add", FmtRdRsRt, clSpecial, OpSpecial, FnADD},
	MnADDU:    {"addu", FmtRdRsRt, clSpecial, OpSpecial, FnADDU},
	MnSUB:     {"sub", FmtRdRsRt, clSpecial, OpSpecial, FnSUB},
	MnSUBU:    {"subu", FmtRdRsRt, clSpecial, OpSpecial, FnSUBU},
	MnAND:     {"and", FmtRdRsRt, clSpecial, OpSpecial, FnAND},
	MnOR:      {"or", FmtRdRsRt, clSpecial, OpSpecial, FnOR},
	MnXOR:     {"xor", FmtRdRsRt, clSpecial, OpSpecial, FnXOR},
	MnNOR:     {"nor", FmtRdRsRt, clSpecial, OpSpecial, FnNOR},
	MnSLT:     {"slt", FmtRdRsRt, clSpecial, OpSpecial, FnSLT},
	MnSLTU:    {"sltu", FmtRdRsRt, clSpecial, OpSpecial, FnSLTU},

	MnBLTZ:   {"bltz", FmtRsOff, clRegimm, OpRegimm, RtBLTZ},
	MnBGEZ:   {"bgez", FmtRsOff, clRegimm, OpRegimm, RtBGEZ},
	MnBLTZAL: {"bltzal", FmtRsOff, clRegimm, OpRegimm, RtBLTZAL},
	MnBGEZAL: {"bgezal", FmtRsOff, clRegimm, OpRegimm, RtBGEZAL},

	MnJ:     {"j", FmtTarget, clJump, OpJ, 0},
	MnJAL:   {"jal", FmtTarget, clJump, OpJAL, 0},
	MnBEQ:   {"beq", FmtRsRtOff, clImm, OpBEQ, 0},
	MnBNE:   {"bne", FmtRsRtOff, clImm, OpBNE, 0},
	MnBLEZ:  {"blez", FmtRsOff, clImm, OpBLEZ, 0},
	MnBGTZ:  {"bgtz", FmtRsOff, clImm, OpBGTZ, 0},
	MnADDI:  {"addi", FmtRtRsImm, clImm, OpADDI, 0},
	MnADDIU: {"addiu", FmtRtRsImm, clImm, OpADDIU, 0},
	MnSLTI:  {"slti", FmtRtRsImm, clImm, OpSLTI, 0},
	MnSLTIU: {"sltiu", FmtRtRsImm, clImm, OpSLTIU, 0},
	MnANDI:  {"andi", FmtRtRsImm, clImm, OpANDI, 0},
	MnORI:   {"ori", FmtRtRsImm, clImm, OpORI, 0},
	MnXORI:  {"xori", FmtRtRsImm, clImm, OpXORI, 0},
	MnLUI:   {"lui", FmtRtImm, clImm, OpLUI, 0},

	MnMFC0:  {"mfc0", FmtRtC0, clCop0Mv, OpCOP0, Cop0MF},
	MnMTC0:  {"mtc0", FmtRtC0, clCop0Mv, OpCOP0, Cop0MT},
	MnTLBR:  {"tlbr", FmtNone, clCop0Co, OpCOP0, CoTLBR},
	MnTLBWI: {"tlbwi", FmtNone, clCop0Co, OpCOP0, CoTLBWI},
	MnTLBWR: {"tlbwr", FmtNone, clCop0Co, OpCOP0, CoTLBWR},
	MnTLBP:  {"tlbp", FmtNone, clCop0Co, OpCOP0, CoTLBP},
	MnRFE:   {"rfe", FmtNone, clCop0Co, OpCOP0, CoRFE},

	MnLB:  {"lb", FmtRtOffBase, clImm, OpLB, 0},
	MnLH:  {"lh", FmtRtOffBase, clImm, OpLH, 0},
	MnLWL: {"lwl", FmtRtOffBase, clImm, OpLWL, 0},
	MnLW:  {"lw", FmtRtOffBase, clImm, OpLW, 0},
	MnLBU: {"lbu", FmtRtOffBase, clImm, OpLBU, 0},
	MnLHU: {"lhu", FmtRtOffBase, clImm, OpLHU, 0},
	MnLWR: {"lwr", FmtRtOffBase, clImm, OpLWR, 0},
	MnSB:  {"sb", FmtRtOffBase, clImm, OpSB, 0},
	MnSH:  {"sh", FmtRtOffBase, clImm, OpSH, 0},
	MnSWL: {"swl", FmtRtOffBase, clImm, OpSWL, 0},
	MnSW:  {"sw", FmtRtOffBase, clImm, OpSW, 0},
	MnSWR: {"swr", FmtRtOffBase, clImm, OpSWR, 0},

	MnHCALL:   {"hcall", FmtCode, clSp2, OpSpecial2, FnHCALL},
	MnMFXT:    {"mfxt", FmtRd, clSp2, OpSpecial2, FnMFXT},
	MnMTXT:    {"mtxt", FmtRs, clSp2, OpSpecial2, FnMTXT},
	MnUTLBMOD: {"utlbmod", FmtRsRt, clSp2, OpSpecial2, FnUTLBMOD},
	MnXRET:    {"xret", FmtNone, clSp2, OpSpecial2, FnXRET},
	MnMFXC:    {"mfxc", FmtRd, clSp2, OpSpecial2, FnMFXC},
	MnMFXB:    {"mfxb", FmtRd, clSp2, OpSpecial2, FnMFXB},
}

// Name returns the assembler mnemonic ("addu", "tlbwi", ...).
func (m Mn) Name() string {
	if m < mnCount {
		return specs[m].name
	}
	return fmt.Sprintf("mn%d?", uint8(m))
}

// FormatOf returns the operand format of m.
func FormatOf(m Mn) Format { return specs[m].fmt }

// ByName maps mnemonic text to Mn. Built once at init.
var ByName = func() map[string]Mn {
	t := make(map[string]Mn, mnCount)
	for m := Mn(1); m < mnCount; m++ {
		t[specs[m].name] = m
	}
	return t
}()

// Inst is a decoded instruction. Fields not used by the instruction's
// format are zero.
type Inst struct {
	Mn     Mn
	Rs     Reg
	Rt     Reg
	Rd     Reg
	Shamt  uint8
	Imm    uint16 // raw 16-bit immediate (sign/zero extension is per-op)
	Target uint32 // 26-bit jump target (word index within 256 MB region)
	Code   uint32 // 20-bit code for syscall/break/hcall
	C0Reg  uint8  // CP0 register number for mfc0/mtc0
}

// SImm returns the sign-extended immediate.
func (i Inst) SImm() int32 { return int32(int16(i.Imm)) }

// IsBranch reports whether the instruction has a delay slot (branches
// and jumps).
func (i Inst) IsBranch() bool {
	switch i.Mn {
	case MnJ, MnJAL, MnJR, MnJALR, MnBEQ, MnBNE, MnBLEZ, MnBGTZ,
		MnBLTZ, MnBGEZ, MnBLTZAL, MnBGEZAL:
		return true
	}
	return false
}

// IsLoad reports whether the instruction reads memory.
func (i Inst) IsLoad() bool {
	switch i.Mn {
	case MnLB, MnLH, MnLWL, MnLW, MnLBU, MnLHU, MnLWR:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes memory.
func (i Inst) IsStore() bool {
	switch i.Mn {
	case MnSB, MnSH, MnSWL, MnSW, MnSWR:
		return true
	}
	return false
}

// Normalize zeroes the fields of i that its mnemonic's format does not
// use, so that instructions compare equal independent of junk in unused
// fields. Encode normalizes implicitly.
func Normalize(i Inst) Inst {
	out := Inst{Mn: i.Mn}
	switch specs[i.Mn].fmt {
	case FmtNone:
	case FmtRdRsRt:
		out.Rd, out.Rs, out.Rt = i.Rd, i.Rs, i.Rt
	case FmtRdRtSa:
		out.Rd, out.Rt, out.Shamt = i.Rd, i.Rt, i.Shamt&31
	case FmtRdRtRs:
		out.Rd, out.Rt, out.Rs = i.Rd, i.Rt, i.Rs
	case FmtRs:
		out.Rs = i.Rs
	case FmtRdRs:
		out.Rd, out.Rs = i.Rd, i.Rs
	case FmtRd:
		out.Rd = i.Rd
	case FmtRsRt:
		out.Rs, out.Rt = i.Rs, i.Rt
	case FmtRtRsImm, FmtRsRtOff:
		out.Rs, out.Rt, out.Imm = i.Rs, i.Rt, i.Imm
	case FmtRtImm:
		out.Rt, out.Imm = i.Rt, i.Imm
	case FmtRsOff:
		out.Rs, out.Imm = i.Rs, i.Imm
	case FmtRtOffBase:
		out.Rt, out.Rs, out.Imm = i.Rt, i.Rs, i.Imm
	case FmtTarget:
		out.Target = i.Target & 0x3ffffff
	case FmtCode:
		out.Code = i.Code & 0xfffff
	case FmtRtC0:
		out.Rt, out.C0Reg = i.Rt, i.C0Reg&31
	}
	return out
}

// ErrBadEncoding reports an Inst that names no encodable instruction.
var ErrBadEncoding = errors.New("arch: bad encoding")

// EncodeChecked packs the instruction into its 32-bit word, rejecting
// mnemonics outside the ISA table (MnInvalid, or values beyond the
// table) with an error wrapping ErrBadEncoding. Fields the mnemonic's
// format does not use are ignored.
func EncodeChecked(i Inst) (uint32, error) {
	if i.Mn == MnInvalid || int(i.Mn) >= len(specs) || specs[i.Mn].name == "" {
		return 0, fmt.Errorf("%w: no such mnemonic %d", ErrBadEncoding, uint8(i.Mn))
	}
	return Encode(i), nil
}

// Encode packs the instruction into its 32-bit word. Fields the
// mnemonic's format does not use are ignored. Callers are table-driven
// — the assembler's mnemonic table and spec-sweeping tests only present
// mnemonics that exist in specs — so unlike EncodeChecked this variant
// does not validate Mn; arbitrary (e.g. fuzzed) instructions must go
// through EncodeChecked.
func Encode(i Inst) uint32 {
	i = Normalize(i)
	s := specs[i.Mn]
	switch s.class {
	case clSpecial:
		w := s.op<<26 | uint32(i.Rs)<<21 | uint32(i.Rt)<<16 |
			uint32(i.Rd)<<11 | uint32(i.Shamt)<<6 | s.fn
		if s.fmt == FmtCode {
			// syscall/break: 20-bit code in bits 25:6
			w = s.op<<26 | (i.Code&0xfffff)<<6 | s.fn
		}
		return w
	case clRegimm:
		return s.op<<26 | uint32(i.Rs)<<21 | s.fn<<16 | uint32(i.Imm)
	case clImm:
		return s.op<<26 | uint32(i.Rs)<<21 | uint32(i.Rt)<<16 | uint32(i.Imm)
	case clJump:
		return s.op<<26 | (i.Target & 0x3ffffff)
	case clCop0Mv:
		return s.op<<26 | s.fn<<21 | uint32(i.Rt)<<16 | uint32(i.C0Reg)<<11
	case clCop0Co:
		return s.op<<26 | 1<<25 | s.fn
	case clSp2:
		if s.fmt == FmtCode {
			return s.op<<26 | (i.Code&0xfffff)<<6 | s.fn
		}
		return s.op<<26 | uint32(i.Rs)<<21 | uint32(i.Rt)<<16 |
			uint32(i.Rd)<<11 | s.fn
	}
	// Unreachable: every spec in the table carries one of the class
	// values handled above, and the zero spec (MnInvalid and unnamed
	// slots) has class clSpecial. A new class constant without an
	// Encode arm is a build-time simulator bug, which is exactly what
	// a panic should flag.
	panic("arch: unreachable encode class")
}

// Decode unpacks a 32-bit instruction word. Undecodable words return an
// Inst with Mn == MnInvalid; the CPU raises a reserved-instruction
// exception for those.
func Decode(w uint32) Inst {
	op := w >> 26
	rs := Reg(w >> 21 & 31)
	rt := Reg(w >> 16 & 31)
	rd := Reg(w >> 11 & 31)
	sh := uint8(w >> 6 & 31)
	imm := uint16(w)
	fn := w & 63

	switch op {
	case OpSpecial:
		m := specialByFn[fn]
		if m == MnInvalid {
			return Inst{}
		}
		if m == MnSYSCALL || m == MnBREAK {
			return Inst{Mn: m, Code: w >> 6 & 0xfffff}
		}
		// Special-format encodings carry register and shamt fields their
		// mnemonic may not use (e.g. jr with junk in shamt); normalize so
		// Decode honors the Inst contract that unused fields are zero.
		return Normalize(Inst{Mn: m, Rs: rs, Rt: rt, Rd: rd, Shamt: sh})
	case OpRegimm:
		switch uint32(rt) {
		case RtBLTZ:
			return Inst{Mn: MnBLTZ, Rs: rs, Imm: imm}
		case RtBGEZ:
			return Inst{Mn: MnBGEZ, Rs: rs, Imm: imm}
		case RtBLTZAL:
			return Inst{Mn: MnBLTZAL, Rs: rs, Imm: imm}
		case RtBGEZAL:
			return Inst{Mn: MnBGEZAL, Rs: rs, Imm: imm}
		}
		return Inst{}
	case OpJ, OpJAL:
		m := MnJ
		if op == OpJAL {
			m = MnJAL
		}
		return Inst{Mn: m, Target: w & 0x3ffffff}
	case OpCOP0:
		if w&(1<<25) != 0 {
			switch fn {
			case CoTLBR:
				return Inst{Mn: MnTLBR}
			case CoTLBWI:
				return Inst{Mn: MnTLBWI}
			case CoTLBWR:
				return Inst{Mn: MnTLBWR}
			case CoTLBP:
				return Inst{Mn: MnTLBP}
			case CoRFE:
				return Inst{Mn: MnRFE}
			}
			return Inst{}
		}
		switch uint32(rs) {
		case Cop0MF:
			return Inst{Mn: MnMFC0, Rt: rt, C0Reg: uint8(rd)}
		case Cop0MT:
			return Inst{Mn: MnMTC0, Rt: rt, C0Reg: uint8(rd)}
		}
		return Inst{}
	case OpSpecial2:
		switch fn {
		case FnHCALL:
			return Inst{Mn: MnHCALL, Code: w >> 6 & 0xfffff}
		case FnMFXT:
			return Inst{Mn: MnMFXT, Rd: rd}
		case FnMTXT:
			return Inst{Mn: MnMTXT, Rs: rs}
		case FnUTLBMOD:
			return Inst{Mn: MnUTLBMOD, Rs: rs, Rt: rt}
		case FnXRET:
			return Inst{Mn: MnXRET}
		case FnMFXC:
			return Inst{Mn: MnMFXC, Rd: rd}
		case FnMFXB:
			return Inst{Mn: MnMFXB, Rd: rd}
		}
		return Inst{}
	default:
		m := immByOp[op]
		if m == MnInvalid {
			return Inst{}
		}
		return Inst{Mn: m, Rs: rs, Rt: rt, Imm: imm}
	}
}

var specialByFn = func() [64]Mn {
	var t [64]Mn
	for m := Mn(1); m < mnCount; m++ {
		if specs[m].class == clSpecial {
			t[specs[m].fn] = m
		}
	}
	return t
}()

var immByOp = func() [64]Mn {
	var t [64]Mn
	for m := Mn(1); m < mnCount; m++ {
		if specs[m].class == clImm {
			t[specs[m].op] = m
		}
	}
	return t
}()
