package arch

import "testing"

// FuzzDecodeEncode checks the decoder against the encoder on arbitrary
// instruction words: Decode must never panic, every decodable word must
// re-encode through EncodeChecked, and the re-encoded word must decode
// to the identical Inst (encode drops only bits the format ignores, so
// decode∘encode must be a fixpoint on decoded instructions).
func FuzzDecodeEncode(f *testing.F) {
	// One representative per encoding class, plus junk-bit variants.
	f.Add(uint32(0x00000000))           // sll zero,zero,0 (canonical nop)
	f.Add(uint32(0x00850018))           // mult a0,a1
	f.Add(uint32(0x0000000c))           // syscall
	f.Add(uint32(0x0000400d))           // break 0x100
	f.Add(uint32(0x04110002))           // bgezal (regimm)
	f.Add(uint32(0x0bffffff))           // j, max target
	f.Add(uint32(0x8c430010))           // lw v1,16(v0)
	f.Add(uint32(0x40046000))           // mfc0 a0,c0_status
	f.Add(uint32(0x42000010))           // rfe
	f.Add(uint32(0x70000001))           // special2 (hcall/xt ops live here)
	f.Add(uint32(0xffffffff))           // undecodable
	f.Add(uint32(0x001fffc0))           // special fn with junk in rs/rt/rd
	f.Fuzz(func(t *testing.T, w uint32) {
		d := Decode(w)
		if d.Mn == MnInvalid {
			return
		}
		if got := Normalize(d); got != d {
			t.Fatalf("Decode(%#x) = %+v not normalized (want %+v)", w, d, got)
		}
		enc, err := EncodeChecked(d)
		if err != nil {
			t.Fatalf("Decode(%#x) = %+v, but EncodeChecked rejects it: %v", w, d, err)
		}
		if rd := Decode(enc); rd != d {
			t.Fatalf("re-decode mismatch: word %#x -> %+v -> word %#x -> %+v", w, d, enc, rd)
		}
	})
}
