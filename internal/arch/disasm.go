package arch

import "fmt"

// Disassemble renders a decoded instruction as assembler text. pc is the
// address of the instruction, used to render branch targets absolutely.
func Disassemble(i Inst, pc uint32) string {
	s := specs[i.Mn]
	switch s.fmt {
	case FmtNone:
		return s.name
	case FmtRdRsRt:
		return fmt.Sprintf("%s %s, %s, %s", s.name, i.Rd, i.Rs, i.Rt)
	case FmtRdRtSa:
		return fmt.Sprintf("%s %s, %s, %d", s.name, i.Rd, i.Rt, i.Shamt)
	case FmtRdRtRs:
		return fmt.Sprintf("%s %s, %s, %s", s.name, i.Rd, i.Rt, i.Rs)
	case FmtRs:
		return fmt.Sprintf("%s %s", s.name, i.Rs)
	case FmtRdRs:
		return fmt.Sprintf("%s %s, %s", s.name, i.Rd, i.Rs)
	case FmtRd:
		return fmt.Sprintf("%s %s", s.name, i.Rd)
	case FmtRsRt:
		return fmt.Sprintf("%s %s, %s", s.name, i.Rs, i.Rt)
	case FmtRtRsImm:
		return fmt.Sprintf("%s %s, %s, %d", s.name, i.Rt, i.Rs, i.SImm())
	case FmtRtImm:
		return fmt.Sprintf("%s %s, 0x%x", s.name, i.Rt, i.Imm)
	case FmtRsRtOff:
		return fmt.Sprintf("%s %s, %s, 0x%x", s.name, i.Rs, i.Rt, BranchTarget(pc, i.Imm))
	case FmtRsOff:
		return fmt.Sprintf("%s %s, 0x%x", s.name, i.Rs, BranchTarget(pc, i.Imm))
	case FmtRtOffBase:
		return fmt.Sprintf("%s %s, %d(%s)", s.name, i.Rt, i.SImm(), i.Rs)
	case FmtTarget:
		return fmt.Sprintf("%s 0x%x", s.name, JumpTarget(pc, i.Target))
	case FmtCode:
		if i.Code == 0 {
			return s.name
		}
		return fmt.Sprintf("%s %d", s.name, i.Code)
	case FmtRtC0:
		c0 := C0Names[i.C0Reg]
		if c0 == "" {
			c0 = fmt.Sprintf("$%d", i.C0Reg)
		}
		return fmt.Sprintf("%s %s, %s", s.name, i.Rt, c0)
	}
	return "invalid"
}

// DisassembleWord decodes and renders a raw instruction word.
func DisassembleWord(w uint32, pc uint32) string {
	i := Decode(w)
	if i.Mn == MnInvalid {
		return fmt.Sprintf(".word 0x%08x", w)
	}
	return Disassemble(i, pc)
}

// BranchTarget computes the absolute address of a branch with the given
// 16-bit offset field, relative to the instruction at pc (target is
// pc + 4 + signext(off) * 4).
func BranchTarget(pc uint32, off uint16) uint32 {
	return pc + 4 + uint32(int32(int16(off)))<<2
}

// BranchOffset computes the 16-bit offset field encoding a branch from
// pc to target. ok is false if the displacement does not fit.
func BranchOffset(pc, target uint32) (off uint16, ok bool) {
	d := int64(int32(target)) - int64(int32(pc)+4)
	if d&3 != 0 {
		return 0, false
	}
	d >>= 2
	if d < -32768 || d > 32767 {
		return 0, false
	}
	return uint16(int16(d)), true
}

// JumpTarget computes the absolute address of a j/jal with the given
// 26-bit target field executed at pc (the target shares pc+4's top
// 4 bits).
func JumpTarget(pc, target uint32) uint32 {
	return (pc+4)&0xf0000000 | target<<2
}

// JumpField computes the 26-bit target field encoding a jump from pc to
// target. ok is false if target is not in pc's 256 MB region or is
// unaligned.
func JumpField(pc, target uint32) (uint32, bool) {
	if target&3 != 0 || (pc+4)&0xf0000000 != target&0xf0000000 {
		return 0, false
	}
	return target >> 2 & 0x3ffffff, true
}
