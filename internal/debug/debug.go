// Package debug implements virtual-breakpoint debug sessions over a
// simulated machine (DESIGN.md §16): unlimited non-intrusive
// breakpoints and watchpoints in the style of "Virtual Breakpoints for
// x86/64" (arXiv 1801.09250), built on the CPU's page-granular
// DebugGuard instead of instruction patching or PTE edits — the guest
// never observes that a debugger is attached, so a session resumed to
// completion produces the byte-identical result of an undebugged run.
//
// The guard pauses the CPU on ANY access to a guarded page; this
// package narrows page hits to the session's word-exact breakpoints
// and watchpoints, silently stepping over innocent neighbours with the
// triggering guard bits lifted for exactly one instruction. Commands
// are executed batch-style and each produces one deterministic text
// line, which is what makes a session re-runnable: the §12 store can
// replay a pending session after a crash and stream the same bytes.
package debug

import (
	"fmt"
	"strings"

	"uexc/internal/arch"
	"uexc/internal/core"
	"uexc/internal/cpu"
)

// Command is one debug-session operation.
type Command struct {
	// Op is one of: "break" (exact-PC breakpoint), "watch" (store
	// watchpoint on the aligned word at Addr), "rwatch" (load or store),
	// "watch-page" (any data access to Addr's page — how a whole kernel
	// data page is watched), "clear" (remove the break/watch at Addr),
	// "continue" (run up to N instructions, default the session's
	// remaining budget), "step" (execute exactly N instructions,
	// default 1, guards lifted), "inspect" (read N words at Addr,
	// default 1), "regs" (register digest).
	Op   string `json:"op"`
	Addr uint32 `json:"addr,omitempty"`
	N    uint64 `json:"n,omitempty"`
}

// Ops lists the valid command verbs (for request validation).
var Ops = []string{"break", "watch", "rwatch", "watch-page", "clear", "continue", "step", "inspect", "regs"}

// ValidOp reports whether op is a known command verb.
func ValidOp(op string) bool {
	for _, o := range Ops {
		if o == op {
			return true
		}
	}
	return false
}

// Session drives one machine under a DebugGuard. The machine must have
// its program loaded and launched; Exec then interprets commands.
type Session struct {
	m     *core.Machine
	guard *cpu.DebugGuard

	bps    map[uint32]bool            // exact breakpoint PCs
	watchW map[uint32]cpu.DebugAccess // aligned word -> watched kinds
	watchP map[uint32]cpu.DebugAccess // vpn -> page-watched kinds

	budget uint64 // remaining continue/step allowance
}

// New attaches a session to the machine with the given total
// instruction budget for continue/step commands.
func New(m *core.Machine, budget uint64) *Session {
	s := &Session{
		m:      m,
		guard:  cpu.NewDebugGuard(),
		bps:    make(map[uint32]bool),
		watchW: make(map[uint32]cpu.DebugAccess),
		watchP: make(map[uint32]cpu.DebugAccess),
		budget: budget,
	}
	m.K.CPU.Debug = s.guard
	return s
}

// Exec runs one command and returns its deterministic output line.
// Errors are command-level (unknown op, bad address) — the session
// stays usable.
func (s *Session) Exec(cmd Command) (string, error) {
	c := s.m.K.CPU
	switch cmd.Op {
	case "break":
		s.bps[cmd.Addr] = true
		s.guard.GuardPage(cmd.Addr, cpu.DebugFetch)
		return fmt.Sprintf("break set pc=%#x", cmd.Addr), nil
	case "watch":
		s.watchW[cmd.Addr&^3] |= cpu.DebugStore
		s.guard.GuardPage(cmd.Addr, cpu.DebugStore)
		return fmt.Sprintf("watch set addr=%#x kind=store", cmd.Addr&^3), nil
	case "rwatch":
		s.watchW[cmd.Addr&^3] |= cpu.DebugLoad | cpu.DebugStore
		s.guard.GuardPage(cmd.Addr, cpu.DebugLoad|cpu.DebugStore)
		return fmt.Sprintf("watch set addr=%#x kind=load|store", cmd.Addr&^3), nil
	case "watch-page":
		s.watchP[cmd.Addr>>arch.PageShift] |= cpu.DebugLoad | cpu.DebugStore
		s.guard.GuardPage(cmd.Addr, cpu.DebugLoad|cpu.DebugStore)
		return fmt.Sprintf("watch set page=%#x kind=load|store", cmd.Addr&^(arch.PageSize-1)), nil
	case "clear":
		return s.clear(cmd.Addr), nil
	case "continue":
		n := cmd.N
		if n == 0 || n > s.budget {
			n = s.budget
		}
		return s.cont(n), nil
	case "step":
		n := cmd.N
		if n == 0 {
			n = 1
		}
		if n > s.budget {
			n = s.budget
		}
		return s.step(n), nil
	case "inspect":
		return s.inspect(cmd.Addr, max(cmd.N, 1)), nil
	case "regs":
		return fmt.Sprintf("regs pc=%#x npc=%#x sp=%#x ra=%#x v0=%#x a0=%#x insts=%d cycles=%d",
			c.PC, c.NPC, c.GPR[arch.RegSP], c.GPR[arch.RegRA],
			c.GPR[arch.RegV0], c.GPR[arch.RegA0], c.Insts, c.Cycles), nil
	}
	return "", fmt.Errorf("debug: unknown op %q", cmd.Op)
}

// clear removes whatever break/watch is registered at addr and drops
// the corresponding guard bits (only the bits no remaining registration
// on that page needs).
func (s *Session) clear(addr uint32) string {
	removed := []string{}
	if s.bps[addr] {
		delete(s.bps, addr)
		removed = append(removed, "break")
	}
	if s.watchW[addr&^3] != 0 {
		delete(s.watchW, addr&^3)
		removed = append(removed, "watch")
	}
	if s.watchP[addr>>arch.PageShift] != 0 {
		delete(s.watchP, addr>>arch.PageShift)
		removed = append(removed, "watch-page")
	}
	s.reguard(addr >> arch.PageShift)
	if len(removed) == 0 {
		return fmt.Sprintf("clear addr=%#x: nothing set", addr)
	}
	return fmt.Sprintf("clear addr=%#x: %s", addr, strings.Join(removed, ","))
}

// reguard recomputes the guard bits of one page from the remaining
// registrations.
func (s *Session) reguard(vpn uint32) {
	va := vpn << arch.PageShift
	s.guard.UnguardPage(va, cpu.DebugFetch|cpu.DebugLoad|cpu.DebugStore)
	var acc cpu.DebugAccess
	for pc := range s.bps {
		if pc>>arch.PageShift == vpn {
			acc |= cpu.DebugFetch
		}
	}
	for w, k := range s.watchW {
		if w>>arch.PageShift == vpn {
			acc |= k
		}
	}
	acc |= s.watchP[vpn]
	if acc != 0 {
		s.guard.GuardPage(va, acc)
	}
}

// real reports whether a guard hit matches an actual registration (as
// opposed to an innocent access to a guarded page).
func (s *Session) real(h *cpu.DebugHit) bool {
	if h.Access&cpu.DebugFetch != 0 && s.bps[h.PC] {
		return true
	}
	if data := h.Access &^ cpu.DebugFetch; data != 0 {
		if s.watchW[h.VA&^3]&data != 0 {
			return true
		}
		if s.watchP[h.VA>>arch.PageShift]&data != 0 {
			return true
		}
	}
	return false
}

// stepOver retires exactly the next instruction with every guard
// lifted, then re-attaches. Used for explicit "step" commands, for
// resuming past a reported stop, and for passing innocent neighbours.
func (s *Session) stepOver() error {
	c := s.m.K.CPU
	s.guard.Hit = nil
	c.Halted = false
	c.Debug = nil
	err := c.Step()
	c.Debug = s.guard
	s.budget--
	return err
}

// cont resumes execution for at most n instructions, pausing at the
// first real breakpoint/watchpoint hit. Innocent same-page accesses
// are stepped over invisibly.
func (s *Session) cont(n uint64) string {
	c := s.m.K.CPU
	if s.budget == 0 {
		return "continue: budget exhausted"
	}
	if c.Halted && s.guard.Hit == nil {
		return s.exitLine()
	}
	if s.guard.Hit != nil {
		// Resuming past the previously reported stop.
		if err := s.stepOver(); err != nil {
			return fmt.Sprintf("continue: error %q insts=%d", err.Error(), c.Insts)
		}
		if n > 0 {
			n--
		}
	}
	start := c.Insts
	for {
		if c.Halted {
			return s.exitLine()
		}
		executed := c.Insts - start
		if executed >= n || s.budget == 0 {
			return fmt.Sprintf("continue: budget pc=%#x insts=%d", c.PC, c.Insts)
		}
		chunk := min(n-executed, s.budget)
		ran, err := c.Run(chunk)
		if ran > s.budget {
			s.budget = 0
		} else {
			s.budget -= ran
		}
		if h := s.guard.Hit; h != nil {
			if s.real(h) {
				kind := "watch"
				if h.Access&cpu.DebugFetch != 0 && s.bps[h.PC] {
					kind = "break"
				}
				return fmt.Sprintf("continue: hit %s pc=%#x va=%#x access=%s insts=%d",
					kind, h.PC, h.VA, h.Access, c.Insts)
			}
			if err := s.stepOver(); err != nil {
				return fmt.Sprintf("continue: error %q insts=%d", err.Error(), c.Insts)
			}
			continue
		}
		if err != nil {
			if _, ok := err.(*cpu.BudgetError); ok {
				continue // loop re-checks executed vs n
			}
			return fmt.Sprintf("continue: error %q insts=%d", err.Error(), c.Insts)
		}
	}
}

// step executes exactly n instructions (guards lifted), or fewer if
// the machine halts first.
func (s *Session) step(n uint64) string {
	c := s.m.K.CPU
	for i := uint64(0); i < n; i++ {
		if c.Halted && s.guard.Hit == nil {
			return s.exitLine()
		}
		if err := s.stepOver(); err != nil {
			return fmt.Sprintf("step: error %q insts=%d", err.Error(), c.Insts)
		}
	}
	return fmt.Sprintf("step: pc=%#x insts=%d", c.PC, c.Insts)
}

// inspect reads n words starting at the aligned addr: user addresses
// go through the page table (kernel privilege, no faults), kseg0/kseg1
// addresses read physical memory directly — so watched kernel data
// pages are inspectable too.
func (s *Session) inspect(addr uint32, n uint64) string {
	addr &^= 3
	var b strings.Builder
	fmt.Fprintf(&b, "inspect %#x:", addr)
	for i := uint64(0); i < n && i < 64; i++ {
		va := addr + uint32(i*4)
		v, ok := s.readWord(va)
		if !ok {
			fmt.Fprintf(&b, " <unmapped>")
			continue
		}
		fmt.Fprintf(&b, " %08x", v)
	}
	return b.String()
}

func (s *Session) readWord(va uint32) (uint32, bool) {
	if arch.InKSeg0(va) || arch.InKSeg1(va) {
		v, err := s.m.K.Mem.LoadWord(arch.KSegPhys(va))
		return v, err == nil
	}
	return s.m.K.ReadUserWord(va)
}

// exitLine renders the machine's final state (deterministic across
// engines and across re-runs — the byte-identity property sessions
// are journaled under).
func (s *Session) exitLine() string {
	_, status := s.m.K.Exited()
	return fmt.Sprintf("exit: status=%d console=%q insts=%d cycles=%d",
		status, s.m.K.Console(), s.m.K.CPU.Insts, s.m.K.CPU.Cycles)
}

// Detach removes the guard from the machine (the machine is NOT
// returned to any pool here; a paused or finished machine may carry
// arbitrary state).
func (s *Session) Detach() { s.m.K.CPU.Debug = nil }
