package debug

import (
	"fmt"
	"strings"
	"testing"

	"uexc/internal/core"
	"uexc/internal/kernel"
	"uexc/internal/progen"
)

const sessionBudget = 3_000_000

// ultrixMachine boots a machine with a deterministic progen program
// under conventional Ultrix delivery — the mode whose slow path saves
// the trapframe with ordinary CPU stores, which is what kernel-page
// watchpoints observe.
func ultrixMachine(t *testing.T, seed int64) *core.Machine {
	t.Helper()
	m, err := core.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	p := progen.Generate(seed)
	if err := m.LoadProgram(p.Source(core.ModeUltrix, false)); err != nil {
		t.Fatal(err)
	}
	return m
}

// transcript runs a command script and returns one line per command.
func transcript(t *testing.T, m *core.Machine, cmds []Command) []string {
	t.Helper()
	s := New(m, sessionBudget)
	defer s.Detach()
	var lines []string
	for i, cmd := range cmds {
		out, err := s.Exec(cmd)
		if err != nil {
			t.Fatalf("command %d (%s): %v", i, cmd.Op, err)
		}
		lines = append(lines, out)
	}
	return lines
}

// TestBreakpointAtEntry: a breakpoint on the current PC pauses before
// the first instruction runs, and a second continue resumes past it.
func TestBreakpointAtEntry(t *testing.T) {
	m := ultrixMachine(t, 1)
	entry := m.K.CPU.PC
	lines := transcript(t, m, []Command{
		{Op: "break", Addr: entry},
		{Op: "continue"},
		{Op: "regs"},
		{Op: "clear", Addr: entry},
		{Op: "continue"},
	})
	if want := fmt.Sprintf("continue: hit break pc=%#x va=%#x access=fetch insts=0", entry, entry); lines[1] != want {
		t.Errorf("continue = %q, want %q", lines[1], want)
	}
	if !strings.Contains(lines[2], fmt.Sprintf("pc=%#x", entry)) || !strings.Contains(lines[2], "insts=0") {
		t.Errorf("regs at pause = %q, want pc at entry with zero retirement", lines[2])
	}
	if lines[3] != fmt.Sprintf("clear addr=%#x: break", entry) {
		t.Errorf("clear = %q", lines[3])
	}
	if !strings.HasPrefix(lines[4], "exit: status=") {
		t.Errorf("final continue = %q, want an exit line", lines[4])
	}
}

// TestWordWatchNarrowing: a word-exact watch on one trapframe slot
// pauses on exactly that word; the kernel's stores to every OTHER word
// of the same (guarded) page are stepped over invisibly.
func TestWordWatchNarrowing(t *testing.T) {
	m := ultrixMachine(t, 1)
	tf := uint32(kernel.KStackTop - kernel.TrapframeSize)
	watched := tf + 8
	s := New(m, sessionBudget)
	defer s.Detach()

	if _, err := s.Exec(Command{Op: "watch", Addr: watched}); err != nil {
		t.Fatal(err)
	}
	out, err := s.Exec(Command{Op: "continue"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hit watch") || !strings.Contains(out, fmt.Sprintf("va=%#x", watched)) {
		t.Fatalf("continue = %q, want a store hit on exactly va=%#x", out, watched)
	}
	if !strings.Contains(out, "access=store") {
		t.Errorf("continue = %q, want access=store (watch is store-only)", out)
	}
	// The paused store has not happened yet.
	if got, ok := s.readWord(watched); !ok || got != 0 {
		t.Errorf("watched word already %#x before resume", got)
	}
}

// TestKernelPageWatch: the acceptance scenario — watch the whole
// kernel trapframe page, hit it on the first exception's register
// save, inspect the trapframe, resume to completion, and end with a
// result byte-identical to a run that never had a debugger attached.
func TestKernelPageWatch(t *testing.T) {
	const seed = 3
	tf := uint32(kernel.KStackTop - kernel.TrapframeSize)

	m := ultrixMachine(t, seed)
	lines := transcript(t, m, []Command{
		{Op: "watch-page", Addr: tf},
		{Op: "continue"},
		{Op: "inspect", Addr: tf, N: 4},
		{Op: "step", N: 8},
		{Op: "inspect", Addr: tf, N: 4},
		{Op: "clear", Addr: tf},
		{Op: "continue"},
	})
	if !strings.Contains(lines[1], "hit watch") {
		t.Fatalf("continue = %q, want a watch hit on the trapframe page", lines[1])
	}
	if !strings.HasPrefix(lines[2], fmt.Sprintf("inspect %#x:", tf)) {
		t.Fatalf("inspect = %q", lines[2])
	}
	if lines[2] == lines[4] {
		t.Errorf("trapframe unchanged across the stepped-over register save:\n%s", lines[2])
	}
	if !strings.HasPrefix(lines[6], "exit: status=") {
		t.Fatalf("final continue = %q, want an exit line", lines[6])
	}

	// Guest invisibility: the undebugged run ends in the same state.
	ref := ultrixMachine(t, seed)
	if err := ref.Run(sessionBudget); err != nil {
		t.Fatal(err)
	}
	_, status := ref.K.Exited()
	want := fmt.Sprintf("exit: status=%d console=%q insts=%d cycles=%d",
		status, ref.K.Console(), ref.K.CPU.Insts, ref.K.CPU.Cycles)
	if lines[6] != want {
		t.Errorf("debugged exit diverged from undebugged run\n got: %s\nwant: %s", lines[6], want)
	}

	// Determinism: the same script on a fresh machine streams the same
	// bytes (the property journaled sessions replay under).
	again := transcript(t, ultrixMachine(t, seed), []Command{
		{Op: "watch-page", Addr: tf},
		{Op: "continue"},
		{Op: "inspect", Addr: tf, N: 4},
		{Op: "step", N: 8},
		{Op: "inspect", Addr: tf, N: 4},
		{Op: "clear", Addr: tf},
		{Op: "continue"},
	})
	for i := range lines {
		if lines[i] != again[i] {
			t.Errorf("line %d not deterministic:\nfirst:  %s\nsecond: %s", i, lines[i], again[i])
		}
	}
}

// TestBudgetExhaustion: continue/step never exceed the session budget,
// and an exhausted session says so instead of running.
func TestBudgetExhaustion(t *testing.T) {
	m := ultrixMachine(t, 1)
	s := New(m, 10)
	defer s.Detach()

	out, err := s.Exec(Command{Op: "continue", N: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "continue: budget pc=") {
		t.Fatalf("continue = %q, want a budget stop", out)
	}
	if got := m.K.CPU.Insts; got > 10 {
		t.Errorf("session retired %d insts on a budget of 10", got)
	}
	if out, _ := s.Exec(Command{Op: "continue"}); out != "continue: budget exhausted" {
		t.Errorf("exhausted continue = %q", out)
	}
}

// TestInspectAndErrors: inspect reads kseg0 physical words and marks
// unmapped user addresses; clear on nothing reports it; unknown ops
// error without killing the session.
func TestInspectAndErrors(t *testing.T) {
	m := ultrixMachine(t, 1)
	s := New(m, sessionBudget)
	defer s.Detach()

	// A kseg0 read of the trapframe page resolves physically.
	if _, err := s.Exec(Command{Op: "inspect", Addr: kernel.KStackTop - kernel.TrapframeSize, N: 1}); err != nil {
		t.Fatal(err)
	}
	out, err := s.Exec(Command{Op: "inspect", Addr: 0x7fff0000, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<unmapped>") {
		t.Errorf("inspect of unmapped user page = %q", out)
	}
	out, err = s.Exec(Command{Op: "clear", Addr: 0x1234})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "nothing set") {
		t.Errorf("clear = %q", out)
	}
	if _, err := s.Exec(Command{Op: "poke"}); err == nil {
		t.Error("unknown op must error")
	}
	// The session survives the bad command.
	if _, err := s.Exec(Command{Op: "regs"}); err != nil {
		t.Errorf("session unusable after bad command: %v", err)
	}
}
