package difftest

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"uexc/internal/core"
	"uexc/internal/progen"
)

var update = flag.Bool("update", false, "rewrite the committed shrunk reproducer")

// divergesMutated is the shrinker predicate for the oracle's known
// divergence: the cause-offset mutation in the Fast mode handler
// against a clean Ultrix baseline.
func divergesMutated(pool *core.MachinePool) func(*progen.Program) bool {
	return func(q *progen.Program) bool {
		base := runMode(pool, q, core.ModeUltrix, false)
		mut := runMode(pool, q, core.ModeFast, true)
		return len(diff(&base, &mut)) > 0
	}
}

// TestShrinkMutationDivergence: the shrinker must reduce the
// mutation-divergence seed to a strictly smaller, still-divergent,
// 1-minimal episode subset.
func TestShrinkMutationDivergence(t *testing.T) {
	pool := &core.MachinePool{}
	pred := divergesMutated(pool)
	p := progen.Generate(mutationSeed())
	min := ShrinkEpisodes(p, pred)
	if min == nil {
		t.Fatal("seed does not diverge — predicate broken")
	}
	if len(min.Episodes) == 0 || len(min.Episodes) >= len(p.Episodes) {
		t.Fatalf("shrunk to %d episodes from %d", len(min.Episodes), len(p.Episodes))
	}
	if !pred(min) {
		t.Fatal("shrunk program no longer diverges")
	}
	// 1-minimality: dropping any single surviving episode must lose the
	// divergence.
	for i := range min.Episodes {
		var sub []int
		for j := range min.Episodes {
			if j != i {
				sub = append(sub, j)
			}
		}
		if pred(min.WithEpisodes(sub)) {
			t.Errorf("not 1-minimal: still diverges without episode %d", i)
		}
	}
}

// TestShrinkRejectsNonFailing: a predicate that never holds yields nil,
// not an empty program.
func TestShrinkRejectsNonFailing(t *testing.T) {
	p := progen.Generate(0)
	if got := ShrinkEpisodes(p, func(*progen.Program) bool { return false }); got != nil {
		t.Errorf("ShrinkEpisodes = %v, want nil", got)
	}
}

// TestShrunkReproducerGolden pins the shrinker's end product: the
// minimal divergent program's mutated Fast-mode source is committed at
// testdata/shrunk_mutation_fast.s, the regression re-runs the shrinker
// and requires byte-identical output (the shrinker and the generator
// are both deterministic), and the committed source must still load
// and run to a clean exit — divergence here is wrong *logged causes*,
// not a crash.
func TestShrunkReproducerGolden(t *testing.T) {
	pool := &core.MachinePool{}
	min := ShrinkEpisodes(progen.Generate(mutationSeed()), divergesMutated(pool))
	if min == nil {
		t.Fatal("mutation seed does not diverge")
	}
	got := min.Source(core.ModeFast, true)

	path := filepath.Join("testdata", "shrunk_mutation_fast.s")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing committed reproducer (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("shrunk reproducer drifted from committed file (refresh with -update)\n--- got ---\n%s", got)
	}

	m, err := core.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(string(want)); err != nil {
		t.Fatalf("committed reproducer does not load: %v", err)
	}
	if err := m.Run(Budget); err != nil {
		t.Fatalf("committed reproducer does not run cleanly: %v", err)
	}
}
