// Package difftest is the cross-mode differential-testing oracle: it
// runs each internal/progen program under all three delivery modes
// (ModeUltrix, ModeFast, ModeHardware) and asserts architectural
// equivalence — the paper's central claim that fast user-level delivery
// changes the cost of an exception, never its meaning.
//
// Equivalence relation (DESIGN.md §9). Two mode runs of the same
// program are equivalent iff all of the following match:
//
//   - clean termination (exit 0) and console output;
//   - the final general register file, excluding k0/k1 (kernel
//     scratch), plus HI and LO;
//   - exception counts for the intentional causes — Mod, AdEL, AdES,
//     Bp, Ov;
//   - the handler-entry log: order, cause code, and fault address of
//     every policy invocation;
//   - the bytes of the oracle data page and the fault arena.
//
// Everything else is the documented per-mode allowlist: cycle and
// instruction counts (the quantity the paper varies), TLB refill
// counts (TLBL/TLBS; handler code paths differ, so TLB pressure
// differs), syscall counts (sigreturn is a syscall only the Unix path
// executes), delivery-path statistics (FastDeliveries vs
// UnixDeliveries), k0/k1 and all privileged/condition registers
// (CP0, XT/XC/XB), the exception-frame page, the Tera wrapper's static
// frame, and sigcontext residue below the user stack pointer.
package difftest

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"uexc/internal/arch"
	"uexc/internal/core"
	"uexc/internal/parallel"
	"uexc/internal/progen"
	"uexc/internal/verdict"
)

// Budget is the legacy flat run bound, kept as the floor of the scaled
// per-program budget (BudgetFor): small generated programs converge
// orders of magnitude below it, so exhausting it is itself a failure.
const Budget = 3_000_000

// budgetBase is the fixed per-run allowance of a scaled budget — the
// launch stub, runtime prologue, and kernel overheads that do not grow
// with program size.
const budgetBase = 250_000

// budgetPerInst is the per-mode multiplier of the scaled budget: the
// worst-case cost of one emitted instruction, assuming every one of
// them faults and takes a full delivery round trip. The Unix path runs
// the most kernel instructions per fault (trap decode, sendsig copyout,
// trampoline, sigreturn copyin), the kernel fast path far fewer, and
// Tera-style hardware delivery fewer still — so the multipliers are
// ordered Ultrix > FastExc > Hardware (asserted by test).
func budgetPerInst(mode core.Mode) uint64 {
	switch mode {
	case core.ModeFast:
		return 500
	case core.ModeHardware:
		return 300
	default: // ModeUltrix
		return 1200
	}
}

// BudgetFor computes a program's instruction budget for one mode:
// instructions emitted × the mode's worst-case delivery multiplier,
// plus the fixed base, floored at the legacy flat Budget so the bound
// never shrinks for the seed corpus that already converges under it. A
// budget above the floor marks the run's verdict BudgetScaled — growth
// is visible, never silent (DESIGN.md §14).
func BudgetFor(p *progen.Program, mode core.Mode) uint64 {
	scaled := budgetBase + uint64(p.EmittedInsts(mode))*budgetPerInst(mode)
	if scaled < Budget {
		return Budget
	}
	return scaled
}

// Modes is the comparison set, Ultrix first: the Unix path is the
// semantic baseline the fast paths must reproduce.
var Modes = []core.Mode{core.ModeUltrix, core.ModeFast, core.ModeHardware}

// IntentionalCodes are the exception causes generated programs raise
// on purpose; their per-cause counts must match across modes.
var IntentionalCodes = []uint32{arch.ExcMod, arch.ExcAdEL, arch.ExcAdES, arch.ExcBp, arch.ExcOv}

// Entry is one handler-policy invocation as the program logged it.
type Entry struct {
	Cause uint32
	BadVA uint32
}

// ModeRun digests one program execution under one mode — exactly the
// state the equivalence relation compares.
type ModeRun struct {
	Mode    core.Mode
	Err     string // "" = clean exit 0
	Console string
	GPR     [32]uint32 // k0/k1 zeroed
	HI, LO  uint32
	Counts  map[uint32]uint64 // intentional causes only
	Entries uint32            // total policy invocations
	Log     []Entry
	Data    []uint32 // oracle data page, word granular
	Arena   []uint32 // fault arena
}

// runMode executes program p under mode on a pooled machine. mutate
// selects the deliberately wrong handler variant (self-test only).
func runMode(pool *core.MachinePool, p *progen.Program, mode core.Mode, mutate bool) (r ModeRun) {
	r.Mode = mode
	r.Counts = map[uint32]uint64{}

	var m *core.Machine
	healthy := false
	defer func() {
		if rec := recover(); rec != nil {
			r.Err = fmt.Sprintf("panic: %v", rec)
			return
		}
		if healthy {
			pool.Put(m)
		}
	}()

	m, err := pool.Get()
	if err != nil {
		r.Err = "boot: " + err.Error()
		return r
	}
	healthy = true

	if err := m.LoadProgram(p.Source(mode, mutate)); err != nil {
		r.Err = "load: " + err.Error()
		return r
	}
	if mode == core.ModeHardware {
		m.EnableHardwareDelivery(progen.HWVector)
	}
	if err := m.Run(BudgetFor(p, mode)); err != nil {
		r.Err = err.Error()
	}

	r.Console = m.K.Console()
	c := m.CPU()
	r.GPR = c.GPR
	r.GPR[arch.RegK0], r.GPR[arch.RegK1] = 0, 0
	r.HI, r.LO = c.HI, c.LO
	for _, code := range IntentionalCodes {
		r.Counts[code] = c.ExcCounts[code]
	}

	word := func(va uint32) uint32 {
		v, _ := m.K.ReadUserWord(va)
		return v
	}
	r.Entries = word(progen.DataBase + progen.OffCount)
	logged := word(progen.DataBase + progen.OffLogLen)
	if logged > progen.LogCap {
		logged = progen.LogCap
	}
	for i := uint32(0); i < logged; i++ {
		r.Log = append(r.Log, Entry{
			Cause: word(progen.DataBase + progen.OffLog + i*8),
			BadVA: word(progen.DataBase + progen.OffLog + i*8 + 4),
		})
	}
	for off := uint32(0); off < arch.PageSize; off += 4 {
		r.Data = append(r.Data, word(progen.DataBase+off))
	}
	for off := uint32(0); off < progen.ArenaPages*arch.PageSize; off += 4 {
		r.Arena = append(r.Arena, word(progen.ArenaBase+off))
	}
	return r
}

// diff lists the equivalence violations between a baseline run and
// another mode's run, capped to keep reports readable.
func diff(base, other *ModeRun) []string {
	const maxPerPair = 8
	var out []string
	add := func(format string, args ...any) {
		if len(out) < maxPerPair {
			out = append(out, fmt.Sprintf("[%s vs %s] ", other.Mode, base.Mode)+fmt.Sprintf(format, args...))
		}
	}

	if base.Err != other.Err {
		add("run error %q != %q", other.Err, base.Err)
	}
	if base.Console != other.Console {
		add("console %q != %q", other.Console, base.Console)
	}
	if base.Entries != other.Entries {
		add("policy invocations %d != %d", other.Entries, base.Entries)
	}
	if len(base.Log) != len(other.Log) {
		add("handler log length %d != %d", len(other.Log), len(base.Log))
	}
	for i := 0; i < len(base.Log) && i < len(other.Log); i++ {
		if base.Log[i] != other.Log[i] {
			add("log[%d] (cause %d badva %#x) != (cause %d badva %#x)",
				i, other.Log[i].Cause, other.Log[i].BadVA, base.Log[i].Cause, base.Log[i].BadVA)
		}
	}
	for _, code := range IntentionalCodes {
		if base.Counts[code] != other.Counts[code] {
			add("%s count %d != %d", arch.ExcName(code), other.Counts[code], base.Counts[code])
		}
	}
	for r := 0; r < 32; r++ {
		if base.GPR[r] != other.GPR[r] {
			add("$%d = %#x != %#x", r, other.GPR[r], base.GPR[r])
		}
	}
	if base.HI != other.HI || base.LO != other.LO {
		add("hi/lo %#x/%#x != %#x/%#x", other.HI, other.LO, base.HI, base.LO)
	}
	for i := range base.Data {
		if base.Data[i] != other.Data[i] {
			add("data[%#x] = %#x != %#x", i*4, other.Data[i], base.Data[i])
		}
	}
	for i := range base.Arena {
		if base.Arena[i] != other.Arena[i] {
			add("arena[%#x] = %#x != %#x", i*4, other.Arena[i], base.Arena[i])
		}
	}
	return out
}

// CheckSeed generates seed's program, runs it under every mode, and
// returns the equivalence violations against the Ultrix baseline
// (empty = the modes agree) plus the baseline's handler-policy
// invocation count. Mode errors surface as violations too: a program
// that fails anywhere cannot witness equivalence.
func CheckSeed(pool *core.MachinePool, seed int64) (divergences []string, entries uint64) {
	return CheckProgram(pool, progen.Generate(seed))
}

// CheckProgram is CheckSeed for a caller-built program — the fuzzer
// uses it to graft extra stanzas (the SMC probe) onto generated seeds.
func CheckProgram(pool *core.MachinePool, p *progen.Program) (divergences []string, entries uint64) {
	runs := make([]ModeRun, len(Modes))
	for i, mode := range Modes {
		runs[i] = runMode(pool, p, mode, false)
	}
	if runs[0].Err != "" {
		divergences = append(divergences, fmt.Sprintf("[%s] run error: %s", runs[0].Mode, runs[0].Err))
	}
	for i := 1; i < len(runs); i++ {
		divergences = append(divergences, diff(&runs[0], &runs[i])...)
	}
	return divergences, uint64(runs[0].Entries)
}

// Result aggregates a differential campaign.
type Result struct {
	Seeds    int
	Episodes map[string]int // generated episode kinds, for coverage
	Entries  uint64         // total handler-policy invocations (Ultrix baseline)
	// Divergences lists every equivalence violation, prefixed with its
	// seed; empty means all modes agreed on every seed.
	Divergences []string
	// Verdicts tallies the per-seed typed verdicts (DESIGN.md §14).
	Verdicts verdict.Counts
	// SelfTest records the mutation self-test verdict (always run).
	SelfTestOK   bool
	SelfTestSeed int64
}

// Ok reports whether the campaign passed.
func (r *Result) Ok() bool { return len(r.Divergences) == 0 && r.SelfTestOK }

// Summary renders the deterministic campaign report.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "difftest: %d seeds x %d modes (Ultrix baseline)\n", r.Seeds, len(Modes))
	kinds := make([]string, 0, len(r.Episodes))
	for k := range r.Episodes {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	b.WriteString("episodes generated:\n")
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-16s %d\n", k, r.Episodes[k])
	}
	fmt.Fprintf(&b, "handler-policy invocations (baseline): %d\n", r.Entries)
	b.WriteString("verdicts:\n")
	for k := verdict.Kind(0); k < verdict.NumKinds; k++ {
		fmt.Fprintf(&b, "  %-16s %d\n", k, r.Verdicts[k])
	}
	if r.SelfTestOK {
		fmt.Fprintf(&b, "oracle self-test: mutation in one mode detected (seed %d)\n", r.SelfTestSeed)
	} else {
		fmt.Fprintf(&b, "ORACLE SELF-TEST FAILED: mutation in one mode NOT detected (seed %d)\n", r.SelfTestSeed)
	}
	if len(r.Divergences) > 0 {
		fmt.Fprintf(&b, "DIVERGENCES (%d):\n", len(r.Divergences))
		for _, d := range r.Divergences {
			fmt.Fprintf(&b, "  %s\n", d)
		}
	} else {
		b.WriteString("zero cross-mode divergences\n")
	}
	return b.String()
}

// Shard is one shard: a seed's three-mode comparison digest. Fields
// are exported and JSON-tagged because the serving layer journals
// shards at checkpoint boundaries and replays them on resume
// (DESIGN.md §12); a shard is a deterministic function of its seed.
type Shard struct {
	Divergences []string     `json:"divergences,omitempty"`
	Entries     uint64       `json:"entries"`
	Verdict     verdict.Kind `json:"verdict,omitempty"`
}

// ShardLine renders seed i's progress line from its digest — the one
// formatting point shared by live shards, checkpoint replays, and the
// fleet coordinator's remote-shard merge (DESIGN.md §13), so all three
// streams are byte-identical by construction. Non-clean verdicts are
// tagged; the common (clean) line is unchanged from the pre-verdict
// format.
func ShardLine(i int, t Shard) string {
	out := "ok"
	if len(t.Divergences) > 0 {
		out = fmt.Sprintf("DIVERGED (%d)", len(t.Divergences))
	}
	if t.Verdict != verdict.Clean {
		out += fmt.Sprintf(" [%s]", t.Verdict)
	}
	return fmt.Sprintf("seed %-6d %s\n", i, out)
}

// classify assigns the shard's typed verdict (DESIGN.md §14). The
// oracle has no fault injector, so any divergence — including a mode
// run error, which diff folds into the divergence list — is an
// EngineBug by definition: the three modes must agree on every
// generated program. A clean shard whose scaled budget exceeded the
// legacy floor in any mode is BudgetScaled.
func classify(p *progen.Program, t *Shard) {
	switch {
	case len(t.Divergences) > 0:
		t.Verdict = verdict.EngineBug
	case budgetScaled(p):
		t.Verdict = verdict.BudgetScaled
	default:
		t.Verdict = verdict.Clean
	}
}

// budgetScaled reports whether any mode's scaled budget for p exceeds
// the legacy flat floor.
func budgetScaled(p *progen.Program) bool {
	for _, mode := range Modes {
		if BudgetFor(p, mode) > Budget {
			return true
		}
	}
	return false
}

// RunShard runs seed i's three-mode comparison on a pooled machine and
// returns its digest — the single shard-execution point shared by the
// local sweep and the serving layer's shard-range jobs, so remote and
// local digests are byte-identical.
func RunShard(pool *core.MachinePool, i int) Shard {
	var t Shard
	p := progen.Generate(int64(i))
	t.Divergences, t.Entries = CheckProgram(pool, p)
	classify(p, &t)
	return t
}

// Campaign runs the oracle over seeds [0, n) sharded across workers via
// the work-stealing engine, results merged strictly by seed index so
// the Result and progress stream are byte-identical at any worker
// count. The mutation self-test runs first on the lowest seed whose
// program raises at least one fault.
func Campaign(n, workers int, w io.Writer) (*Result, error) {
	return CampaignCtx(context.Background(), nil, n, workers, w)
}

// CampaignCtx is Campaign under a context and an optional caller-owned
// machine pool (nil gets a private one; the serving layer passes its
// shared pool so booted machines are recycled across jobs). A
// cancelled or expired context aborts the sweep after at most the seed
// comparisons already in flight and returns the context's error;
// partial results are never reported.
func CampaignCtx(ctx context.Context, pool *core.MachinePool, n, workers int, w io.Writer) (*Result, error) {
	return CampaignResumeCtx(ctx, pool, n, workers, w, nil, 0, nil)
}

// CampaignResumeCtx is CampaignCtx with checkpoint/resume: `done`
// holds the digests of the contiguous seed prefix recovered from a
// durable checkpoint (nil for a fresh run), folded and re-streamed
// without re-execution; `save`, when non-nil, receives the grown
// contiguous prefix every `every` merged seeds and at completion,
// strictly in order. The Result, Summary, and progress stream are
// byte-identical to an undisturbed run regardless of worker count or
// interruption point. The mutation self-test always re-runs — it is a
// precondition for trusting the oracle, not a shard.
func CampaignResumeCtx(ctx context.Context, pool *core.MachinePool, n, workers int, w io.Writer,
	done []Shard, every int, save func(prefix []Shard) error) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("difftest: seed count must be positive, got %d", n)
	}
	if len(done) > n {
		return nil, fmt.Errorf("difftest: checkpoint has %d shards but the campaign has only %d seeds", len(done), n)
	}
	res := &Result{Seeds: n, Episodes: map[string]int{}}

	res.SelfTestSeed = mutationSeed()
	res.SelfTestOK = SelfTest(res.SelfTestSeed)

	if pool == nil {
		pool = &core.MachinePool{}
	}
	if w != nil {
		for i, t := range done {
			io.WriteString(w, ShardLine(i, t))
		}
	}
	progress := parallel.NewOrderedWriterAt(w, len(done))
	tasks, err := parallel.MapResumeCtx(ctx, workers, n, done, every, save, func(i int) Shard {
		t := RunShard(pool, i)
		progress.Emit(i, ShardLine(i, t))
		return t
	})
	if err != nil {
		return nil, fmt.Errorf("difftest aborted: %w", err)
	}

	for i := 0; i < n; i++ {
		for _, k := range progen.Generate(int64(i)).Episodes {
			res.Episodes[k.String()]++
		}
		res.Entries += tasks[i].Entries
		res.Verdicts.Add(tasks[i].Verdict)
		for _, d := range tasks[i].Divergences {
			res.Divergences = append(res.Divergences, fmt.Sprintf("seed %d %s", i, d))
		}
	}
	return res, nil
}

// mutationSeed returns the lowest seed whose program contains at least
// one faulting episode — the mutated handler only misbehaves when the
// policy actually runs.
func mutationSeed() int64 {
	for seed := int64(0); ; seed++ {
		for _, k := range progen.Generate(seed).Episodes {
			if k != progen.KindCompute {
				return seed
			}
		}
	}
}

// SelfTest proves the oracle can detect a semantic divergence: the
// given seed is run with a known-wrong handler policy in ModeFast only
// (logged causes offset by 32) and the oracle must flag it. A passing
// self-test is a precondition for trusting "zero divergences".
func SelfTest(seed int64) bool {
	pool := &core.MachinePool{}
	p := progen.Generate(seed)
	base := runMode(pool, p, core.ModeUltrix, false)
	mutated := runMode(pool, p, core.ModeFast, true)
	return len(diff(&base, &mutated)) > 0
}
