package difftest

import (
	"strings"
	"testing"

	"uexc/internal/core"
	"uexc/internal/progen"
	"uexc/internal/verdict"
)

// bigProgram returns a generated program padded with enough extra
// instructions that every mode's scaled budget exceeds the legacy
// flat floor.
func bigProgram() *progen.Program {
	p := progen.Generate(0)
	p.Extra = strings.Repeat("addiu zero, zero, 0\n", 12_000)
	return p
}

// TestBudgetForFloor: a normal generated program stays under the
// legacy flat budget in every mode — the floor dominates, so existing
// seeds keep the exact bound they always had.
func TestBudgetForFloor(t *testing.T) {
	p := progen.Generate(0)
	for _, mode := range Modes {
		scaled := budgetBase + uint64(p.EmittedInsts(mode))*budgetPerInst(mode)
		if scaled >= Budget {
			t.Fatalf("mode %s: test assumption broken — seed 0 scales to %d, above the %d floor",
				mode, scaled, Budget)
		}
		if got := BudgetFor(p, mode); got != Budget {
			t.Errorf("mode %s: BudgetFor = %d, want floor %d", mode, got, Budget)
		}
	}
}

// TestBudgetForScalesAboveFloor: a program large enough to outgrow the
// floor gets exactly base + insts×multiplier, and the per-mode
// multipliers order the way delivery cost does: the full Unix signal
// round trip outweighs the kernel fast path, which outweighs hardware
// vectoring.
func TestBudgetForScalesAboveFloor(t *testing.T) {
	p := bigProgram()
	for _, mode := range Modes {
		want := budgetBase + uint64(p.EmittedInsts(mode))*budgetPerInst(mode)
		if want <= Budget {
			t.Fatalf("mode %s: test program too small (%d)", mode, want)
		}
		if got := BudgetFor(p, mode); got != want {
			t.Errorf("mode %s: BudgetFor = %d, want %d", mode, got, want)
		}
	}
	u := BudgetFor(p, core.ModeUltrix)
	f := BudgetFor(p, core.ModeFast)
	h := BudgetFor(p, core.ModeHardware)
	if !(u > f && f > h) {
		t.Errorf("multiplier ordering violated: ultrix=%d fast=%d hardware=%d", u, f, h)
	}
}

// TestClassifyVerdicts pins the shard taxonomy: divergences are always
// EngineBug (the oracle has no injector, so nothing is attributable),
// a clean shard above the budget floor is BudgetScaled — visible,
// never silent — and everything else is Clean.
func TestClassifyVerdicts(t *testing.T) {
	small, big := progen.Generate(0), bigProgram()

	s := Shard{Divergences: []string{"gpr[3] differs"}}
	classify(small, &s)
	if s.Verdict != verdict.EngineBug {
		t.Errorf("diverged shard: verdict = %s, want engine-bug", s.Verdict)
	}

	s = Shard{}
	classify(big, &s)
	if s.Verdict != verdict.BudgetScaled {
		t.Errorf("big clean shard: verdict = %s, want budget-scaled", s.Verdict)
	}

	s = Shard{}
	classify(small, &s)
	if s.Verdict != verdict.Clean {
		t.Errorf("small clean shard: verdict = %s, want clean", s.Verdict)
	}
}

// TestBudgetScaledRunsClean: a program whose scaled budget exceeds the
// floor must still run to architectural agreement in every mode — the
// scaled bound is what keeps it from being silently truncated at 3M.
func TestBudgetScaledRunsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 12k-instruction pad in all three modes")
	}
	pool := &core.MachinePool{}
	p := bigProgram()
	divs, _ := CheckProgram(pool, p)
	for _, d := range divs {
		t.Errorf("divergence: %s", d)
	}
}

// TestShardLineTagsVerdicts: non-clean verdicts are visible in the
// stream; the clean line is byte-identical to the pre-verdict format.
func TestShardLineTagsVerdicts(t *testing.T) {
	if got := ShardLine(3, Shard{}); got != "seed 3      ok\n" {
		t.Errorf("clean line = %q", got)
	}
	got := ShardLine(4, Shard{Verdict: verdict.BudgetScaled})
	if !strings.Contains(got, "ok [budget-scaled]") {
		t.Errorf("scaled line = %q", got)
	}
	got = ShardLine(5, Shard{Divergences: []string{"x"}, Verdict: verdict.EngineBug})
	if !strings.Contains(got, "DIVERGED (1) [engine-bug]") {
		t.Errorf("diverged line = %q", got)
	}
}
