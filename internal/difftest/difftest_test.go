package difftest

import (
	"bytes"
	"strings"
	"testing"

	"uexc/internal/core"
	"uexc/internal/progen"
)

// TestZeroDivergences: a band of generated programs must be
// architecturally equivalent across all three delivery modes, and each
// program must actually exercise the handler policy (a silently
// fault-free program would make the equivalence vacuous).
func TestZeroDivergences(t *testing.T) {
	pool := &core.MachinePool{}
	var total uint64
	for seed := int64(0); seed < 40; seed++ {
		divs, entries := CheckSeed(pool, seed)
		for _, d := range divs {
			t.Errorf("seed %d: %s", seed, d)
		}
		total += entries
	}
	if total == 0 {
		t.Fatal("no handler-policy invocations across 40 seeds — generator is not faulting")
	}
}

// TestOracleDetectsMutation: seeding a known-wrong handler policy into
// a single mode must register as a divergence. Without this the
// "zero divergences" verdict proves nothing.
func TestOracleDetectsMutation(t *testing.T) {
	seed := mutationSeed()
	if !SelfTest(seed) {
		t.Fatalf("oracle did not detect the cause-offset mutation at seed %d", seed)
	}
}

// TestMutationDiffNamesLog: the mutation corrupts logged cause codes,
// so the reported divergence must implicate the handler log (not some
// incidental register).
func TestMutationDiffNamesLog(t *testing.T) {
	pool := &core.MachinePool{}
	p := generateFaulting(t)
	base := runMode(pool, p, core.ModeUltrix, false)
	mut := runMode(pool, p, core.ModeFast, true)
	divs := diff(&base, &mut)
	if len(divs) == 0 {
		t.Fatal("no divergences from mutated run")
	}
	found := false
	for _, d := range divs {
		if strings.Contains(d, "log[") {
			found = true
		}
	}
	if !found {
		t.Errorf("mutation divergences never mention the handler log: %v", divs)
	}
}

// TestCampaignDeterministicAcrossWorkers: the full campaign — summary
// and streamed progress — must be byte-identical at every worker
// count. This is the contract the sharded CLI path advertises.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	const seeds = 12
	type out struct {
		summary  string
		progress string
	}
	run := func(workers int) out {
		var buf bytes.Buffer
		res, err := Campaign(seeds, workers, &buf)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out{res.Summary(), buf.String()}
	}
	base := run(1)
	for _, workers := range []int{2, 4} {
		got := run(workers)
		if got.summary != base.summary {
			t.Errorf("workers=%d: summary differs from serial run\n--- serial ---\n%s--- sharded ---\n%s",
				workers, base.summary, got.summary)
		}
		if got.progress != base.progress {
			t.Errorf("workers=%d: progress stream differs from serial run", workers)
		}
	}
	if !strings.Contains(base.summary, "zero cross-mode divergences") {
		t.Errorf("campaign summary reports divergences:\n%s", base.summary)
	}
	if !strings.Contains(base.summary, "oracle self-test: mutation in one mode detected") {
		t.Errorf("campaign summary missing self-test verdict:\n%s", base.summary)
	}
}

// TestCampaignRejectsBadSeedCount: the CLI surface.
func TestCampaignRejectsBadSeedCount(t *testing.T) {
	if _, err := Campaign(0, 1, nil); err == nil {
		t.Error("Campaign(0) should fail")
	}
	if _, err := Campaign(-3, 1, nil); err == nil {
		t.Error("Campaign(-3) should fail")
	}
}

// generateFaulting returns the lowest-seed program with at least one
// faulting episode.
func generateFaulting(t *testing.T) *progen.Program {
	t.Helper()
	return progen.Generate(mutationSeed())
}

// FuzzDiffModes feeds arbitrary seeds to the cross-mode oracle. Any
// seed whose generated program diverges between modes — or fails to
// run cleanly in any mode — is a finding.
func FuzzDiffModes(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 11, 42, 1 << 32, -1} {
		f.Add(seed, false)
	}
	// SMC probes: the same generated programs with a self-modifying-code
	// stanza appended, pinning the interpreter's predecode invalidation.
	f.Add(int64(0), true)
	f.Add(int64(42), true)
	pool := &core.MachinePool{}
	f.Fuzz(func(t *testing.T, seed int64, smc bool) {
		p := progen.Generate(seed)
		if smc {
			p.Extra = progen.SMCStanza
		}
		divs, _ := CheckProgram(pool, p)
		for _, d := range divs {
			t.Errorf("seed %d (smc=%v): %s", seed, smc, d)
		}
	})
}

// TestSMCStanzaObservesPatch proves the self-modifying-code probe has
// teeth: the patched thunk must contribute 7 from the first call and
// 1234 from the second (patched) instruction to the s1 accumulator.
// An interpreter serving stale predecoded instructions would add 7
// twice — in every mode at once, which cross-mode diffing alone cannot
// see.
func TestSMCStanzaObservesPatch(t *testing.T) {
	pool := &core.MachinePool{}
	const seed = 3
	base := progen.Generate(seed)
	smc := progen.Generate(seed)
	smc.Extra = progen.SMCStanza

	for _, mode := range Modes {
		rb := runMode(pool, base, mode, false)
		rs := runMode(pool, smc, mode, false)
		if rb.Err != "" || rs.Err != "" {
			t.Fatalf("[%s] run errors: base=%q smc=%q", mode, rb.Err, rs.Err)
		}
		const s1 = 17
		if got := rs.GPR[s1] - rb.GPR[s1]; got != 7+1234 {
			t.Errorf("[%s] smc accumulator delta = %d, want %d (stale decode?)", mode, got, 7+1234)
		}
	}
}
