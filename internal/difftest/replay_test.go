package difftest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"uexc/internal/core"
	"uexc/internal/cpu"
	"uexc/internal/progen"
)

// machineDigest fingerprints a finished run the way the oracle does:
// outcome, console, kernel stats, and retirement counters.
func machineDigest(m *core.Machine, runErr error) string {
	errText := ""
	if runErr != nil {
		errText = runErr.Error()
	}
	c := m.K.CPU
	return fmt.Sprintf("err=%q console=%q stats=%+v cycles=%d insts=%d writes=%d",
		errText, m.K.Console(), m.K.Stats, c.Cycles, c.Insts, c.MemWrites)
}

// TestTimeTravelExact: TimeTravel lands on exactly the state the
// original run passed through — identical to a fresh machine run
// straight to the same instruction with runMode's setup.
func TestTimeTravelExact(t *testing.T) {
	const seed = 11
	p := progen.Generate(seed)

	for _, mode := range Modes {
		tape, err := RecordProgram(p, mode, 0)
		if err != nil {
			t.Fatalf("%v: record: %v", mode, err)
		}
		target := tape.EndInsts / 2
		m, _, err := TimeTravelSeed(seed, mode, target, 500)
		if err != nil {
			t.Fatalf("%v: time travel: %v", mode, err)
		}
		if got := m.K.CPU.Insts; got != target {
			t.Fatalf("%v: paused at %d, want %d", mode, got, target)
		}

		// Ground truth: runMode's setup, run straight to target.
		ref, err := core.NewMachine()
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.LoadProgram(p.Source(mode, false)); err != nil {
			t.Fatal(err)
		}
		if mode == core.ModeHardware {
			ref.EnableHardwareDelivery(progen.HWVector)
		}
		if target > 0 {
			if _, err := ref.K.CPU.Run(target); err != nil {
				var be *cpu.BudgetError
				if !errors.As(err, &be) {
					t.Fatalf("%v: reference run: %v", mode, err)
				}
			}
		}
		got := fmt.Sprintf("pc=%#x gpr=%v insts=%d cycles=%d console=%q",
			m.K.CPU.PC, m.K.CPU.GPR, m.K.CPU.Insts, m.K.CPU.Cycles, m.K.Console())
		want := fmt.Sprintf("pc=%#x gpr=%v insts=%d cycles=%d console=%q",
			ref.K.CPU.PC, ref.K.CPU.GPR, ref.K.CPU.Insts, ref.K.CPU.Cycles, ref.K.Console())
		if got != want {
			t.Fatalf("%v: time travel diverged\nreplayed: %s\nstraight: %s", mode, got, want)
		}
	}
}

// TestWarmPoolShardIdentity: shard digests computed on a warm pool
// (fork/restore checkouts) are byte-identical to a cold pool
// (boot/reset checkouts) under every engine — the acceptance bar for
// the warm serving pool.
func TestWarmPoolShardIdentity(t *testing.T) {
	for _, e := range []cpu.Engine{cpu.EngineJIT, cpu.EngineFast, cpu.EngineInterp} {
		prev := cpu.DefaultEngine
		cpu.DefaultEngine = e
		func() {
			defer func() { cpu.DefaultEngine = prev }()

			var warm, cold core.MachinePool
			if err := warm.EnableWarmBoot(); err != nil {
				t.Fatal(err)
			}
			for seed := 0; seed < 3; seed++ {
				w, err := json.Marshal(RunShard(&warm, seed))
				if err != nil {
					t.Fatal(err)
				}
				c, err := json.Marshal(RunShard(&cold, seed))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(w, c) {
					t.Errorf("engine %d seed %d: warm shard diverged\nwarm: %s\ncold: %s", e, seed, w, c)
				}
			}
			if st := warm.Stats(); st.Forks+st.Restores == 0 {
				t.Errorf("engine %d: warm pool never forked or restored (stats=%+v)", e, st)
			}
		}()
	}
}

// TestSMCAfterForkIdentity: a program whose first act after checkout
// includes self-modifying code runs byte-identically on a machine
// forked from a post-boot snapshot and on a freshly booted one, under
// every engine — stale predecode or JIT state surviving the restore
// diverges here.
func TestSMCAfterForkIdentity(t *testing.T) {
	p := progen.Generate(11)
	p.Extra = progen.SMCStanza

	for _, e := range []cpu.Engine{cpu.EngineJIT, cpu.EngineFast, cpu.EngineInterp} {
		prev := cpu.DefaultEngine
		cpu.DefaultEngine = e
		func() {
			defer func() { cpu.DefaultEngine = prev }()

			src, err := core.NewMachine()
			if err != nil {
				t.Fatal(err)
			}
			snap := src.Snapshot()

			for _, mode := range Modes {
				forked, err := core.Fork(snap)
				if err != nil {
					t.Fatal(err)
				}
				booted, err := core.NewMachine()
				if err != nil {
					t.Fatal(err)
				}
				digests := [2]string{}
				for i, m := range []*core.Machine{forked, booted} {
					if err := m.LoadProgram(p.Source(mode, false)); err != nil {
						t.Fatal(err)
					}
					if mode == core.ModeHardware {
						m.EnableHardwareDelivery(progen.HWVector)
					}
					digests[i] = machineDigest(m, m.Run(BudgetFor(p, mode)))
				}
				if digests[0] != digests[1] {
					t.Errorf("engine %d %v: SMC run diverged after fork\nforked: %s\nbooted: %s",
						e, mode, digests[0], digests[1])
				}
			}
		}()
	}
}

// TestCampaignWarmPoolIdentity: the full oracle sweep's output stream
// is byte-identical with the warm pool on and off, at one worker and
// at four — the serving layer's golden-stream guarantee.
func TestCampaignWarmPoolIdentity(t *testing.T) {
	const seeds = 6
	var golden []byte
	for _, workers := range []int{1, 4} {
		for _, warmBoot := range []bool{false, true} {
			var pool core.MachinePool
			if warmBoot {
				if err := pool.EnableWarmBoot(); err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if _, err := CampaignCtx(t.Context(), &pool, seeds, workers, &buf); err != nil {
				t.Fatalf("workers=%d warm=%v: %v", workers, warmBoot, err)
			}
			if golden == nil {
				golden = buf.Bytes()
				continue
			}
			if !bytes.Equal(buf.Bytes(), golden) {
				t.Errorf("workers=%d warm=%v: output diverged from golden\ngot:\n%s\nwant:\n%s",
					workers, warmBoot, buf.Bytes(), golden)
			}
		}
	}
}
