package difftest

import "uexc/internal/progen"

// ShrinkEpisodes reduces p to a 1-minimal episode subset that still
// satisfies pred — the reproducer shrinker (DESIGN.md §14). It runs
// delta debugging over the program's episode list: chunks of episodes
// are removed greedily from largest to single, re-testing pred after
// every trial, so the result is minimal in the strong sense that
// removing any one remaining episode breaks the predicate.
//
// pred is typically "this program still diverges across modes"; it
// must be deterministic (it is re-evaluated on subsets, never on the
// original twice). Returns nil if pred does not hold for p itself —
// there is nothing to shrink toward.
//
// Cost: O(n log n) pred evaluations for an n-episode program in the
// best case, O(n²) worst case — each evaluation is a handful of
// machine runs, so shrinking a 12-episode program takes well under a
// second.
func ShrinkEpisodes(p *progen.Program, pred func(*progen.Program) bool) *progen.Program {
	if !pred(p) {
		return nil
	}
	keep := make([]int, len(p.Episodes))
	for i := range keep {
		keep[i] = i
	}

	for chunk := (len(keep) + 1) / 2; chunk >= 1; {
		removedAny := false
		for start := 0; start < len(keep); {
			end := start + chunk
			if end > len(keep) {
				end = len(keep)
			}
			trial := make([]int, 0, len(keep)-(end-start))
			trial = append(trial, keep[:start]...)
			trial = append(trial, keep[end:]...)
			if pred(p.WithEpisodes(trial)) {
				keep = trial // removal preserved the predicate; retry same start
				removedAny = true
			} else {
				start = end
			}
		}
		if chunk == 1 {
			if !removedAny {
				break // a full single-episode pass removed nothing: 1-minimal
			}
			continue
		}
		chunk = (chunk + 1) / 2
	}
	return p.WithEpisodes(keep)
}
