package difftest

import (
	"fmt"

	"uexc/internal/core"
	"uexc/internal/progen"
	"uexc/internal/snapshot"
)

// DefaultReplayEvery is the default recording interval for time-travel
// replay: fine enough that reaching any instruction from the nearest
// snapshot re-executes at most this many instructions, coarse enough
// that a full-budget run tapes a few dozen snapshots.
const DefaultReplayEvery = 100_000

// TimeTravel records a fresh run of program p under mode, then replays
// it to exactly `target` retired instructions and returns the machine
// paused there for inspection — registers, memory, TLB, and statistics
// all in the state the original run passed through. The tape is
// returned too so callers triaging a divergence (ShrinkEpisodes
// predicates, soak triage) can jump to other positions without
// re-recording: bisecting to the first divergent architectural state
// costs O(log budget) ReplayTo calls, each O(every) instructions.
//
// every is the snapshot interval (0 = DefaultReplayEvery). The
// recording run is budgeted exactly like a difftest run (BudgetFor),
// so a taped run ends where the oracle's run would.
func TimeTravel(p *progen.Program, mode core.Mode, target, every uint64) (*core.Machine, *snapshot.Tape, error) {
	tape, err := RecordProgram(p, mode, every)
	if err != nil {
		return nil, nil, err
	}
	m, err := tape.ReplayTo(target)
	if err != nil {
		return nil, tape, err
	}
	return m, tape, nil
}

// TimeTravelSeed is TimeTravel for a generated seed program.
func TimeTravelSeed(seed int64, mode core.Mode, target, every uint64) (*core.Machine, *snapshot.Tape, error) {
	return TimeTravel(progen.Generate(seed), mode, target, every)
}

// RecordProgram runs p under mode on a fresh machine with periodic
// snapshots, mirroring runMode's setup exactly (same program source,
// same hardware-delivery enabling, same budget), and returns the tape.
func RecordProgram(p *progen.Program, mode core.Mode, every uint64) (*snapshot.Tape, error) {
	if every == 0 {
		every = DefaultReplayEvery
	}
	m, err := core.NewMachine()
	if err != nil {
		return nil, err
	}
	if err := m.LoadProgram(p.Source(mode, false)); err != nil {
		return nil, fmt.Errorf("difftest: loading program for replay: %w", err)
	}
	if mode == core.ModeHardware {
		m.EnableHardwareDelivery(progen.HWVector)
	}
	return snapshot.Record(m, BudgetFor(p, mode), every)
}
