
	.equ DT_DATA,   0xc00000
	.equ DT_ARENA,  0xc10000
	.equ DT_RECPAGE,0xc13000
	.equ DT_LOGCAP, 96
	.equ DT_MAXENT, 200

main:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	li    a0, 5                # SIGTRAP (breakpoints)
	la    a1, dt_sighandler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	li    a0, 8                # SIGFPE (overflow)
	la    a1, dt_sighandler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	li    a0, 10               # SIGBUS (unaligned)
	la    a1, dt_sighandler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	li    a0, 11               # SIGSEGV (protection)
	la    a1, dt_sighandler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop

	la    t0, dt_chandler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, 0x123e
	jal   __uexc_enable
	nop

	li    a0, 1
	li    v0, SYS_uexc_eager
	syscall
	nop

	move  at, zero
	move  v0, zero
	move  v1, zero
	move  a0, zero
	move  a1, zero
	move  a2, zero
	move  a3, zero
	move  t0, zero
	move  t1, zero
	move  t2, zero
	move  t3, zero
	move  t4, zero
	move  t5, zero
	move  t6, zero
	move  t7, zero
	move  t8, zero
	move  t9, zero
	move  s0, zero
	move  s1, zero
	move  s2, zero
	move  s3, zero
	move  s4, zero
	move  s5, zero
	move  s6, zero
	move  s7, zero
	move  gp, zero
	move  fp, zero
	mthi  zero
	mtlo  zero

# episode 3: delay-slot
dt_ep3:
	li    a0, DT_ARENA + 8192
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect
	syscall
	nop
	li    t1, 1690228450
	li    t2, DT_ARENA + 10464
	li    t3, 0
	bnez  t3, dt_ep3_taken
	sw    t1, 0(t2)            # Mod in the delay slot: retry re-runs the branch
	addiu s1, s1, 7
	b     dt_ep3_join
	nop
dt_ep3_taken:
	addiu s1, s1, 13
dt_ep3_join:
	lw    t4, 0(t2)
	addu  s1, s1, t4

	la    t0, DT_DATA + 0x740
	sw    s0, 0(t0)
	sw    s1, 4(t0)
	sw    s2, 8(t0)
	sw    s3, 12(t0)
	sw    s4, 16(t0)
	sw    s5, 20(t0)
	sw    s6, 24(t0)
	sw    s7, 28(t0)
	mfhi  t1
	sw    t1, 32(t0)
	mflo  t1
	sw    t1, 36(t0)
	la    t0, DT_DATA + 0x708
	sw    s1, 0(t0)
	li    a0, 1
	la    a1, dt_msg
	li    a2, 3
	li    v0, SYS_write
	syscall
	nop
	# Scrub scratch registers: dt_msg's address (and anything else in
	# the caller-saved set) shifts with the mode stanza's code size, so
	# leaving it in a register would read as a spurious divergence.
	move  at, zero
	move  v1, zero
	move  a0, zero
	move  a1, zero
	move  a2, zero
	move  a3, zero
	move  t0, zero
	move  t1, zero
	move  t2, zero
	move  t3, zero
	move  t4, zero
	move  t5, zero
	move  t6, zero
	move  t7, zero
	move  t8, zero
	move  t9, zero
	lw    ra, 0(sp)
	addiu sp, sp, 16
	li    v0, 0
	jr    ra
	nop

# --- C-level handler for the Fast and Hardware paths ------------------
dt_chandler:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	sw    a0, 4(sp)            # frame VA
	lw    t0, 0x04(a0)         # FrCause
	srl   t0, t0, 2
	andi  t0, t0, 31
	lw    a1, 0x08(a0)         # FrBadVAddr
	move  a0, t0
	jal   dt_policy
	nop
	beqz  v0, dt_ch_done
	nop
	lw    t0, 4(sp)
	lw    t1, 0(t0)            # FrEPC
	addiu t1, t1, 4
	sw    t1, 0(t0)            # skip the faulting instruction
dt_ch_done:
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop

# --- Unix signal handler (Ultrix path and demotion fallback) ----------
dt_sighandler:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	sw    a2, 4(sp)            # sigcontext
	move  a0, a1               # exception code (raw)
	lw    a1, 132(a2)          # TfBadVA
	jal   dt_policy
	nop
	beqz  v0, dt_sig_done
	nop
	lw    t0, 4(sp)
	lw    t1, 124(t0)          # TfEPC
	addiu t1, t1, 4
	sw    t1, 124(t0)
dt_sig_done:
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop

# --- Shared policy: a0 = code, a1 = badva; returns v0 = 1 to skip the
# --- faulting instruction, 0 to retry it after recovery ---------------
dt_policy:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	# BadVAddr is architectural only for address/protection faults;
	# zero it otherwise so stale values never enter the log.
	li    t0, 9                # Bp
	beq   a0, t0, dt_pol_zbv
	nop
	li    t0, 12               # Ov
	bne   a0, t0, dt_pol_bvok
	nop
dt_pol_zbv:
	move  a1, zero
dt_pol_bvok:
	sw    a0, 4(sp)
	sw    a1, 8(sp)
	# Bound total handler entries: a runaway delivery loop exits 77
	# deterministically instead of burning the budget.
	la    t0, DT_DATA + 0x700
	lw    t1, 0(t0)
	addiu t1, t1, 1
	sw    t1, 0(t0)
	sltiu t2, t1, DT_MAXENT
	bnez  t2, dt_pol_log
	nop
	li    a0, 77
	li    v0, SYS_exit
	syscall
	nop
dt_pol_log:
	# Append (code, badva) to the handler-entry log.
	la    t0, DT_DATA + 0x000
	lw    t1, 0(t0)
	sltiu t2, t1, DT_LOGCAP
	beqz  t2, dt_pol_nolog
	nop
	sll   t3, t1, 3
	la    t4, DT_DATA + 0x008
	addu  t4, t4, t3
dt_log_store_cause:
	addiu t5, a0, 32
	sw    t5, 0(t4)
	sw    a1, 4(t4)
	addiu t1, t1, 1
	sw    t1, 0(t0)
dt_pol_nolog:
	# Protection faults (Mod) are recovered by un-protecting and
	# retrying; everything else is recovered by skipping.
	li    t0, 1                # Mod
	lw    t1, 4(sp)
	bne   t1, t0, dt_pol_skip
	nop
	# Recursion probe: the first Mod on the reserved page takes a
	# nested breakpoint while this handler is still in progress.
	lw    t2, 8(sp)
	srl   t3, t2, 12
	li    t4, DT_RECPAGE >> 12
	bne   t3, t4, dt_pol_unprot
	nop
	la    t0, DT_DATA + 0x704
	lw    t1, 0(t0)
	bnez  t1, dt_pol_unprot
	nop
	li    t1, 1
	sw    t1, 0(t0)
	break                      # nested fault inside the handler
dt_pol_unprot:
	# Canonical idempotent recovery: release any subpage protection on
	# the faulting page, then return the page to read-write.
	lw    a0, 8(sp)
	srl   a0, a0, 12
	sll   a0, a0, 12
	li    a1, 4096
	li    a2, 3
	li    v0, SYS_subpage
	syscall
	nop
	lw    a0, 8(sp)
	srl   a0, a0, 12
	sll   a0, a0, 12
	li    a1, 4096
	li    a2, 3
	li    v0, SYS_mprotect
	syscall
	nop
	move  v0, zero             # retry the faulting instruction
	b     dt_pol_ret
	nop
dt_pol_skip:
	li    v0, 1
dt_pol_ret:
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop

dt_msg:
	.ascii "ok\n"
	.align 4

	.org  0xc00000
dt_data:
	.space 4096
	.org  0xc10000
dt_arena:
	.space 16384
