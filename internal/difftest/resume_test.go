package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// TestCampaignResumeByteIdentical: a difftest campaign resumed from
// any JSON-round-tripped checkpoint prefix reproduces the undisturbed
// run's stream and summary byte for byte.
func TestCampaignResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the oracle")
	}
	const seeds = 4
	ctx := context.Background()

	var wantStream bytes.Buffer
	want, err := CampaignCtx(ctx, nil, seeds, 1, &wantStream)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var checkpoints [][]Shard
	var ckStream bytes.Buffer
	ckRes, err := CampaignResumeCtx(ctx, nil, seeds, 2, &ckStream, nil, 1, func(prefix []Shard) error {
		blob, err := json.Marshal(prefix)
		if err != nil {
			return err
		}
		var copied []Shard
		if err := json.Unmarshal(blob, &copied); err != nil {
			return err
		}
		mu.Lock()
		checkpoints = append(checkpoints, copied)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ckStream.String() != wantStream.String() || ckRes.Summary() != want.Summary() {
		t.Fatal("checkpointing changed the output")
	}
	if len(checkpoints) == 0 {
		t.Fatal("no checkpoints captured")
	}

	for _, done := range checkpoints {
		var gotStream bytes.Buffer
		got, err := CampaignResumeCtx(ctx, nil, seeds, 2, &gotStream, done, 2, nil)
		if err != nil {
			t.Fatalf("resume from %d shards: %v", len(done), err)
		}
		if gotStream.String() != wantStream.String() {
			t.Errorf("resume from %d shards: stream differs\n--- resumed ---\n%s--- undisturbed ---\n%s",
				len(done), gotStream.String(), wantStream.String())
		}
		if got.Summary() != want.Summary() {
			t.Errorf("resume from %d shards: summary differs", len(done))
		}
	}

	// Oversized checkpoints are refused.
	if _, err := CampaignResumeCtx(ctx, nil, 2, 1, nil, make([]Shard, 3), 1, nil); err == nil {
		t.Error("oversized checkpoint accepted")
	}
}
