package tlb

import "testing"

func TestTLBSnapshotRoundTrip(t *testing.T) {
	tl := &TLB{}
	misses := 0
	tl.InjectMiss = func(uint32, uint8) bool { misses++; return false }
	tl.WriteIndexed(3, Entry{Hi: MakeHi(16, 2), Lo: MakeLo(7, LoV|LoD)})
	tl.WriteIndexed(5, Entry{Hi: MakeHi(17, 2), Lo: MakeLo(8, LoV)})
	if _, _, ok := tl.Lookup(16<<12|0x24, 2); !ok {
		t.Fatal("seeded entry did not translate")
	}
	genBefore := tl.Gen()
	st := tl.CaptureState()
	hitsAt := tl.Hits

	// Perturb everything the snapshot covers.
	tl.WriteIndexed(3, Entry{})
	tl.WriteRandom(Entry{Hi: MakeHi(99, 1), Lo: MakeLo(9, LoV)})
	tl.Lookup(55<<12, 0) // miss: stats drift

	tl.RestoreState(st)
	if tl.Hits != hitsAt {
		t.Errorf("restored hit count %d, want %d", tl.Hits, hitsAt)
	}
	if _, _, ok := tl.Lookup(16<<12|0x24, 2); !ok {
		t.Fatal("restored entry did not translate")
	}
	if got := tl.Read(5); got.Hi != MakeHi(17, 2) {
		t.Errorf("slot 5 not restored: %+v", got)
	}
	// The generation must ADVANCE across restore so micro-TLB memos
	// keyed to the pre-restore array cannot survive it.
	if tl.Gen() <= genBefore {
		t.Errorf("TLB generation did not advance across restore: %d -> %d", genBefore, tl.Gen())
	}
	// The miss hook belongs to the machine, not the state: preserved.
	misses = 0
	tl.InjectMiss(0, 0)
	if misses != 1 {
		t.Errorf("InjectMiss hook lost across restore (calls=%d)", misses)
	}
}
