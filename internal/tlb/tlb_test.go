package tlb

import (
	"testing"
	"testing/quick"
)

func TestEntryFieldAccessors(t *testing.T) {
	e := Entry{Hi: MakeHi(0x12345, 17), Lo: MakeLo(0x00abc, LoV|LoD|LoU)}
	if e.VPN() != 0x12345 {
		t.Errorf("VPN = %#x", e.VPN())
	}
	if e.ASID() != 17 {
		t.Errorf("ASID = %d", e.ASID())
	}
	if e.PFN() != 0xabc {
		t.Errorf("PFN = %#x", e.PFN())
	}
	if !e.Valid() || !e.Writable() || !e.UserModifiable() || e.Global() {
		t.Errorf("flags wrong: %+v", e)
	}
}

func TestLookupAfterWriteFinds(t *testing.T) {
	f := func(vpnRaw uint32, asid uint8, idx uint8) bool {
		var tl TLB
		vpn := vpnRaw & 0xfffff
		asid &= 63
		e := Entry{Hi: MakeHi(vpn, asid), Lo: MakeLo(vpn+1, LoV)}
		tl.WriteIndexed(int(idx), e)
		got, gi, ok := tl.Lookup(vpn<<12|0x123, asid)
		return ok && gi == int(idx&63) && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestASIDMismatchMissesUnlessGlobal(t *testing.T) {
	f := func(vpnRaw uint32, a1, a2 uint8, global bool) bool {
		vpn := vpnRaw & 0xfffff
		a1 &= 63
		a2 &= 63
		if a1 == a2 {
			a2 = (a1 + 1) & 63
		}
		var tl TLB
		flags := LoV
		if global {
			flags |= LoG
		}
		tl.WriteIndexed(0, Entry{Hi: MakeHi(vpn, a1), Lo: MakeLo(99, flags)})
		_, _, ok := tl.Lookup(vpn<<12, a2)
		return ok == global
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProbeAgreesWithLookup(t *testing.T) {
	f := func(vpnRaw uint32, asid uint8, idx uint8, present bool) bool {
		vpn := vpnRaw & 0xfffff
		asid &= 63
		var tl TLB
		if present {
			tl.WriteIndexed(int(idx), Entry{Hi: MakeHi(vpn, asid), Lo: MakeLo(5, LoV)})
		}
		pi, pok := tl.Probe(MakeHi(vpn, asid))
		_, li, lok := tl.Lookup(vpn<<12, asid)
		return pok == lok && (!pok || pi == li)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRandomNeverVictimizesWired(t *testing.T) {
	var tl TLB
	for i := 0; i < 10000; i++ {
		v := tl.WriteRandom(Entry{Hi: MakeHi(uint32(i)&0xfffff, 0), Lo: LoV})
		if v < Wired || v >= Entries {
			t.Fatalf("random victim %d out of [%d, %d)", v, Wired, Entries)
		}
	}
	// All non-wired slots should eventually be chosen.
	seen := map[int]bool{}
	tl.Reset()
	for i := 0; i < 20000 && len(seen) < Entries-Wired; i++ {
		seen[tl.WriteRandom(Entry{Lo: LoV, Hi: 4096})] = true
	}
	if len(seen) != Entries-Wired {
		t.Errorf("random replacement reached only %d of %d slots", len(seen), Entries-Wired)
	}
}

func TestRandomPreviewMatchesWrite(t *testing.T) {
	var tl TLB
	for i := 0; i < 100; i++ {
		want := tl.Random()
		got := tl.WriteRandom(Entry{Hi: 4096, Lo: LoV})
		if got != want {
			t.Fatalf("Random() preview %d != WriteRandom victim %d", want, got)
		}
	}
}

func TestInvalidateASID(t *testing.T) {
	var tl TLB
	tl.WriteIndexed(0, Entry{Hi: MakeHi(1, 5), Lo: MakeLo(1, LoV)})
	tl.WriteIndexed(1, Entry{Hi: MakeHi(2, 6), Lo: MakeLo(2, LoV)})
	tl.WriteIndexed(2, Entry{Hi: MakeHi(3, 5), Lo: MakeLo(3, LoV|LoG)})
	tl.InvalidateASID(5)
	if tl.Read(0).Valid() {
		t.Error("asid-5 entry still valid")
	}
	if !tl.Read(1).Valid() {
		t.Error("asid-6 entry was invalidated")
	}
	if !tl.Read(2).Valid() {
		t.Error("global entry was invalidated")
	}
}

func TestInvalidatePage(t *testing.T) {
	var tl TLB
	tl.WriteIndexed(0, Entry{Hi: MakeHi(7, 1), Lo: MakeLo(9, LoV)})
	if !tl.InvalidatePage(7, 1) {
		t.Fatal("InvalidatePage missed existing entry")
	}
	if _, _, ok := tl.Lookup(7<<12, 1); ok {
		t.Error("entry survived InvalidatePage")
	}
	if tl.InvalidatePage(7, 1) {
		t.Error("second InvalidatePage reported a drop")
	}
}

func TestUpdateProtection(t *testing.T) {
	var tl TLB
	tl.WriteIndexed(3, Entry{Hi: MakeHi(1, 0), Lo: MakeLo(2, LoV|LoU)})
	tl.UpdateProtection(3, true, true)
	e := tl.Read(3)
	if !e.Writable() || !e.Valid() {
		t.Errorf("after amplify: %+v", e)
	}
	if !e.UserModifiable() || e.PFN() != 2 {
		t.Errorf("UpdateProtection disturbed U/PFN: %+v", e)
	}
	tl.UpdateProtection(3, false, true)
	if tl.Read(3).Writable() {
		t.Error("restrict did not clear D")
	}
	tl.UpdateProtection(3, false, false)
	if tl.Read(3).Valid() {
		t.Error("restrict did not clear V")
	}
}

func TestHitMissCounters(t *testing.T) {
	var tl TLB
	tl.WriteIndexed(0, Entry{Hi: MakeHi(1, 0), Lo: MakeLo(1, LoV)})
	tl.Lookup(1<<12, 0)
	tl.Lookup(2<<12, 0)
	tl.Lookup(1<<12, 0)
	if tl.Hits != 2 || tl.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", tl.Hits, tl.Misses)
	}
}

func TestVPNZeroWithNonzeroLoIsMatchable(t *testing.T) {
	// Page 0 must be mappable: the empty-slot check is (Hi==0 && Lo==0).
	var tl TLB
	tl.WriteIndexed(0, Entry{Hi: MakeHi(0, 0), Lo: MakeLo(4, LoV)})
	e, _, ok := tl.Lookup(0x0ff, 0)
	if !ok || e.PFN() != 4 {
		t.Fatalf("page 0 lookup = %+v ok=%v", e, ok)
	}
}
