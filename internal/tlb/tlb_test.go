package tlb

import (
	"testing"
	"testing/quick"
)

func TestEntryFieldAccessors(t *testing.T) {
	e := Entry{Hi: MakeHi(0x12345, 17), Lo: MakeLo(0x00abc, LoV|LoD|LoU)}
	if e.VPN() != 0x12345 {
		t.Errorf("VPN = %#x", e.VPN())
	}
	if e.ASID() != 17 {
		t.Errorf("ASID = %d", e.ASID())
	}
	if e.PFN() != 0xabc {
		t.Errorf("PFN = %#x", e.PFN())
	}
	if !e.Valid() || !e.Writable() || !e.UserModifiable() || e.Global() {
		t.Errorf("flags wrong: %+v", e)
	}
}

func TestLookupAfterWriteFinds(t *testing.T) {
	f := func(vpnRaw uint32, asid uint8, idx uint8) bool {
		var tl TLB
		vpn := vpnRaw & 0xfffff
		asid &= 63
		e := Entry{Hi: MakeHi(vpn, asid), Lo: MakeLo(vpn+1, LoV)}
		tl.WriteIndexed(int(idx), e)
		got, gi, ok := tl.Lookup(vpn<<12|0x123, asid)
		return ok && gi == int(idx&63) && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestASIDMismatchMissesUnlessGlobal(t *testing.T) {
	f := func(vpnRaw uint32, a1, a2 uint8, global bool) bool {
		vpn := vpnRaw & 0xfffff
		a1 &= 63
		a2 &= 63
		if a1 == a2 {
			a2 = (a1 + 1) & 63
		}
		var tl TLB
		flags := LoV
		if global {
			flags |= LoG
		}
		tl.WriteIndexed(0, Entry{Hi: MakeHi(vpn, a1), Lo: MakeLo(99, flags)})
		_, _, ok := tl.Lookup(vpn<<12, a2)
		return ok == global
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProbeAgreesWithLookup(t *testing.T) {
	f := func(vpnRaw uint32, asid uint8, idx uint8, present bool) bool {
		vpn := vpnRaw & 0xfffff
		asid &= 63
		var tl TLB
		if present {
			tl.WriteIndexed(int(idx), Entry{Hi: MakeHi(vpn, asid), Lo: MakeLo(5, LoV)})
		}
		pi, pok := tl.Probe(MakeHi(vpn, asid))
		_, li, lok := tl.Lookup(vpn<<12, asid)
		return pok == lok && (!pok || pi == li)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRandomNeverVictimizesWired(t *testing.T) {
	var tl TLB
	for i := 0; i < 10000; i++ {
		v := tl.WriteRandom(Entry{Hi: MakeHi(uint32(i)&0xfffff, 0), Lo: LoV})
		if v < Wired || v >= Entries {
			t.Fatalf("random victim %d out of [%d, %d)", v, Wired, Entries)
		}
	}
	// All non-wired slots should eventually be chosen.
	seen := map[int]bool{}
	tl.Reset()
	for i := 0; i < 20000 && len(seen) < Entries-Wired; i++ {
		seen[tl.WriteRandom(Entry{Lo: LoV, Hi: 4096})] = true
	}
	if len(seen) != Entries-Wired {
		t.Errorf("random replacement reached only %d of %d slots", len(seen), Entries-Wired)
	}
}

func TestRandomPreviewMatchesWrite(t *testing.T) {
	var tl TLB
	for i := 0; i < 100; i++ {
		want := tl.Random()
		got := tl.WriteRandom(Entry{Hi: 4096, Lo: LoV})
		if got != want {
			t.Fatalf("Random() preview %d != WriteRandom victim %d", want, got)
		}
	}
}

func TestInvalidateASID(t *testing.T) {
	var tl TLB
	tl.WriteIndexed(0, Entry{Hi: MakeHi(1, 5), Lo: MakeLo(1, LoV)})
	tl.WriteIndexed(1, Entry{Hi: MakeHi(2, 6), Lo: MakeLo(2, LoV)})
	tl.WriteIndexed(2, Entry{Hi: MakeHi(3, 5), Lo: MakeLo(3, LoV|LoG)})
	tl.InvalidateASID(5)
	if tl.Read(0).Valid() {
		t.Error("asid-5 entry still valid")
	}
	if !tl.Read(1).Valid() {
		t.Error("asid-6 entry was invalidated")
	}
	if !tl.Read(2).Valid() {
		t.Error("global entry was invalidated")
	}
}

func TestInvalidatePage(t *testing.T) {
	var tl TLB
	tl.WriteIndexed(0, Entry{Hi: MakeHi(7, 1), Lo: MakeLo(9, LoV)})
	if !tl.InvalidatePage(7, 1) {
		t.Fatal("InvalidatePage missed existing entry")
	}
	if _, _, ok := tl.Lookup(7<<12, 1); ok {
		t.Error("entry survived InvalidatePage")
	}
	if tl.InvalidatePage(7, 1) {
		t.Error("second InvalidatePage reported a drop")
	}
}

func TestUpdateProtection(t *testing.T) {
	var tl TLB
	tl.WriteIndexed(3, Entry{Hi: MakeHi(1, 0), Lo: MakeLo(2, LoV|LoU)})
	tl.UpdateProtection(3, true, true)
	e := tl.Read(3)
	if !e.Writable() || !e.Valid() {
		t.Errorf("after amplify: %+v", e)
	}
	if !e.UserModifiable() || e.PFN() != 2 {
		t.Errorf("UpdateProtection disturbed U/PFN: %+v", e)
	}
	tl.UpdateProtection(3, false, true)
	if tl.Read(3).Writable() {
		t.Error("restrict did not clear D")
	}
	tl.UpdateProtection(3, false, false)
	if tl.Read(3).Valid() {
		t.Error("restrict did not clear V")
	}
}

func TestHitMissCounters(t *testing.T) {
	var tl TLB
	tl.WriteIndexed(0, Entry{Hi: MakeHi(1, 0), Lo: MakeLo(1, LoV)})
	tl.Lookup(1<<12, 0)
	tl.Lookup(2<<12, 0)
	tl.Lookup(1<<12, 0)
	if tl.Hits != 2 || tl.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", tl.Hits, tl.Misses)
	}
}

func TestVPNZeroWithNonzeroLoIsMatchable(t *testing.T) {
	// Page 0 must be mappable: the empty-slot check is (Hi==0 && Lo==0).
	var tl TLB
	tl.WriteIndexed(0, Entry{Hi: MakeHi(0, 0), Lo: MakeLo(4, LoV)})
	e, _, ok := tl.Lookup(0x0ff, 0)
	if !ok || e.PFN() != 4 {
		t.Fatalf("page 0 lookup = %+v ok=%v", e, ok)
	}
}

func TestVPNZeroGlobalEntryHits(t *testing.T) {
	// Regression for the VPN-indexed lookup: an entry whose Hi word is
	// entirely zero (VPN 0, ASID 0) with all its state in Lo flags is a
	// live entry, and the G bit must make it hit under any ASID. A
	// lookup path that conflated "Hi == 0" with "empty slot" would drop
	// it from the index.
	var tl TLB
	tl.WriteIndexed(2, Entry{Hi: 0, Lo: MakeLo(7, LoV|LoG)})
	for _, asid := range []uint8{0, 1, 63} {
		e, idx, ok := tl.Lookup(0x0a0, asid)
		if !ok || idx != 2 || e.PFN() != 7 {
			t.Fatalf("asid %d: lookup = (%+v, %d, %v), want hit at slot 2 pfn 7", asid, e, idx, ok)
		}
	}
	if tl.Hits != 3 || tl.Misses != 0 {
		t.Errorf("hits=%d misses=%d, want 3/0", tl.Hits, tl.Misses)
	}
}

func TestLookupMatchOrderIsLinearScan(t *testing.T) {
	// Two live entries for the same VPN: the indexed lookup must serve
	// the lowest slot, exactly like the architectural linear scan, and
	// fall to the next slot when the first is dropped.
	var tl TLB
	tl.WriteIndexed(5, Entry{Hi: MakeHi(3, 0), Lo: MakeLo(50, LoV)})
	tl.WriteIndexed(9, Entry{Hi: MakeHi(3, 0), Lo: MakeLo(90, LoV)})
	if e, idx, ok := tl.Lookup(3<<12, 0); !ok || idx != 5 || e.PFN() != 50 {
		t.Fatalf("lookup = (%+v, %d, %v), want slot 5", e, idx, ok)
	}
	tl.WriteIndexed(5, Entry{})
	if e, idx, ok := tl.Lookup(3<<12, 0); !ok || idx != 9 || e.PFN() != 90 {
		t.Fatalf("after drop: lookup = (%+v, %d, %v), want slot 9", e, idx, ok)
	}
}

func TestLookupMemoStalenessAcrossMutators(t *testing.T) {
	// The direct-mapped memo in front of the VPN index must go stale on
	// every mutator, including ones that touch other VPNs (the memo is
	// generation-gated, not entry-gated).
	var tl TLB
	tl.WriteIndexed(0, Entry{Hi: MakeHi(4, 0), Lo: MakeLo(40, LoV)})
	mutate := []struct {
		name string
		do   func()
	}{
		{"WriteIndexed", func() { tl.WriteIndexed(1, Entry{Hi: MakeHi(9, 0), Lo: MakeLo(9, LoV)}) }},
		{"WriteRandom", func() { tl.WriteRandom(Entry{Hi: MakeHi(10, 0), Lo: MakeLo(10, LoV)}) }},
		{"FlipBits", func() { tl.FlipBits(0, 0, LoD) }},
		{"UpdateProtection", func() { tl.UpdateProtection(0, true, true) }},
		{"InvalidateASID", func() {
			tl.WriteIndexed(2, Entry{Hi: MakeHi(20, 5), Lo: MakeLo(20, LoV)})
			tl.InvalidateASID(5)
		}},
		{"InvalidatePage", func() { tl.InvalidatePage(9, 0) }},
	}
	for _, m := range mutate {
		if _, _, ok := tl.Lookup(4<<12, 0); !ok {
			t.Fatalf("%s: warm-up lookup missed", m.name)
		}
		gen := tl.Gen()
		m.do()
		if tl.Gen() == gen {
			t.Fatalf("%s did not advance Gen", m.name)
		}
		if _, _, ok := tl.Lookup(4<<12, 0); !ok {
			t.Fatalf("%s: vpn 4 lookup missed after unrelated mutation", m.name)
		}
	}
	// Now mutate the entry the memo is holding and check the result moves.
	tl.WriteIndexed(0, Entry{Hi: MakeHi(4, 0), Lo: MakeLo(44, LoV)})
	if e, _, ok := tl.Lookup(4<<12, 0); !ok || e.PFN() != 44 {
		t.Fatalf("memo served stale entry: %+v ok=%v", e, ok)
	}
	tl.InvalidatePage(4, 0)
	if _, _, ok := tl.Lookup(4<<12, 0); ok {
		t.Fatal("memo served dropped entry")
	}
}

func TestResetPreservesGenMonotonicity(t *testing.T) {
	var tl TLB
	tl.WriteIndexed(0, Entry{Hi: MakeHi(1, 0), Lo: MakeLo(1, LoV)})
	g := tl.Gen()
	tl.Reset()
	if tl.Gen() <= g {
		t.Fatalf("Reset gen %d not past %d: recycled TLBs could alias stale caches", tl.Gen(), g)
	}
	if _, _, ok := tl.Lookup(1<<12, 0); ok {
		t.Fatal("lookup hit after Reset")
	}
}
