// Package tlb implements the R3000-style translation lookaside buffer of
// the simulated machine: 64 fully-associative entries tagged with an
// address-space identifier (ASID), written either by index or by a
// pseudo-random replacement register that never selects the first eight
// ("wired") entries.
//
// Each entry carries the paper's proposed extension: a U bit that, when
// set by the kernel, permits user-mode code to amplify or restrict the
// read/write protection bits of that entry (never the translation). See
// Section 2.2 of Thekkath & Levy.
//
// Lookup and Probe are O(1): a VPN-keyed index maps each live entry's
// virtual page number to a bitmask of the slots holding it, so the
// common hit touches one map bucket instead of scanning all 64 slots.
// The index is pure acceleration — match order and statistics are
// identical to the architectural linear scan (ascending slot order).
// Every mutation also bumps a generation counter (Gen) that the CPU's
// micro-TLBs use for precise invalidation.
package tlb

import (
	"math/bits"

	"uexc/internal/arch"
)

// Entries is the TLB size; Wired entries [0, Wired) are exempt from
// random replacement, as on the R3000.
const (
	Entries = 64
	Wired   = 8
)

// EntryLo bit assignments (R3000, plus the U extension in a
// previously-unused bit).
const (
	LoN uint32 = 1 << 11 // non-cacheable (modeled but ignored)
	LoD uint32 = 1 << 10 // dirty: set means writable
	LoV uint32 = 1 << 9  // valid
	LoG uint32 = 1 << 8  // global: ignore ASID on match
	LoU uint32 = 1 << 7  // user-protection-modifiable (proposed hardware)

	LoPFNMask uint32 = 0xfffff000
)

// EntryHi bit assignments.
const (
	HiVPNMask  uint32 = 0xfffff000
	HiASIDMask uint32 = 0x00000fc0
	HiASIDShft        = 6
)

// Entry is one TLB slot.
type Entry struct {
	Hi uint32
	Lo uint32
}

// VPN returns the entry's virtual page number (va >> 12).
func (e Entry) VPN() uint32 { return e.Hi >> arch.PageShift }

// ASID returns the entry's address-space identifier.
func (e Entry) ASID() uint8 { return uint8(e.Hi & HiASIDMask >> HiASIDShft) }

// PFN returns the entry's physical frame number.
func (e Entry) PFN() uint32 { return e.Lo >> arch.PageShift }

// Valid reports the V bit.
func (e Entry) Valid() bool { return e.Lo&LoV != 0 }

// Writable reports the D bit.
func (e Entry) Writable() bool { return e.Lo&LoD != 0 }

// Global reports the G bit.
func (e Entry) Global() bool { return e.Lo&LoG != 0 }

// UserModifiable reports the proposed U bit.
func (e Entry) UserModifiable() bool { return e.Lo&LoU != 0 }

// empty reports whether the slot is unoccupied. An all-zero pair is
// the only empty encoding: an entry legitimately mapping VPN 0 / ASID 0
// is live as long as any Lo flag (V, G, ...) is set.
func (e Entry) empty() bool { return e.Hi == 0 && e.Lo == 0 }

// MakeHi assembles an EntryHi from a virtual page number and ASID.
func MakeHi(vpn uint32, asid uint8) uint32 {
	return vpn<<arch.PageShift | uint32(asid)<<HiASIDShft&HiASIDMask
}

// MakeLo assembles an EntryLo from a physical frame number and flags.
func MakeLo(pfn uint32, flags uint32) uint32 {
	return pfn<<arch.PageShift | flags&^LoPFNMask
}

// TLB is the translation buffer. The zero value is an empty TLB with all
// entries invalid.
type TLB struct {
	slots [Entries]Entry
	// index maps the VPN of every live (non-empty) entry to a bitmask
	// of the slots holding it. Built lazily so the zero value stays
	// usable; nil means "not built yet".
	index map[uint32]uint64
	// gen counts mutations (writes, flips, protection updates,
	// invalidations, resets). The CPU's micro-TLBs compare it to decide
	// whether their cached translations are still current; it is never
	// reset so a recycled TLB can't alias a stale cache.
	gen uint64
	// rand drives WriteRandom victim selection deterministically; real
	// hardware decrements Random once per cycle, which is
	// indistinguishable from any other well-spread sequence for
	// replacement purposes.
	rand uint32

	// memo is a direct-mapped cache in front of index for Lookup's hot
	// path: memoVPN holds vpn+1 (0 = empty) and memoMask the slot
	// bitmask for that VPN (possibly zero: a cached miss). memoGen is
	// the generation the memo was filled under; any mutation makes the
	// whole memo stale at the next Lookup. Pure acceleration — match
	// results and Hits/Misses are unchanged.
	memoGen  uint64
	memoVPN  [64]uint32
	memoMask [64]uint64

	// Hits and Misses count Lookup outcomes for statistics.
	Hits   uint64
	Misses uint64

	// InjectMiss, when non-nil, is consulted on every Lookup; returning
	// true forces a refill miss even if a matching entry exists,
	// modeling a glitched CAM compare. Hook point for
	// internal/faultinject. While installed, the CPU bypasses its
	// micro-TLBs so every lookup reaches this hook.
	InjectMiss func(va uint32, asid uint8) bool
}

// Gen returns the mutation generation. Any change to TLB contents —
// WriteIndexed, WriteRandom, FlipBits, UpdateProtection,
// InvalidateASID, InvalidatePage, Reset — advances it; caches keyed on
// a past generation must be discarded when it moves. The CPU's
// micro-TLBs flush on it, and since translated basic blocks are only
// reachable through a micro-ITLB hit, it transitively unmaps every
// block a dropped translation could have entered.
func (t *TLB) Gen() uint64 { return t.gen }

// Reset invalidates every entry and zeroes statistics, keeping any
// installed InjectMiss hook. The mutation generation is preserved (and
// advanced) so caches built against the old contents still invalidate.
func (t *TLB) Reset() {
	hook := t.InjectMiss
	gen := t.gen
	*t = TLB{}
	t.InjectMiss = hook
	t.gen = gen + 1
}

// buildIndex (re)derives the VPN index from the slot array.
func (t *TLB) buildIndex() {
	t.index = make(map[uint32]uint64, Entries)
	for i := range t.slots {
		t.indexAdd(i, t.slots[i])
	}
}

// indexAdd registers slot i holding entry e (no-op for empty entries or
// an unbuilt index).
func (t *TLB) indexAdd(i int, e Entry) {
	if t.index == nil || e.empty() {
		return
	}
	t.index[e.VPN()] |= 1 << uint(i)
}

// indexRemove unregisters slot i's previous occupant.
func (t *TLB) indexRemove(i int, e Entry) {
	if t.index == nil || e.empty() {
		return
	}
	vpn := e.VPN()
	if m := t.index[vpn] &^ (1 << uint(i)); m == 0 {
		delete(t.index, vpn)
	} else {
		t.index[vpn] = m
	}
}

// setSlot replaces slot i, maintaining the index and the generation.
func (t *TLB) setSlot(i int, e Entry) {
	t.indexRemove(i, t.slots[i])
	t.slots[i] = e
	t.indexAdd(i, e)
	t.gen++
}

// Lookup finds the entry mapping va for the given ASID. It returns the
// matching entry and its index. A miss (no VPN/ASID match) returns
// ok == false; validity and writability of a hit are for the caller
// (the CPU) to check and convert into TLBL/TLBS/Mod exceptions.
//
// Candidates are taken from the VPN index and visited in ascending slot
// order, which is exactly the architectural linear scan's match order.
func (t *TLB) Lookup(va uint32, asid uint8) (Entry, int, bool) {
	if t.InjectMiss != nil && t.InjectMiss(va, asid) {
		t.Misses++
		return Entry{}, -1, false
	}
	if t.index == nil {
		t.buildIndex()
	}
	vpn := va >> arch.PageShift
	if t.memoGen != t.gen {
		t.memoVPN = [64]uint32{}
		t.memoGen = t.gen
	}
	mi := vpn & 63
	var mask uint64
	if t.memoVPN[mi] == vpn+1 {
		mask = t.memoMask[mi]
	} else {
		mask = t.index[vpn]
		t.memoVPN[mi], t.memoMask[mi] = vpn+1, mask
	}
	for ; mask != 0; mask &= mask - 1 {
		i := bits.TrailingZeros64(mask)
		e := t.slots[i]
		if e.Global() || e.ASID() == asid {
			t.Hits++
			return e, i, true
		}
	}
	t.Misses++
	return Entry{}, -1, false
}

// Probe returns the index of the entry whose Hi matches the given
// EntryHi value (VPN and ASID exactly, as TLBP does), or ok == false.
func (t *TLB) Probe(hi uint32) (int, bool) {
	if t.index == nil {
		t.buildIndex()
	}
	vpn := hi >> arch.PageShift
	asid := uint8(hi & HiASIDMask >> HiASIDShft)
	for mask := t.index[vpn]; mask != 0; mask &= mask - 1 {
		i := bits.TrailingZeros64(mask)
		e := t.slots[i]
		if e.Global() || e.ASID() == asid {
			return i, true
		}
	}
	return -1, false
}

// Read returns the entry at index i (masked into range, as hardware
// does).
func (t *TLB) Read(i int) Entry {
	return t.slots[i&(Entries-1)]
}

// WriteIndexed replaces the entry at index i.
func (t *TLB) WriteIndexed(i int, e Entry) {
	t.setSlot(i&(Entries-1), e)
}

// FlipBits XORs the given masks into the entry at index i and returns
// the entry before and after. It models single-event upsets in the CAM
// (Hi side) or data array (Lo side); internal/faultinject is the only
// intended caller.
func (t *TLB) FlipBits(i int, hiMask, loMask uint32) (before, after Entry) {
	i &= Entries - 1
	before = t.slots[i]
	after = Entry{Hi: before.Hi ^ hiMask, Lo: before.Lo ^ loMask}
	t.setSlot(i, after)
	return before, after
}

// WriteRandom replaces a pseudo-randomly chosen non-wired entry and
// returns the victim index.
func (t *TLB) WriteRandom(e Entry) int {
	// xorshift step for spread; victims always land in [Wired, Entries).
	t.rand = t.rand*1664525 + 1013904223
	i := Wired + int(t.rand>>16%(Entries-Wired))
	t.setSlot(i, e)
	return i
}

// Random returns the index the next WriteRandom would use without
// advancing state; exposed for the CP0 Random register.
func (t *TLB) Random() int {
	r := t.rand*1664525 + 1013904223
	return Wired + int(r>>16%(Entries-Wired))
}

// InvalidateASID clears the V bit of every non-global entry with the
// given ASID; used at address-space teardown.
func (t *TLB) InvalidateASID(asid uint8) {
	for i := range t.slots {
		e := t.slots[i]
		if !e.empty() && !e.Global() && e.ASID() == asid {
			e.Lo &^= LoV
			t.setSlot(i, e)
		}
	}
}

// InvalidatePage clears any entry mapping vpn for asid (or globally).
// Returns true if an entry was dropped.
func (t *TLB) InvalidatePage(vpn uint32, asid uint8) bool {
	dropped := false
	for i := range t.slots {
		e := t.slots[i]
		if !e.empty() && e.VPN() == vpn && (e.Global() || e.ASID() == asid) {
			t.setSlot(i, Entry{})
			dropped = true
		}
	}
	return dropped
}

// UpdateProtection rewrites the D (writable) and V (valid) bits of the
// entry at index i. It is the primitive behind both kernel protection
// changes and the user-mode UTLBMOD instruction; UTLBMOD callers must
// check UserModifiable first.
func (t *TLB) UpdateProtection(i int, writable, valid bool) {
	e := t.slots[i&(Entries-1)]
	e.Lo &^= LoD | LoV
	if writable {
		e.Lo |= LoD
	}
	if valid {
		e.Lo |= LoV
	}
	t.setSlot(i&(Entries-1), e)
}
