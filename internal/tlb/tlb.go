// Package tlb implements the R3000-style translation lookaside buffer of
// the simulated machine: 64 fully-associative entries tagged with an
// address-space identifier (ASID), written either by index or by a
// pseudo-random replacement register that never selects the first eight
// ("wired") entries.
//
// Each entry carries the paper's proposed extension: a U bit that, when
// set by the kernel, permits user-mode code to amplify or restrict the
// read/write protection bits of that entry (never the translation). See
// Section 2.2 of Thekkath & Levy.
package tlb

import "uexc/internal/arch"

// Entries is the TLB size; Wired entries [0, Wired) are exempt from
// random replacement, as on the R3000.
const (
	Entries = 64
	Wired   = 8
)

// EntryLo bit assignments (R3000, plus the U extension in a
// previously-unused bit).
const (
	LoN uint32 = 1 << 11 // non-cacheable (modeled but ignored)
	LoD uint32 = 1 << 10 // dirty: set means writable
	LoV uint32 = 1 << 9  // valid
	LoG uint32 = 1 << 8  // global: ignore ASID on match
	LoU uint32 = 1 << 7  // user-protection-modifiable (proposed hardware)

	LoPFNMask uint32 = 0xfffff000
)

// EntryHi bit assignments.
const (
	HiVPNMask  uint32 = 0xfffff000
	HiASIDMask uint32 = 0x00000fc0
	HiASIDShft        = 6
)

// Entry is one TLB slot.
type Entry struct {
	Hi uint32
	Lo uint32
}

// VPN returns the entry's virtual page number (va >> 12).
func (e Entry) VPN() uint32 { return e.Hi >> arch.PageShift }

// ASID returns the entry's address-space identifier.
func (e Entry) ASID() uint8 { return uint8(e.Hi & HiASIDMask >> HiASIDShft) }

// PFN returns the entry's physical frame number.
func (e Entry) PFN() uint32 { return e.Lo >> arch.PageShift }

// Valid reports the V bit.
func (e Entry) Valid() bool { return e.Lo&LoV != 0 }

// Writable reports the D bit.
func (e Entry) Writable() bool { return e.Lo&LoD != 0 }

// Global reports the G bit.
func (e Entry) Global() bool { return e.Lo&LoG != 0 }

// UserModifiable reports the proposed U bit.
func (e Entry) UserModifiable() bool { return e.Lo&LoU != 0 }

// MakeHi assembles an EntryHi from a virtual page number and ASID.
func MakeHi(vpn uint32, asid uint8) uint32 {
	return vpn<<arch.PageShift | uint32(asid)<<HiASIDShft&HiASIDMask
}

// MakeLo assembles an EntryLo from a physical frame number and flags.
func MakeLo(pfn uint32, flags uint32) uint32 {
	return pfn<<arch.PageShift | flags&^LoPFNMask
}

// TLB is the translation buffer. The zero value is an empty TLB with all
// entries invalid.
type TLB struct {
	slots [Entries]Entry
	// rand drives WriteRandom victim selection deterministically; real
	// hardware decrements Random once per cycle, which is
	// indistinguishable from any other well-spread sequence for
	// replacement purposes.
	rand uint32

	// Hits and Misses count Lookup outcomes for statistics.
	Hits   uint64
	Misses uint64

	// InjectMiss, when non-nil, is consulted on every Lookup; returning
	// true forces a refill miss even if a matching entry exists,
	// modeling a glitched CAM compare. Hook point for
	// internal/faultinject.
	InjectMiss func(va uint32, asid uint8) bool
}

// Reset invalidates every entry and zeroes statistics, keeping any
// installed InjectMiss hook.
func (t *TLB) Reset() {
	hook := t.InjectMiss
	*t = TLB{}
	t.InjectMiss = hook
}

// Lookup finds the entry mapping va for the given ASID. It returns the
// matching entry and its index. A miss (no VPN/ASID match) returns
// ok == false; validity and writability of a hit are for the caller
// (the CPU) to check and convert into TLBL/TLBS/Mod exceptions.
func (t *TLB) Lookup(va uint32, asid uint8) (Entry, int, bool) {
	if t.InjectMiss != nil && t.InjectMiss(va, asid) {
		t.Misses++
		return Entry{}, -1, false
	}
	vpn := va >> arch.PageShift
	for i := range t.slots {
		e := t.slots[i]
		if e.Hi == 0 && e.Lo == 0 {
			continue
		}
		if e.VPN() == vpn && (e.Global() || e.ASID() == asid) {
			t.Hits++
			return e, i, true
		}
	}
	t.Misses++
	return Entry{}, -1, false
}

// Probe returns the index of the entry whose Hi matches the given
// EntryHi value (VPN and ASID exactly, as TLBP does), or ok == false.
func (t *TLB) Probe(hi uint32) (int, bool) {
	vpn := hi >> arch.PageShift
	asid := uint8(hi & HiASIDMask >> HiASIDShft)
	for i := range t.slots {
		e := t.slots[i]
		if e.Hi == 0 && e.Lo == 0 {
			continue
		}
		if e.VPN() == vpn && (e.Global() || e.ASID() == asid) {
			return i, true
		}
	}
	return -1, false
}

// Read returns the entry at index i (masked into range, as hardware
// does).
func (t *TLB) Read(i int) Entry {
	return t.slots[i&(Entries-1)]
}

// WriteIndexed replaces the entry at index i.
func (t *TLB) WriteIndexed(i int, e Entry) {
	t.slots[i&(Entries-1)] = e
}

// FlipBits XORs the given masks into the entry at index i and returns
// the entry before and after. It models single-event upsets in the CAM
// (Hi side) or data array (Lo side); internal/faultinject is the only
// intended caller.
func (t *TLB) FlipBits(i int, hiMask, loMask uint32) (before, after Entry) {
	e := &t.slots[i&(Entries-1)]
	before = *e
	e.Hi ^= hiMask
	e.Lo ^= loMask
	return before, *e
}

// WriteRandom replaces a pseudo-randomly chosen non-wired entry and
// returns the victim index.
func (t *TLB) WriteRandom(e Entry) int {
	// xorshift step for spread; victims always land in [Wired, Entries).
	t.rand = t.rand*1664525 + 1013904223
	i := Wired + int(t.rand>>16%(Entries-Wired))
	t.slots[i] = e
	return i
}

// Random returns the index the next WriteRandom would use without
// advancing state; exposed for the CP0 Random register.
func (t *TLB) Random() int {
	r := t.rand*1664525 + 1013904223
	return Wired + int(r>>16%(Entries-Wired))
}

// InvalidateASID clears the V bit of every non-global entry with the
// given ASID; used at address-space teardown.
func (t *TLB) InvalidateASID(asid uint8) {
	for i := range t.slots {
		e := &t.slots[i]
		if (e.Hi != 0 || e.Lo != 0) && !e.Global() && e.ASID() == asid {
			e.Lo &^= LoV
		}
	}
}

// InvalidatePage clears any entry mapping vpn for asid (or globally).
// Returns true if an entry was dropped.
func (t *TLB) InvalidatePage(vpn uint32, asid uint8) bool {
	dropped := false
	for i := range t.slots {
		e := &t.slots[i]
		if (e.Hi != 0 || e.Lo != 0) && e.VPN() == vpn && (e.Global() || e.ASID() == asid) {
			*e = Entry{}
			dropped = true
		}
	}
	return dropped
}

// UpdateProtection rewrites the D (writable) and V (valid) bits of the
// entry at index i. It is the primitive behind both kernel protection
// changes and the user-mode UTLBMOD instruction; UTLBMOD callers must
// check UserModifiable first.
func (t *TLB) UpdateProtection(i int, writable, valid bool) {
	e := &t.slots[i&(Entries-1)]
	e.Lo &^= LoD | LoV
	if writable {
		e.Lo |= LoD
	}
	if valid {
		e.Lo |= LoV
	}
}
