package tlb

// State is a point-in-time copy of a TLB's architectural contents plus
// its statistics, built by CaptureState. It is immutable after capture
// and safe to share across machines.
type State struct {
	slots  [Entries]Entry
	rand   uint32
	hits   uint64
	misses uint64
}

// CaptureState snapshots the TLB: every slot, the replacement register,
// and the hit/miss counters. The mutation generation, the VPN index,
// the memo, and the InjectMiss hook are derived or host-side state and
// are not captured.
func (t *TLB) CaptureState() *State {
	return &State{slots: t.slots, rand: t.rand, hits: t.Hits, misses: t.Misses}
}

// RestoreState rewrites the TLB to match the snapshot, following the
// same contract as Reset: the installed InjectMiss hook is kept, and
// the mutation generation is advanced (never rewound) so micro-TLBs and
// translated blocks built against the pre-restore contents invalidate.
// The VPN index and memo rebuild lazily on the next Lookup.
func (t *TLB) RestoreState(st *State) {
	hook := t.InjectMiss
	gen := t.gen
	*t = TLB{}
	t.InjectMiss = hook
	t.gen = gen + 1
	t.slots = st.slots
	t.rand = st.rand
	t.Hits, t.Misses = st.hits, st.misses
}
