package mem

import (
	"bytes"
	"testing"
)

func TestMemSnapshotRoundTrip(t *testing.T) {
	m := New(1 << 16) // 16 pages
	if err := m.StoreWord(0x1000, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreWord(0x2ffc, 0x12345678); err != nil {
		t.Fatal(err)
	}
	st := m.CaptureState()
	if got := st.Pages(); got != 2 {
		t.Fatalf("snapshot pages = %d, want 2 (all-zero pages must not be captured)", got)
	}

	// Dirty one snapshotted page, one fresh page, and leave one alone.
	if err := m.StoreWord(0x1000, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreWord(0x5000, 0x55aa55aa); err != nil {
		t.Fatal(err)
	}
	genBefore := m.PageRef(0x1000).Gen()

	dirty, err := m.RestoreState(st)
	if err != nil {
		t.Fatal(err)
	}
	// Pages 1 and 5 diverged; page 2 was untouched since capture.
	if dirty != 2 {
		t.Errorf("restore copied %d pages, want 2", dirty)
	}
	if w, _ := m.LoadWord(0x1000); w != 0xdeadbeef {
		t.Errorf("restored word %#x, want 0xdeadbeef", w)
	}
	if w, _ := m.LoadWord(0x2ffc); w != 0x12345678 {
		t.Errorf("clean page perturbed: %#x", w)
	}
	if w, _ := m.LoadWord(0x5000); w != 0 {
		t.Errorf("page outside the snapshot not cleared: %#x", w)
	}
	// The CoW rule: a restored page's generation ADVANCES (never
	// rewinds), so stale predecode/JIT state keyed to the old content
	// cannot alias the restored bytes.
	if genAfter := m.PageRef(0x1000).Gen(); genAfter <= genBefore {
		t.Errorf("restored page generation went %d -> %d, must advance", genBefore, genAfter)
	}

	// A second restore with no intervening stores is a no-op.
	dirty, err = m.RestoreState(st)
	if err != nil {
		t.Fatal(err)
	}
	if dirty != 0 {
		t.Errorf("idle restore copied %d pages, want 0", dirty)
	}
}

func TestMemSnapshotRebinding(t *testing.T) {
	m := New(1 << 16)
	if err := m.StoreWord(0x3000, 1); err != nil {
		t.Fatal(err)
	}
	a := m.CaptureState()
	if err := m.StoreWord(0x3000, 2); err != nil {
		t.Fatal(err)
	}
	b := m.CaptureState()

	// Restoring an older snapshot after being bound to a newer one must
	// rebuild from content, not trust the stale binding.
	if _, err := m.RestoreState(a); err != nil {
		t.Fatal(err)
	}
	if w, _ := m.LoadWord(0x3000); w != 1 {
		t.Fatalf("restore to a: word %d, want 1", w)
	}
	if _, err := m.RestoreState(b); err != nil {
		t.Fatal(err)
	}
	if w, _ := m.LoadWord(0x3000); w != 2 {
		t.Fatalf("restore to b: word %d, want 2", w)
	}

	other := New(1 << 12)
	if _, err := other.RestoreState(a); err == nil {
		t.Fatal("restore across memory sizes must fail")
	}
}

func TestMemSnapshotImmutable(t *testing.T) {
	m := New(1 << 16)
	if err := m.Write(0x1000, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	st := m.CaptureState()
	if err := m.Write(0x1000, []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0x1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("snapshot content mutated: %v", got)
	}
	if st.Bytes() == 0 {
		t.Error("snapshot reports zero captured bytes")
	}
}
