// Package mem implements the simulated machine's physical memory: a
// sparse, page-granular byte store with little-endian word access, as on
// the DECstation's R3000 configuration.
//
// Physical memory has no protection and no alignment rules of its own;
// translation, protection, and alignment checking happen in the CPU and
// TLB. Accesses beyond the configured physical size are bus errors,
// reported as error values for the CPU to turn into IBE/DBE exceptions.
//
// Two fast-path facilities support the interpreter (see DESIGN.md §10):
//
//   - Page handles: PageRef exposes the backing page of a physical
//     address as a *Page whose accessors read and write bytes directly,
//     so a caller that caches the handle (the CPU's micro-TLBs) skips
//     the per-access map lookup. Handles never go stale — pages are
//     allocated once and reused forever, even across Reset.
//   - Store generations: every mutation of a page advances its Gen
//     counter, giving the CPU's predecoded instruction cache a precise,
//     O(1) invalidation signal for self-modifying code, program loads,
//     and injected memory corruption alike.
package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// pageShift matches the hardware page size (4 KB) for allocation
// granularity only; physical memory itself is flat.
const pageShift = 12
const pageBytes = 1 << pageShift

// ErrBusError is returned for accesses outside physical memory.
var ErrBusError = errors.New("mem: bus error")

// Page is the backing store of one physical page. All mutations go
// through its Set* methods (or the Memory Store* wrappers), which keep
// the generation counter honest; readers holding a *Page may cache
// derived state (decoded instructions) keyed by Gen.
type Page struct {
	data []byte
	gen  uint64
}

// Gen returns the page's store generation: it advances on every write
// into the page, including Memory.Reset's scrub. It is the single
// invalidation signal for all derived code state — the CPU's predecode
// cache revalidates against it on every fetch and the translation
// tier's basic blocks re-prove it on every block entry — so any new
// mutation path through this package must advance it or those caches
// will serve stale instructions.
func (p *Page) Gen() uint64 { return p.gen }

// Byte reads the byte at the given offset within the page.
func (p *Page) Byte(off uint32) uint8 { return p.data[off&(pageBytes-1)] }

// Half reads a little-endian halfword at an in-page offset; off (mod
// page size) must be <= pageSize-2, which any half-aligned offset is.
func (p *Page) Half(off uint32) uint16 {
	off &= pageBytes - 1
	return binary.LittleEndian.Uint16(p.data[off:])
}

// Word reads a little-endian word at an in-page offset; off (mod page
// size) must be <= pageSize-4, which any word-aligned offset is.
func (p *Page) Word(off uint32) uint32 {
	off &= pageBytes - 1
	return binary.LittleEndian.Uint32(p.data[off:])
}

// Word64 reads two consecutive little-endian words as one 64-bit value
// (low word first); off (mod page size) must be <= pageSize-8. Scanners
// (the kernel's invariant checker) use it to skip zero runs fast.
func (p *Page) Word64(off uint32) uint64 {
	off &= pageBytes - 1
	return binary.LittleEndian.Uint64(p.data[off:])
}

// SetByte writes one byte and advances the generation.
func (p *Page) SetByte(off uint32, v uint8) {
	p.data[off&(pageBytes-1)] = v
	p.gen++
}

// SetHalf writes a little-endian halfword (offset rules as Half).
func (p *Page) SetHalf(off uint32, v uint16) {
	off &= pageBytes - 1
	binary.LittleEndian.PutUint16(p.data[off:], v)
	p.gen++
}

// SetWord writes a little-endian word (offset rules as Word).
func (p *Page) SetWord(off uint32, v uint32) {
	off &= pageBytes - 1
	binary.LittleEndian.PutUint32(p.data[off:], v)
	p.gen++
}

// handleCacheSize is the direct-mapped page-handle cache inside Memory
// (a power of two). Handles never go stale, so the cache needs no
// invalidation; it only short-circuits the pfn -> *Page map lookup.
const handleCacheSize = 8

// Memory is a sparse physical memory of a fixed size. The zero value is
// unusable; use New.
type Memory struct {
	size  uint32
	pages map[uint32]*Page // page frame number -> backing page

	// Direct-mapped handle cache: tag holds pfn+1 (0 = empty slot).
	cacheTag [handleCacheSize]uint32
	cachePg  [handleCacheSize]*Page

	// Snapshot binding (snapshot.go): the MemState this memory's
	// contents were last captured into or restored from, and, per page,
	// the store generation at which the page content last matched that
	// snapshot. Host-side bookkeeping only — never observable by the
	// guest.
	boundTo   *MemState
	boundGens map[uint32]uint64

	// backing is the lazy fork source (snapshot.go): snapshot pages this
	// Memory has never materialized are copied in on first access by the
	// existing page-miss path, so Fork is O(1) in page contents and the
	// first touch — not the fork — pays for the copy. Nil on machines
	// that were booted rather than forked.
	backing *MemState
}

// New creates a physical memory of the given size in bytes, rounded up
// to a whole page. Backing pages are allocated on first touch.
func New(size uint32) *Memory { return Init(new(Memory), size) }

// Init initializes a Memory in place, for callers that embed one in a
// larger allocation (the fork shell builds a whole machine from a
// single allocation; see kernel.NewForRestore). m must be zero-valued.
// The page map itself is allocated on first page touch, keeping a
// forked machine's checkout allocation-free on the memory side.
func Init(m *Memory, size uint32) *Memory {
	m.size = (size + pageBytes - 1) &^ (pageBytes - 1)
	return m
}

// Size returns the physical memory size in bytes.
func (m *Memory) Size() uint32 { return m.size }

// Reset zeroes every touched page while keeping the page allocations
// (and therefore every outstanding *Page handle). Untouched pages read
// as zero, so a reset memory is observationally identical to a fresh
// one — this is what lets a machine pool reuse address spaces across
// simulator runs. Each scrubbed page's generation advances, so cached
// derivations (predecoded instructions) invalidate precisely.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		clear(p.data)
		p.gen++
	}
	// Snapshot pages never materialized would otherwise survive the
	// scrub; a reset memory is all zero.
	m.backing = nil
}

// lookup returns the page holding pfn via the handle cache, or nil if
// the page is unallocated.
func (m *Memory) lookup(pfn uint32) *Page {
	i := pfn & (handleCacheSize - 1)
	if m.cacheTag[i] == pfn+1 {
		return m.cachePg[i]
	}
	p := m.pages[pfn]
	if p != nil {
		m.cacheTag[i], m.cachePg[i] = pfn+1, p
	}
	return p
}

func (m *Memory) page(pa uint32, alloc bool) (*Page, error) {
	if pa >= m.size {
		return nil, fmt.Errorf("%w: pa %#x beyond %#x", ErrBusError, pa, m.size)
	}
	pfn := pa >> pageShift
	p := m.lookup(pfn)
	if p == nil {
		if m.backing != nil {
			p = m.materialize(pfn)
		}
		if p == nil && alloc {
			p = &Page{data: make([]byte, pageBytes)}
			if m.pages == nil {
				m.pages = make(map[uint32]*Page)
			}
			m.pages[pfn] = p
			m.cacheTag[pfn&(handleCacheSize-1)] = pfn + 1
			m.cachePg[pfn&(handleCacheSize-1)] = p
		}
	}
	return p, nil
}

// PageRef returns the page handle backing pa, or nil if pa is beyond
// physical memory or its page has never been touched. The handle stays
// valid forever (pages survive Reset); content staleness is tracked by
// Page.Gen.
func (m *Memory) PageRef(pa uint32) *Page {
	if pa >= m.size {
		return nil
	}
	p := m.lookup(pa >> pageShift)
	if p == nil && m.backing != nil {
		p = m.materialize(pa >> pageShift)
	}
	return p
}

// LoadByte reads one byte of physical memory.
func (m *Memory) LoadByte(pa uint32) (uint8, error) {
	p, err := m.page(pa, false)
	if err != nil {
		return 0, err
	}
	if p == nil {
		return 0, nil
	}
	return p.Byte(pa), nil
}

// StoreByte writes one byte of physical memory.
func (m *Memory) StoreByte(pa uint32, v uint8) error {
	p, err := m.page(pa, true)
	if err != nil {
		return err
	}
	p.SetByte(pa, v)
	return nil
}

// LoadHalf reads a little-endian halfword. pa must be half-aligned
// (alignment is checked by the CPU; this is a defensive check).
func (m *Memory) LoadHalf(pa uint32) (uint16, error) {
	if pa < m.size-1 && pa&(pageBytes-1) <= pageBytes-2 {
		p := m.lookup(pa >> pageShift)
		if p == nil {
			if m.backing != nil {
				if p = m.materialize(pa >> pageShift); p != nil {
					return p.Half(pa), nil
				}
			}
			return 0, nil
		}
		return p.Half(pa), nil
	}
	lo, err := m.LoadByte(pa)
	if err != nil {
		return 0, err
	}
	hi, err := m.LoadByte(pa + 1)
	if err != nil {
		return 0, err
	}
	return uint16(lo) | uint16(hi)<<8, nil
}

// StoreHalf writes a little-endian halfword.
func (m *Memory) StoreHalf(pa uint32, v uint16) error {
	if pa < m.size-1 && pa&(pageBytes-1) <= pageBytes-2 {
		p, err := m.page(pa, true)
		if err != nil {
			return err
		}
		p.SetHalf(pa, v)
		return nil
	}
	if err := m.StoreByte(pa, uint8(v)); err != nil {
		return err
	}
	return m.StoreByte(pa+1, uint8(v>>8))
}

// LoadWord reads a little-endian 32-bit word.
func (m *Memory) LoadWord(pa uint32) (uint32, error) {
	// Fast path: word in range and within one page (size is at least one
	// page, so pa < size-3 also rules out pa+3 wrapping).
	if pa < m.size-3 && pa&(pageBytes-1) <= pageBytes-4 {
		p := m.lookup(pa >> pageShift)
		if p == nil {
			if m.backing != nil {
				if p = m.materialize(pa >> pageShift); p != nil {
					return p.Word(pa), nil
				}
			}
			return 0, nil
		}
		return p.Word(pa), nil
	}
	lo, err := m.LoadHalf(pa)
	if err != nil {
		return 0, err
	}
	hi, err := m.LoadHalf(pa + 2)
	if err != nil {
		return 0, err
	}
	return uint32(lo) | uint32(hi)<<16, nil
}

// StoreWord writes a little-endian 32-bit word.
func (m *Memory) StoreWord(pa uint32, v uint32) error {
	if pa < m.size-3 && pa&(pageBytes-1) <= pageBytes-4 {
		p, err := m.page(pa, true)
		if err != nil {
			return err
		}
		p.SetWord(pa, v)
		return nil
	}
	if err := m.StoreHalf(pa, uint16(v)); err != nil {
		return err
	}
	return m.StoreHalf(pa+2, uint16(v>>16))
}

// Write copies b into physical memory starting at pa, page by page.
func (m *Memory) Write(pa uint32, b []byte) error {
	for len(b) > 0 {
		p, err := m.page(pa, true)
		if err != nil {
			return err
		}
		off := pa & (pageBytes - 1)
		n := copy(p.data[off:], b)
		p.gen++
		b = b[n:]
		pa += uint32(n)
	}
	return nil
}

// Read copies n bytes starting at pa into a fresh slice.
func (m *Memory) Read(pa uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		v, err := m.LoadByte(pa + uint32(i))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// TouchedPages returns the number of physical pages allocated so far;
// used by tests and capacity reporting.
func (m *Memory) TouchedPages() int { return len(m.pages) }

// PageBacked reports whether the page containing pa holds (or, for a
// lazily backed fork, would hold) nonzero-capable content. Untouched
// pages read as zero, so scanners (the invariant checker) can skip
// them without forcing allocation; backed-but-unmaterialized snapshot
// pages with content must NOT be skipped — they do not read as zero.
func (m *Memory) PageBacked(pa uint32) bool {
	if pa >= m.size {
		return false
	}
	pfn := pa >> pageShift
	if m.pages[pfn] != nil {
		return true
	}
	return m.backing != nil && m.backing.pages[pfn] != nil
}

// CorruptWord XORs mask into the word at pa, modeling a memory
// single-event upset, and returns the value before and after.
// internal/faultinject is the only intended caller. The store advances
// the page generation, so a corrupted code page re-decodes — the upset
// is architecturally visible exactly as a store would be.
func (m *Memory) CorruptWord(pa uint32, mask uint32) (before, after uint32, err error) {
	before, err = m.LoadWord(pa)
	if err != nil {
		return 0, 0, err
	}
	after = before ^ mask
	if err := m.StoreWord(pa, after); err != nil {
		return 0, 0, err
	}
	return before, after, nil
}
