// Package mem implements the simulated machine's physical memory: a
// sparse, page-granular byte store with little-endian word access, as on
// the DECstation's R3000 configuration.
//
// Physical memory has no protection and no alignment rules of its own;
// translation, protection, and alignment checking happen in the CPU and
// TLB. Accesses beyond the configured physical size are bus errors,
// reported as error values for the CPU to turn into IBE/DBE exceptions.
package mem

import (
	"errors"
	"fmt"
)

// pageShift matches the hardware page size (4 KB) for allocation
// granularity only; physical memory itself is flat.
const pageShift = 12
const pageBytes = 1 << pageShift

// ErrBusError is returned for accesses outside physical memory.
var ErrBusError = errors.New("mem: bus error")

// Memory is a sparse physical memory of a fixed size. The zero value is
// unusable; use New.
type Memory struct {
	size  uint32
	pages map[uint32][]byte // page frame number -> backing bytes
}

// New creates a physical memory of the given size in bytes, rounded up
// to a whole page. Backing pages are allocated on first touch.
func New(size uint32) *Memory {
	size = (size + pageBytes - 1) &^ (pageBytes - 1)
	return &Memory{size: size, pages: make(map[uint32][]byte)}
}

// Size returns the physical memory size in bytes.
func (m *Memory) Size() uint32 { return m.size }

// Reset zeroes every touched page while keeping the page allocations.
// Untouched pages read as zero, so a reset memory is observationally
// identical to a fresh one — this is what lets a machine pool reuse
// address spaces across simulator runs instead of rebuilding them.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		clear(p)
	}
}

func (m *Memory) page(pa uint32, alloc bool) ([]byte, error) {
	if pa >= m.size {
		return nil, fmt.Errorf("%w: pa %#x beyond %#x", ErrBusError, pa, m.size)
	}
	pfn := pa >> pageShift
	p := m.pages[pfn]
	if p == nil && alloc {
		p = make([]byte, pageBytes)
		m.pages[pfn] = p
	}
	return p, nil
}

// LoadByte reads one byte of physical memory.
func (m *Memory) LoadByte(pa uint32) (uint8, error) {
	p, err := m.page(pa, false)
	if err != nil {
		return 0, err
	}
	if p == nil {
		return 0, nil
	}
	return p[pa&(pageBytes-1)], nil
}

// StoreByte writes one byte of physical memory.
func (m *Memory) StoreByte(pa uint32, v uint8) error {
	p, err := m.page(pa, true)
	if err != nil {
		return err
	}
	p[pa&(pageBytes-1)] = v
	return nil
}

// LoadHalf reads a little-endian halfword. pa must be half-aligned
// (alignment is checked by the CPU; this is a defensive check).
func (m *Memory) LoadHalf(pa uint32) (uint16, error) {
	lo, err := m.LoadByte(pa)
	if err != nil {
		return 0, err
	}
	hi, err := m.LoadByte(pa + 1)
	if err != nil {
		return 0, err
	}
	return uint16(lo) | uint16(hi)<<8, nil
}

// StoreHalf writes a little-endian halfword.
func (m *Memory) StoreHalf(pa uint32, v uint16) error {
	if err := m.StoreByte(pa, uint8(v)); err != nil {
		return err
	}
	return m.StoreByte(pa+1, uint8(v>>8))
}

// LoadWord reads a little-endian 32-bit word.
func (m *Memory) LoadWord(pa uint32) (uint32, error) {
	// Fast path: word within one page.
	if pa+3 < m.size && pa>>pageShift == (pa+3)>>pageShift {
		p := m.pages[pa>>pageShift]
		if p == nil {
			return 0, nil
		}
		o := pa & (pageBytes - 1)
		return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24, nil
	}
	lo, err := m.LoadHalf(pa)
	if err != nil {
		return 0, err
	}
	hi, err := m.LoadHalf(pa + 2)
	if err != nil {
		return 0, err
	}
	return uint32(lo) | uint32(hi)<<16, nil
}

// StoreWord writes a little-endian 32-bit word.
func (m *Memory) StoreWord(pa uint32, v uint32) error {
	if pa+3 < m.size && pa>>pageShift == (pa+3)>>pageShift {
		p, err := m.page(pa, true)
		if err != nil {
			return err
		}
		o := pa & (pageBytes - 1)
		p[o] = uint8(v)
		p[o+1] = uint8(v >> 8)
		p[o+2] = uint8(v >> 16)
		p[o+3] = uint8(v >> 24)
		return nil
	}
	if err := m.StoreHalf(pa, uint16(v)); err != nil {
		return err
	}
	return m.StoreHalf(pa+2, uint16(v>>16))
}

// Write copies b into physical memory starting at pa.
func (m *Memory) Write(pa uint32, b []byte) error {
	for i, v := range b {
		if err := m.StoreByte(pa+uint32(i), v); err != nil {
			return err
		}
	}
	return nil
}

// Read copies n bytes starting at pa into a fresh slice.
func (m *Memory) Read(pa uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		v, err := m.LoadByte(pa + uint32(i))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// TouchedPages returns the number of physical pages allocated so far;
// used by tests and capacity reporting.
func (m *Memory) TouchedPages() int { return len(m.pages) }

// PageBacked reports whether the page containing pa has been allocated.
// Untouched pages read as zero, so scanners (the invariant checker)
// can skip them without forcing allocation.
func (m *Memory) PageBacked(pa uint32) bool {
	if pa >= m.size {
		return false
	}
	return m.pages[pa>>pageShift] != nil
}

// CorruptWord XORs mask into the word at pa, modeling a memory
// single-event upset, and returns the value before and after.
// internal/faultinject is the only intended caller.
func (m *Memory) CorruptWord(pa uint32, mask uint32) (before, after uint32, err error) {
	before, err = m.LoadWord(pa)
	if err != nil {
		return 0, 0, err
	}
	after = before ^ mask
	if err := m.StoreWord(pa, after); err != nil {
		return 0, 0, err
	}
	return before, after, nil
}
