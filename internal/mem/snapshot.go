package mem

import "fmt"

// MemState is a point-in-time copy of a Memory's contents, built by
// CaptureState. It records, for every page touched at capture time, the
// page bytes (nil for an all-zero page) and the page's store generation.
//
// The generation map is what makes restore copy-on-write without a new
// write barrier: every mutation path through this package already
// advances Page.gen, so "has this page changed since the snapshot?" is
// a single integer compare. A MemState is immutable after capture and
// safe to share across machines and goroutines; the per-machine dirty
// tracking lives in the Memory being restored (see bindings below).
type MemState struct {
	size  uint32
	pages map[uint32][]byte // pfn -> content copy; nil = all zero
	gens  map[uint32]uint64 // pfn -> Page.gen at capture (membership set)
}

// Pages returns the number of pages recorded in the snapshot.
func (st *MemState) Pages() int { return len(st.gens) }

// Bytes returns the number of content bytes retained (all-zero pages
// are recorded by membership only and cost nothing).
func (st *MemState) Bytes() int {
	n := 0
	for _, b := range st.pages {
		n += len(b)
	}
	return n
}

// allZero reports whether b contains only zero bytes.
func allZero(b []byte) bool {
	for len(b) >= 8 {
		if b[0]|b[1]|b[2]|b[3]|b[4]|b[5]|b[6]|b[7] != 0 {
			return false
		}
		b = b[8:]
	}
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// CaptureState snapshots the current memory contents. Cost is one pass
// over the touched pages (content copies for non-zero pages). The
// capture also binds this Memory to the snapshot: an immediate
// RestoreState(st) on the same Memory is O(touched pages) generation
// compares with zero copies.
func (m *Memory) CaptureState() *MemState {
	st := &MemState{
		size:  m.size,
		pages: make(map[uint32][]byte, len(m.pages)),
		gens:  make(map[uint32]uint64, len(m.pages)),
	}
	bound := make(map[uint32]uint64, len(m.pages))
	for pfn, p := range m.pages {
		st.gens[pfn] = p.gen
		if !allZero(p.data) {
			st.pages[pfn] = append([]byte(nil), p.data...)
		}
		bound[pfn] = p.gen
	}
	// Backed pages this (forked) Memory never materialized still hold
	// the backing snapshot's content; record them by reference — both
	// MemStates are immutable, so sharing the content slices is safe.
	if m.backing != nil {
		for pfn := range m.backing.gens {
			if _, ok := m.pages[pfn]; ok {
				continue
			}
			st.gens[pfn] = 1
			if b := m.backing.pages[pfn]; b != nil {
				st.pages[pfn] = b
			}
		}
	}
	m.boundTo, m.boundGens = st, bound
	return st
}

// materialize allocates the page for pfn from the lazy fork backing,
// copying the snapshot content in — the copy-on-first-touch half of the
// CoW fork rule. Returns nil when the backing has no such page (the
// caller falls through to normal untouched-page handling). The fresh
// page starts at generation 1 and, when the backing is also the bound
// snapshot, is recorded as clean so a later restore skips it.
func (m *Memory) materialize(pfn uint32) *Page {
	st := m.backing
	if _, ok := st.gens[pfn]; !ok {
		return nil
	}
	p := &Page{data: make([]byte, pageBytes), gen: 1}
	copy(p.data, st.pages[pfn]) // no-op for all-zero pages
	if m.pages == nil {
		m.pages = make(map[uint32]*Page)
	}
	m.pages[pfn] = p
	i := pfn & (handleCacheSize - 1)
	m.cacheTag[i], m.cachePg[i] = pfn+1, p
	if m.boundTo == st {
		if m.boundGens == nil {
			m.boundGens = make(map[uint32]uint64, len(st.gens))
		}
		m.boundGens[pfn] = p.gen
	}
	return p
}

// RestoreState rewrites memory contents to exactly match the snapshot,
// copying only pages that have changed since the snapshot was taken (or
// since the last restore from it). It returns the number of pages
// copied or cleared.
//
// The copy-on-write rule: the Memory remembers, per page, the store
// generation at which its content last matched the snapshot (seeded by
// CaptureState on the source machine, updated here on every restore).
// A page whose generation still equals that value has not been written
// since — every mutation advances Page.gen — so it is skipped. Dirty
// pages are rewritten with their generation advanced, which is the same
// invalidation signal a guest store emits: the predecode cache and JIT
// blocks revalidate against Page.Gen on next use, so a restored machine
// can never execute stale decodes. Restoring into a Memory bound to a
// different snapshot (or never bound) treats every page as dirty.
func (m *Memory) RestoreState(st *MemState) (int, error) {
	if m.size != st.size {
		return 0, fmt.Errorf("mem: restore size mismatch: memory %#x, snapshot %#x", m.size, st.size)
	}
	if m.boundTo != st {
		m.boundTo = st
		m.boundGens = nil // rebound: rebuilt below on first dirty page
	}
	dirty := 0
	for pfn, p := range m.pages { // no-op on a fresh fork (nil map)
		if bg, ok := m.boundGens[pfn]; ok && bg == p.gen {
			continue // unchanged since it last matched the snapshot
		}
		if _, inSnap := st.gens[pfn]; inSnap {
			clear(p.data)
			copy(p.data, st.pages[pfn]) // no-op for all-zero pages
		} else {
			// Touched after the snapshot was taken: snapshot content is
			// "never touched", i.e. zero.
			clear(p.data)
		}
		p.gen++
		if m.boundGens == nil {
			m.boundGens = make(map[uint32]uint64, len(st.gens))
		}
		m.boundGens[pfn] = p.gen
		dirty++
	}
	// Pages in the snapshot this Memory has never touched (a fork into
	// fresh memory, or a pool machine whose last run never reached them)
	// are not copied eagerly: the memory is bound to the snapshot as
	// lazy backing, and the page-miss path materializes each one on
	// first access. This is what makes Fork O(1) in page contents — the
	// first touch, not the fork, pays for each copy.
	m.backing = nil
	if len(m.pages) < len(st.gens) {
		// Fewer materialized pages than snapshot pages: at least one
		// snapshot page is missing, no need to probe which.
		m.backing = st
	} else {
		for pfn := range st.gens {
			if _, ok := m.pages[pfn]; !ok {
				m.backing = st
				break
			}
		}
	}
	return dirty, nil
}
