package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSizeRounding(t *testing.T) {
	m := New(1)
	if m.Size() != 4096 {
		t.Fatalf("Size() = %d, want 4096", m.Size())
	}
	m = New(4096)
	if m.Size() != 4096 {
		t.Fatalf("Size() = %d, want 4096", m.Size())
	}
}

func TestByteRoundTrip(t *testing.T) {
	m := New(1 << 20)
	f := func(paRaw uint32, v uint8) bool {
		pa := paRaw % m.Size()
		if err := m.StoreByte(pa, v); err != nil {
			return false
		}
		got, err := m.LoadByte(pa)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordRoundTripIncludingPageStraddle(t *testing.T) {
	m := New(1 << 20)
	f := func(paRaw, v uint32) bool {
		pa := paRaw % (m.Size() - 4)
		if err := m.StoreWord(pa, v); err != nil {
			return false
		}
		got, err := m.LoadWord(pa)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Explicit page straddle.
	if err := m.StoreWord(4094, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	got, err := m.LoadWord(4094)
	if err != nil || got != 0xdeadbeef {
		t.Fatalf("straddling word = %#x, %v", got, err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New(4096)
	if err := m.StoreWord(0, 0x11223344); err != nil {
		t.Fatal(err)
	}
	want := []byte{0x44, 0x33, 0x22, 0x11}
	for i, w := range want {
		got, _ := m.LoadByte(uint32(i))
		if got != w {
			t.Errorf("byte %d = %#x, want %#x", i, got, w)
		}
	}
	h, _ := m.LoadHalf(0)
	if h != 0x3344 {
		t.Errorf("LoadHalf(0) = %#x, want 0x3344", h)
	}
	h, _ = m.LoadHalf(2)
	if h != 0x1122 {
		t.Errorf("LoadHalf(2) = %#x, want 0x1122", h)
	}
}

func TestUntouchedReadsZero(t *testing.T) {
	m := New(1 << 16)
	w, err := m.LoadWord(0x8000)
	if err != nil || w != 0 {
		t.Fatalf("untouched word = %#x, %v", w, err)
	}
	if m.TouchedPages() != 0 {
		t.Fatalf("TouchedPages = %d after pure reads", m.TouchedPages())
	}
}

func TestBusErrors(t *testing.T) {
	m := New(1 << 16)
	if _, err := m.LoadByte(1 << 16); !errors.Is(err, ErrBusError) {
		t.Errorf("LoadByte OOB err = %v", err)
	}
	if err := m.StoreByte(1<<16, 1); !errors.Is(err, ErrBusError) {
		t.Errorf("StoreByte OOB err = %v", err)
	}
	if _, err := m.LoadWord(1<<16 - 2); !errors.Is(err, ErrBusError) {
		t.Errorf("LoadWord straddling end err = %v", err)
	}
	if err := m.StoreWord(1<<16-2, 0); !errors.Is(err, ErrBusError) {
		t.Errorf("StoreWord straddling end err = %v", err)
	}
}

func TestBulkWriteRead(t *testing.T) {
	m := New(1 << 16)
	blob := make([]byte, 10000)
	for i := range blob {
		blob[i] = byte(i * 7)
	}
	if err := m.Write(100, blob); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(100, len(blob))
	if err != nil {
		t.Fatal(err)
	}
	for i := range blob {
		if got[i] != blob[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], blob[i])
		}
	}
	if err := m.Write(1<<16-5, blob[:10]); !errors.Is(err, ErrBusError) {
		t.Errorf("Write past end err = %v", err)
	}
}

func TestPageRefAndGen(t *testing.T) {
	m := New(4 * pageBytes)
	if m.PageRef(0x1000) != nil {
		t.Fatal("PageRef on untouched page should be nil (reads-as-zero stays slow-path)")
	}
	if m.PageRef(4*pageBytes) != nil {
		t.Fatal("PageRef beyond physical memory should be nil")
	}
	if err := m.StoreWord(0x1004, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	pg := m.PageRef(0x1000)
	if pg == nil {
		t.Fatal("PageRef nil after store touched the page")
	}
	if got := pg.Word(0x004); got != 0xdeadbeef {
		t.Fatalf("page word = %#x", got)
	}

	// Every mutation path must advance the generation: it is the
	// predecode cache's only invalidation signal.
	g := pg.Gen()
	pg.SetByte(0x10, 1)
	pg.SetHalf(0x12, 2)
	pg.SetWord(0x14, 3)
	if pg.Gen() != g+3 {
		t.Fatalf("gen %d after 3 sets, want %d", pg.Gen(), g+3)
	}
	g = pg.Gen()
	if err := m.Write(0x1000, make([]byte, 2*pageBytes)); err != nil {
		t.Fatal(err)
	}
	if pg.Gen() <= g {
		t.Fatal("bulk Write did not advance gen of first page")
	}
	g = pg.Gen()
	m.Reset()
	if pg.Gen() <= g {
		t.Fatal("Reset scrub did not advance gen")
	}
	if m.PageRef(0x1000) != pg {
		t.Fatal("page handle changed across Reset; cached handles must stay valid")
	}
	if got := pg.Word(0x004); got != 0 {
		t.Fatalf("post-Reset word = %#x, want 0", got)
	}
}

func TestPageWord64(t *testing.T) {
	m := New(pageBytes)
	if err := m.StoreWord(0x20, 0x11223344); err != nil {
		t.Fatal(err)
	}
	if err := m.StoreWord(0x24, 0x55667788); err != nil {
		t.Fatal(err)
	}
	pg := m.PageRef(0)
	if got := pg.Word64(0x20); got != 0x55667788_11223344 {
		t.Fatalf("Word64 = %#x", got)
	}
	if got := pg.Word64(0x28); got != 0 {
		t.Fatalf("Word64 of zero words = %#x", got)
	}
}
