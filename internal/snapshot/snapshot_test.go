package snapshot

import (
	"errors"
	"fmt"
	"testing"

	"uexc/internal/core"
	"uexc/internal/cpu"
	"uexc/internal/progen"
)

// digest fingerprints everything replay promises to reproduce:
// architectural registers, position in the stream, statistics, and
// kernel-visible output.
func digest(m *core.Machine) string {
	c := m.K.CPU
	return fmt.Sprintf("pc=%#x npc=%#x gpr=%v hi=%#x lo=%#x insts=%d cycles=%d writes=%d console=%q stats=%+v",
		c.PC, c.NPC, c.GPR, c.HI, c.LO, c.Insts, c.Cycles, c.MemWrites, m.K.Console(), m.K.Stats)
}

// prepared boots a machine and loads the same deterministic progen
// program on it.
func prepared(t *testing.T) *core.Machine {
	t.Helper()
	m, err := core.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	p := progen.Generate(7)
	if err := m.LoadProgram(p.Source(core.ModeUltrix, false)); err != nil {
		t.Fatal(err)
	}
	return m
}

// programEnd measures how many instructions the prepared program
// retires before exiting; the tests scale their recording intervals to
// it so they stay meaningful for any generated length.
func programEnd(t *testing.T) uint64 {
	t.Helper()
	m := prepared(t)
	if err := m.Run(3_000_000); err != nil {
		t.Fatalf("probe run: %v", err)
	}
	end := m.K.CPU.Insts
	if end < 600 {
		t.Fatalf("probe program too short to tape (%d insts)", end)
	}
	return end
}

// runTo drives the CPU to exactly n retired instructions, tolerating
// the budget stop.
func runTo(t *testing.T, m *core.Machine, n uint64) {
	t.Helper()
	c := m.K.CPU
	if c.Insts >= n {
		return
	}
	_, err := c.Run(n - c.Insts)
	var be *cpu.BudgetError
	if err != nil && !errors.As(err, &be) {
		t.Fatalf("run to %d: %v", n, err)
	}
}

// TestRecordDoesNotPerturb: a recorded run ends in exactly the state
// of the same run performed in one Run call — taking snapshots has no
// architectural effect.
func TestRecordDoesNotPerturb(t *testing.T) {
	end := programEnd(t)

	straight := prepared(t)
	if err := straight.Run(3_000_000); err != nil {
		t.Fatal(err)
	}

	recorded := prepared(t)
	tape, err := Record(recorded, 3_000_000, end/5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := digest(recorded), digest(straight); got != want {
		t.Fatalf("recording perturbed the run\nrecorded: %s\nstraight: %s", got, want)
	}
	if tape.Snapshots() < 2 {
		t.Fatalf("tape has %d snapshots, want at least start + one periodic", tape.Snapshots())
	}
	if tape.EndInsts != recorded.K.CPU.Insts {
		t.Errorf("tape EndInsts=%d, machine retired %d", tape.EndInsts, recorded.K.CPU.Insts)
	}
}

// TestReplayToExact: replaying to instruction n lands on the exact
// state the recorded run passed through at n — same registers, same
// statistics — for targets on and off snapshot boundaries.
func TestReplayToExact(t *testing.T) {
	end := programEnd(t)
	every := end / 6

	m := prepared(t)
	tape, err := Record(m, 3_000_000, every)
	if err != nil {
		t.Fatal(err)
	}
	if tape.EndInsts != end {
		t.Fatalf("tape retired %d insts, probe retired %d", tape.EndInsts, end)
	}

	for _, n := range []uint64{0, every, every + 13, end / 2, end} {
		replayed, err := tape.ReplayTo(n)
		if err != nil {
			t.Fatalf("ReplayTo(%d): %v", n, err)
		}
		if got := replayed.K.CPU.Insts; got != n {
			t.Fatalf("ReplayTo(%d) stopped at %d", n, got)
		}

		// Ground truth: a fresh machine run straight to n.
		ref := prepared(t)
		runTo(t, ref, n)
		if got, want := digest(replayed), digest(ref); got != want {
			t.Fatalf("ReplayTo(%d) diverged\nreplayed: %s\nstraight: %s", n, got, want)
		}
	}
}

// TestNearestAndBounds: Nearest picks the latest snapshot at or before
// the target; replaying before the tape's start (a mid-run recording)
// and recording with a zero interval are errors.
func TestNearestAndBounds(t *testing.T) {
	end := programEnd(t)
	start := end / 3
	every := end / 6

	m := prepared(t)
	runTo(t, m, start) // the tape starts mid-run
	tape, err := Record(m, 3_000_000, every)
	if err != nil {
		t.Fatal(err)
	}
	if got := tape.Nearest(0).Insts(); got != start {
		t.Errorf("Nearest(0) = %d, want the tape start %d", got, start)
	}
	if tape.Snapshots() < 2 {
		t.Fatalf("tape has %d snapshots, need periodic points for Nearest", tape.Snapshots())
	}
	if got := tape.Nearest(start + every + 3).Insts(); got != start+every {
		t.Errorf("Nearest(%d) = %d, want %d", start+every+3, got, start+every)
	}
	if got := tape.Nearest(1 << 62).Insts(); got < start+every {
		t.Errorf("Nearest(huge) = %d, want the last point", got)
	}
	if _, err := tape.ReplayTo(start - 1); err == nil {
		t.Error("ReplayTo before the tape start must fail")
	}
	if _, err := Record(m, 1, 0); err == nil {
		t.Error("Record with every=0 must fail")
	}
	if tape.Every() != every {
		t.Errorf("Every() = %d, want %d", tape.Every(), every)
	}
}

// TestRecordToCompletion: recording with a generous budget runs the
// program to its exit and tapes the outcome; replaying to the very end
// reproduces the final state.
func TestRecordToCompletion(t *testing.T) {
	end := programEnd(t)
	m := prepared(t)
	tape, err := Record(m, 3_000_000, end/4)
	if err != nil {
		t.Fatal(err)
	}
	if !tape.Halted {
		t.Fatal("program did not complete within the recording budget")
	}
	if tape.Err != nil {
		t.Fatalf("clean run surfaced error: %v", tape.Err)
	}
	replayed, err := tape.ReplayTo(tape.EndInsts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := digest(replayed), digest(m); got != want {
		t.Fatalf("end-replay diverged\nreplayed: %s\nrecorded: %s", got, want)
	}
}
