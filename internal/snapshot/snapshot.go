// Package snapshot is the machine snapshot / record-replay subsystem
// (DESIGN.md §16): point-in-time machine images with copy-on-write
// restore riding the mem.Page store-generation counters, a periodic
// recorder that tapes a run as a sequence of snapshots, and replay to
// an arbitrary instruction — the time-travel primitive behind
// divergence triage and the virtual-breakpoint debug sessions in
// internal/debug.
//
// The heavy lifting lives in the layers below (mem, tlb, cpu, kernel
// each capture/restore their own state; core composes them); this
// package owns the driving policy: where snapshots are taken, how a
// tape is indexed, and how a replay target is reached exactly.
package snapshot

import (
	"errors"
	"fmt"

	"uexc/internal/core"
	"uexc/internal/cpu"
)

// Take captures the machine at its current run boundary. Equivalent to
// m.Snapshot(); exported here so callers of the subsystem need only
// this package.
func Take(m *core.Machine) *core.Snapshot { return m.Snapshot() }

// Fork builds an independent machine from a snapshot without booting.
func Fork(s *core.Snapshot) (*core.Machine, error) { return core.Fork(s) }

// Restore rewrites m in place to match the snapshot, copying only
// pages that diverged from it. Returns the number of pages copied.
func Restore(m *core.Machine, s *core.Snapshot) (int, error) { return m.Restore(s) }

// Tape is a recorded run: periodic snapshots indexed by retired
// instruction count, plus the run's outcome. Immutable after Record.
type Tape struct {
	points []*core.Snapshot // ascending by Insts(); [0] is the start
	every  uint64

	// Final run state (for triage without replaying to the end).
	EndInsts uint64
	Halted   bool
	Err      error // terminal simulator error (livelock, kernel panic), nil otherwise
}

// Snapshots returns the number of points on the tape.
func (t *Tape) Snapshots() int { return len(t.points) }

// Every returns the recording interval in instructions.
func (t *Tape) Every() uint64 { return t.every }

// Record runs the machine for at most budget further instructions,
// capturing a snapshot now and then after every `every` retired
// instructions, and returns the tape. The chunked run is exactly the
// run the machine would have performed in one Run call — cpu.Run stops
// precisely at its instruction bound, and capturing a snapshot has no
// architectural effect — so recording never perturbs the result.
//
// Recording composes with anything whose behaviour is a pure function
// of machine state (difftest/progen programs, plain program runs). A
// run driven by external host-side hooks with their own evolving state
// (an armed fault-injection campaign) records fine but cannot be
// REPLAYED exactly unless the caller re-arms equivalent hooks on the
// replayed machine — snapshots capture the machine, not the injector.
func Record(m *core.Machine, budget, every uint64) (*Tape, error) {
	if every == 0 {
		return nil, fmt.Errorf("snapshot: recording interval must be positive")
	}
	t := &Tape{every: every}
	t.points = append(t.points, m.Snapshot())
	c := m.K.CPU
	start := c.Insts
	for !c.Halted && c.Insts-start < budget {
		chunk := min(every, budget-(c.Insts-start))
		_, err := c.Run(chunk)
		var be *cpu.BudgetError
		if err != nil && !errors.As(err, &be) {
			// Livelock or a kernel hook failure: the run is over. Keep
			// the tape — replaying up to this point is exactly what
			// triage wants — and surface the error on it.
			t.Err = err
			break
		}
		if !c.Halted && c.Insts-start < budget {
			t.points = append(t.points, m.Snapshot())
		}
	}
	if t.Err == nil && c.Halted {
		// Surface any recorded machine check exactly like Kernel.Run
		// would have (a zero-instruction run only polls it).
		t.Err = m.K.Run(0)
	}
	t.EndInsts = c.Insts
	t.Halted = c.Halted
	return t, nil
}

// Nearest returns the latest snapshot at or before instruction n.
func (t *Tape) Nearest(n uint64) *core.Snapshot {
	best := t.points[0]
	for _, p := range t.points[1:] {
		if p.Insts() <= n {
			best = p
		} else {
			break
		}
	}
	return best
}

// ReplayTo forks the nearest snapshot at or before instruction n and
// re-executes forward until exactly n instructions have retired (or
// the run ends first). The returned machine is paused at the same
// architectural state the recorded run passed through at instruction n
// — registers, memory, TLB, statistics — ready for inspection.
func (t *Tape) ReplayTo(n uint64) (*core.Machine, error) {
	if n < t.points[0].Insts() {
		return nil, fmt.Errorf("snapshot: target %d precedes tape start %d", n, t.points[0].Insts())
	}
	m, err := Fork(t.Nearest(n))
	if err != nil {
		return nil, err
	}
	c := m.K.CPU
	if c.Insts < n {
		_, err := c.Run(n - c.Insts)
		var be *cpu.BudgetError
		if err != nil && !errors.As(err, &be) {
			return nil, fmt.Errorf("snapshot: replaying to %d: %w", n, err)
		}
	}
	return m, nil
}
