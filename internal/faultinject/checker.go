package faultinject

import (
	"fmt"
	"strings"

	"uexc/internal/kernel"
)

// Checker asserts the DESIGN.md §6 machine invariants that must
// survive the campaign's fault model. Structural kernel properties
// (page-table well-formedness, frame pinning, u-area coherence) are
// delegated to kernel.SelfCheck, whose covered structures all live
// below the injector's corruption floor; on top of that the checker
// tracks cross-observation properties a single snapshot cannot see:
//
//   - architectural zero: GPR[0] reads as zero;
//   - time moves forward: cycle and instruction counters are monotone;
//   - exits are final: once the machine reports an exit, the report
//     and status never change;
//   - the console is append-only;
//   - the frame allocator's watermark is monotone and in-range.
//
// Violations wrap kernel.ErrInvariant for errors.Is dispatch.
type Checker struct {
	k *kernel.Kernel

	maxCycles uint64
	maxInsts  uint64
	console   string
	exited    bool
	status    uint32
	frameMark uint32
}

// NewChecker snapshots the baseline observations for machine k.
func NewChecker(k *kernel.Kernel) *Checker {
	ch := &Checker{k: k}
	ch.observe()
	return ch
}

func (ch *Checker) observe() {
	ch.maxCycles = ch.k.CPU.Cycles
	ch.maxInsts = ch.k.CPU.Insts
	ch.console = ch.k.Console()
	ch.exited, ch.status = ch.k.Exited()
	ch.frameMark = ch.k.FrameWatermark()
}

// Check validates every invariant against the current machine state,
// returning the first violation (wrapping kernel.ErrInvariant) or nil.
// Successful observations become the baseline for the next call.
func (ch *Checker) Check() error {
	k, c := ch.k, ch.k.CPU

	if c.GPR[0] != 0 {
		return fmt.Errorf("%w: GPR[0] reads %#x, want 0", kernel.ErrInvariant, c.GPR[0])
	}
	if c.Cycles < ch.maxCycles {
		return fmt.Errorf("%w: cycle counter ran backwards (%d < %d)",
			kernel.ErrInvariant, c.Cycles, ch.maxCycles)
	}
	if c.Insts < ch.maxInsts {
		return fmt.Errorf("%w: instruction counter ran backwards (%d < %d)",
			kernel.ErrInvariant, c.Insts, ch.maxInsts)
	}

	console := k.Console()
	if !strings.HasPrefix(console, ch.console) {
		return fmt.Errorf("%w: console output mutated (was %q, now %q)",
			kernel.ErrInvariant, ch.console, console)
	}

	exited, status := k.Exited()
	if ch.exited && (!exited || status != ch.status) {
		return fmt.Errorf("%w: exit state changed after exit (was %v/%d, now %v/%d)",
			kernel.ErrInvariant, ch.exited, ch.status, exited, status)
	}

	mark := k.FrameWatermark()
	if mark < ch.frameMark || mark > kernel.PhysMemSize {
		return fmt.Errorf("%w: frame watermark %#x left range [%#x, %#x]",
			kernel.ErrInvariant, mark, ch.frameMark, uint32(kernel.PhysMemSize))
	}

	if err := k.SelfCheck(); err != nil {
		return err
	}

	ch.observe()
	return nil
}
