package faultinject_test

import (
	"errors"
	"testing"

	"uexc/internal/core"
	"uexc/internal/faultinject"
	"uexc/internal/kernel"
)

// victimProg is a plain, unhardened store/load loop: enough retired
// instructions and TLB traffic for the injector's warmup and schedule,
// with no handlers registered, so every injected outcome is whatever
// the kernel's default policy produces.
const victimProg = `
main:
	li    t0, 30000
	la    t1, counter
loop:
	sw    t0, 0(t1)
	lw    t2, 0(t1)
	addiu t0, t0, -1
	bnez  t0, loop
	nop
	li    a0, 0
	li    v0, SYS_exit
	syscall
	nop
	.align 4
counter:
	.word 0
`

func injectedRun(t *testing.T, seed int64) *faultinject.Injector {
	t.Helper()
	m, err := core.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.Attach(m.K, seed, faultinject.Config{})
	if err := m.LoadProgram(victimProg); err != nil {
		t.Fatal(err)
	}
	m.Run(2_000_000) // outcome (exit, kill, error) is seed policy, not under test
	return inj
}

// TestDeterministicReplay: the same seed against the same program must
// produce the identical event log, bit for bit.
func TestDeterministicReplay(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		a := injectedRun(t, seed)
		b := injectedRun(t, seed)
		if len(a.Events) == 0 {
			t.Fatalf("seed %d: no events injected", seed)
		}
		if len(a.Events) != len(b.Events) {
			t.Fatalf("seed %d: %d vs %d events", seed, len(a.Events), len(b.Events))
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				t.Errorf("seed %d event %d: %+v vs %+v", seed, i, a.Events[i], b.Events[i])
			}
		}
		if len(a.Violations) != 0 {
			t.Errorf("seed %d: invariant violations: %v", seed, a.Violations)
		}
	}
}

// TestSeedsDiverge: different seeds must produce different plans
// (otherwise the campaign's seed sweep is one run repeated).
func TestSeedsDiverge(t *testing.T) {
	a := injectedRun(t, 1)
	b := injectedRun(t, 2)
	same := len(a.Events) == len(b.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical event logs")
	}
}

// TestCheckerCatchesViolations: a clean machine passes; planted
// corruption of a checked property is reported as ErrInvariant.
func TestCheckerCatchesViolations(t *testing.T) {
	m, err := core.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	ch := faultinject.NewChecker(m.K)
	if err := ch.Check(); err != nil {
		t.Fatalf("clean machine: %v", err)
	}

	m.K.CPU.GPR[0] = 1
	if err := ch.Check(); !errors.Is(err, kernel.ErrInvariant) {
		t.Errorf("GPR[0] != 0: got %v, want ErrInvariant", err)
	}
	m.K.CPU.GPR[0] = 0

	m.K.CPU.Insts = 100
	if err := ch.Check(); err != nil {
		t.Fatalf("monotone advance rejected: %v", err)
	}
	m.K.CPU.Insts = 50
	if err := ch.Check(); !errors.Is(err, kernel.ErrInvariant) {
		t.Errorf("backwards instruction counter: got %v, want ErrInvariant", err)
	}
}

// TestDetach: hooks are removed, so no further events fire.
func TestDetach(t *testing.T) {
	m, err := core.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.Attach(m.K, 7, faultinject.Config{})
	if m.K.CPU.Inject == nil || m.K.TLB.InjectMiss == nil {
		t.Fatal("Attach did not install hooks")
	}
	inj.Detach()
	if m.K.CPU.Inject != nil || m.K.TLB.InjectMiss != nil {
		t.Error("Detach left hooks installed")
	}
}
