// Package faultinject is a deterministic, seed-driven fault injector
// for the simulated machine. It models the hazards the paper's
// mechanisms must police — spurious synchronous exceptions, exception
// storms, faults raised inside a user-level handler (§2's recursion
// hazard), TLB single-event upsets, and memory corruption — through
// the hook points the hardware layers expose:
//
//   - cpu.CPU.Inject: a synchronous exception forced before the next
//     user instruction (spurious faults, storms, handler faults);
//   - tlb.TLB.InjectMiss / FlipBits: forced refill misses, flipped
//     permission/tag bits, stale-ASID entries;
//   - mem.Memory.CorruptWord: single-word upsets of user frames.
//
// Every decision is drawn from a math/rand stream seeded by the
// caller, and scheduling keys off the CPU's retired-instruction
// counter, so a (seed, program, mode) triple replays identically.
//
// The fault model is bounded deliberately:
//
//   - injection happens only in user mode — the kernel's calibrated
//     assembly paths assume the hardware delivers exceptions at
//     instruction boundaries of the interrupted user program;
//   - memory corruption is restricted to allocated user frames
//     ([kernel.FramePhysBase, FrameWatermark)) — page tables and the
//     u-area live below that floor, which is what lets the §6
//     invariants (Checker) remain assertable under fire;
//   - TLB flips never touch the PFN field (a wrong-translation store
//     is silent datapath corruption that no delivery mechanism can
//     observe; real designs protect the data array, not the CAM) and
//     never touch the U bit (the kernel's scrub heuristic treats
//     U-marked entries as legitimately divergent, §3.2.3).
package faultinject

import (
	"fmt"
	"math/rand"

	"uexc/internal/arch"
	"uexc/internal/cpu"
	"uexc/internal/kernel"
	"uexc/internal/tlb"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	TLBFlip      Kind = iota // XOR a tag or permission bit of a live entry
	TLBForceMiss             // force the next few lookups to miss (glitched CAM)
	TLBStaleASID             // rewrite a live entry's ASID field
	Spurious                 // raise one synchronous exception out of thin air
	Storm                    // a burst of back-to-back spurious exceptions
	MemCorrupt               // flip one bit of one word in a user frame
	HandlerFault             // raise a fault while a user handler is in progress
	NumKinds
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case TLBFlip:
		return "tlb-flip"
	case TLBForceMiss:
		return "tlb-force-miss"
	case TLBStaleASID:
		return "tlb-stale-asid"
	case Spurious:
		return "spurious-exception"
	case Storm:
		return "exception-storm"
	case MemCorrupt:
		return "mem-corrupt"
	case HandlerFault:
		return "handler-fault"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event records one applied injection.
type Event struct {
	Kind   Kind
	Inst   uint64 // CPU retired-instruction count at injection
	Detail string
}

// Config tunes an Injector. The zero value selects defaults.
type Config struct {
	// Gap is the mean instruction spacing between scheduled events
	// (default 900).
	Gap int
	// Warmup delays the first event until this many instructions have
	// retired, letting boot and scenario setup finish (default 2000).
	Warmup uint64
	// DisarmHandlerFault suppresses the handler-fault trigger (which
	// otherwise fires once, on the first user-mode instruction observed
	// with the UEX recursion bit set).
	DisarmHandlerFault bool
}

// Injector drives a fault plan against one machine. Attach installs
// its hooks; every injected event runs the invariant Checker and files
// any violation.
type Injector struct {
	k   *kernel.Kernel
	rng *rand.Rand
	cfg Config

	queue  []Kind // guaranteed one-of-each kinds, shuffled, consumed first
	nextAt uint64 // instruction count of the next scheduled event
	storm  int    // remaining storm pulses
	misses int    // remaining forced TLB misses
	armed  bool   // handler-fault pending

	// Checker validates the DESIGN.md §6 invariants after every event.
	Checker *Checker
	// Events is the applied-injection log, in order.
	Events []Event
	// Exercised counts applied events per kind.
	Exercised [NumKinds]uint64
	// Violations collects invariant-checker failures observed after
	// events (the campaign treats any entry as a run failure).
	Violations []error
}

// Attach seeds an injector and installs its hooks on the machine's CPU
// and TLB. Call Detach to remove them.
func Attach(k *kernel.Kernel, seed int64, cfg Config) *Injector {
	if cfg.Gap <= 0 {
		cfg.Gap = 900
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 2000
	}
	inj := &Injector{
		k:       k,
		rng:     rand.New(rand.NewSource(seed)),
		cfg:     cfg,
		armed:   !cfg.DisarmHandlerFault,
		Checker: NewChecker(k),
	}
	// Guarantee at least one attempt of every schedulable kind per run,
	// in a seed-dependent order; afterwards kinds are drawn uniformly.
	base := []Kind{TLBFlip, TLBForceMiss, TLBStaleASID, Spurious, Storm, MemCorrupt}
	for _, i := range inj.rng.Perm(len(base)) {
		inj.queue = append(inj.queue, base[i])
	}
	inj.nextAt = cfg.Warmup + uint64(inj.rng.Intn(cfg.Gap))
	k.CPU.Inject = inj.step
	// step's first action is an unconditional kernel-mode early-out with
	// no side effects (no RNG draw, no counter), so the CPU may skip the
	// hook entirely while in kernel mode. This keeps the block-translation
	// tier (cpu/translate.go) live for kernel code under campaigns.
	k.CPU.InjectUserOnly = true
	k.TLB.InjectMiss = inj.tlbMiss
	return inj
}

// Detach removes the injector's hooks.
func (inj *Injector) Detach() {
	inj.k.CPU.Inject = nil
	inj.k.CPU.InjectUserOnly = false
	inj.k.TLB.InjectMiss = nil
}

// note logs an applied event and runs the invariant checker.
func (inj *Injector) note(kind Kind, detail string) {
	inj.Exercised[kind]++
	inj.Events = append(inj.Events, Event{Kind: kind, Inst: inj.k.CPU.Insts, Detail: detail})
	if err := inj.Checker.Check(); err != nil {
		inj.Violations = append(inj.Violations,
			fmt.Errorf("after %s at inst %d: %w", kind, inj.k.CPU.Insts, err))
	}
}

// step is the cpu.CPU.Inject hook: consulted before every instruction.
func (inj *Injector) step(c *cpu.CPU) *cpu.InjectedFault {
	if c.KernelMode() {
		return nil
	}
	// Handler fault: the first user instruction observed with the UEX
	// bit set is one executing inside a user-level exception handler —
	// fault it, exercising §2's recursion escalation.
	if inj.armed && c.CP0[arch.C0Status]&arch.SrUEX != 0 {
		inj.armed = false
		badva := uint32(kernel.UserTextBase + 0x80)
		detail := "Mod inside user handler"
		if inj.rng.Intn(4) == 0 {
			// On the pinned exception-frame page: unrecoverable, the
			// kernel must kill rather than demote (escalate.go).
			badva = kernel.UserFrameVA + 0x10
			detail = "Mod on frame page inside user handler"
		}
		inj.note(HandlerFault, detail)
		return &cpu.InjectedFault{Code: arch.ExcMod, BadVAddr: badva, HasBV: true}
	}
	if inj.storm > 0 {
		inj.storm--
		return inj.spurious(Storm, "storm pulse")
	}
	if c.Insts < inj.nextAt {
		return nil
	}
	inj.nextAt = c.Insts + uint64(1+inj.rng.Intn(2*inj.cfg.Gap))
	kind := inj.pick()
	switch kind {
	case TLBFlip:
		inj.flip(c)
	case TLBForceMiss:
		inj.misses = 1 + inj.rng.Intn(6)
		inj.note(TLBForceMiss, fmt.Sprintf("next %d lookups forced to miss", inj.misses))
	case TLBStaleASID:
		inj.stale(c)
	case MemCorrupt:
		inj.corrupt()
	case Spurious:
		return inj.spurious(Spurious, "spurious")
	case Storm:
		inj.storm = 2 + inj.rng.Intn(3)
		return inj.spurious(Storm, fmt.Sprintf("storm head (+%d pulses)", inj.storm))
	}
	return nil
}

// pick consumes the guaranteed queue first, then draws uniformly.
func (inj *Injector) pick() Kind {
	if len(inj.queue) > 0 {
		k := inj.queue[0]
		inj.queue = inj.queue[1:]
		return k
	}
	all := []Kind{TLBFlip, TLBForceMiss, TLBStaleASID, Spurious, Storm, MemCorrupt}
	return all[inj.rng.Intn(len(all))]
}

// requeue defers a kind whose preconditions were not met (e.g. no live
// TLB entries yet) to a later slot.
func (inj *Injector) requeue(k Kind) { inj.queue = append(inj.queue, k) }

// spurious builds an injected synchronous exception that every
// delivery mode can survive: Mod or TLBL with a bad address inside the
// user's own text or heap. Handlers resume and the re-executed
// instruction does not fault (there was never a real protection
// problem), or the bounded signal fallback terminates the process
// deterministically.
func (inj *Injector) spurious(kind Kind, detail string) *cpu.InjectedFault {
	code := arch.ExcMod
	if inj.rng.Intn(3) == 0 {
		code = arch.ExcTLBL
	}
	var badva uint32
	switch inj.rng.Intn(3) {
	case 0:
		badva = kernel.UserTextBase + uint32(inj.rng.Intn(64))*4
	case 1:
		badva = kernel.UserDataBase + uint32(inj.rng.Intn(4))*arch.PageSize + uint32(inj.rng.Intn(1024))*4
	default:
		badva = kernel.UserStackTop - 16 - uint32(inj.rng.Intn(256))*4
	}
	inj.note(kind, fmt.Sprintf("%s: %s at va %#x", detail, arch.ExcName(code), badva))
	return &cpu.InjectedFault{Code: code, BadVAddr: badva, HasBV: true}
}

// liveSlots returns the indices of non-empty TLB entries.
func (inj *Injector) liveSlots(global bool) []int {
	var idxs []int
	for i := 0; i < tlb.Entries; i++ {
		e := inj.k.TLB.Read(i)
		if e.Hi == 0 && e.Lo == 0 {
			continue
		}
		if !global && e.Global() {
			continue
		}
		idxs = append(idxs, i)
	}
	return idxs
}

// flip XORs one bit of a live entry: a VPN tag bit (CAM upset) or one
// of the V/D/G/N permission bits (data-array upset). PFN and U bits
// are excluded — see the package comment.
func (inj *Injector) flip(c *cpu.CPU) {
	idxs := inj.liveSlots(true)
	if len(idxs) == 0 {
		inj.requeue(TLBFlip)
		return
	}
	slot := idxs[inj.rng.Intn(len(idxs))]
	var hiMask, loMask uint32
	if inj.rng.Intn(2) == 0 {
		hiMask = 1 << (arch.PageShift + uint(inj.rng.Intn(14)))
	} else {
		bits := []uint32{tlb.LoV, tlb.LoD, tlb.LoG, tlb.LoN}
		loMask = bits[inj.rng.Intn(len(bits))]
	}
	before, after := c.TLB.FlipBits(slot, hiMask, loMask)
	inj.note(TLBFlip, fmt.Sprintf("slot %d: hi %#x->%#x lo %#x->%#x",
		slot, before.Hi, after.Hi, before.Lo, after.Lo))
}

// stale rewrites a live non-global entry's ASID field so it stops
// matching its owner (and may shadow another address space).
func (inj *Injector) stale(c *cpu.CPU) {
	idxs := inj.liveSlots(false)
	if len(idxs) == 0 {
		inj.requeue(TLBStaleASID)
		return
	}
	slot := idxs[inj.rng.Intn(len(idxs))]
	delta := uint32(1+inj.rng.Intn(63)) << tlb.HiASIDShft & tlb.HiASIDMask
	before, after := c.TLB.FlipBits(slot, delta, 0)
	inj.note(TLBStaleASID, fmt.Sprintf("slot %d: asid %d->%d",
		slot, before.ASID(), after.ASID()))
}

// corrupt flips one bit of one word in the allocated user-frame pool.
// Kernel structures live below FramePhysBase and are never touched.
func (inj *Injector) corrupt() {
	lo, hi := uint32(kernel.FramePhysBase), inj.k.FrameWatermark()
	if hi <= lo {
		inj.requeue(MemCorrupt)
		return
	}
	pa := lo + uint32(inj.rng.Intn(int((hi-lo)/4)))*4
	mask := uint32(1) << uint(inj.rng.Intn(32))
	before, after, err := inj.k.Mem.CorruptWord(pa, mask)
	if err != nil {
		inj.requeue(MemCorrupt)
		return
	}
	inj.note(MemCorrupt, fmt.Sprintf("pa %#x: %#x->%#x", pa, before, after))
}

// tlbMiss is the tlb.TLB.InjectMiss hook.
func (inj *Injector) tlbMiss(va uint32, asid uint8) bool {
	if inj.misses <= 0 {
		return false
	}
	inj.misses--
	return true
}
