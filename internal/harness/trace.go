package harness

import (
	"fmt"
	"strings"

	"uexc/internal/core"
	"uexc/internal/cpu"
	"uexc/internal/userrt"
)

// TraceDelivery renders Figures 1 and 2 as event traces: the actual
// sequence of steps one exception takes through the Unix machinery
// (Figure 1: multiple domain crossings and register saves) versus the
// fast path (Figure 2: one kernel excursion, return without the
// kernel).
func TraceDelivery() (string, error) {
	var b strings.Builder

	unix, err := traceOne(core.ModeUltrix)
	if err != nil {
		return "", err
	}
	b.WriteString("Figure 1: one breakpoint through the Unix signal machinery\n")
	b.WriteString("==========================================================\n")
	b.WriteString(unix)
	b.WriteByte('\n')

	fast, err := traceOne(core.ModeFast)
	if err != nil {
		return "", err
	}
	b.WriteString("Figure 2: the same breakpoint through the fast path\n")
	b.WriteString("===================================================\n")
	b.WriteString(fast)
	return b.String(), nil
}

// traceOne runs a single benched exception under the mode and collects
// the kernel event log plus user-level milestones.
func traceOne(mode core.Mode) (string, error) {
	var prog, entrySym, exitSym string
	switch mode {
	case core.ModeUltrix:
		prog = simpleUltrixTrace
		entrySym = userrt.SymSkipSigHandler
		exitSym = userrt.SymSigHandlerRet
	case core.ModeFast:
		prog = simpleFastTrace
		entrySym = userrt.SymSkipHandler
		exitSym = userrt.SymFexcLowRet
	default:
		return "", fmt.Errorf("harness: trace supports Ultrix and Fast")
	}

	m, err := core.NewMachine()
	if err != nil {
		return "", err
	}
	if err := m.LoadProgram(prog); err != nil {
		return "", err
	}
	m.K.TraceEvents = true

	type ev struct {
		cyc  uint64
		what string
	}
	var events []ev
	var started bool
	c := m.CPU()
	c.Trace = func(e cpu.Exception) {
		if e.PC == m.Sym("bench_fault") {
			started = true
			events = append(events, ev{c.Cycles, "hardware raises exception, vectors to kernel"})
		} else if started && e.User {
			events = append(events, ev{c.Cycles, "hardware raises exception (handler path syscall)"})
		}
	}
	kStart := 0
	watches := map[uint32]func(*cpu.CPU){
		m.Sym("bench_fault"): func(c *cpu.CPU) {
			if !started {
				kStart = len(m.K.Events)
			}
		},
		m.Sym(entrySym): func(c *cpu.CPU) {
			if started {
				events = append(events, ev{c.Cycles, "user-level handler entered"})
			}
		},
		m.Sym(exitSym): func(c *cpu.CPU) {
			if started {
				events = append(events, ev{c.Cycles, "user-level handler returns"})
			}
		},
		m.Sym("bench_resume"): func(c *cpu.CPU) {
			if started {
				events = append(events, ev{c.Cycles, "application resumes after faulting instruction"})
				started = false
			}
		},
	}
	if err := m.RunWithWatches(10_000_000, watches); err != nil {
		return "", err
	}

	// Merge kernel events (from kStart) with user milestones by cycle,
	// dropping anything after resumption (the exit syscall).
	var resumeCyc uint64
	for _, e := range events {
		if strings.HasPrefix(e.what, "application resumes") {
			resumeCyc = e.cyc
		}
	}
	for _, ke := range m.K.Events[kStart:] {
		if resumeCyc != 0 && ke.Cycle > resumeCyc {
			continue
		}
		events = append(events, ev{ke.Cycle, ke.What})
	}
	// Insertion sort by cycle (few events).
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].cyc < events[j-1].cyc; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	var b strings.Builder
	var base uint64
	if len(events) > 0 {
		base = events[0].cyc
	}
	for _, e := range events {
		fmt.Fprintf(&b, "  %7.2f µs  %s\n", core.Micros(e.cyc-base), e.what)
	}
	return b.String(), nil
}

const simpleFastTrace = `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __skip_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, 1 << 9
	jal   __uexc_enable
	nop
	break
bench_fault:
	break
bench_resume:
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop
`

const simpleUltrixTrace = `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    a0, 5
	la    a1, __skip_sig_handler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	break
bench_fault:
	break
bench_resume:
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop
`
