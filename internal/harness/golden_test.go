package harness

// Golden-file tests: every table and ablation the harness can render
// is pinned byte-for-byte under testdata/. The simulator is fully
// deterministic, so any diff is a real change to measured behavior —
// review it, then refresh with:
//
//	go test ./internal/harness -run TestGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"uexc/internal/report"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s--- want ---\n%s"+
			"(if the change is intentional, refresh with -update)", name, got, want)
	}
}

func TestGoldenExhibits(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every table")
	}
	cases := []struct {
		name string
		fn   func() (*report.Table, error)
	}{
		{"table1", Table1},
		{"table2", Table2},
		{"table3", Table3},
		{"table4", Table4},
		{"table5", Table5},
		{"ablation_hardware", AblationHardware},
		{"ablation_eager", AblationEager},
		{"ablation_subpage", AblationSubpage},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			tbl, err := c.fn()
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			checkGolden(t, c.name, tbl.Render())
		})
	}
}
