package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"uexc/internal/arch"
	"uexc/internal/core"
	"uexc/internal/cpu"
	"uexc/internal/faultinject"
	"uexc/internal/kernel"
	"uexc/internal/parallel"
	"uexc/internal/progen"
	"uexc/internal/verdict"
)

// campaignBudgetFloor is the legacy flat run bound: the bounded
// in-program handlers and the watchdog make every uncorrupted fault
// path converge far below it, so reaching the budget means either an
// engine bug or an injected corruption that defeated the program's own
// runaway bound — the verdict layer tells the two apart.
const campaignBudgetFloor = 3_000_000

// campaignBudgetFor scales the run bound with the campaign program's
// size, mirroring difftest.BudgetFor: instructions emitted × a
// per-mode worst-case delivery multiplier plus a fixed base, floored
// at the legacy flat bound so no existing seed's bound shrinks. The
// fixed campaign program is small, so the floor dominates today; the
// formula keeps the bound honest if the program grows.
func campaignBudgetFor(mode core.Mode) uint64 {
	mult := uint64(1200) // ModeUltrix: full signal round trip per fault
	switch mode {
	case core.ModeFast:
		mult = 500
	case core.ModeHardware:
		mult = 300
	}
	scaled := 250_000 + uint64(progen.CountInsts(campaignProg(mode)))*mult
	if scaled < campaignBudgetFloor {
		return campaignBudgetFloor
	}
	return scaled
}

// RequiredCoverage lists the event/behaviour categories a campaign
// must exercise at least once to be considered a meaningful sweep.
var RequiredCoverage = []string{
	"tlb-flip",
	"spurious-exception",
	"uex-recursion",
	"fast-ultrix-fallback",
	"watchdog-livelock",
}

// CampaignResult aggregates a fault-injection campaign.
type CampaignResult struct {
	Seeds int
	Runs  int

	// Exercised counts injected events by kind plus the hardening
	// behaviours they provoked (recursion escalations, fallbacks,
	// kills, TLB scrubs, watchdog detections).
	Exercised map[string]uint64
	// Outcomes tallies runs by outcome class.
	Outcomes map[string]int
	// Failures lists determinism breaks, invariant violations, panics,
	// and unattributable budget exhaustions; empty means the campaign
	// passed.
	Failures []string

	// Verdicts tallies the typed per-run classifications (first run of
	// each replay pair; DESIGN.md §14).
	Verdicts verdict.Counts
	// Classified lists the runs that carry a non-failing non-clean
	// verdict (KnownDivergent, BudgetScaled) with their witness detail,
	// in campaign order — visible, but not failures.
	Classified []string

	// Fingerprints records each seed×mode run's determinism fingerprint
	// in campaign order (seed-major, mode-minor), so two campaigns —
	// e.g. a serial and a parallel run over the same seeds — can be
	// compared for byte-identical machine behaviour, not just identical
	// summaries.
	Fingerprints []string
}

// Ok reports whether the campaign passed: no failures and every
// required category exercised.
func (r *CampaignResult) Ok() bool {
	return len(r.Failures) == 0 && len(r.MissingCoverage()) == 0
}

// MissingCoverage returns the required categories never exercised.
func (r *CampaignResult) MissingCoverage() []string {
	var missing []string
	for _, k := range RequiredCoverage {
		if r.Exercised[k] == 0 {
			missing = append(missing, k)
		}
	}
	return missing
}

// Summary renders the campaign report.
func (r *CampaignResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault campaign: %d seeds x 3 modes x 2 replays = %d runs\n", r.Seeds, r.Runs)
	keys := make([]string, 0, len(r.Exercised))
	for k := range r.Exercised {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("exercised:\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-24s %d\n", k, r.Exercised[k])
	}
	outs := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		outs = append(outs, k)
	}
	sort.Strings(outs)
	b.WriteString("outcomes:\n")
	for _, k := range outs {
		fmt.Fprintf(&b, "  %-24s %d\n", k, r.Outcomes[k])
	}
	b.WriteString("verdicts:\n")
	for k := verdict.Kind(0); k < verdict.NumKinds; k++ {
		fmt.Fprintf(&b, "  %-24s %d\n", k, r.Verdicts[k])
	}
	if len(r.Classified) > 0 {
		b.WriteString("classified (non-failing):\n")
		for _, c := range r.Classified {
			fmt.Fprintf(&b, "  %s\n", c)
		}
	}
	if missing := r.MissingCoverage(); len(missing) > 0 {
		fmt.Fprintf(&b, "MISSING COVERAGE: %s\n", strings.Join(missing, ", "))
	}
	if len(r.Failures) > 0 {
		fmt.Fprintf(&b, "FAILURES (%d):\n", len(r.Failures))
		for _, f := range r.Failures {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	} else {
		b.WriteString("zero panics, zero invariant violations, deterministic per-seed outcomes\n")
	}
	return b.String()
}

// RunDigest is one run's digest. Every field is exported and
// JSON-tagged because shards are journaled verbatim by the serving
// layer's checkpoint path (DESIGN.md §12): a digest written by one
// process must fold identically when replayed by the next.
type RunDigest struct {
	Fingerprint string                       `json:"fp"`
	Outcome     string                       `json:"outcome"`
	Exercised   [faultinject.NumKinds]uint64 `json:"exercised"`
	Stats       kernel.Stats                 `json:"stats"`
	Failures    []string                     `json:"failures,omitempty"`

	// Verdict is the run's typed classification (DESIGN.md §14); the
	// zero value (Clean) is omitted so digests journaled before the
	// verdict layer replay unchanged. VerdictDetail carries the witness
	// for non-clean verdicts — e.g. the injected-corruption events that
	// attribute a budget exhaustion to KnownDivergent.
	Verdict       verdict.Kind `json:"verdict,omitempty"`
	VerdictDetail string       `json:"verdict_detail,omitempty"`
}

// FaultCampaign replays `seeds` fault plans under all three delivery
// modes, each run twice, asserting determinism (identical fingerprints
// per replay) and the DESIGN.md §6 invariants after every injected
// event. A watchdog livelock probe (no injection, deliberate state
// cycle) runs once per mode. Progress goes to w when non-nil. It is
// the serial (one-worker) form of FaultCampaignParallel.
func FaultCampaign(seeds int, w io.Writer) (*CampaignResult, error) {
	return FaultCampaignParallel(seeds, 1, w)
}

// CampaignShard is one shard of a campaign: a seed×mode pair run
// twice (run + determinism replay), or one livelock probe. Shards are
// independent — each runs on its own self-contained machine — so the
// engine may execute them in any order on any worker, and a shard's
// digest is a deterministic function of (seed, mode) alone, which is
// what makes journaled shards resumable.
type CampaignShard struct {
	First        RunDigest `json:"first,omitempty"` // seed×mode shards
	Again        RunDigest `json:"again,omitempty"`
	ProbeOutcome string    `json:"probe_outcome,omitempty"` // livelock-probe shards
	ProbeFail    string    `json:"probe_fail,omitempty"`
}

// FaultCampaignParallel shards the campaign's runs across `workers`
// goroutines (0 selects GOMAXPROCS) via the work-stealing engine and
// merges the shard results strictly in seed-major, mode-minor order —
// never completion order — so the CampaignResult, its Summary, and the
// per-run progress stream are byte-identical to the serial run for any
// worker count. Machines are recycled through a pool, so a campaign
// allocates only about one address space per worker rather than one
// per run.
func FaultCampaignParallel(seeds, workers int, w io.Writer) (*CampaignResult, error) {
	return FaultCampaignCtx(context.Background(), nil, seeds, workers, w)
}

// FaultCampaignCtx is FaultCampaignParallel under a context and an
// optional caller-owned machine pool. A nil pool gets a private one; a
// shared pool (the serving layer's) recycles booted machines across
// campaigns, not just within one. Cancelling the context aborts the
// sweep after at most the runs already in flight complete and returns
// the context's error — partial results are never reported, so a
// campaign result is either complete and byte-identical to the serial
// run or absent.
func FaultCampaignCtx(ctx context.Context, pool *core.MachinePool, seeds, workers int, w io.Writer) (*CampaignResult, error) {
	return FaultCampaignResumeCtx(ctx, pool, seeds, workers, w, nil, 0, nil)
}

// campaignModes is the fixed mode order of a campaign's shard layout.
var campaignModes = []core.Mode{core.ModeUltrix, core.ModeFast, core.ModeHardware}

// CampaignShards returns the task count of a `seeds` campaign: the
// seed×mode replay pairs plus the three per-mode watchdog probes.
func CampaignShards(seeds int) int {
	return seeds*len(campaignModes) + len(campaignModes)
}

// ShardLine renders shard i's progress line from its digest — the
// single formatting point for live shards, checkpointed shards
// replayed on resume, and shards merged from remote workers by the
// fleet coordinator (DESIGN.md §13), so all three are byte-identical
// by construction.
func ShardLine(i, seeds int, t CampaignShard) string {
	if i < seeds*len(campaignModes) {
		seed, mode := i/len(campaignModes), campaignModes[i%len(campaignModes)]
		outcome := t.First.Outcome
		if t.First.Verdict != verdict.Clean {
			outcome += " [" + t.First.Verdict.String() + "]"
		}
		return fmt.Sprintf("%-28s %s\n",
			fmt.Sprintf("seed %d mode %s:", seed, mode), outcome)
	}
	mode := campaignModes[i-seeds*len(campaignModes)]
	return fmt.Sprintf("%-28s %s\n",
		fmt.Sprintf("livelock probe %s:", mode), t.ProbeOutcome)
}

// RunShard executes shard i of a `seeds`-sized campaign on a pooled
// machine and returns its digest. It is the single shard-execution
// point: the local sweep below and the serving layer's shard-range
// jobs (the fleet coordinator's dispatch unit) both call it, so a
// digest computed on a remote worker is byte-identical to one computed
// locally — the property that lets a distributed campaign merge into
// the serial stream.
func RunShard(pool *core.MachinePool, seeds, i int) CampaignShard {
	var t CampaignShard
	if i < seeds*len(campaignModes) {
		seed, mode := i/len(campaignModes), campaignModes[i%len(campaignModes)]
		t.First = campaignRun(pool, int64(seed), mode)
		t.Again = campaignRun(pool, int64(seed), mode)
	} else {
		mode := campaignModes[i-seeds*len(campaignModes)]
		t.ProbeOutcome, t.ProbeFail = livelockProbe(pool, mode)
	}
	return t
}

// FaultCampaignResumeCtx is FaultCampaignCtx with checkpoint/resume:
// `done` holds the digests of the contiguous shard prefix recovered
// from a durable checkpoint (nil for a fresh run), which are folded
// and re-streamed without re-execution; `save`, when non-nil, is
// called with the grown contiguous prefix every `every` merged shards
// (and at completion), in order, never concurrently — the §12
// checkpoint cadence. The merged result, summary, and progress stream
// are byte-identical to an undisturbed run at any worker count and
// any interruption point, because shards are deterministic and the
// merge is strictly index-ordered.
func FaultCampaignResumeCtx(ctx context.Context, pool *core.MachinePool, seeds, workers int, w io.Writer,
	done []CampaignShard, every int, save func(prefix []CampaignShard) error) (*CampaignResult, error) {
	if seeds <= 0 {
		seeds = 30
	}
	res := &CampaignResult{
		Seeds:     seeds,
		Exercised: make(map[string]uint64),
		Outcomes:  make(map[string]int),
	}
	modes := campaignModes

	// Task layout: [0, seeds×3) are the seed×mode replay pairs in
	// seed-major order; the last three are the per-mode watchdog
	// probes (a deliberate pure state cycle — no stores, no new code —
	// that only the livelock detector can classify).
	nTasks := CampaignShards(seeds)
	if len(done) > nTasks {
		return nil, fmt.Errorf("fault campaign: checkpoint has %d shards but a %d-seed campaign has only %d",
			len(done), seeds, nTasks)
	}
	if pool == nil {
		pool = &core.MachinePool{}
	}

	// Replay the checkpointed prefix into the progress stream, then let
	// the ordered writer continue from the first live shard.
	if w != nil {
		for i, t := range done {
			io.WriteString(w, ShardLine(i, seeds, t))
		}
	}
	progress := parallel.NewOrderedWriterAt(w, len(done))

	tasks, err := parallel.MapResumeCtx(ctx, workers, nTasks, done, every, save, func(i int) CampaignShard {
		t := RunShard(pool, seeds, i)
		progress.Emit(i, ShardLine(i, seeds, t))
		return t
	})
	if err != nil {
		return nil, fmt.Errorf("fault campaign aborted: %w", err)
	}

	// Deterministic merge: fold shard digests in task-index order,
	// reproducing exactly the accumulation the serial loop performed.
	for i := 0; i < seeds*len(modes); i++ {
		seed, mode := i/len(modes), modes[i%len(modes)]
		first, again := tasks[i].First, tasks[i].Again
		res.Runs += 2

		tag := fmt.Sprintf("seed %d mode %s", seed, mode)
		for _, f := range first.Failures {
			res.Failures = append(res.Failures, tag+": "+f)
		}
		for _, f := range again.Failures {
			res.Failures = append(res.Failures, tag+" (replay): "+f)
		}
		if first.Fingerprint != again.Fingerprint {
			res.Failures = append(res.Failures,
				fmt.Sprintf("%s: nondeterministic (fingerprints differ:\n  %s\n  %s)",
					tag, first.Fingerprint, again.Fingerprint))
		}
		res.Fingerprints = append(res.Fingerprints, first.Fingerprint)

		// Count exercise from the first run only (the replay is a
		// determinism witness, not extra coverage).
		for k := faultinject.Kind(0); k < faultinject.NumKinds; k++ {
			res.Exercised[k.String()] += first.Exercised[k]
		}
		res.Exercised["uex-recursion"] += first.Stats.UEXRecursions
		res.Exercised["fast-ultrix-fallback"] += first.Stats.FastFallbacks
		res.Exercised["recursion-kill"] += first.Stats.RecursionKills
		res.Exercised["tlb-scrub"] += first.Stats.TLBScrubs
		res.Outcomes[first.Outcome]++

		// Verdicts count the first run of each replay pair; the replay is
		// a determinism witness, not a second classification.
		res.Verdicts.Add(first.Verdict)
		switch first.Verdict {
		case verdict.KnownDivergent, verdict.BudgetScaled:
			res.Classified = append(res.Classified, tag+": "+first.VerdictDetail)
		}
	}
	for j := 0; j < len(modes); j++ {
		t := tasks[seeds*len(modes)+j]
		res.Runs++
		res.Outcomes[t.ProbeOutcome]++
		if t.ProbeFail != "" {
			res.Failures = append(res.Failures,
				fmt.Sprintf("livelock probe mode %s: %s", modes[j], t.ProbeFail))
		} else {
			res.Exercised["watchdog-livelock"]++
		}
	}
	return res, nil
}

// testHookPostLoad, when non-nil, runs after each campaign run's
// program loads — the test seam for the recover-and-classify contract:
// a hook that panics must surface as a recovered EngineBug verdict,
// never take the process down.
var testHookPostLoad func(m *core.Machine)

// campaignRun executes one seeded, injected scenario and digests it.
// Go panics are converted into failures: the machine must degrade
// through typed errors, never take the simulator down. The machine
// comes from (and, barring a panic, returns to) pool; a machine that
// panicked mid-run is dropped rather than recycled, since its state is
// no longer trustworthy.
func campaignRun(pool *core.MachinePool, seed int64, mode core.Mode) (rep RunDigest) {
	var (
		m   *core.Machine
		err error
	)
	healthy := false
	defer func() {
		if r := recover(); r != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("panic: %v", r))
			rep.Outcome = "panic"
			rep.Fingerprint = "panic"
			healthy = false // drop the machine: its state is untrustworthy
		}
		// Any failure — recovered panic, invariant violation, boot/load
		// error, unattributable budget exhaustion — is an engine bug,
		// overriding a provisional KnownDivergent: a corrupted run may
		// diverge, but it must never break an invariant.
		if len(rep.Failures) > 0 {
			rep.Verdict = verdict.EngineBug
			if rep.VerdictDetail == "" {
				rep.VerdictDetail = rep.Failures[0]
			}
		}
		if healthy {
			pool.Put(m)
		}
	}()

	m, err = pool.Get()
	if err != nil {
		rep.Failures = append(rep.Failures, "boot: "+err.Error())
		return rep
	}
	healthy = true
	inj := faultinject.Attach(m.K, seed, faultinject.Config{})
	if err := m.LoadProgram(campaignProg(mode)); err != nil {
		rep.Failures = append(rep.Failures, "load: "+err.Error())
		return rep
	}
	if testHookPostLoad != nil {
		testHookPostLoad(m)
	}
	if mode == core.ModeHardware {
		// Claim Mod only: TLB refills must keep reaching the kernel's
		// UTLB vector (the user handler cannot build translations).
		m.EnableHardwareDelivery(1 << arch.ExcMod)
	}

	runErr := m.Run(campaignBudgetFor(mode))

	// Final invariant sweep after the run settles.
	if err := inj.Checker.Check(); err != nil {
		inj.Violations = append(inj.Violations, fmt.Errorf("final sweep: %w", err))
	}
	for _, v := range inj.Violations {
		rep.Failures = append(rep.Failures, "invariant: "+v.Error())
	}

	switch {
	case runErr == nil:
		rep.Outcome = "survived"
	case errors.Is(runErr, cpu.ErrLivelock):
		rep.Outcome = "livelock detected"
	case errors.Is(runErr, kernel.ErrRecursion):
		rep.Outcome = "recursion kill"
	case errors.Is(runErr, kernel.ErrKernelPanic):
		rep.Outcome = "kernel panic"
		rep.Failures = append(rep.Failures, "kernel panic: "+runErr.Error())
	case errors.Is(runErr, cpu.ErrBudget):
		rep.Outcome = "budget exhausted"
		if w := corruptionWitness(inj.Exercised); w != "" {
			// Injected state corruption (seed 2227's class) can defeat the
			// program's own runaway bound, making the fault loop genuinely
			// infinite; with the witness in the digest this is a classified
			// divergence, not an engine bug.
			rep.Verdict = verdict.KnownDivergent
			rep.VerdictDetail = "budget exhausted under injected corruption (" + w + ")"
		} else {
			rep.Failures = append(rep.Failures, "budget exhausted: "+runErr.Error())
		}
	case strings.Contains(runErr.Error(), "process exited with status"):
		rep.Outcome = "signal termination"
	default:
		rep.Outcome = "error"
		rep.Failures = append(rep.Failures, "unexpected error: "+runErr.Error())
	}

	rep.Exercised = inj.Exercised
	rep.Stats = m.K.Stats

	var events strings.Builder
	for _, e := range inj.Events {
		fmt.Fprintf(&events, "[%d %s %s]", e.Inst, e.Kind, e.Detail)
	}
	errText := ""
	if runErr != nil {
		errText = runErr.Error()
	}
	rep.Fingerprint = fmt.Sprintf("outcome=%s err=%q console=%q stats=%+v cycles=%d insts=%d events=%s",
		rep.Outcome, errText, m.K.Console(), m.K.Stats, m.CPU().Cycles, m.CPU().Insts, events.String())
	return rep
}

// corruptionWitness renders the injected state-corruption events that
// can defeat a program's own runaway bound. Only MemCorrupt, TLBFlip,
// and TLBStaleASID qualify — they rewrite memory or translations
// behind the program's back — whereas Spurious, Storm, and
// HandlerFault merely deliver extra exceptions through architected
// paths, so a failure under those alone is still an engine bug.
func corruptionWitness(ex [faultinject.NumKinds]uint64) string {
	var parts []string
	for _, k := range []faultinject.Kind{
		faultinject.MemCorrupt, faultinject.TLBFlip, faultinject.TLBStaleASID,
	} {
		if ex[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s x%d", k, ex[k]))
		}
	}
	return strings.Join(parts, ", ")
}

// livelockProbe runs the deliberate-livelock program with no injector
// and expects the CPU watchdog to stop it with a typed LivelockError.
func livelockProbe(pool *core.MachinePool, mode core.Mode) (outcome, failure string) {
	m, err := pool.Get()
	if err != nil {
		return "error", "boot: " + err.Error()
	}
	defer pool.Put(m)
	if err := m.LoadProgram(livelockProg()); err != nil {
		return "error", "load: " + err.Error()
	}
	if mode == core.ModeHardware {
		m.EnableHardwareDelivery(1 << arch.ExcMod)
	}
	runErr := m.Run(campaignBudgetFor(mode))
	var ll *cpu.LivelockError
	if errors.As(runErr, &ll) {
		return "livelock detected", ""
	}
	return "error", fmt.Sprintf("want LivelockError, got %v", runErr)
}
