package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"uexc/internal/arch"
	"uexc/internal/core"
	"uexc/internal/cpu"
	"uexc/internal/faultinject"
	"uexc/internal/kernel"
	"uexc/internal/parallel"
)

// campaignBudget bounds one injected run; the bounded in-program
// handlers and the watchdog make every fault path converge far below
// it, so reaching the budget is itself a campaign failure.
const campaignBudget = 3_000_000

// RequiredCoverage lists the event/behaviour categories a campaign
// must exercise at least once to be considered a meaningful sweep.
var RequiredCoverage = []string{
	"tlb-flip",
	"spurious-exception",
	"uex-recursion",
	"fast-ultrix-fallback",
	"watchdog-livelock",
}

// CampaignResult aggregates a fault-injection campaign.
type CampaignResult struct {
	Seeds int
	Runs  int

	// Exercised counts injected events by kind plus the hardening
	// behaviours they provoked (recursion escalations, fallbacks,
	// kills, TLB scrubs, watchdog detections).
	Exercised map[string]uint64
	// Outcomes tallies runs by outcome class.
	Outcomes map[string]int
	// Failures lists determinism breaks, invariant violations, panics,
	// and budget exhaustions; empty means the campaign passed.
	Failures []string

	// Fingerprints records each seed×mode run's determinism fingerprint
	// in campaign order (seed-major, mode-minor), so two campaigns —
	// e.g. a serial and a parallel run over the same seeds — can be
	// compared for byte-identical machine behaviour, not just identical
	// summaries.
	Fingerprints []string
}

// Ok reports whether the campaign passed: no failures and every
// required category exercised.
func (r *CampaignResult) Ok() bool {
	return len(r.Failures) == 0 && len(r.MissingCoverage()) == 0
}

// MissingCoverage returns the required categories never exercised.
func (r *CampaignResult) MissingCoverage() []string {
	var missing []string
	for _, k := range RequiredCoverage {
		if r.Exercised[k] == 0 {
			missing = append(missing, k)
		}
	}
	return missing
}

// Summary renders the campaign report.
func (r *CampaignResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault campaign: %d seeds x 3 modes x 2 replays = %d runs\n", r.Seeds, r.Runs)
	keys := make([]string, 0, len(r.Exercised))
	for k := range r.Exercised {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("exercised:\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-24s %d\n", k, r.Exercised[k])
	}
	outs := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		outs = append(outs, k)
	}
	sort.Strings(outs)
	b.WriteString("outcomes:\n")
	for _, k := range outs {
		fmt.Fprintf(&b, "  %-24s %d\n", k, r.Outcomes[k])
	}
	if missing := r.MissingCoverage(); len(missing) > 0 {
		fmt.Fprintf(&b, "MISSING COVERAGE: %s\n", strings.Join(missing, ", "))
	}
	if len(r.Failures) > 0 {
		fmt.Fprintf(&b, "FAILURES (%d):\n", len(r.Failures))
		for _, f := range r.Failures {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	} else {
		b.WriteString("zero panics, zero invariant violations, deterministic per-seed outcomes\n")
	}
	return b.String()
}

// campaignReport is one run's digest.
type campaignReport struct {
	fingerprint string
	outcome     string
	exercised   [faultinject.NumKinds]uint64
	stats       kernel.Stats
	failures    []string
}

// FaultCampaign replays `seeds` fault plans under all three delivery
// modes, each run twice, asserting determinism (identical fingerprints
// per replay) and the DESIGN.md §6 invariants after every injected
// event. A watchdog livelock probe (no injection, deliberate state
// cycle) runs once per mode. Progress goes to w when non-nil. It is
// the serial (one-worker) form of FaultCampaignParallel.
func FaultCampaign(seeds int, w io.Writer) (*CampaignResult, error) {
	return FaultCampaignParallel(seeds, 1, w)
}

// campaignTask is one shard of a campaign: a seed×mode pair run twice
// (run + determinism replay), or one livelock probe. Shards are
// independent — each runs on its own self-contained machine — so the
// engine may execute them in any order on any worker.
type campaignTask struct {
	first, again campaignReport // seed×mode shards
	probeOutcome string         // livelock-probe shards
	probeFail    string
}

// FaultCampaignParallel shards the campaign's runs across `workers`
// goroutines (0 selects GOMAXPROCS) via the work-stealing engine and
// merges the shard results strictly in seed-major, mode-minor order —
// never completion order — so the CampaignResult, its Summary, and the
// per-run progress stream are byte-identical to the serial run for any
// worker count. Machines are recycled through a pool, so a campaign
// allocates only about one address space per worker rather than one
// per run.
func FaultCampaignParallel(seeds, workers int, w io.Writer) (*CampaignResult, error) {
	return FaultCampaignCtx(context.Background(), nil, seeds, workers, w)
}

// FaultCampaignCtx is FaultCampaignParallel under a context and an
// optional caller-owned machine pool. A nil pool gets a private one; a
// shared pool (the serving layer's) recycles booted machines across
// campaigns, not just within one. Cancelling the context aborts the
// sweep after at most the runs already in flight complete and returns
// the context's error — partial results are never reported, so a
// campaign result is either complete and byte-identical to the serial
// run or absent.
func FaultCampaignCtx(ctx context.Context, pool *core.MachinePool, seeds, workers int, w io.Writer) (*CampaignResult, error) {
	if seeds <= 0 {
		seeds = 30
	}
	res := &CampaignResult{
		Seeds:     seeds,
		Exercised: make(map[string]uint64),
		Outcomes:  make(map[string]int),
	}
	modes := []core.Mode{core.ModeUltrix, core.ModeFast, core.ModeHardware}

	// Task layout: [0, seeds×3) are the seed×mode replay pairs in
	// seed-major order; the last three are the per-mode watchdog
	// probes (a deliberate pure state cycle — no stores, no new code —
	// that only the livelock detector can classify).
	nTasks := seeds*len(modes) + len(modes)
	progress := parallel.NewOrderedWriter(w)
	if pool == nil {
		pool = &core.MachinePool{}
	}

	tasks, err := parallel.MapCtx(ctx, workers, nTasks, func(i int) campaignTask {
		var t campaignTask
		if i < seeds*len(modes) {
			seed, mode := i/len(modes), modes[i%len(modes)]
			t.first = campaignRun(pool, int64(seed), mode)
			t.again = campaignRun(pool, int64(seed), mode)
			progress.Emit(i, fmt.Sprintf("%-28s %s\n",
				fmt.Sprintf("seed %d mode %s:", seed, mode), t.first.outcome))
			return t
		}
		mode := modes[i-seeds*len(modes)]
		t.probeOutcome, t.probeFail = livelockProbe(pool, mode)
		progress.Emit(i, fmt.Sprintf("%-28s %s\n",
			fmt.Sprintf("livelock probe %s:", mode), t.probeOutcome))
		return t
	})
	if err != nil {
		return nil, fmt.Errorf("fault campaign aborted: %w", err)
	}

	// Deterministic merge: fold shard digests in task-index order,
	// reproducing exactly the accumulation the serial loop performed.
	for i := 0; i < seeds*len(modes); i++ {
		seed, mode := i/len(modes), modes[i%len(modes)]
		first, again := tasks[i].first, tasks[i].again
		res.Runs += 2

		tag := fmt.Sprintf("seed %d mode %s", seed, mode)
		for _, f := range first.failures {
			res.Failures = append(res.Failures, tag+": "+f)
		}
		for _, f := range again.failures {
			res.Failures = append(res.Failures, tag+" (replay): "+f)
		}
		if first.fingerprint != again.fingerprint {
			res.Failures = append(res.Failures,
				fmt.Sprintf("%s: nondeterministic (fingerprints differ:\n  %s\n  %s)",
					tag, first.fingerprint, again.fingerprint))
		}
		res.Fingerprints = append(res.Fingerprints, first.fingerprint)

		// Count exercise from the first run only (the replay is a
		// determinism witness, not extra coverage).
		for k := faultinject.Kind(0); k < faultinject.NumKinds; k++ {
			res.Exercised[k.String()] += first.exercised[k]
		}
		res.Exercised["uex-recursion"] += first.stats.UEXRecursions
		res.Exercised["fast-ultrix-fallback"] += first.stats.FastFallbacks
		res.Exercised["recursion-kill"] += first.stats.RecursionKills
		res.Exercised["tlb-scrub"] += first.stats.TLBScrubs
		res.Outcomes[first.outcome]++
	}
	for j := 0; j < len(modes); j++ {
		t := tasks[seeds*len(modes)+j]
		res.Runs++
		res.Outcomes[t.probeOutcome]++
		if t.probeFail != "" {
			res.Failures = append(res.Failures,
				fmt.Sprintf("livelock probe mode %s: %s", modes[j], t.probeFail))
		} else {
			res.Exercised["watchdog-livelock"]++
		}
	}
	return res, nil
}

// campaignRun executes one seeded, injected scenario and digests it.
// Go panics are converted into failures: the machine must degrade
// through typed errors, never take the simulator down. The machine
// comes from (and, barring a panic, returns to) pool; a machine that
// panicked mid-run is dropped rather than recycled, since its state is
// no longer trustworthy.
func campaignRun(pool *core.MachinePool, seed int64, mode core.Mode) (rep campaignReport) {
	var (
		m   *core.Machine
		err error
	)
	healthy := false
	defer func() {
		if r := recover(); r != nil {
			rep.failures = append(rep.failures, fmt.Sprintf("panic: %v", r))
			rep.outcome = "panic"
			rep.fingerprint = "panic"
			return
		}
		if healthy {
			pool.Put(m)
		}
	}()

	m, err = pool.Get()
	if err != nil {
		rep.failures = append(rep.failures, "boot: "+err.Error())
		return rep
	}
	healthy = true
	inj := faultinject.Attach(m.K, seed, faultinject.Config{})
	if err := m.LoadProgram(campaignProg(mode)); err != nil {
		rep.failures = append(rep.failures, "load: "+err.Error())
		return rep
	}
	if mode == core.ModeHardware {
		// Claim Mod only: TLB refills must keep reaching the kernel's
		// UTLB vector (the user handler cannot build translations).
		m.EnableHardwareDelivery(1 << arch.ExcMod)
	}

	runErr := m.Run(campaignBudget)

	// Final invariant sweep after the run settles.
	if err := inj.Checker.Check(); err != nil {
		inj.Violations = append(inj.Violations, fmt.Errorf("final sweep: %w", err))
	}
	for _, v := range inj.Violations {
		rep.failures = append(rep.failures, "invariant: "+v.Error())
	}

	switch {
	case runErr == nil:
		rep.outcome = "survived"
	case errors.Is(runErr, cpu.ErrLivelock):
		rep.outcome = "livelock detected"
	case errors.Is(runErr, kernel.ErrRecursion):
		rep.outcome = "recursion kill"
	case errors.Is(runErr, cpu.ErrBudget):
		rep.outcome = "budget exhausted"
		rep.failures = append(rep.failures, "budget exhausted: "+runErr.Error())
	case strings.Contains(runErr.Error(), "process exited with status"):
		rep.outcome = "signal termination"
	default:
		rep.outcome = "error"
		rep.failures = append(rep.failures, "unexpected error: "+runErr.Error())
	}

	rep.exercised = inj.Exercised
	rep.stats = m.K.Stats

	var events strings.Builder
	for _, e := range inj.Events {
		fmt.Fprintf(&events, "[%d %s %s]", e.Inst, e.Kind, e.Detail)
	}
	errText := ""
	if runErr != nil {
		errText = runErr.Error()
	}
	rep.fingerprint = fmt.Sprintf("outcome=%s err=%q console=%q stats=%+v cycles=%d insts=%d events=%s",
		rep.outcome, errText, m.K.Console(), m.K.Stats, m.CPU().Cycles, m.CPU().Insts, events.String())
	return rep
}

// livelockProbe runs the deliberate-livelock program with no injector
// and expects the CPU watchdog to stop it with a typed LivelockError.
func livelockProbe(pool *core.MachinePool, mode core.Mode) (outcome, failure string) {
	m, err := pool.Get()
	if err != nil {
		return "error", "boot: " + err.Error()
	}
	defer pool.Put(m)
	if err := m.LoadProgram(livelockProg()); err != nil {
		return "error", "load: " + err.Error()
	}
	if mode == core.ModeHardware {
		m.EnableHardwareDelivery(1 << arch.ExcMod)
	}
	runErr := m.Run(campaignBudget)
	var ll *cpu.LivelockError
	if errors.As(runErr, &ll) {
		return "livelock detected", ""
	}
	return "error", fmt.Sprintf("want LivelockError, got %v", runErr)
}
