package harness

import (
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	tbl, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, want := range []string{"Ultrix", "Mach/UX", "SunOS", "Windows NT (est)", "Round trip"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 lacks %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	tbl, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, want := range []string{"Deliver simple exception", "subpage", "Round trip", "eager"} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("table 2 lacks %q:\n%s", want, out)
		}
	}
}

func TestTable3MatchesPaperExactly(t *testing.T) {
	tbl, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	// Every measured cell must equal the paper cell.
	for _, row := range tbl.Rows {
		if row[1] != row[2] {
			t.Errorf("phase %q: measured %s vs paper %s", row[0], row[1], row[2])
		}
	}
}

func TestTable4(t *testing.T) {
	tbl, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	if !strings.Contains(out, "Lisp operations") || !strings.Contains(out, "Array test") {
		t.Errorf("table 4 incomplete:\n%s", out)
	}
}

func TestTable5(t *testing.T) {
	tbl, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	if !strings.Contains(out, "Tree") || !strings.Contains(out, "Interactive") {
		t.Errorf("table 5 incomplete:\n%s", out)
	}
	// The paper's conclusion: fast exceptions are competitive where the
	// Ultrix-priced ones are not — the shift this table demonstrates.
	for _, row := range tbl.Rows {
		if row[5] != "yes" {
			t.Errorf("table 5 row %q: fast exceptions do not win:\n%s", row[0], out)
		}
		if row[7] != "no" {
			t.Errorf("table 5 row %q: ultrix exceptions should lose:\n%s", row[0], out)
		}
	}
}

func TestFigures(t *testing.T) {
	f3, err := Figure3(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.X) != 20 || len(f3.Y) != 2 {
		t.Errorf("figure 3 shape: %d x %d", len(f3.X), len(f3.Y))
	}
	f4, err := Figure4(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.X) != 20 || len(f4.Y) != 2 {
		t.Errorf("figure 4 shape: %d x %d", len(f4.X), len(f4.Y))
	}
}

func TestAblations(t *testing.T) {
	hw, err := AblationHardware()
	if err != nil {
		t.Fatal(err)
	}
	if len(hw.Rows) != 3 {
		t.Errorf("hardware ablation rows = %d", len(hw.Rows))
	}
	eg, err := AblationEager()
	if err != nil {
		t.Fatal(err)
	}
	if len(eg.Rows) != 2 {
		t.Errorf("eager ablation rows = %d", len(eg.Rows))
	}
	sp, err := AblationSubpage()
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Rows) < 3 {
		t.Errorf("subpage ablation rows = %d", len(sp.Rows))
	}
	pc, err := AblationProtChange()
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.Rows) != 3 {
		t.Errorf("prot-change ablation rows = %d", len(pc.Rows))
	}
	vec, err := AblationVector()
	if err != nil {
		t.Fatal(err)
	}
	if len(vec.Rows) != 2 {
		t.Errorf("vector ablation rows = %d", len(vec.Rows))
	}
}

func TestTraceDelivery(t *testing.T) {
	out, err := TraceDelivery()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Figure 1", "Figure 2",
		"psignal", "sendsig", "sigreturn", // the Unix phases
		"hardware raises exception",
		"user-level handler entered",
		"application resumes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace lacks %q:\n%s", want, out)
		}
	}
	// The fast trace must NOT involve the Unix machinery.
	fastPart := out[strings.Index(out, "Figure 2"):]
	for _, bad := range []string{"psignal", "sendsig", "sigreturn", "trampoline"} {
		if strings.Contains(fastPart, bad) {
			t.Errorf("fast trace mentions %q:\n%s", bad, fastPart)
		}
	}
}

func TestSensitivityTable(t *testing.T) {
	tbl, err := Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Errorf("sensitivity rows = %d", len(tbl.Rows))
	}
}

func TestAllRendersEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full exhibit regeneration")
	}
	out, err := All(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
		"Figure 3", "Figure 4",
		"Ablation A", "Ablation B", "Ablation C", "Ablation D", "Ablation E",
		"Sensitivity",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("All() output lacks %q", want)
		}
	}
}
