package harness

import "uexc/internal/core"

// Campaign scenario programs. One hardened workload, parameterized by
// delivery mode: it registers bounded Unix fallback handlers for the
// survivable signals, claims protection faults through the
// mode-specific mechanism, then loops over mprotect/store/compute so
// the injector has TLB traffic, protection faults, and live user
// handlers to attack. Every recovery path is bounded — a handler that
// keeps being re-entered gives up with a distinctive exit status — so
// any injected fault converges to a deterministic outcome instead of
// spinning out the instruction budget.

// campaignCommonSetup registers the bounded signal fallbacks
// (SIGSEGV, SIGBUS, SIGILL all share one handler).
const campaignCommonSetup = `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    a0, 11               # SIGSEGV
	la    a1, sig_fallback
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	li    a0, 10               # SIGBUS
	la    a1, sig_fallback
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	li    a0, 4                # SIGILL
	la    a1, sig_fallback
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
`

// campaignWorkload: four demand-mapped heap pages, then a loop that
// write-protects page 0, takes the Mod fault through the configured
// delivery path (the handler unprotects), and mixes in loads/stores on
// the other pages for TLB pressure.
const campaignWorkload = `
	li    a0, 16384
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	la    t0, page_addr
	sw    s1, 0(t0)
	sw    zero, 0(s1)          # touch: demand-map all four pages
	sw    zero, 4096(s1)
	sw    zero, 8192(s1)
	sw    zero, 12288(s1)
	li    s0, 6
	li    s2, 0
loop:
	move  a0, s1               # write-protect page 0
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect
	syscall
	nop
	sw    s0, 0(s1)            # Mod fault -> delivery -> unprotect -> retry
	lw    t0, 0(s1)
	addu  s2, s2, t0
	sw    s2, 4096(s1)
	lw    t1, 8192(s1)
	addu  s2, s2, t1
	sw    s2, 12288(s1)
	addiu s0, s0, -1
	bnez  s0, loop
	nop
	li    a0, 1
	la    a1, done_msg
	li    a2, 5
	li    v0, SYS_write
	syscall
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop
`

// campaignHandlers: the bounded recovery handlers and scenario data.
// wp_chandler is the C-level fast/hardware handler; sig_fallback the
// Unix path. Both unprotect the workload page (idempotent when the
// fault was spurious) and count invocations, exiting with a
// distinctive status if re-entered past any legitimate total.
const campaignHandlers = `
wp_chandler:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, fast_count
	lw    t1, 0(t0)
	addiu t1, t1, 1
	sw    t1, 0(t0)
	sltiu t2, t1, 200
	bnez  t2, wp_go
	nop
	li    a0, 43               # runaway deliveries: give up deterministically
	li    v0, SYS_exit
	syscall
	nop
wp_go:
	la    a0, page_addr
	lw    a0, 0(a0)
	li    a1, 4096
	li    a2, 3
	li    v0, SYS_mprotect
	syscall
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	jr    ra
	nop

sig_fallback:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, sig_count
	lw    t1, 0(t0)
	addiu t1, t1, 1
	sw    t1, 0(t0)
	sltiu t2, t1, 64
	bnez  t2, sig_go
	nop
	li    a0, 42               # runaway signals: give up deterministically
	li    v0, SYS_exit
	syscall
	nop
sig_go:
	la    a0, page_addr
	lw    a0, 0(a0)
	li    a1, 4096
	li    a2, 3
	li    v0, SYS_mprotect
	syscall
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	jr    ra
	nop
	.align 4
page_addr:
	.word 0
fast_count:
	.word 0
sig_count:
	.word 0
done_msg:
	.ascii "done\n"
`

// campaignTeraHandler mirrors the benchmark Tera handler: save the
// exception frame, call the C handler, restore, return-exchange.
const campaignTeraHandler = `
tera_ret:
	xret
tera_handler:
	la    k1, tera_frame
	mfxt  k0
	sw    k0, 0x00(k1)
	mfxc  k0
	sw    k0, 0x04(k1)
	sw    zero, 0x08(k1)
	sw    at, 0x0c(k1)
	sw    v0, 0x10(k1)
	sw    v1, 0x14(k1)
	sw    a0, 0x18(k1)
	sw    a1, 0x1c(k1)
	sw    a2, 0x20(k1)
	sw    a3, 0x24(k1)
	sw    t0, 0x28(k1)
	sw    t1, 0x2c(k1)
	sw    t2, 0x30(k1)
	sw    t3, 0x34(k1)
	sw    t4, 0x3c(k1)
	sw    t5, 0x40(k1)
	sw    ra, 0x44(k1)
	move  t0, k1
	move  a0, t0
	la    t3, __fexc_chandler
	lw    t3, 0(t3)
	jalr  t3
	nop
tera_handler_ret:
	lw    k0, 0x00(t0)
	mtxt  k0
	lw    at, 0x0c(t0)
	lw    v0, 0x10(t0)
	lw    v1, 0x14(t0)
	lw    a0, 0x18(t0)
	lw    a1, 0x1c(t0)
	lw    a2, 0x20(t0)
	lw    a3, 0x24(t0)
	lw    t1, 0x2c(t0)
	lw    t2, 0x30(t0)
	lw    t3, 0x34(t0)
	lw    t4, 0x3c(t0)
	lw    t5, 0x40(t0)
	lw    ra, 0x44(t0)
	lw    t0, 0x28(t0)
	b     tera_ret
	nop
	.align 8
tera_frame:
	.space 128
`

// campaignProg assembles the scenario for one delivery mode.
func campaignProg(mode core.Mode) string {
	switch mode {
	case core.ModeFast:
		return campaignCommonSetup + `
	la    t0, wp_chandler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)   # Mod|TLBL|TLBS
	jal   __uexc_enable
	nop
` + campaignWorkload + campaignHandlers
	case core.ModeHardware:
		return campaignCommonSetup + `
	la    t0, wp_chandler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    t0, tera_handler
	mtxt  t0
` + campaignWorkload + campaignHandlers + campaignTeraHandler
	default: // ModeUltrix: signals only
		return campaignCommonSetup + campaignWorkload + campaignHandlers
	}
}

// livelockProg is a deliberate pure state cycle: no stores, no new
// code after the first pass — only the watchdog can classify it.
func livelockProg() string {
	return `
main:
spin:
	b     spin
	nop
`
}
