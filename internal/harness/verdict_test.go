package harness

import (
	"strings"
	"testing"

	"uexc/internal/core"
	"uexc/internal/verdict"
)

// The three seeds the 0–10k soak originally tripped over, pinned as
// regressions at the campaignRun level (the full-campaign path the
// soak sweeps). 820 and 2223 are fixed outright; 2227 is a genuine
// injected-corruption divergence and must carry its typed verdict.

// TestSeed820HardwareIsClean: mem-corrupt flips bit 30 of the saved
// user SP, so sendsig's frame copyout lands on an unmappable address.
// The kernel must kill the process like Unix does (SIGSEGV on an
// unwritable signal stack), not abort the machine.
func TestSeed820HardwareIsClean(t *testing.T) {
	pool := &core.MachinePool{}
	rep := campaignRun(pool, 820, core.ModeHardware)
	if len(rep.Failures) > 0 {
		t.Fatalf("failures: %v", rep.Failures)
	}
	if rep.Outcome != "signal termination" {
		t.Errorf("outcome = %q, want signal termination", rep.Outcome)
	}
	if rep.Verdict != verdict.Clean {
		t.Errorf("verdict = %s, want clean", rep.Verdict)
	}
}

// TestSeed2223FastIsClean: a corrupted user handler executes a stray
// sigreturn whose fabricated sigcontext carries CU1 in Status; the
// next exception used to hit the first-level handler's FP-ownership
// panic. sigreturn now sanitizes privileged Status bits, so the run
// must end in an ordinary signal termination.
func TestSeed2223FastIsClean(t *testing.T) {
	pool := &core.MachinePool{}
	rep := campaignRun(pool, 2223, core.ModeFast)
	if len(rep.Failures) > 0 {
		t.Fatalf("failures: %v", rep.Failures)
	}
	if rep.Outcome == "kernel panic" || rep.Outcome == "panic" {
		t.Fatalf("outcome = %q", rep.Outcome)
	}
	if rep.Verdict != verdict.Clean {
		t.Errorf("verdict = %s, want clean", rep.Verdict)
	}
}

// TestSeed2227HardwareIsKnownDivergent: mem-corrupt rewrites the
// signal handler's counter-store offset, defeating the program's own
// 64-entry runaway bound — the fault loop is genuinely infinite and
// budget exhaustion is the correct deterministic stop. The run must be
// classified KnownDivergent with the corruption witness in the detail,
// and must NOT count as a failure.
func TestSeed2227HardwareIsKnownDivergent(t *testing.T) {
	pool := &core.MachinePool{}
	rep := campaignRun(pool, 2227, core.ModeHardware)
	if len(rep.Failures) > 0 {
		t.Fatalf("failures: %v", rep.Failures)
	}
	if rep.Outcome != "budget exhausted" {
		t.Errorf("outcome = %q, want budget exhausted", rep.Outcome)
	}
	if rep.Verdict != verdict.KnownDivergent {
		t.Fatalf("verdict = %s, want known-divergent", rep.Verdict)
	}
	if !strings.Contains(rep.VerdictDetail, "mem-corrupt") {
		t.Errorf("detail %q does not name the corruption witness", rep.VerdictDetail)
	}
}

// TestRecoverAndClassifyPanic: a Go panic anywhere inside a campaign
// run — in any mode — must surface as a recovered EngineBug verdict
// and a campaign failure, never a process crash. This is the seam the
// soak gate relies on: unclassified means a bug report, not a dead
// sweep.
func TestRecoverAndClassifyPanic(t *testing.T) {
	testHookPostLoad = func(m *core.Machine) { panic("injected test panic") }
	defer func() { testHookPostLoad = nil }()

	for _, mode := range campaignModes {
		rep := campaignRun(&core.MachinePool{}, 0, mode)
		if rep.Outcome != "panic" {
			t.Errorf("mode %s: outcome = %q, want panic", mode, rep.Outcome)
		}
		if rep.Verdict != verdict.EngineBug {
			t.Errorf("mode %s: verdict = %s, want engine-bug", mode, rep.Verdict)
		}
		if len(rep.Failures) == 0 || !strings.Contains(rep.Failures[0], "injected test panic") {
			t.Errorf("mode %s: failures = %v", mode, rep.Failures)
		}
	}

	// Campaign level: the sweep completes, tallies the EngineBug
	// verdicts, and fails via Ok() — the process stayed up.
	res, err := FaultCampaignParallel(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdicts[verdict.EngineBug] != len(campaignModes) {
		t.Errorf("engine-bug verdicts = %d, want %d\n%s",
			res.Verdicts[verdict.EngineBug], len(campaignModes), res.Summary())
	}
	if res.Ok() {
		t.Error("campaign with panicking runs reported Ok")
	}
	if !strings.Contains(res.Summary(), "engine-bug") {
		t.Errorf("summary missing verdict tally:\n%s", res.Summary())
	}
}

// TestCampaignBudgetScalesWithProgram: the per-run bound never drops
// below the legacy flat floor, and the per-mode multipliers order the
// way delivery cost does (full signal round trip > kernel fast path >
// hardware vectoring), so if the campaign program ever grows past the
// floor the Ultrix bound grows fastest.
func TestCampaignBudgetScalesWithProgram(t *testing.T) {
	for _, mode := range campaignModes {
		if got := campaignBudgetFor(mode); got < campaignBudgetFloor {
			t.Errorf("mode %s: budget %d below floor %d", mode, got, campaignBudgetFloor)
		}
	}
}

// TestShardLineTagsVerdicts: non-clean verdicts must be visible in the
// progress stream; clean lines must render exactly as before the
// verdict layer (resume byte-identity depends on it).
func TestShardLineTagsVerdicts(t *testing.T) {
	var s CampaignShard
	s.First.Outcome = "budget exhausted"
	s.First.Verdict = verdict.KnownDivergent
	line := ShardLine(0, 1, s)
	if !strings.Contains(line, "budget exhausted [known-divergent]") {
		t.Errorf("tagged line = %q", line)
	}
	s.First.Outcome = "survived"
	s.First.Verdict = verdict.Clean
	if got := ShardLine(0, 1, s); strings.Contains(got, "[") {
		t.Errorf("clean line carries a tag: %q", got)
	}
}
