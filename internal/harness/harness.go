// Package harness regenerates every table and figure of the paper's
// evaluation from the simulator, in the layouts of the original
// exhibits. It is shared by cmd/uexc-bench and the root benchmark
// suite.
package harness

import (
	"fmt"
	"strings"

	"uexc/internal/analytic"
	"uexc/internal/apps/gcsim"
	"uexc/internal/apps/swizzle"
	"uexc/internal/core"
	"uexc/internal/osmodel"
	"uexc/internal/parallel"
	"uexc/internal/report"
	"uexc/internal/simos"
)

// benchN is the per-microbenchmark exception count; the machine is
// deterministic so modest counts suffice.
const benchN = 40

// Table1 reproduces the cross-system survey. The Ultrix column is
// measured live on the simulator; the other systems are the calibrated
// pipeline models of internal/osmodel.
func Table1() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table 1: exception delivery cost across 1994 systems (µs)",
		Headers: []string{"Operation"},
		Note: "Ultrix column measured on this simulator; others are pipeline models " +
			"calibrated to anchors quoted in the paper (NT and OSF/1 have no anchors: estimates).",
	}
	systems := osmodel.Systems()
	for _, s := range systems {
		h := s.Name
		if s.Estimated {
			h += " (est)"
		}
		t.Headers = append(t.Headers, h)
	}

	ult, err := core.MeasureSimpleException(core.ModeUltrix, benchN)
	if err != nil {
		return nil, err
	}
	wp, err := core.MeasureWriteProt(core.ModeUltrix, false, benchN)
	if err != nil {
		return nil, err
	}

	deliver := []string{"Deliver to null handler"}
	deliverWP := []string{"Deliver write-prot exception"}
	ret := []string{"Return from handler"}
	rt := []string{"Round trip (deliver + return)"}
	for _, s := range systems {
		if strings.HasPrefix(s.Name, "Ultrix") {
			deliver = append(deliver, report.Micros(ult.DeliverMicros()))
			deliverWP = append(deliverWP, report.Micros(wp.DeliverMicros()))
			ret = append(ret, report.Micros(ult.ReturnMicros()))
			rt = append(rt, report.Micros(ult.RoundTripMicros()))
			continue
		}
		deliver = append(deliver, report.Micros(s.DeliverMicros()))
		deliverWP = append(deliverWP, report.Micros(s.DeliverWriteProtMicros()))
		ret = append(ret, report.Micros(s.ReturnMicros()))
		rt = append(rt, report.Micros(s.RoundTripMicros()))
	}
	t.Rows = [][]string{deliver, deliverWP, ret, rt}
	return t, nil
}

// Table2 reproduces the fast-mechanism microbenchmarks next to the
// Ultrix baseline and the paper's published values.
func Table2() (*report.Table, error) {
	fast, err := core.MeasureSimpleException(core.ModeFast, benchN)
	if err != nil {
		return nil, err
	}
	ult, err := core.MeasureSimpleException(core.ModeUltrix, benchN)
	if err != nil {
		return nil, err
	}
	wpF, err := core.MeasureWriteProt(core.ModeFast, true, benchN)
	if err != nil {
		return nil, err
	}
	wpU, err := core.MeasureWriteProt(core.ModeUltrix, false, benchN)
	if err != nil {
		return nil, err
	}
	sp, err := core.MeasureSubpage(benchN)
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   "Table 2: performance of exception functions (µs)",
		Headers: []string{"Operation", "Fast (measured)", "Ultrix (measured)", "Fast (paper)", "Ultrix (paper)"},
	}
	t.AddRow("Deliver simple exception to null user handler",
		report.Micros(fast.DeliverMicros()), report.Micros(ult.DeliverMicros()), "5", "~55")
	t.AddRow("Deliver write-prot exception to null handler",
		report.Micros(wpF.DeliverMicros()), report.Micros(wpU.DeliverMicros()), "15", "60")
	t.AddRow("Deliver subpage exception to null handler",
		report.Micros(sp.Delivered.DeliverMicros()), "-", "19", "-")
	t.AddRow("Return from null handler",
		report.Micros(fast.ReturnMicros()), report.Micros(ult.ReturnMicros()), "3", "~25")
	t.AddRow("Simple exception round trip (rows 1+4)",
		report.Micros(fast.RoundTripMicros()), report.Micros(ult.RoundTripMicros()), "8", "80")
	t.AddRow("Write-prot fault + eager-amplified retry (§3.3)",
		report.Micros(wpF.RoundTripMicros()), "-", "18", "-")
	t.AddRow("Subpage store emulated by kernel (§3.2.4, transparent)",
		report.Micros(core.Micros(uint64(sp.EmulRT))), "-", "-", "-")
	return t, nil
}

// Table3 reproduces the kernel fast-path instruction counts by
// executing the path with per-PC counting.
func Table3() (*report.Table, error) {
	pc, err := core.MeasureKernelPhases()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Table 3: kernel exception handler instruction count summary",
		Headers: []string{"Operation", "Measured", "Paper"},
		Note:    "counts are dynamic instructions executed between phase labels for one simple exception",
	}
	t.AddRow("Decode exception", fmt.Sprint(pc.Decode), "6")
	t.AddRow("Compatibility check", fmt.Sprint(pc.Compat), "11")
	t.AddRow("Save partial state", fmt.Sprint(pc.Save), "31")
	t.AddRow("Floating point check", fmt.Sprint(pc.FPCheck), "6")
	t.AddRow("Check for TLB fault", fmt.Sprint(pc.TLBCheck), "8")
	t.AddRow("Vector to user", fmt.Sprint(pc.Vector), "3")
	t.AddRow("Total", fmt.Sprint(pc.Total()), "65")
	return t, nil
}

// Table4 reproduces the generational-GC comparison.
func Table4() (*report.Table, error) {
	ultCosts, err := simos.Measure(core.ModeUltrix)
	if err != nil {
		return nil, err
	}
	fastCosts, err := simos.Measure(core.ModeFast)
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title: "Table 4: comparative performance of generational garbage collection",
		Headers: []string{"Application", "Ultrix SIGSEGV (s)", "Fast exceptions (s)",
			"Improvement", "Faults", "Collections", "Paper"},
	}
	for _, wl := range []struct {
		name  string
		run   func(gcsim.Barrier, simos.CostTable) gcsim.Result
		paper string
	}{
		{"Lisp operations", gcsim.LispOps, "24 vs 23 (4%)"},
		{"Array test", gcsim.ArrayTest, "2 vs 1.8 (10%)"},
	} {
		u := wl.run(gcsim.BarrierSigsegv, ultCosts)
		f := wl.run(gcsim.BarrierFastEager, fastCosts)
		if u.Checksum != f.Checksum {
			return nil, fmt.Errorf("harness: %s heaps diverged", wl.name)
		}
		imp := 100 * (u.Seconds - f.Seconds) / u.Seconds
		t.AddRow(wl.name, report.Seconds(u.Seconds), report.Seconds(f.Seconds),
			report.Pct(imp), fmt.Sprint(u.Stats.Faults), fmt.Sprint(u.Stats.Collections), wl.paper)
	}
	return t, nil
}

// Table5 reproduces the break-even analysis between software write
// barriers and protection exceptions, with c and t counted from the
// workloads and y = c·x/(f·t) at x = 5 cycles, f = 25 MHz.
func Table5() (*report.Table, error) {
	fastCosts, err := simos.Measure(core.ModeFast)
	if err != nil {
		return nil, err
	}
	ultCosts, err := simos.Measure(core.ModeUltrix)
	if err != nil {
		return nil, err
	}
	fastRT := simos.Micros(fastCosts.ProtFaultRT)
	ultRT := simos.Micros(ultCosts.ProtFaultRT)

	t := &report.Table{
		Title: "Table 5: break-even exception cost y (µs) vs software checks (x=5 cycles, f=25 MHz)",
		Headers: []string{"Application", "Checks c", "Traps t", "Break-even y (µs)",
			"Fast cost (µs)", "Fast wins?", "Ultrix cost (µs)", "Ultrix wins?"},
		Note: "exceptions beat inline checks when the per-exception cost is below y; the paper's " +
			"fast exception+reprotect cost is 18 µs — the shift the table demonstrates",
	}
	for _, wl := range []struct {
		name string
		run  func(gcsim.Barrier, simos.CostTable) gcsim.Result
	}{
		{"Tree", gcsim.TreeWorkload},
		{"Interactive", gcsim.InteractiveWorkload},
	} {
		sw := wl.run(gcsim.BarrierSoftware, fastCosts)
		pp := wl.run(gcsim.BarrierFastEager, fastCosts)
		if sw.Checksum != pp.Checksum {
			return nil, fmt.Errorf("harness: %s diverged across barrier mechanisms", wl.name)
		}
		row := analytic.MakeTable5Row(wl.name, sw.Stats.Checks, uint64(pp.Stats.Faults), fastRT)
		win := map[bool]string{true: "yes", false: "no"}
		t.AddRow(row.App, fmt.Sprint(row.Checks), fmt.Sprint(row.Traps),
			fmt.Sprintf("%.1f", row.BreakEvenMicro),
			fmt.Sprintf("%.1f", row.FastCostMicro), win[row.ExceptionsWin],
			fmt.Sprintf("%.1f", ultRT), win[ultRT < row.BreakEvenMicro])
	}
	return t, nil
}

// Figure3 regenerates the swizzling break-even curves (uses per pointer
// at which exceptions beat per-dereference checks), from measured
// exception costs, and validates three points by running the object
// store to its empirical crossover. Validation sweep points are
// sharded across `workers` goroutines (0 = GOMAXPROCS, 1 = serial) and
// merged in point order.
func Figure3(validate bool, workers int) (*report.Series, error) {
	fast, err := core.MeasureUnalignedMin(benchN)
	if err != nil {
		return nil, err
	}
	ult, err := core.MeasureSimpleException(core.ModeUltrix, benchN)
	if err != nil {
		return nil, err
	}
	fastUS, ultUS := fast.RoundTripMicros(), ult.RoundTripMicros()

	pts := analytic.Figure3Series(20, ultUS, fastUS)
	s := &report.Series{
		Title:   "Figure 3: exceptions vs software checks for swizzling (break-even uses per pointer)",
		XLabel:  "check cycles",
		YLabels: []string{"Ultrix curve", "Fast curve"},
		XFmt:    "%.0f",
		Note: fmt.Sprintf("curves u = f·y/c with measured y: Ultrix %.1fµs, fast specialized handler %.1fµs; "+
			"software checks win below a curve", ultUS, fastUS),
	}
	for _, p := range pts {
		s.X = append(s.X, p.CheckCycles)
	}
	s.Y = make([][]float64, 2)
	for _, p := range pts {
		s.Y[0] = append(s.Y[0], p.UsesUltrix)
		s.Y[1] = append(s.Y[1], p.UsesFast)
	}
	if validate {
		// Each sweep point boots its own object store; shard them and
		// merge the check strings by point index.
		costs := []float64{5, 10, 20}
		checks := parallel.Map(workers, len(costs), func(i int) crossoverCheck {
			c := costs[i]
			emp, err := swizzle.Fig3Crossover(c, fastUS, 600)
			if err != nil {
				return crossoverCheck{err: err}
			}
			ana := analytic.SwizzleBreakEvenUses(c, fastUS, 25)
			return crossoverCheck{text: fmt.Sprintf("c=%.0f: empirical %d vs analytic %.1f", c, emp, ana)}
		})
		texts, err := collectChecks(checks)
		if err != nil {
			return nil, err
		}
		s.Note += "; store-validated crossovers: " + strings.Join(texts, ", ")
	}
	return s, nil
}

// crossoverCheck is one validated figure sweep point; merged by index.
type crossoverCheck struct {
	text string
	err  error
}

// collectChecks folds sharded sweep-point results in index order,
// surfacing the first (lowest-index) error exactly as the serial loop
// would have.
func collectChecks(checks []crossoverCheck) ([]string, error) {
	texts := make([]string, 0, len(checks))
	for _, c := range checks {
		if c.err != nil {
			return nil, c.err
		}
		texts = append(texts, c.text)
	}
	return texts, nil
}

// Figure4 regenerates the eager-vs-lazy swizzling break-even curves
// (fraction of a page's 50 pointers that must be used before eager
// wins) and validates points against the object store, sharding the
// validation sweep like Figure3.
func Figure4(validate bool, workers int) (*report.Series, error) {
	fast, err := core.MeasureUnalignedMin(benchN)
	if err != nil {
		return nil, err
	}
	ult, err := core.MeasureSimpleException(core.ModeUltrix, benchN)
	if err != nil {
		return nil, err
	}
	fastUS, ultUS := fast.RoundTripMicros(), ult.RoundTripMicros()

	const pn = 50
	pts := analytic.Figure4Series(10, 0.5, pn, ultUS, fastUS)
	s := &report.Series{
		Title:   "Figure 4: eager vs lazy swizzling (break-even fraction of pointers used, pn=50)",
		XLabel:  "swizzle cost s (µs)",
		YLabels: []string{"Ultrix curve", "Fast curve"},
		Note: fmt.Sprintf("pu*(s)/pn with measured exception costs: Ultrix %.1fµs, fast %.1fµs; "+
			"eager swizzling wins above a curve — the fast mechanism broadens lazy's range", ultUS, fastUS),
		YFmt: "%.3f",
	}
	for _, p := range pts {
		s.X = append(s.X, p.SwizzleMicros)
	}
	s.Y = make([][]float64, 2)
	for _, p := range pts {
		s.Y[0] = append(s.Y[0], p.FracUltrix)
		s.Y[1] = append(s.Y[1], p.FracFast)
	}
	if validate {
		costs := []float64{1, 2, 4}
		checks := parallel.Map(workers, len(costs), func(i int) crossoverCheck {
			sc := costs[i]
			empF, err := swizzle.Fig4Crossover(fastUS, sc, pn)
			if err != nil {
				return crossoverCheck{err: err}
			}
			empU, err := swizzle.Fig4Crossover(ultUS, sc, pn)
			if err != nil {
				return crossoverCheck{err: err}
			}
			return crossoverCheck{text: fmt.Sprintf("s=%.0fµs: eager wins from %d (fast) / %d (ultrix) of %d used",
				sc, empF, empU, pn)}
		})
		texts, err := collectChecks(checks)
		if err != nil {
			return nil, err
		}
		s.Note += "; store-validated: " + strings.Join(texts, ", ")
	}
	return s, nil
}

// AblationHardware compares the three delivery mechanisms on simple
// exceptions (the paper's §3 2-3x hardware estimate).
func AblationHardware() (*report.Table, error) {
	t := &report.Table{
		Title:   "Ablation A: delivery mechanism (simple exception, µs)",
		Headers: []string{"Mechanism", "Deliver", "Return", "Round trip", "vs Ultrix"},
		Note:    "paper §3: hardware vectoring is estimated to buy another 2-3x over the software fast path",
	}
	var base float64
	for _, mode := range []core.Mode{core.ModeUltrix, core.ModeFast, core.ModeHardware} {
		tm, err := core.MeasureSimpleException(mode, benchN)
		if err != nil {
			return nil, err
		}
		if mode == core.ModeUltrix {
			base = tm.RoundTrip
		}
		t.AddRow(mode.String(), report.Micros(tm.DeliverMicros()),
			report.Micros(tm.ReturnMicros()), report.Micros(tm.RoundTripMicros()),
			fmt.Sprintf("%.1fx", base/tm.RoundTrip))
	}
	return t, nil
}

// AblationEager compares eager amplification on and off for
// write-protection faults (§3.2.3).
func AblationEager() (*report.Table, error) {
	eager, err := core.MeasureWriteProt(core.ModeFast, true, benchN)
	if err != nil {
		return nil, err
	}
	noEager, err := core.MeasureWriteProt(core.ModeFast, false, benchN)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation B: eager amplification (write-protection fault, µs)",
		Headers: []string{"Configuration", "Deliver", "Round trip incl. retry"},
		Note:    "without eager amplification the user handler must unprotect via a system call before resuming",
	}
	t.AddRow("Eager amplification", report.Micros(eager.DeliverMicros()), report.Micros(eager.RoundTripMicros()))
	t.AddRow("No amplification (handler mprotects)", report.Micros(noEager.DeliverMicros()), report.Micros(noEager.RoundTripMicros()))
	return t, nil
}

// AblationSubpage reports the §3.2.4 trade-off: delivery on protected
// subpages vs transparent kernel emulation on unprotected ones, and the
// modeled overhead as a function of unrelated-subpage activity.
func AblationSubpage() (*report.Table, error) {
	sp, err := core.MeasureSubpage(benchN)
	if err != nil {
		return nil, err
	}
	emulUS := core.Micros(uint64(sp.EmulRT))
	t := &report.Table{
		Title:   "Ablation C: subpage protection (1 KB logical pages on 4 KB hardware pages)",
		Headers: []string{"Case", "Cost (µs)"},
		Note: "the indirect cost grows with activity on unrelated subpages of protected pages " +
			"(each such store is emulated by the kernel)",
	}
	t.AddRow("Store to protected subpage (delivered)", report.Micros(sp.Delivered.DeliverMicros()))
	t.AddRow("Store to unprotected subpage (kernel emulates)", report.Micros(emulUS))
	for _, milli := range []int{1, 10, 100} {
		frac := float64(milli) / 1000
		t.AddRow(fmt.Sprintf("Modeled overhead at %.1f%% unrelated-store rate (per 1000 stores)", 100*frac),
			report.Micros(frac*1000*emulUS))
	}
	return t, nil
}

// AblationProtChange compares the three user-level protection-change
// mechanisms the paper discusses: the proposed hardware U-bit
// instruction (§2.2), kernel emulation of the same opcode (§3.2.3's
// software variant), and the conventional mprotect system call.
func AblationProtChange() (*report.Table, error) {
	t := &report.Table{
		Title:   "Ablation D: changing page protection from user level (µs per change)",
		Headers: []string{"Mechanism", "Cost"},
		Note: "the paper's §3.2.3 caveat reproduced: the trapped-opcode emulation pays a full " +
			"exception plus the page-table work, landing above even the system call",
	}
	for _, mech := range []core.ProtMech{core.ProtMechHardware, core.ProtMechEmulated, core.ProtMechSyscall} {
		cyc, err := core.MeasureProtChange(mech, benchN)
		if err != nil {
			return nil, err
		}
		t.AddRow(mech.String(), fmt.Sprintf("%.2f", cyc/25))
	}
	return t, nil
}

// AblationVector compares single-handler delivery with the §2.2
// vector-table design point (per-exception dispatch).
func AblationVector() (*report.Table, error) {
	single, err := core.MeasureSimpleException(core.ModeFast, benchN)
	if err != nil {
		return nil, err
	}
	vec, err := core.MeasureVectoredDispatch(benchN)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation E: single handler vs per-exception vector table (simple exception, µs)",
		Headers: []string{"Dispatch", "Deliver", "Round trip"},
		Note: fmt.Sprintf("table dispatch adds %.0f cycles — the paper's judgment that vectoring "+
			"hardware buys \"little likely performance gain\" holds at user level too",
			vec.RoundTrip-single.RoundTrip),
	}
	t.AddRow("Single registered handler", report.Micros(single.DeliverMicros()), report.Micros(single.RoundTripMicros()))
	t.AddRow("Per-exception vector table", report.Micros(vec.DeliverMicros()), report.Micros(vec.RoundTripMicros()))
	return t, nil
}

// Sensitivity probes the calibrated portion of the reproduction: the
// kernel's modeled C-phase charges are scaled ±30% and the headline
// comparison re-measured. The fast path is executed rather than
// modeled, so it should barely move.
func Sensitivity() (*report.Table, error) {
	pts, err := core.MeasureSensitivity([]float64{0.7, 0.85, 1.0, 1.15, 1.3}, benchN)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Sensitivity: headline claim vs calibration error in modeled C-phase costs",
		Headers: []string{"C-phase cost scale", "Fast rt (µs)", "Ultrix rt (µs)", "Speedup"},
		Note: "the fast path's cost is executed instructions (model-free); only the Ultrix " +
			"baseline depends on the calibrated charges — the order-of-magnitude claim survives ±30%",
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%.2f", p.Scale), report.Micros(p.FastRTMicro),
			report.Micros(p.UltRTMicro), fmt.Sprintf("%.1fx", p.Speedup))
	}
	return t, nil
}

// All renders every exhibit in order. Each exhibit boots its own
// measurement machines, so the steps are independent shards: they run
// across `workers` goroutines (0 = GOMAXPROCS, 1 = serial) and are
// concatenated strictly in exhibit order, making the output
// byte-identical for any worker count. On a failure, the exhibits
// before the first (lowest-index) error are returned with it, exactly
// as the serial run would.
func All(validate bool, workers int) (string, error) {
	steps := []func() (string, error){
		func() (string, error) { t, err := Table1(); return render(t, err) },
		func() (string, error) { t, err := Table2(); return render(t, err) },
		func() (string, error) { t, err := Table3(); return render(t, err) },
		func() (string, error) { t, err := Table4(); return render(t, err) },
		func() (string, error) { t, err := Table5(); return render(t, err) },
		func() (string, error) { s, err := Figure3(validate, 1); return renderS(s, err) },
		func() (string, error) { s, err := Figure4(validate, 1); return renderS(s, err) },
		func() (string, error) { t, err := AblationHardware(); return render(t, err) },
		func() (string, error) { t, err := AblationEager(); return render(t, err) },
		func() (string, error) { t, err := AblationSubpage(); return render(t, err) },
		func() (string, error) { t, err := AblationProtChange(); return render(t, err) },
		func() (string, error) { t, err := AblationVector(); return render(t, err) },
		func() (string, error) { t, err := Sensitivity(); return render(t, err) },
	}
	type stepOut struct {
		out string
		err error
	}
	outs := parallel.Map(workers, len(steps), func(i int) stepOut {
		out, err := steps[i]()
		return stepOut{out, err}
	})
	var b strings.Builder
	for _, s := range outs {
		if s.err != nil {
			return b.String(), s.err
		}
		b.WriteString(s.out)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func render(t *report.Table, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return t.Render(), nil
}

func renderS(s *report.Series, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return s.Render(), nil
}
