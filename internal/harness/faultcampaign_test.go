package harness

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"uexc/internal/core"
)

// TestFaultCampaignSmoke runs a short campaign: every required
// category must be exercised, every run must be deterministic, and no
// panic, invariant violation, or budget exhaustion may occur.
func TestFaultCampaignSmoke(t *testing.T) {
	res, err := FaultCampaign(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("campaign failed:\n%s", res.Summary())
	}
	if res.Outcomes["survived"] == 0 {
		t.Errorf("no run survived to clean exit:\n%s", res.Summary())
	}
	if res.Runs != 8*3*2+3 {
		t.Errorf("runs = %d, want %d", res.Runs, 8*3*2+3)
	}
}

// TestFaultCampaignParallelDeterminism: the parallel campaign must be
// byte-identical to the serial one for the same seeds — the whole
// CampaignResult (Exercised, Outcomes, Failures ordering, per-run
// Fingerprints), the rendered Summary, and the per-run progress stream
// — at one worker, two workers, and NumCPU workers. This is the
// deterministic-merge contract: results fold by seed/index, never by
// completion time.
func TestFaultCampaignParallelDeterminism(t *testing.T) {
	const seeds = 6
	var serialProgress bytes.Buffer
	serial, err := FaultCampaignParallel(seeds, 1, &serialProgress)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Fingerprints) != seeds*3 {
		t.Fatalf("serial fingerprints = %d, want %d", len(serial.Fingerprints), seeds*3)
	}

	for _, workers := range []int{2, runtime.NumCPU()} {
		var progress bytes.Buffer
		par, err := FaultCampaignParallel(seeds, workers, &progress)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, serial) {
			t.Errorf("workers=%d: CampaignResult differs from serial\nserial: %+v\nparallel: %+v",
				workers, serial, par)
		}
		if par.Summary() != serial.Summary() {
			t.Errorf("workers=%d: Summary differs from serial:\n%s\nvs\n%s",
				workers, par.Summary(), serial.Summary())
		}
		if progress.String() != serialProgress.String() {
			t.Errorf("workers=%d: progress stream differs from serial:\n%q\nvs\n%q",
				workers, progress.String(), serialProgress.String())
		}
	}
}

// TestLivelockProbeAllModes: the deliberate state cycle must be
// classified by the watchdog, not by budget exhaustion.
func TestLivelockProbeAllModes(t *testing.T) {
	pool := &core.MachinePool{}
	for _, mode := range []core.Mode{core.ModeUltrix, core.ModeFast, core.ModeHardware} {
		outcome, fail := livelockProbe(pool, mode)
		if fail != "" {
			t.Errorf("mode %s: %s", mode, fail)
		}
		if outcome != "livelock detected" {
			t.Errorf("mode %s: outcome %q", mode, outcome)
		}
	}
}
