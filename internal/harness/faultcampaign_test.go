package harness

import (
	"testing"

	"uexc/internal/core"
)

// TestFaultCampaignSmoke runs a short campaign: every required
// category must be exercised, every run must be deterministic, and no
// panic, invariant violation, or budget exhaustion may occur.
func TestFaultCampaignSmoke(t *testing.T) {
	res, err := FaultCampaign(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("campaign failed:\n%s", res.Summary())
	}
	if res.Outcomes["survived"] == 0 {
		t.Errorf("no run survived to clean exit:\n%s", res.Summary())
	}
	if res.Runs != 8*3*2+3 {
		t.Errorf("runs = %d, want %d", res.Runs, 8*3*2+3)
	}
}

// TestLivelockProbeAllModes: the deliberate state cycle must be
// classified by the watchdog, not by budget exhaustion.
func TestLivelockProbeAllModes(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeUltrix, core.ModeFast, core.ModeHardware} {
		outcome, fail := livelockProbe(mode)
		if fail != "" {
			t.Errorf("mode %s: %s", mode, fail)
		}
		if outcome != "livelock detected" {
			t.Errorf("mode %s: outcome %q", mode, outcome)
		}
	}
}
