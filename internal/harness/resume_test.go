package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
)

// TestFaultCampaignResumeByteIdentical: a campaign interrupted at any
// checkpoint and resumed from the durable prefix produces a progress
// stream, summary, and fingerprint list byte-identical to an
// undisturbed run — the §12 resume rule, at engine level.
func TestFaultCampaignResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs campaigns")
	}
	const seeds = 3
	ctx := context.Background()

	var wantStream bytes.Buffer
	want, err := FaultCampaignCtx(ctx, nil, seeds, 1, &wantStream)
	if err != nil {
		t.Fatal(err)
	}

	// Capture checkpoints at a tight cadence, round-tripped through
	// JSON exactly as the journal stores them.
	var mu sync.Mutex
	var checkpoints [][]CampaignShard
	save := func(prefix []CampaignShard) error {
		blob, err := json.Marshal(prefix)
		if err != nil {
			return err
		}
		var copied []CampaignShard
		if err := json.Unmarshal(blob, &copied); err != nil {
			return err
		}
		mu.Lock()
		checkpoints = append(checkpoints, copied)
		mu.Unlock()
		return nil
	}
	var ckStream bytes.Buffer
	ckRes, err := FaultCampaignResumeCtx(ctx, nil, seeds, 2, &ckStream, nil, 2, save)
	if err != nil {
		t.Fatal(err)
	}
	if ckStream.String() != wantStream.String() || ckRes.Summary() != want.Summary() {
		t.Fatalf("checkpointing changed the output:\n--- with ---\n%s%s\n--- without ---\n%s%s",
			ckStream.String(), ckRes.Summary(), wantStream.String(), want.Summary())
	}
	if len(checkpoints) == 0 {
		t.Fatal("no checkpoints captured")
	}
	last := checkpoints[len(checkpoints)-1]
	if len(last) != CampaignShards(seeds) {
		t.Fatalf("final checkpoint has %d shards, want %d", len(last), CampaignShards(seeds))
	}

	// Resume from every captured prefix (simulating a kill right after
	// that checkpoint's fsync) and demand byte identity.
	for _, done := range checkpoints {
		var gotStream bytes.Buffer
		got, err := FaultCampaignResumeCtx(ctx, nil, seeds, 2, &gotStream, done, 2, func([]CampaignShard) error { return nil })
		if err != nil {
			t.Fatalf("resume from %d shards: %v", len(done), err)
		}
		if gotStream.String() != wantStream.String() {
			t.Errorf("resume from %d shards: stream differs\n--- resumed ---\n%s--- undisturbed ---\n%s",
				len(done), gotStream.String(), wantStream.String())
		}
		if got.Summary() != want.Summary() {
			t.Errorf("resume from %d shards: summary differs", len(done))
		}
		if len(got.Fingerprints) != len(want.Fingerprints) {
			t.Fatalf("resume from %d shards: %d fingerprints, want %d", len(done), len(got.Fingerprints), len(want.Fingerprints))
		}
		for i := range want.Fingerprints {
			if got.Fingerprints[i] != want.Fingerprints[i] {
				t.Errorf("resume from %d shards: fingerprint %d differs", len(done), i)
			}
		}
	}
}

// TestFaultCampaignResumeRejectsOversizedCheckpoint: a checkpoint
// larger than the campaign's shard space is a corrupt resume and must
// be refused, not truncated silently.
func TestFaultCampaignResumeRejectsOversizedCheckpoint(t *testing.T) {
	done := make([]CampaignShard, CampaignShards(2)+1)
	_, err := FaultCampaignResumeCtx(context.Background(), nil, 2, 1, nil, done, 1, nil)
	if err == nil {
		t.Fatal("oversized checkpoint accepted")
	}
}

// TestFaultCampaignSaveErrorAborts: a checkpoint save failure aborts
// the campaign with the save's own error.
func TestFaultCampaignSaveErrorAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campaign")
	}
	boom := errors.New("journal full")
	_, err := FaultCampaignResumeCtx(context.Background(), nil, 2, 1, nil, nil, 1,
		func([]CampaignShard) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}
