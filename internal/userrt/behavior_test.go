package userrt_test

// Behavioral tests for the user runtime: these boot the full machine
// and drive the prelude's handler paths end to end — repeated handler
// entry, the frame-page contract, the no-kernel return path, and the
// vectored dispatch variant.

import (
	"testing"

	"uexc/internal/arch"
	"uexc/internal/core"
	"uexc/internal/kernel"
)

func boot(t *testing.T, src string) *core.Machine {
	t.Helper()
	m, err := core.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(src); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFastHandlerReentry: the general fast handler must be re-enterable
// back to back — three breakpoints, each delivered to user level and
// resumed via xret — while preserving every register class it claims to
// save (callee-saved, caller-saved temporaries, HI/LO).
func TestFastHandlerReentry(t *testing.T) {
	m := boot(t, `
main:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	la    t0, __skip_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, 1 << 9          # Bp
	jal   __uexc_enable
	nop
	li    s0, 0x1111
	li    s7, 0x2222
	li    t8, 0x3333
	li    t9, 0x4444
	li    t2, 0x5a5a
	mthi  t2
	li    t2, 0xa5a5
	mtlo  t2
	break
	break
	break
	# Any clobber becomes a nonzero exit status.
	li    v0, 0
	li    t3, 0x1111
	bne   s0, t3, bad
	nop
	li    t3, 0x2222
	bne   s7, t3, bad
	nop
	li    t3, 0x3333
	bne   t8, t3, bad
	nop
	li    t3, 0x4444
	bne   t9, t3, bad
	nop
	mfhi  t4
	li    t3, 0x5a5a
	bne   t4, t3, bad
	nop
	mflo  t4
	li    t3, 0xa5a5
	bne   t4, t3, bad
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop
bad:
	li    v0, 1
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop
`)
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := m.CPU().ExcCounts[arch.ExcBp]; got != 3 {
		t.Errorf("Bp exceptions = %d, want 3", got)
	}
	// Simple exceptions are delivered entirely by the first-level
	// assembly (ph_vector): neither delivery counter — both maintained
	// by the kernel's Go paths — may move.
	if m.K.Stats.UnixDeliveries != 0 {
		t.Errorf("unix deliveries = %d, want 0", m.K.Stats.UnixDeliveries)
	}
	if m.K.Stats.FastFallbacks != 0 {
		t.Errorf("fast fallbacks = %d, want 0", m.K.Stats.FastFallbacks)
	}
}

// TestReturnWithoutKernel: a fast-delivered handler resumes via xret,
// never re-entering the kernel — the only syscalls in the whole run are
// the uexc_enable and the final exit. A sigreturn sneaking into the
// resume path would show up as a third.
func TestReturnWithoutKernel(t *testing.T) {
	m := boot(t, `
main:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	la    t0, __skip_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, 1 << 9
	jal   __uexc_enable
	nop
	break
	li    v0, 0
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop
`)
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := m.CPU().ExcCounts[arch.ExcSys]; got != 2 {
		t.Errorf("syscalls = %d, want exactly 2 (uexc_enable + exit)", got)
	}
	if got := m.CPU().ExcCounts[arch.ExcBp]; got != 1 {
		t.Errorf("Bp exceptions = %d, want 1", got)
	}
	if m.K.Stats.UnixDeliveries != 0 {
		t.Errorf("unix deliveries = %d, want 0", m.K.Stats.UnixDeliveries)
	}
}

// TestFramePageLayout: the C-level handler is entered with a0 = the
// pinned frame page, and the kernel's first-level save put EPC, Cause,
// and the faulting registers where the layout constants say.
func TestFramePageLayout(t *testing.T) {
	m := boot(t, `
main:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	la    t0, probe_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, 1 << 9
	jal   __uexc_enable
	nop
	li    t5, 0x77770001      # lands in the frame's FrT5 slot
bp1:
	break
	li    v0, 0
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop

# probe_handler records the frame VA and selected frame words, then
# advances the resume PC past the break.
probe_handler:
	la    t6, probe_out
	sw    a0, 0(t6)
	lw    t7, 0x00(a0)        # FrEPC
	sw    t7, 4(t6)
	lw    t7, 0x04(a0)        # FrCause
	sw    t7, 8(t6)
	lw    t7, 0x40(a0)        # FrT5
	sw    t7, 12(t6)
	lw    t7, 0x00(a0)
	addiu t7, t7, 4
	sw    t7, 0x00(a0)
	jr    ra
	nop

	.align 4
probe_out:
	.word 0, 0, 0, 0
`)
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := m.Sym("probe_out")
	word := func(off uint32) uint32 {
		v, ok := m.K.ReadUserWord(out + off)
		if !ok {
			t.Fatalf("probe_out+%d unreadable", off)
		}
		return v
	}
	// Each exception code gets its own 128-byte frame within the pinned
	// page (ph_compat: frame offset = code * 128).
	wantFrame := uint32(kernel.UserFrameVA) + arch.ExcBp*128
	if got := word(0); got != wantFrame {
		t.Errorf("handler entered with frame VA %#x, want %#x", got, wantFrame)
	}
	if got, want := word(4), m.Sym("bp1"); got != want {
		t.Errorf("FrEPC = %#x, want break address %#x", got, want)
	}
	if got := (word(8) >> 2) & 31; got != arch.ExcBp {
		t.Errorf("FrCause code = %d, want %d (Bp)", got, arch.ExcBp)
	}
	if got := word(12); got != 0x77770001 {
		t.Errorf("FrT5 = %#x, want the sentinel 0x77770001", got)
	}
}

// TestVectoredDispatch: the __fexc_vec variant selects the C handler
// from the per-exception table — a breakpoint and an unaligned load
// must land in different handlers.
func TestVectoredDispatch(t *testing.T) {
	m := boot(t, `
main:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	la    t0, __fexc_vtable
	la    t1, bp_handler
	sw    t1, 36(t0)          # slot 9 (Bp)
	la    t1, adel_handler
	sw    t1, 16(t0)          # slot 4 (AdEL)
	la    a0, __fexc_vec
	li    a1, (1 << 9) | (1 << 4)
	jal   __uexc_enable
	nop
	break
	la    t3, vec_out
	lw    t4, 2(t3)           # AdEL: address % 4 != 0
	li    v0, 0
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop

bp_handler:
	la    t6, vec_out
	li    t7, 0xaa
	sw    t7, 0(t6)
	lw    t7, 0x00(a0)
	addiu t7, t7, 4
	sw    t7, 0x00(a0)
	jr    ra
	nop

adel_handler:
	la    t6, vec_out
	li    t7, 0xbb
	sw    t7, 4(t6)
	lw    t7, 0x00(a0)
	addiu t7, t7, 4
	sw    t7, 0x00(a0)
	jr    ra
	nop

	.align 4
vec_out:
	.word 0, 0
`)
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := m.Sym("vec_out")
	if v, _ := m.K.ReadUserWord(out); v != 0xaa {
		t.Errorf("Bp vector slot handler marker = %#x, want 0xaa", v)
	}
	if v, _ := m.K.ReadUserWord(out + 4); v != 0xbb {
		t.Errorf("AdEL vector slot handler marker = %#x, want 0xbb", v)
	}
	if m.K.Stats.UnixDeliveries != 0 {
		t.Errorf("unix deliveries = %d, want 0", m.K.Stats.UnixDeliveries)
	}
}

// TestTrampolineReentry: the Unix trampoline path must also be
// re-enterable — two breakpoints, each a full sendsig/handler/sigreturn
// round trip.
func TestTrampolineReentry(t *testing.T) {
	m := boot(t, `
main:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	li    a0, 5               # SIGTRAP
	la    a1, __skip_sig_handler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	break
	break
	li    v0, 0
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop
`)
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := m.CPU().ExcCounts[arch.ExcBp]; got != 2 {
		t.Errorf("Bp exceptions = %d, want 2", got)
	}
	if got := m.K.Stats.UnixDeliveries; got != 2 {
		t.Errorf("unix deliveries = %d, want 2", got)
	}
	if m.K.Stats.FastDeliveries != 0 {
		t.Errorf("fast deliveries = %d, want 0", m.K.Stats.FastDeliveries)
	}
}
