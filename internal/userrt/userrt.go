// Package userrt is the simulated user-mode runtime: the assembly
// fragments every user program links against. It provides process
// startup, the Unix signal trampoline, and the two low-level fast
// exception handlers the paper describes — a general one that saves
// "the same state as Ultrix" for fair comparison (§3.3), and a
// specialized minimal one like the pointer-swizzling handler of §4.2.2.
//
// Programs are assembled as Prelude() + user text; the user text must
// define "main". Conventions:
//
//   - main is entered with sp set; returning from main exits with
//     v0 as status.
//   - The C-level fast handler is registered by storing its address at
//     __fexc_chandler; it is called with a0 = the exception frame VA
//     and may rewrite the frame (e.g. advance the resume PC at 0(a0)).
//   - Unix handlers are registered with the sigaction syscall; the
//     trampoline address __sig_trampoline is passed along once.
package userrt

import (
	"fmt"

	"uexc/internal/kernel"
)

// Prelude returns the runtime assembly, to be prepended to user
// program text and assembled at kernel.UserTextBase.
func Prelude() string {
	return fmt.Sprintf(`
	.equ SYS_exit,        %d
	.equ SYS_write,       %d
	.equ SYS_getpid,      %d
	.equ SYS_sbrk,        %d
	.equ SYS_sigaction,   %d
	.equ SYS_sigreturn,   %d
	.equ SYS_mprotect,    %d
	.equ SYS_cycles,      %d
	.equ SYS_uexc_enable, %d
	.equ SYS_uexc_eager,  %d
	.equ SYS_subpage,     %d
	.equ SYS_setubit,     %d
	.equ SYS_uexc_watch,  %d
	.equ SYS_yield,       %d
	.equ SYS_getasid,     %d
	.equ FRAMEPAGE,       %#x
`, kernel.SysExit, kernel.SysWrite, kernel.SysGetpid, kernel.SysSbrk,
		kernel.SysSigaction, kernel.SysSigreturn, kernel.SysMprotect,
		kernel.SysCycles, kernel.SysUexcEnable, kernel.SysUexcEager,
		kernel.SysSubpageProt, kernel.SysSetUBit, kernel.SysUexcWatch,
		kernel.SysYield, kernel.SysGetAsid,
		kernel.UserFrameVA) + preludeAsm
}

const preludeAsm = `
# ----------------------------------------------------------------------
# Process startup.
# ----------------------------------------------------------------------
_start:
	jal   main
	nop
	move  a0, v0
	li    v0, SYS_exit
	syscall
	nop
hang:	b hang
	nop

# ----------------------------------------------------------------------
# Unix signal trampoline (§3.1). sendsig enters here with a0 = signal,
# a1 = code, a2 = scp, a3 = handler, sp = scp. After the handler
# returns, sigreturn restores the (possibly modified) sigcontext.
# ----------------------------------------------------------------------
__sig_trampoline:
	addiu sp, sp, -24
	jalr  a3
	nop
__sig_handler_ret:
	addiu sp, sp, 24
	move  a0, sp
	li    v0, SYS_sigreturn
	syscall
	nop

# ----------------------------------------------------------------------
# General low-level fast exception handler (§3.2.1). The kernel enters
# here with t0 = frame VA, t1 = exception code, and at/v0/v1/a0-a3/
# t0-t5/ra saved in the frame. Saves the remaining user state — the
# same state Ultrix would save — calls the registered C handler, then
# restores everything and jumps to the (possibly adjusted) resume PC
# without re-entering the kernel.
# ----------------------------------------------------------------------
__fexc_low:
	addiu sp, sp, -96
	sw    s0, 0(sp)
	sw    s1, 4(sp)
	sw    s2, 8(sp)
	sw    s3, 12(sp)
	sw    s4, 16(sp)
	sw    s5, 20(sp)
	sw    s6, 24(sp)
	sw    s7, 28(sp)
	sw    t6, 32(sp)
	sw    t7, 36(sp)
	sw    t8, 40(sp)
	sw    t9, 44(sp)
	sw    gp, 48(sp)
	sw    fp, 52(sp)
	mfhi  t3
	sw    t3, 56(sp)
	mflo  t3
	sw    t3, 60(sp)
	sw    t0, 64(sp)
	move  a0, t0
	la    t3, __fexc_chandler
	lw    t3, 0(t3)
	jalr  t3
	nop
__fexc_low_ret:
	lw    t0, 64(sp)
	lw    t3, 60(sp)
	mtlo  t3
	lw    t3, 56(sp)
	mthi  t3
	lw    fp, 52(sp)
	lw    gp, 48(sp)
	lw    t9, 44(sp)
	lw    t8, 40(sp)
	lw    t7, 36(sp)
	lw    t6, 32(sp)
	lw    s7, 28(sp)
	lw    s6, 24(sp)
	lw    s5, 20(sp)
	lw    s4, 16(sp)
	lw    s3, 12(sp)
	lw    s2, 8(sp)
	lw    s1, 4(sp)
	lw    s0, 0(sp)
	addiu sp, sp, 96
__fexc_resume:
	lw    k0, 0x00(t0)        # FrEPC: resume address
	lw    at, 0x0c(t0)
	lw    v0, 0x10(t0)
	lw    v1, 0x14(t0)
	lw    a0, 0x18(t0)
	lw    a1, 0x1c(t0)
	lw    a2, 0x20(t0)
	lw    a3, 0x24(t0)
	lw    t1, 0x2c(t0)
	lw    t2, 0x30(t0)
	lw    t3, 0x34(t0)
	lw    t4, 0x3c(t0)
	lw    t5, 0x40(t0)
	lw    ra, 0x44(t0)
	lw    t0, 0x28(t0)        # t0 last: it held the frame pointer
__fexc_jump:
	mtxt  k0                  # xret jumps through XT and clears the
	xret                      # UEX recursion guard; same 2-cycle cost
	                          # as the jr/nop pair it replaces

# ----------------------------------------------------------------------
# Specialized minimal fast handler (§4.2.2): saves nothing beyond the
# kernel frame — callee-saved registers are the C handler's problem,
# caller-saved t6-t9 are known unused by the specialized handler.
# ----------------------------------------------------------------------
__fexc_min:
	move  a0, t0
	la    t3, __fexc_chandler
	lw    t3, 0(t3)
	jalr  t3
	nop
__fexc_min_ret:
	lw    k0, 0x00(t0)
	lw    at, 0x0c(t0)
	lw    v0, 0x10(t0)
	lw    v1, 0x14(t0)
	lw    a0, 0x18(t0)
	lw    a1, 0x1c(t0)
	lw    a2, 0x20(t0)
	lw    a3, 0x24(t0)
	lw    t1, 0x2c(t0)
	lw    t2, 0x30(t0)
	lw    t3, 0x34(t0)
	lw    ra, 0x44(t0)
	lw    t0, 0x28(t0)
__fexc_min_jump:
	mtxt  k0                  # clears UEX on return, like __fexc_jump
	xret

# ----------------------------------------------------------------------
# Vectored low-level handler (the §2.2 vector-table design point): like
# __fexc_low, but the C-level handler is selected from a per-exception
# table indexed by the code the kernel leaves in t1. The dispatch costs
# two extra instructions over the single-handler path — measuring the
# paper's judgment that a hardware vector table buys "little likely
# performance gain".
# ----------------------------------------------------------------------
__fexc_vec:
	addiu sp, sp, -96
	sw    s0, 0(sp)
	sw    s1, 4(sp)
	sw    s2, 8(sp)
	sw    s3, 12(sp)
	sw    s4, 16(sp)
	sw    s5, 20(sp)
	sw    s6, 24(sp)
	sw    s7, 28(sp)
	sw    t6, 32(sp)
	sw    t7, 36(sp)
	sw    t8, 40(sp)
	sw    t9, 44(sp)
	sw    gp, 48(sp)
	sw    fp, 52(sp)
	mfhi  t3
	sw    t3, 56(sp)
	mflo  t3
	sw    t3, 60(sp)
	sw    t0, 64(sp)
	move  a0, t0
	la    t3, __fexc_vtable
	sll   t5, t1, 2            # code * 4
	addu  t3, t3, t5
	lw    t3, 0(t3)            # per-exception C handler
	jalr  t3
	nop
__fexc_vec_ret:
	lw    t0, 64(sp)
	lw    t3, 60(sp)
	mtlo  t3
	lw    t3, 56(sp)
	mthi  t3
	lw    fp, 52(sp)
	lw    gp, 48(sp)
	lw    t9, 44(sp)
	lw    t8, 40(sp)
	lw    t7, 36(sp)
	lw    t6, 32(sp)
	lw    s7, 28(sp)
	lw    s6, 24(sp)
	lw    s5, 20(sp)
	lw    s4, 16(sp)
	lw    s3, 12(sp)
	lw    s2, 8(sp)
	lw    s1, 4(sp)
	lw    s0, 0(sp)
	addiu sp, sp, 96
	b     __fexc_resume
	nop

# Registered C-level fast handler (a code pointer in user data).
	.align 4
__fexc_chandler:
	.word 0

# Per-exception handler table for __fexc_vec (32 slots, one per
# arch.Exc* code).
__fexc_vtable:
	.space 128

# ----------------------------------------------------------------------
# Null C handlers for microbenchmarks.
# ----------------------------------------------------------------------

# Plain null handler: measures pure delivery cost.
__null_handler:
	jr    ra
	nop

# Null handler that advances the resume PC past the faulting
# instruction (for re-executable faults like breakpoints). Uses t6,
# which neither low-level wrapper needs preserved across the call.
__skip_handler:
	lw    t6, 0(a0)
	nop
	addiu t6, t6, 4
	sw    t6, 0(a0)
	jr    ra
	nop

# Null Unix signal handler.
__null_sig_handler:
	jr    ra
	nop

# Unix signal handler that advances sigcontext's saved EPC by 4.
# a2 = scp on entry to the *trampoline*; the handler receives
# (sig, code, scp) per Ultrix convention, so scp is a2.
__skip_sig_handler:
	lw    t4, 124(a2)         # TfEPC offset within the sigcontext
	nop
	addiu t4, t4, 4
	sw    t4, 124(a2)
	jr    ra
	nop

# ----------------------------------------------------------------------
# Helpers.
# ----------------------------------------------------------------------

# __cycles: v0 = current cycle count (simulator aid).
__cycles:
	li    v0, SYS_cycles
	syscall
	nop
	jr    ra
	nop

# __uexc_enable(a0=handler, a1=mask): enables fast exceptions with the
# standard frame page.
__uexc_enable:
	li    a2, FRAMEPAGE
	li    v0, SYS_uexc_enable
	syscall
	nop
	jr    ra
	nop
`

// Symbols that programs and the measurement harness rely on.
const (
	SymStart          = "_start"
	SymMain           = "main"
	SymTrampoline     = "__sig_trampoline"
	SymSigHandlerRet  = "__sig_handler_ret"
	SymFexcLow        = "__fexc_low"
	SymFexcLowRet     = "__fexc_low_ret"
	SymFexcResume     = "__fexc_resume"
	SymFexcMin        = "__fexc_min"
	SymFexcMinRet     = "__fexc_min_ret"
	SymFexcVec        = "__fexc_vec"
	SymFexcVecRet     = "__fexc_vec_ret"
	SymFexcVtable     = "__fexc_vtable"
	SymFexcCHandler   = "__fexc_chandler"
	SymNullHandler    = "__null_handler"
	SymSkipHandler    = "__skip_handler"
	SymNullSigHandler = "__null_sig_handler"
	SymSkipSigHandler = "__skip_sig_handler"
)
