package userrt

import (
	"testing"

	"uexc/internal/asm"
	"uexc/internal/kernel"
)

func TestPreludeAssembles(t *testing.T) {
	src := Prelude() + `
main:
	li v0, 0
	jr ra
	nop
`
	p, err := asm.Assemble(src, kernel.UserTextBase)
	if err != nil {
		t.Fatalf("prelude does not assemble: %v", err)
	}
	for _, sym := range []string{
		SymStart, SymMain, SymTrampoline, SymSigHandlerRet,
		SymFexcLow, SymFexcLowRet, SymFexcResume, SymFexcMin,
		SymFexcMinRet, SymFexcCHandler, SymNullHandler, SymSkipHandler,
		SymNullSigHandler, SymSkipSigHandler,
		"__cycles", "__uexc_enable",
	} {
		if _, ok := p.Symbol(sym); !ok {
			t.Errorf("prelude lacks symbol %q", sym)
		}
	}
}

func TestPreludeStartsAtTextBase(t *testing.T) {
	p, err := asm.Assemble(Prelude()+"\nmain:\n\tjr ra\n\tnop\n", kernel.UserTextBase)
	if err != nil {
		t.Fatal(err)
	}
	if p.MustSymbol(SymStart) != kernel.UserTextBase {
		t.Errorf("_start at %#x, want %#x", p.MustSymbol(SymStart), kernel.UserTextBase)
	}
}

func TestFrameOffsetsMatchKernelLayout(t *testing.T) {
	// The restore sequences in the prelude hard-code frame offsets;
	// they must agree with the kernel's layout constants.
	offsets := map[string]uint32{
		"FrEPC": kernel.FrEPC, "FrAT": kernel.FrAT, "FrV0": kernel.FrV0,
		"FrV1": kernel.FrV1, "FrA0": kernel.FrA0, "FrA1": kernel.FrA1,
		"FrA2": kernel.FrA2, "FrA3": kernel.FrA3, "FrT0": kernel.FrT0,
		"FrT1": kernel.FrT1, "FrT2": kernel.FrT2, "FrT3": kernel.FrT3,
		"FrT4": kernel.FrT4, "FrT5": kernel.FrT5, "FrRA": kernel.FrRA,
	}
	want := map[string]uint32{
		"FrEPC": 0x00, "FrAT": 0x0c, "FrV0": 0x10, "FrV1": 0x14,
		"FrA0": 0x18, "FrA1": 0x1c, "FrA2": 0x20, "FrA3": 0x24,
		"FrT0": 0x28, "FrT1": 0x2c, "FrT2": 0x30, "FrT3": 0x34,
		"FrT4": 0x3c, "FrT5": 0x40, "FrRA": 0x44,
	}
	for name, w := range want {
		if offsets[name] != w {
			t.Errorf("%s = %#x, prelude assumes %#x", name, offsets[name], w)
		}
	}
}
