// Package soak is the seed-space triage sweep (DESIGN.md §14): it
// drives both campaign engines — the fault-injection campaign and the
// cross-mode differential oracle — over seeds [0, N), with every run
// classified by the typed verdict layer, and fails on any unclassified
// (EngineBug) verdict.
//
// The sweep rides the §12 durable job store: each phase is journaled
// as one job whose merged shard prefix is appended at the engines'
// checkpoint cadence, so a killed soak resumes from its last synced
// prefix and — because shards are deterministic and the merge is
// index-ordered — produces a progress stream, summary, and result
// byte-identical to an undisturbed run at any -parallel width and any
// kill point.
package soak

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"uexc/internal/core"
	"uexc/internal/difftest"
	"uexc/internal/harness"
	"uexc/internal/server/store"
	"uexc/internal/verdict"
)

// Options configures a sweep.
type Options struct {
	// Seeds is the per-phase seed count (<=0: 10_000 — the full triage
	// target).
	Seeds int
	// Workers shards each phase's runs (0: GOMAXPROCS).
	Workers int
	// Dir, when non-empty, holds the §12 journal; empty runs without
	// durability (no resume).
	Dir string
	// Every is the checkpoint cadence in merged shards (<=0: 64).
	Every int
}

// Result aggregates both phases.
type Result struct {
	Campaign *harness.CampaignResult
	Diff     *difftest.Result
}

// Verdicts merges both phases' verdict tallies.
func (r *Result) Verdicts() verdict.Counts {
	var c verdict.Counts
	for k := verdict.Kind(0); k < verdict.NumKinds; k++ {
		c[k] = r.Campaign.Verdicts[k] + r.Diff.Verdicts[k]
	}
	return c
}

// Gate is the soak pass/fail contract: every run classified (zero
// EngineBug verdicts) and both engines' own invariants intact.
func (r *Result) Gate() error {
	if n := r.Verdicts().Unclassified(); n > 0 {
		return fmt.Errorf("soak: %d unclassified (engine-bug) verdicts", n)
	}
	if !r.Campaign.Ok() {
		return fmt.Errorf("soak: fault campaign failed (%d failures, missing coverage: %v)",
			len(r.Campaign.Failures), r.Campaign.MissingCoverage())
	}
	if !r.Diff.Ok() {
		return fmt.Errorf("soak: differential campaign failed (%d divergences, self-test ok: %v)",
			len(r.Diff.Divergences), r.Diff.SelfTestOK)
	}
	return nil
}

// soakReq is a phase job's request spec, journaled verbatim on accept
// and matched byte-for-byte on resume.
type soakReq struct {
	Soak  string `json:"soak"` // "faultcampaign" | "difftest"
	Seeds int    `json:"seeds"`
}

// phase wires one engine sweep to the store: it recovers the journaled
// shard prefix of a matching pending job (or admits a new one), hands
// the engines a save callback that appends only newly merged shards
// and syncs — the §12 checkpoint cadence — and journals the terminal
// verdict. A nil store degrades to a plain in-memory run.
type phase[T any] struct {
	st       *store.Store
	id       uint64
	done     []T
	appended int
}

func openPhase[T any](st *store.Store, state *store.State, kind string, seeds int) (*phase[T], error) {
	p := &phase[T]{st: st}
	if st == nil {
		return p, nil
	}
	req, err := json.Marshal(soakReq{Soak: kind, Seeds: seeds})
	if err != nil {
		return nil, err
	}
	for _, pend := range state.Pending {
		if !bytes.Equal(pend.Req, req) {
			continue
		}
		p.id = pend.ID
		for i, blob := range pend.Shards {
			var t T
			if err := json.Unmarshal(blob, &t); err != nil {
				return nil, fmt.Errorf("soak: journaled shard %d of job %d: %w", i, pend.ID, err)
			}
			p.done = append(p.done, t)
		}
		p.appended = len(p.done)
		return p, nil
	}
	state.MaxID++
	p.id = state.MaxID
	if err := st.AcceptJob(p.id, req, "soak"); err != nil {
		return nil, err
	}
	return p, nil
}

// save is the engines' checkpoint callback: append the prefix growth,
// then sync — the journal's durable frontier is always a contiguous
// shard prefix.
func (p *phase[T]) save(prefix []T) error {
	if p.st == nil {
		return nil
	}
	for i := p.appended; i < len(prefix); i++ {
		blob, err := json.Marshal(prefix[i])
		if err != nil {
			return err
		}
		if err := p.st.AppendShard(p.id, i, blob); err != nil {
			return err
		}
	}
	p.appended = len(prefix)
	return p.st.Sync()
}

func (p *phase[T]) finish(ok bool, summary string) error {
	if p.st == nil {
		return nil
	}
	errText := ""
	if !ok {
		errText = "soak phase failed"
	}
	return p.st.FinishJob(p.id, ok, summary, errText)
}

// Run executes the sweep: the fault campaign phase, then the difftest
// phase, streaming per-shard progress to progress (nil: silent) and
// both summaries plus the merged verdict tally to out. The returned
// Result is complete even when Gate() fails; the error is non-nil only
// when an engine aborted (context cancelled, store I/O failure) — the
// caller applies Gate separately so a failing sweep still reports.
func Run(ctx context.Context, opts Options, progress, out io.Writer) (*Result, error) {
	if opts.Seeds <= 0 {
		opts.Seeds = 10_000
	}
	if opts.Every <= 0 {
		opts.Every = 64
	}

	var (
		st    *store.Store
		state = &store.State{}
	)
	if opts.Dir != "" {
		var err error
		st, state, err = store.Open(opts.Dir, store.Options{})
		if err != nil {
			return nil, err
		}
		defer st.Close()
	}

	pool := &core.MachinePool{}
	res := &Result{}

	cp, err := openPhase[harness.CampaignShard](st, state, "faultcampaign", opts.Seeds)
	if err != nil {
		return nil, err
	}
	res.Campaign, err = harness.FaultCampaignResumeCtx(ctx, pool, opts.Seeds, opts.Workers,
		progress, cp.done, opts.Every, cp.save)
	if err != nil {
		return nil, err
	}
	fmt.Fprint(out, res.Campaign.Summary())

	dp, err := openPhase[difftest.Shard](st, state, "difftest", opts.Seeds)
	if err != nil {
		return nil, err
	}
	res.Diff, err = difftest.CampaignResumeCtx(ctx, pool, opts.Seeds, opts.Workers,
		progress, dp.done, opts.Every, dp.save)
	if err != nil {
		return nil, err
	}
	fmt.Fprint(out, res.Diff.Summary())

	// Finish both jobs only now: a kill during phase 2 keeps phase 1
	// pending with its complete shard prefix, so resume replays it from
	// the journal instead of re-running the whole campaign.
	if err := cp.finish(res.Campaign.Ok(), res.Campaign.Summary()); err != nil {
		return nil, err
	}
	if err := dp.finish(res.Diff.Ok(), res.Diff.Summary()); err != nil {
		return nil, err
	}

	v := res.Verdicts()
	fmt.Fprintf(out, "soak: %d seeds x 2 engines, verdicts:\n", opts.Seeds)
	for k := verdict.Kind(0); k < verdict.NumKinds; k++ {
		fmt.Fprintf(out, "  %-16s %d\n", k, v[k])
	}
	return res, nil
}
