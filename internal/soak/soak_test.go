package soak

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"uexc/internal/difftest"
	"uexc/internal/harness"
	"uexc/internal/verdict"
)

// cancelAfter cancels ctx after n writes to the progress stream —
// a deterministic stand-in for a kill mid-sweep.
type cancelAfter struct {
	mu     sync.Mutex
	left   int
	cancel context.CancelFunc
}

func (c *cancelAfter) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.left--
	if c.left <= 0 {
		c.cancel()
	}
	return len(p), nil
}

// TestSoakResumeByteIdentical: a soak killed at an arbitrary point and
// resumed from its §12 journal must reproduce the undisturbed sweep's
// progress stream, summaries, and verdict tally byte for byte — at a
// different worker width than the original run, since shards are
// deterministic functions of their index.
func TestSoakResumeByteIdentical(t *testing.T) {
	const seeds = 6
	ctx := context.Background()

	var wantProgress, wantOut bytes.Buffer
	want, err := Run(ctx, Options{Seeds: seeds, Workers: 1, Every: 2}, &wantProgress, &wantOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.Gate(); err != nil {
		t.Fatalf("undisturbed sweep gated: %v", err)
	}

	// Kill points: mid fault campaign (21 shards) and mid difftest.
	for _, killAt := range []int{5, 23} {
		t.Run(fmt.Sprintf("killAt=%d", killAt), func(t *testing.T) {
			dir := t.TempDir()
			cctx, cancel := context.WithCancel(ctx)
			defer cancel()
			w := &cancelAfter{left: killAt, cancel: cancel}
			_, err := Run(cctx, Options{Seeds: seeds, Workers: 2, Dir: dir, Every: 2}, w, io.Discard)
			if err == nil {
				t.Fatal("interrupted sweep did not abort")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("abort error = %v, want context.Canceled", err)
			}

			var gotProgress, gotOut bytes.Buffer
			got, err := Run(ctx, Options{Seeds: seeds, Workers: 3, Dir: dir, Every: 2}, &gotProgress, &gotOut)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if gotProgress.String() != wantProgress.String() {
				t.Errorf("resumed progress stream differs:\n--- got ---\n%s--- want ---\n%s",
					gotProgress.String(), wantProgress.String())
			}
			if gotOut.String() != wantOut.String() {
				t.Errorf("resumed output differs:\n--- got ---\n%s--- want ---\n%s",
					gotOut.String(), wantOut.String())
			}
			if got.Verdicts() != want.Verdicts() {
				t.Errorf("verdicts = %v, want %v", got.Verdicts(), want.Verdicts())
			}
			if err := got.Gate(); err != nil {
				t.Errorf("resumed sweep gated: %v", err)
			}
		})
	}
}

// TestSoakDurableRunMatchesEphemeral: journaling must not perturb the
// sweep — a store-backed run and a store-less run are byte-identical.
func TestSoakDurableRunMatchesEphemeral(t *testing.T) {
	const seeds = 4
	ctx := context.Background()
	var p1, o1, p2, o2 bytes.Buffer
	if _, err := Run(ctx, Options{Seeds: seeds, Workers: 2, Every: 3}, &p1, &o1); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ctx, Options{Seeds: seeds, Workers: 2, Dir: t.TempDir(), Every: 3}, &p2, &o2); err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() || o1.String() != o2.String() {
		t.Error("durable run differs from ephemeral run")
	}
}

// TestSoakGate: the gate passes only when every run is classified and
// both engines' invariants hold.
func TestSoakGate(t *testing.T) {
	clean := &Result{Campaign: &harness.CampaignResult{}, Diff: &difftest.Result{SelfTestOK: true}}
	clean.Campaign.Exercised = map[string]uint64{}
	for _, k := range harness.RequiredCoverage {
		clean.Campaign.Exercised[k] = 1
	}
	if err := clean.Gate(); err != nil {
		t.Errorf("clean result gated: %v", err)
	}

	bug := &Result{Campaign: &harness.CampaignResult{}, Diff: &difftest.Result{SelfTestOK: true}}
	bug.Campaign.Exercised = clean.Campaign.Exercised
	bug.Campaign.Verdicts.Add(verdict.EngineBug)
	err := bug.Gate()
	if err == nil || !strings.Contains(err.Error(), "unclassified") {
		t.Errorf("engine-bug result not gated: %v", err)
	}

	div := &Result{Campaign: clean.Campaign, Diff: &difftest.Result{SelfTestOK: false}}
	if div.Gate() == nil {
		t.Error("failed self-test not gated")
	}
}

// TestSoakVerdictsMerge: the merged tally is the sum of both phases.
func TestSoakVerdictsMerge(t *testing.T) {
	r := &Result{Campaign: &harness.CampaignResult{}, Diff: &difftest.Result{}}
	r.Campaign.Verdicts.Add(verdict.Clean)
	r.Campaign.Verdicts.Add(verdict.KnownDivergent)
	r.Diff.Verdicts.Add(verdict.Clean)
	r.Diff.Verdicts.Add(verdict.BudgetScaled)
	v := r.Verdicts()
	if v[verdict.Clean] != 2 || v[verdict.KnownDivergent] != 1 || v[verdict.BudgetScaled] != 1 {
		t.Errorf("merged verdicts = %v", v)
	}
}
