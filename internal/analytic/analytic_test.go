package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBreakEvenTrapMicros(t *testing.T) {
	// Worked example from §4.1's formula: c = 1,000,000 checks of 5
	// cycles, t = 1,000 traps at 25 MHz → y = 200 µs.
	got := BreakEvenTrapMicros(1_000_000, 5, 1_000, 25)
	if math.Abs(got-200) > 1e-9 {
		t.Errorf("y = %v, want 200", got)
	}
	if BreakEvenTrapMicros(100, 5, 0, 25) != 0 {
		t.Error("zero traps must yield 0")
	}
}

func TestBreakEvenMonotonicity(t *testing.T) {
	f := func(cRaw, tRaw uint32) bool {
		c := uint64(cRaw%1_000_000) + 1
		tr := uint64(tRaw%10_000) + 1
		y := BreakEvenTrapMicros(c, 5, tr, 25)
		// More checks → higher break-even; more traps → lower.
		return BreakEvenTrapMicros(2*c, 5, tr, 25) > y &&
			BreakEvenTrapMicros(c, 5, 2*tr, 25) < y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeTable5RowDecision(t *testing.T) {
	r := MakeTable5Row("app", 250_000, 1_000, 18)
	// y = 250000*5/(25*1000) = 50 µs > 18 → exceptions win.
	if math.Abs(r.BreakEvenMicro-50) > 1e-9 || !r.ExceptionsWin {
		t.Errorf("row = %+v", r)
	}
	r = MakeTable5Row("app", 50_000, 1_000, 18)
	// y = 10 µs < 18 → checks win.
	if r.ExceptionsWin {
		t.Errorf("row = %+v, want checks to win", r)
	}
}

func TestSwizzleBreakEvenUses(t *testing.T) {
	// §4.2.2's worked example: cost 6 µs at 25 MHz with checks of c
	// cycles → breakeven when c·u > 150 cycles.
	u := SwizzleBreakEvenUses(5, 6, 25)
	if math.Abs(u-30) > 1e-9 {
		t.Errorf("u = %v, want 30", u)
	}
	// Ultrix (~80 µs): break-even hundreds of uses for cheap checks,
	// as the paper's Figure 3 shows.
	u = SwizzleBreakEvenUses(5, 80, 25)
	if u < 300 {
		t.Errorf("ultrix u = %v, want >= 300", u)
	}
	if SwizzleBreakEvenUses(0, 6, 25) != 0 {
		t.Error("zero check cost must yield 0")
	}
}

func TestFigure3SeriesShape(t *testing.T) {
	pts := Figure3Series(20, 80, 6)
	if len(pts) != 20 {
		t.Fatalf("%d points", len(pts))
	}
	for i, p := range pts {
		if p.UsesFast >= p.UsesUltrix {
			t.Errorf("point %d: fast curve (%.1f) not below ultrix (%.1f)", i, p.UsesFast, p.UsesUltrix)
		}
		if i > 0 && (p.UsesFast >= pts[i-1].UsesFast || p.UsesUltrix >= pts[i-1].UsesUltrix) {
			t.Errorf("point %d: curves not decreasing in check cost", i)
		}
	}
	// The paper's headline shift: the fast mechanism moves the
	// break-even point down by roughly the cost ratio (~13x).
	ratio := pts[4].UsesUltrix / pts[4].UsesFast
	if ratio < 10 || ratio > 16 {
		t.Errorf("curve ratio = %.1f, want ~13", ratio)
	}
}

func TestEagerLazyModel(t *testing.T) {
	// With the trap very cheap and most pointers unused, lazy wins.
	if EagerWins(6, 2, 50, 5) {
		t.Error("eager should lose: 6+100 > 5*8")
	}
	// With traps expensive (Ultrix) and many pointers used, eager wins.
	if !EagerWins(80, 2, 50, 40) {
		t.Error("eager should win: 80+100 < 40*82")
	}
	// Costs are consistent with the decision.
	if EagerCostMicros(80, 2, 50) >= LazyCostMicros(80, 2, 40) {
		t.Error("cost functions disagree with EagerWins")
	}
}

func TestBreakEvenUsedFraction(t *testing.T) {
	// pu* = (t + pn·s)/(t + s); fraction = pu*/pn.
	frac := BreakEvenUsedFraction(80, 2, 50)
	want := (80 + 100.0) / (80 + 2) / 50
	if math.Abs(frac-want) > 1e-12 {
		t.Errorf("frac = %v, want %v", frac, want)
	}
	// Fast delivery lowers the trap cost, RAISING the break-even
	// fraction: lazy swizzling becomes attractive over a wider range —
	// the Figure 4 shift.
	if BreakEvenUsedFraction(6, 2, 50) <= BreakEvenUsedFraction(80, 2, 50) {
		t.Error("fast curve must lie to the right of (above) the ultrix curve")
	}
}

func TestFigure4SeriesShape(t *testing.T) {
	pts := Figure4Series(10, 0.5, 50, 80, 6)
	if len(pts) != 20 {
		t.Fatalf("%d points", len(pts))
	}
	for i, p := range pts {
		if p.FracFast <= p.FracUltrix {
			t.Errorf("point %d: fast frac %.3f not above ultrix %.3f", i, p.FracFast, p.FracUltrix)
		}
		if p.FracUltrix <= 0 || p.FracFast > 1.5 {
			t.Errorf("point %d out of plausible range: %+v", i, p)
		}
	}
	// As the swizzle cost grows, both break-even fractions approach 1
	// (eager swizzling only pays if almost everything is used).
	last := pts[len(pts)-1]
	if last.FracUltrix < pts[0].FracUltrix {
		t.Error("ultrix fraction should grow with swizzle cost")
	}
}

func TestFigure4ConsistentWithEagerWins(t *testing.T) {
	f := func(tRaw, sRaw, puRaw uint8) bool {
		trap := float64(tRaw%100) + 1
		s := float64(sRaw%20)/2 + 0.5
		pn := 50
		frac := BreakEvenUsedFraction(trap, s, pn)
		pu := float64(puRaw % uint8(pn+1))
		wins := EagerWins(trap, s, pn, pu)
		// EagerWins iff pu/pn > break-even fraction.
		return wins == (pu/float64(pn) > frac)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
