// Package analytic implements the paper's break-even models:
//
//   - Table 5 (§4.1): page-protection exceptions beat inline software
//     write-barrier checks when the per-exception cost y (µs) satisfies
//     y < c·x / (f·t), with c checks of x cycles each, t exceptions,
//     and clock f MHz.
//   - Figure 3 (§4.2.2): exception-based residency detection beats
//     per-dereference software checks when a pointer is used u times
//     with checks of c cycles: u·c > f·y, i.e. the break-even curve
//     u(c) = f·y / c.
//   - Figure 4 (§4.2.2): eager swizzling beats lazy swizzling when
//     t + pn·s < pu·(t + s), with t the per-exception time, s the
//     per-pointer swizzle time, pn pointers per page and pu pointers
//     actually used; the break-even fraction is
//     pu*(s) = (t + pn·s) / (t + s) / pn.
//
// All functions are pure; the benchmark harness feeds them measured
// exception costs and workload-counted c and t values.
package analytic

import "uexc/internal/cpu"

// BreakEvenTrapMicros returns Table 5's break-even exception cost
// y = c·x/(f·t) in µs: exceptions win if the real per-exception cost is
// below this.
//
//	checks  — number of software checks the application executes (c)
//	perCk   — cycles per check (x; the paper uses 5)
//	traps   — number of exceptions the protection scheme takes (t)
//	clockMHz— f
func BreakEvenTrapMicros(checks uint64, perCk float64, traps uint64, clockMHz float64) float64 {
	if traps == 0 {
		return 0
	}
	return float64(checks) * perCk / (clockMHz * float64(traps))
}

// Table5Row is one application's break-even entry.
type Table5Row struct {
	App            string
	Checks         uint64  // c
	Traps          uint64  // t
	BreakEvenMicro float64 // y
	// ExceptionsWin reports whether the measured fast exception cost is
	// under the break-even (filled by the harness).
	FastCostMicro float64
	ExceptionsWin bool
}

// MakeTable5Row computes a row from counted inputs and a measured
// exception cost, at the paper's parameters (x = 5 cycles, f = 25 MHz).
func MakeTable5Row(app string, checks, traps uint64, fastCostMicro float64) Table5Row {
	y := BreakEvenTrapMicros(checks, 5, traps, cpu.ClockMHz)
	return Table5Row{
		App: app, Checks: checks, Traps: traps,
		BreakEvenMicro: y, FastCostMicro: fastCostMicro,
		ExceptionsWin: fastCostMicro < y,
	}
}

// SwizzleBreakEvenUses returns Figure 3's break-even number of uses per
// pointer: with checks of c cycles and an exception cost of y µs at
// f MHz, exceptions win once a pointer is dereferenced more than
// u = f·y/c times.
func SwizzleBreakEvenUses(checkCycles float64, trapMicros float64, clockMHz float64) float64 {
	if checkCycles <= 0 {
		return 0
	}
	return clockMHz * trapMicros / checkCycles
}

// Figure3Point is one sample of the Figure 3 curves.
type Figure3Point struct {
	CheckCycles float64
	UsesUltrix  float64 // break-even uses under Ultrix delivery
	UsesFast    float64 // break-even uses under fast delivery
}

// Figure3Series samples the two break-even curves of Figure 3 over
// check costs [1, maxCheck] cycles, given measured per-exception costs.
func Figure3Series(maxCheck int, ultrixMicros, fastMicros float64) []Figure3Point {
	pts := make([]Figure3Point, 0, maxCheck)
	for c := 1; c <= maxCheck; c++ {
		pts = append(pts, Figure3Point{
			CheckCycles: float64(c),
			UsesUltrix:  SwizzleBreakEvenUses(float64(c), ultrixMicros, cpu.ClockMHz),
			UsesFast:    SwizzleBreakEvenUses(float64(c), fastMicros, cpu.ClockMHz),
		})
	}
	return pts
}

// EagerWins reports Figure 4's comparison for concrete parameters:
// eager swizzling is preferable when t + pn·s < pu·(t+s), everything in
// consistent units (µs).
func EagerWins(trapMicros, swizzleMicros float64, ptrsPerPage int, ptrsUsed float64) bool {
	return trapMicros+float64(ptrsPerPage)*swizzleMicros < ptrsUsed*(trapMicros+swizzleMicros)
}

// LazyCostMicros and EagerCostMicros give the two policies' per-page
// costs for Figure 4's model.
func LazyCostMicros(trapMicros, swizzleMicros, ptrsUsed float64) float64 {
	return ptrsUsed * (trapMicros + swizzleMicros)
}

// EagerCostMicros is the eager policy's per-page cost: one page-access
// trap plus swizzling every pointer up front.
func EagerCostMicros(trapMicros, swizzleMicros float64, ptrsPerPage int) float64 {
	return trapMicros + float64(ptrsPerPage)*swizzleMicros
}

// BreakEvenUsedFraction returns the fraction of a page's pn pointers
// that must be used before eager swizzling wins: pu*/pn with
// pu* = (t + pn·s)/(t + s). Values above 1 mean eager never wins for
// these parameters; below 0 cannot occur.
func BreakEvenUsedFraction(trapMicros, swizzleMicros float64, ptrsPerPage int) float64 {
	puStar := (trapMicros + float64(ptrsPerPage)*swizzleMicros) / (trapMicros + swizzleMicros)
	return puStar / float64(ptrsPerPage)
}

// Figure4Point is one sample of the Figure 4 curves.
type Figure4Point struct {
	SwizzleMicros float64
	FracUltrix    float64 // break-even used-fraction under Ultrix
	FracFast      float64 // break-even used-fraction under fast delivery
}

// Figure4Series samples the break-even used-pointer fraction over
// swizzle costs [step, maxS] µs, at pn pointers per page (the paper
// plots pn = 50).
func Figure4Series(maxS, step float64, ptrsPerPage int, ultrixMicros, fastMicros float64) []Figure4Point {
	var pts []Figure4Point
	for s := step; s <= maxS+1e-9; s += step {
		pts = append(pts, Figure4Point{
			SwizzleMicros: s,
			FracUltrix:    BreakEvenUsedFraction(ultrixMicros, s, ptrsPerPage),
			FracFast:      BreakEvenUsedFraction(fastMicros, s, ptrsPerPage),
		})
	}
	return pts
}
