package core

import (
	"testing"

	"uexc/internal/arch"
)

// TestProtChangeMechanisms is ablation D: the three ways user code can
// change page protection, per §2.2 (hardware U bit) and §3.2.3
// (kernel-emulated opcode, conventional mprotect).
func TestProtChangeMechanisms(t *testing.T) {
	hw, err := MeasureProtChange(ProtMechHardware, 40)
	if err != nil {
		t.Fatal(err)
	}
	emul, err := MeasureProtChange(ProtMechEmulated, 40)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := MeasureProtChange(ProtMechSyscall, 40)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("protection change: hardware %.2fµs, emulated opcode %.2fµs, mprotect %.2fµs",
		Micros(uint64(hw)), Micros(uint64(emul)), Micros(uint64(sys)))

	// Hardware must be dramatically cheaper than either software path.
	if hw*10 > emul || hw*10 > sys {
		t.Errorf("hardware utlbmod (%.0f cyc) should be >10x cheaper than software (%.0f/%.0f)",
			hw, emul, sys)
	}
	// The paper's caveat on the software approach: "may not provide
	// acceptable performance" — the trapped emulation must not beat the
	// plain syscall by much (it takes a full exception plus the same
	// page-table work).
	if emul < sys/2 {
		t.Errorf("emulated opcode (%.0f cyc) implausibly beats mprotect (%.0f cyc)", emul, sys)
	}
	// Sanity: a hardware protection toggle is a handful of cycles.
	if hw > 25 {
		t.Errorf("hardware toggle = %.0f cycles, want a few", hw)
	}
}

// TestEmulatedUTLBModHonorsUBit: without the U bit, the emulated opcode
// must be refused (SIGILL termination), same as hardware.
func TestEmulatedUTLBModHonorsUBit(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	li    a0, 8192
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	sw    zero, 0(s1)
	li    t1, 2
	utlbmod s1, t1       # no U bit granted: refused
	li    v0, 0
	jr    ra
	nop
`)
	if err != nil {
		t.Fatal(err)
	}
	m.SetHardwareUTLBMod(false)
	if err := m.Run(5_000_000); err == nil {
		t.Fatal("utlbmod without U bit succeeded")
	}
	if m.K.Stats.UTLBEmuls != 0 {
		t.Errorf("emulations = %d, want 0", m.K.Stats.UTLBEmuls)
	}
	if m.K.Stats.Terminations != 1 {
		t.Errorf("terminations = %d, want 1 (SIGILL)", m.K.Stats.Terminations)
	}
}

// TestEmulatedUTLBModChangesProtection: the emulated opcode's effect is
// equivalent to the hardware's, and subsequent stores fault.
func TestEmulatedUTLBModChangesProtection(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __null_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)
	jal   __uexc_enable
	nop
	li    a0, 1
	li    v0, SYS_uexc_eager
	syscall
	nop
	li    a0, 8192
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	sw    zero, 0(s1)
	move  a0, s1
	li    a1, 1
	li    v0, SYS_setubit
	syscall
	nop
	li    t1, 2
	utlbmod s1, t1       # emulated: write-protect the page
	li    t8, 0x42
	sw    t8, 0(s1)      # Mod fault -> fast delivery -> eager retry
	lw    t9, 0(s1)
	la    t0, result
	sw    t9, 0(t0)
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop
	.align 4
result:
	.word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	m.SetHardwareUTLBMod(false)
	if err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.userWord("result"); got != 0x42 {
		t.Errorf("result = %#x, want 0x42", got)
	}
	if m.K.Stats.UTLBEmuls != 1 {
		t.Errorf("emulations = %d, want 1", m.K.Stats.UTLBEmuls)
	}
	if m.K.Stats.ProtFaultsToUser != 1 {
		t.Errorf("deliveries = %d, want 1 (write-protect worked)", m.K.Stats.ProtFaultsToUser)
	}
}

// TestVectoredDispatchRoutesByCode: the §2.2 vector-table variant sends
// each exception code to its own handler.
func TestVectoredDispatchRoutesByCode(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t1, __fexc_vtable
	la    t0, bp_handler
	sw    t0, 9*4(t1)          # vtable[Bp]
	la    t0, ov_handler
	sw    t0, 12*4(t1)         # vtable[Ov]
	la    a0, __fexc_vec
	li    a1, (1<<9)|(1<<12)   # Bp | Ov
	jal   __uexc_enable
	nop
	break
	li    t8, 0x7fffffff
	li    t9, 1
	add   t8, t8, t9           # overflow
	break
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

bp_handler:
	la    t6, bp_count
	lw    t7, 0(t6)
	nop
	addiu t7, t7, 1
	sw    t7, 0(t6)
	lw    t6, 0(a0)
	nop
	addiu t6, t6, 4
	sw    t6, 0(a0)
	jr    ra
	nop
ov_handler:
	la    t6, ov_count
	lw    t7, 0(t6)
	nop
	addiu t7, t7, 1
	sw    t7, 0(t6)
	lw    t6, 0(a0)
	nop
	addiu t6, t6, 4
	sw    t6, 0(a0)
	jr    ra
	nop
	.align 4
bp_count:
	.word 0
ov_count:
	.word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.userWord("bp_count"); got != 2 {
		t.Errorf("bp_count = %d, want 2", got)
	}
	if got := m.userWord("ov_count"); got != 1 {
		t.Errorf("ov_count = %d, want 1", got)
	}
}

// TestVectoredDispatchOverhead: the paper judged a hardware vector
// table to add complexity for "little likely performance gain"; the
// user-level table dispatch costs only a couple of instructions over
// the single-handler path.
func TestVectoredDispatchOverhead(t *testing.T) {
	vec, err := MeasureVectoredDispatch(40)
	if err != nil {
		t.Fatal(err)
	}
	single, err := MeasureSimpleException(ModeFast, 40)
	if err != nil {
		t.Fatal(err)
	}
	delta := vec.RoundTrip - single.RoundTrip
	t.Logf("vectored rt %.2fµs vs single rt %.2fµs (delta %.0f cycles)",
		vec.RoundTripMicros(), single.RoundTripMicros(), delta)
	if delta < 0 || delta > 10 {
		t.Errorf("dispatch delta = %.1f cycles, want a couple", delta)
	}
}

// TestNestedFastExceptionOverwritesFrame documents §3.2's stated
// semantics: "a nested exception of the same type will overwrite the
// information saved by the kernel on the first exception of that type".
func TestNestedFastExceptionOverwritesFrame(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	// The first handler invocation itself executes a break; the frame's
	// saved EPC then points at the nested break, not the original one.
	err = m.LoadProgram(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, nesting_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, 1 << 9
	jal   __uexc_enable
	nop
first:
	break
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

nesting_handler:
	la    t6, depth
	lw    t7, 0(t6)
	nop
	bnez  t7, inner            # second (nested) invocation
	nop
	li    t7, 1
	sw    t7, 0(t6)
	la    t6, epc_first
	lw    t7, 0(a0)
	nop
	sw    t7, 0(t6)            # record EPC before nesting
nested:
	break                      # NESTED exception: overwrites the frame
	la    t6, epc_after
	lw    t7, 0(a0)
	nop
	sw    t7, 0(t6)            # frame EPC now points at the nested break (+4)
	# repair: resume after the original break
	la    t6, epc_first
	lw    t7, 0(t6)
	nop
	addiu t7, t7, 4
	sw    t7, 0(a0)
	jr    ra
	nop
inner:
	lw    t6, 0(a0)            # nested invocation: just skip the break
	nop
	addiu t6, t6, 4
	sw    t6, 0(a0)
	jr    ra
	nop
	.align 4
depth:
	.word 0
epc_first:
	.word 0
epc_after:
	.word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	first := m.userWord("epc_first")
	after := m.userWord("epc_after")
	nested := m.Sym("nested")
	if first != m.Sym("first") {
		t.Errorf("first EPC = %#x, want %#x", first, m.Sym("first"))
	}
	// The nested exception overwrote the frame: the recorded EPC is the
	// nested break advanced past by the inner handler.
	if after != nested+4 {
		t.Errorf("frame EPC after nesting = %#x, want %#x (overwritten)", after, nested+4)
	}
	if m.CPU().ExcCounts[arch.ExcBp] != 2 {
		t.Errorf("breakpoints = %d, want 2", m.CPU().ExcCounts[arch.ExcBp])
	}
}

// TestEagerStatsAccounting: eager amplification fires only when
// enabled, and the non-eager path takes in-handler mprotect syscalls
// instead.
func TestEagerStatsAccounting(t *testing.T) {
	_, mEager, err := runTimedLoop(timedLoopSpec{
		prog:         writeProtFastProg(5, true),
		handlerEntry: "__null_handler",
		handlerExit:  "__fexc_low_ret",
		codeMask:     1 << 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mEager.K.Stats.EagerAmplifies < 5 {
		t.Errorf("eager amplifies = %d, want >= 5", mEager.K.Stats.EagerAmplifies)
	}
	_, mPlain, err := runTimedLoop(timedLoopSpec{
		prog:         writeProtFastProg(5, false),
		handlerEntry: "wp_chandler",
		handlerExit:  "__fexc_low_ret",
		codeMask:     1 << 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mPlain.K.Stats.EagerAmplifies != 0 {
		t.Errorf("non-eager run amplified %d times", mPlain.K.Stats.EagerAmplifies)
	}
}
