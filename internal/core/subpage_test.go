package core

import "testing"

// TestSubpageDelaySlotEmulation exercises the trickiest path of §3.2.4:
// the faulting store sits in a branch delay slot, so the kernel must
// emulate the branch in addition to the store, for both taken and
// not-taken branches.
func TestSubpageDelaySlotEmulation(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __null_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)
	jal   __uexc_enable
	nop
	li    a0, 8192
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	sw    zero, 0(s1)
	move  a0, s1              # protect subpage [0,1K) only
	li    a1, 1024
	li    a2, 0
	li    v0, SYS_subpage
	syscall
	nop

	# Case 1: taken branch with faulting store in the delay slot.
	li    s2, 1
	li    t8, 0x111
	bnez  s2, taken1
	sw    t8, 2048(s1)        # unprotected subpage: emulated
	# (skipped on the taken path)
	la    t9, results
	sw    zero, 0(t9)
	b     case2
	nop
taken1:
	la    t9, results
	li    t8, 1
	sw    t8, 0(t9)           # results[0] = 1: branch was honored

case2:
	# Case 2: not-taken branch with faulting store in the delay slot.
	li    s2, 0
	li    t8, 0x222
	bnez  s2, taken2
	sw    t8, 2052(s1)        # emulated; fall-through must continue
	la    t9, results
	li    t8, 2
	sw    t8, 4(t9)           # results[1] = 2: fall-through honored
	b     case3
	nop
taken2:
	la    t9, results
	sw    zero, 4(t9)

case3:
	# Case 3: jal with faulting store in the delay slot.
	li    t8, 0x333
	jal   subfn
	sw    t8, 2056(s1)        # emulated; call must proceed & return

	# Verify the emulated stores' values via loads (page now has D
	# cleared but V set, loads are fine).
	lw    t8, 2048(s1)
	la    t9, results
	sw    t8, 12(t9)
	lw    t8, 2052(s1)
	sw    t8, 16(t9)
	lw    t8, 2056(s1)
	sw    t8, 20(t9)
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

subfn:
	la    t9, results
	li    t8, 3
	sw    t8, 8(t9)           # results[2] = 3: call happened
	jr    ra
	nop

	.align 4
results:
	.space 24
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	base := m.Sym("results")
	want := []uint32{1, 2, 3, 0x111, 0x222, 0x333}
	names := []string{"taken-branch path", "fall-through path", "jal call",
		"store under taken branch", "store under not-taken branch", "store under jal"}
	for i, w := range want {
		got, ok := m.K.ReadUserWord(base + uint32(4*i))
		if !ok || got != w {
			t.Errorf("%s: results[%d] = %#x, want %#x", names[i], i, got, w)
		}
	}
	if m.K.Stats.SubpageEmuls != 3 {
		t.Errorf("subpage emulations = %d, want 3", m.K.Stats.SubpageEmuls)
	}
	// No delivery happened for unprotected-subpage stores.
	if m.K.Stats.ProtFaultsToUser != 0 {
		t.Errorf("deliveries = %d, want 0", m.K.Stats.ProtFaultsToUser)
	}
}

// TestSubpageProtectedDelivers checks the complementary case: a store
// into the protected subpage is delivered, and the kernel amplified the
// page so the handler's return retries successfully.
func TestSubpageProtectedDelivers(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __null_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)
	jal   __uexc_enable
	nop
	li    a0, 8192
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	sw    zero, 0(s1)
	move  a0, s1
	li    a1, 1024
	li    a2, 0
	li    v0, SYS_subpage
	syscall
	nop
	li    t8, 0x777
	sw    t8, 512(s1)         # protected subpage: delivered, amplified, retried
	lw    t9, 512(s1)
	la    t0, result
	sw    t9, 0(t0)
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop
	.align 4
result:
	.word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.userWord("result"); got != 0x777 {
		t.Errorf("result = %#x, want 0x777", got)
	}
	if m.K.Stats.ProtFaultsToUser != 1 {
		t.Errorf("deliveries = %d, want 1", m.K.Stats.ProtFaultsToUser)
	}
	if m.K.Stats.SubpageEmuls != 0 {
		t.Errorf("emulations = %d, want 0", m.K.Stats.SubpageEmuls)
	}
}

// TestWatchModeDelaySlot: the watched store sits in a branch delay
// slot; the kernel must emulate the store, honor the branch decision,
// and still deliver the notification with correct old/new values.
func TestWatchModeDelaySlot(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, obs_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)
	jal   __uexc_enable
	nop
	li    a0, 1
	li    v0, SYS_uexc_watch
	syscall
	nop
	li    a0, 8192
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	li    t8, 7
	sw    t8, 0(s1)            # pre-existing value (old)
	move  a0, s1
	li    a1, 1024
	li    a2, 0
	li    v0, SYS_subpage
	syscall
	nop

	li    t8, 99
	li    t9, 1
	bnez  t9, taken            # taken branch...
	sw    t8, 0(s1)            # ...with the watched store in its delay slot
	la    t0, path
	sw    zero, 0(t0)          # must be skipped
	b     done
	nop
taken:
	la    t0, path
	li    t1, 1
	sw    t1, 0(t0)
done:
	lw    t2, 0(s1)
	la    t0, final
	sw    t2, 0(t0)
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

obs_handler:
	lw    t6, 0x48(a0)         # old
	la    t7, oldv
	sw    t6, 0(t7)
	lw    t6, 0x4c(a0)         # new
	la    t7, newv
	sw    t6, 0(t7)
	jr    ra
	nop
	.align 4
path:	.word 0xff
oldv:	.word 0
newv:	.word 0
final:	.word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.userWord("path"); got != 1 {
		t.Errorf("path = %d, want 1 (branch honored)", got)
	}
	if got := m.userWord("oldv"); got != 7 {
		t.Errorf("old = %d, want 7", got)
	}
	if got := m.userWord("newv"); got != 99 {
		t.Errorf("new = %d, want 99", got)
	}
	if got := m.userWord("final"); got != 99 {
		t.Errorf("final = %d, want 99 (store landed)", got)
	}
	if m.K.Stats.WatchHits != 1 {
		t.Errorf("watch hits = %d, want 1", m.K.Stats.WatchHits)
	}
}
