package core

import (
	"strings"
	"testing"
)

// TestFastFallbackToUnixTermination: a process with fast delivery
// enabled stores to an address outside its address space; the fast path
// must recognize the genuine violation and fall back to the Unix
// machinery, terminating with SIGSEGV.
func TestFastFallbackToUnixTermination(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __null_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)
	jal   __uexc_enable
	nop
	li    t0, 0x06000000     # a hole: no region there
	sw    zero, 0(t0)
	li    v0, 0
	jr    ra
	nop
`)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(5_000_000)
	if err == nil {
		t.Fatal("store to hole succeeded")
	}
	if !strings.Contains(err.Error(), "139") { // 128 + SIGSEGV(11)
		t.Errorf("err = %v, want SIGSEGV status 139", err)
	}
	// The fast user handler must NOT have been given the error.
	if m.K.Stats.ProtFaultsToUser != 0 {
		t.Errorf("genuine violation delivered to fast handler %d times", m.K.Stats.ProtFaultsToUser)
	}
	if m.K.Stats.Terminations != 1 {
		t.Errorf("terminations = %d", m.K.Stats.Terminations)
	}
}

// TestFastFallbackToUnixHandler: the same genuine violation, but the
// process installed a SIGSEGV handler — the kernel must route the fast
// path's fallback through sendsig and the trampoline ("the kernel can
// still send such exceptions up to user level", §2.2).
func TestFastFallbackToUnixHandler(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __null_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)
	jal   __uexc_enable
	nop
	li    a0, 11               # SIGSEGV via the Unix interface too
	la    a1, segv_handler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	li    t0, 0x06000000
	sw    zero, 0(t0)          # genuine violation
resume_point:
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

segv_handler:
	la    t6, caught
	li    t7, 1
	sw    t7, 0(t6)
	la    t7, resume_point     # skip the bad store entirely
	sw    t7, 124(a2)          # sigcontext EPC
	jr    ra
	nop
	.align 4
caught:
	.word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.userWord("caught"); got != 1 {
		t.Errorf("caught = %d, want 1 (Unix handler ran)", got)
	}
	if m.K.Stats.UnixDeliveries != 1 {
		t.Errorf("unix deliveries = %d, want 1", m.K.Stats.UnixDeliveries)
	}
	if m.K.Stats.ProtFaultsToUser != 0 {
		t.Errorf("fast deliveries = %d, want 0", m.K.Stats.ProtFaultsToUser)
	}
}

// TestMixedFastAndUnixSignals: a process can use the fast mechanism for
// one exception class while receiving conventional signals for another
// ("applications that use our mechanisms can receive conventional Unix
// signals if desired", §3).
func TestMixedFastAndUnixSignals(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __skip_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, 1 << 9           # fast: breakpoints only
	jal   __uexc_enable
	nop
	li    a0, 8                # Unix: SIGFPE for overflow
	la    a1, fpe_handler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	break                      # fast path
	li    t8, 0x7fffffff
	li    t9, 1
	add   t8, t8, t9           # overflow: Unix path
	break                      # fast path again
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

fpe_handler:
	la    t6, fpe_count
	lw    t7, 0(t6)
	nop
	addiu t7, t7, 1
	sw    t7, 0(t6)
	lw    t7, 124(a2)
	nop
	addiu t7, t7, 4
	sw    t7, 124(a2)
	jr    ra
	nop
	.align 4
fpe_count:
	.word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.userWord("fpe_count"); got != 1 {
		t.Errorf("fpe_count = %d, want 1", got)
	}
	if m.K.Stats.UnixDeliveries != 1 {
		t.Errorf("unix deliveries = %d, want 1", m.K.Stats.UnixDeliveries)
	}
	if m.CPU().ExcCounts[9] != 2 {
		t.Errorf("breakpoints = %d, want 2", m.CPU().ExcCounts[9])
	}
}
