package core

import (
	"strings"
	"testing"
)

func TestHelloWorldSyscall(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    a0, 1
	la    a1, msg
	li    a2, 6
	li    v0, SYS_write
	syscall
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop
msg:	.asciiz "hello\n"
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.K.Console(); got != "hello\n" {
		t.Errorf("console = %q", got)
	}
	if done, status := m.K.Exited(); !done || status != 0 {
		t.Errorf("exit = %v/%d", done, status)
	}
}

func TestHeapDemandPaging(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	// Touch 16 fresh heap pages; each first store demand-faults.
	err = m.LoadProgram(`
main:
	li    a0, 0x10000        # sbrk 64K
	li    v0, SYS_sbrk
	syscall
	nop
	move  t0, v0
	li    t1, 16
loop:
	sw    t1, 0(t0)
	lw    t2, 0(t0)
	bne   t2, t1, bad
	nop
	addiu t0, t0, 4096
	addiu t1, t1, -1
	bnez  t1, loop
	nop
	li    v0, 0
	jr    ra
	nop
bad:
	li    v0, 1
	jr    ra
	nop
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.K.Stats.PageFaults < 16 {
		t.Errorf("page faults = %d, want >= 16", m.K.Stats.PageFaults)
	}
}

func TestUnhandledFaultTerminates(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	break            # no SIGTRAP handler installed
	li    v0, 0
	jr    ra
	nop
`)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(1_000_000)
	if err == nil {
		t.Fatal("expected termination error")
	}
	if !strings.Contains(err.Error(), "133") { // 128 + SIGTRAP(5)
		t.Errorf("err = %v, want status 133", err)
	}
	if m.K.Stats.Terminations != 1 {
		t.Errorf("terminations = %d", m.K.Stats.Terminations)
	}
}

func TestUnixSignalDeliveryAndSigreturn(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	// Handler increments a counter and advances the sigcontext EPC;
	// main takes 3 breakpoints.
	err = m.LoadProgram(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    a0, 5
	la    a1, counter_handler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	break
	break
	break
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

counter_handler:
	la    t6, counter
	lw    t7, 0(t6)
	nop
	addiu t7, t7, 1
	sw    t7, 0(t6)
	lw    t7, 124(a2)     # sigcontext EPC
	nop
	addiu t7, t7, 4
	sw    t7, 124(a2)
	jr    ra
	nop
	.align 4
counter:
	.word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.userWord("counter"); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if m.K.Stats.UnixDeliveries != 3 {
		t.Errorf("unix deliveries = %d, want 3", m.K.Stats.UnixDeliveries)
	}
}

func TestFastExceptionDelivery(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, count_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, 1 << 9
	jal   __uexc_enable
	nop
	li    s0, 5
loop:
	break
	addiu s0, s0, -1
	bnez  s0, loop
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

# C-level handler: count, advance frame EPC past the break.
count_handler:
	la    t6, counter
	lw    t7, 0(t6)
	nop
	addiu t7, t7, 1
	sw    t7, 0(t6)
	lw    t6, 0(a0)
	nop
	addiu t6, t6, 4
	sw    t6, 0(a0)
	jr    ra
	nop
	.align 4
counter:
	.word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.userWord("counter"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if m.K.Stats.FastDeliveries != 0 {
		// Simple (non-TLB) exceptions do not pass through tlbProt, so
		// FastDeliveries only counts protection faults; breakpoints are
		// delivered entirely in assembly. Verify via exception counts.
		t.Logf("fast deliveries (prot) = %d", m.K.Stats.FastDeliveries)
	}
	if m.CPU().ExcCounts[9] < 5 {
		t.Errorf("breakpoint exceptions = %d, want >= 5", m.CPU().ExcCounts[9])
	}
	// The Unix machinery must not have been involved.
	if m.K.Stats.UnixDeliveries != 0 {
		t.Errorf("unix deliveries = %d, want 0", m.K.Stats.UnixDeliveries)
	}
}

// TestFastPathPreservesRegisters is the paper's correctness core: after
// a fast-delivered exception and return, every register the application
// relies on is intact.
func TestFastPathPreservesRegisters(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __skip_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, 1 << 9
	jal   __uexc_enable
	nop
	# Load distinctive values into every preservable register.
	li    at, 0x10101
	li    v0, 0x20202
	li    v1, 0x30303
	li    a0, 0x40404
	li    a1, 0x50505
	li    a2, 0x60606
	li    a3, 0x70707
	li    t0, 0x80808
	li    t1, 0x90909
	li    t2, 0xa0a0a
	li    t3, 0xb0b0b
	li    t4, 0xc0c0c
	li    t5, 0xd0d0d
	li    t6, 0xe0e0e
	li    t7, 0xf0f0f
	li    s0, 0x11111
	li    s1, 0x22222
	li    s2, 0x33333
	li    s3, 0x44444
	li    s4, 0x55555
	li    s5, 0x66666
	li    s6, 0x77777
	li    s7, 0x88888
	li    t8, 0x99999
	li    t9, 0xaaaaa
	break
	# Accumulate a checksum of all registers.
	la    gp, sum            # gp free for addressing
	sw    at, 0(gp)
	sw    v0, 4(gp)
	sw    v1, 8(gp)
	sw    a0, 12(gp)
	sw    a1, 16(gp)
	sw    a2, 20(gp)
	sw    a3, 24(gp)
	sw    t0, 28(gp)
	sw    t1, 32(gp)
	sw    t2, 36(gp)
	sw    t3, 40(gp)
	sw    t4, 44(gp)
	sw    t5, 48(gp)
	sw    t6, 52(gp)
	sw    t7, 56(gp)
	sw    s0, 60(gp)
	sw    s1, 64(gp)
	sw    s2, 68(gp)
	sw    s3, 72(gp)
	sw    s4, 76(gp)
	sw    s5, 80(gp)
	sw    s6, 84(gp)
	sw    s7, 88(gp)
	sw    t8, 92(gp)
	sw    t9, 96(gp)
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop
	.align 4
sum:	.space 100
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	want := []uint32{
		0x10101, 0x20202, 0x30303, 0x40404, 0x50505, 0x60606, 0x70707,
		0x80808, 0x90909, 0xa0a0a, 0xb0b0b, 0xc0c0c, 0xd0d0d, 0xe0e0e,
		0xf0f0f, 0x11111, 0x22222, 0x33333, 0x44444, 0x55555, 0x66666,
		0x77777, 0x88888, 0x99999, 0xaaaaa,
	}
	base := m.Sym("sum")
	names := []string{"at", "v0", "v1", "a0", "a1", "a2", "a3",
		"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
		"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9"}
	for i, w := range want {
		got, ok := m.K.ReadUserWord(base + uint32(4*i))
		if !ok || got != w {
			t.Errorf("register %s = %#x after fast exception, want %#x", names[i], got, w)
		}
	}
}
