package core

import (
	"fmt"

	"uexc/internal/asm"
	"uexc/internal/kernel"
)

// Snapshot is a point-in-time copy of a whole Machine — CPU registers,
// TLB, kernel state, and page contents — built by Machine.Snapshot.
// It is immutable after capture and safe to share across goroutines:
// one warm post-boot snapshot backs every fork and restore in a
// MachinePool.
//
// Restore semantics are copy-on-write against the mem.Page store
// generations the predecode and JIT caches already maintain: a page
// whose generation is unchanged since it last matched the snapshot is
// skipped, so restoring a machine costs O(dirty pages), and every page
// that IS rewritten advances its generation — the same invalidation
// signal a guest store emits — so micro-TLBs, predecoded instructions,
// and translated blocks revalidate through their existing guards.
// DESIGN.md §16 has the full format and interaction matrix.
type Snapshot struct {
	st   *kernel.State
	prog *asm.Program
}

// Insts returns the retired-instruction count at capture time (the
// record-replay driver indexes snapshots by it).
func (s *Snapshot) Insts() uint64 { return s.st.Insts() }

// Pages returns the number of memory pages the snapshot records.
func (s *Snapshot) Pages() int { return s.st.MemPages() }

// Snapshot captures the machine at a run boundary (never from inside a
// hook or mid-Step). The capture also primes the machine's own dirty
// tracking, so an immediate Restore of the same snapshot copies
// nothing.
func (m *Machine) Snapshot() *Snapshot {
	return &Snapshot{st: m.K.CaptureState(), prog: m.Prog}
}

// Restore rewrites the machine in place to match the snapshot, copying
// only pages that diverged from it. Injector hooks are dropped exactly
// like Reset, and the watchdog is re-armed lazily by the next Run: a
// restored machine is observationally identical to one that reached
// the snapshot state by execution. Returns the number of pages copied.
func (m *Machine) Restore(s *Snapshot) (int, error) {
	dirty, err := m.K.RestoreState(s.st)
	if err != nil {
		return dirty, fmt.Errorf("core: restoring snapshot: %w", err)
	}
	m.Prog = s.prog
	return dirty, nil
}

// Fork builds a new machine from the snapshot on fresh hardware,
// skipping the boot sequence entirely — the snapshot's page contents
// are the only initialization. The forked machine is fully independent
// of the snapshot's source machine.
func Fork(s *Snapshot) (*Machine, error) {
	k, err := kernel.NewForRestore()
	if err != nil {
		return nil, err
	}
	m := &Machine{K: k}
	if _, err := m.Restore(s); err != nil {
		return nil, err
	}
	return m, nil
}
