package core

import "testing"

// TestHardwareDeliveryAcrossProcesses: both processes use the proposed
// Tera-style direct delivery with their own exception-target registers;
// the scheduler must save and restore XT/XC per process so each fault
// lands in its owner's handler.
func TestHardwareDeliveryAcrossProcesses(t *testing.T) {
	prog := func(marker string) string {
		return `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, handler
	mtxt  t0
	li    s0, 3
loop:
	break                     # direct user delivery via XT
	li    v0, SYS_yield
	syscall
	nop
	addiu s0, s0, -1
	bnez  s0, loop
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

ret:	xret
handler:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	sw    a0, 4(sp)
	sw    a1, 8(sp)
	sw    a2, 12(sp)
	li    a0, 1
	la    a1, marker
	li    a2, 1
	li    v0, SYS_write
	syscall
	nop
	lw    a2, 12(sp)
	lw    a1, 8(sp)
	lw    a0, 4(sp)
	lw    ra, 0(sp)
	addiu sp, sp, 16
	mfxt  t6
	addiu t6, t6, 4           # skip the break
	mtxt  t6
	b     ret
	nop
marker:	.asciiz "` + marker + `"
`
	}
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	m.EnableHardwareDelivery(ExcMaskBp)
	if err := m.LoadProgram(prog("p")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnProgram(prog("q")); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.K.Console(); got != "pqpqpq" {
		t.Errorf("console = %q, want \"pqpqpq\" (per-process XT state)", got)
	}
	// The kernel must never have seen the breakpoints.
	if m.K.Stats.UnixDeliveries != 0 || m.K.Stats.Terminations != 0 {
		t.Errorf("kernel involvement: %+v", m.K.Stats)
	}
}
