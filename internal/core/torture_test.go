package core

import (
	"testing"

	"uexc/internal/arch"
)

// TestTortureAllMechanismsTogether runs one process that exercises, in
// a single run: fast breakpoint delivery, fast unaligned delivery,
// demand paging, subpage protection with kernel emulation, eager
// amplification of a write-protection fault, a conventional Unix signal
// (overflow), syscalls, and console output — then checks every result.
func TestTortureAllMechanismsTogether(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	sw    s0, 4(sp)
	sw    s1, 8(sp)

	# fast delivery for breakpoints, unaligned, and protection faults
	la    t0, fast_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)|(1<<4)|(1<<5)|(1<<9)
	jal   __uexc_enable
	nop
	li    a0, 1
	li    v0, SYS_uexc_eager
	syscall
	nop

	# a Unix handler for arithmetic overflow
	li    a0, 8
	la    a1, fpe_handler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop

	# --- phase 1: breakpoints through the fast path
	break
	break

	# --- phase 2: unaligned load through the fast path
	la    t0, data_words
	lw    t9, 1(t0)            # AdEL, skipped by handler
	nop

	# --- phase 3: demand paging on a fresh heap region
	li    a0, 0x4000
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	li    t1, 0xaa
	sw    t1, 0(s1)            # demand-zero fault, transparent
	sw    t1, 4096(s1)
	sw    t1, 8192(s1)

	# --- phase 4: subpage protection + kernel emulation
	move  a0, s1
	li    a1, 1024
	li    a2, 0
	li    v0, SYS_subpage
	syscall
	nop
	li    t1, 0xbb
	sw    t1, 2048(s1)         # unprotected subpage: emulated
	li    t1, 0xcc
	sw    t1, 512(s1)          # protected subpage: delivered + amplified

	# --- phase 5: write protection with eager amplification
	addiu t0, s1, 4096
	move  a0, t0
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect
	syscall
	nop
	li    t1, 0xdd
	sw    t1, 4096(s1)         # Mod fault, amplified, retried

	# --- phase 6: a Unix signal in the middle of it all
	li    t8, 0x7fffffff
	li    t9, 1
	add   t8, t8, t9           # overflow -> SIGFPE via trampoline

	# --- phase 7: console write
	li    a0, 1
	la    a1, done_msg
	li    a2, 5
	li    v0, SYS_write
	syscall
	nop

	# gather results
	la    t0, out
	la    t1, fast_hits
	lw    t2, 0(t1)
	sw    t2, 0(t0)            # out[0] = fast handler invocations
	la    t1, fpe_hits
	lw    t2, 0(t1)
	sw    t2, 4(t0)            # out[1] = unix handler invocations
	lw    t2, 512(s1)
	sw    t2, 8(t0)            # out[2] = 0xcc
	lw    t2, 2048(s1)
	sw    t2, 12(t0)           # out[3] = 0xbb
	lw    t2, 4096(s1)
	sw    t2, 16(t0)           # out[4] = 0xdd
	lw    t2, 8192(s1)
	sw    t2, 20(t0)           # out[5] = 0xaa

	lw    s1, 8(sp)
	lw    s0, 4(sp)
	lw    ra, 0(sp)
	addiu sp, sp, 16
	li    v0, 0
	jr    ra
	nop

# Fast C-level handler: count; advance the PC only for breakpoints and
# unaligned faults (protection faults retry after amplification).
fast_handler:
	la    t6, fast_hits
	lw    t7, 0(t6)
	nop
	addiu t7, t7, 1
	sw    t7, 0(t6)
	lw    t6, 4(a0)            # FrCause
	nop
	andi  t6, t6, 0x7c
	srl   t6, t6, 2
	addiu t7, t6, -9           # Bp?
	beqz  t7, skip
	nop
	addiu t7, t6, -4           # AdEL?
	beqz  t7, skip
	nop
	jr    ra                   # protection fault: plain return (retry)
	nop
skip:
	lw    t6, 0(a0)
	nop
	addiu t6, t6, 4
	sw    t6, 0(a0)
	jr    ra
	nop

fpe_handler:
	la    t6, fpe_hits
	lw    t7, 0(t6)
	nop
	addiu t7, t7, 1
	sw    t7, 0(t6)
	lw    t7, 124(a2)
	nop
	addiu t7, t7, 4
	sw    t7, 124(a2)
	jr    ra
	nop

	.align 8
data_words:
	.word 0x01020304, 0x05060708
fast_hits:
	.word 0
fpe_hits:
	.word 0
done_msg:
	.asciiz "done\n"
	.align 4
out:
	.space 24
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(20_000_000); err != nil {
		t.Fatal(err)
	}

	base := m.Sym("out")
	get := func(i int) uint32 {
		v, _ := m.K.ReadUserWord(base + uint32(4*i))
		return v
	}
	// Fast handler: 2 breaks + 1 unaligned + 1 subpage delivery + 1
	// write-prot delivery = 5.
	if got := get(0); got != 5 {
		t.Errorf("fast handler invocations = %d, want 5", got)
	}
	if got := get(1); got != 1 {
		t.Errorf("unix handler invocations = %d, want 1", got)
	}
	wants := []uint32{0xcc, 0xbb, 0xdd, 0xaa}
	for i, w := range wants {
		if got := get(2 + i); got != w {
			t.Errorf("out[%d] = %#x, want %#x", 2+i, got, w)
		}
	}
	if got := m.K.Console(); got != "done\n" {
		t.Errorf("console = %q", got)
	}

	s := m.K.Stats
	if s.SubpageEmuls != 1 {
		t.Errorf("subpage emulations = %d, want 1", s.SubpageEmuls)
	}
	if s.ProtFaultsToUser != 2 {
		t.Errorf("prot deliveries = %d, want 2 (subpage + write-prot)", s.ProtFaultsToUser)
	}
	if s.UnixDeliveries != 1 {
		t.Errorf("unix deliveries = %d, want 1", s.UnixDeliveries)
	}
	if s.PageFaults < 3 {
		t.Errorf("demand-zero fills = %d, want >= 3", s.PageFaults)
	}
	if s.EagerAmplifies < 1 {
		t.Errorf("eager amplifications = %d, want >= 1", s.EagerAmplifies)
	}
	if got := m.CPU().ExcCounts[arch.ExcBp]; got != 2 {
		t.Errorf("breakpoints = %d, want 2", got)
	}
}
