package core

import "uexc/internal/userrt"

// ScaleKernelCosts multiplies every modeled "C-phase" cycle charge in
// the kernel's cost table by f. The assembly-measured parts of the
// system are untouched — they are executed, not modeled — so scaling
// probes exactly the calibrated portion of the reproduction.
func ScaleKernelCosts(m *Machine, f float64) {
	c := &m.K.Costs
	scale := func(v *uint64) { *v = uint64(float64(*v) * f) }
	scale(&c.TrapEntry)
	scale(&c.Post)
	scale(&c.Recognize)
	scale(&c.Sendsig)
	scale(&c.CopyWord)
	scale(&c.Sigreturn)
	scale(&c.SyscallBase)
	scale(&c.SyscallBody)
	scale(&c.MprotectPage)
	scale(&c.DemandPage)
	scale(&c.ProtLookup)
	scale(&c.ProtAmplify)
	scale(&c.SubpageCheck)
	scale(&c.EmulLoad)
	scale(&c.EmulBranch)
	scale(&c.ResumeRegs)
}

// SensitivityPoint reports the headline comparison at one scaling of
// the calibrated cost constants.
type SensitivityPoint struct {
	Scale       float64
	FastRTMicro float64
	UltRTMicro  float64
	Speedup     float64
}

// MeasureSensitivity re-measures the simple-exception comparison with
// the kernel's calibrated C-phase charges scaled by each factor. The
// headline order-of-magnitude claim should survive any plausible
// calibration error: the fast path's cost is dominated by *executed*
// instructions, the Ultrix path's by the scaled C phases.
func MeasureSensitivity(scales []float64, n int) ([]SensitivityPoint, error) {
	var out []SensitivityPoint
	for _, f := range scales {
		f := f
		fast, _, err := runTimedLoop(timedLoopSpec{
			prog:         simpleFastProg(n),
			handlerEntry: userrt.SymSkipHandler,
			handlerExit:  userrt.SymFexcLowRet,
			codeMask:     1 << 9,
			tweak:        func(m *Machine) { ScaleKernelCosts(m, f) },
		})
		if err != nil {
			return nil, err
		}
		ult, _, err := runTimedLoop(timedLoopSpec{
			prog:         simpleUltrixProg(n),
			handlerEntry: userrt.SymSkipSigHandler,
			handlerExit:  userrt.SymSigHandlerRet,
			codeMask:     1 << 9,
			tweak:        func(m *Machine) { ScaleKernelCosts(m, f) },
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SensitivityPoint{
			Scale:       f,
			FastRTMicro: fast.RoundTripMicros(),
			UltRTMicro:  ult.RoundTripMicros(),
			Speedup:     ult.RoundTrip / fast.RoundTrip,
		})
	}
	return out, nil
}
