// Package core is the public face of the reproduction: a Machine that
// boots the simulated kernel, loads user programs written against the
// user runtime, and measures exception-handling behaviour under three
// delivery mechanisms:
//
//   - ModeUltrix: the conventional Unix signal path (§3.1),
//   - ModeFast: the paper's software fast path (§3.2),
//   - ModeHardware: the proposed Tera-style direct user vectoring (§2).
//
// The microbenchmark runners in measure.go reproduce the paper's
// Table 2 quantities; the phase counters reproduce Table 3.
package core

import (
	"fmt"
	"sync"

	"uexc/internal/arch"
	"uexc/internal/asm"
	"uexc/internal/cpu"
	"uexc/internal/kernel"
	"uexc/internal/userrt"
)

// Mode selects the exception delivery mechanism a benchmark exercises.
type Mode int

const (
	ModeUltrix Mode = iota
	ModeFast
	ModeHardware
)

// String names the mode as used in tables.
func (m Mode) String() string {
	switch m {
	case ModeUltrix:
		return "Ultrix"
	case ModeFast:
		return "FastExc"
	case ModeHardware:
		return "Hardware"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Machine is a booted simulated computer: kernel image in memory, CPU
// at the launch stub, one user process.
type Machine struct {
	K    *kernel.Kernel
	Prog *asm.Program // assembled user program (runtime + user text)
}

// NewMachine boots fresh hardware and kernel. The CPU watchdog is
// armed by default: a machine that provably stops making progress (a
// pure state cycle — no stores, no new code) fails its Run with a
// typed *cpu.LivelockError instead of spinning out the whole budget.
func NewMachine() (*Machine, error) {
	k, err := kernel.New()
	if err != nil {
		return nil, err
	}
	k.CPU.Watchdog = cpu.NewWatchdog(0)
	return &Machine{K: k}, nil
}

// Reset reboots the machine in place — kernel, CPU, TLB, and memory
// scrubbed but their allocations reused — restoring the exact state
// NewMachine produces (watchdog armed, no program loaded). The CPU
// keeps its predecode cache and translated basic blocks across the
// reset as allocations only: both are keyed by physical page and
// guarded by mem.Page store generations, and the memory scrub
// advances every page's generation, so a recycled machine re-decodes
// and re-translates everything it executes while reusing the arrays.
// The campaign's replay discipline doubles as the verification: a
// reset machine must produce byte-identical fingerprints to a fresh
// one, pooled or not.
func (m *Machine) Reset() error {
	if err := m.K.Reset(); err != nil {
		return err
	}
	m.K.CPU.Watchdog = cpu.NewWatchdog(0)
	m.Prog = nil
	return nil
}

// progCache caches assembled user images by source text. Programs are
// immutable after assembly (loading copies chunk bytes into simulated
// memory), so one *asm.Program is safely shared across machines and
// workers; campaign runs load the same three mode programs thousands
// of times and pay the assembler only once each.
var progCache sync.Map // full source string -> *asm.Program

func assembleUser(src string) (*asm.Program, error) {
	full := userrt.Prelude() + src
	if p, ok := progCache.Load(full); ok {
		return p.(*asm.Program), nil
	}
	p, err := asm.Assemble(full, kernel.UserTextBase)
	if err != nil {
		return nil, err
	}
	cached, _ := progCache.LoadOrStore(full, p)
	return cached.(*asm.Program), nil
}

// LoadProgram assembles the user runtime plus the given program text
// (which must define "main"), loads it, and points the CPU at process
// startup.
func (m *Machine) LoadProgram(src string) error {
	p, err := assembleUser(src)
	if err != nil {
		return fmt.Errorf("core: assembling user program: %w", err)
	}
	if err := m.K.LoadUserProgram(p); err != nil {
		return err
	}
	entry, ok := p.Symbol(userrt.SymStart)
	if !ok {
		return fmt.Errorf("core: user image missing %q", userrt.SymStart)
	}
	m.Prog = p
	m.K.LaunchUser(entry, kernel.UserStackTop-16)
	return nil
}

// SpawnProgram loads an additional user program (its own "main") as a
// new cooperatively scheduled process with its own ASID-tagged address
// space. Processes hand off with the yield system call; the machine
// halts when every process has exited.
func (m *Machine) SpawnProgram(src string) (*kernel.Proc, error) {
	p, err := assembleUser(src)
	if err != nil {
		return nil, fmt.Errorf("core: assembling spawned program: %w", err)
	}
	entry, ok := p.Symbol(userrt.SymStart)
	if !ok {
		return nil, fmt.Errorf("core: spawned image missing %q", userrt.SymStart)
	}
	return m.K.SpawnUser(p, entry, kernel.UserStackTop-16)
}

// Sym resolves a user-program symbol.
func (m *Machine) Sym(name string) uint32 { return m.Prog.MustSymbol(name) }

// KernelSym resolves a kernel-image symbol.
func (m *Machine) KernelSym(name string) uint32 { return m.K.Symbol(name) }

// CPU exposes the processor for statistics.
func (m *Machine) CPU() *cpu.CPU { return m.K.CPU }

// EnableHardwareDelivery turns on the proposed Tera-style hardware:
// exceptions whose codes are set in mask vector directly to user mode
// via the exception-target register, without entering the kernel.
func (m *Machine) EnableHardwareDelivery(mask uint32) {
	m.K.CPU.TeraMode = true
	m.K.CPU.UserVector = mask
}

// Run executes until process exit (or the instruction budget runs out).
// A nonzero exit caused by kernel escalation (recursive-exception kill)
// carries the recorded *kernel.MachineError cause chain, reachable via
// errors.Is/errors.As.
func (m *Machine) Run(maxInsts uint64) error {
	// Forked and restored machines defer watchdog construction to the
	// first Run — checkout latency is what warm pools exist to shave —
	// so arm one here if the machine doesn't carry one yet. Armed or
	// not, execution is identical (Observe only reads machine state);
	// only livelock classification needs the detector.
	if m.K.CPU.Watchdog == nil {
		m.K.CPU.Watchdog = cpu.NewWatchdog(0)
	}
	if err := m.K.Run(maxInsts); err != nil {
		return err
	}
	if done, status := m.K.Exited(); done && status != 0 {
		for _, p := range m.K.Procs() {
			if reason := p.KillReason(); reason != nil {
				return fmt.Errorf("core: process exited with status %d (console: %q): %w",
					status, m.K.Console(), reason)
			}
		}
		return fmt.Errorf("core: process exited with status %d (console: %q)", status, m.K.Console())
	}
	return nil
}

// RunWithWatches single-steps the machine, invoking each watch callback
// whenever the CPU is about to execute the watched address, until exit.
func (m *Machine) RunWithWatches(maxInsts uint64, watches map[uint32]func(c *cpu.CPU)) error {
	c := m.K.CPU
	start := c.Insts
	for !c.Halted && c.Insts-start < maxInsts {
		if f, ok := watches[c.PC]; ok {
			f(c)
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	if !c.Halted {
		return &cpu.BudgetError{Budget: maxInsts, PC: c.PC}
	}
	if done, status := m.K.Exited(); done && status != 0 {
		return fmt.Errorf("core: process exited with status %d (console: %q)", status, m.K.Console())
	}
	return nil
}

// Micros converts cycles to microseconds at the simulated clock rate.
func Micros(cycles uint64) float64 { return cpu.CyclesToMicros(cycles) }

// ExcMaskBp and friends name commonly-claimed exception sets.
const (
	ExcMaskBp        = 1 << arch.ExcBp
	ExcMaskUnaligned = 1<<arch.ExcAdEL | 1<<arch.ExcAdES
	ExcMaskProt      = 1<<arch.ExcMod | 1<<arch.ExcTLBL | 1<<arch.ExcTLBS
	ExcMaskOverflow  = 1 << arch.ExcOv
)
