package core

import (
	"errors"
	"testing"

	"uexc/internal/arch"
	"uexc/internal/kernel"
)

// Recursive-exception escalation (§2): a fault raised while a
// user-level handler is in progress must not stack a second frame on
// the first. The kernel demotes the faulting class to Ultrix delivery,
// and an unrecoverable repeat kills the process with a recorded
// *MachineError cause chain. These tests drive the real paths — no
// fault injection — in both delivery modes.

// recursionProg builds the two-page recursion scenario: claim
// protection faults through the mode-specific snippet, register a Unix
// SIGSEGV handler, allocate two heap pages and write-protect both. The
// first store (page A) enters the user handler; the handler stores to
// page B, faulting recursively while UEX is set.
func recursionProg(claim, extra string) string {
	return `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
` + claim + `
	li    a0, 11               # SIGSEGV fallback for the escalated fault
	la    a1, fix_handler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	li    a0, 8192
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0               # page A
	addiu s2, s1, 4096         # page B
	la    t0, page_a
	sw    s1, 0(t0)
	la    t0, page_b
	sw    s2, 0(t0)
	sw    zero, 0(s1)          # demand-map both pages
	sw    zero, 0(s2)
	move  a0, s1
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect     # page A read-only
	syscall
	nop
	move  a0, s2
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect     # page B read-only
	syscall
	nop
	li    t0, 1
	sw    t0, 0(s1)            # Mod -> user handler -> recursive Mod
	move  a0, s1
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect     # re-protect page A
	syscall
	nop
	li    t0, 2
	sw    t0, 0(s1)            # Mod again: the class is demoted now,
	                           # so this must take the Unix path
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

# The claimed-path handler: counts, then stores to the other protected
# page — a genuine recursive protection fault with UEX set.
rec_chandler:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t6, chandler_count
	lw    t7, 0(t6)
	addiu t7, t7, 1
	sw    t7, 0(t6)
	la    t6, page_b
	lw    t6, 0(t6)
	li    t7, 7
	sw    t7, 0(t6)            # recursive fault (page B read-only)
	lw    ra, 0(sp)
	addiu sp, sp, 8
	jr    ra
	nop

# The Unix fallback: unprotect both pages so every re-executed store
# succeeds, count invocations.
fix_handler:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t6, fix_count
	lw    t7, 0(t6)
	addiu t7, t7, 1
	sw    t7, 0(t6)
	la    a0, page_a
	lw    a0, 0(a0)
	li    a1, 4096
	li    a2, 3
	li    v0, SYS_mprotect
	syscall
	nop
	la    a0, page_b
	lw    a0, 0(a0)
	li    a1, 4096
	li    a2, 3
	li    v0, SYS_mprotect
	syscall
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	jr    ra
	nop
	.align 4
page_a:
	.word 0
page_b:
	.word 0
chandler_count:
	.word 0
fix_count:
	.word 0
` + extra
}

// TestFastRecursionDemotesToUltrix: software fast path. The recursive
// Mod inside the handler must demote the class, route the fault through
// the Unix machinery, and let the process finish; the later store shows
// the demotion stuck (second fault arrives via signal, not fast path).
func TestFastRecursionDemotesToUltrix(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	claim := `
	la    t0, rec_chandler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)
	jal   __uexc_enable
	nop
`
	if err := m.LoadProgram(recursionProg(claim, "")); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5_000_000); err != nil {
		t.Fatalf("process must survive the escalation: %v", err)
	}
	if got := m.K.Stats.UEXRecursions; got != 1 {
		t.Errorf("UEXRecursions = %d, want 1", got)
	}
	if got := m.K.Stats.FastFallbacks; got != 1 {
		t.Errorf("FastFallbacks = %d, want 1 (Mod demoted)", got)
	}
	if got := m.userWord("chandler_count"); got != 1 {
		t.Errorf("chandler_count = %d, want 1", got)
	}
	// Once for the escalated recursive fault, once for the post-demotion
	// store: both through the Unix machinery.
	if got := m.userWord("fix_count"); got != 2 {
		t.Errorf("fix_count = %d, want 2", got)
	}
	if got := m.K.Stats.UnixDeliveries; got != 2 {
		t.Errorf("UnixDeliveries = %d, want 2", got)
	}
}

// TestHardwareRecursionDemotesAndClearsVector: Tera-style direct
// vectoring. The CPU must suppress direct delivery when UEX is set,
// report through OnUEXRecursion (demoting the class out of the
// hardware user vector), and force the kernel path; the process
// survives via the Unix fallback.
func TestHardwareRecursionDemotesAndClearsVector(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	claim := `
	la    t0, rec_chandler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    t0, tera_handler
	mtxt  t0
`
	teraShim := `
tera_ret:
	xret
tera_handler:
	la    k1, tera_frame
	mfxt  k0
	sw    k0, 0x00(k1)
	sw    at, 0x0c(k1)
	sw    v0, 0x10(k1)
	sw    v1, 0x14(k1)
	sw    a0, 0x18(k1)
	sw    a1, 0x1c(k1)
	sw    a2, 0x20(k1)
	sw    a3, 0x24(k1)
	sw    t0, 0x28(k1)
	sw    t1, 0x2c(k1)
	sw    t2, 0x30(k1)
	sw    t3, 0x34(k1)
	sw    t4, 0x3c(k1)
	sw    t5, 0x40(k1)
	sw    ra, 0x44(k1)
	move  t0, k1
	move  a0, t0
	la    t3, __fexc_chandler
	lw    t3, 0(t3)
	jalr  t3
	nop
	lw    k0, 0x00(t0)
	mtxt  k0
	lw    at, 0x0c(t0)
	lw    v0, 0x10(t0)
	lw    v1, 0x14(t0)
	lw    a0, 0x18(t0)
	lw    a1, 0x1c(t0)
	lw    a2, 0x20(t0)
	lw    a3, 0x24(t0)
	lw    t1, 0x2c(t0)
	lw    t2, 0x30(t0)
	lw    t3, 0x34(t0)
	lw    t4, 0x3c(t0)
	lw    t5, 0x40(t0)
	lw    ra, 0x44(t0)
	lw    t0, 0x28(t0)
	b     tera_ret
	nop
	.align 8
tera_frame:
	.space 128
`
	if err := m.LoadProgram(recursionProg(claim, teraShim)); err != nil {
		t.Fatal(err)
	}
	m.EnableHardwareDelivery(1 << arch.ExcMod)
	if err := m.Run(5_000_000); err != nil {
		t.Fatalf("process must survive the escalation: %v", err)
	}
	if got := m.K.Stats.UEXRecursions; got != 1 {
		t.Errorf("UEXRecursions = %d, want 1", got)
	}
	if got := m.K.Stats.FastFallbacks; got != 1 {
		t.Errorf("FastFallbacks = %d, want 1", got)
	}
	if v := m.CPU().UserVector; v&(1<<arch.ExcMod) != 0 {
		t.Errorf("UserVector = %#x: Mod claim bit must be cleared by demotion", v)
	}
	if got := m.userWord("chandler_count"); got != 1 {
		t.Errorf("chandler_count = %d, want 1", got)
	}
	if got := m.userWord("fix_count"); got != 2 {
		t.Errorf("fix_count = %d, want 2", got)
	}
}

// recursionKillProg keeps re-claiming the demoted class from inside
// the Unix fallback without ever fixing the protection, so the same
// recursive fault repeats until the escalation ladder gives up.
const recursionKillProg = `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, rec_chandler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)
	jal   __uexc_enable
	nop
	li    a0, 11
	la    a1, reclaim_handler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	li    a0, 8192
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	addiu s2, s1, 4096
	la    t0, page_b
	sw    s2, 0(t0)
	sw    zero, 0(s1)
	sw    zero, 0(s2)
	move  a0, s1
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect
	syscall
	nop
	move  a0, s2
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect
	syscall
	nop
	li    t0, 1
	sw    t0, 0(s1)            # never completes: the process dies here
	li    v0, 0
	jr    ra
	nop

rec_chandler:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t6, page_b
	lw    t6, 0(t6)
	li    t7, 7
	sw    t7, 0(t6)            # recursive fault, never fixed
	lw    ra, 0(sp)
	addiu sp, sp, 8
	jr    ra
	nop

# The Unix fallback undoes the demotion and returns without fixing
# anything: the fault re-enters the fast path and recurses again.
reclaim_handler:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)
	jal   __uexc_enable
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	jr    ra
	nop
	.align 4
page_b:
	.word 0
`

// TestRecursionDepthKill: a process that keeps recurring after
// demotions is unrecoverable; the kernel must kill it with a typed
// *MachineError cause chain ending in ErrRecursion — never a Go panic,
// never an exhausted budget.
func TestRecursionDepthKill(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(recursionKillProg); err != nil {
		t.Fatal(err)
	}
	err = m.Run(5_000_000)
	if err == nil {
		t.Fatal("runaway recursion survived")
	}
	if !errors.Is(err, kernel.ErrRecursion) {
		t.Errorf("err = %v, want ErrRecursion in the chain", err)
	}
	var me *kernel.MachineError
	if !errors.As(err, &me) {
		t.Errorf("err = %v, want a *MachineError cause chain", err)
	}
	if got := m.K.Stats.RecursionKills; got != 1 {
		t.Errorf("RecursionKills = %d, want 1", got)
	}
	if got := m.K.Stats.UEXRecursions; got < 4 {
		t.Errorf("UEXRecursions = %d, want >= 4 (the kill depth)", got)
	}
	done, status := m.K.Procs()[0].Exited()
	if !done || status != 128+11 {
		t.Errorf("exit = %v/%d, want SIGSEGV termination 139", done, status)
	}
}

// TestRecursionKillIsolatesSibling: the escalation kill must be
// process-local. A sibling holding values in every callee-saved
// register across the victim's entire death spiral must observe them
// intact and run to completion.
func TestRecursionKillIsolatesSibling(t *testing.T) {
	survivor := `
main:
	addiu sp, sp, -12
	sw    ra, 0(sp)
	li    s0, 0x1111
	li    s1, 0x2222
	li    s2, 0x3333
	li    s3, 0x4444
	li    s4, 0x5555
	li    s5, 0x6666
	li    s6, 0x7777
	li    s7, 0x0888
	li    t0, 8
yield_loop:
	sw    t0, 4(sp)
	li    v0, SYS_yield
	syscall
	nop
	lw    t0, 4(sp)
	addiu t0, t0, -1
	bnez  t0, yield_loop
	nop
	li    t1, 0x1111
	bne   s0, t1, bad
	nop
	li    t1, 0x2222
	bne   s1, t1, bad
	nop
	li    t1, 0x3333
	bne   s2, t1, bad
	nop
	li    t1, 0x4444
	bne   s3, t1, bad
	nop
	li    t1, 0x5555
	bne   s4, t1, bad
	nop
	li    t1, 0x6666
	bne   s5, t1, bad
	nop
	li    t1, 0x7777
	bne   s6, t1, bad
	nop
	li    t1, 0x0888
	bne   s7, t1, bad
	nop
	li    a0, 1
	la    a1, okmsg
	li    a2, 3
	li    v0, SYS_write
	syscall
	nop
	b     out
	nop
bad:
	li    a0, 1
	la    a1, badmsg
	li    a2, 4
	li    v0, SYS_write
	syscall
	nop
out:
	lw    ra, 0(sp)
	addiu sp, sp, 12
	li    v0, 0
	jr    ra
	nop
okmsg:	.asciiz "ok\n"
badmsg:	.asciiz "BAD\n"
`
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(survivor); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnProgram(recursionKillProg); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatalf("survivor must finish cleanly: %v", err)
	}
	if got := m.K.Console(); got != "ok\n" {
		t.Errorf("console = %q, want \"ok\\n\" (callee-saved state intact)", got)
	}
	procs := m.K.Procs()
	done, status := procs[1].Exited()
	if !done || status != 128+11 {
		t.Errorf("victim exit = %v/%d, want true/139", done, status)
	}
	if !errors.Is(procs[1].KillReason(), kernel.ErrRecursion) {
		t.Errorf("victim kill reason = %v, want ErrRecursion", procs[1].KillReason())
	}
	if got := m.K.Stats.RecursionKills; got != 1 {
		t.Errorf("RecursionKills = %d, want 1", got)
	}
}
