package core

import "testing"

// TestSensitivityOfHeadlineClaim: the order-of-magnitude speedup must
// survive substantial miscalibration of the modeled C-phase charges —
// the one part of this reproduction that is calibrated rather than
// executed.
func TestSensitivityOfHeadlineClaim(t *testing.T) {
	pts, err := MeasureSensitivity([]float64{0.7, 1.0, 1.3}, 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("scale %.1f: fast %.1fµs ultrix %.1fµs speedup %.1fx",
			p.Scale, p.FastRTMicro, p.UltRTMicro, p.Speedup)
		if p.Speedup < 6 {
			t.Errorf("scale %.1f: speedup %.1fx below 6x — claim not robust", p.Scale, p.Speedup)
		}
	}
	// The fast path barely moves (it is executed, not modeled); the
	// Ultrix path scales with the model.
	if spread := pts[2].FastRTMicro - pts[0].FastRTMicro; spread > 2.0 {
		t.Errorf("fast path moved %.1fµs across scales; should be nearly model-free", spread)
	}
	if pts[2].UltRTMicro <= pts[0].UltRTMicro {
		t.Error("ultrix path did not scale with the model")
	}
}
