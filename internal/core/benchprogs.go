package core

import "fmt"

// Microbenchmark user programs (assembled against the userrt prelude).
// Each defines main, a bench_fault label at the faulting instruction,
// and a bench_resume label where control lands after the exception is
// fully processed; the measurement harness watches those addresses.

const progTail = `
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop
`

// simpleFastProg: breakpoint exceptions via the fast path, general
// low-level handler, skip-C-handler (Table 2 rows 1, 4, 5).
func simpleFastProg(n int) string {
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __skip_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, 1 << 9          # breakpoint
	jal   __uexc_enable
	nop
	break                     # warmup: touch handler paths, TLB
	li    s0, %d
loop:
bench_fault:
	break
bench_resume:
	addiu s0, s0, -1
	bnez  s0, loop
	nop
`+progTail, n)
}

// simpleUltrixProg: the same breakpoint loop via SIGTRAP.
func simpleUltrixProg(n int) string {
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    a0, 5               # SIGTRAP
	la    a1, __skip_sig_handler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	break                     # warmup
	li    s0, %d
loop:
bench_fault:
	break
bench_resume:
	addiu s0, s0, -1
	bnez  s0, loop
	nop
`+progTail, n)
}

// simpleTeraProg: breakpoints delivered directly to user mode by the
// proposed hardware. The handler saves the same register set the kernel
// fast path's save phase stores (the exception frame), so the ablation
// isolates what hardware vectoring removes: the kernel decode /
// compatibility / fp / tlb phases, the mode switches, and the
// duplicated Ultrix-equivalent saves the software low-level handler
// adds for fairness (ablation A; the paper estimates 2-3x, §3).
func simpleTeraProg(n int) string {
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __skip_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    t0, tera_handler
	mtxt  t0
	break                     # warmup
	li    s0, %d
loop:
bench_fault:
	break
bench_resume:
	addiu s0, s0, -1
	bnez  s0, loop
	nop
`+progTail+`

# Return-exchange immediately before the handler entry: executing the
# xret reloads XT with the handler address for the next exception.
tera_ret:
	xret
tera_handler:
	la    k1, tera_frame
	mfxt  k0                  # faulting PC
	sw    k0, 0x00(k1)
	mfxc  k0                  # condition register: the cause
	sw    k0, 0x04(k1)
	sw    zero, 0x08(k1)
	sw    at, 0x0c(k1)
	sw    v0, 0x10(k1)
	sw    v1, 0x14(k1)
	sw    a0, 0x18(k1)
	sw    a1, 0x1c(k1)
	sw    a2, 0x20(k1)
	sw    a3, 0x24(k1)
	sw    t0, 0x28(k1)
	sw    t1, 0x2c(k1)
	sw    t2, 0x30(k1)
	sw    t3, 0x34(k1)
	sw    t4, 0x3c(k1)
	sw    t5, 0x40(k1)
	sw    ra, 0x44(k1)
	move  t0, k1
	move  a0, t0
	la    t3, __fexc_chandler
	lw    t3, 0(t3)
	jalr  t3
	nop
tera_handler_ret:
	lw    k0, 0x00(t0)        # resume PC (C handler may have advanced)
	mtxt  k0
	lw    at, 0x0c(t0)
	lw    v0, 0x10(t0)
	lw    v1, 0x14(t0)
	lw    a0, 0x18(t0)
	lw    a1, 0x1c(t0)
	lw    a2, 0x20(t0)
	lw    a3, 0x24(t0)
	lw    t1, 0x2c(t0)
	lw    t2, 0x30(t0)
	lw    t3, 0x34(t0)
	lw    t4, 0x3c(t0)
	lw    t5, 0x40(t0)
	lw    ra, 0x44(t0)
	lw    t0, 0x28(t0)
	b     tera_ret
	nop
	.align 8
tera_frame:
	.space 128
`, n)
}

// writeProtFastProg: write-protection faults via the fast path with
// optional eager amplification (Table 2 row 2).
func writeProtFastProg(n int, eager bool) string {
	eagerVal := 0
	if eager {
		eagerVal = 1
	}
	// Without eager amplification the handler itself must unprotect the
	// page (a syscall from the handler) before resuming, or the store
	// faults forever; with it, the kernel already amplified.
	handler := "__null_handler"
	if !eager {
		handler = "wp_chandler"
	}
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, %s
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)   # Mod|TLBL|TLBS
	jal   __uexc_enable
	nop
	li    a0, %d
	li    v0, SYS_uexc_eager
	syscall
	nop
	li    a0, 8192
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	la    t0, page_addr
	sw    s1, 0(t0)
	sw    zero, 0(s1)          # touch: demand-map the page
	move  a0, s1               # write-protect it
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect
	syscall
	nop
	li    s0, %d
loop:
bench_fault:
	sw    s0, 0(s1)            # Mod fault -> deliver -> retry succeeds
bench_resume:
	move  a0, s1               # re-protect for the next iteration
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect
	syscall
	nop
	addiu s0, s0, -1
	bnez  s0, loop
	nop
`+progTail+`

# Non-eager C handler: unprotect the page, then return (resume retries).
wp_chandler:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    a0, page_addr
	lw    a0, 0(a0)
	li    a1, 4096
	li    a2, 3
	li    v0, SYS_mprotect
	syscall
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	jr    ra
	nop
	.align 4
page_addr:
	.word 0
`, handler, eagerVal, n)
}

// writeProtUltrixProg: write-protection faults via SIGSEGV; the signal
// handler unprotects the page so the retry succeeds, the loop
// re-protects.
func writeProtUltrixProg(n int) string {
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    a0, 11               # SIGSEGV
	la    a1, wp_sig_handler
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	li    a0, 8192
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	la    t0, page_addr
	sw    s1, 0(t0)
	sw    zero, 0(s1)
	move  a0, s1
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect
	syscall
	nop
	li    s0, %d
loop:
bench_fault:
	sw    s0, 0(s1)
bench_resume:
	move  a0, s1
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect
	syscall
	nop
	addiu s0, s0, -1
	bnez  s0, loop
	nop
`+progTail+`

wp_sig_handler:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    a0, page_addr
	lw    a0, 0(a0)
	li    a1, 4096
	li    a2, 3
	li    v0, SYS_mprotect
	syscall
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	jr    ra
	nop
	.align 4
page_addr:
	.word 0
`, n)
}

// subpageProg: 1 KB logical-page protection (Table 2 row 3 and the
// §3.2.4 emulation path). Phase A stores to the protected subpage
// (delivery measured); phase B stores to an unprotected subpage of the
// same hardware page (kernel emulation measured).
func subpageProg(n int) string {
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __null_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, (1<<1)|(1<<2)|(1<<3)
	jal   __uexc_enable
	nop
	li    a0, 8192
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	sw    zero, 0(s1)          # touch
	move  a0, s1               # protect logical page [s1, s1+1K)
	li    a1, 1024
	li    a2, 0
	li    v0, SYS_subpage
	syscall
	nop
	li    s0, %d
loopa:
bench_fault:
	sw    s0, 0(s1)            # protected subpage: delivered
bench_resume:
	move  a0, s1               # re-protect (page was amplified)
	li    a1, 1024
	li    a2, 0
	li    v0, SYS_subpage
	syscall
	nop
	addiu s0, s0, -1
	bnez  s0, loopa
	nop

	li    s0, %d
loopb:
bench_fault2:
	sw    s0, 2048(s1)         # unprotected subpage: kernel emulates
bench_resume2:
	addiu s0, s0, -1
	bnez  s0, loopb
	nop
	lw    t2, 2048(s1)         # verify the emulated store landed
	la    t3, emul_check
	sw    t2, 0(t3)
`+progTail+`
	.align 4
emul_check:
	.word 0
`, n, n)
}

// unalignedMinProg: unaligned loads with the specialized minimal
// handler (the §4.2.2 pointer-swizzling configuration, 6 µs).
func unalignedMinProg(n int) string {
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, __skip_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_min
	li    a1, (1<<4)|(1<<5)    # AdEL|AdES
	jal   __uexc_enable
	nop
	la    s1, word_area
	lw    t7, 1(s1)            # warmup unaligned fault
	li    s0, %d
loop:
bench_fault:
	lw    t7, 1(s1)            # odd address: AdEL, skipped by handler
bench_resume:
	addiu s0, s0, -1
	bnez  s0, loop
	nop
`+progTail+`
	.align 8
word_area:
	.word 0x01020304, 0x05060708
`, n)
}

// nullSyscallProg: the getpid comparison point (12 µs on Ultrix).
func nullSyscallProg(n int) string {
	return fmt.Sprintf(`
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    v0, SYS_getpid
	syscall
	nop
	li    s0, %d
loop:
bench_fault:
	li    v0, SYS_getpid
	syscall
	nop
bench_resume:
	addiu s0, s0, -1
	bnez  s0, loop
	nop
`+progTail, n)
}
