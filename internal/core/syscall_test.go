package core

import (
	"strings"
	"testing"
)

// runProg is a helper for small syscall-exercising programs.
func runProg(t *testing.T, prog string) *Machine {
	t.Helper()
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestUnknownSyscallReturnsENOSYS(t *testing.T) {
	m := runProg(t, `
main:
	li    v0, 9999
	syscall
	nop
	la    t0, result
	sw    v0, 0(t0)
	li    v0, 0
	jr    ra
	nop
	.align 4
result:	.word 0
`)
	// ENOSYS = -38.
	if got := int32(m.userWord("result")); got != -38 {
		t.Errorf("unknown syscall = %d, want -38", got)
	}
}

func TestWriteBadBufferReturnsEFAULT(t *testing.T) {
	m := runProg(t, `
main:
	li    a0, 1
	li    a1, 0x06000000      # unmapped
	li    a2, 4
	li    v0, SYS_write
	syscall
	nop
	la    t0, result
	sw    v0, 0(t0)
	li    v0, 0
	jr    ra
	nop
	.align 4
result:	.word 0
`)
	if got := int32(m.userWord("result")); got != -14 { // EFAULT
		t.Errorf("write to bad buffer = %d, want -14", got)
	}
}

func TestMprotectUnmappedReturnsEINVAL(t *testing.T) {
	m := runProg(t, `
main:
	li    a0, 0x06000000
	li    a1, 4096
	li    a2, 1
	li    v0, SYS_mprotect
	syscall
	nop
	la    t0, result
	sw    v0, 0(t0)
	li    v0, 0
	jr    ra
	nop
	.align 4
result:	.word 0
`)
	if got := int32(m.userWord("result")); got != -22 { // EINVAL
		t.Errorf("mprotect unmapped = %d, want -22", got)
	}
}

func TestHugeSbrkReturnsENOMEM(t *testing.T) {
	m := runProg(t, `
main:
	li    a0, 0x70000000
	li    v0, SYS_sbrk
	syscall
	nop
	la    t0, result
	sw    v0, 0(t0)
	li    v0, 0
	jr    ra
	nop
	.align 4
result:	.word 0
`)
	if got := int32(m.userWord("result")); got != -12 { // ENOMEM
		t.Errorf("huge sbrk = %d, want -12", got)
	}
}

func TestUexcEnableClaimingSyscallFails(t *testing.T) {
	m := runProg(t, `
main:
	la    a0, main
	li    a1, 1 << 8          # ExcSys: unclaimable
	li    a2, FRAMEPAGE
	li    v0, SYS_uexc_enable
	syscall
	nop
	la    t0, result
	sw    v0, 0(t0)
	li    v0, 0
	jr    ra
	nop
	.align 4
result:	.word 0
`)
	if got := int32(m.userWord("result")); got != -22 {
		t.Errorf("claiming ExcSys = %d, want -22", got)
	}
}

func TestSigactionBadSignalFails(t *testing.T) {
	m := runProg(t, `
main:
	li    a0, 99
	la    a1, main
	la    a2, __sig_trampoline
	li    v0, SYS_sigaction
	syscall
	nop
	la    t0, result
	sw    v0, 0(t0)
	li    v0, 0
	jr    ra
	nop
	.align 4
result:	.word 0
`)
	if got := int32(m.userWord("result")); got != -22 {
		t.Errorf("sigaction(99) = %d, want -22", got)
	}
}

func TestSyscallResultsDoNotClobberOtherRegisters(t *testing.T) {
	// Unix convention: syscalls preserve everything but v0 (and the
	// kernel-reserved registers). The light syscall path must restore
	// a0-a3 and leave s-registers untouched.
	m := runProg(t, `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    s0, 0x1111
	li    s1, 0x2222
	li    a0, 0x3333
	li    a1, 0x4444
	li    a2, 0x5555
	li    a3, 0x6666
	li    t7, 0x7777
	li    v0, SYS_getpid
	syscall
	nop
	la    t0, out
	sw    s0, 0(t0)
	sw    s1, 4(t0)
	sw    a0, 8(t0)
	sw    a1, 12(t0)
	sw    a2, 16(t0)
	sw    a3, 20(t0)
	sw    t7, 24(t0)
	sw    v0, 28(t0)
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop
	.align 4
out:	.space 32
`)
	want := []uint32{0x1111, 0x2222, 0x3333, 0x4444, 0x5555, 0x6666, 0x7777, 1}
	base := m.Sym("out")
	names := []string{"s0", "s1", "a0", "a1", "a2", "a3", "t7", "v0(getpid)"}
	for i, w := range want {
		got, _ := m.K.ReadUserWord(base + uint32(4*i))
		if got != w {
			t.Errorf("%s = %#x after syscall, want %#x", names[i], got, w)
		}
	}
}

func TestTerminationWithoutTrampoline(t *testing.T) {
	// A handler installed without a trampoline cannot be called; the
	// kernel must terminate rather than vector user code to 0.
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	li    a0, 5
	la    a1, main            # "handler" but no trampoline (a2 = 0)
	li    a2, 0
	li    v0, SYS_sigaction
	syscall
	nop
	break
	li    v0, 0
	jr    ra
	nop
`)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(5_000_000)
	if err == nil || !strings.Contains(err.Error(), "133") {
		t.Errorf("err = %v, want SIGTRAP termination", err)
	}
}
