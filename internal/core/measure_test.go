package core

import "testing"

// near asserts a measured microsecond value lies within frac of want.
func near(t *testing.T, name string, got, want, frac float64) {
	t.Helper()
	lo, hi := want*(1-frac), want*(1+frac)
	if got < lo || got > hi {
		t.Errorf("%s = %.2fµs, want %.1fµs ±%.0f%%", name, got, want, frac*100)
	} else {
		t.Logf("%s = %.2fµs (paper: %.1fµs)", name, got, want)
	}
}

// TestTable2FastSimple reproduces Table 2 rows 1, 4, 5: simple
// exception delivery 5 µs, return 3 µs, round trip 8 µs.
func TestTable2FastSimple(t *testing.T) {
	tm, err := MeasureSimpleException(ModeFast, 50)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "fast simple deliver", tm.DeliverMicros(), 5, 0.35)
	near(t, "fast simple return", tm.ReturnMicros(), 3, 0.45)
	near(t, "fast simple round trip", tm.RoundTripMicros(), 8, 0.30)
}

// TestTable2UltrixSimple checks the Ultrix baseline: ~80 µs round trip
// (an order of magnitude above the fast path), deliver ~55, return ~25.
func TestTable2UltrixSimple(t *testing.T) {
	tm, err := MeasureSimpleException(ModeUltrix, 50)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "ultrix simple deliver", tm.DeliverMicros(), 55, 0.25)
	near(t, "ultrix simple return", tm.ReturnMicros(), 25, 0.30)
	near(t, "ultrix simple round trip", tm.RoundTripMicros(), 80, 0.20)
}

// TestTable2WriteProt reproduces row 2: fast 15 µs vs Ultrix 60 µs.
func TestTable2WriteProt(t *testing.T) {
	fast, err := MeasureWriteProt(ModeFast, true, 50)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "fast write-prot deliver", fast.DeliverMicros(), 15, 0.35)
	// Exception + eager-amplified retry: the paper's 18 µs figure.
	near(t, "fast write-prot rt (eager)", fast.RoundTripMicros(), 18, 0.35)

	ult, err := MeasureWriteProt(ModeUltrix, false, 50)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "ultrix write-prot deliver", ult.DeliverMicros(), 60, 0.25)
}

// TestTable2Subpage reproduces row 3: subpage exception delivery 19 µs;
// also measures the transparent emulation cost (§3.2.4).
func TestTable2Subpage(t *testing.T) {
	st, err := MeasureSubpage(50)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "subpage deliver", st.Delivered.DeliverMicros(), 19, 0.35)
	if em := Micros(uint64(st.EmulRT)); em <= 0 || em > 30 {
		t.Errorf("subpage emulation rt = %.2fµs, want (0, 30]", em)
	} else {
		t.Logf("subpage emulation rt = %.2fµs (n=%d)", em, st.EmulN)
	}
}

// TestUnalignedMinHandler reproduces §4.2.2's 6 µs specialized-handler
// fault cost (exception + null C call + return).
func TestUnalignedMinHandler(t *testing.T) {
	tm, err := MeasureUnalignedMin(50)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "unaligned min-handler rt", tm.RoundTripMicros(), 6, 0.35)
}

// TestNullSyscall verifies the getpid comparison point: ~12 µs, and the
// paper's claim that a fast exception round trip is ~33%% faster than a
// null system call.
func TestNullSyscall(t *testing.T) {
	cyc, err := MeasureNullSyscall(50)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "null syscall", Micros(uint64(cyc)), 12, 0.25)

	fast, err := MeasureSimpleException(ModeFast, 30)
	if err != nil {
		t.Fatal(err)
	}
	if fast.RoundTrip >= cyc {
		t.Errorf("fast exception rt (%.0f cyc) should be below a null syscall (%.0f cyc)",
			fast.RoundTrip, cyc)
	}
}

// TestTable3PhaseCounts reproduces the kernel instruction breakdown:
// decode 6, compat 11, save 31, fp 6, tlb 8, vector 3 = 65.
func TestTable3PhaseCounts(t *testing.T) {
	pc, err := MeasureKernelPhases()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want int) {
		if got != want {
			t.Errorf("%s phase = %d instructions, want %d", name, got, want)
		}
	}
	check("decode", pc.Decode, 6)
	check("compat", pc.Compat, 11)
	check("save", pc.Save, 31)
	check("fp-check", pc.FPCheck, 6)
	check("tlb-check", pc.TLBCheck, 8)
	check("vector", pc.Vector, 3)
	check("total", pc.Total(), 65)
}

// TestHardwareDeliveryAblation checks the paper's §3 estimate: direct
// hardware vectoring buys another two- to three-fold improvement over
// the software fast path.
func TestHardwareDeliveryAblation(t *testing.T) {
	hw, err := MeasureSimpleException(ModeHardware, 50)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := MeasureSimpleException(ModeFast, 50)
	if err != nil {
		t.Fatal(err)
	}
	ratio := sw.RoundTrip / hw.RoundTrip
	t.Logf("hardware rt %.2fµs vs software rt %.2fµs: %.2fx",
		hw.RoundTripMicros(), sw.RoundTripMicros(), ratio)
	if ratio < 1.5 || ratio > 4.0 {
		t.Errorf("hardware/software ratio = %.2f, want within [1.5, 4.0] (paper estimates 2-3x)", ratio)
	}
}

// TestOrderOfMagnitude is the headline claim: the software fast path is
// an order of magnitude faster than Ultrix on identical hardware.
func TestOrderOfMagnitude(t *testing.T) {
	fast, err := MeasureSimpleException(ModeFast, 50)
	if err != nil {
		t.Fatal(err)
	}
	ult, err := MeasureSimpleException(ModeUltrix, 50)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ult.RoundTrip / fast.RoundTrip
	t.Logf("ultrix/fast round-trip ratio = %.1fx (paper: 10x)", ratio)
	if ratio < 7 {
		t.Errorf("speedup = %.1fx, want >= 7x", ratio)
	}
}
