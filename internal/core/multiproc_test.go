package core

import (
	"strings"
	"testing"
)

// writerProg emits its label n times, yielding between writes.
func writerProg(label string, n int) string {
	return `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    s0, ` + itoa(n) + `
loop:
	li    a0, 1
	la    a1, tag
	li    a2, 2
	li    v0, SYS_write
	syscall
	nop
	li    v0, SYS_yield
	syscall
	nop
	addiu s0, s0, -1
	bnez  s0, loop
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop
tag:	.ascii "` + label + `"
	.byte 0
`
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestTwoProcessesInterleave: cooperative round robin with interleaved
// console output and clean machine shutdown when both exit.
func TestTwoProcessesInterleave(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(writerProg("A.", 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnProgram(writerProg("B.", 4)); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	got := m.K.Console()
	if got != "A.B.A.B.A.B.A.B." {
		t.Errorf("console = %q, want strict interleaving", got)
	}
	if m.K.Stats.Switches < 8 {
		t.Errorf("switches = %d, want >= 8", m.K.Stats.Switches)
	}
}

// TestAddressSpaceIsolation: both processes use the SAME virtual
// addresses for different data; the tagged TLB and per-ASID page
// tables must keep them apart.
func TestAddressSpaceIsolation(t *testing.T) {
	// Each process writes its own value at a fixed heap VA, yields so
	// the other does the same, then reads back and prints pass/fail.
	prog := func(val string) string {
		return `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    a0, 4096
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0              # same VA in both processes (0x01000000)
	li    s2, ` + val + `
	sw    s2, 0(s1)
	li    v0, SYS_yield       # let the other process write ITS value
	syscall
	nop
	li    v0, SYS_yield
	syscall
	nop
	lw    t0, 0(s1)           # must still be OUR value
	bne   t0, s2, bad
	nop
	li    a0, 1
	la    a1, okmsg
	li    a2, 3
	li    v0, SYS_write
	syscall
	nop
	b     out
	nop
bad:
	li    a0, 1
	la    a1, badmsg
	li    a2, 4
	li    v0, SYS_write
	syscall
	nop
out:
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop
okmsg:	.asciiz "ok,"
badmsg:	.asciiz "BAD,"
`
	}
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog("0x1111")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnProgram(prog("0x2222")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnProgram(prog("0x3333")); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	got := m.K.Console()
	if strings.Contains(got, "BAD") || strings.Count(got, "ok,") != 3 {
		t.Errorf("console = %q, want three ok", got)
	}
}

// TestPerProcessFastHandlers: each process claims breakpoints with its
// own handler; the u-area switch must route each fault to its owner.
func TestPerProcessFastHandlers(t *testing.T) {
	prog := func(marker string) string {
		return `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	la    t0, my_handler
	la    t1, __fexc_chandler
	sw    t0, 0(t1)
	la    a0, __fexc_low
	li    a1, 1 << 9
	jal   __uexc_enable
	nop
	li    s0, 3
loop:
	break
	li    v0, SYS_yield
	syscall
	nop
	addiu s0, s0, -1
	bnez  s0, loop
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop

# handler: print our marker (via syscall!) and skip the break.
my_handler:
	addiu sp, sp, -16
	sw    ra, 0(sp)
	sw    a0, 4(sp)
	li    a0, 1
	la    a1, marker
	li    a2, 1
	li    v0, SYS_write
	syscall
	nop
	lw    a0, 4(sp)
	nop
	lw    t6, 0(a0)
	nop
	addiu t6, t6, 4
	sw    t6, 0(a0)
	lw    ra, 0(sp)
	addiu sp, sp, 16
	jr    ra
	nop
marker:	.ascii "` + marker + `"
	.byte 0
`
	}
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnProgram(prog("y")); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	got := m.K.Console()
	if got != "xyxyxy" {
		t.Errorf("console = %q, want \"xyxyxy\" (per-process handlers)", got)
	}
}

// TestGetAsidDiffers: the diagnostic syscall reports distinct ASIDs.
func TestGetAsidDiffers(t *testing.T) {
	prog := `
main:
	li    v0, SYS_getasid
	syscall
	nop
	addiu a0, v0, '0'
	la    t0, buf
	sb    a0, 0(t0)
	li    a0, 1
	move  a1, t0
	li    a2, 1
	li    v0, SYS_write
	syscall
	nop
	li    v0, SYS_yield
	syscall
	nop
	li    v0, 0
	jr    ra
	nop
buf:	.byte 0
`
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.K.Console(); got != "012" {
		t.Errorf("console = %q, want \"012\"", got)
	}
}

// TestUTLBModIsolatedByASID is §2.2's closing requirement: "this
// mechanism requires a tagged TLB, so that only TLB entries for the
// executing process can be modified". Process A holds a U-bit page at a
// VA; process B, with the same VA mapped WITHOUT the U bit, must not be
// able to modify protection — even while A's (U-bit) TLB entry for that
// VA is resident.
func TestUTLBModIsolatedByASID(t *testing.T) {
	// A: grant U bit, load the TLB entry, yield; later verify its page
	// is still protected the way A left it.
	progA := `
main:
	addiu sp, sp, -8
	sw    ra, 0(sp)
	li    a0, 4096
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0
	sw    zero, 0(s1)
	move  a0, s1
	li    a1, 1
	li    v0, SYS_setubit
	syscall
	nop
	lw    t0, 0(s1)            # pull the U-bit entry into the TLB
	li    t1, 2                # A restricts its own page to read-only
	utlbmod s1, t1
	li    v0, SYS_yield        # B runs and tries to interfere
	syscall
	nop
	lw    t0, 0(s1)            # A can still read
	li    a0, 1
	la    a1, amsg
	li    a2, 2
	li    v0, SYS_write
	syscall
	nop
	lw    ra, 0(sp)
	addiu sp, sp, 8
	li    v0, 0
	jr    ra
	nop
amsg:	.asciiz "A+"
`
	// B: map the same VA (its own page, no U bit) and attempt utlbmod;
	// the attempt must be refused (RI -> SIGILL termination).
	progB := `
main:
	li    a0, 4096
	li    v0, SYS_sbrk
	syscall
	nop
	move  s1, v0               # same VA as A's page
	sw    zero, 0(s1)          # B's own mapping in the TLB
	li    t1, 3
	utlbmod s1, t1             # no U bit for B: refused
	li    a0, 1
	la    a1, bmsg
	li    a2, 2
	li    v0, SYS_write
	syscall
	nop
	li    v0, 0
	jr    ra
	nop
bmsg:	.asciiz "B!"
`
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(progA); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnProgram(progB); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	got := m.K.Console()
	if got != "A+" {
		t.Errorf("console = %q: B's utlbmod must be refused (no B! output), A must finish", got)
	}
	procs := m.K.Procs()
	if done, status := procs[1].Exited(); !done || status != 128+4 { // SIGILL
		t.Errorf("B exit = %v/%d, want SIGILL termination", done, status)
	}
}

// TestProcessTableFull: MaxProcs is enforced.
func TestProcessTableFull(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram("main:\n\tjr ra\n\tnop\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnProgram("main:\n\tjr ra\n\tnop\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnProgram("main:\n\tjr ra\n\tnop\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnProgram("main:\n\tjr ra\n\tnop\n"); err == nil {
		t.Error("fourth process accepted")
	}
}

// TestSurvivorContinuesAfterSiblingCrash: one process dies on an
// unhandled fault; the other must keep running to completion.
func TestSurvivorContinuesAfterSiblingCrash(t *testing.T) {
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	err = m.LoadProgram(`
main:
	li    v0, SYS_yield
	syscall
	nop
	li    a0, 1
	la    a1, msg
	li    a2, 9
	li    v0, SYS_write
	syscall
	nop
	li    v0, 0
	jr    ra
	nop
msg:	.asciiz "survivor\n"
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpawnProgram(`
main:
	break            # no handler: SIGTRAP termination
	jr    ra
	nop
`); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.K.Console(); got != "survivor\n" {
		t.Errorf("console = %q", got)
	}
	procs := m.K.Procs()
	if done, status := procs[1].Exited(); !done || status != 133 {
		t.Errorf("crasher exit = %v/%d, want true/133", done, status)
	}
	if done, status := procs[0].Exited(); !done || status != 0 {
		t.Errorf("survivor exit = %v/%d", done, status)
	}
}
