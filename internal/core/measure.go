package core

import (
	"fmt"

	"uexc/internal/arch"
	"uexc/internal/cpu"
	"uexc/internal/userrt"
)

// Timing holds the measured costs of one exception configuration, in
// cycles (convert with Micros). Deliver is fault to the first
// instruction of the C-level handler; Return is from the handler's
// return to the resumed application instruction; RoundTrip is fault to
// resumption (Table 2's row structure).
type Timing struct {
	N         int
	Deliver   float64
	Return    float64
	RoundTrip float64
}

// DeliverMicros etc. convert to the paper's units.
func (t Timing) DeliverMicros() float64   { return t.Deliver / cpu.ClockMHz }
func (t Timing) ReturnMicros() float64    { return t.Return / cpu.ClockMHz }
func (t Timing) RoundTripMicros() float64 { return t.RoundTrip / cpu.ClockMHz }

func (t Timing) String() string {
	return fmt.Sprintf("deliver %.1fµs return %.1fµs rt %.1fµs (n=%d)",
		t.DeliverMicros(), t.ReturnMicros(), t.RoundTripMicros(), t.N)
}

func mean(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s uint64
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

// timedLoopSpec describes one microbenchmark to the generic harness.
type timedLoopSpec struct {
	prog         string
	handlerEntry string // user symbol of the C-level handler
	handlerExit  string // user symbol reached right after it returns
	faultLabel   string // defaults to bench_fault
	resumeLabel  string // defaults to bench_resume
	hwMask       uint32 // non-zero: enable Tera-style hardware delivery
	codeMask     uint32 // exception codes that count as the benched fault (0 = all)
	budget       uint64
	tweak        func(*Machine) // optional machine configuration hook
}

// runTimedLoop executes a microbenchmark and extracts per-exception
// timings via address watches plus the CPU's exception trace.
func runTimedLoop(spec timedLoopSpec) (Timing, *Machine, error) {
	m, err := NewMachine()
	if err != nil {
		return Timing{}, nil, err
	}
	if err := m.LoadProgram(spec.prog); err != nil {
		return Timing{}, nil, err
	}
	if spec.hwMask != 0 {
		m.EnableHardwareDelivery(spec.hwMask)
	}
	if spec.tweak != nil {
		spec.tweak(m)
	}
	if spec.faultLabel == "" {
		spec.faultLabel = "bench_fault"
	}
	if spec.resumeLabel == "" {
		spec.resumeLabel = "bench_resume"
	}
	if spec.budget == 0 {
		spec.budget = 30_000_000
	}

	c := m.CPU()
	faultPC := m.Sym(spec.faultLabel)

	var (
		raiseC, entryC, exitC  uint64
		havePending            bool
		delivers, returns, rts []uint64
	)
	c.Trace = func(e cpu.Exception) {
		// TLB refills at the same PC (after protection changes flush
		// the TLB) must not reset the timestamp; filter by code.
		if e.PC == faultPC && e.User &&
			(spec.codeMask == 0 || spec.codeMask&(1<<e.Code) != 0) {
			raiseC = c.Cycles
			havePending = true
		}
	}

	watches := map[uint32]func(*cpu.CPU){
		m.Sym(spec.resumeLabel): func(c *cpu.CPU) {
			if !havePending {
				return
			}
			rts = append(rts, c.Cycles-raiseC)
			if exitC >= raiseC {
				returns = append(returns, c.Cycles-exitC)
			}
			havePending = false
		},
	}
	if spec.handlerEntry != "" {
		watches[m.Sym(spec.handlerEntry)] = func(c *cpu.CPU) {
			if havePending {
				entryC = c.Cycles
				delivers = append(delivers, entryC-raiseC)
			}
		}
	}
	if spec.handlerExit != "" {
		watches[m.Sym(spec.handlerExit)] = func(c *cpu.CPU) {
			if havePending {
				exitC = c.Cycles
			}
		}
	}

	if err := m.RunWithWatches(spec.budget, watches); err != nil {
		return Timing{}, m, err
	}
	if len(rts) == 0 {
		return Timing{}, m, fmt.Errorf("core: benchmark recorded no exceptions")
	}
	return Timing{
		N:         len(rts),
		Deliver:   mean(delivers),
		Return:    mean(returns),
		RoundTrip: mean(rts),
	}, m, nil
}

// MeasureSimpleException measures breakpoint delivery under the given
// mode (Table 2 rows 1, 4, 5; Table 1's Ultrix column; ablation A).
func MeasureSimpleException(mode Mode, n int) (Timing, error) {
	var spec timedLoopSpec
	switch mode {
	case ModeFast:
		spec = timedLoopSpec{
			prog:         simpleFastProg(n),
			handlerEntry: userrt.SymSkipHandler,
			handlerExit:  userrt.SymFexcLowRet,
			codeMask:     1 << arch.ExcBp,
		}
	case ModeUltrix:
		spec = timedLoopSpec{
			prog:         simpleUltrixProg(n),
			handlerEntry: userrt.SymSkipSigHandler,
			handlerExit:  userrt.SymSigHandlerRet,
			codeMask:     1 << arch.ExcBp,
		}
	case ModeHardware:
		spec = timedLoopSpec{
			prog:         simpleTeraProg(n),
			handlerEntry: userrt.SymSkipHandler,
			handlerExit:  "tera_handler_ret",
			hwMask:       ExcMaskBp,
			codeMask:     1 << arch.ExcBp,
		}
	}
	t, _, err := runTimedLoop(spec)
	return t, err
}

// MeasureWriteProt measures write-protection fault delivery (Table 2
// row 2; ablation B covers eager on/off).
func MeasureWriteProt(mode Mode, eager bool, n int) (Timing, error) {
	var spec timedLoopSpec
	switch mode {
	case ModeFast:
		entry := userrt.SymNullHandler
		if !eager {
			entry = "wp_chandler"
		}
		spec = timedLoopSpec{
			prog:         writeProtFastProg(n, eager),
			handlerEntry: entry,
			handlerExit:  userrt.SymFexcLowRet,
			codeMask:     1 << arch.ExcMod,
		}
	case ModeUltrix:
		spec = timedLoopSpec{
			prog:         writeProtUltrixProg(n),
			handlerEntry: "wp_sig_handler",
			handlerExit:  userrt.SymSigHandlerRet,
			codeMask:     1 << arch.ExcMod,
		}
	default:
		return Timing{}, fmt.Errorf("core: write-prot benchmark supports Ultrix and Fast modes")
	}
	t, _, err := runTimedLoop(spec)
	return t, err
}

// SubpageTiming extends Timing with the cost of the transparent kernel
// emulation for stores to unprotected subpages (§3.2.4's indirect
// cost).
type SubpageTiming struct {
	Delivered Timing  // store to a protected 1 KB subpage
	EmulRT    float64 // cycles, store to an unprotected subpage (fault+emulate+resume)
	EmulN     int
}

// MeasureSubpage measures both subpage cases (Table 2 row 3).
func MeasureSubpage(n int) (SubpageTiming, error) {
	spec := timedLoopSpec{
		prog:         subpageProg(n),
		handlerEntry: userrt.SymNullHandler,
		handlerExit:  userrt.SymFexcLowRet,
	}

	m, err := NewMachine()
	if err != nil {
		return SubpageTiming{}, err
	}
	if err := m.LoadProgram(spec.prog); err != nil {
		return SubpageTiming{}, err
	}
	c := m.CPU()
	faultPC := m.Sym("bench_fault")
	fault2PC := m.Sym("bench_fault2")

	var (
		raiseC                 uint64
		pendA, pendB           bool
		delivers, rts, emulRTs []uint64
		exitC                  uint64
		returns                []uint64
	)
	c.Trace = func(e cpu.Exception) {
		if !e.User || e.Code != arch.ExcMod {
			return
		}
		switch e.PC {
		case faultPC:
			raiseC, pendA = c.Cycles, true
		case fault2PC:
			raiseC, pendB = c.Cycles, true
		}
	}
	watches := map[uint32]func(*cpu.CPU){
		m.Sym(userrt.SymNullHandler): func(c *cpu.CPU) {
			if pendA {
				delivers = append(delivers, c.Cycles-raiseC)
			}
		},
		m.Sym(userrt.SymFexcLowRet): func(c *cpu.CPU) {
			if pendA {
				exitC = c.Cycles
			}
		},
		m.Sym("bench_resume"): func(c *cpu.CPU) {
			if pendA {
				rts = append(rts, c.Cycles-raiseC)
				returns = append(returns, c.Cycles-exitC)
				pendA = false
			}
		},
		m.Sym("bench_resume2"): func(c *cpu.CPU) {
			if pendB {
				emulRTs = append(emulRTs, c.Cycles-raiseC)
				pendB = false
			}
		},
	}
	if err := m.RunWithWatches(30_000_000, watches); err != nil {
		return SubpageTiming{}, err
	}
	if len(rts) == 0 || len(emulRTs) == 0 {
		return SubpageTiming{}, fmt.Errorf("core: subpage benchmark recorded %d/%d events", len(rts), len(emulRTs))
	}
	// Verify the emulated stores actually landed.
	if got := m.userWord("emul_check"); got != 1 {
		return SubpageTiming{}, fmt.Errorf("core: emulated store verification failed: %#x", got)
	}
	return SubpageTiming{
		Delivered: Timing{N: len(rts), Deliver: mean(delivers), Return: mean(returns), RoundTrip: mean(rts)},
		EmulRT:    mean(emulRTs),
		EmulN:     len(emulRTs),
	}, nil
}

// MeasureUnalignedMin measures the specialized minimal handler on
// unaligned loads: the §4.2.2 configuration whose fault + null C call
// + return costs 6 µs.
func MeasureUnalignedMin(n int) (Timing, error) {
	t, _, err := runTimedLoop(timedLoopSpec{
		prog:         unalignedMinProg(n),
		handlerEntry: userrt.SymSkipHandler,
		handlerExit:  userrt.SymFexcMinRet,
		codeMask:     1 << arch.ExcAdEL,
	})
	return t, err
}

// MeasureNullSyscall measures the getpid round trip in cycles (the
// paper's 12 µs comparison point).
func MeasureNullSyscall(n int) (float64, error) {
	m, err := NewMachine()
	if err != nil {
		return 0, err
	}
	if err := m.LoadProgram(nullSyscallProg(n)); err != nil {
		return 0, err
	}
	var startC uint64
	var rts []uint64
	watches := map[uint32]func(*cpu.CPU){
		m.Sym("bench_fault"):  func(c *cpu.CPU) { startC = c.Cycles },
		m.Sym("bench_resume"): func(c *cpu.CPU) { rts = append(rts, c.Cycles-startC) },
	}
	if err := m.RunWithWatches(30_000_000, watches); err != nil {
		return 0, err
	}
	if len(rts) == 0 {
		return 0, fmt.Errorf("core: syscall benchmark recorded nothing")
	}
	return mean(rts), nil
}

// userWord reads a word-sized user global by symbol (for result
// verification).
func (m *Machine) userWord(sym string) uint32 {
	va := m.Sym(sym)
	v, ok := m.K.ReadUserWord(va)
	if !ok {
		return 0xdeadbeef
	}
	return v
}

// PhaseCounts reproduces Table 3: dynamic instruction counts of the
// kernel fast path's six phases, measured by executing one simple
// exception with per-PC counting enabled.
type PhaseCounts struct {
	Decode   int
	Compat   int
	Save     int
	FPCheck  int
	TLBCheck int
	Vector   int
}

// Total sums all phases.
func (p PhaseCounts) Total() int {
	return p.Decode + p.Compat + p.Save + p.FPCheck + p.TLBCheck + p.Vector
}

// MeasureKernelPhases runs one fast-path breakpoint and counts executed
// kernel instructions per phase label range.
func MeasureKernelPhases() (PhaseCounts, error) {
	m, err := NewMachine()
	if err != nil {
		return PhaseCounts{}, err
	}
	if err := m.LoadProgram(simpleFastProg(1)); err != nil {
		return PhaseCounts{}, err
	}
	c := m.CPU()
	watches := map[uint32]func(*cpu.CPU){
		// Start counting at the benched fault; stop at resumption so
		// later kernel activity (exit syscall) is excluded.
		m.Sym("bench_fault"): func(c *cpu.CPU) {
			c.PCCounts = make(map[uint32]uint64)
			c.CountPCs = true
		},
		m.Sym("bench_resume"): func(c *cpu.CPU) {
			c.CountPCs = false
		},
	}
	if err := m.RunWithWatches(10_000_000, watches); err != nil {
		return PhaseCounts{}, err
	}

	sumRange := func(lo, hi uint32) int {
		total := 0
		for pc, n := range c.PCCounts {
			if pc >= lo && pc < hi {
				total += int(n)
			}
		}
		return total
	}
	ks := m.KernelSym
	return PhaseCounts{
		Decode:   sumRange(ks("ph_decode"), ks("ph_compat")),
		Compat:   sumRange(ks("ph_compat"), ks("ph_save")),
		Save:     sumRange(ks("ph_save"), ks("ph_fpcheck")),
		FPCheck:  sumRange(ks("ph_fpcheck"), ks("ph_tlbcheck")),
		TLBCheck: sumRange(ks("ph_tlbcheck"), ks("ph_vector")),
		Vector:   sumRange(ks("ph_vector"), ks("ph_end")),
	}, nil
}
